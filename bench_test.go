// Benchmark harness regenerating every figure of the paper plus the
// ablations listed in DESIGN.md §4. Wall-clock time of a benchmark
// iteration is simulation effort; the quantity the paper reports is
// VIRTUAL execution time, exported per benchmark via the custom metrics
//
//	vms/op   — virtual milliseconds of cluster time per simulated run
//	norm     — virtual time normalized to the best variant (Figure 1's
//	           y-axis), reported by the *_Normalized benchmarks
//
// Run with:
//
//	go test -bench=. -benchmem
package repro_test

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/interp"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/verify"
	"repro/internal/workload"
)

// simulate runs src on np ranks under prof and returns virtual time.
func simulate(b *testing.B, src string, np int, prof netsim.Profile, costs *interp.CostModel) netsim.Time {
	b.Helper()
	prog, err := interp.Load(src)
	if err != nil {
		b.Fatal(err)
	}
	if costs != nil {
		prog.Costs = *costs
	}
	res, err := prog.Run(np, prof)
	if err != nil {
		b.Fatal(err)
	}
	return res.Elapsed()
}

// transform rewrites src or fails the benchmark.
func transform(b *testing.B, src string, opts core.Options) string {
	b.Helper()
	out, rep, err := core.Transform(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		b.Fatalf("transform did not fire:\n%s", rep)
	}
	return out
}

// fig1Sources builds the Figure 1 kernel and its prepush version per
// profile (per-platform K, as §1 motivates).
func fig1Sources(b *testing.B) (src string, prepush map[string]string, opts workload.RunOptions) {
	p, o := workload.Figure1Params()
	src = workload.Inner3DSource(p)
	prepush = map[string]string{
		"mpich-tcp": transform(b, src, core.Options{K: 32}),
		"mpich-gm":  transform(b, src, core.Options{K: 16}),
	}
	return src, prepush, o
}

// BenchmarkFigure1 reproduces the paper's measured figure: the four bars
// MPICH original/prepush and MPICH-GM original/prepush.
func BenchmarkFigure1(b *testing.B) {
	src, prepush, opts := fig1Sources(b)
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		for _, variant := range []string{"Original", "Prepush"} {
			text := src
			if variant == "Prepush" {
				text = prepush[prof.Name]
			}
			b.Run(fmt.Sprintf("%s/%s", prof.Name, variant), func(b *testing.B) {
				var total netsim.Time
				for i := 0; i < b.N; i++ {
					total += simulate(b, text, opts.NP, prof, opts.Costs)
				}
				b.ReportMetric(float64(total)/float64(b.N)/1e6, "vms/op")
			})
		}
	}
}

// BenchmarkFigure1_Normalized reports the normalized-execution-time bars in
// one shot (slow per iteration: it runs all four configurations).
func BenchmarkFigure1_Normalized(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cmp, err := workload.Figure1()
		if err != nil {
			b.Fatal(err)
		}
		norm := cmp.Normalized()
		b.ReportMetric(norm["mpich-tcp original"], "tcp-orig")
		b.ReportMetric(norm["mpich-tcp prepush"], "tcp-pre")
		b.ReportMetric(norm["mpich-gm original"], "gm-orig")
		b.ReportMetric(norm["mpich-gm prepush"], "gm-pre")
	}
}

// BenchmarkFigure2_TransformDirect measures the Compuniformer itself on the
// Fig. 2(a) direct-pattern program (analysis + rewrite + unparse).
func BenchmarkFigure2_TransformDirect(b *testing.B) {
	src := workload.DirectSource(workload.DirectParams{NX: 64, Outer: 4, NP: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, rep, err := core.Transform(src, core.Options{K: 4})
		if err != nil || rep.TransformedCount() != 1 || len(out) == 0 {
			b.Fatalf("transform failed: %v", err)
		}
	}
}

// BenchmarkFigure3_TransformIndirect measures the indirect-pattern pipeline
// (copy-loop recognition + slab verification + rewrite).
func BenchmarkFigure3_TransformIndirect(b *testing.B) {
	src := workload.IndirectSource(workload.IndirectParams{N: 8, NP: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, rep, err := core.Transform(src, core.Options{K: 2})
		if err != nil || rep.TransformedCount() != 1 || len(out) == 0 {
			b.Fatalf("transform failed: %v", err)
		}
	}
}

// BenchmarkFigure4_CommGen measures generation of the staggered all-peers
// exchange for the inner-node-loop form.
func BenchmarkFigure4_CommGen(b *testing.B) {
	src := workload.Inner3DSource(workload.Inner3DParams{M: 4, NY: 16, SZ: 8, NP: 4})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, rep, err := core.Transform(src, core.Options{K: 4})
		if err != nil || rep.TransformedCount() != 1 || len(out) == 0 {
			b.Fatalf("transform failed: %v", err)
		}
	}
}

// BenchmarkHarnessSweep runs the differential evaluation harness on a
// family-diverse corpus prefix under all three execution engines and
// reports the aggregate offload-profile overlap gain (gm-geomean, the
// regression gate of cmd/evalrunner) as a custom metric alongside the
// sweep's wall cost — the walk/compile/bytecode ratios here are the
// speedups the fast tiers buy the measurement loop.
func BenchmarkHarnessSweep(b *testing.B) {
	corpus := workload.GenerateScenarios(workload.GenOptions{Limit: 6})
	for _, engine := range []exec.Engine{exec.EngineWalk, exec.EngineCompile, exec.EngineBytecode} {
		b.Run(string(engine), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := harness.Run(harness.Config{Scenarios: corpus, Parallelism: 4, Engine: engine})
				if err != nil {
					b.Fatal(err)
				}
				if rep.Summary.Correct != rep.Summary.Scenarios {
					b.Fatalf("correctness oracle failed:\n%s", rep.Table())
				}
				b.ReportMetric(rep.Summary.GeomeanSpeedup["mpich-gm-2005"], "gm-geomean")
			}
		})
	}
}

// BenchmarkEngineRun compares one simulated run per engine on a mid-size
// corpus kernel: the walk engine pays parse + tree-walk every time, the
// compiled engine replays a cached closure program, and the bytecode tier
// replays the same cached program through its lowered register machine.
func BenchmarkEngineRun(b *testing.B) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 4})[3]
	m := plan.MPICHGM2005()
	for _, engine := range []exec.Engine{exec.EngineWalk, exec.EngineCompile, exec.EngineBytecode} {
		b.Run(string(engine), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := engine.Run(sc.Source, sc.NP, m.Costs, m.Profile); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVerifyVariant prices the static verification tier against one
// walk-engine run on the same variant: the correctness-tier cost ladder
// (static verify → walk oracle) in numbers. Static verification re-parses
// and re-analyzes but never executes, so it is the microsecond-scale
// pre-vetting step a fleet dispatcher can afford on every cold query.
func BenchmarkVerifyVariant(b *testing.B) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 4})[3]
	pl := core.Options{K: sc.K}.Plan()
	prog, err := core.Analyze(sc.Source, core.AnalyzeOptions{})
	if err != nil {
		b.Fatal(err)
	}
	out, rep, err := core.Apply(prog, pl)
	if err != nil {
		b.Fatal(err)
	}
	m := plan.MPICHGM2005()
	b.Run("static-verify", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if diags := verify.Variant(prog, pl, out, rep); len(diags) != 0 {
				b.Fatalf("clean variant flagged: %s", verify.Summarize(diags))
			}
		}
	})
	b.Run("walk-run", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := exec.EngineWalk.Run(out, sc.NP, m.Costs, m.Profile); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompile measures the compile step itself (parse + closure
// lowering) — the cost the variant cache amortizes to one per variant.
func BenchmarkCompile(b *testing.B) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 4})[3]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := exec.CompileSource(sc.Source); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBytecodeCompile measures the bytecode lowering on top of a
// fresh closure compile — the one-time cost the bytecode tier adds per
// variant before its cached register program replays for free. Compare
// against BenchmarkCompile for the lowering's marginal cost.
func BenchmarkBytecodeCompile(b *testing.B) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 4})[3]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p, err := exec.CompileSource(sc.Source)
		if err != nil {
			b.Fatal(err)
		}
		p.Bytecode()
	}
}

// ablationKernel is a smaller inner-node-loop kernel for parameter sweeps.
func ablationKernel() (string, *interp.CostModel) {
	p := workload.Inner3DParams{M: 64, NY: 32, SZ: 8, NP: 4, Weight: 1}
	costs := interp.DefaultCosts()
	costs.Store = 8 * netsim.Nanosecond
	return workload.Inner3DSource(p), &costs
}

// BenchmarkAblation_TileSweep (A1): sensitivity to the tile size K, the
// parameter the paper declares out of scope but performance-critical (§2).
func BenchmarkAblation_TileSweep(b *testing.B) {
	src, costs := ablationKernel()
	prof := netsim.MPICHGM()
	for _, k := range []int64{1, 2, 4, 8, 16, 32} {
		pre := transform(b, src, core.Options{K: k})
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			var total netsim.Time
			for i := 0; i < b.N; i++ {
				total += simulate(b, pre, 4, prof, costs)
			}
			b.ReportMetric(float64(total)/float64(b.N)/1e6, "vms/op")
		})
	}
}

// BenchmarkAblation_NPSweep (A2): scaling with the number of ranks (the §1
// scalability motivation).
func BenchmarkAblation_NPSweep(b *testing.B) {
	for _, np := range []int{2, 4, 8} {
		p := workload.Inner3DParams{M: 64, NY: 32, SZ: 8, NP: np, Weight: 1}
		src := workload.Inner3DSource(p)
		pre := transform(b, src, core.Options{K: 8})
		prof := netsim.MPICHGM()
		costs := interp.DefaultCosts()
		costs.Store = 8 * netsim.Nanosecond
		for variant, text := range map[string]string{"orig": src, "pre": pre} {
			b.Run(fmt.Sprintf("np=%d/%s", np, variant), func(b *testing.B) {
				var total netsim.Time
				for i := 0; i < b.N; i++ {
					total += simulate(b, text, np, prof, &costs)
				}
				b.ReportMetric(float64(total)/float64(b.N)/1e6, "vms/op")
			})
		}
	}
}

// BenchmarkAblation_MsgSize (A3): eager-vs-rendezvous crossover on the
// direct 1-D kernel (paper Fig. 2 shape) as the array grows.
func BenchmarkAblation_MsgSize(b *testing.B) {
	prof := netsim.MPICHGM()
	for _, nx := range []int{4096, 16384, 65536} {
		p := workload.DirectParams{NX: nx, Outer: 2, NP: 4, Weight: 2}
		src := workload.DirectSource(p)
		pre := transform(b, src, core.Options{K: int64(nx / 4 / 4)}) // 4 tiles per partition
		for variant, text := range map[string]string{"orig": src, "pre": pre} {
			b.Run(fmt.Sprintf("nx=%d/%s", nx, variant), func(b *testing.B) {
				var total netsim.Time
				for i := 0; i < b.N; i++ {
					total += simulate(b, text, 4, prof, nil)
				}
				b.ReportMetric(float64(total)/float64(b.N)/1e6, "vms/op")
			})
		}
	}
}

// interchangeKernel has the node loop outermost with a legal interchange.
const interchangeKernel = `
program swapk
  implicit none
  include 'mpif.h'
  integer, parameter :: n = 64
  integer, parameter :: np = 4
  integer as(1:n, 1:n)
  integer ar(1:n, 1:n)
  integer i, j, ierr, me, checksum
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do j = 1, n
    do i = 1, n
      as(i, j) = me*3 + i + j*10 + mod(i*j, 17)
    enddo
  enddo
  call mpi_alltoall(as, n*n/np, mpi_integer, ar, n*n/np, mpi_integer, mpi_comm_world, ierr)
  checksum = ar(1, 1) + ar(n, n)
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program swapk
`

// BenchmarkAblation_NodeLoopOuter (A4): subset-send fallback vs forced
// interchange when the node loop is outermost (§3.5's efficiency
// discussion).
func BenchmarkAblation_NodeLoopOuter(b *testing.B) {
	prof := netsim.MPICHGM()
	subset := transform(b, interchangeKernel, core.Options{K: 4, InterchangeMinBlockBytes: -1})
	inter := transform(b, interchangeKernel, core.Options{K: 4, InterchangeMinBlockBytes: 1})
	for variant, text := range map[string]string{"subset-send": subset, "interchange": inter} {
		b.Run(variant, func(b *testing.B) {
			var total netsim.Time
			for i := 0; i < b.N; i++ {
				total += simulate(b, text, 4, prof, nil)
			}
			b.ReportMetric(float64(total)/float64(b.N)/1e6, "vms/op")
		})
	}
}

// BenchmarkAblation_CopyElim (A5): the indirect pattern's copy elimination —
// original (with copy loop) vs prepush (copy removed, At sent directly).
func BenchmarkAblation_CopyElim(b *testing.B) {
	src := workload.IndirectSource(workload.IndirectParams{N: 16, NP: 4, Weight: 1})
	pre := transform(b, src, core.Options{K: 2})
	prof := netsim.MPICHGM()
	for variant, text := range map[string]string{"orig-with-copy": src, "pre-no-copy": pre} {
		b.Run(variant, func(b *testing.B) {
			var total netsim.Time
			for i := 0; i < b.N; i++ {
				total += simulate(b, text, 4, prof, nil)
			}
			b.ReportMetric(float64(total)/float64(b.N)/1e6, "vms/op")
		})
	}
}

// BenchmarkAblation_Offload (A6): how much NIC autonomy buys — the GM
// profile with offload artificially disabled vs enabled, prepush code.
func BenchmarkAblation_Offload(b *testing.B) {
	src, costs := ablationKernel()
	pre := transform(b, src, core.Options{K: 8})
	for _, offload := range []bool{false, true} {
		prof := netsim.MPICHGM()
		prof.Offload = offload
		prof.EagerThreshold = 1024 // keep tile messages on the rendezvous path
		b.Run(fmt.Sprintf("offload=%v", offload), func(b *testing.B) {
			var total netsim.Time
			for i := 0; i < b.N; i++ {
				total += simulate(b, pre, 4, prof, costs)
			}
			b.ReportMetric(float64(total)/float64(b.N)/1e6, "vms/op")
		})
	}
}

// BenchmarkAblation_WaitSchedule (A7): the paper's literal per-tile wait
// (§3.6 step 2) vs the deferred-drain schedule this implementation defaults
// to; the per-tile wait stalls a tile's owner behind the incast when
// compute per tile is small (§3.5's congestion caveat made measurable).
func BenchmarkAblation_WaitSchedule(b *testing.B) {
	src, costs := ablationKernel()
	perTile := transform(b, src, core.Options{K: 8, PerTileWait: true})
	deferred := transform(b, src, core.Options{K: 8})
	prof := netsim.MPICHGM()
	for variant, text := range map[string]string{"per-tile-wait": perTile, "deferred-drain": deferred} {
		b.Run(variant, func(b *testing.B) {
			var total netsim.Time
			for i := 0; i < b.N; i++ {
				total += simulate(b, text, 4, prof, costs)
			}
			b.ReportMetric(float64(total)/float64(b.N)/1e6, "vms/op")
		})
	}
}
