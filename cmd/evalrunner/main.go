// Command evalrunner runs the differential conformance-and-evaluation
// sweep: every scenario of the generated corpus is parsed, executed,
// transformed by the Compuniformer's Analyze → Plan → Apply pipeline,
// executed again, checked for bit-identical observable results, and timed
// under the selected machine models. The sweep is the repository's
// end-to-end regression gate.
//
// With -tune, the whole overlap plan — tile size K, wait schedule, send
// order, interchange gate — is additionally chosen automatically per
// (scenario, machine) by internal/tune (analytic seeding + measured
// search); the report then carries the chosen plan, the tuned speedup, and
// the search cost next to the fixed-K numbers, and the offload gate
// requires the tuned geomean to strictly beat the fixed-K geomean.
//
// Usage:
//
//	evalrunner [-out BENCH_harness.json] [-seed N] [-limit N] [-shard I/N]
//	           [-machines a,b] [-engine bytecode|compile|walk] [-parallel N]
//	           [-min 20] [-q] [-tune] [-tunemax N] [-tune-konly]
//	           [-tune-check-engine walk] [-cache-dir DIR] [-verify]
//	           [-check-baseline BENCH_harness.json] [-baseline-tol 0.01]
//	           [-summary-md path]
//	evalrunner -merge -out merged.json shard0.json shard1.json ...
//
// -verify runs the static verification tier (internal/verify: the
// translation validator plus the MPI schedule linter) over every (program,
// plan) variant the sweep touches — the fixed variant, every measured tuner
// candidate, and every chosen plan — deduplicated by content hash. With
// -cache-dir the clean verdicts persist as ledger markers next to the
// variants, so a warm sweep re-verifies nothing. Any static finding fails
// the run (exit 1); the findings are listed per scenario on stderr.
//
// -engine selects the execution engine: "bytecode" (default) lowers every
// (program, plan) variant once into a register-based flat instruction
// stream — constant folding, batched cost charges, bounds-check
// elimination — shared through the sweep's variant store; "compile" runs
// the closure mid-tier the bytecode lowering falls back on; "walk"
// re-parses and tree-walks the AST per run, retained as the bit-identical
// differential oracle. The report records the engine and the cache
// economics (variants_compiled, cache_hits, disk_hits, sweep_wall_ns).
//
// -tune-check-engine makes -tune tiered: every candidate is measured on
// the (fast) sweep engine, and only the original program and each adopted
// plan are re-run on the named engine — "walk" in CI — which must
// reproduce the exact makespans the search ranked on and the exact
// observables the never-lose gate compared. The per-candidate cost drops
// to the fast tier while the adopted plans stay oracle-backed; the report
// records tune_check_engine and the per-row/summary tiered_checks
// counters.
//
// -cache-dir backs the sweep's variant store with a content-addressed
// on-disk layer: every successfully compiled variant source is persisted
// under DIR keyed by its sha256, and later sweeps sharing DIR start warm —
// a checksum-valid entry counts as a disk hit rather than a compile, so a
// fully warm run reports variants_compiled == 0. Entries are verified on
// read and recompiled (and rewritten) on corruption, so a damaged cache
// costs correctness nothing.
//
// -shard I/N keeps only the scenarios whose corpus index ≡ I (mod N), so a
// large tuned sweep can split across processes; each shard writes a normal
// (partial) artifact and -merge folds them back into corpus order,
// recomputes the summary, and applies the aggregate gates. Aggregate gates
// (offload gain, tuned-beats-fixed) are skipped on individual shards —
// they only make sense on the full artifact.
//
// -check-baseline gates the sweep against a committed artifact: the
// per-profile geometric-mean speedups (fixed and, when both sides tuned,
// tuned), recomputed over the scenarios the two corpora share, must not
// fall more than -baseline-tol (relative, default 1%) below the baseline.
// -summary-md appends the per-profile geomean table as GitHub-flavoured
// markdown to the named file — point it at $GITHUB_STEP_SUMMARY so
// reviewers see the perf delta without downloading artifacts. Both flags
// work on sweep and -merge runs.
//
// Exit status 2 is a usage error: inconsistent flag combinations or
// out-of-range values (a negative -parallel or -limit) are rejected up
// front with a message instead of being silently reinterpreted. Exit
// status 1 reports a failed run or gate: it is returned when any scenario
// fails the correctness oracle,
// any scenario errors, any measurement reports a non-positive speedup, any
// tuned row reports a speedup below 1.0 (the identity plan — every site
// skipped — is always in the tuner's candidate set, so tuned can never
// lose to the original; a row below 1.0 is a broken invariant), the
// baseline check regresses, or (on unsharded or merged runs) an offload
// machine — identified by its Offload flag, not by name — fails its
// overlap gate. The gate is blocked-share-aware: a machine whose original
// runs spend ≥ 1% of their makespan blocked must show aggregate overlap
// gain (geomean > 1); an already-overlapped machine (hpc-rdma-2019 class,
// blocked share ~0) is instead held to a no-harm floor at the fixed K
// (geomean > 0.90). On every tuned aggregate (full or merged), every
// machine's tuned geomean must be ≥ 1.0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/plan"
	"repro/internal/session"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "BENCH_harness.json", "path of the JSON bench artifact ('' disables)")
	seed := flag.Int64("seed", 0, "corpus seed (0 = canonical corpus)")
	limit := flag.Int("limit", 0, "truncate the corpus to its first N scenarios (0 = all)")
	shard := flag.String("shard", "", "run only shard I/N of the corpus, e.g. 0/2 (\"\" = all)")
	machineList := flag.String("machines", "", "comma-separated machine models (default: mpich-tcp-2005,mpich-gm-2005,hpc-rdma-2019)")
	parallel := flag.Int("parallel", 0, "concurrent scenario workers (0 = GOMAXPROCS)")
	min := flag.Int("min", 20, "fail unless the corpus (before sharding) has at least this many scenarios")
	quiet := flag.Bool("q", false, "suppress the per-scenario table")
	tuneFlag := flag.Bool("tune", false, "auto-tune the overlap plan (K + wait/send-order/interchange knobs) per scenario and machine")
	tuneMax := flag.Int("tunemax", 0, "measured tuning candidates per scenario/machine (0 = default)")
	konly := flag.Bool("tune-konly", false, "restrict -tune to the tile size (ablation: the historical K-only search)")
	tuneCheck := flag.String("tune-check-engine", "", "re-check only the original and each adopted -tune plan on this engine (e.g. walk); candidates stay on the sweep engine ('' = off)")
	cacheDir := flag.String("cache-dir", "", "persist compiled variants content-addressed under this directory so sweeps sharing it start warm ('' = in-memory only)")
	verifyFlag := flag.Bool("verify", false, "statically verify every (program, plan) variant the sweep touches; any finding fails the run")
	merge := flag.Bool("merge", false, "merge shard artifacts named as arguments instead of sweeping")
	fleetAddr := flag.String("fleet", "", "dispatch the sweep to a fleet coordinator at this base URL instead of sweeping in-process ('' = in-process)")
	fleetShards := flag.Int("fleet-shards", 0, "shard work items for a -fleet sweep (0 = one per live worker)")
	engineName := flag.String("engine", "", "execution engine: bytecode (default; cached register programs), compile (closure mid-tier), or walk (tree-walking oracle)")
	baselinePath := flag.String("check-baseline", "", "fail if per-profile geomeans regress vs this committed artifact ('' disables)")
	baselineTol := flag.Float64("baseline-tol", 0.01, "relative tolerance for -check-baseline (0.01 = 1%)")
	summaryMD := flag.String("summary-md", "", "append the per-profile geomean table as markdown to this file (e.g. $GITHUB_STEP_SUMMARY)")
	flag.Parse()

	engine, err := validateFlags(cliFlags{
		Merge: *merge, Shard: *shard, Tune: *tuneFlag, TuneKOnly: *konly,
		TuneMax: *tuneMax, TuneCheckEngine: *tuneCheck, Engine: *engineName,
		Parallel: *parallel, Limit: *limit, CacheDir: *cacheDir,
		Verify: *verifyFlag, Fleet: *fleetAddr, FleetShards: *fleetShards,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(2)
	}

	// The baseline must be read before any artifact is written: with the
	// default -out the sweep would otherwise overwrite the committed
	// baseline first and then vacuously compare the run against itself.
	baseline, err := loadBaseline(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner: -check-baseline:", err)
		os.Exit(1)
	}

	if *merge {
		runMerge(*out, flag.Args(), *seed, *quiet, baseline, *baselineTol, *summaryMD)
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "evalrunner: unexpected arguments (did you mean -merge?):", flag.Args())
		os.Exit(2)
	}

	machines, err := resolveMachines(*machineList)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(2)
	}

	if *fleetAddr != "" {
		runFleet(*fleetAddr, fleet.SweepSpec{
			Seed: *seed, Limit: *limit, Machines: machineNames(*machineList),
			Tune: *tuneFlag, TuneMax: *tuneMax, KOnly: *konly,
			Verify: *verifyFlag, Shards: *fleetShards,
		}, *out, *min, *quiet, baseline, *baselineTol, *summaryMD)
		return
	}

	full := workload.GenerateScenarios(workload.GenOptions{Seed: *seed})
	scenarios := full
	if *limit > 0 && *limit < len(full) {
		scenarios = full[:*limit]
	}
	if len(scenarios) < *min {
		fmt.Fprintf(os.Stderr, "evalrunner: corpus has %d scenarios, need at least %d\n", len(scenarios), *min)
		os.Exit(1)
	}
	sharded := false
	if *shard != "" {
		scenarios, err = workload.SelectShard(scenarios, *shard)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner:", err)
			os.Exit(2)
		}
		sharded = true
		if len(scenarios) == 0 {
			fmt.Fprintln(os.Stderr, "evalrunner: shard selects no scenarios")
			os.Exit(2)
		}
	}

	var sess *session.Session
	if *cacheDir != "" {
		store, err := exec.NewDiskStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner: -cache-dir:", err)
			os.Exit(1)
		}
		sess, err = session.New(session.Options{Engine: engine, Store: store})
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner:", err)
			os.Exit(1)
		}
	}

	rep, err := harness.Run(harness.Config{
		Scenarios: scenarios, Machines: machines, Parallelism: *parallel,
		Tune: *tuneFlag, TuneMaxMeasured: *tuneMax, TuneKOnly: *konly,
		TuneCheckEngine: exec.Engine(*tuneCheck),
		Engine:          engine, Session: sess, Verify: *verifyFlag,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(rep.Table())
	} else {
		fmt.Printf("%d scenarios, %d identical, %d errors\n",
			rep.Summary.Scenarios, rep.Summary.Correct, rep.Summary.Errors)
	}
	if *verifyFlag {
		fmt.Printf("statically verified %d variant(s) (%d skipped via ledger, %d finding(s), %.1fms)\n",
			rep.Summary.VerifiedVariants, rep.Summary.VerifySkipped,
			rep.Summary.VerifyFailures, float64(rep.Summary.VerifyWallNs)/1e6)
	}

	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	// Aggregate gates run only on complete artifacts: a shard defers them
	// to the -merge step. Strictness (tuned must strictly beat fixed)
	// additionally requires the full canonical corpus; a truncated prefix
	// may legitimately already be optimally tuned. A -limit at or above
	// the corpus size still runs the full corpus, so it stays strict.
	aggregate := !sharded
	strict := aggregate && len(scenarios) == len(full)
	if sharded {
		fmt.Fprintln(os.Stderr, "evalrunner: shard run — aggregate gates deferred to -merge")
	}
	ok := gates(rep, aggregate, strict, *tuneFlag)
	ok = postProcess(rep, baseline, *baselineTol, *summaryMD, "differential sweep") && ok
	if !ok {
		os.Exit(1)
	}
}

// cliFlags is the subset of flags whose combinations or values can be
// inconsistent.
type cliFlags struct {
	Merge           bool
	Shard           string
	Tune            bool
	TuneKOnly       bool
	TuneMax         int
	TuneCheckEngine string
	Engine          string
	Parallel        int
	Limit           int
	CacheDir        string
	Verify          bool
	Fleet           string
	FleetShards     int
}

// validateFlags rejects mutually-inconsistent flag combinations and
// out-of-range values before any work (or artifact writing) happens, and
// resolves the engine name. A failure here is a usage error: main exits 2.
func validateFlags(f cliFlags) (exec.Engine, error) {
	engine, err := exec.ParseEngine(f.Engine)
	if err != nil {
		return "", err
	}
	if f.Parallel < 0 {
		return "", fmt.Errorf("-parallel %d is not a worker count; pass a positive count, or 0 for one worker per CPU", f.Parallel)
	}
	if f.Limit < 0 {
		return "", fmt.Errorf("-limit %d is not a scenario count; pass a positive count, or 0 for the whole corpus", f.Limit)
	}
	if f.Merge && f.Shard != "" {
		return "", fmt.Errorf("-merge folds existing shard artifacts and cannot sweep a -shard; run the shard sweep first, then merge its artifact")
	}
	if f.Merge && f.Engine != "" {
		return "", fmt.Errorf("-engine selects how a sweep executes; -merge only folds artifacts, which carry the engine their shards ran under")
	}
	if f.Merge && f.CacheDir != "" {
		return "", fmt.Errorf("-cache-dir persists a sweep's compiled variants; -merge only folds artifacts and compiles nothing")
	}
	if f.Merge && f.Verify {
		return "", fmt.Errorf("-verify statically checks variants as a sweep generates them; -merge only folds artifacts, which already carry their shards' verify counters")
	}
	if f.CacheDir != "" && engine == exec.EngineWalk {
		return "", fmt.Errorf("-cache-dir persists compiled variants; the walk engine re-interprets sources and compiles nothing")
	}
	if f.TuneKOnly && !f.Tune {
		return "", fmt.Errorf("-tune-konly restricts the -tune search; pass -tune as well")
	}
	if f.TuneMax != 0 && !f.Tune {
		return "", fmt.Errorf("-tunemax only applies to -tune sweeps; pass -tune as well")
	}
	if f.TuneCheckEngine != "" {
		if !f.Tune {
			return "", fmt.Errorf("-tune-check-engine re-checks -tune's adopted plans; pass -tune as well")
		}
		checkEngine, err := exec.ParseEngine(f.TuneCheckEngine)
		if err != nil {
			return "", err
		}
		if checkEngine == engine {
			return "", fmt.Errorf("-tune-check-engine %q is the sweep engine itself; name a different tier (e.g. walk) to cross-check against", checkEngine)
		}
	}
	if f.FleetShards != 0 && f.Fleet == "" {
		return "", fmt.Errorf("-fleet-shards decomposes a -fleet sweep; pass -fleet as well")
	}
	if f.FleetShards < 0 {
		return "", fmt.Errorf("-fleet-shards %d is not a shard count; pass a positive count, or 0 for one per live worker", f.FleetShards)
	}
	if f.Fleet != "" {
		switch {
		case f.Merge:
			return "", fmt.Errorf("-fleet dispatches a sweep; -merge folds existing artifacts locally")
		case f.Shard != "":
			return "", fmt.Errorf("-fleet decomposes the sweep into shards itself; drop -shard")
		case f.CacheDir != "":
			return "", fmt.Errorf("-cache-dir configures a local sweep's store; a fleet's cache dir is configured on its workers")
		case f.Engine != "":
			return "", fmt.Errorf("-engine selects how a local sweep executes; a fleet's engine is configured on its workers")
		case f.TuneCheckEngine != "":
			return "", fmt.Errorf("-tune-check-engine configures a local sweep's tiered tuning; a fleet's check engine is configured on its workers")
		case f.Parallel != 0:
			return "", fmt.Errorf("-parallel bounds a local sweep's workers; a fleet worker uses its own parallelism")
		}
	}
	return engine, nil
}

// machineNames splits the -machines list into names for the fleet wire spec
// (already validated by resolveMachines).
func machineNames(list string) []string {
	if list == "" {
		return nil
	}
	var names []string
	for _, name := range strings.Split(list, ",") {
		names = append(names, strings.TrimSpace(name))
	}
	return names
}

// runFleet dispatches the sweep to a coordinator and applies the same
// reporting, artifact, and gate path as a local merged run: the fleet's
// merged artifact covers the whole (possibly -limit-truncated) corpus, so
// the aggregate gates run here rather than on any worker.
func runFleet(coord string, spec fleet.SweepSpec, out string, min int, quiet bool, baseline *harness.Report, baselineTol float64, summaryMD string) {
	full := workload.GenerateScenarios(workload.GenOptions{Seed: spec.Seed})
	size := len(full)
	if spec.Limit > 0 && spec.Limit < size {
		size = spec.Limit
	}
	if size < min {
		fmt.Fprintf(os.Stderr, "evalrunner: corpus has %d scenarios, need at least %d\n", size, min)
		os.Exit(1)
	}
	client := &fleet.Client{Base: coord}
	rep, err := client.RunSweep(context.Background(), spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
	if !quiet {
		fmt.Print(rep.Table())
	} else {
		fmt.Printf("%d scenarios, %d identical, %d errors\n",
			rep.Summary.Scenarios, rep.Summary.Correct, rep.Summary.Errors)
	}
	if spec.Verify {
		fmt.Printf("statically verified %d variant(s) (%d skipped via ledger, %d finding(s), %.1fms)\n",
			rep.Summary.VerifiedVariants, rep.Summary.VerifySkipped,
			rep.Summary.VerifyFailures, float64(rep.Summary.VerifyWallNs)/1e6)
	}
	if out != "" {
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (fleet sweep via %s)\n", out, coord)
	}
	strict := size == len(full)
	ok := gates(rep, true, strict, spec.Tune)
	ok = postProcess(rep, baseline, baselineTol, summaryMD, "fleet tuned sweep") && ok
	if !ok {
		os.Exit(1)
	}
}

// loadBaseline reads the -check-baseline artifact ("" means the gate is
// off). It runs before any sweeping or writing so a bad path fails fast
// and a sweep can never compare itself against a file it just overwrote.
// A pre-v6 artifact is rejected with an explicit schema-mismatch message:
// older schemas lack per-site skip decisions and identity-plan counters,
// and unmarshalling one anyway would gate against zero values.
func loadBaseline(path string) (*harness.Report, error) {
	if path == "" {
		return nil, nil
	}
	rep, err := harness.ReadJSON(path)
	if errors.Is(err, harness.ErrSchema) {
		return nil, fmt.Errorf("%w — the baseline artifact predates this binary's schema; regenerate it with `evalrunner -tune -out %s` instead of comparing against zero values", err, path)
	}
	return rep, err
}

// postProcess applies the optional baseline-regression check (baseline nil
// means off) and appends the markdown step summary; it returns false when
// the baseline gate fails.
func postProcess(rep, baseline *harness.Report, tol float64, summaryMD, title string) bool {
	ok := true
	if baseline != nil {
		if viols := harness.CompareBaseline(rep, baseline, tol); len(viols) > 0 {
			for _, v := range viols {
				fmt.Fprintln(os.Stderr, "evalrunner:", v)
			}
			ok = false
		} else {
			fmt.Printf("baseline check ok (tolerance %.1f%%)\n", tol*100)
		}
	}
	if summaryMD != "" {
		f, err := os.OpenFile(summaryMD, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err == nil {
			_, err = f.WriteString(rep.MarkdownSummary(title))
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			// The step summary is informational; failing the sweep over it
			// would hide the real verdict.
			fmt.Fprintln(os.Stderr, "evalrunner: -summary-md:", err)
		}
	}
	return ok
}

// runMerge folds shard artifacts into one report, writes it, and applies
// the full gate set.
func runMerge(out string, paths []string, seed int64, quiet bool, baseline *harness.Report, baselineTol float64, summaryMD string) {
	if len(paths) < 2 {
		fmt.Fprintln(os.Stderr, "evalrunner: -merge needs at least two input artifacts")
		os.Exit(1)
	}
	var reports []*harness.Report
	tuned := false
	for _, p := range paths {
		r, err := harness.ReadJSON(p)
		if err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner:", err)
			os.Exit(1)
		}
		for _, o := range r.Scenarios {
			if len(o.Tuned) > 0 {
				tuned = true
			}
		}
		reports = append(reports, r)
	}
	rep, err := harness.Merge(reports)
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
	if !quiet {
		fmt.Print(rep.Table())
	}
	if out != "" {
		if err := rep.WriteJSON(out); err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (merged from %d shards)\n", out, len(paths))
	}
	full := workload.GenerateScenarios(workload.GenOptions{Seed: seed})
	strict := len(rep.Scenarios) == len(full)
	ok := gates(rep, true, strict, tuned)
	ok = postProcess(rep, baseline, baselineTol, summaryMD, "merged tuned sweep") && ok
	if !ok {
		os.Exit(1)
	}
}

// Offload-gate thresholds. A machine whose original runs spend at least
// minBlockedFrac of their makespan blocked has overlap for the
// transformation to reclaim, so an offload stack there must show aggregate
// gain (the paper's premise). Below that — an already-overlapped stack
// like hpc-rdma-2019, whose wire drains the exchange faster than the node
// computes — the fixed-K rewrite is held to a no-harm floor. Tuning has no
// floor to negotiate anymore: the identity plan (every site skipped) is in
// plan space, so every tuned speedup — and hence every tuned geomean — is
// ≥ 1.0 by construction, and the gate asserts exactly that (to within
// tunedNeverLoseEps of float slack) on every machine.
const (
	minBlockedFrac    = 0.01
	noHarmFloor       = 0.90
	tunedNeverLoseEps = 1e-9
)

// gates applies the regression gates; aggregate selects the whole-corpus
// gates, strict the tuned-must-strictly-beat-fixed form.
func gates(rep *harness.Report, aggregate, strict, tuned bool) bool {
	ok := true
	if rep.Summary.Errors > 0 {
		fmt.Fprintf(os.Stderr, "evalrunner: %d scenario(s) errored\n", rep.Summary.Errors)
		ok = false
	}
	if rep.Summary.Correct != rep.Summary.Scenarios-rep.Summary.Errors {
		fmt.Fprintf(os.Stderr, "evalrunner: correctness oracle failed on %d scenario(s)\n",
			rep.Summary.Scenarios-rep.Summary.Errors-rep.Summary.Correct)
		ok = false
	}
	if rep.Summary.NonPositive > 0 {
		fmt.Fprintf(os.Stderr, "evalrunner: %d non-positive speedup measurement(s) — timing pathology\n",
			rep.Summary.NonPositive)
		ok = false
	}
	// The static-verification gate is per-variant, not aggregate: a finding
	// on any shard fails that shard (and survives a -merge via the summed
	// counter), because a flagged variant means the pipeline emitted code it
	// cannot statically justify.
	if rep.Summary.VerifyFailures > 0 {
		fmt.Fprintf(os.Stderr, "evalrunner: static verifier reported %d finding(s):\n", rep.Summary.VerifyFailures)
		for _, o := range rep.Scenarios {
			for _, f := range o.VerifyFailures {
				fmt.Fprintf(os.Stderr, "evalrunner:   %s: %s\n", o.Name, f)
			}
		}
		ok = false
	}
	// Hard per-row invariant: with skip in plan space the tuner always holds
	// the identity plan (speedup exactly 1.0) as a candidate, so any tuned
	// row below 1.0 means the never-lose guarantee is broken — fail loudly,
	// shard or not.
	for _, o := range rep.Scenarios {
		for _, tr := range o.Tuned {
			if tr.TunedSpeedup < 1.0-tunedNeverLoseEps {
				fmt.Fprintf(os.Stderr, "evalrunner: %s under %s: tuned speedup %.4f < 1.0 — the identity plan should have won (never-lose invariant broken)\n",
					o.Name, tr.Profile, tr.TunedSpeedup)
				ok = false
			}
		}
	}
	if !aggregate {
		return ok
	}
	// Aggregate form of the same invariant, per profile on every machine
	// (offload or not): a tuned geomean below 1.0 can only arise from rows
	// below 1.0.
	if tuned {
		for _, ps := range rep.Summary.PerProfile {
			if ps.TunedGeomean > 0 && ps.TunedGeomean < 1.0-tunedNeverLoseEps {
				fmt.Fprintf(os.Stderr, "evalrunner: tuned geomean %.4f < 1.0 on %s — declining the transformation is in plan space, so tuning can never lose\n",
					ps.TunedGeomean, ps.Profile)
				ok = false
			}
		}
	}
	// The overlap gates key on each machine's Offload capability flag and
	// measured blocked share (as recorded in the report), not on machine
	// names, so renamed or added machine models stay gated.
	for _, ps := range rep.Summary.PerProfile {
		if !ps.Offload {
			continue
		}
		if ps.OriginalBlockedFrac >= minBlockedFrac {
			if ps.Geomean <= 1.0 {
				fmt.Fprintf(os.Stderr, "evalrunner: no aggregate overlap gain on offload machine %s (geomean %.3f, blocked %.1f%%)\n",
					ps.Profile, ps.Geomean, ps.OriginalBlockedFrac*100)
				ok = false
			}
		} else {
			if ps.Geomean <= noHarmFloor {
				fmt.Fprintf(os.Stderr, "evalrunner: fixed-K rewrite costs too much on already-overlapped machine %s (geomean %.3f ≤ %.2f floor, blocked %.2f%%)\n",
					ps.Profile, ps.Geomean, noHarmFloor, ps.OriginalBlockedFrac*100)
				ok = false
			}
			// The historical "tuned recovery floor" (0.97) is gone: the
			// exact ≥ 1.0 tuned gate above supersedes it now that declining
			// the transformation is a first-class decision.
		}
		if tuned {
			if ps.TunedGeomean < ps.Geomean || (strict && ps.TunedGeomean <= ps.Geomean) {
				fmt.Fprintf(os.Stderr, "evalrunner: tuning did not beat fixed K on offload machine %s (tuned %.3f vs fixed %.3f)\n",
					ps.Profile, ps.TunedGeomean, ps.Geomean)
				ok = false
			}
		}
	}
	return ok
}

// resolveMachines parses the -machines list ("" = the default sweep set:
// the paper pair plus hpc-rdma-2019).
func resolveMachines(list string) ([]plan.Machine, error) {
	if list == "" {
		return nil, nil // harness default: plan.DefaultSweep()
	}
	var machines []plan.Machine
	for _, name := range strings.Split(list, ",") {
		m, err := plan.ByName(strings.TrimSpace(name))
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
	}
	return machines, nil
}
