// Command evalrunner runs the differential conformance-and-evaluation
// sweep: every scenario of the generated corpus is parsed, executed,
// transformed by the Compuniformer, executed again, checked for
// bit-identical observable results, and timed under both network profiles.
// The sweep is the repository's end-to-end regression gate.
//
// Usage:
//
//	go run ./cmd/evalrunner [-out BENCH_harness.json] [-seed N] [-limit N]
//	                        [-parallel N] [-min 20] [-q]
//
// Exit status is nonzero when any scenario fails the correctness oracle,
// any scenario errors, or the offload profile shows no aggregate overlap
// gain (geomean speedup ≤ 1).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "BENCH_harness.json", "path of the JSON bench artifact ('' disables)")
	seed := flag.Int64("seed", 0, "corpus seed (0 = canonical corpus)")
	limit := flag.Int("limit", 0, "truncate the corpus to its first N scenarios (0 = all)")
	parallel := flag.Int("parallel", 0, "concurrent scenario workers (0 = GOMAXPROCS)")
	min := flag.Int("min", 20, "fail unless the corpus has at least this many scenarios")
	quiet := flag.Bool("q", false, "suppress the per-scenario table")
	flag.Parse()

	scenarios := workload.GenerateScenarios(workload.GenOptions{Seed: *seed, Limit: *limit})
	if len(scenarios) < *min {
		fmt.Fprintf(os.Stderr, "evalrunner: corpus has %d scenarios, need at least %d\n", len(scenarios), *min)
		os.Exit(1)
	}

	rep, err := harness.Run(harness.Config{Scenarios: scenarios, Parallelism: *parallel})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(rep.Table())
	} else {
		fmt.Printf("%d scenarios, %d identical, %d errors\n",
			rep.Summary.Scenarios, rep.Summary.Correct, rep.Summary.Errors)
	}

	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	ok := true
	if rep.Summary.Errors > 0 {
		fmt.Fprintf(os.Stderr, "evalrunner: %d scenario(s) errored\n", rep.Summary.Errors)
		ok = false
	}
	if rep.Summary.Correct != rep.Summary.Scenarios-rep.Summary.Errors {
		fmt.Fprintf(os.Stderr, "evalrunner: correctness oracle failed on %d scenario(s)\n",
			rep.Summary.Scenarios-rep.Summary.Errors-rep.Summary.Correct)
		ok = false
	}
	for name, g := range rep.Summary.GeomeanSpeedup {
		if name == "mpich-gm" && g <= 1.0 {
			fmt.Fprintf(os.Stderr, "evalrunner: no aggregate overlap gain on %s (geomean %.3f)\n", name, g)
			ok = false
		}
	}
	if !ok {
		os.Exit(1)
	}
}
