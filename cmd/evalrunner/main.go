// Command evalrunner runs the differential conformance-and-evaluation
// sweep: every scenario of the generated corpus is parsed, executed,
// transformed by the Compuniformer, executed again, checked for
// bit-identical observable results, and timed under both network profiles.
// The sweep is the repository's end-to-end regression gate.
//
// With -tune, the tile size K is additionally chosen automatically per
// (scenario, profile) by internal/tune (analytic seeding + measured
// search); the report then carries the chosen K, the tuned speedup, and
// the search cost next to the fixed-K numbers, and the offload gate
// requires the tuned geomean to strictly beat the fixed-K geomean.
//
// Usage:
//
//	go run ./cmd/evalrunner [-out BENCH_harness.json] [-seed N] [-limit N]
//	                        [-parallel N] [-min 20] [-q] [-tune] [-tunemax N]
//
// Exit status is nonzero when any scenario fails the correctness oracle,
// any scenario errors, any measurement reports a non-positive speedup, or
// an offload profile (identified by its Offload flag, not by name) shows no
// aggregate overlap gain.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/harness"
	"repro/internal/workload"
)

func main() {
	out := flag.String("out", "BENCH_harness.json", "path of the JSON bench artifact ('' disables)")
	seed := flag.Int64("seed", 0, "corpus seed (0 = canonical corpus)")
	limit := flag.Int("limit", 0, "truncate the corpus to its first N scenarios (0 = all)")
	parallel := flag.Int("parallel", 0, "concurrent scenario workers (0 = GOMAXPROCS)")
	min := flag.Int("min", 20, "fail unless the corpus has at least this many scenarios")
	quiet := flag.Bool("q", false, "suppress the per-scenario table")
	tuneFlag := flag.Bool("tune", false, "auto-tune the tile size K per scenario and profile")
	tuneMax := flag.Int("tunemax", 0, "measured tuning candidates per scenario/profile (0 = default)")
	flag.Parse()

	full := workload.GenerateScenarios(workload.GenOptions{Seed: *seed})
	scenarios := full
	if *limit > 0 && *limit < len(full) {
		scenarios = full[:*limit]
	}
	if len(scenarios) < *min {
		fmt.Fprintf(os.Stderr, "evalrunner: corpus has %d scenarios, need at least %d\n", len(scenarios), *min)
		os.Exit(1)
	}

	rep, err := harness.Run(harness.Config{
		Scenarios: scenarios, Parallelism: *parallel,
		Tune: *tuneFlag, TuneMaxMeasured: *tuneMax,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "evalrunner:", err)
		os.Exit(1)
	}
	if !*quiet {
		fmt.Print(rep.Table())
	} else {
		fmt.Printf("%d scenarios, %d identical, %d errors\n",
			rep.Summary.Scenarios, rep.Summary.Correct, rep.Summary.Errors)
	}

	if *out != "" {
		if err := rep.WriteJSON(*out); err != nil {
			fmt.Fprintln(os.Stderr, "evalrunner:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	ok := true
	if rep.Summary.Errors > 0 {
		fmt.Fprintf(os.Stderr, "evalrunner: %d scenario(s) errored\n", rep.Summary.Errors)
		ok = false
	}
	if rep.Summary.Correct != rep.Summary.Scenarios-rep.Summary.Errors {
		fmt.Fprintf(os.Stderr, "evalrunner: correctness oracle failed on %d scenario(s)\n",
			rep.Summary.Scenarios-rep.Summary.Errors-rep.Summary.Correct)
		ok = false
	}
	if rep.Summary.NonPositive > 0 {
		fmt.Fprintf(os.Stderr, "evalrunner: %d non-positive speedup measurement(s) — timing pathology\n",
			rep.Summary.NonPositive)
		ok = false
	}
	// The overlap gates key on each profile's Offload capability flag (as
	// recorded in the report), not on profile names, so renamed or added
	// machine models stay gated. On the full canonical corpus the tuned
	// geomean must strictly beat the fixed-K geomean; a truncated prefix
	// may legitimately already be optimally tuned, so there the gate only
	// requires that tuning never loses. A -limit at or above the corpus
	// size still runs the full corpus, so it stays strict.
	strict := len(scenarios) == len(full)
	for _, ps := range rep.Summary.PerProfile {
		if !ps.Offload {
			continue
		}
		if ps.Geomean <= 1.0 {
			fmt.Fprintf(os.Stderr, "evalrunner: no aggregate overlap gain on offload profile %s (geomean %.3f)\n",
				ps.Profile, ps.Geomean)
			ok = false
		}
		if *tuneFlag {
			if ps.TunedGeomean < ps.Geomean || (strict && ps.TunedGeomean <= ps.Geomean) {
				fmt.Fprintf(os.Stderr, "evalrunner: tuning did not beat fixed K on offload profile %s (tuned %.3f vs fixed %.3f)\n",
					ps.Profile, ps.TunedGeomean, ps.Geomean)
				ok = false
			}
		}
	}
	if !ok {
		os.Exit(1)
	}
}
