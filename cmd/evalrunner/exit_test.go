package main

import (
	"os"
	osexec "os/exec"
	"strings"
	"testing"
)

// TestMain re-invokes main when the harness env var is set, so exit-code
// tests can spawn the real command from the test binary without a build.
func TestMain(m *testing.M) {
	if args, ok := os.LookupEnv("EVALRUNNER_ARGS"); ok {
		os.Args = append([]string{"evalrunner"}, strings.Fields(args)...)
		main()
		return
	}
	os.Exit(m.Run())
}

// TestUnknownEngineExit2: a bad -engine name is a usage error (exit 2),
// diagnosed before any sweeping starts.
func TestUnknownEngineExit2(t *testing.T) {
	cases := []struct {
		name    string
		args    string
		wantOut string
	}{
		{name: "unknown engine", args: "-engine jit", wantOut: "unknown engine"},
		{name: "unknown tune check engine", args: "-tune -tune-check-engine jit", wantOut: "unknown engine"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmd := osexec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "EVALRUNNER_ARGS="+c.args)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*osexec.ExitError)
			if !ok {
				t.Fatalf("evalrunner %s: err = %v (output %q), want exit error", c.args, err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("evalrunner %s: exit %d (output %q), want 2", c.args, code, out)
			}
			if !strings.Contains(string(out), c.wantOut) {
				t.Fatalf("evalrunner %s: output %q does not mention %q", c.args, out, c.wantOut)
			}
		})
	}
}
