package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/harness"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		f       cliFlags
		engine  exec.Engine
		wantErr string
	}{
		{name: "defaults", f: cliFlags{}, engine: exec.EngineBytecode},
		{name: "walk engine", f: cliFlags{Engine: "walk"}, engine: exec.EngineWalk},
		{name: "compile engine", f: cliFlags{Engine: "compile"}, engine: exec.EngineCompile},
		{name: "bytecode engine", f: cliFlags{Engine: "bytecode"}, engine: exec.EngineBytecode},
		{name: "unknown engine", f: cliFlags{Engine: "jit"}, wantErr: "unknown engine"},
		{name: "merge alone", f: cliFlags{Merge: true}, engine: exec.EngineBytecode},
		{name: "shard alone", f: cliFlags{Shard: "0/2"}, engine: exec.EngineBytecode},
		{name: "merge with shard", f: cliFlags{Merge: true, Shard: "0/2"}, wantErr: "-merge"},
		{name: "merge with engine", f: cliFlags{Merge: true, Engine: "walk"}, wantErr: "-engine"},
		{name: "tune konly with tune", f: cliFlags{Tune: true, TuneKOnly: true}, engine: exec.EngineBytecode},
		{name: "tune konly without tune", f: cliFlags{TuneKOnly: true}, wantErr: "-tune-konly"},
		{name: "tunemax without tune", f: cliFlags{TuneMax: 9}, wantErr: "-tunemax"},
		{name: "tunemax with tune", f: cliFlags{Tune: true, TuneMax: 9}, engine: exec.EngineBytecode},
		{name: "tiered tuning", f: cliFlags{Tune: true, TuneCheckEngine: "walk"}, engine: exec.EngineBytecode},
		{name: "tune check without tune", f: cliFlags{TuneCheckEngine: "walk"}, wantErr: "-tune-check-engine"},
		{name: "tune check unknown engine", f: cliFlags{Tune: true, TuneCheckEngine: "jit"}, wantErr: "unknown engine"},
		{name: "tune check names sweep engine", f: cliFlags{Tune: true, TuneCheckEngine: "bytecode"}, wantErr: "sweep engine itself"},
		{name: "tune check on explicit walk sweep", f: cliFlags{Tune: true, Engine: "walk", TuneCheckEngine: "walk"}, wantErr: "sweep engine itself"},
		{name: "tune check compile sweep vs walk", f: cliFlags{Tune: true, Engine: "compile", TuneCheckEngine: "walk"}, engine: exec.EngineCompile},
		{name: "positive parallel and limit", f: cliFlags{Parallel: 8, Limit: 10}, engine: exec.EngineBytecode},
		{name: "negative parallel", f: cliFlags{Parallel: -1}, wantErr: "-parallel"},
		{name: "negative limit", f: cliFlags{Limit: -5}, wantErr: "-limit"},
		{name: "cache dir sweep", f: cliFlags{CacheDir: "varcache"}, engine: exec.EngineBytecode},
		{name: "cache dir with merge", f: cliFlags{Merge: true, CacheDir: "varcache"}, wantErr: "-cache-dir"},
		{name: "cache dir with walk engine", f: cliFlags{CacheDir: "varcache", Engine: "walk"}, wantErr: "-cache-dir"},
		{name: "verify sweep", f: cliFlags{Verify: true}, engine: exec.EngineBytecode},
		{name: "verify tuned sweep with cache dir", f: cliFlags{Verify: true, Tune: true, CacheDir: "varcache"}, engine: exec.EngineBytecode},
		{name: "verify with walk engine", f: cliFlags{Verify: true, Engine: "walk"}, engine: exec.EngineWalk},
		{name: "verify with merge", f: cliFlags{Merge: true, Verify: true}, wantErr: "-verify"},
		{name: "fleet sweep", f: cliFlags{Fleet: "http://127.0.0.1:8790"}, engine: exec.EngineBytecode},
		{name: "fleet tuned verified sweep", f: cliFlags{Fleet: "http://c:1", Tune: true, Verify: true, FleetShards: 3}, engine: exec.EngineBytecode},
		{name: "fleet shards without fleet", f: cliFlags{FleetShards: 3}, wantErr: "-fleet-shards"},
		{name: "negative fleet shards", f: cliFlags{Fleet: "http://c:1", FleetShards: -1}, wantErr: "-fleet-shards"},
		{name: "fleet with merge", f: cliFlags{Fleet: "http://c:1", Merge: true}, wantErr: "-merge"},
		{name: "fleet with shard", f: cliFlags{Fleet: "http://c:1", Shard: "0/2"}, wantErr: "-shard"},
		{name: "fleet with cache dir", f: cliFlags{Fleet: "http://c:1", CacheDir: "varcache"}, wantErr: "-cache-dir"},
		{name: "fleet with engine", f: cliFlags{Fleet: "http://c:1", Engine: "walk"}, wantErr: "-engine"},
		{name: "fleet with tune check", f: cliFlags{Fleet: "http://c:1", Tune: true, TuneCheckEngine: "walk"}, wantErr: "-tune-check-engine"},
		{name: "fleet with parallel", f: cliFlags{Fleet: "http://c:1", Parallel: 4}, wantErr: "-parallel"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			engine, err := validateFlags(c.f)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("validateFlags(%+v) = %v, want ok", c.f, err)
				}
				if engine != c.engine {
					t.Fatalf("engine = %q, want %q", engine, c.engine)
				}
				return
			}
			if err == nil {
				t.Fatalf("validateFlags(%+v) succeeded, want error mentioning %q", c.f, c.wantErr)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestOffloadGates: the aggregate overlap gate keys on the measured
// blocked share — a machine with reclaimable blocked time must gain, an
// already-overlapped machine (hpc-rdma-2019 class) is held to the no-harm
// floor at the fixed K. Tuned geomeans are held to the exact ≥ 1.0 gate on
// every machine: with the identity plan in plan space, tuning can never
// lose, so any tuned geomean below 1.0 is a broken invariant regardless of
// strictness.
func TestOffloadGates(t *testing.T) {
	mk := func(ps ...harness.ProfileSummary) *harness.Report {
		return &harness.Report{Schema: harness.Schema, Summary: harness.Summary{
			Scenarios: 1, Correct: 1, PerProfile: ps,
		}}
	}
	cases := []struct {
		name   string
		ps     harness.ProfileSummary
		tuned  bool
		strict bool
		want   bool
	}{
		{name: "blocked machine gains", want: true,
			ps: harness.ProfileSummary{Profile: "gm", Offload: true, Geomean: 1.1, OriginalBlockedFrac: 0.2}},
		{name: "blocked machine fails to gain", want: false,
			ps: harness.ProfileSummary{Profile: "gm", Offload: true, Geomean: 0.99, OriginalBlockedFrac: 0.2}},
		{name: "overlapped machine small loss tolerated", want: true,
			ps: harness.ProfileSummary{Profile: "rdma", Offload: true, Geomean: 0.95, OriginalBlockedFrac: 0.002}},
		{name: "overlapped machine below no-harm floor", want: false,
			ps: harness.ProfileSummary{Profile: "rdma", Offload: true, Geomean: 0.85, OriginalBlockedFrac: 0.002}},
		{name: "overlapped machine tuned at break-even", tuned: true, strict: true, want: true,
			ps: harness.ProfileSummary{Profile: "rdma", Offload: true, Geomean: 0.95, TunedGeomean: 1.0, OriginalBlockedFrac: 0.002}},
		{name: "overlapped machine tuned below 1.0 fails", tuned: true, strict: true, want: false,
			ps: harness.ProfileSummary{Profile: "rdma", Offload: true, Geomean: 0.95, TunedGeomean: 0.99, OriginalBlockedFrac: 0.002}},
		{name: "tuned below 1.0 fails even off the full corpus", tuned: true, want: false,
			ps: harness.ProfileSummary{Profile: "rdma", Offload: true, Geomean: 0.95, TunedGeomean: 0.96, OriginalBlockedFrac: 0.002}},
		{name: "tuned below 1.0 fails on non-offload machines too", tuned: true, want: false,
			ps: harness.ProfileSummary{Profile: "tcp", Offload: false, Geomean: 0.97, TunedGeomean: 0.98, OriginalBlockedFrac: 0.3}},
		{name: "non-offload machine ungated", want: true,
			ps: harness.ProfileSummary{Profile: "tcp", Offload: false, Geomean: 0.7, OriginalBlockedFrac: 0.3}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := gates(mk(c.ps), true, c.strict, c.tuned); got != c.want {
				t.Errorf("gates(%+v, tuned=%v, strict=%v) = %v, want %v", c.ps, c.tuned, c.strict, got, c.want)
			}
		})
	}
}

// TestVerifyGate: any static-verification finding fails the gate, shard or
// not — a flagged variant means the pipeline emitted code it cannot justify,
// and the summed counter keeps the gate alive through a -merge.
func TestVerifyGate(t *testing.T) {
	clean := &harness.Report{Schema: harness.Schema, Summary: harness.Summary{
		Scenarios: 1, Correct: 1, VerifiedVariants: 7,
	}}
	if !gates(clean, false, false, false) {
		t.Error("clean verified shard failed the gate")
	}
	dirty := &harness.Report{Schema: harness.Schema, Summary: harness.Summary{
		Scenarios: 1, Correct: 1, VerifyFailures: 1,
	}}
	dirty.Scenarios = []harness.Outcome{{Name: "s", VerifyFailures: []string{"tile-coverage: ..."}}}
	if gates(dirty, false, false, false) {
		t.Error("verify finding passed the gate")
	}
	if gates(dirty, true, true, false) {
		t.Error("verify finding passed the aggregate gate")
	}
}

// TestLoadBaseline: -check-baseline must fail fast on an unreadable or
// foreign-schema baseline, before any sweeping overwrites it.
func TestLoadBaseline(t *testing.T) {
	if rep, err := loadBaseline(""); err != nil || rep != nil {
		t.Fatalf("empty path: (%v, %v), want (nil, nil)", rep, err)
	}
	if _, err := loadBaseline(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing baseline file accepted")
	}
	bad := filepath.Join(t.TempDir(), "old.json")
	if err := os.WriteFile(bad, []byte(`{"schema":"repro/bench-harness/v4"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := loadBaseline(bad); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("foreign-schema baseline: %v, want schema error", err)
	}
}
