// Command goldengen (re)generates the golden fixtures under testdata/ that
// pin the Compuniformer's codegen:
//
//	figure2_before.f90 / figure2_after.f90 — the direct pattern (paper Fig. 2)
//	figure3_before.f90 / figure3_after.f90 — the indirect pattern (paper Fig. 3)
//	figure4_commcode.f90                   — the generated staggered exchange
//	                                         block (paper Fig. 4)
//
// The fixtures are the reviewed transformation outputs; internal/core's
// golden tests compare against them byte for byte, so any codegen change
// shows up as a diff here first. Run from the repository root:
//
//	go run ./cmd/goldengen [-dir testdata]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/core"
	"repro/internal/plan"
	"repro/internal/workload"
)

func main() {
	dir := flag.String("dir", "testdata", "output directory for the fixtures")
	flag.Parse()

	if err := os.MkdirAll(*dir, 0o755); err != nil {
		fatal(err)
	}

	// Figure 2: the direct pattern, same parameters as cmd/paperfigs.
	fig2 := workload.DirectSource(workload.DirectParams{NX: 64, Outer: 4, NP: 8, Weight: 0})
	fig2after := transform(fig2, 4, "figure2")

	// Figure 3: the indirect pattern (copy through a temporary).
	fig3 := workload.IndirectSource(workload.IndirectParams{N: 8, NP: 4, Weight: 0})
	fig3after := transform(fig3, 2, "figure3")

	// Figure 4: only the generated exchange block of the inner-node-loop
	// form, extracted the same way cmd/paperfigs prints it.
	fig4src := workload.Inner3DSource(workload.Inner3DParams{M: 4, NY: 16, SZ: 8, NP: 4, Weight: 0})
	fig4after := transform(fig4src, 4, "figure4")
	fig4block, err := exchangeBlock(fig4after)
	if err != nil {
		fatal(err)
	}

	for name, text := range map[string]string{
		"figure2_before.f90":   fig2,
		"figure2_after.f90":    fig2after,
		"figure3_before.f90":   fig3,
		"figure3_after.f90":    fig3after,
		"figure4_commcode.f90": fig4block,
	} {
		path := filepath.Join(*dir, name)
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s (%d bytes)\n", path, len(text))
	}
}

// transform runs the Analyze → Plan → Apply pipeline with a uniform plan
// at tile size k and insists exactly one site fired.
func transform(src string, k int64, what string) string {
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		fatal(fmt.Errorf("%s: %w", what, err))
	}
	out, rep, err := core.Apply(prog, plan.Uniform(plan.Decision{K: k}))
	if err != nil {
		fatal(fmt.Errorf("%s: %w", what, err))
	}
	if rep.TransformedCount() != 1 {
		fatal(fmt.Errorf("%s: transform did not fire:\n%s", what, rep))
	}
	return out
}

// exchangeBlock extracts the generated pre-push exchange (the Fig. 4 code)
// from a transformed source, mirroring cmd/paperfigs.
func exchangeBlock(out string) (string, error) {
	lines := strings.Split(out, "\n")
	start, end := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "pre-push tile exchange") {
			start = i - 1
		}
		if start >= 0 && strings.Contains(l, "local copy of this rank") {
			end = i
			break
		}
	}
	if start < 0 || end < 0 {
		return "", fmt.Errorf("exchange block not found in transformed source")
	}
	return strings.Join(lines[start:end], "\n") + "\n", nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "goldengen:", err)
	os.Exit(1)
}
