package main

import (
	"os"
	osexec "os/exec"
	"strings"
	"testing"
)

// TestMain re-invokes main when the harness env var is set, so exit-code
// tests can spawn the real command from the test binary without a build.
func TestMain(m *testing.M) {
	if args, ok := os.LookupEnv("PLANSERVER_ARGS"); ok {
		os.Args = append([]string{"planserver"}, strings.Fields(args)...)
		main()
		return
	}
	os.Exit(m.Run())
}

// TestUsageErrorsExit2: flag misuse — above all an unknown -engine name —
// must exit 2 (usage) before the server binds a socket.
func TestUsageErrorsExit2(t *testing.T) {
	cases := []struct {
		name    string
		args    string
		wantOut string
	}{
		{name: "unknown engine", args: "-engine jit", wantOut: "unknown engine"},
		{name: "misspelled tier", args: "-engine byte-code", wantOut: "unknown engine"},
		{name: "walk engine with cache dir", args: "-engine walk -cache-dir varcache", wantOut: "compiles nothing"},
		{name: "positional arguments", args: "extra", wantOut: "unexpected arguments"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmd := osexec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "PLANSERVER_ARGS="+c.args)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*osexec.ExitError)
			if !ok {
				t.Fatalf("planserver %s: err = %v (output %q), want exit error", c.args, err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("planserver %s: exit %d (output %q), want 2", c.args, code, out)
			}
			if !strings.Contains(string(out), c.wantOut) {
				t.Fatalf("planserver %s: output %q does not mention %q", c.args, out, c.wantOut)
			}
		})
	}
}
