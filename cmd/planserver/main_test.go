package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/session"
	"repro/internal/workload"
)

// startServer mounts the real mux on an ephemeral TCP listener — the same
// wire path a deployed server answers on — and returns its base URL.
func startServer(t *testing.T) string {
	t.Helper()
	sess, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: newMux(sess, nil)}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

func postPlan(t *testing.T, base string, q session.Query) (*session.Result, *http.Response) {
	t.Helper()
	body, err := json.Marshal(q)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/plan", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, resp // body left open for the caller's error checks
	}
	defer resp.Body.Close()
	var res session.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		t.Fatal(err)
	}
	return &res, resp
}

// TestServerSmoke is the end-to-end contract: a cold POST /plan runs the
// search, the identical repeat is served from the memo (memo_hit=true, no
// new compiled variants, much faster), and /stats accounts for both.
func TestServerSmoke(t *testing.T) {
	base := startServer(t)

	resp, err := http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /healthz = %d, want 200", resp.StatusCode)
	}

	q := session.Query{
		Source:  workload.DirectSource(workload.DirectParams{NX: 4096, NP: 4}),
		Machine: "mpich-gm-2005",
		NP:      4,
	}
	first, resp := postPlan(t, base, q)
	if first == nil {
		t.Fatalf("cold POST /plan = %d, want 200", resp.StatusCode)
	}
	if first.MemoHit {
		t.Fatal("cold query reported memo_hit")
	}
	if first.Choice.Plan == nil || len(first.Choice.Plan.Sites) == 0 {
		t.Fatal("cold query returned no overlap plan")
	}
	if !strings.HasPrefix(first.Fingerprint, "fp1-") {
		t.Fatalf("fingerprint %q has no version prefix", first.Fingerprint)
	}

	var stats session.Stats
	getJSON(t, base+"/stats", &stats)
	if stats.Store.Compiled == 0 {
		t.Fatal("cold query compiled nothing")
	}
	if stats.Memo.Misses != 1 || stats.Memo.Entries != 1 {
		t.Fatalf("stats after cold query = %+v", stats)
	}

	start := time.Now()
	second, resp := postPlan(t, base, q)
	warmWall := time.Since(start)
	if second == nil {
		t.Fatalf("warm POST /plan = %d, want 200", resp.StatusCode)
	}
	if !second.MemoHit {
		t.Fatal("repeat query was not served from the memo")
	}
	if second.Choice.Plan.Key() != first.Choice.Plan.Key() {
		t.Fatal("memoized plan differs from the tuned plan")
	}
	if second.Fingerprint != first.Fingerprint {
		t.Fatal("fingerprint unstable across identical queries")
	}

	var warm session.Stats
	getJSON(t, base+"/stats", &warm)
	if warm.Store.Compiled != stats.Store.Compiled {
		t.Fatalf("repeat query compiled %d new variants, want 0",
			warm.Store.Compiled-stats.Store.Compiled)
	}
	if warm.Memo.Hits != 1 {
		t.Fatalf("stats after warm query = %+v", warm)
	}
	// The wire format is part of the contract: counters are snake_case
	// (a typed round trip above would survive losing the json tags).
	resp, err = http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"compiled"`, `"disk_hits"`, `"hits"`, `"entries"`} {
		if !bytes.Contains(raw, []byte(key)) {
			t.Errorf("GET /stats body missing %s: %s", key, raw)
		}
	}
	// A memo hit skips analysis and search entirely; even on a loaded CI
	// box an HTTP round trip plus a map lookup clears a generous bound.
	if warmWall > 5*time.Second {
		t.Fatalf("memo-hit query took %v — the search appears to have rerun", warmWall)
	}
}

// TestServerRejectsBadQueries: client mistakes are 400s with a JSON error,
// not 500s and not silent searches of garbage.
func TestServerRejectsBadQueries(t *testing.T) {
	base := startServer(t)
	src := workload.DirectSource(workload.DirectParams{NX: 4096, NP: 4})

	bad := []session.Query{
		{Machine: "mpich-gm-2005", NP: 4},            // no source
		{Source: src, Machine: "mpich-gm-2005"},      // no rank count
		{Source: src, Machine: "no-such-box", NP: 4}, // unknown machine
	}
	for i, q := range bad {
		res, resp := postPlan(t, base, q)
		if res != nil || resp.StatusCode != http.StatusBadRequest {
			t.Errorf("bad query %d: status %d, want 400", i, resp.StatusCode)
			continue
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || e["error"] == "" {
			t.Errorf("bad query %d: no JSON error body (%v)", i, err)
		}
		resp.Body.Close()
	}

	// Malformed JSON and unknown fields are 400s too.
	for _, body := range []string{"{not json", `{"source": "x", "np": 4, "machine": "mpich-gm-2005", "bogus": 1}`} {
		resp, err := http.Post(base+"/plan", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}

	// Wrong methods are 405s that name the right one.
	resp, err := http.Get(base + "/plan")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed || resp.Header.Get("Allow") != http.MethodPost {
		t.Errorf("GET /plan = %d (Allow %q), want 405 with Allow: POST", resp.StatusCode, resp.Header.Get("Allow"))
	}
	resp, err = http.Post(base+"/stats", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("POST /stats = %d, want 405", resp.StatusCode)
	}
}

// TestServerCapsBody: a body over the 16 MiB cap is a JSON 413, not an OOM
// and not a generic 400.
func TestServerCapsBody(t *testing.T) {
	base := startServer(t)
	huge := `{"source": "` + strings.Repeat("x", maxQueryBytes+1) + `"}`
	resp, err := http.Post(base+"/plan", "application/json", strings.NewReader(huge))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
	var e map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e["error"], "exceeds") {
		t.Fatalf("oversized body: error %q (%v), want a JSON size message", e["error"], err)
	}
}

// TestServerRejectsEmptySource: an empty (or all-whitespace) source is a
// 400 naming the field, rejected before any analysis runs.
func TestServerRejectsEmptySource(t *testing.T) {
	base := startServer(t)
	for _, src := range []string{"", "   \n\t"} {
		res, resp := postPlan(t, base, session.Query{Source: src, Machine: "mpich-gm-2005", NP: 4})
		if res != nil || resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("source %q: status %d, want 400", src, resp.StatusCode)
		}
		var e map[string]string
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil || !strings.Contains(e["error"], "source") {
			t.Errorf("source %q: error %q (%v), want it to name the source field", src, e["error"], err)
		}
		resp.Body.Close()
	}
}

// TestPlanResponseVerifyStatus: every /plan answer carries the static
// verdict on the chosen plan, and a tuned plan over a well-formed program
// verifies clean.
func TestPlanResponseVerifyStatus(t *testing.T) {
	base := startServer(t)
	q := session.Query{
		Source:  workload.DirectSource(workload.DirectParams{NX: 4096, NP: 4}),
		Machine: "mpich-gm-2005",
		NP:      4,
	}
	post := func() verifyStatus {
		t.Helper()
		body, err := json.Marshal(q)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.Post(base+"/plan", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /plan = %d, want 200", resp.StatusCode)
		}
		var pr planResponse
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr.Verify
	}
	cold := post()
	if !cold.Checked || !cold.Clean || len(cold.Findings) != 0 {
		t.Fatalf("cold verify status %+v, want checked and clean", cold)
	}
	warm := post()
	if !warm.Checked || !warm.Clean {
		t.Fatalf("warm verify status %+v, want checked and clean (from the ledger)", warm)
	}
}

// TestFleetDispatchedColdQueryMemoized is the fleet-mode contract: a cold
// /plan query is pre-vetted and dispatched to a fleet worker (the server
// itself compiles nothing), the worker's choice agrees with a local search,
// and the repeat of the same query is a local memo hit — no new dispatch,
// no new compiles anywhere.
func TestFleetDispatchedColdQueryMemoized(t *testing.T) {
	// Fleet: one worker, one coordinator, real listeners.
	workerSess, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	worker := fleet.NewWorker(workerSess)
	workerURL := serveHandler(t, worker.Mux())
	coord := fleet.NewCoordinator(fleet.Options{})
	t.Cleanup(coord.Close)
	coordURL := serveHandler(t, coord.Mux())
	coord.Register(workerURL)

	// Plan server in fleet mode.
	sess, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	dispatcher := &fleetDispatcher{
		client: &fleet.Client{Base: coordURL, Poll: 20 * time.Millisecond},
		sess:   sess,
	}
	base := serveHandler(t, newMux(sess, dispatcher))

	q := session.Query{
		Source:  workload.DirectSource(workload.DirectParams{NX: 4096, NP: 4}),
		Machine: "mpich-gm-2005",
		NP:      4,
	}
	cold, resp := postPlan(t, base, q)
	if cold == nil {
		t.Fatalf("cold POST /plan = %d, want 200", resp.StatusCode)
	}
	if cold.MemoHit {
		t.Fatal("cold fleet-dispatched query reported memo_hit")
	}
	if cold.Choice.Plan == nil || len(cold.Choice.Plan.Sites) == 0 {
		t.Fatal("fleet-dispatched query returned no plan")
	}
	var stats session.Stats
	getJSON(t, base+"/stats", &stats)
	if stats.Store.Compiled != 0 {
		t.Errorf("plan server compiled %d variants in fleet mode, want 0 (the worker measures)", stats.Store.Compiled)
	}
	workerCompiled := workerSess.Stats().Store.Compiled
	if workerCompiled == 0 {
		t.Fatal("worker compiled nothing — the search did not run on the fleet")
	}

	warm, resp := postPlan(t, base, q)
	if warm == nil {
		t.Fatalf("warm POST /plan = %d, want 200", resp.StatusCode)
	}
	if !warm.MemoHit {
		t.Fatal("repeat of a fleet-dispatched query was not a memo hit")
	}
	if warm.Choice.Plan.Key() != cold.Choice.Plan.Key() {
		t.Fatal("memoized plan differs from the fleet-tuned plan")
	}
	if got := workerSess.Stats().Store.Compiled; got != workerCompiled {
		t.Errorf("repeat query compiled %d new variants on the worker, want 0", got-workerCompiled)
	}
	// One dispatched job total: the repeat never left the plan server.
	if st := coord.Status(); len(st.Jobs) != 1 {
		t.Errorf("coordinator saw %d jobs, want 1 (the repeat must be memo-served)", len(st.Jobs))
	}

	// The fleet-tuned choice agrees with a local inline search.
	localSess, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := localSess.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Choice.Plan.Key() != local.Choice.Plan.Key() {
		t.Errorf("fleet plan %s differs from inline plan %s", cold.Choice.Plan.Key(), local.Choice.Plan.Key())
	}
}

// serveHandler mounts a handler on an ephemeral listener.
func serveHandler(t *testing.T, h http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s = %d, want 200", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}
