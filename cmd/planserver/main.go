// Command planserver exposes the tuner as a resident service: one
// long-lived session (variant store + plan memo + execution engine) answers
// plan queries over HTTP, so the expensive parts of a query — compiling
// measured variants and searching plan space — are paid once per program
// shape and amortized across every client.
//
// Usage:
//
//	planserver [-addr :8714] [-engine bytecode|compile|walk] [-cache-dir DIR]
//	           [-fleet URL] [-drain 30s]
//
// With -fleet, a cold query (one the plan memo cannot answer) is not tuned
// inline: the server statically pre-vets the query's fixed-K baseline
// variant with internal/verify (refusing dispatch on any finding — a
// program the verifier flags must not burn fleet measurement time), then
// dispatches the tuning job to the fleet coordinator and memoizes the
// returned choice under the exact key a local search would have used. The
// repeat of a fleet-dispatched query is therefore a local memo hit: no
// dispatch, no search, no new compiles. Warm queries never leave the
// process either way. Share -cache-dir with the fleet's workers so
// pre-vetted verdicts (ledger markers) and compiled variants flow both
// ways.
//
// The server drains gracefully: SIGTERM/SIGINT stop the listener and
// in-flight /plan tuning jobs get -drain to finish, so the memo and stats
// are consistent at exit.
//
// Endpoints:
//
//	POST /plan    — body: a JSON query {source, machine, np, fixed_k?,
//	                max_measured?, k_only?, arrays?}; response: the tuning
//	                result {fingerprint, memo_hit, choice, verify} where
//	                choice.plan is the replayable overlap plan and verify
//	                is the static-verification verdict on the chosen
//	                plan's variant ({checked, clean, findings?}). The
//	                first query for a (program shape, machine, search
//	                params) tuple runs the seeded measured search; repeats
//	                are served from the analysis-fingerprint memo with
//	                memo_hit=true and no new search or compiles. Clean
//	                verify verdicts land in the session store's ledger, so
//	                repeats (and, with -cache-dir, restarts) skip
//	                re-verification.
//	GET  /stats   — the session's store and memo counters as JSON.
//	GET  /healthz — liveness probe; always "ok".
//
// A rejected query (no source, np < 1, unknown machine, malformed JSON)
// gets 400 with {"error": ...}; a body over the 16 MiB cap gets a JSON 413;
// a search failure gets 500 the same way.
// -cache-dir backs the session's variant store with the content-addressed
// on-disk layer shared with evalrunner, so a restarted server starts warm
// on every variant it ever compiled.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/plan"
	"repro/internal/session"
	"repro/internal/verify"
)

func main() {
	addr := flag.String("addr", ":8714", "listen address")
	engineName := flag.String("engine", "", "execution engine for measured runs: bytecode (default), compile, or walk")
	cacheDir := flag.String("cache-dir", "", "persist compiled variants content-addressed under this directory ('' = in-memory only)")
	fleetAddr := flag.String("fleet", "", "dispatch cold queries to a fleet coordinator at this base URL instead of tuning inline ('' = inline)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight queries")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "planserver: unexpected arguments:", flag.Args())
		os.Exit(2)
	}

	engine, err := exec.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planserver:", err)
		os.Exit(2)
	}
	var store exec.VariantStore
	if *cacheDir != "" {
		if engine == exec.EngineWalk {
			fmt.Fprintln(os.Stderr, "planserver: -cache-dir persists compiled variants; the walk engine compiles nothing")
			os.Exit(2)
		}
		store, err = exec.NewDiskStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "planserver: -cache-dir:", err)
			os.Exit(1)
		}
	}
	sess, err := session.New(session.Options{Engine: engine, Store: store})
	if err != nil {
		fmt.Fprintln(os.Stderr, "planserver:", err)
		os.Exit(1)
	}
	var dispatcher *fleetDispatcher
	if *fleetAddr != "" {
		dispatcher = &fleetDispatcher{client: &fleet.Client{Base: *fleetAddr}, sess: sess}
	}

	srv := &http.Server{Addr: *addr, Handler: newMux(sess, dispatcher), ReadHeaderTimeout: 10 * time.Second}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	log.Printf("planserver: engine %s, listening on %s", engine, *addr)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("planserver: %v", err)
		}
	case sig := <-sigCh:
		// Draining instead of dying keeps the memo and stats consistent:
		// an in-flight /plan finishes its search (and its memo store)
		// before the process exits.
		log.Printf("planserver: %v — draining for up to %s", sig, *drain)
		ctx, cancel := context.WithTimeout(context.Background(), *drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("planserver: drain deadline exceeded: %v", err)
		}
	}
}

// newMux wires the session into the HTTP surface. Split from main so the
// smoke test can mount the identical handler on an ephemeral listener.
// A nil dispatcher tunes cold queries inline; a non-nil one pre-vets and
// dispatches them to the fleet.
func newMux(s *session.Session, dispatcher *fleetDispatcher) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a plan query to /plan"))
			return
		}
		var q session.Query
		// A capped body keeps an accidental multi-gigabyte upload from
		// parking in memory; real queries are a few kilobytes of Fortran.
		// MaxBytesReader (unlike a bare LimitReader) closes the connection
		// and lets the cap be told apart from ordinary JSON garbage.
		r.Body = http.MaxBytesReader(w, r.Body, maxQueryBytes)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				writeError(w, http.StatusRequestEntityTooLarge,
					fmt.Errorf("query body exceeds %d bytes", tooBig.Limit))
				return
			}
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad query: %w", err))
			return
		}
		if strings.TrimSpace(q.Source) == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("query needs a non-empty program source"))
			return
		}
		var res *session.Result
		var err error
		if dispatcher != nil {
			res, err = s.PlanRemote(q, dispatcher.tune)
		} else {
			res, err = s.Plan(q)
		}
		if err != nil {
			// The session rejects malformed queries before any analysis or
			// search runs; those are the client's fault, the rest ours.
			status := http.StatusInternalServerError
			if session.IsQueryError(err) {
				status = http.StatusBadRequest
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, planResponse{Result: res, Verify: verifyChoice(s, q, res)})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET /stats"))
			return
		}
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// maxQueryBytes caps a /plan request body (16 MiB — three orders of
// magnitude above any real query, small enough to be harmless to hold).
const maxQueryBytes = 16 << 20

// verifyStatus is the static-verification verdict a /plan response carries:
// the chosen plan's variant re-proven by the translation validator and the
// MPI schedule linter, without executing anything.
type verifyStatus struct {
	// Checked reports whether the static tier ran (it is skipped only when
	// the variant could not be regenerated).
	Checked bool `json:"checked"`
	// Clean reports a finding-free verdict.
	Clean bool `json:"clean"`
	// Findings are the rendered diagnostics of a dirty verdict.
	Findings []string `json:"findings,omitempty"`
}

// planResponse is the /plan payload: the session's tuning result plus the
// static verdict on the chosen plan.
type planResponse struct {
	*session.Result
	Verify verifyStatus `json:"verify"`
}

// verifyChoice statically verifies the chosen plan's variant. Clean verdicts
// are recorded in the session store's verify ledger (keyed by the
// original+transformed content pair), so a repeated query — or a restarted
// server sharing an on-disk store — answers from the ledger without
// re-proving anything.
func verifyChoice(s *session.Session, q session.Query, res *session.Result) verifyStatus {
	if res.Choice.Plan == nil {
		return verifyStatus{}
	}
	prog, err := s.Analyze(q.Source, int64(q.NP))
	if err != nil {
		return verifyStatus{}
	}
	out, rep, err := core.Apply(prog, res.Choice.Plan)
	if err != nil {
		return verifyStatus{Checked: true, Findings: []string{"apply: " + err.Error()}}
	}
	key := exec.KeyOf(prog.Source() + "\x00" + out)
	ledger, _ := s.Store().(exec.VerifyLedger)
	if ledger != nil && ledger.Verified(key) {
		return verifyStatus{Checked: true, Clean: true}
	}
	diags := verify.Variant(prog, res.Choice.Plan, out, rep)
	if len(diags) == 0 {
		if ledger != nil {
			ledger.MarkVerified(key)
		}
		return verifyStatus{Checked: true, Clean: true}
	}
	findings := make([]string, len(diags))
	for i, d := range diags {
		findings[i] = d.String()
	}
	return verifyStatus{Checked: true, Findings: findings}
}

// fleetDispatcher answers cold queries by dispatching the tuning job to a
// fleet coordinator. session.PlanRemote guarantees it only ever sees memo
// misses on validated queries, and memoizes whatever it returns.
type fleetDispatcher struct {
	client *fleet.Client
	sess   *session.Session
}

// tune pre-vets, then dispatches. The pre-vet statically proves the
// query's fixed-K baseline variant (the seed every measured search starts
// from) with internal/verify before any worker burns measured runs: a
// program the verifier flags gets refused here, at the cost of one local
// transform, instead of occupying a worker. Clean verdicts land in the
// session store's ledger — shared with the fleet's workers via -cache-dir —
// so the workers skip re-proving the same variant.
func (d *fleetDispatcher) tune(q session.Query) (*session.Result, error) {
	if err := d.preVet(q); err != nil {
		return nil, err
	}
	return d.client.RunTune(context.Background(), q)
}

func (d *fleetDispatcher) preVet(q session.Query) error {
	m, err := plan.ByName(q.Machine)
	if err != nil {
		return fmt.Errorf("session: %w", err)
	}
	fixedK := q.FixedK
	if fixedK <= 0 {
		fixedK = m.DefaultK()
	}
	prog, err := d.sess.Analyze(q.Source, int64(q.NP))
	if err != nil {
		return fmt.Errorf("session: analyze: %w", err)
	}
	pl := core.Options{K: fixedK}.Plan()
	out, rep, err := core.Apply(prog, pl)
	if err != nil {
		return fmt.Errorf("pre-vet: apply fixed-K baseline: %w", err)
	}
	key := exec.KeyOf(prog.Source() + "\x00" + out)
	ledger, _ := d.sess.Store().(exec.VerifyLedger)
	if ledger != nil && ledger.Verified(key) {
		return nil
	}
	if diags := verify.Variant(prog, pl, out, rep); len(diags) > 0 {
		return fmt.Errorf("pre-vet: static verifier refused dispatch: %s", verify.Summarize(diags))
	}
	if ledger != nil {
		ledger.MarkVerified(key)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("planserver: write response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
