// Command planserver exposes the tuner as a resident service: one
// long-lived session (variant store + plan memo + execution engine) answers
// plan queries over HTTP, so the expensive parts of a query — compiling
// measured variants and searching plan space — are paid once per program
// shape and amortized across every client.
//
// Usage:
//
//	planserver [-addr :8714] [-engine compile|walk] [-cache-dir DIR]
//
// Endpoints:
//
//	POST /plan    — body: a JSON query {source, machine, np, fixed_k?,
//	                max_measured?, k_only?, arrays?}; response: the tuning
//	                result {fingerprint, memo_hit, choice} where
//	                choice.plan is the replayable overlap plan. The first
//	                query for a (program shape, machine, search params)
//	                tuple runs the seeded measured search; repeats are
//	                served from the analysis-fingerprint memo with
//	                memo_hit=true and no new search or compiles.
//	GET  /stats   — the session's store and memo counters as JSON.
//	GET  /healthz — liveness probe; always "ok".
//
// A rejected query (no source, np < 1, unknown machine, malformed JSON)
// gets 400 with {"error": ...}; a search failure gets 500 the same way.
// -cache-dir backs the session's variant store with the content-addressed
// on-disk layer shared with evalrunner, so a restarted server starts warm
// on every variant it ever compiled.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"strings"

	"repro/internal/exec"
	"repro/internal/session"
)

func main() {
	addr := flag.String("addr", ":8714", "listen address")
	engineName := flag.String("engine", "", "execution engine for measured runs: compile (default) or walk")
	cacheDir := flag.String("cache-dir", "", "persist compiled variants content-addressed under this directory ('' = in-memory only)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "planserver: unexpected arguments:", flag.Args())
		os.Exit(2)
	}

	engine, err := exec.Resolve(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "planserver:", err)
		os.Exit(2)
	}
	var store exec.VariantStore
	if *cacheDir != "" {
		if engine == exec.EngineWalk {
			fmt.Fprintln(os.Stderr, "planserver: -cache-dir persists compiled variants; the walk engine compiles nothing")
			os.Exit(2)
		}
		store, err = exec.NewDiskStore(*cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "planserver: -cache-dir:", err)
			os.Exit(1)
		}
	}
	sess, err := session.New(session.Options{Engine: engine, Store: store})
	if err != nil {
		fmt.Fprintln(os.Stderr, "planserver:", err)
		os.Exit(1)
	}

	log.Printf("planserver: engine %s, listening on %s", engine, *addr)
	log.Fatal(http.ListenAndServe(*addr, newMux(sess)))
}

// newMux wires the session into the HTTP surface. Split from main so the
// smoke test can mount the identical handler on an ephemeral listener.
func newMux(s *session.Session) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/plan", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a plan query to /plan"))
			return
		}
		var q session.Query
		// A capped reader keeps an accidental multi-gigabyte body from
		// parking in memory; real queries are a few kilobytes of Fortran.
		dec := json.NewDecoder(io.LimitReader(r.Body, 16<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad query: %w", err))
			return
		}
		res, err := s.Plan(q)
		if err != nil {
			// The session rejects malformed queries before any analysis or
			// search runs; those are the client's fault, the rest ours.
			status := http.StatusInternalServerError
			if isQueryError(err) {
				status = http.StatusBadRequest
			}
			writeError(w, status, err)
			return
		}
		writeJSON(w, res)
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("GET /stats"))
			return
		}
		writeJSON(w, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// isQueryError reports whether a Plan failure was caused by the query
// itself (validation or a program that does not parse/analyze) rather than
// by the search machinery.
func isQueryError(err error) bool {
	msg := err.Error()
	return strings.HasPrefix(msg, "session: query") ||
		strings.HasPrefix(msg, "session: analyze") ||
		strings.Contains(msg, "unknown machine")
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("planserver: write response: %v", err)
	}
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
