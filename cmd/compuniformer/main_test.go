package main

import (
	"os"
	osexec "os/exec"
	"strings"
	"testing"
)

// TestMain re-invokes main when the harness env var is set, so exit-code
// tests can spawn the real command from the test binary without a build.
func TestMain(m *testing.M) {
	if args, ok := os.LookupEnv("COMPUNIFORMER_ARGS"); ok {
		os.Args = append([]string{"compuniformer"}, strings.Fields(args)...)
		main()
		return
	}
	os.Exit(m.Run())
}

// TestUnknownEngineExit2: a bad -engine name is a usage error (exit 2),
// diagnosed before any transformation work happens.
func TestUnknownEngineExit2(t *testing.T) {
	cases := []struct {
		name string
		args string
	}{
		{name: "unknown engine", args: "-engine jit"},
		{name: "misspelled tier", args: "-engine byte-code"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmd := osexec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "COMPUNIFORMER_ARGS="+c.args)
			cmd.Stdin = strings.NewReader("") // main reads stdin before flags are validated
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*osexec.ExitError)
			if !ok {
				t.Fatalf("compuniformer %s: err = %v (output %q), want exit error", c.args, err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("compuniformer %s: exit %d (output %q), want 2", c.args, code, out)
			}
			if !strings.Contains(string(out), "unknown engine") {
				t.Fatalf("compuniformer %s: output %q does not mention the unknown engine", c.args, out)
			}
		})
	}
}
