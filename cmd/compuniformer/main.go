// Command compuniformer is the paper's source-to-source transformer: it
// reads a Fortran program that exchanges arrays with MPI_ALLTOALL after a
// finalizing loop nest, and rewrites it to pre-push the data with
// asynchronous sends inside the loop (maximizing communication-computation
// overlap).
//
// Usage:
//
//	compuniformer [-k N] [-np N] [-report] [-verify] [-per-tile-wait]
//	              [-answer proc:array=yes,...] [input.f90]
//
// The transformed source is written to stdout; the analysis report to
// stderr. Without an input file, stdin is read. With -verify, both the
// original and the transformed program are executed on the simulated
// cluster under both network stacks and their observable results compared
// (the paper's §4 correctness protocol); a mismatch is a fatal error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
)

func main() {
	k := flag.Int64("k", 8, "tile size: iterations of the finalized loop per tile")
	np := flag.Int64("np", 0, "target rank count (default: the program's 'np' parameter)")
	report := flag.Bool("report", false, "print only the analysis report, not the transformed source")
	verify := flag.Bool("verify", false, "run original and transformed on the simulator and compare results")
	perTileWait := flag.Bool("per-tile-wait", false, "use the paper's literal per-tile wait schedule (§3.6 step 2)")
	answers := flag.String("answer", "", "semi-automatic oracle answers, e.g. 'fill:as=yes,trash:as=no'")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	opts := core.Options{K: *k, NP: *np, PerTileWait: *perTileWait}
	if *answers != "" {
		oracle := analysis.MapOracle{}
		for _, kv := range strings.Split(*answers, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad -answer entry %q (want proc:array=yes|no)", kv))
			}
			oracle[parts[0]] = parts[1] == "yes" || parts[1] == "true"
		}
		opts.Oracle = oracle
	}

	out, rep, err := core.Transform(src, opts)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, rep)
	if *verify && rep.TransformedCount() > 0 {
		if err := verifyEquivalence(src, out, int(*np)); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "verify: original and transformed produce identical results on both stacks")
	}
	if !*report {
		fmt.Print(out)
	}
	if rep.TransformedCount() == 0 {
		os.Exit(2)
	}
}

// verifyEquivalence runs both versions on the simulated cluster under both
// network profiles and compares printed output and the receive arrays.
func verifyEquivalence(src, transformed string, np int) error {
	if np == 0 {
		// Use the program's np parameter via a probe run of the analysis;
		// simplest robust default: 4.
		np = 4
	}
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		po, err := interp.Load(src)
		if err != nil {
			return fmt.Errorf("verify: load original: %w", err)
		}
		ro, err := po.Run(np, prof)
		if err != nil {
			return fmt.Errorf("verify: run original (%s): %w", prof, err)
		}
		pt, err := interp.Load(transformed)
		if err != nil {
			return fmt.Errorf("verify: load transformed: %w", err)
		}
		rt, err := pt.Run(np, prof)
		if err != nil {
			return fmt.Errorf("verify: run transformed (%s): %w", prof, err)
		}
		if same, why := interp.SameObservable(ro, rt, receiveArrays(ro, rt)...); !same {
			return fmt.Errorf("verify: MISMATCH under %s: %s", prof, why)
		}
		fmt.Fprintf(os.Stderr, "verify: %-10s original %-12s prepush %-12s\n",
			prof.Name, ro.Elapsed(), rt.Elapsed())
	}
	return nil
}

// receiveArrays returns the arrays present in both runs (the send array of
// an indirect site is dead in the transformed program, so only arrays both
// programs still hold comparable data for are checked; the printed output
// is always compared).
func receiveArrays(a, b *interp.Result) []string {
	var names []string
	if len(a.Arrays) == 0 || len(b.Arrays) == 0 {
		return names
	}
	for name := range a.Arrays[0] {
		if name == "ar" {
			names = append(names, name)
		}
	}
	return names
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compuniformer:", err)
	os.Exit(1)
}
