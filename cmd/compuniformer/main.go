// Command compuniformer is the paper's source-to-source transformer: it
// reads a Fortran program that exchanges arrays with MPI_ALLTOALL after a
// finalizing loop nest, and rewrites it to pre-push the data with
// asynchronous sends inside the loop (maximizing communication-computation
// overlap). It is a front-end over the Analyze → Plan → Apply pipeline:
// every run builds (or loads) a serializable overlap plan and replays it.
//
// Usage:
//
//	compuniformer [-k N] [-np N] [-machine name] [-report] [-verify]
//	              [-engine bytecode|compile|walk]
//	              [-wait deferred|per-tile] [-send-order staggered|sequential]
//	              [-interchange auto|on|off] [-interchange-min-bytes N]
//	              [-skip-sites line:col,...|all]
//	              [-plan out.json] [-apply-plan in.json]
//	              [-answer proc:array=yes,...] [input.f90]
//
// The transformed source is written to stdout; the analysis report to
// stderr. Without an input file, stdin is read. -plan dumps the plan that
// was applied (with one site entry per analyzed MPI_ALLTOALL, so it can be
// edited per site and replayed with -apply-plan; "-" dumps to stdout in
// place of the transformed source). -apply-plan replays a previously
// dumped plan verbatim, ignoring the knob flags. -skip-sites marks the
// named sites (or "all") as identity decisions — the transformation is
// declined there and the site's code is left byte-for-byte untouched; a
// plan file can express the same thing with "skip": true per decision. With -verify, the
// static verification tier (internal/verify: translation validator + MPI
// schedule linter) first re-proves the transformation without executing
// anything, then both the original and the transformed program are executed
// on the simulated cluster under the selected machine models and their
// observable results compared (the paper's §4 correctness protocol); a
// static finding or a dynamic mismatch is a fatal error. -engine picks the
// execution engine for the dynamic runs: the bytecode tier (default),
// the compiled closure engine, or the tree-walking oracle.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/plan"
	"repro/internal/verify"
)

func main() {
	k := flag.Int64("k", 0, "tile size: iterations of the finalized loop per tile (0 = machine default)")
	np := flag.Int64("np", 0, "target rank count (default: the program's 'np' parameter)")
	machineName := flag.String("machine", "mpich-gm-2005", "machine model the plan targets (see internal/plan)")
	report := flag.Bool("report", false, "print only the analysis report, not the transformed source")
	verifyFlag := flag.Bool("verify", false, "statically verify the transformation, then run original and transformed on the simulator and compare results")
	engineName := flag.String("engine", "", "execution engine for -verify: bytecode (default), compile, or walk (tree-walking oracle)")
	wait := flag.String("wait", "", "wait schedule: deferred (default) or per-tile (the paper's §3.6 step 2)")
	perTileWait := flag.Bool("per-tile-wait", false, "deprecated alias for -wait per-tile")
	sendOrder := flag.String("send-order", "", "subset-send order: staggered (default) or sequential (paper's owner order)")
	interchange := flag.String("interchange", "", "§3.5 interchange: auto (granularity gate, default), on, or off")
	interchangeMin := flag.Int64("interchange-min-bytes", 0, "auto-gate threshold in bytes (0 = default 2048)")
	planOut := flag.String("plan", "", "dump the applied plan as JSON to this path ('-' = stdout, replacing the source)")
	planIn := flag.String("apply-plan", "", "replay a plan JSON file instead of building one from flags")
	skipSites := flag.String("skip-sites", "", "comma-separated 'line:col' sites to leave untransformed ('all' skips every site)")
	answers := flag.String("answer", "", "semi-automatic oracle answers, e.g. 'fill:as=yes,trash:as=no'")
	flag.Parse()

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	machine, err := plan.ByName(*machineName)
	if err != nil {
		fatal(err)
	}
	engine, err := exec.ParseEngine(*engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "compuniformer:", err)
		os.Exit(2) // usage error, like every other command's engine flag
	}

	aopts := core.AnalyzeOptions{NP: *np}
	if *answers != "" {
		oracle := analysis.MapOracle{}
		for _, kv := range strings.Split(*answers, ",") {
			parts := strings.SplitN(kv, "=", 2)
			if len(parts) != 2 {
				fatal(fmt.Errorf("bad -answer entry %q (want proc:array=yes|no)", kv))
			}
			oracle[parts[0]] = parts[1] == "yes" || parts[1] == "true"
		}
		aopts.Oracle = oracle
	}

	prog, err := core.Analyze(src, aopts)
	if err != nil {
		fatal(err)
	}

	var pl *plan.Plan
	if *planIn != "" {
		b, err := os.ReadFile(*planIn)
		if err != nil {
			fatal(err)
		}
		if pl, err = plan.Decode(b); err != nil {
			fatal(err)
		}
	} else {
		pl = plan.Default(machine)
		pl.NP = *np
		d := &pl.Default
		if *k > 0 {
			d.K = *k
		}
		if *perTileWait {
			d.Wait = plan.WaitPerTile
		}
		if *wait != "" {
			d.Wait = plan.WaitSchedule(*wait)
		}
		if *sendOrder != "" {
			d.SendOrder = plan.SendOrder(*sendOrder)
		}
		if *interchange != "" {
			d.Interchange = plan.Interchange(*interchange)
		}
		if *interchangeMin > 0 {
			d.InterchangeMinBlockBytes = *interchangeMin
		}
		// Materialize one entry per analyzed site so a dumped plan can be
		// edited per site before replaying.
		for i := range prog.Sites {
			pl.Set(prog.Sites[i].Key(), pl.Default)
		}
		// -skip-sites marks the named sites (or all of them) as identity
		// decisions: the transformation is advice, and "don't" is a
		// first-class per-site choice.
		if *skipSites != "" {
			for _, site := range strings.Split(*skipSites, ",") {
				site = strings.TrimSpace(site)
				if site == "all" {
					for i := range prog.Sites {
						pl.Set(prog.Sites[i].Key(), plan.Identity())
					}
					pl.Default = plan.Identity()
					continue
				}
				if prog.Site(site) == nil {
					fatal(fmt.Errorf("-skip-sites: site %q not found in the program (have %s)", site, siteList(prog)))
				}
				pl.Set(site, plan.Identity())
			}
		}
		if err := pl.Validate(); err != nil {
			fatal(err)
		}
	}

	out, rep, err := core.Apply(prog, pl)
	if err != nil {
		fatal(err)
	}
	fmt.Fprint(os.Stderr, rep)

	if *planOut != "" {
		b, err := pl.Encode()
		if err != nil {
			fatal(err)
		}
		if *planOut == "-" {
			fmt.Print(string(b))
		} else if err := os.WriteFile(*planOut, b, 0o644); err != nil {
			fatal(err)
		} else {
			fmt.Fprintf(os.Stderr, "plan written to %s\n", *planOut)
		}
	}

	if *verifyFlag {
		// Static tier first: it needs no execution, so its verdict arrives
		// before any simulated run and catches schedule defects a lucky
		// dynamic comparison could miss.
		if diags := verify.Variant(prog, pl, out, rep); len(diags) > 0 {
			fatal(fmt.Errorf("static verify: %s", verify.Summarize(diags)))
		}
		fmt.Fprintln(os.Stderr, "verify: static validator and MPI schedule linter clean")
	}
	if *verifyFlag && rep.TransformedCount() > 0 {
		// The plan's NP wins when -np is unset: a replayed plan may have
		// specialized the transformation for its own rank count.
		npv := *np
		if npv == 0 {
			npv = pl.NP
		}
		if err := verifyEquivalence(src, out, int(npv), machine, engine); err != nil {
			fatal(err)
		}
		fmt.Fprintln(os.Stderr, "verify: original and transformed produce identical results on all machines")
	}
	if !*report && *planOut != "-" {
		fmt.Print(out)
	}
	// Exit 2 signals "the transformation did not fire" — but a site skipped
	// by plan is a deliberate identity decision, not a failure to fire.
	if rep.TransformedCount() == 0 && rep.SkippedCount() == 0 {
		os.Exit(2)
	}
}

// siteList renders the program's analyzed site keys for error messages.
func siteList(prog *core.Program) string {
	var keys []string
	for i := range prog.Sites {
		keys = append(keys, prog.Sites[i].Key())
	}
	return strings.Join(keys, ", ")
}

// verifyEquivalence runs both versions on the simulated cluster under the
// paper pair plus the selected machine and compares printed output and the
// receive arrays.
func verifyEquivalence(src, transformed string, np int, selected plan.Machine, engine exec.Engine) error {
	if np == 0 {
		// Use the program's np parameter via a probe run of the analysis;
		// simplest robust default: 4.
		np = 4
	}
	machines := plan.PaperPair()
	have := false
	for _, m := range machines {
		if m.Name == selected.Name {
			have = true
		}
	}
	if !have {
		machines = append(machines, selected)
	}
	for _, m := range machines {
		ro, err := engine.Run(src, np, m.Costs, m.Profile)
		if err != nil {
			return fmt.Errorf("verify: run original (%s): %w", m, err)
		}
		rt, err := engine.Run(transformed, np, m.Costs, m.Profile)
		if err != nil {
			return fmt.Errorf("verify: run transformed (%s): %w", m, err)
		}
		if same, why := interp.SameObservable(ro, rt, receiveArrays(ro, rt)...); !same {
			return fmt.Errorf("verify: MISMATCH under %s: %s", m, why)
		}
		fmt.Fprintf(os.Stderr, "verify: %-14s original %-12s prepush %-12s\n",
			m.Name, ro.Elapsed(), rt.Elapsed())
	}
	return nil
}

// receiveArrays returns the arrays present in both runs (the send array of
// an indirect site is dead in the transformed program, so only arrays both
// programs still hold comparable data for are checked; the printed output
// is always compared).
func receiveArrays(a, b *interp.Result) []string {
	var names []string
	if len(a.Arrays) == 0 || len(b.Arrays) == 0 {
		return names
	}
	for name := range a.Arrays[0] {
		if name == "ar" {
			names = append(names, name)
		}
	}
	return names
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "compuniformer:", err)
	os.Exit(1)
}
