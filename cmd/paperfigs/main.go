// Command paperfigs regenerates every figure of the paper in textual form:
//
//	Figure 1 — normalized execution times of original vs. pre-push under
//	           the MPICH-TCP and MPICH-GM stacks (the measured figure);
//	Figure 2 — the direct-pattern code before/after transformation;
//	Figure 3 — the indirect-pattern code before/after copy removal;
//	Figure 4 — the generated staggered communication code.
//
// Usage:
//
//	paperfigs [-fig 1|2|3|4|all]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/workload"
)

func main() {
	fig := flag.String("fig", "all", "which figure to regenerate (1, 2, 3, 4, all)")
	flag.Parse()

	switch *fig {
	case "1":
		figure1()
	case "2":
		figure2()
	case "3":
		figure3()
	case "4":
		figure4()
	case "all":
		figure1()
		figure2()
		figure3()
		figure4()
	default:
		fmt.Fprintf(os.Stderr, "paperfigs: unknown figure %q\n", *fig)
		os.Exit(1)
	}
}

func header(title string) {
	fmt.Println(strings.Repeat("=", 72))
	fmt.Println(title)
	fmt.Println(strings.Repeat("=", 72))
}

func figure1() {
	header("Figure 1: performance improvement achieved by pre-pushing")
	cmp, err := workload.Figure1()
	if err != nil {
		fatal(err)
	}
	fmt.Println(cmp)
	fmt.Println("bars (normalized execution time, smaller is better):")
	norm := cmp.Normalized()
	order := []string{"mpich-tcp original", "mpich-tcp prepush", "mpich-gm original", "mpich-gm prepush"}
	for _, key := range order {
		n := norm[key]
		fmt.Printf("  %-22s %-6.2f %s\n", key, n, strings.Repeat("#", int(n*24)))
	}
	fmt.Println()
}

func figure2() {
	header("Figure 2: direct-pattern target code before and after transformation")
	src := workload.DirectSource(workload.DirectParams{NX: 64, Outer: 4, NP: 8, Weight: 0})
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- (a) before ---")
	fmt.Println(src)
	fmt.Println("--- (b) after (K = 4) ---")
	fmt.Println(out)
	fmt.Fprint(os.Stderr, rep)
	fmt.Println()
}

func figure3() {
	header("Figure 3: indirect pattern before and after removing the redundant copy")
	src := workload.IndirectSource(workload.IndirectParams{N: 8, NP: 4, Weight: 0})
	out, rep, err := core.Transform(src, core.Options{K: 2})
	if err != nil {
		fatal(err)
	}
	fmt.Println("--- (a) before ---")
	fmt.Println(src)
	fmt.Println("--- (b) after (K = 2, temporary expanded with a buffer dimension) ---")
	fmt.Println(out)
	fmt.Fprint(os.Stderr, rep)
	fmt.Println()
}

func figure4() {
	header("Figure 4: generated communication code (staggered all-peers exchange)")
	src := workload.Inner3DSource(workload.Inner3DParams{M: 4, NY: 16, SZ: 8, NP: 4, Weight: 0})
	out, _, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		fatal(err)
	}
	// Show only the generated exchange block, like the paper's figure.
	lines := strings.Split(out, "\n")
	start, end := -1, -1
	for i, l := range lines {
		if strings.Contains(l, "pre-push tile exchange") {
			start = i - 1
		}
		if start >= 0 && strings.Contains(l, "local copy of this rank") {
			end = i
			break
		}
	}
	if start < 0 || end < 0 {
		fatal(fmt.Errorf("exchange block not found in transformed source"))
	}
	for _, l := range lines[start:end] {
		fmt.Println(l)
	}
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "paperfigs:", err)
	os.Exit(1)
}
