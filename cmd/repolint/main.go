// Command repolint enforces the repository's own code invariants with a
// stdlib go/ast pass — the ones regressions keep trying to reintroduce:
//
//  1. No package-level mutable state outside an explicit allowlist.
//     Process-global state breaks session isolation (concurrent sweeps must
//     not share counters) and reproducibility. Error sentinels
//     (`var Err... = errors.New/fmt.Errorf(...)`) and blank-identifier
//     assertions (`var _ Iface = ...`) are allowed automatically; anything
//     else needs an allowlist entry next to a reason.
//  2. No time.Now/time.Since in deterministic packages. Every measured
//     number must come from the simulated clock so reports are
//     bit-reproducible; only internal/harness may read the wall clock (its
//     wall-time counters are explicitly volatile and normalized away by the
//     tests).
//  3. Memo hygiene in internal/tune: any function that touches the memo's
//     entries map must route the Choice through cloneChoice, so the memo
//     stores deep copies and hands out deep copies — callers annotate their
//     Choice without corrupting the cache.
//  4. No timeout-less net/http servers in cmd/. An http.Server composite
//     literal must set ReadHeaderTimeout, and the http.ListenAndServe /
//     http.Serve conveniences (which construct a timeout-less server
//     internally) are banned outright — a slow-loris client dribbling
//     header bytes would otherwise pin a planserver/fleetd connection
//     forever.
//  5. Hot-path discipline in internal/exec: no reflect import, and no
//     func-valued map types (map-based dispatch tables). The execution
//     engines are the inner loop of every sweep; dispatch there is a flat
//     switch over opcodes or an array index, never a hash lookup or a
//     reflective call.
//
// Usage:
//
//	repolint [dir]
//
// dir defaults to ".". Test files (_test.go) are exempt from rule 1 and 2 —
// tests legitimately use fixtures and wall-clock bounds. Exit status is 1
// when any finding is reported, 2 on a usage or parse error.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// allowedGlobals is the package-level mutable state the repository accepts,
// keyed by "<package dir>:<identifier>". Every entry carries its reason —
// an addition here is a design decision, not a lint appeasement.
var allowedGlobals = map[string]string{
	// The zero-configuration fallback store behind Engine.Run; sessions
	// inject their own store and never touch it.
	"internal/exec:defaultStoreOnce": "process-default store is lazily built exactly once",
	"internal/exec:defaultStore":     "process-default store for store-less callers",
	// Immutable lookup tables built once at init and only ever read.
	"internal/ftn:tokNames":     "token-kind name table (read-only)",
	"internal/ftn:dotOps":       "Fortran dot-operator table (read-only)",
	"internal/ftn:relOps":       "relational-operator spelling table (read-only)",
	"internal/plan:aliases":     "machine-name alias table (read-only)",
	"internal/interp:mpiConsts": "MPI named-constant table (read-only)",
	// The linter's own configuration tables (read-only).
	"cmd/repolint:allowedGlobals":  "this allowlist",
	"cmd/repolint:wallClockExempt": "wall-clock exemption table (read-only)",
}

// deterministicRoot is the tree where wall-clock reads are banned; the
// packages under it compute simulated time only.
const deterministicRoot = "internal"

// wallClockExempt lists deterministic-tree packages allowed to read the
// wall clock (reported as explicitly volatile counters).
var wallClockExempt = map[string]bool{
	"internal/harness": true,
	// Dispatch plumbing, not measurement: heartbeat TTLs, per-item request
	// deadlines, and retry backoff are wall-clock by nature; every measured
	// number inside a shard still comes from the simulated clock.
	"internal/fleet": true,
}

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: repolint [dir]")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() > 1 {
		flag.Usage()
		os.Exit(2)
	}
	root := "."
	if flag.NArg() == 1 {
		root = flag.Arg(0)
	}
	findings, err := lintTree(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "repolint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}

// lintTree walks a module tree and lints every non-test Go file.
func lintTree(root string) ([]string, error) {
	var findings []string
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") && path != root {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		findings = append(findings, lintFile(fset, filepath.ToSlash(rel), f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(findings)
	return findings, nil
}

// lintFile applies every rule to one parsed file; rel is the file path
// relative to the module root (slash-separated).
func lintFile(fset *token.FileSet, rel string, f *ast.File) []string {
	var findings []string
	pkgDir := filepath.ToSlash(filepath.Dir(rel))
	isTest := strings.HasSuffix(rel, "_test.go")

	report := func(pos token.Pos, rule, format string, args ...any) {
		findings = append(findings, fmt.Sprintf("%s: %s: %s",
			fset.Position(pos), rule, fmt.Sprintf(format, args...)))
	}

	if !isTest {
		lintGlobals(pkgDir, f, report)
		lintWallClock(pkgDir, f, report)
		lintHTTPTimeouts(pkgDir, f, report)
		lintExecHotPath(pkgDir, f, report)
	}
	lintMemoClone(pkgDir, f, report)
	return findings
}

type reportFn func(pos token.Pos, rule, format string, args ...any)

// lintGlobals flags package-level var declarations that are neither
// auto-allowed (blank assertions, error sentinels) nor allowlisted.
func lintGlobals(pkgDir string, f *ast.File, report reportFn) {
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			continue
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				if name.Name == "_" {
					continue // interface-satisfaction assertion
				}
				if i < len(vs.Values) && isErrorSentinel(vs.Values[i]) {
					continue
				}
				if _, ok := allowedGlobals[pkgDir+":"+name.Name]; ok {
					continue
				}
				report(name.Pos(), "mutable-global",
					"package-level var %s is mutable process state; scope it to a session or allowlist it with a reason", name.Name)
			}
		}
	}
}

// isErrorSentinel reports whether a value is an errors.New or fmt.Errorf
// call — the conventional immutable error sentinel.
func isErrorSentinel(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	pkg, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	return (pkg.Name == "errors" && sel.Sel.Name == "New") ||
		(pkg.Name == "fmt" && sel.Sel.Name == "Errorf")
}

// lintWallClock flags time.Now/time.Since in deterministic packages.
func lintWallClock(pkgDir string, f *ast.File, report reportFn) {
	if !strings.HasPrefix(pkgDir, deterministicRoot+"/") || wallClockExempt[pkgDir] {
		return
	}
	if !importsPackage(f, "time") {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "time" &&
			(sel.Sel.Name == "Now" || sel.Sel.Name == "Since") {
			report(sel.Pos(), "wall-clock",
				"time.%s in deterministic package %s; measured numbers must come from the simulated clock", sel.Sel.Name, pkgDir)
		}
		return true
	})
}

// importsPackage reports whether the file imports the named stdlib package
// under its default name (the last path element — "http" for "net/http").
func importsPackage(f *ast.File, path string) bool {
	base := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		base = path[i+1:]
	}
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == path && (imp.Name == nil || imp.Name.Name == base) {
			return true
		}
	}
	return false
}

// lintHTTPTimeouts flags net/http servers in cmd/ that can be held open by
// a client that never finishes its request headers: an http.Server literal
// without ReadHeaderTimeout, or the package-level ListenAndServe/Serve
// conveniences (whose implicit server has no timeouts at all).
func lintHTTPTimeouts(pkgDir string, f *ast.File, report reportFn) {
	if pkgDir != "cmd" && !strings.HasPrefix(pkgDir, "cmd/") {
		return
	}
	if !importsPackage(f, "net/http") {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			sel, ok := n.Type.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "http" || sel.Sel.Name != "Server" {
				return true
			}
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "ReadHeaderTimeout" {
						return true
					}
				}
			}
			report(n.Pos(), "http-timeout",
				"http.Server constructed without ReadHeaderTimeout; a slow-loris client can pin the connection forever")
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); ok && pkg.Name == "http" &&
				(sel.Sel.Name == "ListenAndServe" || sel.Sel.Name == "ListenAndServeTLS" || sel.Sel.Name == "Serve") {
				report(sel.Pos(), "http-timeout",
					"http.%s builds a server with no timeouts; construct an http.Server with ReadHeaderTimeout and call its methods", sel.Sel.Name)
			}
		}
		return true
	})
}

// lintExecHotPath keeps the execution engines' inner loop flat: no
// reflect (a reflective call in the dispatch path costs more than the
// instruction it dispatches), and no func-valued map type — a map from
// anything to a func is a dispatch table, and dispatch in internal/exec
// must be a flat switch over opcodes or an array index, never a hash
// lookup per instruction.
func lintExecHotPath(pkgDir string, f *ast.File, report reportFn) {
	if pkgDir != "internal/exec" {
		return
	}
	for _, imp := range f.Imports {
		if strings.Trim(imp.Path.Value, `"`) == "reflect" {
			report(imp.Pos(), "exec-hot-path",
				"internal/exec must not import reflect; the engines dispatch through flat switches, not reflection")
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		mt, ok := n.(*ast.MapType)
		if !ok {
			return true
		}
		if _, ok := mt.Value.(*ast.FuncType); ok {
			report(mt.Pos(), "exec-hot-path",
				"func-valued map in internal/exec is a map-based dispatch table; use a flat switch or an array indexed by opcode")
		}
		return true
	})
}

// lintMemoClone enforces the deep-copy contract of the plan memo: any
// function in internal/tune whose body indexes the entries map must call
// cloneChoice — dropping the clone aliases cached Choices into callers.
func lintMemoClone(pkgDir string, f *ast.File, report reportFn) {
	if pkgDir != "internal/tune" {
		return
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		touchesEntries := false
		callsClone := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.IndexExpr:
				if sel, ok := n.X.(*ast.SelectorExpr); ok && sel.Sel.Name == "entries" {
					touchesEntries = true
				}
			case *ast.CallExpr:
				if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "cloneChoice" {
					callsClone = true
				}
			}
			return true
		})
		if touchesEntries && !callsClone {
			report(fd.Pos(), "memo-alias",
				"%s touches the memo's entries map without cloneChoice; the memo must store and hand out deep copies", fd.Name.Name)
		}
	}
}
