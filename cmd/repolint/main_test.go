package main

import (
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// lintSrc parses a synthetic file as if it lived at rel and lints it.
func lintSrc(t *testing.T, rel, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, rel, src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	return lintFile(fset, rel, f)
}

func wantRule(t *testing.T, findings []string, rule string) {
	t.Helper()
	for _, f := range findings {
		if strings.Contains(f, rule) {
			return
		}
	}
	t.Errorf("no %s finding in %v", rule, findings)
}

func TestMutableGlobalRule(t *testing.T) {
	cases := []struct {
		name string
		rel  string
		src  string
		want bool // a mutable-global finding expected
	}{
		{name: "plain mutable var", rel: "internal/foo/a.go", want: true,
			src: "package foo\nvar cache = map[string]int{}\n"},
		{name: "error sentinel errors.New", rel: "internal/foo/a.go", want: false,
			src: "package foo\nimport \"errors\"\nvar ErrBad = errors.New(\"bad\")\n"},
		{name: "error sentinel fmt.Errorf", rel: "internal/foo/a.go", want: false,
			src: "package foo\nimport \"fmt\"\nvar errStop = fmt.Errorf(\"stop\")\n"},
		{name: "blank assertion", rel: "internal/foo/a.go", want: false,
			src: "package foo\nvar _ error = (*myErr)(nil)\ntype myErr struct{}\nfunc (*myErr) Error() string { return \"\" }\n"},
		{name: "allowlisted", rel: "internal/plan/machine.go", want: false,
			src: "package plan\nvar aliases = map[string]string{}\n"},
		{name: "allowlist is per package", rel: "internal/foo/a.go", want: true,
			src: "package foo\nvar aliases = map[string]string{}\n"},
		{name: "test file exempt", rel: "internal/foo/a_test.go", want: false,
			src: "package foo\nvar fixtures = map[string]int{}\n"},
		{name: "const is not state", rel: "internal/foo/a.go", want: false,
			src: "package foo\nconst limit = 3\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			findings := lintSrc(t, c.rel, c.src)
			if c.want {
				wantRule(t, findings, "mutable-global")
			} else if len(findings) != 0 {
				t.Errorf("unexpected findings: %v", findings)
			}
		})
	}
}

func TestWallClockRule(t *testing.T) {
	src := "package foo\nimport \"time\"\nfunc f() int64 { return time.Now().UnixNano() }\n"
	wantRule(t, lintSrc(t, "internal/foo/a.go", src), "wall-clock")

	since := "package foo\nimport \"time\"\nfunc f(t0 time.Time) time.Duration { return time.Since(t0) }\n"
	wantRule(t, lintSrc(t, "internal/foo/a.go", since), "wall-clock")

	// The harness is exempt; cmd/ and test files are out of scope.
	for _, rel := range []string{"internal/harness/a.go", "cmd/foo/a.go", "internal/foo/a_test.go"} {
		if findings := lintSrc(t, rel, src); len(findings) != 0 {
			t.Errorf("%s: unexpected findings %v", rel, findings)
		}
	}

	// Durations and the type itself are fine — only wall-clock reads are
	// banned.
	ok := "package foo\nimport \"time\"\nconst tick = 5 * time.Millisecond\n"
	if findings := lintSrc(t, "internal/foo/a.go", ok); len(findings) != 0 {
		t.Errorf("duration constant flagged: %v", findings)
	}
}

func TestMemoCloneRule(t *testing.T) {
	aliasing := `package tune
type Memo struct{ entries map[string]Choice }
type Choice struct{}
func (m *Memo) Lookup(k string) (Choice, bool) { ch, ok := m.entries[k]; return ch, ok }
`
	wantRule(t, lintSrc(t, "internal/tune/memo.go", aliasing), "memo-alias")

	cloned := `package tune
type Memo struct{ entries map[string]Choice }
type Choice struct{}
func cloneChoice(ch Choice) Choice { return ch }
func (m *Memo) Lookup(k string) (Choice, bool) { ch, ok := m.entries[k]; return cloneChoice(ch), ok }
`
	if findings := lintSrc(t, "internal/tune/memo.go", cloned); len(findings) != 0 {
		t.Errorf("cloned lookup flagged: %v", findings)
	}

	// The rule is scoped to internal/tune.
	elsewhere := strings.Replace(aliasing, "package tune", "package foo", 1)
	if findings := lintSrc(t, "internal/foo/memo.go", elsewhere); len(findings) != 0 {
		t.Errorf("out-of-scope memo code flagged: %v", findings)
	}
}

func TestHTTPTimeoutRule(t *testing.T) {
	bare := `package main
import "net/http"
func main() { srv := &http.Server{Addr: ":80"}; _ = srv }
`
	wantRule(t, lintSrc(t, "cmd/foo/main.go", bare), "http-timeout")

	convenience := `package main
import "net/http"
func main() { _ = http.ListenAndServe(":80", nil) }
`
	wantRule(t, lintSrc(t, "cmd/foo/main.go", convenience), "http-timeout")

	serveConvenience := `package main
import (
	"net"
	"net/http"
)
func main() { var ln net.Listener; _ = http.Serve(ln, nil) }
`
	wantRule(t, lintSrc(t, "cmd/foo/main.go", serveConvenience), "http-timeout")

	withTimeout := `package main
import (
	"net/http"
	"time"
)
func main() { srv := &http.Server{Addr: ":80", ReadHeaderTimeout: 10 * time.Second}; _ = srv }
`
	if findings := lintSrc(t, "cmd/foo/main.go", withTimeout); len(findings) != 0 {
		t.Errorf("ReadHeaderTimeout server flagged: %v", findings)
	}

	// Out of scope: internal packages (servers there are the caller's
	// responsibility to configure) and test files (ephemeral listeners).
	for _, rel := range []string{"internal/fleet/a.go", "cmd/foo/main_test.go"} {
		if findings := lintSrc(t, rel, bare); len(findings) != 0 {
			t.Errorf("%s: unexpected findings %v", rel, findings)
		}
	}

	// srv.ListenAndServe() on a configured server is the blessed pattern —
	// only the package-level conveniences are flagged.
	method := `package main
import (
	"net/http"
	"time"
)
func main() {
	srv := &http.Server{Addr: ":80", ReadHeaderTimeout: 10 * time.Second}
	_ = srv.ListenAndServe()
}
`
	if findings := lintSrc(t, "cmd/foo/main.go", method); len(findings) != 0 {
		t.Errorf("configured server's own ListenAndServe flagged: %v", findings)
	}
}

func TestExecHotPathRule(t *testing.T) {
	cases := []struct {
		name string
		rel  string
		src  string
		want bool // an exec-hot-path finding expected
	}{
		{name: "reflect import", rel: "internal/exec/fast.go", want: true,
			src: "package exec\nimport \"reflect\"\nfunc kind(v any) reflect.Kind { return reflect.TypeOf(v).Kind() }\n"},
		{name: "func-valued map type", rel: "internal/exec/fast.go", want: true,
			src: "package exec\nvar _ = map[string]func(){}\n"},
		{name: "func-valued map in signature", rel: "internal/exec/fast.go", want: true,
			src: "package exec\nfunc dispatch(tab map[int]func(int) int, op int) int { return tab[op](op) }\n"},
		{name: "data map is fine", rel: "internal/exec/fast.go", want: false,
			src: "package exec\nfunc index(names map[string]int, k string) int { return names[k] }\n"},
		{name: "flat switch is fine", rel: "internal/exec/fast.go", want: false,
			src: "package exec\nfunc step(op int) int { switch op {\ncase 0:\nreturn 1\n}\nreturn 0 }\n"},
		{name: "reflect allowed elsewhere", rel: "internal/foo/a.go", want: false,
			src: "package foo\nimport \"reflect\"\nfunc eq(a, b any) bool { return reflect.DeepEqual(a, b) }\n"},
		{name: "dispatch map allowed elsewhere", rel: "internal/foo/a.go", want: false,
			src: "package foo\nvar _ = map[string]func(){}\n"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			findings := lintSrc(t, c.rel, c.src)
			if c.want {
				wantRule(t, findings, "exec-hot-path")
			} else if len(findings) != 0 {
				t.Errorf("unexpected findings: %v", findings)
			}
		})
	}
}

// TestRepoIsClean is the enforcement test: the repository itself must lint
// clean (the CI lint job runs the binary; this keeps `go test ./...`
// equivalent).
func TestRepoIsClean(t *testing.T) {
	findings, err := lintTree("../..")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Error(f)
	}
}
