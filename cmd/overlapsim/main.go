// Command overlapsim runs a Fortran program of the supported subset on the
// simulated cluster and reports virtual execution time, per-rank compute
// and blocked breakdowns, and message statistics.
//
// Usage:
//
//	overlapsim [-np N] [-profile mpich-tcp|mpich-gm] [-eager BYTES]
//	           [-elem-ns N] [-quiet] [input.f90]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/interp"
	"repro/internal/netsim"
)

func main() {
	np := flag.Int("np", 4, "number of simulated ranks")
	profName := flag.String("profile", "mpich-gm", "network profile (mpich-tcp, mpich-gm)")
	eager := flag.Int64("eager", 0, "override the profile's eager threshold (bytes)")
	elemNs := flag.Int64("elem-ns", 0, "override per-array-store compute cost (ns)")
	quiet := flag.Bool("quiet", false, "suppress program output, print only statistics")
	flag.Parse()

	profs := netsim.Profiles()
	prof, ok := profs[*profName]
	if !ok {
		names := make([]string, 0, len(profs))
		for n := range profs {
			names = append(names, n)
		}
		sort.Strings(names)
		fatal(fmt.Errorf("unknown profile %q; have %v", *profName, names))
	}
	if *eager > 0 {
		prof.EagerThreshold = *eager
	}

	src, err := readInput(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	prog, err := interp.Load(src)
	if err != nil {
		fatal(err)
	}
	if *elemNs > 0 {
		prog.Costs.Store = netsim.Time(*elemNs)
	}
	res, err := prog.Run(*np, prof)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		for _, line := range res.OutputLines() {
			fmt.Println(line)
		}
	}
	fmt.Printf("profile   %s\n", prof.Name)
	fmt.Printf("ranks     %d\n", *np)
	fmt.Printf("elapsed   %s\n", res.Elapsed())
	fmt.Printf("messages  %d (%d bytes)\n", res.Stats.Messages, res.Stats.Bytes)
	for i, rs := range res.Stats.PerRank {
		fmt.Printf("rank %-3d  finish %-12s compute %-12s blocked %-12s\n",
			i, rs.Finish, rs.Compute, rs.Blocked)
	}
}

func readInput(path string) (string, error) {
	if path == "" || path == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(path)
	return string(b), err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "overlapsim:", err)
	os.Exit(1)
}
