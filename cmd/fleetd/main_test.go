package main

import (
	"os"
	osexec "os/exec"
	"strings"
	"testing"
)

// TestMain re-invokes main when the harness env var is set, so exit-code
// tests can spawn the real command from the test binary without a build.
func TestMain(m *testing.M) {
	if args, ok := os.LookupEnv("FLEETD_ARGS"); ok {
		os.Args = append([]string{"fleetd"}, strings.Fields(args)...)
		main()
		return
	}
	os.Exit(m.Run())
}

// TestUsageErrorsExit2: flag misuse — above all an unknown worker -engine
// name — must exit 2 (usage) before the process touches the network.
func TestUsageErrorsExit2(t *testing.T) {
	cases := []struct {
		name    string
		args    string
		wantOut string
	}{
		{name: "unknown engine", args: "-worker -coord http://127.0.0.1:1 -engine jit", wantOut: "unknown engine"},
		{name: "misspelled tier", args: "-worker -coord http://127.0.0.1:1 -engine byte-code", wantOut: "unknown engine"},
		{name: "engine without worker", args: "-engine walk", wantOut: "worker-mode flag"},
		{name: "worker without coord", args: "-worker -engine bytecode", wantOut: "-coord"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cmd := osexec.Command(os.Args[0])
			cmd.Env = append(os.Environ(), "FLEETD_ARGS="+c.args)
			out, err := cmd.CombinedOutput()
			ee, ok := err.(*osexec.ExitError)
			if !ok {
				t.Fatalf("fleetd %s: err = %v (output %q), want exit error", c.args, err, out)
			}
			if code := ee.ExitCode(); code != 2 {
				t.Fatalf("fleetd %s: exit %d (output %q), want 2", c.args, code, out)
			}
			if !strings.Contains(string(out), c.wantOut) {
				t.Fatalf("fleetd %s: output %q does not mention %q", c.args, out, c.wantOut)
			}
		})
	}
}
