// Command fleetd runs one node of the sweep fleet: a coordinator that
// decomposes sweeps into shard work items and merges the artifacts back, or
// (with -worker) a worker that executes shards and tuning queries through a
// session whose variant store and verify ledger live in the fleet's shared
// cache directory.
//
// Usage:
//
//	fleetd [-addr :8790] [-drain 30s]
//	fleetd -worker -coord http://host:8790 [-addr 127.0.0.1:0]
//	       [-advertise URL] [-engine bytecode|compile|walk] [-cache-dir DIR]
//	       [-heartbeat 3s] [-drain 30s]
//
// Coordinator endpoints: POST /enqueue ({kind: "sweep"|"tune", ...}),
// GET /job?id=, GET /status, POST /register, POST /heartbeat, GET /healthz.
// Worker endpoints: POST /run (one shard sweep), POST /tune (one plan
// query), GET /healthz.
//
// A worker listens first (so an ephemeral -addr like 127.0.0.1:0 resolves
// to a real port), then announces itself to the coordinator and heartbeats
// until shut down. -advertise overrides the announced URL when the
// coordinator must reach the worker through an address other than the
// listen one.
//
// Every fleetd node shuts down gracefully: SIGTERM/SIGINT stop the
// listener, in-flight requests get -drain to finish (a worker mid-shard
// completes the shard; the coordinator's dispatch bookkeeping stays
// consistent), then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/session"
)

func main() {
	addr := flag.String("addr", "", "listen address (default :8790 coordinator, 127.0.0.1:0 worker)")
	worker := flag.Bool("worker", false, "run as a worker instead of the coordinator")
	coord := flag.String("coord", "", "coordinator base URL (worker mode; required)")
	advertise := flag.String("advertise", "", "URL the coordinator should dial this worker at ('' = derive from the listen address)")
	engineName := flag.String("engine", "", "worker execution engine: bytecode (default), compile, or walk")
	cacheDir := flag.String("cache-dir", "", "shared variant-store directory (worker mode; '' = in-memory, private to this worker)")
	heartbeat := flag.Duration("heartbeat", 3*time.Second, "worker heartbeat interval")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintln(os.Stderr, "fleetd: unexpected arguments:", flag.Args())
		os.Exit(2)
	}

	if *worker {
		runWorker(*addr, *coord, *advertise, *engineName, *cacheDir, *heartbeat, *drain)
		return
	}
	for name, val := range map[string]string{"-coord": *coord, "-advertise": *advertise, "-engine": *engineName, "-cache-dir": *cacheDir} {
		if val != "" {
			fmt.Fprintf(os.Stderr, "fleetd: %s is a worker-mode flag; pass -worker\n", name)
			os.Exit(2)
		}
	}
	runCoordinator(*addr, *drain)
}

func runCoordinator(addr string, drain time.Duration) {
	if addr == "" {
		addr = ":8790"
	}
	c := fleet.NewCoordinator(fleet.Options{})
	defer c.Close()
	srv := &http.Server{Addr: addr, Handler: c.Mux(), ReadHeaderTimeout: 10 * time.Second}
	log.Printf("fleetd: coordinator listening on %s", addr)
	serveUntilSignal(srv, nil, drain)
}

func runWorker(addr, coord, advertise, engineName, cacheDir string, heartbeat, drain time.Duration) {
	if coord == "" {
		fmt.Fprintln(os.Stderr, "fleetd: -worker needs -coord (the coordinator base URL)")
		os.Exit(2)
	}
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	engine, err := exec.ParseEngine(engineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(2)
	}
	var store exec.VariantStore
	if cacheDir != "" {
		if engine == exec.EngineWalk {
			fmt.Fprintln(os.Stderr, "fleetd: -cache-dir persists compiled variants; the walk engine compiles nothing")
			os.Exit(2)
		}
		store, err = exec.NewDiskStore(cacheDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetd: -cache-dir:", err)
			os.Exit(1)
		}
	}
	sess, err := session.New(session.Options{Engine: engine, Store: store})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}

	// Listen before announcing so an ephemeral port resolves to the real
	// address the coordinator must dial.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
	self := advertise
	if self == "" {
		self = "http://" + ln.Addr().String()
	}
	srv := &http.Server{Handler: fleet.NewWorker(sess).Mux(), ReadHeaderTimeout: 10 * time.Second}

	ctx, stop := context.WithCancel(context.Background())
	defer stop()
	go fleet.Announce(ctx, nil, coord, self, heartbeat)
	log.Printf("fleetd: worker %s (engine %s) announcing to %s", self, engine, coord)
	serveUntilSignal(srv, ln, drain)
}

// serveUntilSignal serves until SIGTERM/SIGINT, then drains: the listener
// closes immediately, in-flight requests get the drain deadline to finish.
func serveUntilSignal(srv *http.Server, ln net.Listener, drain time.Duration) {
	errCh := make(chan error, 1)
	go func() {
		if ln != nil {
			errCh <- srv.Serve(ln)
			return
		}
		errCh <- srv.ListenAndServe()
	}()
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, syscall.SIGTERM, os.Interrupt)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("fleetd: %v", err)
		}
	case sig := <-sigCh:
		log.Printf("fleetd: %v — draining for up to %s", sig, drain)
		ctx, cancel := context.WithTimeout(context.Background(), drain)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("fleetd: drain deadline exceeded: %v", err)
		}
	}
}
