
program direct
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 64
  integer, parameter :: np = 8
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, iy, ierr, checksum

  call mpi_init(ierr)
  checksum = 0
  do iy = 1, 4
    do ix = 1, nx
      as(ix) = ix*3 + iy*7
    enddo
    call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
    checksum = checksum + ar(1) + ar(nx)
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program direct
