
program indirect
  implicit none
  include 'mpif.h'
  integer, parameter :: n = 8
  integer, parameter :: np = 4
  integer as(1:n, 1:n, 1:n)
  integer ar(1:n, 1:n, 1:n)
  integer at(1:64)
  integer iy, ix, tx, ty, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do iy = 1, n
    call p(iy, me, at)
    do ix = 1, 64
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1)/n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, 128, mpi_integer, ar, 128, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do iy = 1, n
    do ix = 1, n
      checksum = checksum + ar(ix, iy, 1)*ix + ar(iy, ix, n/2)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program indirect

subroutine p(iy, me, at)
  integer iy, me
  integer at(*)
  integer i
  do i = 1, 64
    at(i) = i*1000 + iy*10 + me
  enddo
end subroutine p
