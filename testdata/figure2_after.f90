program direct
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 64
  integer, parameter :: np = 8
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, iy, ierr, checksum
  integer cc_me, cc_np, cc_ierr, cc_nreq, cc_tile, cc_lo, cc_to, cc_from, cc_j, cc_off, cc_i
  integer cc_reqs(1:128)

  call mpi_init(ierr)
  checksum = 0
  do iy = 1, 4
    ! pre-push setup (inserted by compuniformer)
    call mpi_comm_rank(mpi_comm_world, cc_me, cc_ierr)
    call mpi_comm_size(mpi_comm_world, cc_np, cc_ierr)
    cc_nreq = 0
    cc_tile = 0
    do ix = 1, nx
      as(ix) = ix * 3 + iy * 7
      if (mod(ix, 4) == 0) then
        ! pre-push tile exchange (inserted by compuniformer)
        cc_lo = ix - 3
        cc_tile = cc_tile + 1
        cc_to = (cc_lo - 1) / 8
        cc_off = cc_lo - 1 - cc_to * 8
        if (cc_to /= cc_me) then
          cc_nreq = cc_nreq + 1
          call mpi_isend(as(cc_lo), 4, mpi_integer, cc_to, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)
        else
          do cc_j = 1, cc_np - 1
            cc_from = mod(cc_np + cc_me - cc_j, cc_np)
            cc_nreq = cc_nreq + 1
            call mpi_irecv(ar(1 + cc_from * 8 + cc_off), 4, mpi_integer, cc_from, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)
          enddo
          ! local copy of this rank's own partition block
          do cc_i = 0, 3
            ar(1 + cc_me * 8 + cc_off + cc_i) = as(cc_lo + cc_i)
          enddo
        endif
      endif
    enddo
    ! drain the last tile's communication (inserted by compuniformer)
    if (cc_nreq > 0) then
      call mpi_waitall(cc_nreq, cc_reqs, mpi_statuses_ignore, cc_ierr)
      cc_nreq = 0
    endif
    ! original mpi_alltoall removed by compuniformer
    checksum = checksum + ar(1) + ar(nx)
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program direct
