program direct
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 64
  integer, parameter :: np = 8
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, iy, ierr, checksum
  integer cc_me, cc_np, cc_ierr, cc_nreq, cc_tile, cc_lo, cc_to, cc_from, cc_j, cc_off, cc_i, cc_po, cc_tt, cc_it
  integer cc_reqs(1:28)

  call mpi_init(ierr)
  checksum = 0
  do iy = 1, 4
    ! pre-push setup (inserted by compuniformer)
    call mpi_comm_rank(mpi_comm_world, cc_me, cc_ierr)
    call mpi_comm_size(mpi_comm_world, cc_np, cc_ierr)
    cc_nreq = 0
    cc_tile = 0
    ! pre-post all receives for this rank's partition (staggered schedule)
    do cc_tt = 0, 1
      cc_tile = cc_me * 2 + cc_tt
      cc_off = cc_tt * 4
      do cc_j = 1, cc_np - 1
        cc_from = mod(cc_np + cc_me - cc_j, cc_np)
        cc_nreq = cc_nreq + 1
        call mpi_irecv(ar(1 + cc_from * 8 + cc_off), 4, mpi_integer, cc_from, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)
      enddo
    enddo
    do cc_po = 1, cc_np
      cc_to = mod(cc_me + cc_po, cc_np)
      do cc_tt = 0, 1
        ! staggered subset-send traversal (inserted by compuniformer)
        cc_tile = cc_to * 2 + cc_tt
        cc_it = 1 + cc_tile * 4
        cc_lo = cc_it
        do ix = cc_it, cc_it + 3
          as(ix) = ix * 3 + iy * 7
        enddo
        cc_off = cc_tt * 4
        if (cc_to /= cc_me) then
          cc_nreq = cc_nreq + 1
          call mpi_isend(as(cc_lo), 4, mpi_integer, cc_to, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)
        else
          ! local copy of this rank's own partition block
          do cc_i = 0, 3
            ar(1 + cc_me * 8 + cc_off + cc_i) = as(cc_lo + cc_i)
          enddo
        endif
      enddo
    enddo
    ! drain the last tile's communication (inserted by compuniformer)
    if (cc_nreq > 0) then
      call mpi_waitall(cc_nreq, cc_reqs, mpi_statuses_ignore, cc_ierr)
      cc_nreq = 0
    endif
    ! original mpi_alltoall removed by compuniformer
    checksum = checksum + ar(1) + ar(nx)
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program direct
