program indirect
  implicit none
  include 'mpif.h'
  integer, parameter :: n = 8
  integer, parameter :: np = 4
  integer as(1:n, 1:n, 1:n)
  integer ar(1:n, 1:n, 1:n)
  integer at(1:64, 1:2)
  integer iy, ix, tx, ty, ierr, me, checksum
  integer cc_me, cc_np, cc_ierr, cc_nreq, cc_tile, cc_lo, cc_to, cc_from, cc_j, cc_off, cc_buf, cc_b
  integer cc_c1, cc_c2
  integer cc_reqs(1:4)

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  ! pre-push setup (inserted by compuniformer)
  call mpi_comm_rank(mpi_comm_world, cc_me, cc_ierr)
  call mpi_comm_size(mpi_comm_world, cc_np, cc_ierr)
  cc_nreq = 0
  cc_tile = 0
  do iy = 1, n
    ! wait for the previous tile before refilling the temporary
    if (mod(iy - 1, 2) == 0) then
      if (cc_nreq > 0) then
        call mpi_waitall(cc_nreq, cc_reqs, mpi_statuses_ignore, cc_ierr)
        cc_nreq = 0
      endif
    endif
    cc_buf = mod(iy - 1, 2) + 1
    call p(iy, me, at(1, cc_buf))
    ! redundant copy loop removed by compuniformer
    if (mod(iy, 2) == 0) then
      ! pre-push tile exchange of the temporary (inserted by compuniformer)
      cc_lo = iy - 1
      cc_tile = cc_tile + 1
      cc_to = (cc_lo - 1) / 2
      cc_off = cc_lo - 1 - cc_to * 2
      if (cc_to /= cc_me) then
        cc_nreq = cc_nreq + 1
        call mpi_isend(at(1, 1), 128, mpi_integer, cc_to, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)
      else
        do cc_j = 1, cc_np - 1
          cc_from = mod(cc_np + cc_me - cc_j, cc_np)
          cc_nreq = cc_nreq + 1
          call mpi_irecv(ar(1, 1, 1 + cc_from * 2 + cc_off), 128, mpi_integer, cc_from, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)
        enddo
        ! local copy of this rank's own planes from the temporary
        do cc_b = 1, 2
          do cc_c1 = 1, 8
            do cc_c2 = 1, 8
              ar(cc_c1, cc_c2, 1 + cc_me * 2 + cc_off + (cc_b - 1)) = at(1 + (cc_c1 - 1) + (cc_c2 - 1) * 8, cc_b)
            enddo
          enddo
        enddo
      endif
    endif
  enddo
  ! drain the last tile's communication (inserted by compuniformer)
  if (cc_nreq > 0) then
    call mpi_waitall(cc_nreq, cc_reqs, mpi_statuses_ignore, cc_ierr)
    cc_nreq = 0
  endif
  ! original mpi_alltoall removed by compuniformer
  checksum = 0
  do iy = 1, n
    do ix = 1, n
      checksum = checksum + ar(ix, iy, 1) * ix + ar(iy, ix, n / 2)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program indirect

subroutine p(iy, me, at)
  integer iy, me
  integer at(*)
  integer i

  do i = 1, 64
    at(i) = i * 1000 + iy * 10 + me
  enddo
end subroutine p
