    if (mod(iy, 4) == 0) then
      ! pre-push tile exchange (inserted by compuniformer)
      cc_lo = iy - 3
      cc_tile = cc_tile + 1
      do cc_j = 1, cc_np - 1
        cc_to = mod(cc_me + cc_j, cc_np)
        do cc_b3 = 1 + cc_to * 2, 1 + cc_to * 2 + 1
          cc_nreq = cc_nreq + 1
          call mpi_isend(as(1, cc_lo, cc_b3), 16, mpi_integer, cc_to, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)
        enddo
        cc_from = mod(cc_np + cc_me - cc_j, cc_np)
        do cc_b3 = 1 + cc_from * 2, 1 + cc_from * 2 + 1
          cc_nreq = cc_nreq + 1
          call mpi_irecv(ar(1, cc_lo, cc_b3), 16, mpi_integer, cc_from, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)
        enddo
      enddo
