package verify_test

import (
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ftn"
	"repro/internal/plan"
	"repro/internal/transform"
	"repro/internal/verify"
	"repro/internal/workload"
)

// variant applies a plan and returns everything the validator consumes.
func variant(t *testing.T, src string, pl *plan.Plan) (*core.Program, string, *core.Report) {
	t.Helper()
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	out, rep, err := core.Apply(prog, pl)
	if err != nil {
		t.Fatalf("apply: %v", err)
	}
	return prog, out, rep
}

// knobPlans is the per-site plan-space slice the clean sweep exercises on
// top of the fixed decision: every wait/send-order/interchange knob.
func knobPlans(k int64) []*plan.Plan {
	mk := func(d plan.Decision) *plan.Plan { return &plan.Plan{Schema: plan.Schema, Default: d} }
	return []*plan.Plan{
		mk(plan.Decision{K: k}),
		mk(plan.Decision{K: k, Wait: plan.WaitPerTile}),
		mk(plan.Decision{K: k, SendOrder: plan.SendSequential}),
		mk(plan.Decision{K: k, Interchange: plan.InterchangeOff}),
		mk(plan.Decision{K: k, Interchange: plan.InterchangeOn}),
		mk(plan.Decision{Skip: true}),
	}
}

// TestCorpusClean is the clean half of the mutation-injection proof: every
// (program, plan) variant across the full generated corpus and the whole
// knob space must verify with zero findings.
func TestCorpusClean(t *testing.T) {
	scenarios := workload.GenerateScenarios(workload.GenOptions{})
	if len(scenarios) == 0 {
		t.Fatal("empty corpus")
	}
	if testing.Short() {
		scenarios = scenarios[:8]
	}
	checked := 0
	for _, sc := range scenarios {
		for _, pl := range knobPlans(sc.K) {
			prog, out, rep := variant(t, sc.Source, pl)
			if diags := verify.Variant(prog, pl, out, rep); len(diags) != 0 {
				t.Errorf("%s (plan %+v): %s", sc.Name, pl.Default, verify.Summarize(diags))
			}
			checked++
		}
	}
	t.Logf("verified %d variants clean across %d scenarios", checked, len(scenarios))
}

// pickScenario returns the first scenario whose fixed-plan variant satisfies
// the predicate (the predicate sees the analyzed program, the plan, the
// transformed source, and the report).
func pickScenario(t *testing.T, pred func(prog *core.Program, out string, rep *core.Report) bool) (workload.Scenario, *plan.Plan, *core.Program, string, *core.Report) {
	t.Helper()
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{}) {
		pl := core.Options{K: sc.K}.Plan()
		prog, err := core.Analyze(sc.Source, core.AnalyzeOptions{})
		if err != nil {
			continue
		}
		out, rep, err := core.Apply(prog, pl)
		if err != nil || rep.TransformedCount() == 0 {
			continue
		}
		if pred(prog, out, rep) {
			return sc, pl, prog, out, rep
		}
	}
	t.Fatal("no corpus scenario matches the mutation's precondition")
	return workload.Scenario{}, nil, nil, "", nil
}

// mutateAST parses a transformed source, rewrites it, and prints it back.
func mutateAST(t *testing.T, src string, fn func(f *ftn.File) bool) string {
	t.Helper()
	f, err := ftn.Parse(src)
	if err != nil {
		t.Fatalf("parse transformed: %v", err)
	}
	if !fn(f) {
		t.Fatal("mutation found no injection point")
	}
	return ftn.Print(f)
}

// mapLists applies fn to every statement list of a body, recursively,
// replacing each list with fn's result.
func mapLists(list []ftn.Stmt, fn func([]ftn.Stmt) []ftn.Stmt) []ftn.Stmt {
	out := fn(list)
	for _, s := range out {
		switch s := s.(type) {
		case *ftn.DoStmt:
			s.Body = mapLists(s.Body, fn)
		case *ftn.IfStmt:
			s.Then = mapLists(s.Then, fn)
			s.Else = mapLists(s.Else, fn)
		}
	}
	return out
}

// isDrainBlock matches the canonical generated drain:
// if (nreq > 0) then / call mpi_waitall(...) / nreq = 0 / endif.
func isDrainBlock(s ftn.Stmt) (*ftn.IfStmt, *ftn.CallStmt, bool) {
	ifs, ok := s.(*ftn.IfStmt)
	if !ok {
		return nil, nil, false
	}
	for _, ts := range ifs.Then {
		if cs, ok := ts.(*ftn.CallStmt); ok && cs.Name == "mpi_waitall" {
			return ifs, cs, true
		}
	}
	return nil, nil, false
}

// codesOf collects the distinct diagnostic codes.
func codesOf(diags []verify.Diagnostic) map[string]bool {
	out := map[string]bool{}
	for _, d := range diags {
		out[d.Code] = true
	}
	return out
}

// cloneReportFlipping deep-copies a report, applying fn to each site's
// transform result copy.
func cloneReportFlipping(rep *core.Report, fn func(i int, sr *core.SiteReport)) *core.Report {
	out := &core.Report{Sites: append([]core.SiteReport(nil), rep.Sites...)}
	for i := range out.Sites {
		if out.Sites[i].Result != nil {
			r := *out.Sites[i].Result
			out.Sites[i].Result = &r
		}
		fn(i, &out.Sites[i])
	}
	return out
}

// TestMutationCatalog is the detection-power proof: each entry injects one
// distinct defect class into an otherwise-verified variant and asserts the
// validator reports the matching machine-readable code.
func TestMutationCatalog(t *testing.T) {
	anyFixed := func(*core.Program, string, *core.Report) bool { return true }

	cases := []struct {
		name string
		code string
		run  func(t *testing.T) []verify.Diagnostic
	}{
		{
			// Drop the deferred drain: requests outlive the unit.
			name: "drop-wait",
			code: verify.CodeWaitMissing,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, anyFixed)
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					hit := false
					for _, u := range f.Units {
						u.Body = mapLists(u.Body, func(list []ftn.Stmt) []ftn.Stmt {
							for i := len(list) - 1; i >= 0; i-- {
								if _, _, ok := isDrainBlock(list[i]); ok && !hit {
									hit = true
									return append(append([]ftn.Stmt{}, list[:i]...), list[i+1:]...)
								}
							}
							return list
						})
					}
					return hit
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// A second, unguarded waitall after the drain: the request set
			// is already empty.
			name: "double-wait",
			code: verify.CodeWaitDouble,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, anyFixed)
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					hit := false
					for _, u := range f.Units {
						u.Body = mapLists(u.Body, func(list []ftn.Stmt) []ftn.Stmt {
							for i := len(list) - 1; i >= 0; i-- {
								if _, wa, ok := isDrainBlock(list[i]); ok && !hit {
									hit = true
									dup := &ftn.CallStmt{Name: "mpi_waitall", Args: cloneExprs(wa.Args)}
									out := append([]ftn.Stmt{}, list[:i+1]...)
									out = append(out, dup)
									return append(out, list[i+1:]...)
								}
							}
							return list
						})
					}
					return hit
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Reset the request counter while posts are outstanding: their
			// slots are reused before any wait.
			name: "counter-reset-reuse",
			code: verify.CodeRequestReuse,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, anyFixed)
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					hit := false
					for _, u := range f.Units {
						u.Body = mapLists(u.Body, func(list []ftn.Stmt) []ftn.Stmt {
							for i := len(list) - 1; i >= 0; i-- {
								ifs, wa, ok := isDrainBlock(list[i])
								_ = ifs
								if ok && !hit {
									hit = true
									counter := wa.Args[0].(*ftn.Ident).Name
									reset := &ftn.AssignStmt{LHS: &ftn.Ident{Name: counter}, RHS: &ftn.IntLit{Value: 0}}
									out := append([]ftn.Stmt{}, list[:i]...)
									out = append(out, reset)
									return append(out, list[i:]...)
								}
							}
							return list
						})
					}
					return hit
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Shift a tile-end guard off the tile boundary: coverage breaks.
			name: "guard-off-by-one",
			code: verify.CodeTileCoverage,
			run: func(t *testing.T) []verify.Diagnostic {
				// The staggered schedule restructures the loop instead of
				// guarding it, so require a variant that carries a mod-guard.
				_, pl, prog, out, rep := pickScenario(t, func(_ *core.Program, out string, _ *core.Report) bool {
					return hasModGuard(out)
				})
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					hit := false
					var bump func(e ftn.Expr)
					bump = func(e ftn.Expr) {
						bin, ok := e.(*ftn.Binary)
						if !ok || hit {
							return
						}
						if ref, ok := bin.X.(*ftn.Ref); ok && ref.Name == "mod" && len(ref.Args) == 2 && bin.Op == "==" {
							ref.Args[0] = ftn.Add(ref.Args[0], ftn.Int(1))
							hit = true
						}
					}
					for _, u := range f.Units {
						ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
							if ifs, ok := s.(*ftn.IfStmt); ok {
								bump(ifs.Cond)
							}
							return !hit
						})
					}
					return hit
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Off-by-one leftover lower bound: the leftover block skips (or
			// repeats) an iteration whole tiles missed.
			name: "leftover-off-by-one",
			code: verify.CodeTileCoverage,
			run: func(t *testing.T) []verify.Diagnostic {
				// A leftover block that is dead at runtime (trip divisible by
				// K) is proven unreachable before its bounds are inspected, so
				// require a variant whose leftover actually executes.
				_, pl, prog, out, rep := pickScenario(t, func(_ *core.Program, out string, rep *core.Report) bool {
					if !strings.Contains(out, "cc_rem") {
						return false
					}
					for i := range rep.Sites {
						if r := rep.Sites[i].Result; r != nil && r.Leftover > 0 {
							return true
						}
					}
					return false
				})
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					hit := false
					for _, u := range f.Units {
						ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
							ifs, ok := s.(*ftn.IfStmt)
							if !ok || hit {
								return !hit
							}
							bin, ok := ifs.Cond.(*ftn.Binary)
							if !ok || bin.Op != ">" {
								return true
							}
							id, ok := bin.X.(*ftn.Ident)
							if !ok || !strings.HasPrefix(id.Name, "cc_rem") {
								return true
							}
							for _, ts := range ifs.Then {
								if as, ok := ts.(*ftn.AssignStmt); ok {
									if _, ok := as.LHS.(*ftn.Ident); ok {
										as.RHS = ftn.Add(as.RHS, ftn.Int(1))
										hit = true
										break
									}
								}
							}
							return !hit
						})
					}
					return hit
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Rename an introduced cc_* temporary onto a name the original
			// program already owns.
			name: "clashing-temp-name",
			code: verify.CodeNameClash,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, anyFixed)
				// Steal the first declared name of the original program.
				of, err := ftn.Parse(prog.Source())
				if err != nil {
					t.Fatal(err)
				}
				stolen := ""
				for _, u := range of.Units {
					for _, d := range u.Decls {
						for _, e := range d.Entities {
							stolen = e.Name
							break
						}
						if stolen != "" {
							break
						}
					}
				}
				if stolen == "" {
					t.Fatal("original program declares nothing to clash with")
				}
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					for _, u := range f.Units {
						for _, d := range u.Decls {
							for i := range d.Entities {
								if strings.HasPrefix(d.Entities[i].Name, "cc_") {
									d.Entities[i].Name = stolen
									return true
								}
							}
						}
					}
					return false
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Report an interchange on a site whose direction vectors do not
			// prove it legal.
			name: "illegal-interchange",
			code: verify.CodeInterchangeIllegal,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, func(prog *core.Program, _ string, rep *core.Report) bool {
					for i := range rep.Sites {
						sr := &rep.Sites[i]
						if sr.Transformed && sr.Result != nil && !sr.Result.Interchanged && !sr.InterchangeLegal {
							return true
						}
					}
					return false
				})
				lie := cloneReportFlipping(rep, func(i int, sr *core.SiteReport) {
					if sr.Transformed && sr.Result != nil && !sr.InterchangeLegal {
						sr.Result.Interchanged = true
					}
				})
				return verify.Variant(prog, pl, out, lie)
			},
		},
		{
			// Report the staggered order on a site whose tile-order
			// independence does not re-prove.
			name: "illegal-stagger",
			code: verify.CodeStaggerIllegal,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, func(prog *core.Program, _ string, rep *core.Report) bool {
					ops := opsBySite(t, prog)
					for i := range rep.Sites {
						sr := &rep.Sites[i]
						op := ops[sr.Pos.String()]
						if sr.Transformed && sr.Result != nil && !sr.Result.Staggered &&
							op != nil && !transform.ReorderSafe(op) {
							return true
						}
					}
					return false
				})
				ops := opsBySite(t, prog)
				lie := cloneReportFlipping(rep, func(i int, sr *core.SiteReport) {
					op := ops[sr.Pos.String()]
					if sr.Transformed && sr.Result != nil && !sr.Result.Staggered &&
						op != nil && !transform.ReorderSafe(op) {
						sr.Result.Staggered = true
					}
				})
				return verify.Variant(prog, pl, out, lie)
			},
		},
		{
			// Corrupt one receive's count: the send/receive classes no
			// longer pair up.
			name: "mismatched-recv-count",
			code: verify.CodeSendrecvMismatch,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, anyFixed)
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					hit := false
					for _, u := range f.Units {
						ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
							if cs, ok := s.(*ftn.CallStmt); ok && cs.Name == "mpi_irecv" && !hit {
								cs.Args[1] = ftn.Add(cs.Args[1], ftn.Int(1))
								hit = true
							}
							return !hit
						})
					}
					return hit
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Wait on the sends before any receive is posted: every rank
			// blocks sending under rendezvous.
			name: "wait-before-recv-posted",
			code: verify.CodeDeadlockOrder,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, anyFixed)
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					hit := false
					var counter string
					for _, u := range f.Units {
						ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
							if cs, ok := s.(*ftn.CallStmt); ok && cs.Name == "mpi_waitall" {
								if id, ok := cs.Args[0].(*ftn.Ident); ok {
									counter = id.Name
								}
							}
							return counter == ""
						})
						if counter == "" {
							continue
						}
						u.Body = mapLists(u.Body, func(list []ftn.Stmt) []ftn.Stmt {
							for i, s := range list {
								if cs, ok := s.(*ftn.CallStmt); ok && cs.Name == "mpi_isend" && !hit {
									hit = true
									wait := &ftn.CallStmt{Name: "mpi_waitall", Args: []ftn.Expr{
										&ftn.Ident{Name: counter}, &ftn.Ident{Name: "cc_reqs"},
										&ftn.Ident{Name: "mpi_statuses_ignore"}, &ftn.Ident{Name: "cc_ierr"},
									}}
									out := append([]ftn.Stmt{}, list[:i+1]...)
									out = append(out, wait)
									return append(out, list[i+1:]...)
								}
							}
							return list
						})
					}
					return hit
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Touch a site the plan skipped: byte-identity breaks.
			name: "skipped-site-touched",
			code: verify.CodeSkipNotIdentical,
			run: func(t *testing.T) []verify.Diagnostic {
				sc, _, _, _, _ := pickScenario(t, func(prog *core.Program, _ string, _ *core.Report) bool {
					return len(prog.Sites) >= 2
				})
				prog, err := core.Analyze(sc.Source, core.AnalyzeOptions{})
				if err != nil {
					t.Fatal(err)
				}
				pl := core.Options{K: sc.K}.Plan()
				pl.Sites = append(pl.Sites, plan.SitePlan{
					Site: prog.Sites[0].Key(), Decision: plan.Identity(),
				})
				out, rep, err := core.Apply(prog, pl)
				if err != nil {
					t.Fatal(err)
				}
				if rep.SkippedCount() == 0 || rep.TransformedCount() == 0 {
					t.Skip("plan did not produce a mixed skip/transform variant")
				}
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					for _, u := range f.Units {
						found := false
						ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
							if cs, ok := s.(*ftn.CallStmt); ok && cs.Name == "mpi_alltoall" && !found {
								cs.Args[1] = ftn.Add(cs.Args[1], ftn.Int(1))
								found = true
							}
							return !found
						})
						if found {
							return true
						}
					}
					return false
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Keep (re-introduce) an MPI_ALLTOALL the report claims removed.
			name: "alltoall-kept",
			code: verify.CodeAlltoallNotRemoved,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, anyFixed)
				ops := opsBySite(t, prog)
				var orig *ftn.CallStmt
				for _, op := range ops {
					orig = op.Call.Stmt
					break
				}
				if orig == nil {
					t.Fatal("no analyzed site to clone the call from")
				}
				mut := mutateAST(t, out, func(f *ftn.File) bool {
					for _, u := range f.Units {
						if u.Kind == ftn.ProgramUnit {
							dup := &ftn.CallStmt{Name: "mpi_alltoall", Args: cloneExprs(orig.Args)}
							u.Body = append(u.Body, dup)
							return true
						}
					}
					return false
				})
				return verify.Variant(prog, pl, mut, rep)
			},
		},
		{
			// Corrupt the variant text entirely.
			name: "unparsable-variant",
			code: verify.CodeParseError,
			run: func(t *testing.T) []verify.Diagnostic {
				_, pl, prog, out, rep := pickScenario(t, anyFixed)
				return verify.Variant(prog, pl, out+"\nend if\n", rep)
			},
		},
	}

	caught := map[string]bool{}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			diags := tc.run(t)
			if len(diags) == 0 {
				t.Fatalf("injected defect not detected (want code %s)", tc.code)
			}
			if !codesOf(diags)[tc.code] {
				t.Fatalf("injected defect reported as %s, want %s", verify.Summarize(diags), tc.code)
			}
			caught[tc.code] = true
		})
	}
	if len(caught) < 8 {
		t.Errorf("mutation catalog covers %d distinct diagnostic codes, want >= 8", len(caught))
	}
}

// opsBySite re-analyzes a program and indexes opportunities by site key.
func opsBySite(t *testing.T, prog *core.Program) map[string]*analysis.Opportunity {
	t.Helper()
	f, err := ftn.Parse(prog.Source())
	if err != nil {
		t.Fatal(err)
	}
	ops, _ := analysis.FindOpportunities(f, analysis.Options{})
	out := map[string]*analysis.Opportunity{}
	for _, op := range ops {
		out[op.Call.Stmt.Pos().String()] = op
	}
	return out
}

// TestSkipAllByteIdentity pins the identity-plan contract the validator
// keys on: a skip-all plan returns the original bytes, and any deviation is
// a skip-not-identical finding.
func TestSkipAllByteIdentity(t *testing.T) {
	sc := workload.GenerateScenarios(workload.GenOptions{})[0]
	pl := &plan.Plan{Schema: plan.Schema, Default: plan.Identity()}
	prog, out, rep := variant(t, sc.Source, pl)
	if out != sc.Source {
		t.Fatal("skip-all plan did not return the original bytes")
	}
	if diags := verify.Variant(prog, pl, out, rep); len(diags) != 0 {
		t.Fatalf("clean identity variant flagged: %s", verify.Summarize(diags))
	}
	diags := verify.Variant(prog, pl, out+"\n", rep)
	if len(diags) != 1 || diags[0].Code != verify.CodeSkipNotIdentical {
		t.Fatalf("perturbed identity variant: got %s, want %s", verify.Summarize(diags), verify.CodeSkipNotIdentical)
	}
}

// hasModGuard reports whether a variant carries a whole-tile guard of the
// shape `if (mod(..., K) == 0)` — the injection point the guard-off-by-one
// mutation needs (the staggered schedule has none).
func hasModGuard(out string) bool {
	f, err := ftn.Parse(out)
	if err != nil {
		return false
	}
	found := false
	for _, u := range f.Units {
		ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
			if ifs, ok := s.(*ftn.IfStmt); ok {
				if bin, ok := ifs.Cond.(*ftn.Binary); ok && bin.Op == "==" {
					if ref, ok := bin.X.(*ftn.Ref); ok && ref.Name == "mod" && len(ref.Args) == 2 {
						found = true
					}
				}
			}
			return !found
		})
	}
	return found
}

// cloneExprs deep-copies an argument list.
func cloneExprs(args []ftn.Expr) []ftn.Expr {
	out := make([]ftn.Expr, len(args))
	for i, a := range args {
		out[i] = ftn.CloneExpr(a)
	}
	return out
}
