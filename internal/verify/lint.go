package verify

import (
	"fmt"
	"sort"

	"repro/internal/ftn"
)

// Lint is the static MPI schedule linter: it abstractly interprets every
// program unit's nonblocking communication and reports schedule defects
// without running anything. The model tracks, per request counter (the
// `nreq = nreq + 1; call mpi_isend(..., reqs(nreq), ierr)` idiom), the set
// of posts outstanding since the last drain. Checks:
//
//   - wait-missing: the unit can end (or RETURN/STOP) with requests still
//     outstanding — a nonblocking request is never waited;
//   - wait-double: an MPI_WAITALL can execute against an already-drained
//     request set (the canonical `if (nreq > 0)` guard proves liveness, so
//     guarded drains never fire this);
//   - request-reuse: a request slot can be overwritten before its wait —
//     a post without a fresh counter increment, or a counter reset that
//     orphans outstanding requests;
//   - sendrecv-mismatch: the unit's send and receive (count, dtype) pairs
//     disagree as sets, so some message class has no symmetric partner;
//   - deadlock-order: some drained epoch posts only one side of an
//     exchange — under SPMD rendezvous semantics every rank would block in
//     the same waitall with no matching posts anywhere (the pre-posted
//     receive invariant of the staggered schedule).
//
// Branches are joined by union (a post on either arm is outstanding after
// the IF); the special guard `if (counter > 0)` assumes the counter's set
// empty on the else arm, which is exactly what makes the generated
// wait-all block idempotent. Loop bodies are interpreted twice so a
// cross-iteration defect (posting into a slot the previous iteration never
// drained) is observed with the first iteration's state flowing around the
// back edge.
func Lint(f *ftn.File) []Diagnostic {
	var diags []Diagnostic
	for _, u := range f.Units {
		diags = append(diags, lintUnit(u)...)
	}
	return diags
}

// post is one outstanding nonblocking operation in the abstract state.
type post struct {
	kind  string // "send" or "recv"
	count string // normalized count expression
	dtype string // normalized datatype expression
	slot  string // normalized request-slot expression
	pos   ftn.Pos
}

func (p post) key() string {
	return p.kind + "|" + p.count + "|" + p.dtype + "|" + p.slot + "|" + p.pos.String()
}

// counterState is the abstract state of one request counter.
type counterState struct {
	outstanding  []post // posts since the last drain, in posted order
	drained      bool   // a drain happened and nothing was posted since
	freshSlot    bool   // the counter advanced since the last post
	assumePosted bool   // inside an `if (counter > 0)` guard: posts exist
}

func (cs *counterState) clone() *counterState {
	out := *cs
	out.outstanding = append([]post(nil), cs.outstanding...)
	return &out
}

// linter interprets one unit.
type linter struct {
	unit     string
	counters map[string]*counterState
	diags    []Diagnostic
	seen     map[string]bool // diagnostic dedupe (loop bodies run twice)
	sends    map[string]ftn.Pos
	recvs    map[string]ftn.Pos
}

func lintUnit(u *ftn.Unit) []Diagnostic {
	names := counterNames(u)
	if len(names) == 0 {
		return nil
	}
	lt := &linter{
		unit:     u.Name,
		counters: map[string]*counterState{},
		seen:     map[string]bool{},
		sends:    map[string]ftn.Pos{},
		recvs:    map[string]ftn.Pos{},
	}
	for name := range names {
		lt.counters[name] = &counterState{}
	}
	lt.block(u.Body)
	// Unit end: everything posted must have been drained on every path.
	for name, cs := range lt.counters {
		if len(cs.outstanding) > 0 {
			lt.report(Diagnostic{
				Code: CodeWaitMissing,
				Pos:  cs.outstanding[0].pos.String(),
				Msg: fmt.Sprintf("unit %s: %d request(s) posted through counter %s are never waited",
					u.Name, len(cs.outstanding), name),
			})
		}
	}
	// Symmetry: the unit's send and receive (count, dtype) classes must
	// match as sets — an unmatched class has no partner on any rank.
	for key, pos := range lt.sends {
		if _, ok := lt.recvs[key]; !ok {
			lt.report(Diagnostic{
				Code: CodeSendrecvMismatch,
				Pos:  pos.String(),
				Msg:  fmt.Sprintf("unit %s: send class (%s) has no matching receive", u.Name, key),
			})
		}
	}
	for key, pos := range lt.recvs {
		if _, ok := lt.sends[key]; !ok {
			lt.report(Diagnostic{
				Code: CodeSendrecvMismatch,
				Pos:  pos.String(),
				Msg:  fmt.Sprintf("unit %s: receive class (%s) has no matching send", u.Name, key),
			})
		}
	}
	sort.Slice(lt.diags, func(i, j int) bool {
		if lt.diags[i].Code != lt.diags[j].Code {
			return lt.diags[i].Code < lt.diags[j].Code
		}
		return lt.diags[i].Pos < lt.diags[j].Pos
	})
	return lt.diags
}

// counterNames pre-scans the unit for request counters: any identifier
// indexing the request-slot argument of a nonblocking post, or named as the
// count argument of an MPI_WAITALL.
func counterNames(u *ftn.Unit) map[string]bool {
	out := map[string]bool{}
	ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
		cs, ok := s.(*ftn.CallStmt)
		if !ok {
			return true
		}
		switch cs.Name {
		case "mpi_isend", "mpi_irecv":
			if len(cs.Args) >= 7 {
				if ref, ok := cs.Args[6].(*ftn.Ref); ok && len(ref.Args) == 1 {
					if id, ok := ref.Args[0].(*ftn.Ident); ok {
						out[id.Name] = true
					}
				}
			}
		case "mpi_waitall":
			if len(cs.Args) >= 1 {
				if id, ok := cs.Args[0].(*ftn.Ident); ok {
					out[id.Name] = true
				}
			}
		}
		return true
	})
	return out
}

func (lt *linter) report(d Diagnostic) {
	key := d.Code + "|" + d.Pos + "|" + d.Msg
	if lt.seen[key] {
		return
	}
	lt.seen[key] = true
	lt.diags = append(lt.diags, d)
}

// block interprets a statement list in order.
func (lt *linter) block(list []ftn.Stmt) {
	for _, s := range list {
		lt.stmt(s)
	}
}

func (lt *linter) stmt(s ftn.Stmt) {
	switch s := s.(type) {
	case *ftn.CallStmt:
		lt.call(s)
	case *ftn.AssignStmt:
		lt.assign(s)
	case *ftn.DoStmt:
		// Two passes approximate the loop fixpoint: the second pass sees
		// the first iteration's state on the back edge, so a slot posted in
		// iteration i and never drained before iteration i+1 is caught.
		lt.block(s.Body)
		lt.block(s.Body)
	case *ftn.IfStmt:
		lt.branch(s)
	case *ftn.ReturnStmt:
		lt.exitPoint(s.Pos(), "RETURN")
	case *ftn.StopStmt:
		lt.exitPoint(s.Pos(), "STOP")
	}
}

// exitPoint checks an early unit exit for outstanding requests.
func (lt *linter) exitPoint(pos ftn.Pos, what string) {
	for name, cs := range lt.counters {
		if len(cs.outstanding) > 0 {
			lt.report(Diagnostic{
				Code: CodeWaitMissing,
				Pos:  pos.String(),
				Msg: fmt.Sprintf("unit %s: %s with %d request(s) outstanding on counter %s",
					lt.unit, what, len(cs.outstanding), name),
			})
		}
	}
}

// branch interprets both arms from the entry state and joins by union.
// The canonical drain guard `if (counter > 0)` carries a fact: on the then
// arm the counter's requests exist (assumePosted), on the else arm the
// counter's outstanding set is empty.
func (lt *linter) branch(s *ftn.IfStmt) {
	guard := guardCounter(s.Cond)
	entry := map[string]*counterState{}
	for name, cs := range lt.counters {
		entry[name] = cs.clone()
	}

	// Then arm.
	if guard != "" {
		if cs, ok := lt.counters[guard]; ok {
			cs.assumePosted = true
		}
	}
	lt.block(s.Then)
	thenOut := lt.counters

	// Else arm, from the entry state.
	lt.counters = map[string]*counterState{}
	for name, cs := range entry {
		lt.counters[name] = cs.clone()
	}
	if guard != "" {
		if cs, ok := lt.counters[guard]; ok {
			// counter == 0 on this arm: nothing outstanding.
			cs.outstanding = nil
			cs.drained = true
		}
	}
	lt.block(s.Else)
	elseOut := lt.counters

	// Join: union of outstanding posts, pessimistic flags.
	joined := map[string]*counterState{}
	for name := range entry {
		t, e := thenOut[name], elseOut[name]
		j := &counterState{
			drained:      t.drained && e.drained,
			freshSlot:    t.freshSlot && e.freshSlot,
			assumePosted: t.assumePosted && e.assumePosted,
		}
		seen := map[string]bool{}
		for _, p := range append(append([]post(nil), t.outstanding...), e.outstanding...) {
			if !seen[p.key()] {
				seen[p.key()] = true
				j.outstanding = append(j.outstanding, p)
			}
		}
		joined[name] = j
	}
	lt.counters = joined
}

// guardCounter matches the canonical drain guard `counter > 0`.
func guardCounter(cond ftn.Expr) string {
	bin, ok := cond.(*ftn.Binary)
	if !ok || bin.Op != ">" {
		return ""
	}
	id, ok := bin.X.(*ftn.Ident)
	if !ok {
		return ""
	}
	z, ok := bin.Y.(*ftn.IntLit)
	if !ok || z.Value != 0 {
		return ""
	}
	return id.Name
}

func (lt *linter) call(s *ftn.CallStmt) {
	switch s.Name {
	case "mpi_isend":
		lt.post(s, "send")
	case "mpi_irecv":
		lt.post(s, "recv")
	case "mpi_waitall":
		lt.waitall(s)
	case "mpi_wait":
		// Singular wait: conservatively drains everything — the linter has
		// no per-slot model, so it neither proves nor refutes anything here.
		for _, cs := range lt.counters {
			cs.outstanding = nil
			cs.drained = true
			cs.assumePosted = false
		}
	}
}

// post records a nonblocking send/receive against its counter.
func (lt *linter) post(s *ftn.CallStmt, kind string) {
	if len(s.Args) < 7 {
		return
	}
	ref, ok := s.Args[6].(*ftn.Ref)
	if !ok || len(ref.Args) != 1 {
		return
	}
	id, ok := ref.Args[0].(*ftn.Ident)
	if !ok {
		return
	}
	cs := lt.counters[id.Name]
	if cs == nil {
		return
	}
	p := post{
		kind:  kind,
		count: ftn.ExprString(s.Args[1]),
		dtype: ftn.ExprString(s.Args[2]),
		slot:  ftn.ExprString(s.Args[6]),
		pos:   s.Pos(),
	}
	if !cs.freshSlot && len(cs.outstanding) > 0 {
		last := cs.outstanding[len(cs.outstanding)-1]
		lt.report(Diagnostic{
			Code: CodeRequestReuse,
			Pos:  s.Pos().String(),
			Msg: fmt.Sprintf("unit %s: request slot %s reposted without advancing counter %s (previous post at %s is still outstanding)",
				lt.unit, p.slot, id.Name, last.pos),
		})
	}
	already := false
	for _, q := range cs.outstanding {
		if q.key() == p.key() {
			already = true // second loop pass replaying the same post
			break
		}
	}
	if !already {
		cs.outstanding = append(cs.outstanding, p)
	}
	cs.drained = false
	cs.freshSlot = false
	class := p.count + ", " + p.dtype
	if kind == "send" {
		if _, ok := lt.sends[class]; !ok {
			lt.sends[class] = s.Pos()
		}
	} else {
		if _, ok := lt.recvs[class]; !ok {
			lt.recvs[class] = s.Pos()
		}
	}
}

// waitall drains a counter's outstanding set, checking the drained epoch
// for rendezvous deadlock-freedom, and flags waits on already-drained sets.
func (lt *linter) waitall(s *ftn.CallStmt) {
	if len(s.Args) < 1 {
		return
	}
	id, ok := s.Args[0].(*ftn.Ident)
	if !ok {
		return
	}
	cs := lt.counters[id.Name]
	if cs == nil {
		return
	}
	switch {
	case len(cs.outstanding) > 0:
		lt.checkEpoch(s, id.Name, cs.outstanding)
		cs.outstanding = nil
		cs.drained = true
		cs.assumePosted = false
	case cs.assumePosted:
		// Guarded first drain: the guard proved requests exist dynamically
		// even though none are visible statically on this path.
		cs.drained = true
		cs.assumePosted = false
	default:
		lt.report(Diagnostic{
			Code: CodeWaitDouble,
			Pos:  s.Pos().String(),
			Msg:  fmt.Sprintf("unit %s: mpi_waitall on counter %s with nothing outstanding — the request set was already drained", lt.unit, id.Name),
		})
	}
}

// checkEpoch proves a drained epoch deadlock-free under SPMD rendezvous
// semantics: every rank executes the same posts before blocking in the same
// waitall, so an epoch whose posts are all sends (or all receives) blocks
// every rank with no matching post anywhere. The generated schedules always
// post both sides of an exchange — receives pre-posted before the drain —
// which is exactly what this check re-proves.
func (lt *linter) checkEpoch(s *ftn.CallStmt, counter string, epoch []post) {
	var nsend, nrecv int
	for _, p := range epoch {
		if p.kind == "send" {
			nsend++
		} else {
			nrecv++
		}
	}
	if nsend > 0 && nrecv == 0 {
		lt.report(Diagnostic{
			Code: CodeDeadlockOrder,
			Pos:  s.Pos().String(),
			Msg: fmt.Sprintf("unit %s: waitall on counter %s drains %d send(s) with no receive posted in the epoch — every rank blocks sending under rendezvous",
				lt.unit, counter, nsend),
		})
	}
	if nrecv > 0 && nsend == 0 {
		lt.report(Diagnostic{
			Code: CodeDeadlockOrder,
			Pos:  s.Pos().String(),
			Msg: fmt.Sprintf("unit %s: waitall on counter %s drains %d receive(s) with no send posted in the epoch — every rank blocks receiving",
				lt.unit, counter, nrecv),
		})
	}
}

// assign tracks counter mutations: the canonical increment refreshes the
// slot; a reset with requests outstanding orphans them (their slots will be
// overwritten by the next posts).
func (lt *linter) assign(s *ftn.AssignStmt) {
	id, ok := s.LHS.(*ftn.Ident)
	if !ok {
		return
	}
	cs := lt.counters[id.Name]
	if cs == nil {
		return
	}
	if mentionsIdent(s.RHS, id.Name) {
		// counter = counter ± k: the slot index advanced.
		cs.freshSlot = true
		return
	}
	// counter = <constant or unrelated>: a reset.
	if len(cs.outstanding) > 0 {
		lt.report(Diagnostic{
			Code: CodeRequestReuse,
			Pos:  s.Pos().String(),
			Msg: fmt.Sprintf("unit %s: counter %s reset with %d request(s) outstanding — their slots will be reused before any wait",
				lt.unit, id.Name, len(cs.outstanding)),
		})
		cs.outstanding = nil
	}
	cs.drained = true
	cs.freshSlot = false
	cs.assumePosted = false
}

// mentionsIdent reports whether the expression reads the named identifier.
func mentionsIdent(e ftn.Expr, name string) bool {
	if e == nil {
		return false
	}
	return ftn.IdentsIn(e)[name]
}

// LintSource parses and lints source text in one call — the entry point for
// callers holding raw text (CLI verify paths, the plan server).
func LintSource(src string) ([]Diagnostic, error) {
	f, err := ftn.Parse(src)
	if err != nil {
		return nil, err
	}
	return Lint(f), nil
}
