// Package verify is the static verification tier: it re-proves, without
// executing anything, that a transformed program is a faithful rendering of
// the plan that produced it. The walk-engine oracle and the differential
// sweep prove variants bit-identical dynamically (hundreds of seconds for a
// full corpus); this package answers the same legality questions the paper
// answers statically (§3.5 interchange direction vectors, §3.6 tiling
// coverage, the pre-posted-receive stagger invariant) in microseconds, so a
// fleet dispatcher can vet a cold variant before ever scheduling it.
//
// Two entry points:
//
//   - Variant is the translation validator: given the analyzed original
//     program, the plan, the transformed source, and core.Apply's report, it
//     statically re-derives every applied decision — skipped sites are
//     byte-identical subtrees, tiled+leftover bounds cover the original
//     iteration space exactly, introduced cc_* temporaries are fresh,
//     recorded interchange/stagger legality re-proves from dependence
//     direction vectors — and lints the generated MPI schedule.
//
//   - Lint is the schedule linter alone, runnable on any parsed file: every
//     nonblocking request waited, no request reuse before a wait, symmetric
//     send/receive count+dtype pairs, and deadlock-freedom of the posted
//     order under rendezvous semantics.
//
// Every finding is a Diagnostic with a machine-readable Code; an empty slice
// means the variant verified.
package verify

import (
	"fmt"
	"strings"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/dep"
	"repro/internal/ftn"
	"repro/internal/plan"
	"repro/internal/transform"
)

// Diagnostic codes. Each distinct defect class has its own code so callers
// (and the mutation-injection self-test) can key on the machine-readable
// verdict rather than message text.
const (
	CodeParseError         = "parse-error"          // transformed source does not parse
	CodeSkipNotIdentical   = "skip-not-identical"   // a skipped site is not byte-identical
	CodeAlltoallNotRemoved = "alltoall-not-removed" // MPI_ALLTOALL count disagrees with the report
	CodeTileCoverage       = "tile-coverage"        // tiled+leftover bounds do not cover the iteration space
	CodeNameClash          = "name-clash"           // an introduced temporary captures or shadows a program name
	CodeInterchangeIllegal = "interchange-illegal"  // recorded interchange fails re-derivation
	CodeStaggerIllegal     = "stagger-illegal"      // recorded stagger fails the reorder proof
	CodeWaitMissing        = "wait-missing"         // a nonblocking request is never waited
	CodeWaitDouble         = "wait-double"          // a drained request set can be waited again
	CodeRequestReuse       = "request-reuse"        // a request slot is reused before its wait
	CodeSendrecvMismatch   = "sendrecv-mismatch"    // send and receive (count, dtype) sets disagree
	CodeDeadlockOrder      = "deadlock-order"       // posted order can deadlock under rendezvous
)

// Diagnostic is one verification finding.
type Diagnostic struct {
	// Code is the machine-readable defect class (one of the Code constants).
	Code string `json:"code"`
	// Site is the plan site key ("line:col") when the finding is
	// attributable to one MPI_ALLTOALL site.
	Site string `json:"site,omitempty"`
	// Pos locates the finding in the transformed source when known.
	Pos string `json:"pos,omitempty"`
	// Msg is the human-readable explanation.
	Msg string `json:"msg"`
}

// String renders the diagnostic for logs.
func (d Diagnostic) String() string {
	out := d.Code
	if d.Site != "" {
		out += " site " + d.Site
	}
	if d.Pos != "" {
		out += " at " + d.Pos
	}
	return out + ": " + d.Msg
}

// Summarize joins diagnostics into one line per finding.
func Summarize(diags []Diagnostic) string {
	parts := make([]string, len(diags))
	for i, d := range diags {
		parts[i] = d.String()
	}
	return strings.Join(parts, "; ")
}

// Apply is the convenience wrapper that replays a plan and verifies the
// output in one call: core.Apply followed by Variant.
func Apply(prog *core.Program, pl *plan.Plan) (string, *core.Report, []Diagnostic, error) {
	out, rep, err := core.Apply(prog, pl)
	if err != nil {
		return "", nil, nil, err
	}
	return out, rep, Variant(prog, pl, out, rep), nil
}

// Variant statically verifies one (program, plan) variant: transformed must
// be core.Apply(prog, pl)'s output and rep its report. The returned slice is
// empty when every applied decision re-proves and the generated MPI schedule
// lints clean.
func Variant(prog *core.Program, pl *plan.Plan, transformed string, rep *core.Report) []Diagnostic {
	var diags []Diagnostic
	tf, err := ftn.Parse(transformed)
	if err != nil {
		return []Diagnostic{{Code: CodeParseError, Msg: fmt.Sprintf("transformed source: %v", err)}}
	}

	if rep == nil || rep.TransformedCount() == 0 {
		// Nothing was rewritten: core.Apply's contract is to return the
		// original bytes (so the variant cache collapses onto the original's
		// hash). Anything else means a "skipped" site was touched.
		if transformed != prog.Source() {
			diags = append(diags, Diagnostic{
				Code: CodeSkipNotIdentical,
				Msg:  "no site transformed, but the output is not byte-identical to the original source",
			})
		}
		return diags
	}

	// Re-analyze the original from scratch: the validator must not trust the
	// transformer's cached facts.
	of, err := ftn.Parse(prog.Source())
	if err != nil {
		return []Diagnostic{{Code: CodeParseError, Msg: fmt.Sprintf("original source: %v", err)}}
	}
	opts := prog.Options()
	np := pl.NP
	if np == 0 {
		np = opts.NP
	}
	ops, _ := analysis.FindOpportunities(of, analysis.Options{Oracle: opts.Oracle, NP: int(np)})
	opAt := map[string]*analysis.Opportunity{}
	for _, op := range ops {
		opAt[op.Call.Stmt.Pos().String()] = op
	}

	origUnits := unitsByName(of)
	transUnits := unitsByName(tf)

	// The original MPI_ALLTOALL must be removed exactly at transformed sites
	// and preserved everywhere else.
	want := len(rep.Sites) - rep.TransformedCount()
	if got := countAlltoalls(tf); got != want {
		diags = append(diags, Diagnostic{
			Code: CodeAlltoallNotRemoved,
			Msg:  fmt.Sprintf("transformed source has %d mpi_alltoall call(s), want %d (%d of %d sites transformed)", got, want, rep.TransformedCount(), len(rep.Sites)),
		})
	}

	// Freshness: names the transformation declared must not capture, shadow,
	// or double-declare anything, per unit.
	diags = append(diags, checkFreshNames(origUnits, transUnits)...)

	// Per-site decision re-proofs.
	for i := range rep.Sites {
		sr := &rep.Sites[i]
		site := sr.Pos.String()
		op := opAt[site]
		switch {
		case sr.Skipped:
			diags = append(diags, checkSkippedSite(op, transUnits, site)...)
		case sr.Transformed:
			if op == nil {
				diags = append(diags, Diagnostic{
					Code: CodeTileCoverage, Site: site,
					Msg: "report marks the site transformed, but re-analysis of the original finds no opportunity there",
				})
				continue
			}
			res := sr.Result
			if res != nil && res.Interchanged && !op.InterchangeOK {
				diags = append(diags, Diagnostic{
					Code: CodeInterchangeIllegal, Site: site,
					Msg: "report records a loop interchange, but the dependence direction vectors do not re-prove its legality",
				})
			}
			if res != nil && res.Staggered {
				if !transform.ReorderSafe(op) {
					diags = append(diags, Diagnostic{
						Code: CodeStaggerIllegal, Site: site,
						Msg: "report records the staggered send order, but tile order independence does not re-prove",
					})
				}
				diags = append(diags, checkStaggeredStructure(op, res, transUnits, site)...)
			}
			if res != nil && !res.Staggered && !res.Interchanged {
				diags = append(diags, checkLoopAnchor(op, transUnits, site)...)
			}
		}
	}

	// Unit-wide tile-guard coverage: every generated mod-guard must fire on
	// exact tile boundaries and leave no uncovered leftover iterations.
	for _, tu := range tf.Units {
		diags = append(diags, checkTileGuards(tu)...)
	}

	// Finally, the generated MPI schedule itself.
	diags = append(diags, Lint(tf)...)
	return diags
}

// unitsByName indexes a file's units (first definition wins, matching the
// execution engines' resolution).
func unitsByName(f *ftn.File) map[string]*ftn.Unit {
	out := map[string]*ftn.Unit{}
	for _, u := range f.Units {
		if _, ok := out[u.Name]; !ok {
			out[u.Name] = u
		}
	}
	return out
}

// countAlltoalls counts mpi_alltoall call statements in the file.
func countAlltoalls(f *ftn.File) int {
	n := 0
	for _, u := range f.Units {
		ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
			if cs, ok := s.(*ftn.CallStmt); ok && cs.Name == "mpi_alltoall" {
				n++
			}
			return true
		})
	}
	return n
}

// checkFreshNames verifies that every name the transformation introduced is
// fresh in its unit: not declared twice, and not capturing a name the
// original unit already used (declared or implicitly typed).
func checkFreshNames(orig, trans map[string]*ftn.Unit) []Diagnostic {
	var diags []Diagnostic
	for name, tu := range trans {
		ou := orig[name]
		if ou == nil {
			continue // the transformation never adds units
		}
		origDecls := declCounts(ou)
		origUsed := usedIdents(ou)
		for dname, n := range declCounts(tu) {
			if n > 1 && n > origDecls[dname] {
				diags = append(diags, Diagnostic{
					Code: CodeNameClash,
					Msg:  fmt.Sprintf("unit %s declares %q %d times after transformation", name, dname, n),
				})
				continue
			}
			if origDecls[dname] == 0 && origUsed[dname] {
				diags = append(diags, Diagnostic{
					Code: CodeNameClash,
					Msg:  fmt.Sprintf("unit %s: introduced name %q captures a name the original program uses", name, dname),
				})
			}
		}
	}
	return diags
}

// declCounts counts declared entity names in a unit.
func declCounts(u *ftn.Unit) map[string]int {
	out := map[string]int{}
	for _, d := range u.Decls {
		for _, e := range d.Entities {
			out[e.Name]++
		}
	}
	return out
}

// usedIdents collects every name the unit touches: parameters, declared
// entities, loop variables, and every identifier (including array names) in
// any expression.
func usedIdents(u *ftn.Unit) map[string]bool {
	out := map[string]bool{}
	for _, p := range u.Params {
		out[p] = true
	}
	for _, d := range u.Decls {
		for _, e := range d.Entities {
			out[e.Name] = true
			for _, dim := range d.DimsOf(e) {
				for _, b := range []ftn.Expr{dim.Lo, dim.Hi} {
					if b != nil {
						for n := range ftn.IdentsIn(b) {
							out[n] = true
						}
					}
				}
			}
		}
	}
	ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
		if do, ok := s.(*ftn.DoStmt); ok {
			out[do.Var] = true
		}
		for _, e := range ftn.StmtExprs(s) {
			for n := range ftn.IdentsIn(e) {
				out[n] = true
			}
		}
		return true
	})
	return out
}

// checkSkippedSite verifies a plan-skipped site survived byte-identically.
// Positions shift when sibling sites are transformed (inserted code moves
// every later line), so the match is structural: the transformed unit must
// still contain a DO printing exactly like the site's finalizing loop and an
// MPI_ALLTOALL carrying the site's exact argument list.
func checkSkippedSite(op *analysis.Opportunity, trans map[string]*ftn.Unit, site string) []Diagnostic {
	if op == nil {
		return nil // a rejected (never analyzable) site has nothing to compare
	}
	tu := trans[op.Unit.Name]
	if tu == nil {
		return []Diagnostic{{Code: CodeSkipNotIdentical, Site: site,
			Msg: fmt.Sprintf("unit %s missing from the transformed source", op.Unit.Name)}}
	}
	var diags []Diagnostic
	want := ftn.PrintStmts([]ftn.Stmt{op.L}, 0)
	kept := false
	ftn.Inspect(tu.Body, func(s ftn.Stmt) bool {
		if do, ok := s.(*ftn.DoStmt); ok && do.Var == op.L.Var {
			if ftn.PrintStmts([]ftn.Stmt{do}, 0) == want {
				kept = true
			}
		}
		return !kept
	})
	if !kept {
		diags = append(diags, Diagnostic{Code: CodeSkipNotIdentical, Site: site,
			Msg: "skipped site's finalizing loop is missing or not identical in the transformed source"})
	}
	callKept := false
	ftn.Inspect(tu.Body, func(s ftn.Stmt) bool {
		if cs, ok := s.(*ftn.CallStmt); ok && cs.Name == "mpi_alltoall" && equalArgs(cs.Args, op.Call.Stmt.Args) {
			callKept = true
		}
		return !callKept
	})
	if !callKept {
		diags = append(diags, Diagnostic{Code: CodeSkipNotIdentical, Site: site,
			Msg: "skipped site's mpi_alltoall call is missing or its arguments changed"})
	}
	return diags
}

// checkLoopAnchor ties a transformed (non-staggered, non-interchanged)
// site's loop back to the original iteration space: the tiled DO keeps its
// variable and affinely-equal bounds, so the tiling covered exactly the
// original range.
func checkLoopAnchor(op *analysis.Opportunity, trans map[string]*ftn.Unit, site string) []Diagnostic {
	if op == nil {
		return nil
	}
	tu := trans[op.Unit.Name]
	if tu == nil {
		return nil
	}
	// Positions shift under insertion, so the anchor is structural: some DO
	// over the original loop variable must keep affinely-equal bounds (the
	// guarded subset-send schedules tile in place, preserving the header).
	env := &dep.Env{LoopVars: map[string]bool{}, Consts: op.Consts}
	loWant, ok1 := dep.FromExpr(op.L.Lo, env)
	hiWant, ok2 := dep.FromExpr(op.L.Hi, env)
	if !ok1 || !ok2 {
		return nil // non-affine original bounds carry no provable anchor
	}
	anchored := false
	ftn.Inspect(tu.Body, func(s ftn.Stmt) bool {
		do, ok := s.(*ftn.DoStmt)
		if !ok || do.Var != op.L.Var {
			return !anchored
		}
		lo, ok1 := dep.FromExpr(do.Lo, env)
		hi, ok2 := dep.FromExpr(do.Hi, env)
		if ok1 && ok2 && lo.Equal(loWant) && hi.Equal(hiWant) {
			anchored = true
		}
		return !anchored
	})
	if !anchored {
		return []Diagnostic{{Code: CodeTileCoverage, Site: site,
			Msg: fmt.Sprintf("no loop over %s keeps the original bounds [%s, %s] — the tiled loop no longer spans the original iteration space",
				op.L.Var, ftn.ExprString(op.L.Lo), ftn.ExprString(op.L.Hi))}}
	}
	return nil
}

func equalArgs(a, b []ftn.Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ftn.EqualExpr(a[i], b[i]) {
			return false
		}
	}
	return true
}
