package verify

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/dep"
	"repro/internal/ftn"
	"repro/internal/transform"
)

// doCtx is one entry of the enclosing-DO chain during a guard walk: the loop
// plus the statement list (and index) that contains it, so leftover blocks
// spliced after the loop can be located.
type doCtx struct {
	do    *ftn.DoStmt
	list  []ftn.Stmt
	index int
}

// checkTileGuards proves, for every generated tile-boundary guard in the
// unit, that the tiled iteration space is covered exactly: a guard
// `mod((v-lo)+1, K) == 0` either closes a loop whose constant trip count is
// divisible by K, or is followed (after the loop) by a leftover block
// `rem = mod(trip, K); if (rem > 0) then lo = hi-rem+1 ...` whose bounds
// algebraically pick up exactly the iterations whole tiles missed. Guards of
// the form `mod(v-lo, K) == 0` (tile-start waits) carry no coverage
// obligation. Only guards whose body posts or drains nonblocking MPI are
// considered, so the check never fires on source-program arithmetic.
func checkTileGuards(u *ftn.Unit) []Diagnostic {
	consts := paramConsts(u)
	var diags []Diagnostic
	var walk func(list []ftn.Stmt, chain []doCtx)
	walk = func(list []ftn.Stmt, chain []doCtx) {
		for i, s := range list {
			switch s := s.(type) {
			case *ftn.DoStmt:
				next := make([]doCtx, len(chain), len(chain)+1)
				copy(next, chain)
				walk(s.Body, append(next, doCtx{do: s, list: list, index: i}))
			case *ftn.IfStmt:
				if modArg, k, ok := modGuard(s.Cond); ok && containsComm(s) {
					diags = append(diags, checkOneGuard(u.Name, s, modArg, k, chain, consts)...)
				}
				walk(s.Then, chain)
				walk(s.Else, chain)
			}
		}
	}
	walk(u.Body, nil)
	return diags
}

// modGuard matches `mod(arg, k) == 0` with a positive literal k.
func modGuard(cond ftn.Expr) (ftn.Expr, int64, bool) {
	bin, ok := cond.(*ftn.Binary)
	if !ok || bin.Op != "==" {
		return nil, 0, false
	}
	ref, ok := bin.X.(*ftn.Ref)
	if !ok || ref.Name != "mod" || len(ref.Args) != 2 {
		return nil, 0, false
	}
	k, ok := ref.Args[1].(*ftn.IntLit)
	if !ok || k.Value <= 0 {
		return nil, 0, false
	}
	z, ok := bin.Y.(*ftn.IntLit)
	if !ok || z.Value != 0 {
		return nil, 0, false
	}
	return ref.Args[0], k.Value, true
}

// containsComm reports whether the statement's subtree posts, drains, or
// waits on nonblocking MPI.
func containsComm(s ftn.Stmt) bool {
	found := false
	ftn.Inspect([]ftn.Stmt{s}, func(n ftn.Stmt) bool {
		if cs, ok := n.(*ftn.CallStmt); ok {
			switch cs.Name {
			case "mpi_isend", "mpi_irecv", "mpi_waitall", "mpi_wait":
				found = true
			}
		}
		return !found
	})
	return found
}

// checkOneGuard normalizes one comm-bearing mod-guard against its innermost
// governing loop and, for tile-end guards, proves coverage.
func checkOneGuard(unit string, guard *ftn.IfStmt, modArg ftn.Expr, k int64, chain []doCtx, consts map[string]int64) []Diagnostic {
	bad := func(format string, args ...interface{}) []Diagnostic {
		return []Diagnostic{{
			Code: CodeTileCoverage,
			Pos:  guard.Pos().String(),
			Msg:  fmt.Sprintf("unit %s: ", unit) + fmt.Sprintf(format, args...),
		}}
	}
	// The governing loop is the innermost enclosing DO whose variable the
	// guard argument mentions.
	used := ftn.IdentsIn(modArg)
	var dc doCtx
	found := false
	for i := len(chain) - 1; i >= 0; i-- {
		if used[chain[i].do.Var] {
			dc, found = chain[i], true
			break
		}
	}
	if !found {
		return bad("tile guard mod(%s, %d) references no enclosing loop variable", ftn.ExprString(modArg), k)
	}
	v := dc.do.Var
	env := &dep.Env{LoopVars: map[string]bool{v: true}, Consts: consts}
	a, ok := dep.FromExpr(modArg, env)
	if !ok {
		return bad("tile guard argument %s is not affine", ftn.ExprString(modArg))
	}
	if len(a.Coef) != 1 || a.CoefOf(v) != 1 {
		return bad("tile guard argument %s does not advance with loop %s by stride 1", ftn.ExprString(modArg), v)
	}
	loA, okLo := dep.FromExpr(dc.do.Lo, env)
	hiA, okHi := dep.FromExpr(dc.do.Hi, env)
	if !okLo || !okHi {
		return bad("loop %s has non-affine bounds", v)
	}
	// Normalize: a ≡ (v - lo) + d. d = 1 is a tile-end guard (fires after
	// every K-th iteration, owes coverage); d = 0 is a tile-start wait.
	d := a.Sub(dep.Var(v)).Add(loA)
	if !d.IsConst() {
		return bad("tile guard offset %s is not constant relative to loop %s", d.String(), v)
	}
	switch d.ConstVal() {
	case 0:
		return nil
	case 1:
		// Tile-end: trip divisible by K, or an algebraically exact leftover.
		trip := hiA.Sub(loA).Add(dep.NewAffine(1))
		if trip.IsConst() && trip.ConstVal()%k == 0 && trip.ConstVal() >= 0 {
			return nil
		}
		if msg := findLeftover(dc, trip, hiA, k, env); msg != "" {
			return bad("loop %s (trip %s, tile %d): %s", v, trip.String(), k, msg)
		}
		return nil
	default:
		return bad("tile guard mod(%s, %d) is offset %d from loop %s tile boundaries", ftn.ExprString(modArg), k, d.ConstVal(), v)
	}
}

// findLeftover scans the statement list holding the tiled loop, after the
// loop, for the canonical leftover block and proves its bounds exact:
//
//	rem = mod(trip', K)   with trip' ≡ trip
//	if (rem > 0) then
//	  lo' = e              with e ≡ hi - rem + 1
//
// so the leftover range [hi-rem+1, hi] is precisely the suffix whole tiles
// did not cover. Returns "" on success, or the failure reason.
func findLeftover(dc doCtx, trip, hiA dep.Affine, k int64, env *dep.Env) string {
	remName := ""
	remIdx := -1
	for j := dc.index + 1; j < len(dc.list); j++ {
		as, ok := dc.list[j].(*ftn.AssignStmt)
		if !ok {
			continue
		}
		lhs, ok := as.LHS.(*ftn.Ident)
		if !ok {
			continue
		}
		ref, ok := as.RHS.(*ftn.Ref)
		if !ok || ref.Name != "mod" || len(ref.Args) != 2 {
			continue
		}
		kLit, ok := ref.Args[1].(*ftn.IntLit)
		if !ok || kLit.Value != k {
			continue
		}
		ta, ok := dep.FromExpr(ref.Args[0], env)
		if !ok || !ta.Equal(trip) {
			continue
		}
		remName, remIdx = lhs.Name, j
		break
	}
	if remIdx < 0 {
		return "trip count is not provably divisible and no leftover remainder assignment follows the loop"
	}
	rem := dep.Affine{Syms: map[string]int64{remName: 1}, Coef: map[string]int64{}}
	want := hiA.Sub(rem).Add(dep.NewAffine(1))
	for j := remIdx + 1; j < len(dc.list); j++ {
		ifs, ok := dc.list[j].(*ftn.IfStmt)
		if !ok {
			continue
		}
		bin, ok := ifs.Cond.(*ftn.Binary)
		if !ok || bin.Op != ">" {
			continue
		}
		id, ok := bin.X.(*ftn.Ident)
		if !ok || id.Name != remName {
			continue
		}
		z, ok := bin.Y.(*ftn.IntLit)
		if !ok || z.Value != 0 {
			continue
		}
		for _, t := range ifs.Then {
			as, ok := t.(*ftn.AssignStmt)
			if !ok {
				continue
			}
			if _, ok := as.LHS.(*ftn.Ident); !ok {
				continue
			}
			got, ok := dep.FromExpr(as.RHS, env)
			if !ok {
				continue
			}
			if got.Equal(want) {
				return ""
			}
			// The first scalar assignment in the canonical block is the
			// leftover lower bound; anything else there is a corruption.
			return fmt.Sprintf("leftover lower bound is %s, want hi-%s+1", got.String(), remName)
		}
	}
	return fmt.Sprintf("leftover guard if (%s > 0) with an exact lower bound not found after the loop", remName)
}

// paramConsts harvests named integer constants (PARAMETER declarations)
// from a unit, in declaration order so later parameters may reference
// earlier ones.
func paramConsts(u *ftn.Unit) map[string]int64 {
	out := map[string]int64{}
	for _, d := range u.Decls {
		if !d.Parameter {
			continue
		}
		for _, e := range d.Entities {
			if e.Init == nil {
				continue
			}
			if v, ok := analysis.EvalInt(e.Init, out); ok {
				out[e.Name] = v
			}
		}
	}
	return out
}

// checkStaggeredStructure re-proves coverage for a staggered site, whose
// loop was restructured (ring over owners × tiles per owner × K iterations)
// rather than guarded: the generated skeleton must enumerate
// np·(psz/K)·K iterations, exactly the original trip count.
func checkStaggeredStructure(op *analysis.Opportunity, res *transform.Result, trans map[string]*ftn.Unit, site string) []Diagnostic {
	bad := func(format string, args ...interface{}) []Diagnostic {
		return []Diagnostic{{
			Code: CodeTileCoverage,
			Site: site,
			Msg:  "staggered schedule: " + fmt.Sprintf(format, args...),
		}}
	}
	tu := trans[op.Unit.Name]
	if tu == nil || op.Nest == nil || len(op.Nest.Loops) == 0 {
		return nil
	}
	k, psz, npv := res.K, res.PartitionSize, res.NP
	if k <= 0 || psz <= 0 || npv <= 0 || psz%k != 0 || res.Leftover != 0 {
		return bad("inconsistent shape: K=%d partition=%d np=%d leftover=%d", k, psz, npv, res.Leftover)
	}
	tpp := psz / k
	tiled := op.Nest.Loops[0]
	lo0 := tiled.Lo.Bind(op.Consts)
	hi0 := tiled.Hi.Bind(op.Consts)
	if !lo0.IsConst() || !hi0.IsConst() {
		return bad("original loop bounds are not numeric")
	}
	trip := hi0.ConstVal() - lo0.ConstVal() + 1
	if npv*psz != trip {
		return bad("np·partition = %d does not cover the original trip count %d", npv*psz, trip)
	}

	consts := paramConsts(tu)
	env := &dep.Env{LoopVars: map[string]bool{}, Consts: consts}
	assigns := identAssigns(tu)

	// 1. The K-iteration inner loop: do v = it, it+K-1 for the original var.
	vIt := ""
	for _, do := range findDos(tu, tiled.Var) {
		lo, ok := do.Lo.(*ftn.Ident)
		if !ok {
			continue
		}
		loA, ok1 := dep.FromExpr(do.Lo, env)
		hiA, ok2 := dep.FromExpr(do.Hi, env)
		if ok1 && ok2 {
			if span := hiA.Sub(loA); span.IsConst() && span.ConstVal() == k-1 {
				vIt = lo.Name
				break
			}
		}
	}
	if vIt == "" {
		return bad("no inner loop over %s spanning exactly %d iterations", tiled.Var, k)
	}

	// 2. it = lo0 + K·tile for some tile counter.
	vTile := ""
	for _, as := range assigns[vIt] {
		a, ok := dep.FromExpr(as.RHS, env)
		if !ok || len(a.Coef) != 0 || len(a.Syms) != 1 || a.Const != lo0.ConstVal() {
			continue
		}
		for name, coef := range a.Syms {
			if coef == k {
				vTile = name
			}
		}
		if vTile != "" {
			break
		}
	}
	if vTile == "" {
		return bad("no assignment %s = %d + %d·tile found", vIt, lo0.ConstVal(), k)
	}

	// 3. tile = tpp·owner + within, with the within loop spanning [0, tpp-1]
	// and the owner produced by the ring permutation mod(me+shift, np).
	for _, as := range assigns[vTile] {
		a, ok := dep.FromExpr(as.RHS, env)
		if !ok || len(a.Coef) != 0 || len(a.Syms) != 2 || a.Const != 0 {
			continue
		}
		var names []string
		for name := range a.Syms {
			names = append(names, name)
		}
		for _, owner := range names {
			within := names[0]
			if within == owner {
				within = names[1]
			}
			if a.Syms[owner] != tpp || a.Syms[within] != 1 {
				continue
			}
			if !hasDoOver(tu, within, 0, tpp-1, env) {
				continue
			}
			if !hasModAssign(assigns, owner) {
				continue
			}
			return nil
		}
	}
	return bad("no tile decomposition tile = %d·owner + within with a [0,%d] within-loop and a ring owner found", tpp, tpp-1)
}

// identAssigns indexes a unit's scalar assignments by target name.
func identAssigns(u *ftn.Unit) map[string][]*ftn.AssignStmt {
	out := map[string][]*ftn.AssignStmt{}
	ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
		if as, ok := s.(*ftn.AssignStmt); ok {
			if id, ok := as.LHS.(*ftn.Ident); ok {
				out[id.Name] = append(out[id.Name], as)
			}
		}
		return true
	})
	return out
}

// findDos returns every DO over the named variable in the unit.
func findDos(u *ftn.Unit, v string) []*ftn.DoStmt {
	var out []*ftn.DoStmt
	ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
		if do, ok := s.(*ftn.DoStmt); ok && do.Var == v {
			out = append(out, do)
		}
		return true
	})
	return out
}

// hasDoOver reports whether the unit contains a DO over v with the given
// constant bounds.
func hasDoOver(u *ftn.Unit, v string, lo, hi int64, env *dep.Env) bool {
	for _, do := range findDos(u, v) {
		loA, ok1 := dep.FromExpr(do.Lo, env)
		hiA, ok2 := dep.FromExpr(do.Hi, env)
		if ok1 && ok2 && loA.IsConst() && hiA.IsConst() && loA.ConstVal() == lo && hiA.ConstVal() == hi {
			return true
		}
	}
	return false
}

// hasModAssign reports whether some assignment to the named variable is a
// mod(...) permutation.
func hasModAssign(assigns map[string][]*ftn.AssignStmt, v string) bool {
	for _, as := range assigns[v] {
		if ref, ok := as.RHS.(*ftn.Ref); ok && ref.Name == "mod" {
			return true
		}
	}
	return false
}
