// Package mpi is an MPI-1 style message-passing runtime that executes on
// the netsim virtual cluster: nonblocking point-to-point with tag matching,
// blocking wrappers, Alltoall/Barrier/Allreduce/Allgather/Bcast
// collectives, and the eager/rendezvous protocol split — with host-driven
// progress on non-offload stacks (the behaviour the paper's transformation
// exploits: without NIC offload, rendezvous data only moves while the host
// sits inside an MPI call).
//
// Payloads move via fetch/place callbacks: fetch snapshots the send buffer
// when the protocol actually reads it (post time for eager, transfer start
// for rendezvous), and place stores the payload when the receive completes.
// This timing-accurate snapshotting means a transformed program that
// overwrites an in-flight buffer produces wrong answers in simulation just
// as it would on hardware.
package mpi

import (
	"fmt"

	"repro/internal/netsim"
)

// AnyTag matches any tag on a receive.
const AnyTag = -1

// Request is a nonblocking operation handle.
type Request struct {
	done  *netsim.Completion
	recv  bool
	bytes int64
	eager bool
	kind  string
}

// World couples a simulated cluster with per-rank MPI endpoint state.
type World struct {
	Cluster *netsim.Cluster
	eps     []*endpoint
}

// endpoint is per-rank matching and progress state; mutated only inside
// engine events or by the (exclusively running) owner proc.
type endpoint struct {
	world  *World
	rank   int
	proc   *netsim.Proc
	posted []*recvPost
	unexp  []*inbound
	ready  []*pendingTx // rendezvous transfers awaiting host progress
	inWait bool
}

// recvPost is a posted receive awaiting a match.
type recvPost struct {
	src, tag int
	bytes    int64
	place    func(interface{})
	postedAt netsim.Time
	req      *Request
}

// inbound is an arrived-but-unmatched message (eager payload) or an
// arrived rendezvous RTS.
type inbound struct {
	src, tag  int
	bytes     int64
	arrivedAt netsim.Time
	payload   interface{} // eager only
	rdv       *pendingTx  // rendezvous only
}

// pendingTx is one rendezvous transfer in flight.
type pendingTx struct {
	src, dst, tag int
	bytes         int64
	fetch         func() interface{}
	sendReq       *Request
	recvReq       *recvPost // set once matched
	ctsSent       bool
	kicked        bool
}

// Rank is the per-process MPI handle used by rank bodies.
type Rank struct {
	world *World
	ep    *endpoint
	proc  *netsim.Proc
	me    int
	np    int
}

// Me returns the rank id.
func (r *Rank) Me() int { return r.me }

// NP returns the communicator size.
func (r *Rank) NP() int { return r.np }

// Now returns the rank's virtual clock (MPI_Wtime).
func (r *Rank) Now() netsim.Time { return r.proc.Now() }

// Compute advances the rank's clock by d (models local computation).
func (r *Rank) Compute(d netsim.Time) { r.proc.Advance(d) }

// RunStats reports one run's outcome.
type RunStats struct {
	End      netsim.Time // completion time of the slowest rank
	PerRank  []RankStats
	Messages int64
	Bytes    int64
}

// RankStats is per-rank accounting.
type RankStats struct {
	Finish  netsim.Time
	Compute netsim.Time
	Blocked netsim.Time
}

// Run executes body on np simulated ranks over the given profile and
// returns the virtual completion time and statistics.
func Run(np int, prof netsim.Profile, body func(r *Rank)) (*RunStats, error) {
	cl := netsim.NewCluster(np, prof)
	w := &World{Cluster: cl}
	ranks := make([]*Rank, np)
	for i := 0; i < np; i++ {
		ep := &endpoint{world: w, rank: i}
		w.eps = append(w.eps, ep)
		rank := &Rank{world: w, ep: ep, me: i, np: np}
		ranks[i] = rank
		cl.Eng.Spawn(func(p *netsim.Proc) {
			rank.proc = p
			ep.proc = p
			body(rank)
		})
	}
	end, err := cl.Eng.Run()
	if err != nil {
		return nil, err
	}
	st := &RunStats{End: end, Messages: cl.Stat.Messages, Bytes: cl.Stat.Bytes}
	for i := 0; i < np; i++ {
		p := ranks[i].proc
		st.PerRank = append(st.PerRank, RankStats{
			Finish:  p.Now(),
			Compute: p.ComputeTime,
			Blocked: p.BlockedTime,
		})
	}
	return st, nil
}

// progress runs the host progress engine: entered on every MPI call, it
// kicks rendezvous transfers whose CTS has arrived (non-offload stacks).
func (r *Rank) progress() {
	if r.world.Cluster.Prof.Offload {
		return
	}
	ep := r.ep
	for _, tx := range ep.ready {
		r.kickTx(tx, false)
	}
	ep.ready = ep.ready[:0]
}

// kickTx starts the bulk data movement of a rendezvous transfer from this
// (sending) host. inEvent marks calls from engine events (host blocked in a
// wait): the copy cost then delays the transfer instead of advancing the
// blocked proc.
func (r *Rank) kickTx(tx *pendingTx, inEvent bool) {
	if tx.kicked {
		return
	}
	tx.kicked = true
	w := r.world
	prof := w.Cluster.Prof
	var start netsim.Time
	copyCost := w.Cluster.CopyCost(tx.bytes)
	if inEvent {
		start = r.proc.Now() + copyCost
	} else {
		r.proc.Advance(copyCost)
		start = r.proc.Now()
	}
	payload := tx.fetch()
	w.Cluster.Eng.At(start, func(now netsim.Time) {
		tx.sendReq.done.Complete(now) // buffer handed off to the stack
		w.Cluster.Transfer(tx.src, tx.dst, tx.bytes, now, func(t netsim.Time) {
			w.deliverData(tx, payload, t)
		})
	})
	_ = prof
}

// deliverData completes a matched rendezvous receive.
func (w *World) deliverData(tx *pendingTx, payload interface{}, t netsim.Time) {
	rp := tx.recvReq
	if rp == nil {
		panic("mpi: rendezvous data arrived before match")
	}
	rp.place(payload)
	rp.req.done.Complete(t)
}

// matchKey reports whether a posted receive accepts (src, tag).
func matches(rp *recvPost, src, tag int) bool {
	return rp.src == src && (rp.tag == AnyTag || rp.tag == tag)
}

// Isend posts a nonblocking send of bytes to dst with the given tag. fetch
// must return the payload; it is invoked exactly once, when the protocol
// reads the buffer.
func (r *Rank) Isend(dst, tag int, bytes int64, fetch func() interface{}) *Request {
	if dst < 0 || dst >= r.np {
		panic(fmt.Sprintf("mpi: Isend to invalid rank %d", dst))
	}
	r.progress()
	prof := r.world.Cluster.Prof
	req := &Request{done: r.world.Cluster.Eng.NewCompletion(), bytes: bytes, kind: "send"}
	r.proc.Advance(prof.OSend)

	if bytes <= prof.EagerThreshold {
		req.eager = true
		// Eager: host packs now; the send buffer is immediately reusable.
		r.proc.Advance(r.world.Cluster.CopyCost(bytes))
		payload := fetch()
		now := r.proc.Now()
		req.done.Complete(now)
		w := r.world
		src := r.me
		w.Cluster.Transfer(src, dst, bytes, now, func(t netsim.Time) {
			w.arriveEager(dst, src, tag, bytes, payload, t)
		})
		return req
	}

	// Rendezvous: an RTS travels to the receiver; data moves on CTS —
	// autonomously with offload, at the next host MPI call without.
	tx := &pendingTx{src: r.me, dst: dst, tag: tag, bytes: bytes, fetch: fetch, sendReq: req}
	w := r.world
	now := r.proc.Now()
	w.Cluster.Ctrl(r.me, dst, now, func(t netsim.Time) {
		w.arriveRTS(tx, t)
	})
	return req
}

// arriveEager handles an eager payload reaching dst.
func (w *World) arriveEager(dst, src, tag int, bytes int64, payload interface{}, t netsim.Time) {
	ep := w.eps[dst]
	for i, rp := range ep.posted {
		if matches(rp, src, tag) {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			rp.place(payload)
			at := t
			if rp.postedAt > at {
				at = rp.postedAt
			}
			rp.req.done.Complete(at)
			return
		}
	}
	ep.unexp = append(ep.unexp, &inbound{src: src, tag: tag, bytes: bytes, arrivedAt: t, payload: payload})
}

// arriveRTS handles a rendezvous request-to-send reaching the receiver.
func (w *World) arriveRTS(tx *pendingTx, t netsim.Time) {
	ep := w.eps[tx.dst]
	for i, rp := range ep.posted {
		if matches(rp, tx.src, tx.tag) {
			ep.posted = append(ep.posted[:i], ep.posted[i+1:]...)
			tx.recvReq = rp
			w.sendCTS(tx, t)
			return
		}
	}
	ep.unexp = append(ep.unexp, &inbound{src: tx.src, tag: tx.tag, bytes: tx.bytes, arrivedAt: t, rdv: tx})
}

// sendCTS sends clear-to-send back to the sender; on arrival the data
// transfer starts (offload) or is queued for host progress (non-offload).
func (w *World) sendCTS(tx *pendingTx, t netsim.Time) {
	if tx.ctsSent {
		return
	}
	tx.ctsSent = true
	w.Cluster.Ctrl(tx.dst, tx.src, t, func(at netsim.Time) {
		sep := w.eps[tx.src]
		if w.Cluster.Prof.Offload {
			// The NIC reads the buffer and moves the data by itself.
			payload := tx.fetch()
			tx.sendReq.done.Complete(at)
			w.Cluster.Transfer(tx.src, tx.dst, tx.bytes, at, func(t2 netsim.Time) {
				w.deliverData(tx, payload, t2)
			})
			return
		}
		if sep.inWait {
			// The host is polling inside a blocking MPI call: kick now.
			rk := &Rank{world: w, ep: sep, proc: sep.proc, me: tx.src, np: len(w.eps)}
			rk.kickTx(tx, true)
			return
		}
		sep.ready = append(sep.ready, tx)
	})
}

// Irecv posts a nonblocking receive from src (no wildcard sources) with the
// given tag; place is invoked with the payload when the data arrives.
func (r *Rank) Irecv(src, tag int, bytes int64, place func(interface{})) *Request {
	if src < 0 || src >= r.np {
		panic(fmt.Sprintf("mpi: Irecv from invalid rank %d", src))
	}
	r.progress()
	prof := r.world.Cluster.Prof
	r.proc.Advance(prof.ORecv)
	req := &Request{done: r.world.Cluster.Eng.NewCompletion(), recv: true, bytes: bytes, kind: "recv"}
	rp := &recvPost{src: src, tag: tag, bytes: bytes, place: place, postedAt: r.proc.Now(), req: req}
	req.eager = bytes <= prof.EagerThreshold
	w := r.world
	me := r.me
	// Matching is engine-side state: mutate it in an event at post time.
	w.Cluster.Eng.At(r.proc.Now(), func(t netsim.Time) {
		ep := w.eps[me]
		for i, in := range ep.unexp {
			if in.src == src && (tag == AnyTag || in.tag == tag) {
				ep.unexp = append(ep.unexp[:i], ep.unexp[i+1:]...)
				if in.rdv != nil {
					in.rdv.recvReq = rp
					w.sendCTS(in.rdv, t)
				} else {
					rp.place(in.payload)
					at := in.arrivedAt
					if rp.postedAt > at {
						at = rp.postedAt
					}
					req.done.Complete(at)
				}
				return
			}
		}
		ep.posted = append(ep.posted, rp)
	})
	return req
}

// Wait blocks until the request completes, charging the host costs that
// accrue at completion time (eager unpack, TCP receive copies). The
// per-message overhead o was already charged at post time.
func (r *Rank) Wait(req *Request) {
	r.progress()
	r.ep.inWait = true
	r.proc.Wait(req.done, req.kind)
	r.ep.inWait = false
	prof := r.world.Cluster.Prof
	if req.recv {
		if req.eager || !prof.Offload {
			r.proc.Advance(r.world.Cluster.CopyCost(req.bytes))
		}
	}
}

// Waitall waits for every request in order.
func (r *Rank) Waitall(reqs []*Request) {
	for _, req := range reqs {
		if req != nil {
			r.Wait(req)
		}
	}
}

// Test reports whether the request has completed, without blocking. Like
// MPI_Test it enters the progress engine: the scheduler gets a chance to
// process any event up to this rank's current time (otherwise a Test
// polling loop would spin without the network ever advancing).
func (r *Rank) Test(req *Request) bool {
	r.progress()
	r.proc.Yield()
	return req.done.Done() && req.done.When() <= r.proc.Now()
}

// Send is the blocking send wrapper.
func (r *Rank) Send(dst, tag int, bytes int64, fetch func() interface{}) {
	req := r.Isend(dst, tag, bytes, fetch)
	r.Wait(req)
}

// Recv is the blocking receive wrapper.
func (r *Rank) Recv(src, tag int, bytes int64, place func(interface{})) {
	req := r.Irecv(src, tag, bytes, place)
	r.Wait(req)
}
