package mpi

import (
	"testing"

	"repro/internal/netsim"
)

// TestBufferOverwriteRaceIsVisible validates a property the reproduction
// relies on: the runtime snapshots send buffers when the protocol actually
// reads them (post time for eager, transfer start for rendezvous), so a
// program that overwrites an in-flight rendezvous buffer before waiting —
// the bug the transformation must never introduce — produces wrong data in
// simulation just as it would on RDMA hardware.
func TestBufferOverwriteRaceIsVisible(t *testing.T) {
	prof := netsim.MPICHGM()
	big := prof.EagerThreshold * 4

	run := func(overwriteEarly bool) int64 {
		var got int64
		_, err := Run(2, prof, func(r *Rank) {
			if r.Me() == 0 {
				buf := []int64{1}
				req := r.Isend(1, 1, big, func() interface{} { return buf[0] })
				if overwriteEarly {
					// Overwrite while the NIC may not have read it yet:
					// the rendezvous data leaves only after the CTS.
					buf[0] = 666
					r.Compute(50 * netsim.Millisecond)
				} else {
					r.Compute(50 * netsim.Millisecond)
					r.Wait(req)
					buf[0] = 666 // safe: after completion
				}
				r.Wait(req)
			} else {
				r.Compute(10 * netsim.Millisecond) // recv posted a bit late
				r.Recv(0, 1, big, func(p interface{}) { got = p.(int64) })
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return got
	}

	if v := run(false); v != 1 {
		t.Errorf("safe schedule delivered %d, want 1", v)
	}
	if v := run(true); v != 666 {
		t.Errorf("racy schedule delivered %d; the race should be visible (want 666)", v)
	}
}

// TestEagerBuffersSafeImmediately: eager sends copy at post time, so
// overwriting right after Isend is safe (MPI buffered-send semantics).
func TestEagerBuffersSafeImmediately(t *testing.T) {
	prof := netsim.MPICHGM()
	var got int64
	_, err := Run(2, prof, func(r *Rank) {
		if r.Me() == 0 {
			buf := []int64{7}
			req := r.Isend(1, 1, 8, func() interface{} { return buf[0] })
			buf[0] = 999 // harmless: the payload was snapshotted at post
			r.Wait(req)
		} else {
			r.Recv(0, 1, 8, func(p interface{}) { got = p.(int64) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 7 {
		t.Errorf("eager payload = %d, want 7", got)
	}
}

// TestRendezvousBlockedSenderKicksDuringWait exercises the in-event kick
// path: the sender enters Wait before the CTS arrives, so the transfer must
// start from inside the CTS event while the host is blocked.
func TestRendezvousBlockedSenderKicksDuringWait(t *testing.T) {
	prof := netsim.MPICHTCP() // host progress
	big := prof.EagerThreshold * 2
	var got []int64
	payload := make([]int64, big/8)
	payload[0] = 42
	_, err := Run(2, prof, func(r *Rank) {
		if r.Me() == 0 {
			req := r.Isend(1, 1, big, func() interface{} { return payload })
			r.Wait(req) // blocked before the CTS round trip completes
		} else {
			r.Compute(5 * netsim.Millisecond) // delay the recv post
			r.Recv(0, 1, big, func(p interface{}) { got = p.([]int64) })
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 || got[0] != 42 {
		t.Errorf("rendezvous during blocked wait failed: %v", got)
	}
}

// TestHostProgressDelaysTransfer: without offload, a sender that posts an
// isend and then computes without touching MPI delays the bulk transfer
// until its next MPI call — the exact mechanism that defeats overlap.
func TestHostProgressDelaysTransfer(t *testing.T) {
	prof := netsim.MPICHTCP()
	big := int64(1 << 20)
	compute := 200 * netsim.Millisecond

	st, err := Run(2, prof, func(r *Rank) {
		if r.Me() == 0 {
			req := r.Isend(1, 1, big, func() interface{} { return nil })
			r.Compute(compute) // no MPI calls here: nothing progresses
			r.Wait(req)
		} else {
			req := r.Irecv(0, 1, big, func(interface{}) {})
			r.Wait(req)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := netsim.Time(float64(big) * prof.GapNsPerByte)
	if st.End < compute+wire {
		t.Errorf("transfer overlapped on a host-progress stack: end %v < compute %v + wire %v",
			st.End, compute, wire)
	}
}

// TestOffloadProgressesWithoutHost: the same schedule with offload
// completes in ~max(compute, transfer) because the NIC works alone.
func TestOffloadProgressesWithoutHost(t *testing.T) {
	prof := netsim.MPICHGM()
	big := int64(1 << 20)
	compute := 200 * netsim.Millisecond

	st, err := Run(2, prof, func(r *Rank) {
		if r.Me() == 0 {
			req := r.Isend(1, 1, big, func() interface{} { return nil })
			r.Compute(compute)
			r.Wait(req)
		} else {
			req := r.Irecv(0, 1, big, func(interface{}) {})
			r.Compute(compute)
			r.Wait(req)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	wire := netsim.Time(float64(big) * prof.GapNsPerByte)
	slack := 10 * netsim.Millisecond
	if st.End > compute+wire/2+slack {
		t.Errorf("offload did not overlap: end %v, compute %v, wire %v", st.End, compute, wire)
	}
}

// TestManyOutstandingRequests stresses the request bookkeeping: hundreds of
// posted operations drained by one Waitall, in both directions.
func TestManyOutstandingRequests(t *testing.T) {
	const nmsg = 300
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		sum := int64(0)
		_, err := Run(2, prof, func(r *Rank) {
			var reqs []*Request
			if r.Me() == 0 {
				for i := 0; i < nmsg; i++ {
					v := int64(i)
					reqs = append(reqs, r.Isend(1, i, 8, func() interface{} { return v }))
				}
			} else {
				results := make([]int64, nmsg)
				for i := 0; i < nmsg; i++ {
					idx := i
					reqs = append(reqs, r.Irecv(0, i, 8, func(p interface{}) { results[idx] = p.(int64) }))
				}
				defer func() {
					for _, v := range results {
						sum += v
					}
				}()
			}
			r.Waitall(reqs)
		})
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		want := int64(nmsg * (nmsg - 1) / 2)
		if sum != want {
			t.Errorf("%s: sum = %d, want %d", prof, sum, want)
		}
	}
}

// TestTestNonBlocking covers Request polling.
func TestTestNonBlocking(t *testing.T) {
	_, err := Run(2, netsim.MPICHGM(), func(r *Rank) {
		if r.Me() == 0 {
			req := r.Isend(1, 0, 8, func() interface{} { return int64(5) })
			// Eager send: complete at post.
			if !r.Test(req) {
				t.Error("eager send should test complete immediately")
			}
		} else {
			req := r.Irecv(0, 0, 8, func(interface{}) {})
			for !r.Test(req) {
				r.Compute(10 * netsim.Microsecond)
			}
			r.Wait(req)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}
