package mpi

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/netsim"
)

func profiles() []netsim.Profile {
	return []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()}
}

func TestSendRecvValue(t *testing.T) {
	for _, prof := range profiles() {
		var got int64
		_, err := Run(2, prof, func(r *Rank) {
			if r.Me() == 0 {
				r.Send(1, 7, 8, func() interface{} { return int64(42) })
			} else {
				r.Recv(0, 7, 8, func(p interface{}) { got = p.(int64) })
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		if got != 42 {
			t.Errorf("%s: got %d, want 42", prof, got)
		}
	}
}

func TestSendRecvLargeRendezvous(t *testing.T) {
	for _, prof := range profiles() {
		big := prof.EagerThreshold * 4
		var got []int64
		payload := make([]int64, big/8)
		for i := range payload {
			payload[i] = int64(i)
		}
		_, err := Run(2, prof, func(r *Rank) {
			if r.Me() == 0 {
				r.Send(1, 1, big, func() interface{} { return payload })
			} else {
				r.Recv(0, 1, big, func(p interface{}) { got = p.([]int64) })
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		if len(got) != len(payload) || got[1000] != 1000 {
			t.Errorf("%s: rendezvous payload corrupted", prof)
		}
	}
}

func TestRecvBeforeSendAndAfter(t *testing.T) {
	// Both orders must work: posted-then-arrived and arrived-then-posted.
	for _, prof := range profiles() {
		for _, recvFirst := range []bool{true, false} {
			var got int64
			_, err := Run(2, prof, func(r *Rank) {
				if r.Me() == 0 {
					if !recvFirst {
						r.Compute(netsim.Time(1)) // send quickly
					} else {
						r.Compute(500 * netsim.Microsecond)
					}
					r.Send(1, 3, 8, func() interface{} { return int64(9) })
				} else {
					if !recvFirst {
						r.Compute(500 * netsim.Microsecond)
					}
					r.Recv(0, 3, 8, func(p interface{}) { got = p.(int64) })
				}
			})
			if err != nil {
				t.Fatalf("%s recvFirst=%v: %v", prof, recvFirst, err)
			}
			if got != 9 {
				t.Errorf("%s recvFirst=%v: got %d", prof, recvFirst, got)
			}
		}
	}
}

func TestTagMatchingOrder(t *testing.T) {
	// Two messages with different tags arrive; receives posted in the
	// opposite order must still match by tag.
	for _, prof := range profiles() {
		var a, b int64
		_, err := Run(2, prof, func(r *Rank) {
			if r.Me() == 0 {
				r.Send(1, 1, 8, func() interface{} { return int64(111) })
				r.Send(1, 2, 8, func() interface{} { return int64(222) })
			} else {
				r.Compute(netsim.Millisecond) // both likely arrived
				r.Recv(0, 2, 8, func(p interface{}) { b = p.(int64) })
				r.Recv(0, 1, 8, func(p interface{}) { a = p.(int64) })
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		if a != 111 || b != 222 {
			t.Errorf("%s: a=%d b=%d", prof, a, b)
		}
	}
}

func TestNonOvertakingSameTag(t *testing.T) {
	// Same (src,dst,tag): messages must match posted receives in order.
	for _, prof := range profiles() {
		var first, second int64
		_, err := Run(2, prof, func(r *Rank) {
			if r.Me() == 0 {
				r.Send(1, 5, 8, func() interface{} { return int64(1) })
				r.Send(1, 5, 8, func() interface{} { return int64(2) })
			} else {
				r.Recv(0, 5, 8, func(p interface{}) { first = p.(int64) })
				r.Recv(0, 5, 8, func(p interface{}) { second = p.(int64) })
			}
		})
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		if first != 1 || second != 2 {
			t.Errorf("%s: order violated: %d then %d", prof, first, second)
		}
	}
}

func TestAlltoallCorrectness(t *testing.T) {
	for _, prof := range profiles() {
		for _, np := range []int{2, 4, 8} {
			got := make([][]int64, np)
			_, err := Run(np, prof, func(r *Rank) {
				recv := make([]int64, np)
				r.Alltoall(8,
					func(dst int) interface{} { return int64(r.Me()*100 + dst) },
					func(src int, p interface{}) { recv[src] = p.(int64) })
				got[r.Me()] = recv
			})
			if err != nil {
				t.Fatalf("%s np=%d: %v", prof, np, err)
			}
			for me := 0; me < np; me++ {
				for src := 0; src < np; src++ {
					if got[me][src] != int64(src*100+me) {
						t.Errorf("%s np=%d: rank %d from %d = %d, want %d",
							prof, np, me, src, got[me][src], src*100+me)
					}
				}
			}
		}
	}
}

func TestQuickAlltoallRandomSizes(t *testing.T) {
	r := rand.New(rand.NewSource(2006))
	check := func() bool {
		np := 2 + r.Intn(6)
		elems := 1 + r.Intn(4096)
		prof := profiles()[r.Intn(2)]
		ok := true
		_, err := Run(np, prof, func(rk *Rank) {
			recv := make([][]int64, np)
			rk.Alltoall(int64(8*elems),
				func(dst int) interface{} {
					buf := make([]int64, elems)
					for i := range buf {
						buf[i] = int64(rk.Me()*1000000 + dst*1000 + i%997)
					}
					return buf
				},
				func(src int, p interface{}) { recv[src] = p.([]int64) })
			for src := 0; src < np; src++ {
				for i, v := range recv[src] {
					if v != int64(src*1000000+rk.Me()*1000+i%997) {
						ok = false
					}
				}
			}
		})
		return err == nil && ok
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	for _, prof := range profiles() {
		var after []netsim.Time
		_, err := Run(4, prof, func(r *Rank) {
			r.Compute(netsim.Time(r.Me()) * 100 * netsim.Microsecond)
			r.Barrier()
			after = append(after, r.Now())
		})
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		// All ranks leave the barrier no earlier than the slowest entered.
		for _, tm := range after {
			if tm < 300*netsim.Microsecond {
				t.Errorf("%s: rank left barrier at %v before slowest arrival", prof, tm)
			}
		}
	}
}

func TestBcastAllRanks(t *testing.T) {
	for _, prof := range profiles() {
		for _, root := range []int{0, 2} {
			vals := make([]int64, 5)
			_, err := Run(5, prof, func(r *Rank) {
				var v int64
				r.Bcast(root, 8,
					func() interface{} { return int64(777) },
					func(p interface{}) { v = p.(int64) })
				vals[r.Me()] = v
			})
			if err != nil {
				t.Fatalf("%s root=%d: %v", prof, root, err)
			}
			for i, v := range vals {
				if v != 777 {
					t.Errorf("%s root=%d: rank %d got %d", prof, root, i, v)
				}
			}
		}
	}
}

func TestAllreduceSum(t *testing.T) {
	for _, prof := range profiles() {
		sums := make([]int64, 6)
		_, err := Run(6, prof, func(r *Rank) {
			sums[r.Me()] = r.AllreduceInt64(int64(r.Me()+1), func(a, b int64) int64 { return a + b })
		})
		if err != nil {
			t.Fatalf("%s: %v", prof, err)
		}
		for i, s := range sums {
			if s != 21 {
				t.Errorf("%s: rank %d sum = %d, want 21", prof, i, s)
			}
		}
	}
}

func TestAllgather(t *testing.T) {
	_, err := Run(4, netsim.MPICHGM(), func(r *Rank) {
		got := r.AllgatherInt64(int64(r.Me() * 11))
		for i, v := range got {
			if v != int64(i*11) {
				panic("allgather wrong")
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoallvVariableSizes(t *testing.T) {
	np := 4
	_, err := Run(np, netsim.MPICHGM(), func(r *Rank) {
		parts := make([][]int64, np)
		for d := 0; d < np; d++ {
			n := (r.Me() + d) % 3 // some empty
			for i := 0; i < n; i++ {
				parts[d] = append(parts[d], int64(r.Me()*100+d*10+i))
			}
		}
		got := r.AlltoallvInt64(parts)
		for src := 0; src < np; src++ {
			wantN := (src + r.Me()) % 3
			if len(got[src]) != wantN {
				panic("alltoallv size wrong")
			}
			for i, v := range got[src] {
				if v != int64(src*100+r.Me()*10+i) {
					panic("alltoallv value wrong")
				}
			}
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestOverlapMechanism is the heart of the reproduction: with NIC offload,
// a rendezvous isend overlaps with computation (total ≈ max(comm, comp));
// without offload the data moves only at the wait (total ≈ comp + comm).
func TestOverlapMechanism(t *testing.T) {
	const bytes = 8 << 20 // 8 MiB, far above both eager thresholds
	compute := 100 * netsim.Millisecond

	elapsed := func(prof netsim.Profile) netsim.Time {
		st, err := Run(2, prof, func(r *Rank) {
			if r.Me() == 0 {
				req := r.Isend(1, 1, bytes, func() interface{} { return nil })
				r.Compute(compute)
				r.Wait(req)
			} else {
				req := r.Irecv(0, 1, bytes, func(interface{}) {})
				r.Compute(compute)
				r.Wait(req)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return st.End
	}

	gm := elapsed(netsim.MPICHGM())
	tcp := elapsed(netsim.MPICHTCP())

	wireGM := netsim.Time(float64(bytes) * netsim.MPICHGM().GapNsPerByte)
	// Offload: the transfer ran during the compute phase.
	if gm > compute+wireGM/2 {
		t.Errorf("offload did not overlap: total %v, compute %v, wire %v", gm, compute, wireGM)
	}
	// Non-offload: data starts moving at the Wait; no overlap of the bulk.
	wireTCP := netsim.Time(float64(bytes) * netsim.MPICHTCP().GapNsPerByte)
	if tcp < compute+wireTCP {
		t.Errorf("non-offload overlapped unexpectedly: total %v < compute %v + wire %v", tcp, compute, wireTCP)
	}
}

func TestDeadlockReported(t *testing.T) {
	_, err := Run(2, netsim.MPICHGM(), func(r *Rank) {
		if r.Me() == 0 {
			r.Recv(1, 9, 8, func(interface{}) {}) // never sent
		}
	})
	if err == nil {
		t.Fatal("want deadlock error")
	}
}

func TestRunStatsAccounting(t *testing.T) {
	st, err := Run(2, netsim.MPICHGM(), func(r *Rank) {
		r.Compute(10 * netsim.Millisecond)
		r.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.End < 10*netsim.Millisecond {
		t.Errorf("end = %v", st.End)
	}
	for i, rs := range st.PerRank {
		if rs.Compute < 10*netsim.Millisecond {
			t.Errorf("rank %d compute = %v", i, rs.Compute)
		}
	}
	if st.Messages == 0 {
		t.Error("no messages counted")
	}
}
