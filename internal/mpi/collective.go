package mpi

// Collective operations, implemented over the point-to-point layer the way
// MPICH-era libraries did. Tags above collTagBase are reserved for
// collectives; user code should use small non-negative tags.

import "repro/internal/netsim"

const collTagBase = 1 << 24

// memcpyNsPerByte prices local buffer copies (the alltoall self partition):
// zero-copy NICs do not make local memcpys free.
const memcpyNsPerByte = 1.0

// Alltoall exchanges one partition with every rank: fetch(dst) supplies the
// partition destined for dst, place(src, payload) stores the partition
// received from src. bytesPer is the partition size in bytes. The self
// partition moves by local copy. The whole exchange happens inside this
// call (no overlap with computation), exactly like the original codes the
// paper transforms.
func (r *Rank) Alltoall(bytesPer int64, fetch func(dst int) interface{}, place func(src int, payload interface{})) {
	tag := collTagBase + 1
	reqs := make([]*Request, 0, 2*(r.np-1))
	// Staggered ring order to avoid hammering rank 0 first.
	for j := 1; j < r.np; j++ {
		from := (r.np + r.me - j) % r.np
		src := from
		reqs = append(reqs, r.Irecv(from, tag, bytesPer, func(p interface{}) { place(src, p) }))
	}
	for j := 1; j < r.np; j++ {
		to := (r.me + j) % r.np
		dst := to
		reqs = append(reqs, r.Isend(to, tag, bytesPer, func() interface{} { return fetch(dst) }))
	}
	place(r.me, fetch(r.me))
	r.Compute(netsim.Time(float64(bytesPer) * memcpyNsPerByte)) // local partition memcpy
	r.Waitall(reqs)
}

// Barrier synchronizes all ranks (central coordinator algorithm: gather
// zero-byte tokens at rank 0, then broadcast the release).
func (r *Rank) Barrier() {
	tag := collTagBase + 2
	none := func() interface{} { return nil }
	drop := func(interface{}) {}
	if r.me == 0 {
		for src := 1; src < r.np; src++ {
			r.Recv(src, tag, 1, drop)
		}
		for dst := 1; dst < r.np; dst++ {
			r.Send(dst, tag, 1, none)
		}
	} else {
		r.Send(0, tag, 1, none)
		r.Recv(0, tag, 1, drop)
	}
}

// Bcast distributes root's payload to all ranks along a binomial tree.
// fetch supplies the payload on the root; place stores it on every other
// rank. It returns the payload on every rank for convenience.
func (r *Rank) Bcast(root int, bytes int64, fetch func() interface{}, place func(interface{})) {
	tag := collTagBase + 3
	// Rotate ranks so the root is virtual rank 0.
	vr := (r.me - root + r.np) % r.np
	var payload interface{}
	have := false
	if vr == 0 {
		payload = fetch()
		have = true
	}
	// Binomial tree: in round k, ranks < 2^k with bit pattern send to
	// vr + 2^k.
	for k := 1; k < 2*r.np; k <<= 1 {
		if vr < k && vr+k < r.np {
			dst := (vr + k + root) % r.np
			p := payload
			if !have {
				panic("mpi: Bcast internal: sending before receiving")
			}
			r.Send(dst, tag, bytes, func() interface{} { return p })
		} else if vr >= k && vr < 2*k {
			src := (vr - k + root) % r.np
			r.Recv(src, tag, bytes, func(p interface{}) { payload = p; have = true })
			if place != nil {
				place(payload)
			}
		}
	}
	if vr == 0 && place != nil {
		place(payload)
	}
}

// ReduceInt64 combines one int64 per rank at the root with op.
func (r *Rank) ReduceInt64(root int, x int64, op func(a, b int64) int64) int64 {
	tag := collTagBase + 4
	acc := x
	if r.me == root {
		for src := 0; src < r.np; src++ {
			if src == root {
				continue
			}
			r.Recv(src, tag, 8, func(p interface{}) { acc = op(acc, p.(int64)) })
		}
		return acc
	}
	r.Send(root, tag, 8, func() interface{} { return x })
	return 0
}

// AllreduceInt64 is ReduceInt64 followed by a broadcast of the result.
func (r *Rank) AllreduceInt64(x int64, op func(a, b int64) int64) int64 {
	res := r.ReduceInt64(0, x, op)
	r.Bcast(0, 8, func() interface{} { return res }, func(p interface{}) { res = p.(int64) })
	return res
}

// AllgatherInt64 collects one int64 from every rank on every rank.
func (r *Rank) AllgatherInt64(x int64) []int64 {
	tag := collTagBase + 5
	out := make([]int64, r.np)
	out[r.me] = x
	reqs := make([]*Request, 0, 2*(r.np-1))
	for j := 1; j < r.np; j++ {
		src := (r.np + r.me - j) % r.np
		s := src
		reqs = append(reqs, r.Irecv(src, tag, 8, func(p interface{}) { out[s] = p.(int64) }))
	}
	for j := 1; j < r.np; j++ {
		dst := (r.me + j) % r.np
		reqs = append(reqs, r.Isend(dst, tag, 8, func() interface{} { return x }))
	}
	r.Waitall(reqs)
	return out
}

// AllgatherInt64s collects a fixed-size []int64 from every rank.
func (r *Rank) AllgatherInt64s(xs []int64) [][]int64 {
	tag := collTagBase + 6
	out := make([][]int64, r.np)
	mine := append([]int64(nil), xs...)
	out[r.me] = mine
	bytes := int64(8 * len(xs))
	reqs := make([]*Request, 0, 2*(r.np-1))
	for j := 1; j < r.np; j++ {
		src := (r.np + r.me - j) % r.np
		s := src
		reqs = append(reqs, r.Irecv(src, tag, bytes, func(p interface{}) { out[s] = p.([]int64) }))
	}
	for j := 1; j < r.np; j++ {
		dst := (r.me + j) % r.np
		reqs = append(reqs, r.Isend(dst, tag, bytes, func() interface{} { return mine }))
	}
	r.Waitall(reqs)
	return out
}

// AlltoallvInt64 exchanges variable-size []int64 buffers: parts[dst] is the
// slice destined for dst; the result's [src] element is what src sent here.
// Counts need not be known in advance by the receiver; sizes here are
// carried by the payloads themselves (the byte count still drives timing,
// so each rank first exchanges counts, as real applications do).
func (r *Rank) AlltoallvInt64(parts [][]int64) [][]int64 {
	// Exchange counts with a fixed-size alltoall.
	counts := make([]int64, r.np)
	for i, p := range parts {
		counts[i] = int64(len(p))
	}
	recvCounts := make([]int64, r.np)
	r.Alltoall(8,
		func(dst int) interface{} { return counts[dst] },
		func(src int, p interface{}) { recvCounts[src] = p.(int64) })

	tag := collTagBase + 7
	out := make([][]int64, r.np)
	out[r.me] = append([]int64(nil), parts[r.me]...)
	var reqs []*Request
	for j := 1; j < r.np; j++ {
		src := (r.np + r.me - j) % r.np
		s := src
		if recvCounts[src] > 0 {
			reqs = append(reqs, r.Irecv(src, tag, 8*recvCounts[src], func(p interface{}) { out[s] = p.([]int64) }))
		} else {
			out[s] = nil
		}
	}
	for j := 1; j < r.np; j++ {
		dst := (r.me + j) % r.np
		d := dst
		if len(parts[dst]) > 0 {
			buf := parts[dst]
			reqs = append(reqs, r.Isend(dst, tag, 8*int64(len(buf)), func() interface{} {
				return append([]int64(nil), buf...)
			}))
		}
		_ = d
	}
	r.Waitall(reqs)
	return out
}
