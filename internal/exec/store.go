package exec

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// The variant store is the compiled-variant cache behind the compile
// engine. Every (program, plan) variant the pipeline produces is a concrete
// source text — core.Apply memoizes plan keys onto generated sources, so
// hashing the variant source is a canonical superset of keying by plan key:
// two plans that alias onto the same generated code (a knob no-op) share
// one compiled artifact, and the same variant reached from different
// scenarios, tuner candidates, or sweep shards compiles exactly once per
// store.
//
// Historically the store was a process-wide package global; it is now an
// injected interface scoped to a session, so concurrent sweeps in one
// process keep independent stats and an on-disk implementation can carry
// variant knowledge across processes and fleet workers.

// Key content-addresses a variant: the sha256 of its source bytes.
type Key [sha256.Size]byte

// KeyOf returns the content key of a variant source.
func KeyOf(src string) Key { return sha256.Sum256([]byte(src)) }

// String renders the key as lowercase hex (the on-disk entry name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// StoreStats counts variant-store traffic.
type StoreStats struct {
	// Compiled is the number of variants new to the store: lookups that
	// found neither a memory entry nor a valid disk entry and had to
	// compile from scratch.
	Compiled int64 `json:"compiled"`
	// Hits is the number of lookups served by an in-memory artifact.
	Hits int64 `json:"hits"`
	// DiskHits is the number of lookups served from a checksum-valid
	// on-disk entry: the variant was known from an earlier process, so it
	// is re-lowered in memory but does not count as new knowledge.
	DiskHits int64 `json:"disk_hits"`
	// Corrupt is the number of on-disk entries rejected by the checksum
	// (truncated, bit-flipped, or otherwise not matching their content
	// key) — each one is recompiled from the requested source and the
	// entry rewritten.
	Corrupt int64 `json:"corrupt"`
}

// Sub returns the stats delta since an earlier snapshot.
func (s StoreStats) Sub(earlier StoreStats) StoreStats {
	return StoreStats{
		Compiled: s.Compiled - earlier.Compiled,
		Hits:     s.Hits - earlier.Hits,
		DiskHits: s.DiskHits - earlier.DiskHits,
		Corrupt:  s.Corrupt - earlier.Corrupt,
	}
}

// VariantStore is the pluggable compiled-variant cache: a content-addressed
// store of program variants keyed by the sha256 of their source.
// Implementations must be concurrency-safe and single-flight — concurrent
// lookups of the same new variant block on one compile instead of
// duplicating it.
type VariantStore interface {
	// Get returns the compiled program for the variant source, compiling
	// it at most once per distinct variant. A lookup served by existing
	// store knowledge (a memory entry, or a checksum-valid disk entry)
	// counts as a hit rather than a compile.
	Get(src string) (*Program, error)
	// Put records the variant durably (where the store has a durable
	// layer) without compiling it — fleet workers warm a shared store
	// with variants other workers will need.
	Put(src string) error
	// Stats snapshots the store's traffic counters.
	Stats() StoreStats
}

// VerifyLedger is the optional verified-hash side table a variant store may
// carry: content keys whose variants already passed static verification, so
// a warm hit (same process, or a shared on-disk store in a later process)
// never pays for re-verification. Both built-in stores implement it; callers
// discover it by type assertion so third-party stores may decline.
type VerifyLedger interface {
	// MarkVerified records that the keyed variant verified clean.
	MarkVerified(key Key)
	// Verified reports whether the keyed variant is known clean.
	Verified(key Key) bool
}

// storeEntry is one variant's single-flight slot.
type storeEntry struct {
	once sync.Once
	prog *Program
	err  error
}

// MemStore is the in-memory variant store: compiled artifacts keyed by
// content, single-flight, scoped to the instance. A cache hit returns the
// identical *Program pointer.
type MemStore struct {
	mu       sync.Mutex
	entries  map[Key]*storeEntry
	verified map[Key]bool
	stats    StoreStats
}

// NewMemStore returns an empty in-memory variant store.
func NewMemStore() *MemStore {
	return &MemStore{entries: map[Key]*storeEntry{}, verified: map[Key]bool{}}
}

// MarkVerified implements VerifyLedger (in-memory only).
func (m *MemStore) MarkVerified(key Key) {
	m.mu.Lock()
	m.verified[key] = true
	m.mu.Unlock()
}

// Verified implements VerifyLedger.
func (m *MemStore) Verified(key Key) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.verified[key]
}

// lookup returns the entry for key, creating it when absent; existed
// reports whether the entry was already present. Stats are the caller's
// business — DiskStore layers its own accounting over the same entries.
func (m *MemStore) lookup(key Key) (e *storeEntry, existed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, existed = m.entries[key]
	if !existed {
		e = &storeEntry{}
		m.entries[key] = e
	}
	return e, existed
}

func (m *MemStore) bump(f func(*StoreStats)) {
	m.mu.Lock()
	f(&m.stats)
	m.mu.Unlock()
}

// Get implements VariantStore.
func (m *MemStore) Get(src string) (*Program, error) {
	e, existed := m.lookup(KeyOf(src))
	if existed {
		m.bump(func(s *StoreStats) { s.Hits++ })
	} else {
		m.bump(func(s *StoreStats) { s.Compiled++ })
	}
	e.once.Do(func() { e.prog, e.err = CompileSource(src) })
	return e.prog, e.err
}

// Put implements VariantStore. A memory store's only knowledge is the
// compiled artifact itself, so warming without compiling is a no-op.
func (m *MemStore) Put(string) error { return nil }

// Stats implements VariantStore.
func (m *MemStore) Stats() StoreStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// DiskStore is the on-disk content-addressed variant store, layered as
// disk-behind-memory: compiled artifacts live in a per-instance MemStore,
// and every variant's source is persisted under <dir>/<sha256-hex>.f90 so
// variant knowledge survives process restarts and can be shared across
// fleet workers through a common directory. Entries are checksummed on
// read — the file name is the content key, so a truncated or bit-flipped
// entry can never be trusted: it is recompiled from the requested source
// and rewritten.
type DiskStore struct {
	dir string
	mem *MemStore

	mu    sync.Mutex
	stats StoreStats
}

// DefaultCacheDir returns the user-level default store directory
// (~/.cache/compuniformer/variants or the platform equivalent).
func DefaultCacheDir() (string, error) {
	base, err := os.UserCacheDir()
	if err != nil {
		return "", fmt.Errorf("exec: no user cache dir (set -cache-dir explicitly): %w", err)
	}
	return filepath.Join(base, "compuniformer", "variants"), nil
}

// NewDiskStore opens (creating as needed) the on-disk variant store rooted
// at dir; "" selects DefaultCacheDir.
func NewDiskStore(dir string) (*DiskStore, error) {
	if dir == "" {
		var err error
		dir, err = DefaultCacheDir()
		if err != nil {
			return nil, err
		}
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("exec: variant store dir: %w", err)
	}
	return &DiskStore{dir: dir, mem: NewMemStore()}, nil
}

// Dir returns the store's root directory.
func (d *DiskStore) Dir() string { return d.dir }

// entryPath is the content-addressed file of a key.
func (d *DiskStore) entryPath(key Key) string {
	return filepath.Join(d.dir, key.String()+".f90")
}

// readValid reads the disk entry for key and verifies its checksum: the
// entry is valid only when the sha256 of its content equals the key it is
// filed under. It returns whether a valid entry was found; corrupt reports
// an entry that existed but failed the checksum.
func (d *DiskStore) readValid(key Key) (valid, corrupt bool) {
	b, err := os.ReadFile(d.entryPath(key))
	if err != nil {
		return false, false // no entry (or unreadable — treated as absent)
	}
	if sha256.Sum256(b) != key {
		return false, true
	}
	return true, false
}

// write persists the variant source under its content key, atomically
// (write to a temp file, then rename), so a concurrent reader never sees a
// half-written entry; a torn write from a crash fails the checksum instead.
func (d *DiskStore) write(key Key, src string) error {
	tmp, err := os.CreateTemp(d.dir, ".tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	_, werr := tmp.WriteString(src)
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(name)
		return werr
	}
	return os.Rename(name, d.entryPath(key))
}

// Get implements VariantStore: memory first, then disk, then a cold
// compile that writes the entry through to both layers.
func (d *DiskStore) Get(src string) (*Program, error) {
	key := KeyOf(src)
	e, existed := d.mem.lookup(key)
	if existed {
		d.mu.Lock()
		d.stats.Hits++
		d.mu.Unlock()
		e.once.Do(func() { e.prog, e.err = CompileSource(src) })
		return e.prog, e.err
	}
	valid, corrupt := d.readValid(key)
	d.mu.Lock()
	if valid {
		d.stats.DiskHits++
	} else {
		d.stats.Compiled++
		if corrupt {
			d.stats.Corrupt++
		}
	}
	d.mu.Unlock()
	e.once.Do(func() { e.prog, e.err = CompileSource(src) })
	// Write-through on new knowledge (and rewrite over a corrupt entry);
	// a variant that does not compile is not knowledge worth persisting.
	if !valid && e.err == nil {
		if werr := d.write(key, src); werr != nil {
			return nil, fmt.Errorf("exec: variant store write: %w", werr)
		}
	}
	return e.prog, e.err
}

// Put implements VariantStore: the source is persisted under its content
// key without compiling, warming the durable layer for other workers. An
// existing valid entry is left untouched; a corrupt one is rewritten.
func (d *DiskStore) Put(src string) error {
	key := KeyOf(src)
	if valid, _ := d.readValid(key); valid {
		return nil
	}
	return d.write(key, src)
}

// verifiedPath is the verified-hash marker of a key: an empty side file
// whose name is the content key, so its mere (atomic-rename) existence
// asserts "the variant with this hash verified clean".
func (d *DiskStore) verifiedPath(key Key) string {
	return filepath.Join(d.dir, key.String()+".ok")
}

// MarkVerified implements VerifyLedger: the key is recorded in memory and
// as a durable side marker, so a later process sharing the directory skips
// re-verification. Marker-write failures are deliberately swallowed — the
// ledger is an optimization, never a correctness dependency.
func (d *DiskStore) MarkVerified(key Key) {
	d.mem.MarkVerified(key)
	tmp, err := os.CreateTemp(d.dir, ".tmp-ok-*")
	if err != nil {
		return
	}
	name := tmp.Name()
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, d.verifiedPath(key)); err != nil {
		os.Remove(name)
	}
}

// Verified implements VerifyLedger: memory first, then the durable marker
// (hoisted into memory on a hit).
func (d *DiskStore) Verified(key Key) bool {
	if d.mem.Verified(key) {
		return true
	}
	if _, err := os.Stat(d.verifiedPath(key)); err != nil {
		return false
	}
	d.mem.MarkVerified(key)
	return true
}

// Stats implements VariantStore.
func (d *DiskStore) Stats() StoreStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// defaultStore is the process-default memory store behind the plain
// Engine.Run path — the zero-configuration behavior callers get when no
// session injects a store of its own.
var (
	defaultStoreOnce sync.Once
	defaultStore     *MemStore
)

// DefaultStore returns the process-default in-memory variant store.
func DefaultStore() VariantStore {
	defaultStoreOnce.Do(func() { defaultStore = NewMemStore() })
	return defaultStore
}
