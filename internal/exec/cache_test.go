package exec_test

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
)

// TestPlanKeysNeverCollide is the property test behind the variant cache's
// canonicalization: every distinct plan in a dense grid over the knob
// space — uniform plans, per-site divergent plans, and divergent plans
// differing from each other in a single knob of a single site — must have
// a distinct canonical key, and two plans with identical normalized
// content must share one.
func TestPlanKeysNeverCollide(t *testing.T) {
	ks := []int64{1, 2, 8, 16}
	waits := []plan.WaitSchedule{"", plan.WaitDeferred, plan.WaitPerTile}
	orders := []plan.SendOrder{"", plan.SendStaggered, plan.SendSequential}
	inters := []plan.Interchange{"", plan.InterchangeAuto, plan.InterchangeOn, plan.InterchangeOff}
	var decisions []plan.Decision
	for _, k := range ks {
		for _, w := range waits {
			for _, o := range orders {
				for _, ic := range inters {
					decisions = append(decisions, plan.Decision{K: k, Wait: w, SendOrder: o, Interchange: ic})
				}
			}
		}
	}
	sites := []string{"10:3", "20:3"}
	content := func(p *plan.Plan) string {
		// The normalized decision content a key must canonicalize: two
		// plans agreeing here are the same plan (empty knobs mean their
		// defaults), two differing anywhere are not.
		s := fmt.Sprintf("np=%d|%+v", p.NP, p.Default.Normalize())
		for _, sp := range p.Sites {
			s += fmt.Sprintf("|%s=%+v", sp.Site, sp.Decision.Normalize())
		}
		return s
	}
	seen := map[string]string{} // key -> content
	check := func(p *plan.Plan) {
		t.Helper()
		key := p.Key()
		want := content(p)
		if got, ok := seen[key]; ok && got != want {
			t.Fatalf("plan key collision: %q maps to both\n%s\nand\n%s", key, got, want)
		}
		seen[key] = want
	}
	// Uniform plans over the whole knob grid.
	for _, d := range decisions {
		check(plan.Uniform(d))
	}
	// Two-site divergent plans: site 0 fixed, site 1 sweeping the grid —
	// includes every single-knob difference from the uniform plan.
	base := plan.Decision{K: 8}
	for _, d := range decisions {
		p := plan.Uniform(base)
		p.Set(sites[0], base)
		p.Set(sites[1], d)
		check(p)
	}
	// Swapping which site carries which decision must change the key.
	a := plan.Uniform(base)
	a.Set(sites[0], plan.Decision{K: 2})
	a.Set(sites[1], plan.Decision{K: 16})
	b := plan.Uniform(base)
	b.Set(sites[0], plan.Decision{K: 16})
	b.Set(sites[1], plan.Decision{K: 2})
	if a.Key() == b.Key() {
		t.Fatal("mirrored per-site plans share a key")
	}
	// Normalization: spelled-out defaults alias the empty knobs.
	x := plan.Uniform(plan.Decision{K: 8})
	y := plan.Uniform(plan.Decision{
		K: 8, Wait: plan.WaitDeferred, SendOrder: plan.SendStaggered,
		Interchange: plan.InterchangeAuto, InterchangeMinBlockBytes: plan.DefaultInterchangeMinBlockBytes,
	})
	if x.Key() != y.Key() {
		t.Fatalf("normalized-equal plans have distinct keys:\n%q\n%q", x.Key(), y.Key())
	}
}

const cacheKernel = `
program tiny%d
  include 'mpif.h'
  integer ierr, me
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  print *, 'rank', me
  call mpi_finalize(ierr)
end program tiny%d
`

// TestCacheHitsReturnIdenticalArtifact: looking the same variant up again
// must return the very same compiled artifact (pointer identity), and the
// stats must count one compile plus the hits. Stores are per-instance now,
// so a fresh store starts from zero — no global reset needed.
func TestCacheHitsReturnIdenticalArtifact(t *testing.T) {
	store := exec.NewMemStore()
	src := fmt.Sprintf(cacheKernel, 1, 1)
	p1, err := store.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := store.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("cache hit returned a different compiled artifact")
	}
	other, err := store.Get(fmt.Sprintf(cacheKernel, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if other == p1 {
		t.Fatal("distinct variants share one compiled artifact")
	}
	if got := store.Stats(); got.Compiled != 2 || got.Hits != 1 {
		t.Fatalf("stats = %+v, want {Compiled:2 Hits:1}", got)
	}
}

// TestCacheConcurrentSingleFlight: many goroutines racing on the same new
// variant must end up with one artifact and one compile (run under -race
// in CI, this also proves the store is race-clean).
func TestCacheConcurrentSingleFlight(t *testing.T) {
	store := exec.NewMemStore()
	src := fmt.Sprintf(cacheKernel, 3, 3)
	const n = 16
	progs := make([]*exec.Program, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := store.Get(src)
			if err != nil {
				t.Error(err)
				return
			}
			progs[i] = p
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if progs[i] != progs[0] {
			t.Fatal("concurrent lookups returned distinct artifacts")
		}
	}
	got := store.Stats()
	if got.Compiled != 1 {
		t.Fatalf("compiled %d times concurrently, want 1", got.Compiled)
	}
	if got.Hits != n-1 {
		t.Fatalf("hits = %d, want %d", got.Hits, n-1)
	}
}
