package exec

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/netsim"
)

// Engine selects how program variants are executed: the bytecode tier
// (register machine lowered from the closure program), the compiled
// closure engine (drawing from a variant store), or the tree-walking
// interpreter, which is retained as the differential oracle.
type Engine string

const (
	// EngineBytecode lowers each compiled variant's main unit into a
	// register-based flat instruction stream (constant folding, batched
	// cost charges, bounds-check elimination) and dispatches through a
	// flat switch. The fastest tier, and the default.
	EngineBytecode Engine = "bytecode"
	// EngineCompile compiles each variant once (shared through the
	// variant store) and replays the closure program. The mid-tier.
	EngineCompile Engine = "compile"
	// EngineWalk parses and tree-walks the AST for every run — the
	// historical path, kept as the bit-identical oracle.
	EngineWalk Engine = "walk"
)

// Default is the engine used when none is named.
const Default = EngineBytecode

// ParseEngine validates an engine name ("" selects the default). It is the
// one engine-name parser every command-line surface shares.
func ParseEngine(name string) (Engine, error) {
	switch Engine(name) {
	case "":
		return Default, nil
	case EngineBytecode, EngineCompile, EngineWalk:
		return Engine(name), nil
	}
	return "", fmt.Errorf("exec: unknown engine %q (want %q, %q, or %q)",
		name, EngineBytecode, EngineCompile, EngineWalk)
}

// Resolve validates an engine name ("" selects the default).
//
// Deprecated: use ParseEngine; Resolve is retained for callers predating
// the bytecode tier.
func Resolve(name string) (Engine, error) { return ParseEngine(name) }

// Runner binds an engine to the variant store its compile path draws
// from — the injectable execution handle a session threads through the
// pipeline in place of the old process-global cache.
type Runner struct {
	Engine Engine
	// Store backs the compile engine; nil selects the process-default
	// store. The walk engine never touches it.
	Store VariantStore
}

// Run executes src on np simulated ranks under the profile, charging
// computation against costs. Both engines produce bit-identical results;
// EngineCompile additionally shares compiled artifacts through the store.
func (r Runner) Run(src string, np int, costs interp.CostModel, prof netsim.Profile) (*interp.Result, error) {
	if r.Engine == EngineWalk {
		p, err := interp.Load(src)
		if err != nil {
			return nil, err
		}
		p.Costs = costs
		return p.Run(np, prof)
	}
	store := r.Store
	if store == nil {
		store = DefaultStore()
	}
	p, err := store.Get(src)
	if err != nil {
		return nil, err
	}
	if r.Engine == EngineBytecode {
		return p.RunBytecode(np, prof, costs)
	}
	return p.Run(np, prof, costs)
}

// Run executes through the process-default store — the zero-configuration
// path for callers with no session of their own.
func (e Engine) Run(src string, np int, costs interp.CostModel, prof netsim.Profile) (*interp.Result, error) {
	return Runner{Engine: e}.Run(src, np, costs, prof)
}
