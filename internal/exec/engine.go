package exec

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/netsim"
)

// Engine selects how program variants are executed: the compiled closure
// engine (with the process-wide variant cache) or the tree-walking
// interpreter, which is retained as the differential oracle.
type Engine string

const (
	// EngineCompile compiles each variant once (cached process-wide) and
	// replays the closure program. The default.
	EngineCompile Engine = "compile"
	// EngineWalk parses and tree-walks the AST for every run — the
	// historical path, kept as the bit-identical oracle.
	EngineWalk Engine = "walk"
)

// Default is the engine used when none is named.
const Default = EngineCompile

// Resolve validates an engine name ("" selects the default).
func Resolve(name string) (Engine, error) {
	switch Engine(name) {
	case "":
		return Default, nil
	case EngineCompile, EngineWalk:
		return Engine(name), nil
	}
	return "", fmt.Errorf("exec: unknown engine %q (want %q or %q)", name, EngineCompile, EngineWalk)
}

// Run executes src on np simulated ranks under the profile, charging
// computation against costs. Both engines produce bit-identical results;
// EngineCompile additionally shares compiled artifacts process-wide.
func (e Engine) Run(src string, np int, costs interp.CostModel, prof netsim.Profile) (*interp.Result, error) {
	if e == EngineWalk {
		p, err := interp.Load(src)
		if err != nil {
			return nil, err
		}
		p.Costs = costs
		return p.Run(np, prof)
	}
	p, err := CompileCached(src)
	if err != nil {
		return nil, err
	}
	return p.Run(np, prof, costs)
}
