package exec_test

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/plan"
	"repro/internal/workload"
)

// fastEngines are the tiers proven against the walk oracle.
var fastEngines = []exec.Engine{exec.EngineCompile, exec.EngineBytecode}

// requireBitIdentical asserts two results agree on everything the
// simulation observes: printed output, every final array (both ways),
// virtual completion time, per-rank compute/blocked split, and the message
// and byte counters.
func requireBitIdentical(t *testing.T, label string, walk, fast *interp.Result) {
	t.Helper()
	if same, why := interp.SameOutput(walk, fast); !same {
		t.Fatalf("%s: oracle vs fast output/arrays: %s", label, why)
	}
	if same, why := interp.SameOutput(fast, walk); !same {
		t.Fatalf("%s: fast vs oracle output/arrays: %s", label, why)
	}
	for r := range walk.Arrays {
		if len(walk.Arrays[r]) != len(fast.Arrays[r]) {
			t.Fatalf("%s: rank %d holds %d arrays under walk, %d under the fast tier",
				label, r, len(walk.Arrays[r]), len(fast.Arrays[r]))
		}
	}
	if walk.Elapsed() != fast.Elapsed() {
		t.Fatalf("%s: elapsed %v (walk) vs %v (fast)", label, walk.Elapsed(), fast.Elapsed())
	}
	if walk.Stats.Messages != fast.Stats.Messages || walk.Stats.Bytes != fast.Stats.Bytes {
		t.Fatalf("%s: traffic %d msgs/%d B (walk) vs %d msgs/%d B (fast)", label,
			walk.Stats.Messages, walk.Stats.Bytes, fast.Stats.Messages, fast.Stats.Bytes)
	}
	for r := range walk.Stats.PerRank {
		w, c := walk.Stats.PerRank[r], fast.Stats.PerRank[r]
		if w != c {
			t.Fatalf("%s: rank %d stats %+v (walk) vs %+v (fast)", label, r, w, c)
		}
	}
}

// runAll executes src under the walk oracle and every fast tier on one
// machine, asserting each fast tier is bit-identical to the oracle.
func runAll(t *testing.T, label, src string, np int, m plan.Machine) {
	t.Helper()
	walk, err := exec.EngineWalk.Run(src, np, m.Costs, m.Profile)
	if err != nil {
		t.Fatalf("%s: walk: %v", label, err)
	}
	for _, eng := range fastEngines {
		fast, err := eng.Run(src, np, m.Costs, m.Profile)
		if err != nil {
			t.Fatalf("%s: %s: %v", label, eng, err)
		}
		requireBitIdentical(t, fmt.Sprintf("%s/%s", label, eng), walk, fast)
	}
}

var npRe = regexp.MustCompile(`np\s*=\s*(\d+)`)

// TestGoldenFixturesBitIdentical runs every runnable golden fixture under
// both engines on every built-in machine and requires identical results.
func TestGoldenFixturesBitIdentical(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.f90"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no golden fixtures found: %v", err)
	}
	ran := 0
	for _, path := range paths {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		src := string(b)
		if !strings.Contains(src, "program ") {
			continue // code fragments (figure4) are not runnable
		}
		m := npRe.FindStringSubmatch(src)
		if m == nil {
			continue
		}
		np, _ := strconv.Atoi(m[1])
		for _, machine := range plan.Builtin() {
			label := fmt.Sprintf("%s/%s", filepath.Base(path), machine.Name)
			runAll(t, label, src, np, machine)
			ran++
		}
	}
	if ran == 0 {
		t.Fatal("no runnable fixtures exercised")
	}
}

// TestCorpusBitIdentical runs the full generated corpus — original and
// fixed-plan transformed variants — under both engines on the paper pair
// and requires bit-identical results everywhere. This is the differential
// oracle of the compiled engine: any semantic or cost-model divergence
// from the tree-walker fails here.
func TestCorpusBitIdentical(t *testing.T) {
	scenarios := workload.GenerateScenarios(workload.GenOptions{})
	if len(scenarios) < 40 {
		t.Fatalf("corpus has %d scenarios, want >= 40", len(scenarios))
	}
	if testing.Short() {
		// The round-robin interleave keeps any prefix family-diverse.
		scenarios = scenarios[:12]
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			prog, err := core.Analyze(sc.Source, core.AnalyzeOptions{})
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			transformed, rep, err := core.Apply(prog, core.Options{K: sc.K}.Plan())
			if err != nil {
				t.Fatalf("apply: %v", err)
			}
			if rep.TransformedCount() == 0 {
				t.Fatalf("transform did not fire: %s", rep.FirstRejection())
			}
			for _, m := range plan.PaperPair() {
				if sc.Costs != nil {
					m.Costs = *sc.Costs
				}
				for vi, src := range []string{sc.Source, transformed} {
					label := fmt.Sprintf("%s/%s/variant%d", sc.Name, m.Name, vi)
					runAll(t, label, src, sc.NP, m)
				}
			}
		})
	}
}

// TestSubroutineAndImplicitSemantics exercises the engine's trickiest
// lowering paths in one kernel: user subroutines with scalar aliasing and
// sequence-associated array views, implicit typing, named constants,
// intrinsics, EXIT/CYCLE, and a loop whose variable survives the loop.
func TestSubroutineAndImplicitSemantics(t *testing.T) {
	src := `
program torture
  include 'mpif.h'
  integer, parameter :: n = 6
  integer, parameter :: m = n * 2
  integer a(1:n, 1:2)
  integer ierr, me, i, total, cnt
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do i = 1, n
    a(i, 1) = i * 3
    a(i, 2) = i + me
  enddo
  total = 0
  cnt = n
  call accum(a(1, 2), cnt, total)
  call bump(total)
  do i = 1, m
    if (i > 7) then
      exit
    endif
    if (mod(i, 2) == 0) then
      cycle
    endif
    total = total + i
  enddo
  xkeep = 2.5
  print *, 'total', total, i, xkeep, max(total, 40), sqrt(4.0)
  call mpi_finalize(ierr)
end program torture

subroutine accum(v, k, acc)
  integer k, acc
  integer v(1:k)
  integer j
  do j = 1, k
    acc = acc + v(j)
  enddo
end subroutine accum

subroutine bump(x)
  integer x
  x = x + 100
end subroutine bump
`
	for _, m := range plan.Builtin() {
		runAll(t, "torture/"+m.Name, src, 3, m)
	}
}

// TestDuplicateArrayDeclaration: a unit declaring the same array name
// twice must behave like the tree-walker (the second allocation replaces
// the first) — a dummy's caller backing must not be confused with an
// earlier declaration's allocation.
func TestDuplicateArrayDeclaration(t *testing.T) {
	src := `
program dupdecl
  include 'mpif.h'
  integer a(1:2)
  integer a(1:10)
  integer ierr
  call mpi_init(ierr)
  a(9) = 7
  print *, 'a9', a(9)
  call mpi_finalize(ierr)
end program dupdecl
`
	m := plan.MPICHGM2005()
	runAll(t, "dupdecl", src, 2, m)
}

// TestForwardConstantReference: a parameter initializer referencing a
// later parameter must fall back to the implicit-typing zero exactly like
// the tree-walker (the constant is only visible once pass 1 sets it).
func TestForwardConstantReference(t *testing.T) {
	src := `
program fwdconst
  include 'mpif.h'
  integer, parameter :: k = 3 + b
  integer, parameter :: b = 5
  integer ierr
  call mpi_init(ierr)
  print *, 'k', k, 'b', b
  call mpi_finalize(ierr)
end program fwdconst
`
	m := plan.MPICHGM2005()
	runAll(t, "fwdconst", src, 2, m)
}
