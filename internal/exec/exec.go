// Package exec is the compiled execution engine: it lowers a parsed ftn
// program once into a closure program — statements become func(*rctx,
// *frame) error closures, variable names are resolved to slot indices at
// compile time, and MPI calls are lowered to pre-resolved bindings against
// the same mpi runtime (and the same semantics tables) the tree-walking
// interpreter in internal/interp uses. Executing a compiled program is
// bit-identical to tree-walking the AST: the same output lines, final
// arrays, message counts, and virtual times, including every cost-model
// charge in the same order.
//
// The point of compiling is the measurement loop: the tuner and the
// harness run the same (program, plan) variant many times — per machine
// model, per tuning candidate, per sweep — and the tree-walker re-parses
// and re-walks the AST for each run. A compiled program is built once per
// variant (see the VariantStore implementations in store.go), shared safely
// across concurrent simulations (all mutable state lives in per-run
// frames; a Program is immutable after compile), and replayed for the
// price of calling closures.
//
// The tree-walker is retained as the differential oracle: Engine "walk"
// runs internal/interp, Engine "compile" runs this package, and the
// harness's differential tests assert the two agree on every golden
// fixture and corpus scenario.
package exec

import (
	"fmt"
	"sync"

	"repro/internal/ftn"
	"repro/internal/interp"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// Program is a compiled, immutable program. It holds no run state and no
// cost model, so one compiled artifact is shared across machines and
// concurrent simulations.
type Program struct {
	main  *unit
	units map[string]*unit // subroutines by name (first definition wins)

	// bc is the lazily-lowered bytecode form of the main unit (the third
	// execution tier); bcOnce guards the one lowering per Program.
	bcOnce sync.Once
	bc     *bprog
}

// unit is one compiled program unit.
type unit struct {
	name   string
	params []string
	// paramScal/paramArr map the i-th dummy onto its scalar and array
	// slots; the call-site binder fills whichever side the actual argument
	// provides (both exist — Fortran's loose argument association means a
	// dummy's classification is decided by the caller).
	paramScal []int
	paramArr  []int

	nscal, narr, nconst int
	arrNames            []string // array slot -> name (main-frame snapshots)

	setup []stmtFn // frame initialization: consts, declarations, views
	body  []stmtFn

	// cm retains the unit's compile-time symbol state for the bytecode
	// lowering (slot assignments, AST, pre-resolved MPI bindings).
	cm *comp
}

// frame is one procedure activation: slot-indexed storage. Scalar slots
// hold pointers so dummy arguments alias the caller's storage exactly like
// the tree-walker's map of *Value; nil means "not yet created" (the
// tree-walker's missing map entry).
type frame struct {
	scal   []*interp.Value
	arr    []*interp.Array
	consts []interp.Value
	// constSet marks constant slots whose initializer has run: a named
	// constant is only visible once pass 1 reaches it (the tree-walker's
	// consts-map membership), so a forward reference during frame setup
	// falls through to implicit typing instead of reading a zero slot.
	constSet []bool
}

func (u *unit) newFrame() *frame {
	return &frame{
		scal:     make([]*interp.Value, u.nscal),
		arr:      make([]*interp.Array, u.narr),
		consts:   make([]interp.Value, u.nconst),
		constSet: make([]bool, u.nconst),
	}
}

// rctx is the per-rank execution context: everything mutable during a run.
type rctx struct {
	prog  *Program
	rank  *mpi.Rank
	costs interp.CostModel
	out   []string
	reqs  []*mpi.Request
	main  *frame
}

func (x *rctx) charge(t netsim.Time) { x.rank.Compute(t) }

// stmtFn is a compiled statement; exprFn a compiled expression.
type stmtFn func(x *rctx, fr *frame) error
type exprFn func(x *rctx, fr *frame) (interp.Value, error)

// Control-flow sentinels (same contract as the tree-walker's).
var (
	errReturn = fmt.Errorf("return")
	errStop   = fmt.Errorf("stop")
	errExit   = fmt.Errorf("exit")
	errCycle  = fmt.Errorf("cycle")
)

// rte formats a positioned runtime error exactly like the tree-walker.
func rte(pos ftn.Pos, format string, args ...interface{}) error {
	return fmt.Errorf("%s: %v", pos, fmt.Errorf(format, args...))
}

// runStmts executes a compiled statement list.
func runStmts(x *rctx, fr *frame, fns []stmtFn) error {
	for _, fn := range fns {
		if err := fn(x, fr); err != nil {
			return err
		}
	}
	return nil
}

// Compile lowers a parsed file into a closure program.
func Compile(file *ftn.File) (*Program, error) {
	if file.Program() == nil {
		return nil, fmt.Errorf("exec: no program unit")
	}
	prog := &Program{units: map[string]*unit{}}
	for _, un := range file.Units {
		cu := compileUnit(prog, un)
		switch un.Kind {
		case ftn.ProgramUnit:
			if prog.main == nil {
				prog.main = cu
			}
		case ftn.SubroutineUnit:
			if _, ok := prog.units[un.Name]; !ok {
				prog.units[un.Name] = cu
			}
		}
	}
	return prog, nil
}

// CompileSource parses and compiles src (uncached; a VariantStore is the
// caching layer above this).
func CompileSource(src string) (*Program, error) {
	f, err := ftn.Parse(src)
	if err != nil {
		return nil, err
	}
	return Compile(f)
}

// Run executes the compiled program on np simulated ranks over the profile,
// charging computation against costs. The result is bit-identical to
// interp's tree-walk of the same source under the same machine.
func (p *Program) Run(np int, prof netsim.Profile, costs interp.CostModel) (*interp.Result, error) {
	return p.runEngine(np, prof, costs, p.runMain)
}

// runEngine is the shared rank-fanout harness: it runs `run` on every
// simulated rank and assembles the Result exactly as Run always has. The
// closure tier passes runMain, the bytecode tier passes runMainBC.
func (p *Program) runEngine(np int, prof netsim.Profile, costs interp.CostModel, run func(*rctx) error) (*interp.Result, error) {
	res := &interp.Result{
		Output: make([][]string, np),
		Arrays: make([]map[string]interface{}, np),
		Errors: make([]error, np),
	}
	var mu sync.Mutex
	stats, err := mpi.Run(np, prof, func(r *mpi.Rank) {
		x := &rctx{prog: p, rank: r, costs: costs}
		runErr := run(x)
		mu.Lock()
		res.Output[r.Me()] = x.out
		res.Errors[r.Me()] = runErr
		if x.main != nil {
			snap := map[string]interface{}{}
			for i, a := range x.main.arr {
				if a != nil {
					snap[p.main.arrNames[i]] = a.Snapshot()
				}
			}
			res.Arrays[r.Me()] = snap
		}
		mu.Unlock()
	})
	if err != nil {
		// A rank error that ended a rank early usually surfaces as a
		// deadlock; attach the per-rank errors for diagnosis.
		for i, re := range res.Errors {
			if re != nil {
				return res, fmt.Errorf("%v (rank %d: %v)", err, i, re)
			}
		}
		return res, err
	}
	res.Stats = stats
	for i, re := range res.Errors {
		if re != nil {
			return res, fmt.Errorf("rank %d: %v", i, re)
		}
	}
	return res, nil
}

// runMain executes the main unit on this context's rank.
func (p *Program) runMain(x *rctx) (err error) {
	defer func() {
		if r := recover(); r != nil {
			// The wording matches the tree-walker's: per-rank error strings
			// are part of the engines' differential contract (harness-level
			// comparisons include Outcome.Err).
			err = fmt.Errorf("interp panic: %v", r)
		}
	}()
	fr := p.main.newFrame()
	for _, st := range p.main.setup {
		if err := st(x, fr); err != nil {
			return err
		}
	}
	// Arrays are snapshotted only once the frame initialized cleanly,
	// matching the tree-walker (newFrame failure leaves no main frame).
	x.main = fr
	err = runStmts(x, fr, p.main.body)
	if err == errStop || err == errReturn {
		err = nil
	}
	return err
}
