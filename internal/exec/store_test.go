package exec_test

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exec"
)

// diskEntries lists the content-addressed entry files in a store dir.
func diskEntries(t *testing.T, dir string) []string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "*.f90"))
	if err != nil {
		t.Fatal(err)
	}
	return matches
}

// TestDiskStoreColdThenWarm: a cold store compiles and persists; a second
// store over the same directory (a fresh process, as far as the store can
// tell) serves every variant from disk with 0 compiles.
func TestDiskStoreColdThenWarm(t *testing.T) {
	dir := t.TempDir()
	srcs := []string{
		fmt.Sprintf(cacheKernel, 10, 10),
		fmt.Sprintf(cacheKernel, 11, 11),
		fmt.Sprintf(cacheKernel, 12, 12),
	}

	cold, err := exec.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range srcs {
		if _, err := cold.Get(src); err != nil {
			t.Fatal(err)
		}
	}
	if st := cold.Stats(); st.Compiled != 3 || st.DiskHits != 0 || st.Corrupt != 0 {
		t.Fatalf("cold stats = %+v, want 3 compiles and no disk hits", st)
	}
	if got := len(diskEntries(t, dir)); got != 3 {
		t.Fatalf("%d disk entries after cold run, want 3", got)
	}

	// Entries are keyed by the content hash of what they hold.
	for _, src := range srcs {
		key := exec.KeyOf(src)
		b, err := os.ReadFile(filepath.Join(dir, key.String()+".f90"))
		if err != nil {
			t.Fatalf("entry for %s missing: %v", key, err)
		}
		if string(b) != src {
			t.Fatalf("entry %s does not hold its variant source", key)
		}
	}

	warm, err := exec.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, src := range srcs {
		if _, err := warm.Get(src); err != nil {
			t.Fatal(err)
		}
	}
	if st := warm.Stats(); st.Compiled != 0 || st.DiskHits != 3 {
		t.Fatalf("warm stats = %+v, want 0 compiles and 3 disk hits", st)
	}

	// Within one store, repeat lookups are memory hits, not disk reads.
	if _, err := warm.Get(srcs[0]); err != nil {
		t.Fatal(err)
	}
	if st := warm.Stats(); st.Hits != 1 {
		t.Fatalf("warm repeat stats = %+v, want 1 memory hit", st)
	}
}

// TestDiskStoreMemoryLayerIdentity: within one store, a repeat lookup
// returns the identical compiled artifact (the disk layer sits behind the
// memory layer, it does not replace it).
func TestDiskStoreMemoryLayerIdentity(t *testing.T) {
	store, err := exec.NewDiskStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	src := fmt.Sprintf(cacheKernel, 20, 20)
	p1, err := store.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := store.Get(src)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatal("repeat lookup returned a different compiled artifact")
	}
}

// TestDiskStoreDetectsCorruption: a truncated or bit-flipped entry must
// fail the checksum, count as corrupt, be recompiled from the requested
// source, and be rewritten valid — never trusted.
func TestDiskStoreDetectsCorruption(t *testing.T) {
	corruptions := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncate", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bitflip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/3] ^= 0x40
			return c
		}},
	}
	for i, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			src := fmt.Sprintf(cacheKernel, 30+i, 30+i)
			entry := filepath.Join(dir, exec.KeyOf(src).String()+".f90")

			seed, err := exec.NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := seed.Get(src); err != nil {
				t.Fatal(err)
			}

			b, err := os.ReadFile(entry)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(entry, tc.mut(b), 0o644); err != nil {
				t.Fatal(err)
			}

			store, err := exec.NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := store.Get(src); err != nil {
				t.Fatal(err)
			}
			st := store.Stats()
			if st.Corrupt != 1 {
				t.Fatalf("stats = %+v, want the corrupt entry counted", st)
			}
			if st.Compiled != 1 || st.DiskHits != 0 {
				t.Fatalf("stats = %+v, want a recompile instead of a disk hit", st)
			}
			// The rewritten entry must be valid again.
			got, err := os.ReadFile(entry)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != src {
				t.Fatal("corrupt entry was not rewritten with the variant source")
			}
			fresh, err := exec.NewDiskStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := fresh.Get(src); err != nil {
				t.Fatal(err)
			}
			if st := fresh.Stats(); st.DiskHits != 1 || st.Corrupt != 0 {
				t.Fatalf("post-rewrite stats = %+v, want a clean disk hit", st)
			}
		})
	}
}

// TestDiskStorePutWarmsWithoutCompiling: Put persists the variant for
// other workers without compiling it here; a later store over the same
// directory serves it as a disk hit.
func TestDiskStorePutWarmsWithoutCompiling(t *testing.T) {
	dir := t.TempDir()
	src := fmt.Sprintf(cacheKernel, 40, 40)

	producer, err := exec.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := producer.Put(src); err != nil {
		t.Fatal(err)
	}
	if st := producer.Stats(); st.Compiled != 0 {
		t.Fatalf("Put compiled: stats = %+v", st)
	}
	if got := len(diskEntries(t, dir)); got != 1 {
		t.Fatalf("%d disk entries after Put, want 1", got)
	}

	consumer, err := exec.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := consumer.Get(src); err != nil {
		t.Fatal(err)
	}
	if st := consumer.Stats(); st.Compiled != 0 || st.DiskHits != 1 {
		t.Fatalf("consumer stats = %+v, want a disk hit", st)
	}
}

// TestDiskStoreBadSourceNotPersisted: a variant that fails to compile must
// not be written to disk — the store persists knowledge, not garbage.
func TestDiskStoreBadSourceNotPersisted(t *testing.T) {
	dir := t.TempDir()
	store, err := exec.NewDiskStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	bad := "program broken\n  this is not fortran at all\n"
	if _, err := store.Get(bad); err == nil {
		t.Fatal("compiling garbage succeeded")
	}
	if got := len(diskEntries(t, dir)); got != 0 {
		t.Fatalf("%d disk entries persisted for a non-compiling variant", got)
	}
}

// TestDiskStoreDefaultDirIsUserScoped: the "" directory resolves under the
// user cache dir rather than the working directory.
func TestDiskStoreDefaultDirIsUserScoped(t *testing.T) {
	t.Setenv("XDG_CACHE_HOME", t.TempDir())
	dir, err := exec.DefaultCacheDir()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(dir, "compuniformer") {
		t.Fatalf("default cache dir %q not app-scoped", dir)
	}
	store, err := exec.NewDiskStore("")
	if err != nil {
		t.Fatal(err)
	}
	if store.Dir() != dir {
		t.Fatalf("store dir %q, want default %q", store.Dir(), dir)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("default dir not created: %v", err)
	}
}

// TestVerifyLedger: both built-in stores carry the verified-hash side table,
// and the disk store's markers survive a "process restart" (a second store
// instance over the same directory).
func TestVerifyLedger(t *testing.T) {
	key := exec.KeyOf("program bytes")
	other := exec.KeyOf("different bytes")

	t.Run("mem", func(t *testing.T) {
		var store exec.VariantStore = exec.NewMemStore()
		l, ok := store.(exec.VerifyLedger)
		if !ok {
			t.Fatal("MemStore does not implement VerifyLedger")
		}
		if l.Verified(key) {
			t.Fatal("fresh ledger claims a key verified")
		}
		l.MarkVerified(key)
		if !l.Verified(key) {
			t.Error("marked key not reported verified")
		}
		if l.Verified(other) {
			t.Error("unmarked key reported verified")
		}
	})

	t.Run("disk", func(t *testing.T) {
		dir := t.TempDir()
		d1, err := exec.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		var l1 exec.VerifyLedger = d1
		if l1.Verified(key) {
			t.Fatal("fresh ledger claims a key verified")
		}
		l1.MarkVerified(key)
		if !l1.Verified(key) {
			t.Error("marked key not reported verified in-process")
		}

		// A second store over the same directory models a later process:
		// the durable marker must carry the verdict across.
		d2, err := exec.NewDiskStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		var l2 exec.VerifyLedger = d2
		if !l2.Verified(key) {
			t.Error("durable marker not honored by a fresh store instance")
		}
		if l2.Verified(other) {
			t.Error("unmarked key reported verified")
		}
	})
}
