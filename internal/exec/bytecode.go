// Bytecode execution tier: the main unit's body lowers once into a
// register-based flat instruction stream dispatched through a single switch
// (no closure trees, no map lookups on the hot path). The lowering
// (bcompile.go) performs compile-time constant folding, hoists folded
// constants and address geometry out of the loop body, batches cost-model
// charges per basic block into precomputed charge vectors, and eliminates
// bounds checks for subscripts proven in-range by internal/dep's affine
// algebra. Statements the lowering does not model natively (MPI calls, user
// subroutine calls, prints) execute through the same pre-resolved closure
// bindings the mid-tier compiles, so the bytecode tier is bit-identical to
// the walk oracle by construction on those paths and differentially proven
// on the lowered ones.
//
// Charge batching is sound because mpi.Rank.Compute is purely additive
// between observation points (netsim's Proc.Advance only accumulates):
// Compute(a)+Compute(b) == Compute(a+b) as long as no MPI operation, clock
// read, or error can occur between the two. The lowering flushes the
// pending charge vector before every instruction that can observe time,
// raise an error, or transfer control.
package exec

import (
	"fmt"

	"repro/internal/ftn"
	"repro/internal/interp"
	"repro/internal/netsim"
)

// bop is a bytecode opcode. Dispatch is a flat switch in bexec.
type bop uint8

const (
	bNop bop = iota
	// bCharge applies the precomputed charge vector a (one Compute call
	// covering a whole basic-block's worth of walker charges).
	bCharge
	bJmp     // pc = a
	bJF      // if !regs[b].B  { pc = a }   (cond statically KBool)
	bJT      // if regs[b].B   { pc = a }
	bJFChk   // IF-cond form: non-KBool -> errs[c]; else like bJF
	bBoolChk // if regs[a].Kind != KBool { return errs[b] }
	bMove    // regs[a] = regs[b]
	bErr     // return errs[a]
	bRet     // return errReturn
	bStop    // return errStop
	bExitS   // return errExit  (EXIT outside any lowered loop)
	bCycleS  // return errCycle (CYCLE outside any lowered loop)

	bLoadS  // regs[a] = *fr.scal[b]
	bStoreS // p := fr.scal[a]; *p = CoerceStore(*p, regs[b])

	// bEval / bStmt bridge to the closure tier: pre-compiled expression and
	// statement closures with pre-resolved slot and MPI bindings. The
	// pending charge vector is always flushed before them.
	bEval // regs[a] = evals[b](x, fr)
	bStmt // stmts[a](x, fr); errCycle -> pc=b, errExit -> pc=c (when >= 0)

	bNegI // regs[a] = IntVal(-regs[b].I)
	bNeg  // regs[a] = -x (KInt -> int, else real)
	bNot  // regs[a] = BoolVal(!regs[b].B)
	bNotChk

	// Integer fast-path arithmetic (operands statically proven KInt).
	bAddI
	bSubI
	bMulI
	bDivI // d: error index for division by zero
	bPowI
	bModI // d: error index for mod by zero
	bMinI
	bMaxI
	bEqI
	bNeI
	bLtI
	bLeI
	bGtI
	bGeI

	bArith // generic arithmetic, ops[d]; runtime int-int fast path inside
	bCmp   // generic comparison, ops[d]

	bLoadA  // checked array load: accs[b] -> regs[a]
	bStoreA // checked array store: regs[b] -> accs[a]
	bLoadU  // unchecked (BCE-proven) load: geos[b] -> regs[a]
	bStoreU // unchecked store: regs[b] -> geos[a]

	bIntr  // regs[a] = EvalIntrinsic(intrs[b])
	bMod2  // two-argument mod with runtime int-int fast path
	bWtime // regs[a] = RealVal(rank.Now().Seconds())

	bForPrep // evaluate DO bounds/step, init loop registers: fors[a]
	bForIter // loop head: store DO variable, test trip count: fors[a]
	bForNext // advance DO variable, jump to head: fors[a]
)

// bins is one instruction. Operand meaning is per-opcode (register indices,
// descriptor-table indices, or jump targets).
type bins struct {
	op         bop
	a, b, c, d int32
}

// opDesc describes a generic binary-operator site.
type opDesc struct {
	op   string
	pos  ftn.Pos
	fast uint8 // arith: 1 + | 2 - | 3 * | 4 / ; cmp: 1 == .. 6 >=
}

// accDesc is a checked array access (runtime Idx* bounds checks, exactly
// the walker's errors).
type accDesc struct {
	aslot int32
	subs  []int32
	pos   ftn.Pos
}

// geoDesc is a bounds-check-eliminated access: the array's geometry folded
// at compile time, the offset computed directly from subscript registers.
type geoDesc struct {
	aslot  int32
	subs   []int32
	lo     []int64
	stride []int64
}

// intrDesc is an intrinsic call site.
type intrDesc struct {
	name string
	args []int32
	pos  ftn.Pos
	err  error // mod-by-zero error for bMod2, nil otherwise
}

// forDesc is one lowered DO loop. Loop state (current value, remaining
// trips, step) lives in registers; the DO variable's frame cell is updated
// at each iteration head exactly like the walker.
type forDesc struct {
	loReg, hiReg int32
	stepReg      int32 // -1: static step 1
	sslot        int32
	vReg         int32
	tripsReg     int32
	stepValReg   int32
	errStep      error
	headPC       int32
	endPC        int32
}

// precEntry pre-creates an implicitly-typed scalar cell after frame setup,
// so lowered loads/stores address the cell directly. Only names the walker
// would create with the same zero on first touch are eligible; cells that
// already exist (dummies, declared names) are left alone.
type precEntry struct {
	sslot int32
	zero  interp.Value
}

// bprog is the lowered form of a Program's main unit body.
type bprog struct {
	code    []bins
	nreg    int
	regInit []interp.Value // folded constants, deduplicated
	prec    []precEntry
	vecs    [][5]int64 // charge vectors: op, assign, store, load, loopIter
	errs    []error
	evals   []exprFn
	stmts   []stmtFn
	ops     []opDesc
	accs    []accDesc
	geos    []geoDesc
	intrs   []intrDesc
	fors    []forDesc
}

// Charge-vector component indices.
const (
	kOp = iota
	kAssign
	kStore
	kLoad
	kLoopIter
)

// chargeTab folds a cost model into the program's charge vectors: one
// virtual-time total per vector, computed once per run.
func (bp *bprog) chargeTab(costs interp.CostModel) []netsim.Time {
	tab := make([]netsim.Time, len(bp.vecs))
	for i, v := range bp.vecs {
		tab[i] = costs.Op*netsim.Time(v[kOp]) +
			costs.Assign*netsim.Time(v[kAssign]) +
			costs.Store*netsim.Time(v[kStore]) +
			costs.Load*netsim.Time(v[kLoad]) +
			costs.LoopIter*netsim.Time(v[kLoopIter])
	}
	return tab
}

// RunBytecode executes the program on the bytecode tier. Results are
// bit-identical to Run (the closure tier) and to the walk oracle.
func (p *Program) RunBytecode(np int, prof netsim.Profile, costs interp.CostModel) (*interp.Result, error) {
	bp := p.Bytecode()
	tab := bp.chargeTab(costs)
	return p.runEngine(np, prof, costs, func(x *rctx) error {
		return p.runMainBC(x, bp, tab)
	})
}

// runMainBC executes the lowered main body on this context's rank. Frame
// setup (constants, declarations, views) reuses the compiled setup steps;
// only the body dispatches through bytecode.
func (p *Program) runMainBC(x *rctx, bp *bprog, tab []netsim.Time) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("interp panic: %v", r)
		}
	}()
	fr := p.main.newFrame()
	for _, st := range p.main.setup {
		if err := st(x, fr); err != nil {
			return err
		}
	}
	x.main = fr
	for _, pe := range bp.prec {
		if fr.scal[pe.sslot] == nil {
			v := pe.zero
			fr.scal[pe.sslot] = &v
		}
	}
	regs := make([]interp.Value, bp.nreg)
	copy(regs, bp.regInit)
	err = bp.bexec(x, fr, regs, tab)
	if err == errStop || err == errReturn {
		err = nil
	}
	return err
}

// bexec is the dispatch loop: a flat switch over the instruction stream.
// No reflection, no map lookups — descriptor tables are slices indexed by
// instruction operands.
func (bp *bprog) bexec(x *rctx, fr *frame, regs []interp.Value, tab []netsim.Time) error {
	code := bp.code
	pc := 0
	for pc < len(code) {
		ins := code[pc]
		pc++
		switch ins.op {
		case bNop:
		case bCharge:
			x.rank.Compute(tab[ins.a])
		case bJmp:
			pc = int(ins.a)
		case bJF:
			if !regs[ins.b].B {
				pc = int(ins.a)
			}
		case bJT:
			if regs[ins.b].B {
				pc = int(ins.a)
			}
		case bJFChk:
			if regs[ins.b].Kind != interp.KBool {
				return bp.errs[ins.c]
			}
			if !regs[ins.b].B {
				pc = int(ins.a)
			}
		case bBoolChk:
			if regs[ins.a].Kind != interp.KBool {
				return bp.errs[ins.b]
			}
		case bMove:
			regs[ins.a] = regs[ins.b]
		case bErr:
			return bp.errs[ins.a]
		case bRet:
			return errReturn
		case bStop:
			return errStop
		case bExitS:
			return errExit
		case bCycleS:
			return errCycle
		case bLoadS:
			regs[ins.a] = *fr.scal[ins.b]
		case bStoreS:
			p := fr.scal[ins.a]
			*p = interp.CoerceStore(*p, regs[ins.b])
		case bEval:
			v, err := bp.evals[ins.b](x, fr)
			if err != nil {
				return err
			}
			regs[ins.a] = v
		case bStmt:
			err := bp.stmts[ins.a](x, fr)
			switch err {
			case nil:
			case errCycle:
				if ins.b >= 0 {
					pc = int(ins.b)
					continue
				}
				return err
			case errExit:
				if ins.c >= 0 {
					pc = int(ins.c)
					continue
				}
				return err
			default:
				return err
			}
		case bNegI:
			regs[ins.a] = interp.IntVal(-regs[ins.b].I)
		case bNeg:
			if v := regs[ins.b]; v.Kind == interp.KInt {
				regs[ins.a] = interp.IntVal(-v.I)
			} else {
				regs[ins.a] = interp.RealVal(-v.AsReal())
			}
		case bNot:
			regs[ins.a] = interp.BoolVal(!regs[ins.b].B)
		case bNotChk:
			if regs[ins.b].Kind != interp.KBool {
				return bp.errs[ins.c]
			}
			regs[ins.a] = interp.BoolVal(!regs[ins.b].B)
		case bAddI:
			regs[ins.a] = interp.IntVal(regs[ins.b].I + regs[ins.c].I)
		case bSubI:
			regs[ins.a] = interp.IntVal(regs[ins.b].I - regs[ins.c].I)
		case bMulI:
			regs[ins.a] = interp.IntVal(regs[ins.b].I * regs[ins.c].I)
		case bDivI:
			if regs[ins.c].I == 0 {
				return bp.errs[ins.d]
			}
			regs[ins.a] = interp.IntVal(regs[ins.b].I / regs[ins.c].I)
		case bPowI:
			// NumericBinop's integer ** branch: negative exponent truncates
			// to zero, else repeated multiplication.
			base, e := regs[ins.b].I, regs[ins.c].I
			if e < 0 {
				regs[ins.a] = interp.IntVal(0)
			} else {
				r := int64(1)
				for i := int64(0); i < e; i++ {
					r *= base
				}
				regs[ins.a] = interp.IntVal(r)
			}
		case bModI:
			if regs[ins.c].I == 0 {
				return bp.errs[ins.d]
			}
			regs[ins.a] = interp.IntVal(regs[ins.b].I % regs[ins.c].I)
		case bMinI:
			a, b := regs[ins.b].I, regs[ins.c].I
			if b < a {
				a = b
			}
			regs[ins.a] = interp.IntVal(a)
		case bMaxI:
			a, b := regs[ins.b].I, regs[ins.c].I
			if b > a {
				a = b
			}
			regs[ins.a] = interp.IntVal(a)
		case bEqI:
			regs[ins.a] = interp.BoolVal(regs[ins.b].I == regs[ins.c].I)
		case bNeI:
			regs[ins.a] = interp.BoolVal(regs[ins.b].I != regs[ins.c].I)
		case bLtI:
			regs[ins.a] = interp.BoolVal(regs[ins.b].I < regs[ins.c].I)
		case bLeI:
			regs[ins.a] = interp.BoolVal(regs[ins.b].I <= regs[ins.c].I)
		case bGtI:
			regs[ins.a] = interp.BoolVal(regs[ins.b].I > regs[ins.c].I)
		case bGeI:
			regs[ins.a] = interp.BoolVal(regs[ins.b].I >= regs[ins.c].I)
		case bArith:
			d := &bp.ops[ins.d]
			xv, yv := regs[ins.b], regs[ins.c]
			if xv.Kind == interp.KInt && yv.Kind == interp.KInt {
				switch d.fast {
				case 1:
					regs[ins.a] = interp.IntVal(xv.I + yv.I)
					continue
				case 2:
					regs[ins.a] = interp.IntVal(xv.I - yv.I)
					continue
				case 3:
					regs[ins.a] = interp.IntVal(xv.I * yv.I)
					continue
				case 4:
					if yv.I != 0 {
						regs[ins.a] = interp.IntVal(xv.I / yv.I)
						continue
					}
				}
			}
			v, err := interp.NumericBinop(d.op, xv, yv)
			if err != nil {
				return rte(d.pos, "%v", err)
			}
			regs[ins.a] = v
		case bCmp:
			d := &bp.ops[ins.d]
			xv, yv := regs[ins.b], regs[ins.c]
			if xv.Kind == interp.KInt && yv.Kind == interp.KInt {
				switch d.fast {
				case 1:
					regs[ins.a] = interp.BoolVal(xv.I == yv.I)
					continue
				case 2:
					regs[ins.a] = interp.BoolVal(xv.I != yv.I)
					continue
				case 3:
					regs[ins.a] = interp.BoolVal(xv.I < yv.I)
					continue
				case 4:
					regs[ins.a] = interp.BoolVal(xv.I <= yv.I)
					continue
				case 5:
					regs[ins.a] = interp.BoolVal(xv.I > yv.I)
					continue
				case 6:
					regs[ins.a] = interp.BoolVal(xv.I >= yv.I)
					continue
				}
			}
			v, err := interp.Compare(d.op, xv, yv)
			if err != nil {
				return rte(d.pos, "%v", err)
			}
			regs[ins.a] = v
		case bLoadA:
			d := &bp.accs[ins.b]
			a := fr.arr[d.aslot]
			var off int64
			var err error
			switch len(d.subs) {
			case 1:
				off, err = a.Idx1(regs[d.subs[0]].AsInt())
			case 2:
				off, err = a.Idx2(regs[d.subs[0]].AsInt(), regs[d.subs[1]].AsInt())
			case 3:
				off, err = a.Idx3(regs[d.subs[0]].AsInt(), regs[d.subs[1]].AsInt(), regs[d.subs[2]].AsInt())
			default:
				ix := make([]int64, len(d.subs))
				for i, sr := range d.subs {
					ix[i] = regs[sr].AsInt()
				}
				v, gerr := a.Get(ix)
				if gerr != nil {
					return rte(d.pos, "%v", gerr)
				}
				regs[ins.a] = v
				continue
			}
			if err != nil {
				return rte(d.pos, "%v", err)
			}
			regs[ins.a] = a.RawGet(off)
		case bStoreA:
			d := &bp.accs[ins.a]
			a := fr.arr[d.aslot]
			var off int64
			var err error
			switch len(d.subs) {
			case 1:
				off, err = a.Idx1(regs[d.subs[0]].AsInt())
			case 2:
				off, err = a.Idx2(regs[d.subs[0]].AsInt(), regs[d.subs[1]].AsInt())
			case 3:
				off, err = a.Idx3(regs[d.subs[0]].AsInt(), regs[d.subs[1]].AsInt(), regs[d.subs[2]].AsInt())
			default:
				ix := make([]int64, len(d.subs))
				for i, sr := range d.subs {
					ix[i] = regs[sr].AsInt()
				}
				if serr := a.Set(ix, regs[ins.b]); serr != nil {
					return rte(d.pos, "%v", serr)
				}
				continue
			}
			if err != nil {
				return rte(d.pos, "%v", err)
			}
			a.RawSet(off, regs[ins.b])
		case bLoadU:
			g := &bp.geos[ins.b]
			a := fr.arr[g.aslot]
			off := int64(0)
			for i, sr := range g.subs {
				off += (regs[sr].AsInt() - g.lo[i]) * g.stride[i]
			}
			regs[ins.a] = a.RawGet(off)
		case bStoreU:
			g := &bp.geos[ins.a]
			a := fr.arr[g.aslot]
			off := int64(0)
			for i, sr := range g.subs {
				off += (regs[sr].AsInt() - g.lo[i]) * g.stride[i]
			}
			a.RawSet(off, regs[ins.b])
		case bIntr:
			d := &bp.intrs[ins.b]
			vals := make([]interp.Value, len(d.args))
			for i, ar := range d.args {
				vals[i] = regs[ar]
			}
			v, err := interp.EvalIntrinsic(d.name, vals)
			if err != nil {
				return rte(d.pos, "%v", err)
			}
			regs[ins.a] = v
		case bMod2:
			d := &bp.intrs[ins.b]
			v0, v1 := regs[d.args[0]], regs[d.args[1]]
			if v0.Kind == interp.KInt && v1.Kind == interp.KInt {
				if v1.I == 0 {
					return d.err
				}
				regs[ins.a] = interp.IntVal(v0.I % v1.I)
				continue
			}
			v, err := interp.EvalIntrinsic("mod", []interp.Value{v0, v1})
			if err != nil {
				return rte(d.pos, "%v", err)
			}
			regs[ins.a] = v
		case bWtime:
			regs[ins.a] = interp.RealVal(x.rank.Now().Seconds())
		case bForPrep:
			fd := &bp.fors[ins.a]
			lo := regs[fd.loReg].AsInt()
			hi := regs[fd.hiReg].AsInt()
			step := int64(1)
			if fd.stepReg >= 0 {
				step = regs[fd.stepReg].AsInt()
				if step == 0 {
					return fd.errStep
				}
			}
			trips := (hi - lo + step) / step
			if trips < 0 {
				trips = 0
			}
			regs[fd.vReg] = interp.IntVal(lo)
			regs[fd.tripsReg] = interp.IntVal(trips)
			regs[fd.stepValReg] = interp.IntVal(step)
		case bForIter:
			fd := &bp.fors[ins.a]
			*fr.scal[fd.sslot] = interp.IntVal(regs[fd.vReg].I)
			if regs[fd.tripsReg].I == 0 {
				pc = int(fd.endPC)
				continue
			}
			regs[fd.tripsReg].I--
		case bForNext:
			fd := &bp.fors[ins.a]
			regs[fd.vReg].I += regs[fd.stepValReg].I
			pc = int(fd.headPC)
		}
	}
	return nil
}
