// Lowering from the compiled unit's AST + symbol table to bytecode. The
// lowering never fails: anything it cannot model natively falls back to the
// closure tier (bEval/bStmt instructions invoking the mid-tier's
// pre-resolved closures), so every program lowers and the result is
// bit-identical to the walk oracle on every path.
//
// Compile-time work:
//   - constant folding: parameter constants, MPI named constants, and any
//     arithmetic over them fold into deduplicated initialized registers
//     (folded constants are materialized once per activation — the
//     loop-invariant form of every constant subexpression);
//   - charge batching: walker cost charges accumulate into per-basic-block
//     charge vectors, flushed as one Compute call (bCharge);
//   - bounds-check elimination: subscripts affine in statically-ranged DO
//     variables (internal/dep's algebra) against statically-folded array
//     geometry compile to unchecked offset arithmetic (bLoadU/bStoreU)
//     with the address geometry (lower bounds, strides) hoisted to the
//     descriptor at compile time;
//   - static kind analysis: scalars and arrays with stable runtime kinds
//     get integer fast-path opcodes (bAddI, bLtI, ...), with DO-variable
//     writes and call-site aliasing poisoning unstable kinds.
package exec

import (
	"fmt"

	"repro/internal/dep"
	"repro/internal/ftn"
	"repro/internal/interp"
)

// kUnknown marks a statically-unknown runtime kind.
const kUnknown interp.Kind = -1

// Bytecode returns the lazily-lowered bytecode form of the program's main
// unit. Lowering never fails and runs at most once per Program.
func (p *Program) Bytecode() *bprog {
	p.bcOnce.Do(func() {
		p.bc = lowerMain(p)
	})
	return p.bc
}

// arrGeo is the static shape knowledge for one array slot.
type arrGeo struct {
	aslot int32
	// static geometry; nil slices when only non-nilness is proven
	lo, hi, stride []int64
	kind           interp.Kind
}

// factRange is a DO variable's statically-proven value range inside its
// loop body.
type factRange struct{ lo, hi int64 }

// rv is a lowered expression: its result register and statically-known kind.
type rv struct {
	reg int32
	k   interp.Kind
}

// loopFrame tracks patch targets while lowering one DO body.
type loopFrame struct {
	exitPatches []int32 // bJmp pcs needing endPC
	contPatches []int32 // bJmp pcs needing contPC
	stmtPatches []int32 // bStmt pcs needing (contPC, endPC)
}

// bc is the lowering state for one unit.
type bc struct {
	c  *comp
	bp *bprog

	nreg      int32
	constRegs map[interp.Value]int32
	vecMap    map[[5]int64]int32
	pending   [5]int64

	foldConst map[string]interp.Value // folded named-constant values
	mpiName   map[string]bool         // MPI constants safe to fold in the body
	mpiSetup  map[string]bool         // MPI constants safe to fold during setup
	kills     map[string]bool         // scalar names stored anywhere in the unit
	poisoned  map[string]bool         // names whose cell kind may change at runtime
	declScal  map[string]interp.Kind  // first non-param scalar decl kind
	isParam   map[string]bool
	cellSet   map[string]bool // cell guaranteed to exist when the body runs
	scalK     map[string]interp.Kind
	arrInfo   map[string]*arrGeo
	intConsts map[string]int64
	facts     map[string]factRange
	loops     []*loopFrame
}

// lowerMain lowers the main unit's body. Frame setup stays on the closure
// tier (it runs once per activation); the body — where all repeated work
// lives — becomes bytecode.
func lowerMain(p *Program) *bprog {
	c := p.main.cm
	b := &bc{
		c:         c,
		bp:        &bprog{},
		constRegs: map[interp.Value]int32{},
		vecMap:    map[[5]int64]int32{},
		foldConst: map[string]interp.Value{},
		mpiName:   map[string]bool{},
		mpiSetup:  map[string]bool{},
		kills:     map[string]bool{},
		poisoned:  map[string]bool{},
		declScal:  map[string]interp.Kind{},
		isParam:   map[string]bool{},
		cellSet:   map[string]bool{},
		scalK:     map[string]interp.Kind{},
		arrInfo:   map[string]*arrGeo{},
		intConsts: map[string]int64{},
		facts:     map[string]factRange{},
	}
	b.analyze()
	for _, st := range c.u.Body {
		b.stmt(st)
	}
	b.flush()
	b.bp.nreg = int(b.nreg)
	return b.bp
}

// --- static analysis ---

func (b *bc) analyze() {
	u := b.c.u
	for _, p := range u.Params {
		b.isParam[p] = true
	}
	b.scanKills(u.Body)

	// Declared-name facts: first non-param scalar decl fixes the cell kind
	// (later decls keep the existing cell); last non-param array decl fixes
	// the geometry (later decls replace the allocation).
	hasDeclEntity := map[string]bool{}
	for _, d := range u.Decls {
		for _, e := range d.Entities {
			hasDeclEntity[e.Name] = true
			if d.Parameter {
				continue
			}
			if len(d.DimsOf(e)) > 0 {
				continue // array geometry resolved below, decl-order last-wins
			}
			if _, seen := b.declScal[e.Name]; seen {
				continue
			}
			b.declScal[e.Name] = declKind(d.Type.Base, e.Init)
		}
	}

	// MPI named constants fold when nothing can ever shadow them: no
	// declaration, not a dummy, and (for body reads) never stored.
	for _, s := range b.c.order {
		if !s.isMPI || hasDeclEntity[s.name] || b.isParam[s.name] {
			continue
		}
		b.mpiSetup[s.name] = true
		if !b.kills[s.name] {
			b.mpiName[s.name] = true
			b.intConsts[s.name] = s.mpi
		}
	}

	// Parameter constants fold in declaration order; a forward reference
	// (which the walker resolves to an implicit zero mid-setup) marks the
	// constant unfoldable rather than guessing.
	unfoldable := map[string]bool{}
	for _, d := range u.Decls {
		if !d.Parameter {
			continue
		}
		for _, e := range d.Entities {
			if e.Init == nil {
				continue
			}
			v, ok := b.foldSetup(e.Init)
			if !ok || unfoldable[e.Name] {
				delete(b.foldConst, e.Name)
				unfoldable[e.Name] = true
				continue
			}
			b.foldConst[e.Name] = interp.CoerceDecl(d.Type.Base, v)
		}
	}
	for n, v := range b.foldConst {
		if v.Kind == interp.KInt {
			b.intConsts[n] = v.I
		}
	}

	// Array geometry: non-dummy names with at least one non-param array
	// decl are non-nil after setup; statically-foldable dims give BCE
	// geometry (column-major strides, exactly NewArray's layout).
	for _, d := range u.Decls {
		if d.Parameter {
			continue
		}
		for _, e := range d.Entities {
			dims := d.DimsOf(e)
			if len(dims) == 0 || b.isParam[e.Name] {
				continue
			}
			s := b.c.syms[e.Name]
			if s == nil || s.aslot < 0 {
				continue
			}
			g := &arrGeo{aslot: int32(s.aslot), kind: storageKind(d.Type.Base)}
			static := true
			stride := int64(1)
			for _, dim := range dims {
				lo := int64(1)
				if dim.Lo != nil {
					v, ok := b.foldSetup(dim.Lo)
					if !ok {
						static = false
						break
					}
					lo = v.AsInt()
				}
				if dim.Hi == nil {
					static = false // assumed-size: setup errors anyway
					break
				}
				hv, ok := b.foldSetup(dim.Hi)
				if !ok {
					static = false
					break
				}
				hi := hv.AsInt()
				if hi-lo+1 < 0 {
					static = false
					break
				}
				g.lo = append(g.lo, lo)
				g.hi = append(g.hi, hi)
				g.stride = append(g.stride, stride)
				stride *= hi - lo + 1
			}
			if !static {
				g.lo, g.hi, g.stride = nil, nil, nil
			}
			b.arrInfo[e.Name] = g // last decl wins
		}
	}

	// Cell existence and static kinds. A cell is sure when a non-param
	// scalar decl creates it during setup, or when the name is eligible
	// for pre-creation (the walker would lazily create the same cell).
	for _, s := range b.c.order {
		name := s.name
		if k, ok := b.declScal[name]; ok {
			b.cellSet[name] = true
			if b.isParam[name] {
				k = kUnknown // dummy: the caller's cell, any kind
			}
			b.scalK[name] = k
			continue
		}
		if s.sslot >= 0 && s.cslot < 0 && s.aslot < 0 && !s.isMPI && !b.isParam[name] {
			b.cellSet[name] = true
			b.scalK[name] = s.zero.Kind
			b.bp.prec = append(b.bp.prec, precEntry{sslot: int32(s.sslot), zero: s.zero})
		}
	}
	// Poisoning: DO-variable writes store IntVal wholesale and call-site
	// aliasing lets callees do the same, so only KInt survives (CoerceStore
	// preserves an integer cell's kind and IntVal writes keep it).
	for name := range b.poisoned {
		if k, ok := b.scalK[name]; ok && k != interp.KInt {
			b.scalK[name] = kUnknown
		}
	}
}

// declKind is the runtime kind of a cell created by scalarDeclStep:
// ZeroOf(KindOf(base)) without an initializer, CoerceDecl(base, init) with
// one — which only pins the kind for integer and real declarations.
func declKind(base ftn.BaseType, init ftn.Expr) interp.Kind {
	k := interp.KindOf(base)
	switch k {
	case interp.KInt, interp.KReal:
		return k
	case interp.KBool:
		if init == nil {
			return k
		}
	}
	return kUnknown
}

// storageKind is the kind of values an array's storage yields: integer,
// real, and logical storages are kind-stable, anything else is not.
func storageKind(base ftn.BaseType) interp.Kind {
	switch k := interp.KindOf(base); k {
	case interp.KInt, interp.KReal, interp.KBool:
		return k
	}
	return kUnknown
}

// scanKills records names stored through scalar cells anywhere in stmts:
// assignment targets, DO variables, and top-level Ident call arguments
// (callees receive those by reference).
func (b *bc) scanKills(stmts []ftn.Stmt) {
	for _, s := range stmts {
		switch s := s.(type) {
		case *ftn.AssignStmt:
			if id, ok := s.LHS.(*ftn.Ident); ok {
				b.kills[id.Name] = true
			}
		case *ftn.DoStmt:
			b.kills[s.Var] = true
			b.poisoned[s.Var] = true
			b.scanKills(s.Body)
		case *ftn.IfStmt:
			b.scanKills(s.Then)
			b.scanKills(s.Else)
		case *ftn.CallStmt:
			for _, a := range s.Args {
				if id, ok := a.(*ftn.Ident); ok {
					b.kills[id.Name] = true
					b.poisoned[id.Name] = true
				}
			}
		}
	}
}

// killsIn returns the kill set of a statement list in isolation (for DO
// fact validity: the variable must not be stored inside its own body).
func killsIn(stmts []ftn.Stmt) map[string]bool {
	sub := &bc{kills: map[string]bool{}, poisoned: map[string]bool{}}
	sub.scanKills(stmts)
	return sub.kills
}

// --- constant folding ---

// foldSetup folds an expression in frame-setup context (constant
// initializers, array bounds): literals, already-folded constants, and MPI
// names with no declaration. No charge counting — setup stays on closures.
func (b *bc) foldSetup(e ftn.Expr) (interp.Value, bool) {
	switch e := e.(type) {
	case *ftn.IntLit:
		return interp.IntVal(e.Value), true
	case *ftn.RealLit:
		return interp.RealVal(e.Value), true
	case *ftn.StrLit:
		return interp.StrVal(e.Value), true
	case *ftn.BoolLit:
		return interp.BoolVal(e.Value), true
	case *ftn.Ident:
		if v, ok := b.foldConst[e.Name]; ok {
			return v, true
		}
		if b.mpiSetup[e.Name] {
			return interp.IntVal(b.c.syms[e.Name].mpi), true
		}
	case *ftn.Unary:
		v, ok := b.foldSetup(e.X)
		if !ok {
			return interp.Value{}, false
		}
		return foldUnary(e.Op, v)
	case *ftn.Binary:
		xv, ok := b.foldSetup(e.X)
		if !ok {
			return interp.Value{}, false
		}
		if e.Op == ".and." || e.Op == ".or." {
			if xv.Kind != interp.KBool {
				return interp.Value{}, false
			}
			if (e.Op == ".and." && !xv.B) || (e.Op == ".or." && xv.B) {
				return interp.BoolVal(xv.B), true
			}
			yv, ok := b.foldSetup(e.Y)
			if !ok || yv.Kind != interp.KBool {
				return interp.Value{}, false
			}
			return yv, true
		}
		yv, ok := b.foldSetup(e.Y)
		if !ok {
			return interp.Value{}, false
		}
		return foldBinary(e.Op, xv, yv)
	}
	return interp.Value{}, false
}

// fold folds a body expression, counting the Op charges the walker would
// make evaluating it (folded subtrees still charge — only the evaluation
// work disappears, never the accounting).
func (b *bc) fold(e ftn.Expr) (interp.Value, int64, bool) {
	switch e := e.(type) {
	case *ftn.IntLit:
		return interp.IntVal(e.Value), 0, true
	case *ftn.RealLit:
		return interp.RealVal(e.Value), 0, true
	case *ftn.StrLit:
		return interp.StrVal(e.Value), 0, true
	case *ftn.BoolLit:
		return interp.BoolVal(e.Value), 0, true
	case *ftn.Ident:
		if v, ok := b.foldConst[e.Name]; ok {
			return v, 0, true
		}
		if b.mpiName[e.Name] {
			return interp.IntVal(b.c.syms[e.Name].mpi), 0, true
		}
	case *ftn.Unary:
		v, ops, ok := b.fold(e.X)
		if !ok {
			return interp.Value{}, 0, false
		}
		r, ok := foldUnary(e.Op, v)
		return r, ops + 1, ok
	case *ftn.Binary:
		xv, xops, ok := b.fold(e.X)
		if !ok {
			return interp.Value{}, 0, false
		}
		if e.Op == ".and." || e.Op == ".or." {
			if xv.Kind != interp.KBool {
				return interp.Value{}, 0, false
			}
			if e.Op == ".and." && !xv.B {
				return interp.BoolVal(false), xops + 1, true
			}
			if e.Op == ".or." && xv.B {
				return interp.BoolVal(true), xops + 1, true
			}
			yv, yops, ok := b.fold(e.Y)
			if !ok || yv.Kind != interp.KBool {
				return interp.Value{}, 0, false
			}
			return yv, xops + 1 + yops, true
		}
		yv, yops, ok := b.fold(e.Y)
		if !ok {
			return interp.Value{}, 0, false
		}
		r, ok := foldBinary(e.Op, xv, yv)
		return r, xops + 1 + yops, ok
	}
	return interp.Value{}, 0, false
}

func foldUnary(op string, v interp.Value) (interp.Value, bool) {
	switch op {
	case "-":
		if v.Kind == interp.KInt {
			return interp.IntVal(-v.I), true
		}
		return interp.RealVal(-v.AsReal()), true
	case "+":
		return v, true
	case ".not.":
		if v.Kind != interp.KBool {
			return interp.Value{}, false
		}
		return interp.BoolVal(!v.B), true
	}
	return interp.Value{}, false
}

func foldBinary(op string, x, y interp.Value) (interp.Value, bool) {
	switch op {
	case "+", "-", "*", "/", "**":
		v, err := interp.NumericBinop(op, x, y)
		if err != nil {
			return interp.Value{}, false // fold no errors; runtime raises them
		}
		return v, true
	case "==", "/=", "<", "<=", ">", ">=":
		v, err := interp.Compare(op, x, y)
		if err != nil {
			return interp.Value{}, false
		}
		return v, true
	}
	return interp.Value{}, false
}

// --- emission helpers ---

func (b *bc) emit(op bop, args ...int32) int32 {
	ins := bins{op: op, b: -1, c: -1, d: -1}
	if len(args) > 0 {
		ins.a = args[0]
	}
	if len(args) > 1 {
		ins.b = args[1]
	}
	if len(args) > 2 {
		ins.c = args[2]
	}
	if len(args) > 3 {
		ins.d = args[3]
	}
	b.bp.code = append(b.bp.code, ins)
	return int32(len(b.bp.code) - 1)
}

func (b *bc) newReg() int32 {
	r := b.nreg
	b.nreg++
	if int(b.nreg) > len(b.bp.regInit) {
		b.bp.regInit = append(b.bp.regInit, interp.Value{})
	}
	return r
}

// constReg interns a folded value as an initialized register.
func (b *bc) constReg(v interp.Value) int32 {
	if r, ok := b.constRegs[v]; ok {
		return r
	}
	r := b.newReg()
	b.bp.regInit[r] = v
	b.constRegs[v] = r
	return r
}

// flush emits the pending charge vector as one bCharge, deduplicating
// vectors program-wide. Must run before any instruction that can error,
// observe time, or transfer control.
func (b *bc) flush() {
	if b.pending == ([5]int64{}) {
		return
	}
	vec := b.pending
	b.pending = [5]int64{}
	idx, ok := b.vecMap[vec]
	if !ok {
		idx = int32(len(b.bp.vecs))
		b.bp.vecs = append(b.bp.vecs, vec)
		b.vecMap[vec] = idx
	}
	b.emit(bCharge, idx)
}

// here is the next instruction's pc — a label. Pending charges never cross
// a label (all callers flush first).
func (b *bc) here() int32 { return int32(len(b.bp.code)) }

func (b *bc) errIdx(err error) int32 {
	b.bp.errs = append(b.bp.errs, err)
	return int32(len(b.bp.errs) - 1)
}

func (b *bc) evalIdx(fn exprFn) int32 {
	b.bp.evals = append(b.bp.evals, fn)
	return int32(len(b.bp.evals) - 1)
}

func (b *bc) stmtIdx(fn stmtFn) int32 {
	b.bp.stmts = append(b.bp.stmts, fn)
	return int32(len(b.bp.stmts) - 1)
}

func (b *bc) opIdx(d opDesc) int32 {
	b.bp.ops = append(b.bp.ops, d)
	return int32(len(b.bp.ops) - 1)
}

// patch sets the a-operand (jump target) of instruction pc.
func (b *bc) patch(pc, target int32) { b.bp.code[pc].a = target }

// loadFast reports whether name's reads can address the cell directly.
func (b *bc) loadFast(name string) bool {
	s := b.c.syms[name]
	return s != nil && b.cellSet[name] && s.cslot < 0
}

// storeFast reports whether name's writes can address the cell directly.
func (b *bc) storeFast(name string) bool { return b.cellSet[name] }

// stmtFallback lowers a statement through the closure tier. Inside a
// lowered loop, EXIT/CYCLE sentinels escaping the closure re-enter the
// bytecode loop via patched jump targets — exactly the walker's innermost
// runStmts handling.
func (b *bc) stmtFallback(s ftn.Stmt) {
	fn := b.c.stmt(s)
	if fn == nil {
		return
	}
	b.flush()
	pc := b.emit(bStmt, b.stmtIdx(fn), -1, -1)
	if n := len(b.loops); n > 0 {
		lf := b.loops[n-1]
		lf.stmtPatches = append(lf.stmtPatches, pc)
	}
}

// evalFallback lowers an expression through the closure tier.
func (b *bc) evalFallback(e ftn.Expr) rv {
	b.flush()
	dst := b.newReg()
	b.emit(bEval, dst, b.evalIdx(b.c.expr(e)))
	return rv{reg: dst, k: kUnknown}
}

// --- statement lowering ---

func (b *bc) stmt(s ftn.Stmt) {
	switch s := s.(type) {
	case *ftn.CommentStmt, *ftn.ContinueStmt:
	case *ftn.AssignStmt:
		b.assign(s)
	case *ftn.DoStmt:
		b.doStmt(s)
	case *ftn.IfStmt:
		b.ifStmt(s)
	case *ftn.ReturnStmt:
		b.flush()
		b.emit(bRet)
	case *ftn.StopStmt:
		b.flush()
		b.emit(bStop)
	case *ftn.ExitStmt:
		b.flush()
		if n := len(b.loops); n > 0 {
			lf := b.loops[n-1]
			lf.exitPatches = append(lf.exitPatches, b.emit(bJmp, -1))
		} else {
			b.emit(bExitS)
		}
	case *ftn.CycleStmt:
		b.flush()
		if n := len(b.loops); n > 0 {
			lf := b.loops[n-1]
			lf.contPatches = append(lf.contPatches, b.emit(bJmp, -1))
		} else {
			b.emit(bCycleS)
		}
	default:
		// MPI calls, user calls, prints, and anything unmodeled: the
		// closure tier's pre-resolved bindings.
		b.stmtFallback(s)
	}
}

func (b *bc) assign(s *ftn.AssignStmt) {
	switch lhs := s.LHS.(type) {
	case *ftn.Ident:
		if !b.storeFast(lhs.Name) {
			b.stmtFallback(s)
			return
		}
		v := b.expr(s.RHS)
		b.pending[kAssign]++
		b.emit(bStoreS, int32(b.c.syms[lhs.Name].sslot), v.reg)
	case *ftn.Ref:
		g := b.arrInfo[lhs.Name]
		if g == nil {
			b.stmtFallback(s)
			return
		}
		v := b.expr(s.RHS)
		subs := b.lowerSubs(lhs.Args)
		b.pending[kStore]++
		if gi, ok := b.geoAccess(g, lhs.Args, subs); ok {
			b.emit(bStoreU, gi, v.reg)
			return
		}
		b.flush()
		ai := b.accIdx(accDesc{aslot: g.aslot, subs: subs, pos: lhs.Pos()})
		b.emit(bStoreA, ai, v.reg)
	default:
		b.stmtFallback(s)
	}
}

func (b *bc) accIdx(d accDesc) int32 {
	b.bp.accs = append(b.bp.accs, d)
	return int32(len(b.bp.accs) - 1)
}

// geoAccess builds an unchecked access when every subscript is affine in
// statically-ranged DO variables and provably inside the folded geometry.
func (b *bc) geoAccess(g *arrGeo, args []ftn.Expr, subs []int32) (int32, bool) {
	if g.lo == nil || len(args) != len(g.lo) {
		return 0, false
	}
	env := &dep.Env{LoopVars: map[string]bool{}, Consts: b.intConsts}
	for v := range b.facts {
		env.LoopVars[v] = true
	}
	for i, e := range args {
		a, ok := dep.FromExpr(e, env)
		if !ok || len(a.Syms) != 0 {
			return 0, false
		}
		mn, mx, ok := b.affineRange(a)
		if !ok || mn < g.lo[i] || mx > g.hi[i] {
			return 0, false
		}
	}
	b.bp.geos = append(b.bp.geos, geoDesc{aslot: g.aslot, subs: subs, lo: g.lo, stride: g.stride})
	return int32(len(b.bp.geos) - 1), true
}

// affineRange bounds an affine form over the current DO-variable facts,
// rejecting anything near overflow territory.
func (b *bc) affineRange(a dep.Affine) (int64, int64, bool) {
	const lim = int64(1) << 40
	mn, mx := a.Const, a.Const
	if mn < -lim || mn > lim {
		return 0, 0, false
	}
	for v, c := range a.Coef {
		if c == 0 {
			continue
		}
		f, ok := b.facts[v]
		if !ok {
			return 0, 0, false
		}
		if c < -lim || c > lim || f.lo < -lim || f.lo > lim || f.hi < -lim || f.hi > lim {
			return 0, 0, false
		}
		t1, t2 := c*f.lo, c*f.hi
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		mn += t1
		mx += t2
		if mn < -lim || mx > lim {
			return 0, 0, false
		}
	}
	return mn, mx, true
}

func (b *bc) lowerSubs(args []ftn.Expr) []int32 {
	subs := make([]int32, len(args))
	for i, a := range args {
		subs[i] = b.expr(a).reg
	}
	return subs
}

func (b *bc) ifStmt(s *ftn.IfStmt) {
	cond := b.expr(s.Cond)
	b.pending[kOp]++
	b.flush()
	var jf int32
	if cond.k == interp.KBool {
		jf = b.emit(bJF, -1, cond.reg)
	} else {
		jf = b.emit(bJFChk, -1, cond.reg, b.errIdx(rte(s.Pos(), "IF condition is not logical")))
	}
	for _, st := range s.Then {
		b.stmt(st)
	}
	if len(s.Else) > 0 {
		b.flush()
		jend := b.emit(bJmp, -1)
		b.patch(jf, b.here())
		for _, st := range s.Else {
			b.stmt(st)
		}
		b.flush()
		b.patch(jend, b.here())
		return
	}
	b.flush()
	b.patch(jf, b.here())
}

func (b *bc) doStmt(s *ftn.DoStmt) {
	if !b.storeFast(s.Var) {
		b.stmtFallback(s)
		return
	}
	sv := b.c.syms[s.Var]

	// Bounds and step evaluate once, before the loop; fold-aware.
	loV, loOps, loConst := b.fold(s.Lo)
	hiV, hiOps, hiConst := b.fold(s.Hi)
	var lo, hi rv
	if loConst {
		b.pending[kOp] += loOps
		lo = rv{reg: b.constReg(loV), k: loV.Kind}
	} else {
		lo = b.expr(s.Lo)
	}
	if hiConst {
		b.pending[kOp] += hiOps
		hi = rv{reg: b.constReg(hiV), k: hiV.Kind}
	} else {
		hi = b.expr(s.Hi)
	}
	fd := forDesc{
		loReg: lo.reg, hiReg: hi.reg, stepReg: -1,
		sslot: int32(sv.sslot),
		vReg:  b.newReg(), tripsReg: b.newReg(), stepValReg: b.newReg(),
		errStep: rte(s.Pos(), "DO step is zero"),
	}
	stepConst := true
	stepV := interp.IntVal(1)
	if s.Step != nil {
		var stepOps int64
		stepV, stepOps, stepConst = b.fold(s.Step)
		if stepConst {
			b.pending[kOp] += stepOps
			fd.stepReg = b.constReg(stepV)
		} else {
			fd.stepReg = b.expr(s.Step).reg
		}
	}
	fdIdx := int32(len(b.bp.fors))
	b.bp.fors = append(b.bp.fors, fd)
	b.flush()
	b.emit(bForPrep, fdIdx)
	head := b.here()
	b.emit(bForIter, fdIdx)

	// Register a value-range fact when the trip space is fully static and
	// the body never stores the variable.
	factSaved, hadFact := b.facts[s.Var], false
	if old, ok := b.facts[s.Var]; ok {
		factSaved, hadFact = old, true
	}
	registered := false
	if loConst && hiConst && stepConst {
		loI, hiI := loV.AsInt(), hiV.AsInt()
		stepI := stepV.AsInt()
		if stepI != 0 {
			trips := (hiI - loI + stepI) / stepI
			if trips > 0 && !killsIn(s.Body)[s.Var] {
				last := loI + (trips-1)*stepI
				fl, fh := loI, last
				if fl > fh {
					fl, fh = fh, fl
				}
				b.facts[s.Var] = factRange{lo: fl, hi: fh}
				registered = true
			}
		}
	}

	b.loops = append(b.loops, &loopFrame{})
	b.pending[kLoopIter]++
	for _, st := range s.Body {
		b.stmt(st)
	}
	b.flush()
	contPC := b.here()
	b.emit(bForNext, fdIdx)
	endPC := b.here()

	b.bp.fors[fdIdx].headPC = head
	b.bp.fors[fdIdx].endPC = endPC
	lf := b.loops[len(b.loops)-1]
	b.loops = b.loops[:len(b.loops)-1]
	for _, pc := range lf.exitPatches {
		b.patch(pc, endPC)
	}
	for _, pc := range lf.contPatches {
		b.patch(pc, contPC)
	}
	for _, pc := range lf.stmtPatches {
		b.bp.code[pc].b = contPC
		b.bp.code[pc].c = endPC
	}
	if registered {
		if hadFact {
			b.facts[s.Var] = factSaved
		} else {
			delete(b.facts, s.Var)
		}
	}
}

// --- expression lowering ---

func (b *bc) expr(e ftn.Expr) rv {
	if v, ops, ok := b.fold(e); ok {
		b.pending[kOp] += ops
		return rv{reg: b.constReg(v), k: v.Kind}
	}
	switch e := e.(type) {
	case *ftn.Ident:
		return b.identLoad(e)
	case *ftn.Unary:
		return b.unary(e)
	case *ftn.Binary:
		return b.binary(e)
	case *ftn.Ref:
		return b.ref(e)
	}
	// Literals always fold; anything else unmodeled goes to the closure.
	return b.evalFallback(e)
}

func (b *bc) identLoad(e *ftn.Ident) rv {
	if b.loadFast(e.Name) {
		dst := b.newReg()
		b.emit(bLoadS, dst, int32(b.c.syms[e.Name].sslot))
		return rv{reg: dst, k: b.scalK[e.Name]}
	}
	b.flush()
	dst := b.newReg()
	b.emit(bEval, dst, b.evalIdx(b.c.identRead(e)))
	return rv{reg: dst, k: kUnknown}
}

func (b *bc) unary(e *ftn.Unary) rv {
	x := b.expr(e.X)
	b.pending[kOp]++
	dst := b.newReg()
	switch e.Op {
	case "-":
		if x.k == interp.KInt {
			b.emit(bNegI, dst, x.reg)
			return rv{reg: dst, k: interp.KInt}
		}
		b.emit(bNeg, dst, x.reg)
		k := kUnknown
		if x.k != kUnknown {
			k = interp.KReal // any known non-int negates to real
		}
		return rv{reg: dst, k: k}
	case "+":
		return rv{reg: x.reg, k: x.k}
	case ".not.":
		if x.k == interp.KBool {
			b.emit(bNot, dst, x.reg)
			return rv{reg: dst, k: interp.KBool}
		}
		b.flush()
		b.emit(bNotChk, dst, x.reg, b.errIdx(rte(e.Pos(), ".not. of non-logical")))
		return rv{reg: dst, k: interp.KBool}
	}
	b.flush()
	b.emit(bErr, b.errIdx(rte(e.Pos(), "bad unary operator %q", e.Op)))
	return rv{reg: dst, k: kUnknown}
}

func (b *bc) binary(e *ftn.Binary) rv {
	op := e.Op
	switch op {
	case ".and.", ".or.":
		return b.logical(e)
	case "+", "-", "*", "/", "**":
		return b.arith(e)
	case "==", "/=", "<", "<=", ">", ">=":
		return b.compare(e)
	}
	// Unknown operator: the walker evaluates both sides, charges, then
	// fails in Compare.
	b.expr(e.X)
	b.expr(e.Y)
	b.pending[kOp]++
	b.flush()
	b.emit(bErr, b.errIdx(rte(e.Pos(), "%v", fmt.Errorf("bad comparison %q", op))))
	return rv{reg: b.newReg(), k: kUnknown}
}

func (b *bc) logical(e *ftn.Binary) rv {
	isAnd := e.Op == ".and."
	x := b.expr(e.X)
	if x.k != interp.KBool {
		// Kind check precedes the Op charge in the walker.
		b.flush()
		b.emit(bBoolChk, x.reg, b.errIdx(rte(e.Pos(), "%s of non-logical", e.Op)))
	}
	b.pending[kOp]++
	b.flush()
	dst := b.newReg()
	var jShort int32
	if isAnd {
		jShort = b.emit(bJF, -1, x.reg)
	} else {
		jShort = b.emit(bJT, -1, x.reg)
	}
	y := b.expr(e.Y)
	if y.k != interp.KBool {
		b.flush()
		b.emit(bBoolChk, y.reg, b.errIdx(rte(e.Pos(), "%s of non-logical", e.Op)))
	}
	b.emit(bMove, dst, y.reg)
	b.flush()
	jEnd := b.emit(bJmp, -1)
	b.patch(jShort, b.here())
	b.emit(bMove, dst, b.constReg(interp.BoolVal(!isAnd)))
	b.patch(jEnd, b.here())
	return rv{reg: dst, k: interp.KBool}
}

func (b *bc) arith(e *ftn.Binary) rv {
	x := b.expr(e.X)
	y := b.expr(e.Y)
	b.pending[kOp]++
	dst := b.newReg()
	op := e.Op
	bothInt := x.k == interp.KInt && y.k == interp.KInt
	if bothInt {
		switch op {
		case "+":
			b.emit(bAddI, dst, x.reg, y.reg)
		case "-":
			b.emit(bSubI, dst, x.reg, y.reg)
		case "*":
			b.emit(bMulI, dst, x.reg, y.reg)
		case "/":
			b.flush()
			b.emit(bDivI, dst, x.reg, y.reg, b.errIdx(rte(e.Pos(), "integer division by zero")))
		case "**":
			b.emit(bPowI, dst, x.reg, y.reg)
		}
		return rv{reg: dst, k: interp.KInt}
	}
	var fast uint8
	switch op {
	case "+":
		fast = 1
	case "-":
		fast = 2
	case "*":
		fast = 3
	case "/":
		fast = 4
	}
	maybeIntInt := x.k == kUnknown || y.k == kUnknown
	if op == "/" && maybeIntInt {
		// Runtime integer division by zero is possible: flush so the error
		// surfaces with exact walker-elapsed time.
		b.flush()
	}
	b.emit(bArith, dst, x.reg, y.reg, b.opIdx(opDesc{op: op, pos: e.Pos(), fast: fast}))
	k := kUnknown
	if !maybeIntInt {
		k = interp.KReal // both known, not both int: real promotion
	}
	return rv{reg: dst, k: k}
}

func (b *bc) compare(e *ftn.Binary) rv {
	x := b.expr(e.X)
	y := b.expr(e.Y)
	b.pending[kOp]++
	dst := b.newReg()
	var fast uint8
	switch e.Op {
	case "==":
		fast = 1
	case "/=":
		fast = 2
	case "<":
		fast = 3
	case "<=":
		fast = 4
	case ">":
		fast = 5
	case ">=":
		fast = 6
	}
	if x.k == interp.KInt && y.k == interp.KInt {
		switch fast {
		case 1:
			b.emit(bEqI, dst, x.reg, y.reg)
		case 2:
			b.emit(bNeI, dst, x.reg, y.reg)
		case 3:
			b.emit(bLtI, dst, x.reg, y.reg)
		case 4:
			b.emit(bLeI, dst, x.reg, y.reg)
		case 5:
			b.emit(bGtI, dst, x.reg, y.reg)
		case 6:
			b.emit(bGeI, dst, x.reg, y.reg)
		}
		return rv{reg: dst, k: interp.KBool}
	}
	b.emit(bCmp, dst, x.reg, y.reg, b.opIdx(opDesc{op: e.Op, pos: e.Pos(), fast: fast}))
	return rv{reg: dst, k: interp.KBool}
}

// ref lowers name(args): a native array access when the array is provably
// non-nil, the intrinsic path when the name can never be an array, and the
// closure tier for the runtime-dispatched remainder (dummy arrays).
func (b *bc) ref(e *ftn.Ref) rv {
	s := b.c.syms[e.Name]
	if s == nil || s.aslot < 0 {
		return b.intrinsic(e)
	}
	g := b.arrInfo[e.Name]
	if g == nil {
		return b.evalFallback(e)
	}
	subs := b.lowerSubs(e.Args)
	b.pending[kLoad]++
	dst := b.newReg()
	if gi, ok := b.geoAccess(g, e.Args, subs); ok {
		b.emit(bLoadU, dst, gi)
		return rv{reg: dst, k: g.kind}
	}
	b.flush()
	ai := b.accIdx(accDesc{aslot: g.aslot, subs: subs, pos: e.Pos()})
	b.emit(bLoadA, dst, ai)
	return rv{reg: dst, k: g.kind}
}

func (b *bc) intrinsic(e *ftn.Ref) rv {
	name := e.Name
	isWtime := name == "mpi_wtime"
	isIntr := interp.IsIntrinsic(name) && !isWtime
	pos := e.Pos()

	if isIntr && name == "mod" && len(e.Args) == 2 {
		a0 := b.expr(e.Args[0])
		a1 := b.expr(e.Args[1])
		b.pending[kOp]++
		dst := b.newReg()
		b.flush()
		if a0.k == interp.KInt && a1.k == interp.KInt {
			b.emit(bModI, dst, a0.reg, a1.reg, b.errIdx(rte(pos, "mod by zero")))
			return rv{reg: dst, k: interp.KInt}
		}
		ii := b.intrIdx(intrDesc{name: "mod", args: []int32{a0.reg, a1.reg}, pos: pos, err: rte(pos, "mod by zero")})
		b.emit(bMod2, dst, ii)
		return rv{reg: dst, k: kUnknown}
	}
	if isIntr && (name == "min" || name == "max") && len(e.Args) == 2 {
		a0 := b.expr(e.Args[0])
		a1 := b.expr(e.Args[1])
		if a0.k == interp.KInt && a1.k == interp.KInt {
			b.pending[kOp]++
			dst := b.newReg()
			if name == "min" {
				b.emit(bMinI, dst, a0.reg, a1.reg)
			} else {
				b.emit(bMaxI, dst, a0.reg, a1.reg)
			}
			return rv{reg: dst, k: interp.KInt}
		}
		b.pending[kOp]++
		dst := b.newReg()
		b.flush()
		b.emit(bIntr, dst, b.intrIdx(intrDesc{name: name, args: []int32{a0.reg, a1.reg}, pos: pos}))
		return rv{reg: dst, k: kUnknown}
	}

	args := make([]int32, len(e.Args))
	for i, a := range e.Args {
		args[i] = b.expr(a).reg
	}
	b.pending[kOp]++
	dst := b.newReg()
	switch {
	case isWtime:
		b.flush()
		b.emit(bWtime, dst)
		return rv{reg: dst, k: interp.KReal}
	case isIntr:
		b.flush()
		b.emit(bIntr, dst, b.intrIdx(intrDesc{name: name, args: args, pos: pos}))
		return rv{reg: dst, k: kUnknown}
	}
	b.flush()
	b.emit(bErr, b.errIdx(rte(pos, "unknown array or intrinsic %q", name)))
	return rv{reg: dst, k: kUnknown}
}

func (b *bc) intrIdx(d intrDesc) int32 {
	b.bp.intrs = append(b.bp.intrs, d)
	return int32(len(b.bp.intrs) - 1)
}
