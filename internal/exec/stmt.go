package exec

import (
	"repro/internal/ftn"
	"repro/internal/interp"
)

// stmt compiles one statement; nil means "compiles to nothing" (comments,
// CONTINUE).
func (c *comp) stmt(s ftn.Stmt) stmtFn {
	switch s := s.(type) {
	case *ftn.CommentStmt, *ftn.ContinueStmt:
		return nil
	case *ftn.AssignStmt:
		return c.assign(s)
	case *ftn.DoStmt:
		return c.do_(s)
	case *ftn.IfStmt:
		return c.if_(s)
	case *ftn.CallStmt:
		return c.call(s)
	case *ftn.PrintStmt:
		return c.print(s)
	case *ftn.ReturnStmt:
		return func(x *rctx, fr *frame) error { return errReturn }
	case *ftn.StopStmt:
		return func(x *rctx, fr *frame) error { return errStop }
	case *ftn.ExitStmt:
		return func(x *rctx, fr *frame) error { return errExit }
	case *ftn.CycleStmt:
		return func(x *rctx, fr *frame) error { return errCycle }
	}
	return errStmt(s.Pos(), "unsupported statement %T", s)
}

// stmts compiles a statement list.
func (c *comp) stmts(list []ftn.Stmt) []stmtFn {
	var out []stmtFn
	for _, s := range list {
		if fn := c.stmt(s); fn != nil {
			out = append(out, fn)
		}
	}
	return out
}

func (c *comp) assign(s *ftn.AssignStmt) stmtFn {
	rhs := c.expr(s.RHS)
	store := c.store(s.LHS)
	return func(x *rctx, fr *frame) error {
		v, err := rhs(x, fr)
		if err != nil {
			return err
		}
		return store(x, fr, v)
	}
}

// storeFn writes an already-evaluated value to a designator.
type storeFn func(x *rctx, fr *frame, v interp.Value) error

// store compiles a write to an assignable designator (the tree-walker's
// m.store): scalar stores charge Assign and coerce to the slot's kind,
// array-element stores resolve the array first, then subscripts, then
// charge Store.
func (c *comp) store(lhs ftn.Expr) storeFn {
	switch lhs := lhs.(type) {
	case *ftn.Ident:
		ptr := c.scalarPtr(lhs.Name, lhs.Pos())
		return func(x *rctx, fr *frame, v interp.Value) error {
			p, err := ptr(x, fr)
			if err != nil {
				return err
			}
			x.charge(x.costs.Assign)
			*p = interp.CoerceStore(*p, v)
			return nil
		}
	case *ftn.Ref:
		arrOf := c.arrayOf(lhs.Name)
		subs := make([]exprFn, len(lhs.Args))
		for i, a := range lhs.Args {
			subs[i] = c.expr(a)
		}
		pos := lhs.Pos()
		name := lhs.Name
		switch len(subs) {
		case 1:
			s0 := subs[0]
			return func(x *rctx, fr *frame, v interp.Value) error {
				a := arrOf(fr)
				if a == nil {
					return rte(pos, "assignment to %s, which is not an array", name)
				}
				v0, err := s0(x, fr)
				if err != nil {
					return err
				}
				x.charge(x.costs.Store)
				off, err := a.Idx1(v0.AsInt())
				if err != nil {
					return rte(pos, "%v", err)
				}
				a.RawSet(off, v)
				return nil
			}
		case 2:
			s0, s1 := subs[0], subs[1]
			return func(x *rctx, fr *frame, v interp.Value) error {
				a := arrOf(fr)
				if a == nil {
					return rte(pos, "assignment to %s, which is not an array", name)
				}
				v0, err := s0(x, fr)
				if err != nil {
					return err
				}
				v1, err := s1(x, fr)
				if err != nil {
					return err
				}
				x.charge(x.costs.Store)
				off, err := a.Idx2(v0.AsInt(), v1.AsInt())
				if err != nil {
					return rte(pos, "%v", err)
				}
				a.RawSet(off, v)
				return nil
			}
		case 3:
			s0, s1, s2 := subs[0], subs[1], subs[2]
			return func(x *rctx, fr *frame, v interp.Value) error {
				a := arrOf(fr)
				if a == nil {
					return rte(pos, "assignment to %s, which is not an array", name)
				}
				v0, err := s0(x, fr)
				if err != nil {
					return err
				}
				v1, err := s1(x, fr)
				if err != nil {
					return err
				}
				v2, err := s2(x, fr)
				if err != nil {
					return err
				}
				x.charge(x.costs.Store)
				off, err := a.Idx3(v0.AsInt(), v1.AsInt(), v2.AsInt())
				if err != nil {
					return rte(pos, "%v", err)
				}
				a.RawSet(off, v)
				return nil
			}
		}
		return func(x *rctx, fr *frame, v interp.Value) error {
			a := arrOf(fr)
			if a == nil {
				return rte(pos, "assignment to %s, which is not an array", name)
			}
			ix, err := evalInts(x, fr, subs)
			if err != nil {
				return err
			}
			x.charge(x.costs.Store)
			if err := a.Set(ix, v); err != nil {
				return rte(pos, "%v", err)
			}
			return nil
		}
	}
	err := rte(lhs.Pos(), "bad assignment target %T", lhs)
	return func(x *rctx, fr *frame, v interp.Value) error { return err }
}

func (c *comp) do_(s *ftn.DoStmt) stmtFn {
	loF := c.expr(s.Lo)
	hiF := c.expr(s.Hi)
	var stepF exprFn
	if s.Step != nil {
		stepF = c.expr(s.Step)
	}
	ptr := c.scalarPtr(s.Var, s.Pos())
	body := c.stmts(s.Body)
	pos := s.Pos()
	return func(x *rctx, fr *frame) error {
		loV, err := loF(x, fr)
		if err != nil {
			return err
		}
		hiV, err := hiF(x, fr)
		if err != nil {
			return err
		}
		step := int64(1)
		if stepF != nil {
			sv, err := stepF(x, fr)
			if err != nil {
				return err
			}
			step = sv.AsInt()
			if step == 0 {
				return rte(pos, "DO step is zero")
			}
		}
		lo, hi := loV.AsInt(), hiV.AsInt()
		// Fortran trip count, computed once.
		trips := (hi - lo + step) / step
		if trips < 0 {
			trips = 0
		}
		vp, err := ptr(x, fr)
		if err != nil {
			return err
		}
		v := lo
		for t := int64(0); t < trips; t++ {
			*vp = interp.IntVal(v)
			x.charge(x.costs.LoopIter)
			err := runStmts(x, fr, body)
			switch err {
			case nil, errCycle:
			case errExit:
				// EXIT leaves the DO variable at its current iteration value.
				return nil
			default:
				return err
			}
			v += step
		}
		*vp = interp.IntVal(v)
		return nil
	}
}

func (c *comp) if_(s *ftn.IfStmt) stmtFn {
	cond := c.expr(s.Cond)
	then := c.stmts(s.Then)
	els := c.stmts(s.Else)
	pos := s.Pos()
	return func(x *rctx, fr *frame) error {
		v, err := cond(x, fr)
		if err != nil {
			return err
		}
		x.charge(x.costs.Op)
		if v.Kind != interp.KBool {
			return rte(pos, "IF condition is not logical")
		}
		if v.B {
			return runStmts(x, fr, then)
		}
		return runStmts(x, fr, els)
	}
}

func (c *comp) print(s *ftn.PrintStmt) stmtFn {
	args := make([]exprFn, len(s.Args))
	for i, a := range s.Args {
		args[i] = c.expr(a)
	}
	return func(x *rctx, fr *frame) error {
		vals := make([]interp.Value, len(args))
		for i, f := range args {
			v, err := f(x, fr)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		x.out = append(x.out, interp.FormatPrintLine(vals))
		return nil
	}
}
