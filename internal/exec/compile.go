package exec

import (
	"repro/internal/ftn"
	"repro/internal/interp"
)

// sym is one name's compile-time resolution within a unit. A name can own
// up to three slots — named constant, scalar, array — because Fortran's
// loose association rules let the same name play several roles (a dummy
// declared scalar can still receive an array from the caller, a name
// shadowing an MPI constant becomes a scalar on first store). Slots that a
// name can never use stay -1 and their runtime checks are compiled away.
type sym struct {
	name  string
	cslot int // named-constant slot (-1 when none)
	sslot int // scalar slot (-1 when none)
	aslot int // array slot (-1 when none)
	isMPI bool
	mpi   int64        // MPI named-constant value when isMPI
	zero  interp.Value // implicit-typing zero for on-demand creation
}

// comp compiles one unit.
type comp struct {
	prog         *Program
	u            *ftn.Unit
	implicitNone bool
	syms         map[string]*sym
	order        []*sym // first-encounter order, for deterministic slots
	nscal, narr  int
	nconst       int
}

// compileUnit lowers one program unit. It never fails: statements the
// engine cannot lower (and names that are illegal under implicit none)
// compile to closures returning the same runtime errors the tree-walker
// raises, so a program only faults if the faulty statement executes.
func compileUnit(prog *Program, u *ftn.Unit) *unit {
	c := &comp{prog: prog, u: u, implicitNone: u.ImplicitNone, syms: map[string]*sym{}}

	// Pass A: declared names claim their slots first.
	for _, d := range u.Decls {
		for _, e := range d.Entities {
			s := c.sym(e.Name)
			if d.Parameter {
				// A parameter without an initializer never enters the
				// constant table (the tree-walker skips it in pass 1), so
				// the name keeps behaving like an implicit scalar.
				if e.Init != nil && s.cslot < 0 {
					s.cslot = c.nconst
					c.nconst++
				}
				continue
			}
			if len(d.DimsOf(e)) > 0 {
				c.arrSlot(s)
			} else {
				c.scalSlot(s)
			}
		}
	}
	// Pass B: every dummy gets both a scalar and an array slot — the
	// caller decides which side of the binding it fills.
	for _, p := range u.Params {
		s := c.sym(p)
		c.scalSlot(s)
		c.arrSlot(s)
	}
	// Pass C: scan declarations and body for the remaining names (implicit
	// scalars, MPI constants) so every Ident resolves to a slot.
	c.scanDecls()
	for _, st := range u.Body {
		c.scanStmt(st)
	}

	cu := &unit{
		name:   u.Name,
		params: append([]string(nil), u.Params...),
	}
	isParam := map[string]bool{}
	for _, p := range u.Params {
		s := c.syms[p]
		cu.paramScal = append(cu.paramScal, s.sslot)
		cu.paramArr = append(cu.paramArr, s.aslot)
		isParam[p] = true
	}

	// Frame setup, in the tree-walker's order: named constants first (they
	// may reference each other in declaration order), then variables and
	// arrays declaration by declaration.
	for _, d := range u.Decls {
		if !d.Parameter {
			continue
		}
		for _, e := range d.Entities {
			if e.Init == nil {
				continue
			}
			s := c.syms[e.Name]
			init := c.expr(e.Init)
			base := d.Type.Base
			cslot := s.cslot
			cu.setup = append(cu.setup, func(x *rctx, fr *frame) error {
				v, err := init(x, fr)
				if err != nil {
					return err
				}
				fr.consts[cslot] = interp.CoerceDecl(base, v)
				fr.constSet[cslot] = true
				return nil
			})
		}
	}
	for _, d := range u.Decls {
		if d.Parameter {
			continue
		}
		kind := interp.KindOf(d.Type.Base)
		for _, e := range d.Entities {
			s := c.syms[e.Name]
			dims := d.DimsOf(e)
			if len(dims) == 0 {
				cu.setup = append(cu.setup, c.scalarDeclStep(s, d.Type.Base, kind, e.Init))
				continue
			}
			cu.setup = append(cu.setup, c.arrayDeclStep(s, kind, dims, d.Pos(), isParam[e.Name]))
		}
	}

	for _, st := range u.Body {
		if fn := c.stmt(st); fn != nil {
			cu.body = append(cu.body, fn)
		}
	}

	cu.nscal, cu.narr, cu.nconst = c.nscal, c.narr, c.nconst
	cu.arrNames = make([]string, c.narr)
	for _, s := range c.order {
		if s.aslot >= 0 {
			cu.arrNames[s.aslot] = s.name
		}
	}
	cu.cm = c
	return cu
}

// scalarDeclStep compiles pass-2 handling of a declared scalar: keep an
// existing binding (dummy), else allocate (and evaluate the initializer).
func (c *comp) scalarDeclStep(s *sym, base ftn.BaseType, kind interp.Kind, init ftn.Expr) stmtFn {
	var initFn exprFn
	if init != nil {
		initFn = c.expr(init)
	}
	sslot := s.sslot
	return func(x *rctx, fr *frame) error {
		if fr.scal[sslot] != nil {
			return nil
		}
		v := interp.ZeroOf(kind)
		if initFn != nil {
			iv, err := initFn(x, fr)
			if err != nil {
				return err
			}
			v = interp.CoerceDecl(base, iv)
		}
		fr.scal[sslot] = &v
		return nil
	}
}

// arrayDeclStep compiles pass-2 handling of a declared array: evaluate the
// bounds in this frame, then view the caller's backing (dummy) or allocate.
// Only a dummy's slot can hold caller backing — for any other name a
// pre-filled slot means an earlier declaration of the same name, which a
// fresh allocation replaces (the tree-walker's map overwrite).
func (c *comp) arrayDeclStep(s *sym, kind interp.Kind, dims []ftn.Dim, pos ftn.Pos, isDummy bool) stmtFn {
	type dimFns struct {
		lo, hi  exprFn
		assumed bool
	}
	fns := make([]dimFns, len(dims))
	for i, d := range dims {
		if d.Lo != nil {
			fns[i].lo = c.expr(d.Lo)
		}
		if d.Hi == nil {
			fns[i].assumed = true
		} else {
			fns[i].hi = c.expr(d.Hi)
		}
	}
	name := s.name
	aslot := s.aslot
	return func(x *rctx, fr *frame) error {
		bounds := make([]interp.DimBound, len(fns))
		for i, f := range fns {
			lo := int64(1)
			if f.lo != nil {
				v, err := f.lo(x, fr)
				if err != nil {
					return err
				}
				lo = v.AsInt()
			}
			if f.assumed {
				bounds[i] = interp.DimBound{Lo: lo, Assumed: true}
				continue
			}
			hv, err := f.hi(x, fr)
			if err != nil {
				return err
			}
			bounds[i] = interp.DimBound{Lo: lo, Hi: hv.AsInt()}
		}
		if backing := fr.arr[aslot]; isDummy && backing != nil {
			view, err := interp.View(name, backing, 0, bounds)
			if err != nil {
				return rte(pos, "%v", err)
			}
			fr.arr[aslot] = view
			return nil
		}
		a, err := interp.NewArray(name, kind, bounds)
		if err != nil {
			return rte(pos, "%v", err)
		}
		fr.arr[aslot] = a
		return nil
	}
}

// sym finds or creates the symbol for name.
func (c *comp) sym(name string) *sym {
	if s, ok := c.syms[name]; ok {
		return s
	}
	s := &sym{name: name, cslot: -1, sslot: -1, aslot: -1, zero: implicitZero(name)}
	if v, ok := interp.MPIConstant(name); ok {
		s.isMPI = true
		s.mpi = v
	}
	c.syms[name] = s
	c.order = append(c.order, s)
	return s
}

func (c *comp) scalSlot(s *sym) {
	if s.sslot < 0 {
		s.sslot = c.nscal
		c.nscal++
	}
}

func (c *comp) arrSlot(s *sym) {
	if s.aslot < 0 {
		s.aslot = c.narr
		c.narr++
	}
}

// implicitZero is the implicit-typing zero: i-n integer, else real.
func implicitZero(name string) interp.Value {
	if name != "" && name[0] >= 'i' && name[0] <= 'n' {
		return interp.IntVal(0)
	}
	return interp.RealVal(0)
}

// --- name scanning: give every Ident a slot before compiling closures ---

func (c *comp) scanDecls() {
	for _, d := range c.u.Decls {
		for _, e := range d.Entities {
			if e.Init != nil {
				c.scanExpr(e.Init)
			}
			for _, dim := range d.DimsOf(e) {
				if dim.Lo != nil {
					c.scanExpr(dim.Lo)
				}
				if dim.Hi != nil {
					c.scanExpr(dim.Hi)
				}
			}
		}
	}
}

func (c *comp) scanStmt(s ftn.Stmt) {
	switch s := s.(type) {
	case *ftn.AssignStmt:
		c.scanExpr(s.LHS)
		c.scanExpr(s.RHS)
	case *ftn.DoStmt:
		c.touchScalar(s.Var)
		c.scanExpr(s.Lo)
		c.scanExpr(s.Hi)
		if s.Step != nil {
			c.scanExpr(s.Step)
		}
		for _, b := range s.Body {
			c.scanStmt(b)
		}
	case *ftn.IfStmt:
		c.scanExpr(s.Cond)
		for _, b := range s.Then {
			c.scanStmt(b)
		}
		for _, b := range s.Else {
			c.scanStmt(b)
		}
	case *ftn.CallStmt:
		for _, a := range s.Args {
			c.scanExpr(a)
		}
	case *ftn.PrintStmt:
		for _, a := range s.Args {
			c.scanExpr(a)
		}
	}
}

func (c *comp) scanExpr(e ftn.Expr) {
	switch e := e.(type) {
	case *ftn.Ident:
		c.touchScalar(e.Name)
	case *ftn.Ref:
		// The name itself needs no new slot (arrays are declared, unknown
		// names fall to the intrinsic path), but a dummy already carrying
		// slots resolves through them.
		for _, a := range e.Args {
			c.scanExpr(a)
		}
	case *ftn.Unary:
		c.scanExpr(e.X)
	case *ftn.Binary:
		c.scanExpr(e.X)
		c.scanExpr(e.Y)
	}
}

// touchScalar ensures a scalar slot exists for a name used in scalar
// position, unless implicit none forbids creating it (uses then compile to
// the tree-walker's runtime errors). Named constants get one too: a
// forward reference during frame setup reads the name before its
// initializer runs, where the tree-walker falls back to an implicit
// scalar.
func (c *comp) touchScalar(name string) {
	s := c.sym(name)
	if c.implicitNone && s.cslot < 0 && s.sslot < 0 && s.aslot < 0 {
		return // undeclared under implicit none: error closures, no slot
	}
	c.scalSlot(s)
}

// --- scalar access closures (evalIdent / lookupScalar semantics) ---

// identRead compiles reading name as a scalar expression, following the
// tree-walker's resolution order: named constants, scalars, MPI constants,
// whole-array error, implicit-none error, implicit creation.
func (c *comp) identRead(e *ftn.Ident) exprFn {
	s := c.sym(e.Name)
	pos := e.Pos()
	cslot, sslot, aslot := s.cslot, s.sslot, s.aslot
	isMPI, mpiVal, zero := s.isMPI, s.mpi, s.zero
	implicitNone := c.implicitNone
	name := s.name
	return func(x *rctx, fr *frame) (interp.Value, error) {
		if cslot >= 0 && fr.constSet[cslot] {
			// A constant is visible only once its initializer ran; an
			// unset slot (a forward reference during frame setup) falls
			// through to the tree-walker's implicit-typing path.
			return fr.consts[cslot], nil
		}
		if sslot >= 0 {
			if p := fr.scal[sslot]; p != nil {
				return *p, nil
			}
		}
		if isMPI {
			return interp.IntVal(mpiVal), nil
		}
		if aslot >= 0 {
			if fr.arr[aslot] != nil {
				return interp.Value{}, rte(pos, "whole-array reference %s in scalar context", name)
			}
		}
		if implicitNone {
			return interp.Value{}, rte(pos, "undeclared name %s", name)
		}
		p := new(interp.Value)
		*p = zero
		fr.scal[sslot] = p
		return *p, nil
	}
}

// scalarPtr compiles lookupScalar: find or create the scalar cell for a
// store (or a by-reference argument binding).
func (c *comp) scalarPtr(name string, pos ftn.Pos) func(x *rctx, fr *frame) (*interp.Value, error) {
	s := c.sym(name)
	sslot, cslot := s.sslot, s.cslot
	zero := s.zero
	implicitNone := c.implicitNone
	return func(x *rctx, fr *frame) (*interp.Value, error) {
		if sslot >= 0 {
			if p := fr.scal[sslot]; p != nil {
				return p, nil
			}
		}
		if cslot >= 0 {
			return nil, rte(pos, "cannot assign to named constant %s", name)
		}
		if implicitNone {
			return nil, rte(pos, "undeclared variable %s under implicit none", name)
		}
		if sslot < 0 {
			// Unreachable in practice (scanning allocated a slot for every
			// scalar use outside implicit none), kept as a hard error.
			return nil, rte(pos, "undeclared variable %s", name)
		}
		p := new(interp.Value)
		*p = zero
		fr.scal[sslot] = p
		return p, nil
	}
}

// arrayOf compiles the fr.arr lookup for a name; the returned func yields
// nil when the name holds no array in this frame.
func (c *comp) arrayOf(name string) func(fr *frame) *interp.Array {
	s := c.sym(name)
	aslot := s.aslot
	if aslot < 0 {
		return func(fr *frame) *interp.Array { return nil }
	}
	return func(fr *frame) *interp.Array { return fr.arr[aslot] }
}

// errStmt compiles to a statement that always fails with the given message.
func errStmt(pos ftn.Pos, format string, args ...interface{}) stmtFn {
	err := rte(pos, format, args...)
	return func(x *rctx, fr *frame) error { return err }
}
