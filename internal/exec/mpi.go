package exec

import (
	"repro/internal/ftn"
	"repro/internal/interp"
	"repro/internal/mpi"
)

// call compiles a CALL statement: MPI bindings are lowered to pre-resolved
// closures over the same mpi runtime the tree-walker's mpibind uses; other
// names dispatch to compiled user subroutines.
func (c *comp) call(s *ftn.CallStmt) stmtFn {
	switch s.Name {
	case "mpi_init", "mpi_finalize":
		if len(s.Args) == 1 {
			st := c.store(s.Args[0])
			return func(x *rctx, fr *frame) error {
				return st(x, fr, interp.IntVal(0))
			}
		}
		return func(x *rctx, fr *frame) error { return nil }
	case "mpi_comm_rank", "mpi_comm_size":
		if len(s.Args) != 3 {
			return errStmt(s.Pos(), "%s needs 3 arguments", s.Name)
		}
		st1 := c.store(s.Args[1])
		st2 := c.store(s.Args[2])
		wantRank := s.Name == "mpi_comm_rank"
		return func(x *rctx, fr *frame) error {
			v := int64(x.rank.NP())
			if wantRank {
				v = int64(x.rank.Me())
			}
			if err := st1(x, fr, interp.IntVal(v)); err != nil {
				return err
			}
			return st2(x, fr, interp.IntVal(0))
		}
	case "mpi_barrier":
		var st storeFn
		if len(s.Args) == 2 {
			st = c.store(s.Args[1])
		}
		return func(x *rctx, fr *frame) error {
			x.rank.Barrier()
			if st != nil {
				return st(x, fr, interp.IntVal(0))
			}
			return nil
		}
	case "mpi_isend", "mpi_irecv":
		return c.isendIrecv(s)
	case "mpi_send", "mpi_recv":
		return c.blockingSendRecv(s)
	case "mpi_wait":
		return c.wait(s)
	case "mpi_waitall":
		return c.waitall(s)
	case "mpi_alltoall":
		return c.alltoall(s)
	case "flush":
		return func(x *rctx, fr *frame) error { return nil } // test helper: no-op sink
	}
	return c.userCall(s)
}

// bufFn resolves an MPI buffer argument to (array, linear offset).
type bufFn func(x *rctx, fr *frame) (*interp.Array, int64, error)

// buffer compiles an MPI buffer argument (bufferArg semantics).
func (c *comp) buffer(e ftn.Expr) bufFn {
	switch e := e.(type) {
	case *ftn.Ident:
		arrOf := c.arrayOf(e.Name)
		pos := e.Pos()
		name := e.Name
		return func(x *rctx, fr *frame) (*interp.Array, int64, error) {
			a := arrOf(fr)
			if a == nil {
				return nil, 0, rte(pos, "MPI buffer %s is not an array", name)
			}
			return a, 0, nil
		}
	case *ftn.Ref:
		arrOf := c.arrayOf(e.Name)
		subs := make([]exprFn, len(e.Args))
		for i, a := range e.Args {
			subs[i] = c.expr(a)
		}
		pos := e.Pos()
		name := e.Name
		return func(x *rctx, fr *frame) (*interp.Array, int64, error) {
			a := arrOf(fr)
			if a == nil {
				return nil, 0, rte(pos, "MPI buffer %s is not an array", name)
			}
			ix, err := evalInts(x, fr, subs)
			if err != nil {
				return nil, 0, err
			}
			off, err := a.Linear(ix)
			if err != nil {
				return nil, 0, rte(pos, "%v", err)
			}
			return a, off, nil
		}
	}
	pos := e.Pos()
	return func(x *rctx, fr *frame) (*interp.Array, int64, error) {
		return nil, 0, rte(pos, "bad MPI buffer argument")
	}
}

// countType compiles the (count, datatype) pair, yielding element count and
// element byte size (countTypeArgs semantics).
func (c *comp) countType(countE, typeE ftn.Expr) func(x *rctx, fr *frame) (int64, int64, error) {
	countF := c.expr(countE)
	typeF := c.expr(typeE)
	countPos := countE.Pos()
	typePos := typeE.Pos()
	return func(x *rctx, fr *frame) (int64, int64, error) {
		cv, err := countF(x, fr)
		if err != nil {
			return 0, 0, err
		}
		tv, err := typeF(x, fr)
		if err != nil {
			return 0, 0, err
		}
		bytes, ok := interp.DTypeBytes(tv.AsInt())
		if !ok {
			return 0, 0, rte(typePos, "unknown MPI datatype %d", tv.AsInt())
		}
		count := cv.AsInt()
		if count < 0 {
			return 0, 0, rte(countPos, "negative MPI count %d", count)
		}
		return count, bytes, nil
	}
}

// addReq registers req and returns its 1-based handle.
func (x *rctx) addReq(req *mpi.Request) int64 {
	x.reqs = append(x.reqs, req)
	return int64(len(x.reqs))
}

func (x *rctx) waitHandle(h int64, pos ftn.Pos) error {
	if h == 0 {
		return nil // null request
	}
	if h < 1 || h > int64(len(x.reqs)) {
		return rte(pos, "invalid MPI request handle %d", h)
	}
	req := x.reqs[h-1]
	if req == nil {
		return nil // already waited
	}
	x.rank.Wait(req)
	x.reqs[h-1] = nil
	return nil
}

// isendIrecv lowers mpi_isend/mpi_irecv(buf, count, dtype, peer, tag, comm,
// request, ierr).
func (c *comp) isendIrecv(s *ftn.CallStmt) stmtFn {
	if len(s.Args) != 8 {
		return errStmt(s.Pos(), "%s needs 8 arguments", s.Name)
	}
	buf := c.buffer(s.Args[0])
	ct := c.countType(s.Args[1], s.Args[2])
	peerF := c.expr(s.Args[3])
	tagF := c.expr(s.Args[4])
	stReq := c.store(s.Args[6])
	stErr := c.store(s.Args[7])
	isSend := s.Name == "mpi_isend"
	return func(x *rctx, fr *frame) error {
		arr, off, err := buf(x, fr)
		if err != nil {
			return err
		}
		count, elemBytes, err := ct(x, fr)
		if err != nil {
			return err
		}
		peerV, err := peerF(x, fr)
		if err != nil {
			return err
		}
		tagV, err := tagF(x, fr)
		if err != nil {
			return err
		}
		peer := int(peerV.AsInt())
		tag := int(tagV.AsInt())
		bytes := count * elemBytes
		var handle int64
		if isSend {
			req := x.rank.Isend(peer, tag, bytes, func() interface{} {
				p, cerr := arr.CopyOut(off, count)
				if cerr != nil {
					panic(cerr)
				}
				return p
			})
			handle = x.addReq(req)
		} else {
			req := x.rank.Irecv(peer, tag, bytes, func(p interface{}) {
				if cerr := arr.CopyIn(off, p); cerr != nil {
					panic(cerr)
				}
			})
			handle = x.addReq(req)
		}
		if err := stReq(x, fr, interp.IntVal(handle)); err != nil {
			return err
		}
		return stErr(x, fr, interp.IntVal(0))
	}
}

// blockingSendRecv lowers mpi_send(buf, count, dtype, peer, tag, comm,
// ierr) and mpi_recv(..., status, ierr).
func (c *comp) blockingSendRecv(s *ftn.CallStmt) stmtFn {
	want := 7
	if s.Name == "mpi_recv" {
		want = 8
	}
	if len(s.Args) != want {
		return errStmt(s.Pos(), "%s needs %d arguments", s.Name, want)
	}
	buf := c.buffer(s.Args[0])
	ct := c.countType(s.Args[1], s.Args[2])
	peerF := c.expr(s.Args[3])
	tagF := c.expr(s.Args[4])
	stErr := c.store(s.Args[want-1])
	isSend := s.Name == "mpi_send"
	return func(x *rctx, fr *frame) error {
		arr, off, err := buf(x, fr)
		if err != nil {
			return err
		}
		count, elemBytes, err := ct(x, fr)
		if err != nil {
			return err
		}
		peerV, err := peerF(x, fr)
		if err != nil {
			return err
		}
		tagV, err := tagF(x, fr)
		if err != nil {
			return err
		}
		peer, tag := int(peerV.AsInt()), int(tagV.AsInt())
		bytes := count * elemBytes
		if isSend {
			x.rank.Send(peer, tag, bytes, func() interface{} {
				p, cerr := arr.CopyOut(off, count)
				if cerr != nil {
					panic(cerr)
				}
				return p
			})
		} else {
			x.rank.Recv(peer, tag, bytes, func(p interface{}) {
				if cerr := arr.CopyIn(off, p); cerr != nil {
					panic(cerr)
				}
			})
		}
		return stErr(x, fr, interp.IntVal(0))
	}
}

// wait lowers mpi_wait(request, status, ierr).
func (c *comp) wait(s *ftn.CallStmt) stmtFn {
	if len(s.Args) != 3 {
		return errStmt(s.Pos(), "mpi_wait needs 3 arguments")
	}
	hF := c.expr(s.Args[0])
	stReq := c.store(s.Args[0])
	stErr := c.store(s.Args[2])
	pos := s.Pos()
	return func(x *rctx, fr *frame) error {
		hv, err := hF(x, fr)
		if err != nil {
			return err
		}
		if err := x.waitHandle(hv.AsInt(), pos); err != nil {
			return err
		}
		// Invalidate the handle.
		if err := stReq(x, fr, interp.IntVal(0)); err != nil {
			return err
		}
		return stErr(x, fr, interp.IntVal(0))
	}
}

// waitall lowers mpi_waitall(count, requests, statuses, ierr).
func (c *comp) waitall(s *ftn.CallStmt) stmtFn {
	if len(s.Args) != 4 {
		return errStmt(s.Pos(), "mpi_waitall needs 4 arguments")
	}
	nF := c.expr(s.Args[0])
	buf := c.buffer(s.Args[1])
	stErr := c.store(s.Args[3])
	pos := s.Pos()
	return func(x *rctx, fr *frame) error {
		nv, err := nF(x, fr)
		if err != nil {
			return err
		}
		arr, off, err := buf(x, fr)
		if err != nil {
			return err
		}
		n := nv.AsInt()
		for i := int64(0); i < n; i++ {
			h := arr.RawGet(off + i).AsInt()
			if err := x.waitHandle(h, pos); err != nil {
				return err
			}
			arr.RawSet(off+i, interp.IntVal(0))
		}
		return stErr(x, fr, interp.IntVal(0))
	}
}

// alltoall lowers mpi_alltoall(sbuf, scount, stype, rbuf, rcount, rtype,
// comm, ierr) with the §3.5 partition semantics.
func (c *comp) alltoall(s *ftn.CallStmt) stmtFn {
	if len(s.Args) != 8 {
		return errStmt(s.Pos(), "mpi_alltoall needs 8 arguments")
	}
	sBuf := c.buffer(s.Args[0])
	sCT := c.countType(s.Args[1], s.Args[2])
	rBuf := c.buffer(s.Args[3])
	rCT := c.countType(s.Args[4], s.Args[5])
	stErr := c.store(s.Args[7])
	pos := s.Pos()
	return func(x *rctx, fr *frame) error {
		sArr, sOff, err := sBuf(x, fr)
		if err != nil {
			return err
		}
		sCount, sBytes, err := sCT(x, fr)
		if err != nil {
			return err
		}
		rArr, rOff, err := rBuf(x, fr)
		if err != nil {
			return err
		}
		rCount, _, err := rCT(x, fr)
		if err != nil {
			return err
		}
		var cbErr error
		x.rank.Alltoall(sCount*sBytes,
			func(dst int) interface{} {
				p, cerr := sArr.CopyOut(sOff+int64(dst)*sCount, sCount)
				if cerr != nil && cbErr == nil {
					cbErr = cerr
				}
				return p
			},
			func(src int, p interface{}) {
				if cerr := rArr.CopyIn(rOff+int64(src)*rCount, p); cerr != nil && cbErr == nil {
					cbErr = cerr
				}
			})
		if cbErr != nil {
			return rte(pos, "%v", cbErr)
		}
		return stErr(x, fr, interp.IntVal(0))
	}
}

// binding is one actual argument's contribution to a callee frame: a
// scalar cell alias or an array (view).
type binding struct {
	scal *interp.Value
	arr  *interp.Array
}

// argBinder evaluates one actual argument in the caller's frame. dummy is
// the callee's dummy name (only used to label sequence-association views).
type argBinder func(x *rctx, fr *frame, dummy string) (binding, error)

// userCall compiles a call to a user subroutine with Fortran reference
// semantics (callUser). The target unit is resolved at run time so a call
// to a subroutine defined later in the file still binds.
func (c *comp) userCall(s *ftn.CallStmt) stmtFn {
	binders := make([]argBinder, len(s.Args))
	for i, a := range s.Args {
		binders[i] = c.argBinder(a)
	}
	pos := s.Pos()
	name := s.Name
	return func(x *rctx, fr *frame) error {
		sub := x.prog.units[name]
		if sub == nil {
			return rte(pos, "unknown subroutine %s", name)
		}
		if len(binders) != len(sub.params) {
			return rte(pos, "call to %s with %d args, wants %d", name, len(binders), len(sub.params))
		}
		x.charge(x.costs.CallOver)
		nfr := sub.newFrame()
		for i, b := range binders {
			bd, err := b(x, fr, sub.params[i])
			if err != nil {
				return err
			}
			if bd.scal != nil {
				nfr.scal[sub.paramScal[i]] = bd.scal
			}
			if bd.arr != nil {
				nfr.arr[sub.paramArr[i]] = bd.arr
			}
		}
		for _, st := range sub.setup {
			if err := st(x, nfr); err != nil {
				return err
			}
		}
		err := runStmts(x, nfr, sub.body)
		if err == errReturn {
			err = nil
		}
		return err
	}
}

// argBinder compiles one actual argument's binding rule.
func (c *comp) argBinder(a ftn.Expr) argBinder {
	switch a := a.(type) {
	case *ftn.Ident:
		arrOf := c.arrayOf(a.Name)
		ptr := c.scalarPtr(a.Name, a.Pos())
		return func(x *rctx, fr *frame, dummy string) (binding, error) {
			if arr := arrOf(fr); arr != nil {
				return binding{arr: arr}, nil
			}
			p, err := ptr(x, fr)
			if err != nil {
				return binding{}, err
			}
			return binding{scal: p}, nil // alias: writes are visible to the caller
		}
	case *ftn.Ref:
		arrOf := c.arrayOf(a.Name)
		subs := make([]exprFn, len(a.Args))
		for i, e := range a.Args {
			subs[i] = c.expr(e)
		}
		full := c.expr(a) // value path when the name is not an array here
		pos := a.Pos()
		return func(x *rctx, fr *frame, dummy string) (binding, error) {
			if arr := arrOf(fr); arr != nil {
				ix, err := evalInts(x, fr, subs)
				if err != nil {
					return binding{}, err
				}
				off, err := arr.Linear(ix)
				if err != nil {
					return binding{}, err
				}
				// Sequence association: the callee's dummy views the
				// caller's storage from this element on.
				view, err := interp.View(dummy, arr, off, []interp.DimBound{{Lo: 1, Assumed: true}})
				if err != nil {
					return binding{}, rte(pos, "%v", err)
				}
				return binding{arr: view}, nil
			}
			v, err := full(x, fr)
			if err != nil {
				return binding{}, err
			}
			tmp := v
			return binding{scal: &tmp}, nil
		}
	default:
		full := c.expr(a)
		return func(x *rctx, fr *frame, dummy string) (binding, error) {
			v, err := full(x, fr)
			if err != nil {
				return binding{}, err
			}
			tmp := v
			return binding{scal: &tmp}, nil
		}
	}
}
