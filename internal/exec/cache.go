package exec

import (
	"crypto/sha256"
	"sync"
)

// The process-wide variant cache. Every (program, plan) variant the
// pipeline produces is a concrete source text — core.Apply memoizes plan
// keys onto generated sources, so hashing the variant source is a
// canonical superset of keying by plan key: two plans that alias onto the
// same generated code (a knob no-op) share one compiled artifact, and the
// same variant reached from different scenarios, tuner candidates, or
// sweep shards within the process compiles exactly once.
//
// The cache is concurrency-safe and single-flight: concurrent requests for
// the same variant block on one compile instead of duplicating it.
var cache = struct {
	mu      sync.Mutex
	entries map[[sha256.Size]byte]*cacheEntry
	stats   CacheStats
}{entries: map[[sha256.Size]byte]*cacheEntry{}}

type cacheEntry struct {
	once sync.Once
	prog *Program
	err  error
}

// CacheStats counts variant-cache traffic.
type CacheStats struct {
	// Compiled is the number of distinct variants compiled (cache misses).
	Compiled int64
	// Hits is the number of lookups served by an existing artifact.
	Hits int64
}

// Sub returns the stats delta since an earlier snapshot.
func (s CacheStats) Sub(earlier CacheStats) CacheStats {
	return CacheStats{Compiled: s.Compiled - earlier.Compiled, Hits: s.Hits - earlier.Hits}
}

// Stats snapshots the process-wide cache counters.
func Stats() CacheStats {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	return cache.stats
}

// ResetCache drops every cached artifact and zeroes the counters (tests).
func ResetCache() {
	cache.mu.Lock()
	defer cache.mu.Unlock()
	cache.entries = map[[sha256.Size]byte]*cacheEntry{}
	cache.stats = CacheStats{}
}

// CompileCached parses and compiles src, sharing one immutable compiled
// artifact per distinct variant source across the whole process. A cache
// hit returns the identical *Program pointer.
func CompileCached(src string) (*Program, error) {
	key := sha256.Sum256([]byte(src))
	cache.mu.Lock()
	e, ok := cache.entries[key]
	if ok {
		cache.stats.Hits++
	} else {
		e = &cacheEntry{}
		cache.entries[key] = e
		cache.stats.Compiled++
	}
	cache.mu.Unlock()
	e.once.Do(func() {
		e.prog, e.err = CompileSource(src)
	})
	return e.prog, e.err
}
