package exec

import (
	"repro/internal/ftn"
	"repro/internal/interp"
)

// expr compiles an expression. Every closure replicates the tree-walker's
// evaluation order and cost charges exactly — the same operations are
// charged at the same points, so virtual times agree to the nanosecond.
func (c *comp) expr(e ftn.Expr) exprFn {
	switch e := e.(type) {
	case *ftn.IntLit:
		v := interp.IntVal(e.Value)
		return func(x *rctx, fr *frame) (interp.Value, error) { return v, nil }
	case *ftn.RealLit:
		v := interp.RealVal(e.Value)
		return func(x *rctx, fr *frame) (interp.Value, error) { return v, nil }
	case *ftn.StrLit:
		v := interp.StrVal(e.Value)
		return func(x *rctx, fr *frame) (interp.Value, error) { return v, nil }
	case *ftn.BoolLit:
		v := interp.BoolVal(e.Value)
		return func(x *rctx, fr *frame) (interp.Value, error) { return v, nil }
	case *ftn.Ident:
		return c.identRead(e)
	case *ftn.Unary:
		return c.unary(e)
	case *ftn.Binary:
		return c.binary(e)
	case *ftn.Ref:
		return c.ref(e)
	}
	pos := e.Pos()
	err := rte(pos, "unsupported expression %T", e)
	return func(x *rctx, fr *frame) (interp.Value, error) { return interp.Value{}, err }
}

func (c *comp) unary(e *ftn.Unary) exprFn {
	xf := c.expr(e.X)
	pos := e.Pos()
	switch e.Op {
	case "-":
		return func(x *rctx, fr *frame) (interp.Value, error) {
			v, err := xf(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			x.charge(x.costs.Op)
			if v.Kind == interp.KInt {
				return interp.IntVal(-v.I), nil
			}
			return interp.RealVal(-v.AsReal()), nil
		}
	case "+":
		return func(x *rctx, fr *frame) (interp.Value, error) {
			v, err := xf(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			x.charge(x.costs.Op)
			return v, nil
		}
	case ".not.":
		return func(x *rctx, fr *frame) (interp.Value, error) {
			v, err := xf(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			x.charge(x.costs.Op)
			if v.Kind != interp.KBool {
				return interp.Value{}, rte(pos, ".not. of non-logical")
			}
			return interp.BoolVal(!v.B), nil
		}
	}
	op := e.Op
	return func(x *rctx, fr *frame) (interp.Value, error) {
		v, err := xf(x, fr)
		if err != nil {
			return interp.Value{}, err
		}
		x.charge(x.costs.Op)
		_ = v
		return interp.Value{}, rte(pos, "bad unary operator %q", op)
	}
}

func (c *comp) binary(e *ftn.Binary) exprFn {
	xf := c.expr(e.X)
	yf := c.expr(e.Y)
	pos := e.Pos()
	op := e.Op
	switch op {
	case ".and.", ".or.":
		isAnd := op == ".and."
		return func(x *rctx, fr *frame) (interp.Value, error) {
			xv, err := xf(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			if xv.Kind != interp.KBool {
				return interp.Value{}, rte(pos, "%s of non-logical", op)
			}
			x.charge(x.costs.Op)
			if isAnd && !xv.B {
				return interp.BoolVal(false), nil
			}
			if !isAnd && xv.B {
				return interp.BoolVal(true), nil
			}
			yv, err := yf(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			if yv.Kind != interp.KBool {
				return interp.Value{}, rte(pos, "%s of non-logical", op)
			}
			return yv, nil
		}
	case "+", "-", "*", "/", "**":
		// Integer-integer fast paths (bit-identical to NumericBinop's int
		// branch) keep the hottest arithmetic off the generic dispatcher;
		// anything else — mixed kinds, division by zero, ** — falls back.
		var fast func(a, b int64) (int64, bool)
		switch op {
		case "+":
			fast = func(a, b int64) (int64, bool) { return a + b, true }
		case "-":
			fast = func(a, b int64) (int64, bool) { return a - b, true }
		case "*":
			fast = func(a, b int64) (int64, bool) { return a * b, true }
		case "/":
			fast = func(a, b int64) (int64, bool) {
				if b == 0 {
					return 0, false
				}
				return a / b, true
			}
		}
		return func(x *rctx, fr *frame) (interp.Value, error) {
			xv, err := xf(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			yv, err := yf(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			x.charge(x.costs.Op)
			if fast != nil && xv.Kind == interp.KInt && yv.Kind == interp.KInt {
				if r, ok := fast(xv.I, yv.I); ok {
					return interp.IntVal(r), nil
				}
			}
			v, err2 := interp.NumericBinop(op, xv, yv)
			if err2 != nil {
				return interp.Value{}, rte(pos, "%v", err2)
			}
			return v, nil
		}
	}
	// Comparisons: integer-integer fast path per operator, generic fallback.
	var fast func(a, b int64) (bool, bool)
	switch op {
	case "==":
		fast = func(a, b int64) (bool, bool) { return a == b, true }
	case "/=":
		fast = func(a, b int64) (bool, bool) { return a != b, true }
	case "<":
		fast = func(a, b int64) (bool, bool) { return a < b, true }
	case "<=":
		fast = func(a, b int64) (bool, bool) { return a <= b, true }
	case ">":
		fast = func(a, b int64) (bool, bool) { return a > b, true }
	case ">=":
		fast = func(a, b int64) (bool, bool) { return a >= b, true }
	}
	return func(x *rctx, fr *frame) (interp.Value, error) {
		xv, err := xf(x, fr)
		if err != nil {
			return interp.Value{}, err
		}
		yv, err := yf(x, fr)
		if err != nil {
			return interp.Value{}, err
		}
		x.charge(x.costs.Op)
		if fast != nil && xv.Kind == interp.KInt && yv.Kind == interp.KInt {
			if r, ok := fast(xv.I, yv.I); ok {
				return interp.BoolVal(r), nil
			}
		}
		v, err2 := interp.Compare(op, xv, yv)
		if err2 != nil {
			return interp.Value{}, rte(pos, "%v", err2)
		}
		return v, nil
	}
}

// ref compiles name(args): an array element load when the frame holds an
// array under the name, else the intrinsic path — the same runtime
// precedence the tree-walker's evalRef applies. Rank-1/2/3 loads use the
// fixed-rank index forms (no subscript slice) and mod gets an
// integer-integer fast path; everything else falls back to the generic
// closures, all bit-identical in charges and results.
func (c *comp) ref(e *ftn.Ref) exprFn {
	arrOf := c.arrayOf(e.Name)
	args := make([]exprFn, len(e.Args))
	for i, a := range e.Args {
		args[i] = c.expr(a)
	}
	pos := e.Pos()
	name := e.Name
	isWtime := name == "mpi_wtime"
	isIntr := interp.IsIntrinsic(name) && !isWtime

	// The non-array branch: intrinsics and unknown names.
	intr := func(x *rctx, fr *frame) (interp.Value, error) {
		vals := make([]interp.Value, len(args))
		for i, f := range args {
			v, err := f(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			vals[i] = v
		}
		x.charge(x.costs.Op)
		if isWtime {
			return interp.RealVal(x.rank.Now().Seconds()), nil
		}
		if isIntr {
			v, err := interp.EvalIntrinsic(name, vals)
			if err != nil {
				return interp.Value{}, rte(pos, "%v", err)
			}
			return v, nil
		}
		return interp.Value{}, rte(pos, "unknown array or intrinsic %q", name)
	}
	if isIntr && name == "mod" && len(args) == 2 {
		a0, a1 := args[0], args[1]
		intr = func(x *rctx, fr *frame) (interp.Value, error) {
			v0, err := a0(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			v1, err := a1(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			x.charge(x.costs.Op)
			if v0.Kind == interp.KInt && v1.Kind == interp.KInt {
				if v1.I == 0 {
					return interp.Value{}, rte(pos, "mod by zero")
				}
				return interp.IntVal(v0.I % v1.I), nil
			}
			v, err := interp.EvalIntrinsic(name, []interp.Value{v0, v1})
			if err != nil {
				return interp.Value{}, rte(pos, "%v", err)
			}
			return v, nil
		}
	}
	if c.sym(name).aslot < 0 {
		// The name can never hold an array in any frame of this unit.
		return intr
	}

	switch len(args) {
	case 1:
		a0 := args[0]
		return func(x *rctx, fr *frame) (interp.Value, error) {
			a := arrOf(fr)
			if a == nil {
				return intr(x, fr)
			}
			v0, err := a0(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			x.charge(x.costs.Load)
			off, err := a.Idx1(v0.AsInt())
			if err != nil {
				return interp.Value{}, rte(pos, "%v", err)
			}
			return a.RawGet(off), nil
		}
	case 2:
		a0, a1 := args[0], args[1]
		return func(x *rctx, fr *frame) (interp.Value, error) {
			a := arrOf(fr)
			if a == nil {
				return intr(x, fr)
			}
			v0, err := a0(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			v1, err := a1(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			x.charge(x.costs.Load)
			off, err := a.Idx2(v0.AsInt(), v1.AsInt())
			if err != nil {
				return interp.Value{}, rte(pos, "%v", err)
			}
			return a.RawGet(off), nil
		}
	case 3:
		a0, a1, a2 := args[0], args[1], args[2]
		return func(x *rctx, fr *frame) (interp.Value, error) {
			a := arrOf(fr)
			if a == nil {
				return intr(x, fr)
			}
			v0, err := a0(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			v1, err := a1(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			v2, err := a2(x, fr)
			if err != nil {
				return interp.Value{}, err
			}
			x.charge(x.costs.Load)
			off, err := a.Idx3(v0.AsInt(), v1.AsInt(), v2.AsInt())
			if err != nil {
				return interp.Value{}, rte(pos, "%v", err)
			}
			return a.RawGet(off), nil
		}
	}
	return func(x *rctx, fr *frame) (interp.Value, error) {
		a := arrOf(fr)
		if a == nil {
			return intr(x, fr)
		}
		subs, err := evalInts(x, fr, args)
		if err != nil {
			return interp.Value{}, err
		}
		x.charge(x.costs.Load)
		v, err := a.Get(subs)
		if err != nil {
			return interp.Value{}, rte(pos, "%v", err)
		}
		return v, nil
	}
}

// evalInts evaluates subscript expressions to int64 (evalSubs semantics).
func evalInts(x *rctx, fr *frame, fns []exprFn) ([]int64, error) {
	subs := make([]int64, len(fns))
	for i, f := range fns {
		v, err := f(x, fr)
		if err != nil {
			return nil, err
		}
		subs[i] = v.AsInt()
	}
	return subs, nil
}
