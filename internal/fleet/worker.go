package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/session"
)

// Worker is the worker-side HTTP surface: a thin loop around harness.Run
// (POST /run, one shard sweep per request) and session.Plan (POST /tune)
// over one session. The session's DiskStore and verify ledger live in the
// fleet's shared cache directory, so variants and verdicts flow between
// workers through the filesystem, not the coordinator.
//
// Requests are serialized: harness.Run derives its cache-economics counters
// from store-stat deltas around the sweep, so two interleaved sweeps on one
// session would misattribute compiles. Serializing trades worker-local
// parallelism (each sweep already fans out across GOMAXPROCS scenario
// workers) for honest counters.
type Worker struct {
	sess *session.Session
	mu   sync.Mutex
}

// NewWorker wraps a session as a fleet worker.
func NewWorker(sess *session.Session) *Worker {
	return &Worker{sess: sess}
}

// Session returns the worker's session (the smoke tests read its stats).
func (w *Worker) Session() *session.Session { return w.sess }

// Mux wires the worker's HTTP surface: POST /run, POST /tune, GET /healthz.
func (w *Worker) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/run", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			rw.Header().Set("Allow", http.MethodPost)
			writeError(rw, http.StatusMethodNotAllowed, fmt.Errorf("POST a shard request to /run"))
			return
		}
		var req ShardRequest
		r.Body = http.MaxBytesReader(rw, r.Body, maxBodyBytes)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("bad shard request: %w", err))
			return
		}
		w.mu.Lock()
		rep, err := RunShard(w.sess, req)
		w.mu.Unlock()
		if err != nil {
			// A malformed shard spec or unknown machine is the
			// coordinator's fault and permanent; everything else might be
			// transient.
			status := http.StatusInternalServerError
			if isShardRequestError(err) {
				status = http.StatusBadRequest
			}
			writeError(rw, status, err)
			return
		}
		writeJSON(rw, rep)
	})
	mux.HandleFunc("/tune", func(rw http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			rw.Header().Set("Allow", http.MethodPost)
			writeError(rw, http.StatusMethodNotAllowed, fmt.Errorf("POST a tuning query to /tune"))
			return
		}
		var q session.Query
		r.Body = http.MaxBytesReader(rw, r.Body, maxBodyBytes)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&q); err != nil {
			writeError(rw, http.StatusBadRequest, fmt.Errorf("bad tuning query: %w", err))
			return
		}
		w.mu.Lock()
		res, err := w.sess.Plan(q)
		w.mu.Unlock()
		if err != nil {
			status := http.StatusInternalServerError
			if session.IsQueryError(err) {
				status = http.StatusBadRequest
			}
			writeError(rw, status, err)
			return
		}
		writeJSON(rw, res)
	})
	mux.HandleFunc("/healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(rw, "ok")
	})
	return mux
}

// isShardRequestError reports whether a RunShard failure was caused by the
// request itself rather than the sweep machinery.
func isShardRequestError(err error) bool {
	msg := err.Error()
	return strings.Contains(msg, "bad shard") || strings.Contains(msg, "unknown machine")
}

// Announce registers a worker with the coordinator and keeps its heartbeat
// fresh until the context is canceled. Registration retries on the same
// interval, so workers and coordinator may start in any order; a
// coordinator restart is healed the same way (Register is an upsert).
func Announce(ctx context.Context, client *http.Client, coord, self string, interval time.Duration) {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	if interval <= 0 {
		interval = 3 * time.Second
	}
	beat := func(path string) error {
		body, _ := json.Marshal(map[string]string{"addr": self})
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, coord+path, bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("%s: %s", path, resp.Status)
		}
		return nil
	}
	registered := beat("/register") == nil
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if !registered {
				registered = beat("/register") == nil
				continue
			}
			if err := beat("/heartbeat"); err != nil {
				registered = false
			}
		}
	}
}
