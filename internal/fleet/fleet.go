// Package fleet farms sweep and tuning work out to worker processes that
// share one content-addressed variant store and one verify ledger. The
// coordinator decomposes a sweep into shard work items (the `-shard I/N`
// semantics of workload.SelectShard), dispatches them to registered workers
// over HTTP with per-item retry/timeout/backoff and failed-worker
// reassignment, and folds the per-shard bench-harness artifacts back
// together with harness.Merge — so the fleet artifact is byte-identical to
// a single-process sweep modulo the wall-clock and cache-economics
// counters, which are volatile by contract.
//
// A worker is a thin HTTP loop around harness.Run (for shards) and
// session.Plan (for tuning queries), holding a session.Session whose
// DiskStore and verify ledger live in the shared cache directory: every
// variant one worker compiles or verifies is a disk hit (or ledger skip)
// for every other.
package fleet

import (
	"fmt"

	"repro/internal/harness"
	"repro/internal/plan"
	"repro/internal/session"
	"repro/internal/workload"
)

// SweepSpec is the wire form of one sweep request: everything a worker
// needs to regenerate its shard of the corpus and run it exactly as a
// single-process `evalrunner` invocation would.
type SweepSpec struct {
	// Seed selects the generated corpus (0 = canonical).
	Seed int64 `json:"seed"`
	// Limit truncates the corpus to its first N scenarios (0 = all).
	Limit int `json:"limit,omitempty"`
	// Machines names the machine models; empty means the default sweep set.
	Machines []string `json:"machines,omitempty"`
	// Tune enables the per-(scenario, machine) plan search.
	Tune bool `json:"tune,omitempty"`
	// TuneMax caps measured tuning candidates (0 = tuner default).
	TuneMax int `json:"tune_max,omitempty"`
	// KOnly restricts the search to tile sizes.
	KOnly bool `json:"k_only,omitempty"`
	// Verify runs the static verification tier on every variant touched.
	Verify bool `json:"verify,omitempty"`
	// Shards is the number of shard work items to decompose into; <= 0
	// selects one per live worker (clamped to the corpus size either way).
	Shards int `json:"shards,omitempty"`
}

// ShardRequest is one work item: a sweep spec narrowed to shard I/N.
type ShardRequest struct {
	Sweep SweepSpec `json:"sweep"`
	Shard string    `json:"shard"`
}

// Job kinds.
const (
	KindSweep = "sweep"
	KindTune  = "tune"
)

// Job states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// EnqueueRequest is the POST /enqueue body: exactly one of Sweep or Tune,
// selected by Kind.
type EnqueueRequest struct {
	Kind  string         `json:"kind"`
	Sweep *SweepSpec     `json:"sweep,omitempty"`
	Tune  *session.Query `json:"tune,omitempty"`
}

// RunShard regenerates the requested shard of the corpus and sweeps it
// through the session — the worker-side body of one sweep work item. The
// shard keys on the stable corpus index, so the shards of a fleet sweep
// partition the corpus exactly like N `evalrunner -shard I/N` processes
// would, and harness.Merge folds the artifacts back into corpus order.
func RunShard(sess *session.Session, req ShardRequest) (*harness.Report, error) {
	spec := req.Sweep
	full := workload.GenerateScenarios(workload.GenOptions{Seed: spec.Seed})
	scenarios := full
	if spec.Limit > 0 && spec.Limit < len(full) {
		scenarios = full[:spec.Limit]
	}
	scenarios, err := workload.SelectShard(scenarios, req.Shard)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	machines, err := resolveMachines(spec.Machines)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return harness.Run(harness.Config{
		Scenarios: scenarios, Machines: machines,
		Tune: spec.Tune, TuneMaxMeasured: spec.TuneMax, TuneKOnly: spec.KOnly,
		Verify: spec.Verify, Engine: sess.Engine(), Session: sess,
	})
}

// resolveMachines maps machine names to models (empty = harness default).
func resolveMachines(names []string) ([]plan.Machine, error) {
	var machines []plan.Machine
	for _, name := range names {
		m, err := plan.ByName(name)
		if err != nil {
			return nil, err
		}
		machines = append(machines, m)
	}
	return machines, nil
}

// corpusSize is the scenario count a spec sweeps (after Limit) — the clamp
// for the shard count, so no shard work item is ever empty.
func corpusSize(spec SweepSpec) int {
	n := len(workload.GenerateScenarios(workload.GenOptions{Seed: spec.Seed}))
	if spec.Limit > 0 && spec.Limit < n {
		n = spec.Limit
	}
	return n
}
