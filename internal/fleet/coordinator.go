package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/harness"
)

// Options tunes the coordinator's dispatch behavior; the zero value selects
// the defaults.
type Options struct {
	// ItemTimeout bounds one dispatch attempt (request + worker sweep);
	// <= 0 selects 10 minutes.
	ItemTimeout time.Duration
	// HeartbeatTTL is how long a silent worker stays live; <= 0 selects 15s.
	HeartbeatTTL time.Duration
	// MaxAttempts caps application-level attempts per work item (transport
	// failures mark the worker dead and reassign without burning an
	// attempt); <= 0 selects 3.
	MaxAttempts int
	// RetryDelay is the linear backoff unit between application-level
	// retries of one item (attempt n waits n*RetryDelay); <= 0 selects
	// 250ms.
	RetryDelay time.Duration
	// Client issues the dispatch requests; nil selects a fresh http.Client
	// (per-attempt deadlines come from ItemTimeout, not the client).
	Client *http.Client
}

func (o Options) withDefaults() Options {
	if o.ItemTimeout <= 0 {
		o.ItemTimeout = 10 * time.Minute
	}
	if o.HeartbeatTTL <= 0 {
		o.HeartbeatTTL = 15 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 3
	}
	if o.RetryDelay <= 0 {
		o.RetryDelay = 250 * time.Millisecond
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	return o
}

// Coordinator owns the worker registry and the job queue. Safe for
// concurrent use; Close stops the heartbeat reaper.
type Coordinator struct {
	opts Options

	mu      sync.Mutex
	workers map[string]*workerState
	jobs    map[string]*job
	nextJob int
	pending []*workItem
	closed  bool

	reapStop  chan struct{}
	closeOnce sync.Once
}

type workerState struct {
	addr     string
	lastBeat time.Time
	dead     bool
	busy     *workItem
}

type job struct {
	id      string
	kind    string
	items   []*workItem
	done    int
	retries int
	state   string
	err     string
	result  json.RawMessage
	doneCh  chan struct{}
}

type workItem struct {
	job      *job
	idx      int
	shard    ShardRequest // sweep items
	query    []byte       // tune items (the encoded session.Query)
	attempts int
	report   *harness.Report // completed sweep item
	raw      json.RawMessage // completed tune item
	finished bool
}

// NewCoordinator builds a coordinator and starts its heartbeat reaper.
func NewCoordinator(opts Options) *Coordinator {
	c := &Coordinator{
		opts:     opts.withDefaults(),
		workers:  map[string]*workerState{},
		jobs:     map[string]*job{},
		reapStop: make(chan struct{}),
	}
	go c.reapLoop()
	return c
}

// Close stops the heartbeat reaper. In-flight dispatches finish on their
// own deadlines.
func (c *Coordinator) Close() {
	c.closeOnce.Do(func() {
		close(c.reapStop)
		c.mu.Lock()
		c.closed = true
		c.mu.Unlock()
	})
}

// Register adds (or revives) a worker at addr and counts as a heartbeat.
func (c *Coordinator) Register(addr string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[addr]
	if w == nil {
		w = &workerState{addr: addr}
		c.workers[addr] = w
	}
	w.dead = false
	w.lastBeat = time.Now()
	c.pump()
}

// Heartbeat refreshes a worker's liveness; unknown workers are re-added
// (a coordinator restart must not orphan a running fleet).
func (c *Coordinator) Heartbeat(addr string) {
	c.Register(addr)
}

// Enqueue accepts a job and returns its ID. Sweep jobs decompose into
// shard work items immediately; the shard count defaults to the live
// worker count and is clamped to the corpus size so no item is empty.
func (c *Coordinator) Enqueue(req EnqueueRequest) (string, error) {
	switch req.Kind {
	case KindSweep:
		if req.Sweep == nil {
			return "", fmt.Errorf("fleet: sweep job needs a sweep spec")
		}
	case KindTune:
		if req.Tune == nil {
			return "", fmt.Errorf("fleet: tune job needs a tune query")
		}
	default:
		return "", fmt.Errorf("fleet: unknown job kind %q (want %q or %q)", req.Kind, KindSweep, KindTune)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextJob++
	j := &job{id: fmt.Sprintf("job-%d", c.nextJob), kind: req.Kind, state: StateQueued, doneCh: make(chan struct{})}
	switch req.Kind {
	case KindSweep:
		spec := *req.Sweep
		shards := spec.Shards
		if shards <= 0 {
			shards = c.liveWorkersLocked()
		}
		if shards < 1 {
			shards = 1
		}
		if size := corpusSize(spec); shards > size {
			shards = size
		}
		for i := 0; i < shards; i++ {
			it := &workItem{job: j, idx: i, shard: ShardRequest{Sweep: spec, Shard: fmt.Sprintf("%d/%d", i, shards)}}
			j.items = append(j.items, it)
			c.pending = append(c.pending, it)
		}
	case KindTune:
		body, err := json.Marshal(req.Tune)
		if err != nil {
			return "", fmt.Errorf("fleet: encode tune query: %w", err)
		}
		it := &workItem{job: j, query: body}
		j.items = append(j.items, it)
		c.pending = append(c.pending, it)
	}
	c.jobs[j.id] = j
	c.pump()
	return j.id, nil
}

// JobStatus is the GET /job view of one job; Result carries the merged
// artifact (sweep) or the tuning result (tune) once the job is done.
type JobStatus struct {
	ID      string          `json:"id"`
	Kind    string          `json:"kind"`
	State   string          `json:"state"`
	Items   int             `json:"items"`
	Done    int             `json:"done"`
	Retries int             `json:"retries"`
	Error   string          `json:"error,omitempty"`
	Result  json.RawMessage `json:"result,omitempty"`
}

// Job snapshots one job's status ("" result until done).
func (c *Coordinator) Job(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return c.statusLocked(j), true
}

func (c *Coordinator) statusLocked(j *job) JobStatus {
	return JobStatus{
		ID: j.id, Kind: j.kind, State: j.state,
		Items: len(j.items), Done: j.done, Retries: j.retries,
		Error: j.err, Result: j.result,
	}
}

// WorkerStatus is the GET /status view of one worker.
type WorkerStatus struct {
	Addr  string `json:"addr"`
	State string `json:"state"` // idle | busy | dead
}

// Status is the GET /status payload.
type Status struct {
	Workers []WorkerStatus `json:"workers"`
	Jobs    []JobStatus    `json:"jobs"`
}

// Status snapshots the registry and every job, in stable order.
func (c *Coordinator) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	var st Status
	for _, addr := range c.sortedWorkersLocked() {
		w := c.workers[addr]
		state := "idle"
		switch {
		case w.dead:
			state = "dead"
		case w.busy != nil:
			state = "busy"
		}
		st.Workers = append(st.Workers, WorkerStatus{Addr: addr, State: state})
	}
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		st.Jobs = append(st.Jobs, c.statusLocked(c.jobs[id]))
	}
	return st
}

func (c *Coordinator) liveWorkersLocked() int {
	n := 0
	for _, w := range c.workers {
		if !w.dead {
			n++
		}
	}
	return n
}

func (c *Coordinator) sortedWorkersLocked() []string {
	addrs := make([]string, 0, len(c.workers))
	for a := range c.workers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs
}

// pump assigns pending work items to idle live workers. Callers hold c.mu.
// Workers are tried in address order so dispatch is deterministic given a
// registry state; the artifact does not depend on it either way (Merge
// re-sorts into corpus order).
func (c *Coordinator) pump() {
	if c.closed {
		return
	}
	for len(c.pending) > 0 {
		var w *workerState
		for _, addr := range c.sortedWorkersLocked() {
			cand := c.workers[addr]
			if !cand.dead && cand.busy == nil {
				w = cand
				break
			}
		}
		if w == nil {
			return // every live worker busy; itemDone/Register re-pump
		}
		it := c.pending[0]
		c.pending = c.pending[1:]
		if it.job.state == StateFailed || it.finished {
			continue
		}
		if it.job.state == StateQueued {
			it.job.state = StateRunning
		}
		w.busy = it
		go c.dispatch(w, it)
	}
}

// dispatch runs one work item on one worker and routes the outcome:
// transport failure → the worker is dead, the item is reassigned (no
// attempt burned); application failure → linear backoff, MaxAttempts
// attempts, 4xx is terminal (retrying a rejected request cannot succeed);
// success → the item's result is recorded and the job completed when it
// was the last.
func (c *Coordinator) dispatch(w *workerState, it *workItem) {
	path, body := "/run", []byte(nil)
	if it.job.kind == KindTune {
		path = "/tune"
		body = it.query
	} else {
		body, _ = json.Marshal(it.shard)
	}
	ctx, cancel := context.WithTimeout(context.Background(), c.opts.ItemTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.addr+path, bytes.NewReader(body))
	if err != nil {
		c.itemTransportFailed(w, it, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.opts.Client.Do(req)
	if err != nil {
		c.itemTransportFailed(w, it, err)
		return
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		c.itemTransportFailed(w, it, err)
		return
	}
	if resp.StatusCode != http.StatusOK {
		terminal := resp.StatusCode >= 400 && resp.StatusCode < 500
		c.itemAppFailed(w, it, fmt.Errorf("worker %s: %s: %s", w.addr, resp.Status, strings.TrimSpace(string(payload))), terminal)
		return
	}
	if it.job.kind == KindSweep {
		var rep harness.Report
		if err := json.Unmarshal(payload, &rep); err != nil {
			c.itemAppFailed(w, it, fmt.Errorf("worker %s: bad shard artifact: %v", w.addr, err), false)
			return
		}
		c.itemDone(w, it, &rep, nil)
		return
	}
	c.itemDone(w, it, nil, payload)
}

// itemTransportFailed marks the worker dead and reassigns the item. A
// worker that cannot be reached (or that died mid-sweep) burns no attempt:
// the item was never refused, just stranded.
func (c *Coordinator) itemTransportFailed(w *workerState, it *workItem, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.dead = true
	w.busy = nil
	if it.job.state == StateFailed || it.finished {
		return
	}
	it.job.retries++
	c.pending = append(c.pending, it)
	c.pump()
	_ = err // the retry, not the transcript, is the remedy; /status shows the dead worker
}

// itemAppFailed counts an application-level refusal against the item's
// attempt budget and schedules a linear-backoff retry; terminal failures
// (4xx) and exhausted budgets fail the whole job.
func (c *Coordinator) itemAppFailed(w *workerState, it *workItem, err error, terminal bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.busy = nil
	if it.job.state == StateFailed || it.finished {
		c.pump()
		return
	}
	it.attempts++
	if terminal || it.attempts >= c.opts.MaxAttempts {
		c.failJobLocked(it.job, err)
		c.pump()
		return
	}
	it.job.retries++
	delay := time.Duration(it.attempts) * c.opts.RetryDelay
	time.AfterFunc(delay, func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		if it.job.state == StateFailed || it.finished || c.closed {
			return
		}
		c.pending = append(c.pending, it)
		c.pump()
	})
	c.pump()
}

func (c *Coordinator) failJobLocked(j *job, err error) {
	if j.state == StateFailed || j.state == StateDone {
		return
	}
	j.state = StateFailed
	j.err = err.Error()
	close(j.doneCh)
}

// itemDone records one finished item and, when it was the job's last,
// completes the job — merging sweep shards in item order (harness.Merge
// then re-sorts outcomes into corpus order, so the merged artifact is
// deterministic no matter which worker finished when).
func (c *Coordinator) itemDone(w *workerState, it *workItem, rep *harness.Report, raw json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w.busy = nil
	if it.job.state == StateFailed || it.finished {
		c.pump()
		return
	}
	it.finished = true
	it.report = rep
	it.raw = raw
	j := it.job
	j.done++
	if j.done == len(j.items) {
		c.completeJobLocked(j)
	}
	c.pump()
}

func (c *Coordinator) completeJobLocked(j *job) {
	if j.kind == KindTune {
		j.result = j.items[0].raw
		j.state = StateDone
		close(j.doneCh)
		return
	}
	var merged *harness.Report
	var err error
	if len(j.items) == 1 {
		merged = j.items[0].report
	} else {
		reports := make([]*harness.Report, len(j.items))
		for i, it := range j.items {
			reports[i] = it.report
		}
		merged, err = harness.Merge(reports)
	}
	if err != nil {
		c.failJobLocked(j, fmt.Errorf("merge shards: %w", err))
		return
	}
	out, err := json.Marshal(merged)
	if err != nil {
		c.failJobLocked(j, fmt.Errorf("encode merged artifact: %w", err))
		return
	}
	j.result = out
	j.state = StateDone
	close(j.doneCh)
}

// reapLoop expires workers whose last heartbeat is older than the TTL and
// reassigns whatever they were running.
func (c *Coordinator) reapLoop() {
	interval := c.opts.withDefaults().HeartbeatTTL / 3
	if interval <= 0 {
		interval = time.Second
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-c.reapStop:
			return
		case <-t.C:
			c.reap()
		}
	}
}

func (c *Coordinator) reap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	cutoff := time.Now().Add(-c.opts.HeartbeatTTL)
	for _, w := range c.workers {
		if w.dead || !w.lastBeat.Before(cutoff) {
			continue
		}
		w.dead = true
		if it := w.busy; it != nil {
			w.busy = nil
			// The dispatch goroutine may still deliver late; itemDone's
			// finished check makes the first outcome win.
			if it.job.state != StateFailed && !it.finished {
				it.job.retries++
				c.pending = append(c.pending, it)
			}
		}
	}
	c.pump()
}

// Mux wires the coordinator's HTTP surface: POST /enqueue, GET /job?id=,
// GET /status, POST /register, POST /heartbeat, GET /healthz.
func (c *Coordinator) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/enqueue", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a job to /enqueue"))
			return
		}
		var req EnqueueRequest
		r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, fmt.Errorf("bad job: %w", err))
			return
		}
		id, err := c.Enqueue(req)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		writeJSON(w, map[string]string{"id": id})
	})
	mux.HandleFunc("/job", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.Job(r.URL.Query().Get("id"))
		if !ok {
			writeError(w, http.StatusNotFound, fmt.Errorf("unknown job %q", r.URL.Query().Get("id")))
			return
		}
		writeJSON(w, st)
	})
	mux.HandleFunc("/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Status())
	})
	mux.HandleFunc("/register", c.beatHandler(c.Register))
	mux.HandleFunc("/heartbeat", c.beatHandler(c.Heartbeat))
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

func (c *Coordinator) beatHandler(fn func(addr string)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			w.Header().Set("Allow", http.MethodPost)
			writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a worker address"))
			return
		}
		var body struct {
			Addr string `json:"addr"`
		}
		r.Body = http.MaxBytesReader(w, r.Body, 1<<16)
		if err := json.NewDecoder(r.Body).Decode(&body); err != nil || body.Addr == "" {
			writeError(w, http.StatusBadRequest, fmt.Errorf("body must be {\"addr\": \"http://host:port\"}"))
			return
		}
		fn(strings.TrimRight(body.Addr, "/"))
		writeJSON(w, map[string]string{"status": "ok"})
	}
}

// maxBodyBytes caps a coordinator or worker request body (16 MiB — three
// orders of magnitude above any real payload).
const maxBodyBytes = 16 << 20

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}
