package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/session"
	"repro/internal/workload"
)

// serve mounts a handler on an ephemeral listener and returns its base URL.
func serve(t *testing.T, h http.Handler) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := &http.Server{Handler: h, ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	return "http://" + ln.Addr().String()
}

// startCoordinator builds a coordinator (closed on test cleanup) and serves
// its mux.
func startCoordinator(t *testing.T, opts Options) (*Coordinator, string) {
	t.Helper()
	c := NewCoordinator(opts)
	t.Cleanup(c.Close)
	return c, serve(t, c.Mux())
}

// startWorker builds a worker over a session whose DiskStore lives in
// cacheDir ("" = private in-memory store) and serves its mux.
func startWorker(t *testing.T, cacheDir string) (*Worker, string) {
	t.Helper()
	var store exec.VariantStore
	if cacheDir != "" {
		var err error
		store, err = exec.NewDiskStore(cacheDir)
		if err != nil {
			t.Fatal(err)
		}
	}
	sess, err := session.New(session.Options{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(sess)
	return w, serve(t, w.Mux())
}

// normalize strips the volatile counters — wall time and cache/verify
// economics — that legitimately differ between a fleet sweep and a
// single-process sweep. Everything else must agree byte for byte.
func normalize(t *testing.T, rep *harness.Report) string {
	t.Helper()
	clone := *rep
	clone.Summary.SweepWallNs = 0
	clone.Summary.VariantsCompiled = 0
	clone.Summary.CacheHits = 0
	clone.Summary.DiskHits = 0
	clone.Summary.VerifiedVariants = 0
	clone.Summary.VerifySkipped = 0
	clone.Summary.VerifyWallNs = 0
	b, err := json.Marshal(&clone)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// singleProcess sweeps the same truncated corpus in-process — the
// equivalence baseline every fleet artifact is held to.
func singleProcess(t *testing.T, spec SweepSpec) *harness.Report {
	t.Helper()
	sess, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunShard(sess, ShardRequest{Sweep: spec, Shard: "0/1"})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// testSpec is the truncated tuned+verified sweep the e2e tests dispatch:
// 5 scenarios over 2 shards, deliberately not divisible.
func testSpec() SweepSpec {
	return SweepSpec{Limit: 5, Tune: true, Verify: true, Shards: 2}
}

// TestFleetSweepMatchesSingleProcess is the tentpole equivalence contract:
// two workers sharing one on-disk variant store sweep the shards of a
// tuned, verified corpus, and the coordinator's merged artifact is
// byte-identical to a single-process sweep modulo the volatile counters.
func TestFleetSweepMatchesSingleProcess(t *testing.T) {
	dir := t.TempDir()
	_, coordURL := startCoordinator(t, Options{})
	_, w1 := startWorker(t, dir)
	_, w2 := startWorker(t, dir)
	client := &Client{Base: coordURL, Poll: 20 * time.Millisecond}
	for _, addr := range []string{w1, w2} {
		register(t, coordURL, addr)
	}

	spec := testSpec()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	fleetRep, err := client.RunSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !fleetRep.Verify {
		t.Error("fleet artifact dropped the verify flag")
	}
	if fleetRep.Summary.VerifyFailures != 0 {
		t.Errorf("fleet sweep reported %d verify failures", fleetRep.Summary.VerifyFailures)
	}
	if got, want := fleetRep.Summary.Scenarios, spec.Limit; got != want {
		t.Fatalf("fleet artifact covers %d scenarios, want %d", got, want)
	}

	local := singleProcess(t, spec)
	if a, b := normalize(t, fleetRep), normalize(t, local); a != b {
		t.Errorf("fleet artifact differs from the single-process sweep:\n%s\nvs\n%s", a, b)
	}
}

// register announces a worker address to the coordinator over the wire (the
// same POST /register a fleetd worker sends).
func register(t *testing.T, coordURL, workerURL string) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"addr": workerURL})
	resp, err := http.Post(coordURL+"/register", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /register = %d, want 200", resp.StatusCode)
	}
}

// killingHandler wraps a worker mux and kills the TCP connection of the
// first /run request — a worker dying mid-shard, as seen from the
// coordinator: a transport error with no response.
type killingHandler struct {
	inner  http.Handler
	killed atomic.Bool
}

func (k *killingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == "/run" && !k.killed.Swap(true) {
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
		return
	}
	k.inner.ServeHTTP(w, r)
}

// TestFleetReassignsDeadWorkers: a worker that dies mid-shard and a worker
// that was never reachable both get their items reassigned to the
// surviving worker, and the final artifact is still complete and identical
// to the single-process sweep.
func TestFleetReassignsDeadWorkers(t *testing.T) {
	dir := t.TempDir()
	coord, coordURL := startCoordinator(t, Options{})
	_, healthy := startWorker(t, dir)
	killer, _ := startWorker(t, dir)
	killerURL := serve(t, &killingHandler{inner: killer.Mux()})

	// A dead address: reserve a port, then close it so dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadURL := "http://" + ln.Addr().String()
	ln.Close()

	for _, addr := range []string{deadURL, killerURL, healthy} {
		register(t, coordURL, addr)
	}

	spec := testSpec()
	client := &Client{Base: coordURL, Poll: 20 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	fleetRep, err := client.RunSweep(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fleetRep.Summary.Scenarios, spec.Limit; got != want {
		t.Fatalf("artifact covers %d scenarios after reassignment, want %d", got, want)
	}
	local := singleProcess(t, spec)
	if a, b := normalize(t, fleetRep), normalize(t, local); a != b {
		t.Errorf("post-reassignment artifact differs from the single-process sweep:\n%s\nvs\n%s", a, b)
	}

	st := coord.Status()
	dead := map[string]bool{}
	for _, w := range st.Workers {
		if w.State == "dead" {
			dead[w.Addr] = true
		}
	}
	if !dead[deadURL] {
		t.Error("unreachable worker not marked dead")
	}
	if !dead[killerURL] {
		t.Error("mid-shard-killed worker not marked dead")
	}
	if len(st.Jobs) != 1 || st.Jobs[0].Retries == 0 {
		t.Errorf("job status %+v, want one job with retries > 0", st.Jobs)
	}
}

// TestFleetTuneJob: a tune job dispatched through the coordinator returns
// the same chosen plan a local session search finds.
func TestFleetTuneJob(t *testing.T) {
	_, coordURL := startCoordinator(t, Options{})
	worker, workerURL := startWorker(t, "")
	register(t, coordURL, workerURL)

	q := session.Query{
		Source:  workload.DirectSource(workload.DirectParams{NX: 4096, NP: 4}),
		Machine: "mpich-gm-2005",
		NP:      4,
	}
	client := &Client{Base: coordURL, Poll: 20 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	res, err := client.RunTune(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.MemoHit {
		t.Error("cold fleet tune reported a memo hit")
	}
	if res.Choice.Plan == nil || len(res.Choice.Plan.Sites) == 0 {
		t.Fatal("fleet tune returned no plan")
	}
	if worker.Session().Stats().Store.Compiled == 0 {
		t.Error("worker compiled nothing — the search did not run there")
	}

	sess, err := session.New(session.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := sess.Plan(q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Choice.Plan.Key() != local.Choice.Plan.Key() {
		t.Errorf("fleet plan %s differs from local plan %s", res.Choice.Plan.Key(), local.Choice.Plan.Key())
	}
	if res.Fingerprint != local.Fingerprint {
		t.Errorf("fleet fingerprint %q differs from local %q", res.Fingerprint, local.Fingerprint)
	}
}

// TestEnqueueValidationAndClamp: malformed jobs are rejected; the shard
// count is clamped to the corpus size so no work item is ever empty.
func TestEnqueueValidationAndClamp(t *testing.T) {
	c := NewCoordinator(Options{})
	defer c.Close()
	for _, req := range []EnqueueRequest{
		{Kind: "nonsense"},
		{Kind: KindSweep},
		{Kind: KindTune},
	} {
		if _, err := c.Enqueue(req); err == nil {
			t.Errorf("Enqueue(%+v) succeeded, want error", req)
		}
	}
	id, err := c.Enqueue(EnqueueRequest{Kind: KindSweep, Sweep: &SweepSpec{Limit: 3, Shards: 10}})
	if err != nil {
		t.Fatal(err)
	}
	st, ok := c.Job(id)
	if !ok {
		t.Fatal("enqueued job not found")
	}
	if st.Items != 3 {
		t.Errorf("10 shards over a 3-scenario corpus produced %d items, want 3 (clamped)", st.Items)
	}
	if st.State != StateQueued {
		t.Errorf("job with no workers is %q, want %q", st.State, StateQueued)
	}
}

// TestAnnounceAndReaper: Announce registers a worker and keeps it live;
// once the announcer stops, the TTL reaper marks it dead.
func TestAnnounceAndReaper(t *testing.T) {
	coord, coordURL := startCoordinator(t, Options{HeartbeatTTL: 150 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	go Announce(ctx, nil, coordURL, "http://127.0.0.1:9", 20*time.Millisecond)

	deadline := time.Now().Add(5 * time.Second)
	for {
		st := coord.Status()
		if len(st.Workers) == 1 && st.Workers[0].State == "idle" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never registered: %+v", st.Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}

	cancel() // heartbeats stop; the reaper must notice
	deadline = time.Now().Add(5 * time.Second)
	for {
		st := coord.Status()
		if len(st.Workers) == 1 && st.Workers[0].State == "dead" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("silent worker never reaped: %+v", st.Workers)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
