package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/session"
)

// Client talks to a coordinator: enqueue a job, poll it to completion,
// decode the result. This is the `evalrunner -fleet` and planserver
// dispatch path.
type Client struct {
	// Base is the coordinator base URL, e.g. "http://127.0.0.1:8790".
	Base string
	// HTTP issues the requests; nil selects a fresh client with a short
	// per-request timeout (polling requests are cheap; the sweep itself
	// runs server-side).
	HTTP *http.Client
	// Poll is the job-status polling interval; <= 0 selects 200ms.
	Poll time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

func (c *Client) base() string { return strings.TrimRight(c.Base, "/") }

// Enqueue submits a job and returns its ID.
func (c *Client) Enqueue(ctx context.Context, req EnqueueRequest) (string, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return "", fmt.Errorf("fleet: encode job: %w", err)
	}
	payload, err := c.post(ctx, "/enqueue", body)
	if err != nil {
		return "", err
	}
	var resp struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(payload, &resp); err != nil || resp.ID == "" {
		return "", fmt.Errorf("fleet: coordinator returned no job id")
	}
	return resp.ID, nil
}

// Job fetches one job's status.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	payload, err := c.get(ctx, "/job?id="+id)
	if err != nil {
		return nil, err
	}
	var st JobStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("fleet: bad job status: %w", err)
	}
	return &st, nil
}

// Status fetches the coordinator's registry-and-jobs snapshot.
func (c *Client) Status(ctx context.Context) (*Status, error) {
	payload, err := c.get(ctx, "/status")
	if err != nil {
		return nil, err
	}
	var st Status
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("fleet: bad status: %w", err)
	}
	return &st, nil
}

// Wait polls a job until it completes (or the context expires) and returns
// its terminal status; a failed job is an error carrying the job's message.
func (c *Client) Wait(ctx context.Context, id string) (*JobStatus, error) {
	poll := c.Poll
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch st.State {
		case StateDone:
			return st, nil
		case StateFailed:
			return st, fmt.Errorf("fleet: job %s failed: %s", id, st.Error)
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: waiting for job %s: %w", id, ctx.Err())
		case <-t.C:
		}
	}
}

// RunSweep dispatches a sweep through the fleet and returns the merged
// artifact.
func (c *Client) RunSweep(ctx context.Context, spec SweepSpec) (*harness.Report, error) {
	id, err := c.Enqueue(ctx, EnqueueRequest{Kind: KindSweep, Sweep: &spec})
	if err != nil {
		return nil, err
	}
	st, err := c.Wait(ctx, id)
	if err != nil {
		return nil, err
	}
	var rep harness.Report
	if err := json.Unmarshal(st.Result, &rep); err != nil {
		return nil, fmt.Errorf("fleet: bad merged artifact: %w", err)
	}
	if rep.Schema != harness.Schema {
		return nil, fmt.Errorf("fleet: merged artifact has schema %q, want %q", rep.Schema, harness.Schema)
	}
	return &rep, nil
}

// RunTune dispatches one tuning query through the fleet and returns the
// worker's result.
func (c *Client) RunTune(ctx context.Context, q session.Query) (*session.Result, error) {
	id, err := c.Enqueue(ctx, EnqueueRequest{Kind: KindTune, Tune: &q})
	if err != nil {
		return nil, err
	}
	st, err := c.Wait(ctx, id)
	if err != nil {
		return nil, err
	}
	var res session.Result
	if err := json.Unmarshal(st.Result, &res); err != nil {
		return nil, fmt.Errorf("fleet: bad tuning result: %w", err)
	}
	return &res, nil
}

func (c *Client) post(ctx context.Context, path string, body []byte) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base()+path, bytes.NewReader(body))
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req)
}

func (c *Client) get(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base()+path, nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return c.do(req)
}

func (c *Client) do(req *http.Request) ([]byte, error) {
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: coordinator %s: %w", req.URL.Path, err)
	}
	defer resp.Body.Close()
	payload, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("fleet: coordinator %s: %w", req.URL.Path, err)
	}
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(payload, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("fleet: coordinator %s: %s", req.URL.Path, e.Error)
		}
		return nil, fmt.Errorf("fleet: coordinator %s: %s", req.URL.Path, resp.Status)
	}
	return payload, nil
}
