package analysis

import (
	"repro/internal/access"
	"repro/internal/dep"
	"repro/internal/ftn"
)

// FindOpportunities locates every transformable MPI_ALLTOALL site in the
// file's program unit, per §3.1. Sites that cannot be transformed are
// reported as RejectionErrors in the second result; analysis of one site
// never prevents analysis of another.
func FindOpportunities(file *ftn.File, opts Options) ([]*Opportunity, []error) {
	if opts.Oracle == nil {
		opts.Oracle = NoOracle{}
	}
	unit := file.Program()
	if unit == nil {
		return nil, []error{reject(ftn.Pos{}, "no program unit in file")}
	}
	var ops []*Opportunity
	var errs []error

	// Walk every statement list; conditionals are excluded per the paper
	// ("the last loop nest not in a conditional statement").
	var walkLists func(list *[]ftn.Stmt, inConditional bool)
	walkLists = func(list *[]ftn.Stmt, inConditional bool) {
		for i, s := range *list {
			switch s := s.(type) {
			case *ftn.CallStmt:
				if s.Name != "mpi_alltoall" {
					continue
				}
				if inConditional {
					errs = append(errs, reject(s.Pos(), "MPI_ALLTOALL inside a conditional"))
					continue
				}
				op, err := analyzeSite(file, unit, list, i, opts)
				if err != nil {
					errs = append(errs, err)
					continue
				}
				ops = append(ops, op)
			case *ftn.DoStmt:
				walkLists(&s.Body, inConditional)
			case *ftn.IfStmt:
				walkLists(&s.Then, true)
				walkLists(&s.Else, true)
			}
		}
	}
	walkLists(&unit.Body, false)
	return ops, errs
}

// analyzeSite runs the full per-site analysis pipeline for the call at
// (*list)[callIdx].
func analyzeSite(file *ftn.File, unit *ftn.Unit, list *[]ftn.Stmt, callIdx int, opts Options) (*Opportunity, error) {
	call := (*list)[callIdx].(*ftn.CallStmt)
	ac, err := parseAlltoall(call)
	if err != nil {
		return nil, err
	}

	op := &Opportunity{
		Unit:      unit,
		Call:      *ac,
		Parent:    list,
		CallIndex: callIdx,
		LIndex:    -1,
		InitIdx:   -1,
	}
	gatherUnitFacts(op, unit, opts)

	if len(op.AsDims) == 0 {
		return nil, reject(call.Pos(), "send buffer %s is not a declared array", ac.As)
	}
	if len(op.ArDims) == 0 {
		return nil, reject(call.Pos(), "receive buffer %s is not a declared array", ac.Ar)
	}

	// Locate ℓ: the last loop nest, not in a conditional, lexically
	// preceding C in the same statement list, that mutates As (§3.1).
	candidates := 0
	for i := callIdx - 1; i >= 0; i-- {
		if _, ok := (*list)[i].(*ftn.DoStmt); ok {
			candidates++
		}
	}
	for i := callIdx - 1; i >= 0; i-- {
		do, ok := (*list)[i].(*ftn.DoStmt)
		if !ok {
			continue
		}
		mut, semi, known := mutatesArray(file, do.Body, ac.As, opts.Oracle)
		if !known {
			// Unavailable source and no oracle answer: the paper's
			// conservative rule applies only when this is the only
			// candidate loop.
			if candidates == 1 {
				op.note("assuming loop at %s mutates %s (only candidate; conservative)", do.Pos(), ac.As)
				mut = true
			} else {
				op.note("skipping loop at %s: cannot decide whether it mutates %s", do.Pos(), ac.As)
				continue
			}
		}
		if semi {
			op.SemiAuto = true
		}
		if mut {
			op.L = do
			op.LIndex = i
			break
		}
	}
	if op.L == nil {
		return nil, reject(call.Pos(), "no loop nest preceding the call mutates %s", ac.As)
	}

	// Ar must not be consumed between ℓ and C, nor inside ℓ: the receives
	// are posted inside ℓ, so any earlier use would read unarrived data
	// (§3.1's "earliest safe receive point").
	if pos, used := arrayUsedBetween(unit.Body, ac.Ar, op.L, call); used {
		return nil, reject(pos, "receive array %s is used before the ALLTOALL completes", ac.Ar)
	}

	// Classify the compute-copy pattern and run the per-pattern analyses.
	if err := classifyPattern(file, op, opts); err != nil {
		return nil, err
	}
	return op, nil
}

// parseAlltoall validates and destructures the call's 8 arguments.
func parseAlltoall(call *ftn.CallStmt) (*AlltoallCall, error) {
	if len(call.Args) != 8 {
		return nil, reject(call.Pos(), "MPI_ALLTOALL has %d arguments, want 8", len(call.Args))
	}
	asName, ok := bufferName(call.Args[0])
	if !ok {
		return nil, reject(call.Pos(), "send buffer argument is not a plain array name")
	}
	arName, ok := bufferName(call.Args[3])
	if !ok {
		return nil, reject(call.Pos(), "receive buffer argument is not a plain array name")
	}
	return &AlltoallCall{
		Stmt:      call,
		As:        asName,
		Ar:        arName,
		SendCount: call.Args[1],
		SendType:  call.Args[2],
		RecvCount: call.Args[4],
		RecvType:  call.Args[5],
		Comm:      call.Args[6],
		Ierr:      call.Args[7],
	}, nil
}

// bufferName extracts the array name from a buffer argument (a bare name or
// a whole-array starting reference like as(1) / as(1,1)).
func bufferName(e ftn.Expr) (string, bool) {
	switch e := e.(type) {
	case *ftn.Ident:
		return e.Name, true
	case *ftn.Ref:
		return e.Name, true
	}
	return "", false
}

// gatherUnitFacts fills the environment-facts fields of op.
func gatherUnitFacts(op *Opportunity, unit *ftn.Unit, opts Options) {
	st := ftn.Symbols(unit)
	op.Consts = map[string]int64{}
	op.Arrays = map[string]bool{}
	for _, name := range st.Names() {
		sym := st.Lookup(name)
		if sym.IsArray() {
			op.Arrays[name] = true
		}
		if sym.Parameter && sym.Init != nil {
			if v, ok := EvalInt(sym.Init, op.Consts); ok {
				op.Consts[name] = v
			}
		}
	}
	// Parameters may reference each other; a second pass resolves chains.
	for pass := 0; pass < 3; pass++ {
		for _, name := range st.Names() {
			sym := st.Lookup(name)
			if sym.Parameter && sym.Init != nil {
				if v, ok := EvalInt(sym.Init, op.Consts); ok {
					op.Consts[name] = v
				}
			}
		}
	}
	if opts.NP > 0 {
		op.Consts["$np"] = int64(opts.NP)
	}
	op.AsDims = declTriplets(st, op.Call.As, op.Consts)
	op.ArDims = declTriplets(st, op.Call.Ar, op.Consts)

	// Find the rank/size variables and the mpi_init position.
	for i, s := range unit.Body {
		call, ok := s.(*ftn.CallStmt)
		if !ok {
			continue
		}
		switch call.Name {
		case "mpi_init":
			op.InitIdx = i
		case "mpi_comm_rank":
			if len(call.Args) >= 2 {
				if id, ok := call.Args[1].(*ftn.Ident); ok {
					op.RankVar = id.Name
				}
			}
		case "mpi_comm_size":
			if len(call.Args) >= 2 {
				if id, ok := call.Args[1].(*ftn.Ident); ok {
					op.SizeVar = id.Name
				}
			}
		}
	}
}

// declTriplets converts a symbol's declared dims to access triplets.
func declTriplets(st *ftn.SymbolTable, name string, consts map[string]int64) []access.Triplet {
	sym := st.Lookup(name)
	if sym == nil || !sym.IsArray() {
		return nil
	}
	env := &dep.Env{LoopVars: map[string]bool{}, Consts: consts}
	out := make([]access.Triplet, 0, len(sym.Dims))
	for _, d := range sym.Dims {
		var lo, hi dep.Affine
		if d.Lo == nil {
			lo = dep.NewAffine(1)
		} else if a, ok := dep.FromExpr(d.Lo, env); ok {
			lo = a
		} else {
			lo = dep.NewAffine(0)
			lo.Syms["?lo:"+name] = 1
		}
		if d.Hi == nil {
			hi = dep.NewAffine(0)
			hi.Syms["?assumed:"+name] = 1
		} else if a, ok := dep.FromExpr(d.Hi, env); ok {
			hi = a
		} else {
			hi = dep.NewAffine(0)
			hi.Syms["?hi:"+name] = 1
		}
		out = append(out, access.Triplet{Lo: lo, Hi: hi})
	}
	return out
}

// mutatesArray decides whether the statements may write array (§3.1):
// directly via assignment, or indirectly by passing it to a procedure.
// Results: mutates; semiAuto (oracle consulted); known (decided at all).
func mutatesArray(file *ftn.File, stmts []ftn.Stmt, array string, oracle Oracle) (bool, bool, bool) {
	mutates := false
	semi := false
	known := true
	ftn.Inspect(stmts, func(s ftn.Stmt) bool {
		switch s := s.(type) {
		case *ftn.AssignStmt:
			if ref, ok := s.LHS.(*ftn.Ref); ok && ref.Name == array {
				mutates = true
			}
			if id, ok := s.LHS.(*ftn.Ident); ok && id.Name == array {
				mutates = true
			}
		case *ftn.CallStmt:
			argPos := -1
			for i, a := range s.Args {
				if n, ok := bufferName(a); ok && n == array {
					argPos = i
					break
				}
			}
			if argPos < 0 {
				return true
			}
			// The source of the callee may be available in this file.
			if sub := file.Subroutine(s.Name); sub != nil {
				if argPos < len(sub.Params) {
					if subWrites(file, sub, sub.Params[argPos], map[string]bool{}) {
						mutates = true
					}
					return true
				}
			}
			// Unavailable source: query the user (semi-automatic mode).
			if w, answered := oracle.ProcedureWrites(s.Name, array); answered {
				semi = true
				if w {
					mutates = true
				}
				return true
			}
			known = false
		}
		return true
	})
	return mutates, semi, known
}

// subWrites reports whether unit writes (directly or transitively) through
// the dummy argument named dummy.
func subWrites(file *ftn.File, unit *ftn.Unit, dummy string, visited map[string]bool) bool {
	key := unit.Name + ":" + dummy
	if visited[key] {
		return false
	}
	visited[key] = true
	writes := false
	ftn.Inspect(unit.Body, func(s ftn.Stmt) bool {
		switch s := s.(type) {
		case *ftn.AssignStmt:
			if ref, ok := s.LHS.(*ftn.Ref); ok && ref.Name == dummy {
				writes = true
			}
			if id, ok := s.LHS.(*ftn.Ident); ok && id.Name == dummy {
				writes = true
			}
		case *ftn.CallStmt:
			for i, a := range s.Args {
				if n, ok := bufferName(a); ok && n == dummy {
					if callee := file.Subroutine(s.Name); callee != nil && i < len(callee.Params) {
						if subWrites(file, callee, callee.Params[i], visited) {
							writes = true
						}
					} else {
						// Unknown callee: conservative.
						writes = true
					}
				}
			}
		}
		return true
	})
	return writes
}

// arrayUsedBetween reports any use of array between the end of l and the
// call c in execution order (conservatively: any lexical reference in the
// unit body that is not inside l and not the call itself, appearing before
// c).
func arrayUsedBetween(body []ftn.Stmt, array string, l *ftn.DoStmt, c *ftn.CallStmt) (ftn.Pos, bool) {
	found := false
	var at ftn.Pos
	reached := false
	var walk func(stmts []ftn.Stmt)
	walk = func(stmts []ftn.Stmt) {
		for _, s := range stmts {
			if reached || found {
				return
			}
			if s == ftn.Stmt(l) {
				continue // uses inside ℓ are part of production, checked elsewhere
			}
			if cs, ok := s.(*ftn.CallStmt); ok && cs == c {
				reached = true
				return
			}
			for _, e := range ftn.StmtExprs(s) {
				ftn.WalkExpr(e, func(n ftn.Expr) bool {
					switch n := n.(type) {
					case *ftn.Ident:
						if n.Name == array {
							found = true
							at = n.Pos()
						}
					case *ftn.Ref:
						if n.Name == array {
							found = true
							at = n.Pos()
						}
					}
					return !found
				})
			}
			switch s := s.(type) {
			case *ftn.DoStmt:
				walk(s.Body)
			case *ftn.IfStmt:
				walk(s.Then)
				walk(s.Else)
			}
		}
	}
	walk(body)
	return at, found
}
