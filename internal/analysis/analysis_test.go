package analysis

import (
	"strings"
	"testing"

	"repro/internal/ftn"
)

// directSrc is the paper's Fig. 2(a) shape: 1-D As, inner computation loop,
// ALLTOALL inside an outer iteration loop.
const directSrc = `
program direct
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 64
  integer, parameter :: np = 8
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, iy, ierr, me, nprocs

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  call mpi_comm_size(mpi_comm_world, nprocs, ierr)
  do iy = 1, nx
    do ix = 1, nx
      as(ix) = ix + iy + me
    enddo
    call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
  enddo
  call mpi_finalize(ierr)
end program direct
`

// nodeInnerSrc has a 2-D As whose last dimension is traversed by the inner
// loop: the Fig. 4 all-peers case.
const nodeInnerSrc = `
program inner
  implicit none
  integer, parameter :: ny = 16
  integer, parameter :: sz = 8
  integer as(1:ny, 1:sz)
  integer ar(1:ny, 1:sz)
  integer iy, inode, ierr

  do iy = 1, ny
    do inode = 1, sz
      as(iy, inode) = iy*100 + inode
    enddo
  enddo
  call mpi_alltoall(as, ny*sz/4, mpi_integer, ar, ny*sz/4, mpi_integer, mpi_comm_world, ierr)
end program inner
`

// indirectSrc is the paper's Fig. 3(a) shape, with well-defined 1-based
// index arithmetic.
const indirectSrc = `
program indirect
  implicit none
  integer, parameter :: n = 4
  integer as(1:n, 1:n, 1:n)
  integer ar(1:n, 1:n, 1:n)
  integer at(1:16)
  integer iy, ix, tx, ty, ierr

  do iy = 1, n
    call p(iy, at)
    do ix = 1, 16
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1)/n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, 16, mpi_integer, ar, 16, mpi_integer, mpi_comm_world, ierr)
end program indirect

subroutine p(iy, at)
  integer iy
  integer at(*)
  integer i
  do i = 1, 16
    at(i) = i*1000 + iy
  enddo
end subroutine p
`

func findOps(t *testing.T, src string, opts Options) ([]*Opportunity, []error) {
	t.Helper()
	f, err := ftn.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return FindOpportunities(f, opts)
}

func TestFindDirectOpportunity(t *testing.T) {
	ops, errs := findOps(t, directSrc, Options{})
	if len(errs) > 0 {
		t.Fatalf("unexpected rejections: %v", errs)
	}
	if len(ops) != 1 {
		t.Fatalf("opportunities = %d, want 1", len(ops))
	}
	op := ops[0]
	if op.Pattern != PatternDirect {
		t.Errorf("pattern = %v, want direct", op.Pattern)
	}
	if op.Call.As != "as" || op.Call.Ar != "ar" {
		t.Errorf("As/Ar = %s/%s", op.Call.As, op.Call.Ar)
	}
	if op.L == nil || op.L.Var != "ix" {
		t.Fatalf("ℓ should be the inner ix loop, got %+v", op.L)
	}
	if len(op.SafeRefs) != 1 {
		t.Errorf("safe refs = %d, want 1", len(op.SafeRefs))
	}
	if op.NodeCase != NodeLoopOutermost {
		t.Errorf("node case = %v, want outermost (1-D As)", op.NodeCase)
	}
	if op.InterchangeOK {
		t.Error("no inner loop to interchange with")
	}
	if op.RankVar != "me" || op.SizeVar != "nprocs" {
		t.Errorf("rank/size vars = %q/%q", op.RankVar, op.SizeVar)
	}
	if op.Consts["nx"] != 64 || op.Consts["np"] != 8 {
		t.Errorf("consts = %v", op.Consts)
	}
}

func TestFindNodeLoopInner(t *testing.T) {
	ops, errs := findOps(t, nodeInnerSrc, Options{})
	if len(errs) > 0 {
		t.Fatalf("unexpected rejections: %v", errs)
	}
	if len(ops) != 1 {
		t.Fatalf("opportunities = %d, want 1", len(ops))
	}
	op := ops[0]
	if op.Pattern != PatternDirect {
		t.Errorf("pattern = %v", op.Pattern)
	}
	if op.NodeCase != NodeLoopInner {
		t.Errorf("node case = %v, want inner", op.NodeCase)
	}
	if op.NodeLoopLevel != 1 {
		t.Errorf("node level = %d, want 1", op.NodeLoopLevel)
	}
}

func TestFindIndirectOpportunity(t *testing.T) {
	ops, errs := findOps(t, indirectSrc, Options{})
	if len(errs) > 0 {
		t.Fatalf("unexpected rejections: %v", errs)
	}
	if len(ops) != 1 {
		t.Fatalf("opportunities = %d, want 1", len(ops))
	}
	op := ops[0]
	if op.Pattern != PatternIndirect {
		t.Fatalf("pattern = %v, want indirect", op.Pattern)
	}
	cl := op.CopyLoop
	if cl == nil {
		t.Fatal("no copy loop recognized")
	}
	if cl.At != "at" {
		t.Errorf("At = %q", cl.At)
	}
	if cl.Count != 16 {
		t.Errorf("Count = %d, want 16", cl.Count)
	}
	if cl.Call == nil || cl.Call.Name != "p" {
		t.Errorf("fill call = %+v", cl.Call)
	}
	if cl.CallArgPos != 1 {
		t.Errorf("call arg pos = %d, want 1", cl.CallArgPos)
	}
	if op.NodeCase != NodeLoopOutermost {
		t.Errorf("node case = %v", op.NodeCase)
	}
}

func TestRejectBadSlabMapping(t *testing.T) {
	// Transposed copy: element order within the slab is permuted in a way
	// that is NOT the identity linearization (row-major traversal of a
	// column-major array), so the whole-slab check must fail.
	src := `
program bad
  implicit none
  integer, parameter :: n = 4
  integer as(1:n, 1:n, 1:n)
  integer ar(1:n, 1:n, 1:n)
  integer at(1:16)
  integer iy, ix, tx, ty, ierr

  do iy = 1, n
    call p(iy, at)
    do ix = 1, 16
      tx = (ix - 1)/n + 1
      ty = mod(ix - 1, n) + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, 16, mpi_integer, ar, 16, mpi_integer, mpi_comm_world, ierr)
end program bad

subroutine p(iy, at)
  integer iy
  integer at(*)
  at(1) = iy
end subroutine p
`
	ops, errs := findOps(t, src, Options{})
	if len(ops) != 0 {
		t.Fatalf("transposed copy should be rejected, got %d ops", len(ops))
	}
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "whole-slab") {
		t.Errorf("errors = %v, want whole-slab rejection", errs)
	}
}

func TestRejectConditionalAlltoall(t *testing.T) {
	src := `
program p
  integer as(1:8), ar(1:8), i, ierr
  do i = 1, 8
    as(i) = i
  enddo
  if (i > 0) then
    call mpi_alltoall(as, 1, mpi_integer, ar, 1, mpi_integer, mpi_comm_world, ierr)
  endif
end program p
`
	ops, errs := findOps(t, src, Options{})
	if len(ops) != 0 {
		t.Fatal("conditional call should be rejected")
	}
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "conditional") {
		t.Errorf("errors = %v", errs)
	}
}

func TestRejectConditionalWrite(t *testing.T) {
	src := `
program p
  integer as(1:8), ar(1:8), i, ierr
  do i = 1, 8
    if (i > 4) then
      as(i) = i
    else
      as(i) = -i
    endif
  enddo
  call mpi_alltoall(as, 1, mpi_integer, ar, 1, mpi_integer, mpi_comm_world, ierr)
end program p
`
	ops, errs := findOps(t, src, Options{})
	if len(ops) != 0 {
		t.Fatal("conditional write should be rejected")
	}
	joined := ""
	for _, e := range errs {
		joined += e.Error()
	}
	if !strings.Contains(joined, "conditional write") && !strings.Contains(joined, "no writes") {
		t.Errorf("errors = %v", errs)
	}
}

func TestRejectArUsedBeforeCall(t *testing.T) {
	src := `
program p
  integer as(1:8), ar(1:8), i, x, ierr
  do i = 1, 8
    as(i) = i
  enddo
  x = ar(3)
  call mpi_alltoall(as, 1, mpi_integer, ar, 1, mpi_integer, mpi_comm_world, ierr)
end program p
`
	ops, errs := findOps(t, src, Options{})
	if len(ops) != 0 {
		t.Fatal("early Ar use should be rejected")
	}
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "used before") {
		t.Errorf("errors = %v", errs)
	}
}

func TestRejectUnsafeOverwrites(t *testing.T) {
	// Every element is written twice: no safe references.
	src := `
program p
  integer as(1:8), ar(1:8), i, j, ierr
  do j = 1, 2
    do i = 1, 8
      as(i) = i*j
    enddo
  enddo
  call mpi_alltoall(as, 1, mpi_integer, ar, 1, mpi_integer, mpi_comm_world, ierr)
end program p
`
	ops, errs := findOps(t, src, Options{})
	if len(ops) != 0 {
		t.Fatal("overwriting nest should be rejected")
	}
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "safe") {
		t.Errorf("errors = %v", errs)
	}
}

func TestOracleSemiAutomatic(t *testing.T) {
	// The mutating call's source is not in the file; with two candidate
	// loops, the site is transformable only when the oracle answers.
	src := `
program p
  integer as(1:8), ar(1:8), other(1:8), i, ierr
  do i = 1, 8
    other(i) = i
  enddo
  do i = 1, 8
    call fill(as, i)
  enddo
  call mpi_alltoall(as, 1, mpi_integer, ar, 1, mpi_integer, mpi_comm_world, ierr)
end program p
`
	// Without an oracle: the fill loop cannot be decided, the other loop
	// does not mutate as -> no opportunity.
	ops, _ := findOps(t, src, Options{})
	if len(ops) != 0 {
		t.Fatal("without oracle this site must be rejected")
	}
	// With an oracle saying fill writes as, ℓ is found; pattern analysis
	// then rejects (call-only mutation), but the semi-automatic flag and
	// the ℓ discovery are exercised.
	f, err := ftn.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	_, errs := FindOpportunities(f, Options{Oracle: MapOracle{"fill:as": true}})
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "procedure calls") {
		t.Errorf("want call-only rejection, got %v", errs)
	}
}

func TestConservativeOnlyLoopAssumption(t *testing.T) {
	// A single candidate loop whose mutation status is unknown is assumed
	// to be the mutator (paper §3.1), then rejected at pattern stage.
	src := `
program p
  integer as(1:8), ar(1:8), i, ierr
  do i = 1, 8
    call fill(as, i)
  enddo
  call mpi_alltoall(as, 1, mpi_integer, ar, 1, mpi_integer, mpi_comm_world, ierr)
end program p
`
	_, errs := findOps(t, src, Options{})
	if len(errs) == 0 || !strings.Contains(errs[0].Error(), "procedure calls") {
		t.Errorf("want conservative ℓ found then call-only rejection, got %v", errs)
	}
}

func TestInterchangeDetection(t *testing.T) {
	// Node loop (last dim of as) is the OUTER loop, but interchange with
	// the inner loop is legal (fully independent writes).
	src := `
program p
  implicit none
  integer, parameter :: n = 8
  integer as(1:n, 1:n)
  integer ar(1:n, 1:n)
  integer i, j, ierr
  do j = 1, n
    do i = 1, n
      as(i, j) = i + j*10
    enddo
  enddo
  call mpi_alltoall(as, n*n/4, mpi_integer, ar, n*n/4, mpi_integer, mpi_comm_world, ierr)
end program p
`
	ops, errs := findOps(t, src, Options{})
	if len(errs) > 0 {
		t.Fatalf("rejections: %v", errs)
	}
	if len(ops) != 1 {
		t.Fatalf("ops = %d", len(ops))
	}
	op := ops[0]
	if op.NodeCase != NodeLoopOutermost {
		t.Fatalf("node case = %v, want outermost", op.NodeCase)
	}
	if !op.InterchangeOK || op.InterchangeWith != 1 {
		t.Errorf("interchange = %v with %d, want true with 1", op.InterchangeOK, op.InterchangeWith)
	}
}

func TestEvalInt(t *testing.T) {
	env := map[string]int64{"n": 10}
	cases := []struct {
		src  string
		want int64
		ok   bool
	}{
		{"1 + 2*3", 7, true},
		{"mod(7, 3)", 1, true},
		{"(n - 1)/4 + 1", 3, true},
		{"-n", -10, true},
		{"2**5", 32, true},
		{"min(3, n)", 3, true},
		{"max(3, n)", 10, true},
		{"abs(3 - n)", 7, true},
		{"m + 1", 0, false},
		{"7/0", 0, false},
	}
	for _, c := range cases {
		f := ftn.MustParse("program p\nx = " + c.src + "\nend program p\n")
		e := f.Program().Body[0].(*ftn.AssignStmt).RHS
		got, ok := EvalInt(e, env)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("EvalInt(%q) = %d,%v want %d,%v", c.src, got, ok, c.want, c.ok)
		}
	}
}
