// Package analysis implements the program analyses of the paper's §3.1–§3.2
// and §3.5: locating transformation opportunities (the MPI_ALLTOALL call C,
// the send/receive arrays As/Ar, and the finalizing loop nest ℓ), deciding
// the compute-copy pattern (direct vs. indirect), recognizing the redundant
// copy loop ℓcp, and determining the node loop position.
package analysis

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/dep"
	"repro/internal/ftn"
)

// Pattern classifies how values reach the send array (§3.2).
type Pattern int

// Compute-copy patterns.
const (
	PatternUnknown  Pattern = iota
	PatternDirect           // As assigned directly; RHS not an array reference
	PatternIndirect         // As filled from a temporary At via a copy loop ℓcp
)

// String names the pattern.
func (p Pattern) String() string {
	switch p {
	case PatternDirect:
		return "direct"
	case PatternIndirect:
		return "indirect"
	}
	return "unknown"
}

// Oracle answers the semi-automatic questions of §3.1: whether a procedure
// with unavailable source writes through an array argument.
type Oracle interface {
	// ProcedureWrites reports whether procedure proc may write through the
	// argument holding array. answered=false means "no answer" (fully
	// automatic mode), forcing the conservative paths of the paper.
	ProcedureWrites(proc, array string) (writes, answered bool)
}

// MapOracle is an Oracle backed by explicit "proc:array" -> bool answers.
type MapOracle map[string]bool

// ProcedureWrites implements Oracle.
func (m MapOracle) ProcedureWrites(proc, array string) (bool, bool) {
	v, ok := m[proc+":"+array]
	return v, ok
}

// NoOracle answers nothing (fully automatic mode).
type NoOracle struct{}

// ProcedureWrites implements Oracle.
func (NoOracle) ProcedureWrites(string, string) (bool, bool) { return false, false }

// AlltoallCall is the parsed argument structure of C.
// MPI_ALLTOALL(sendbuf, sendcount, sendtype, recvbuf, recvcount, recvtype,
// comm, ierror).
type AlltoallCall struct {
	Stmt      *ftn.CallStmt
	As        string // send array name (arg 1)
	Ar        string // receive array name (arg 4)
	SendCount ftn.Expr
	SendType  ftn.Expr
	RecvCount ftn.Expr
	RecvType  ftn.Expr
	Comm      ftn.Expr
	Ierr      ftn.Expr
}

// CopyLoop describes a recognized ℓcp (§3.4): the loop copying the
// temporary At into As, the procedure call that fills At, and the verified
// mapping from At elements to As slabs.
type CopyLoop struct {
	Loop      *ftn.DoStmt // ℓcp itself
	LoopIndex int         // position of ℓcp within ℓ's body
	At        string      // source temporary array
	AtDims    []access.Triplet
	// Count is the number of elements copied per execution of ℓcp; the
	// verified mapping is: At element j lands at linear As offset
	// (iy - iyLo)·Count + (j - atLo), i.e. consecutive whole slabs.
	Count int64
	// Call is the procedure call that fills At (e.g. "call p(..., at)").
	Call       *ftn.CallStmt
	CallIndex  int // position of the call within ℓ's body
	CallArgPos int // position of At among the call's arguments
}

// NodeLoopCase describes where the node loop sits relative to the tiled
// loop (§3.5).
type NodeLoopCase int

// Node loop placements.
const (
	NodeLoopInner     NodeLoopCase = iota // node loop inside the tiled loop: Fig. 4 all-peers exchange
	NodeLoopOutermost                     // node loop is the tiled loop: interchange or subset sends
	NodeLoopAbsent                        // As's last dimension not traversed by ℓ (not transformable)
)

// String names the case.
func (c NodeLoopCase) String() string {
	switch c {
	case NodeLoopInner:
		return "inner"
	case NodeLoopOutermost:
		return "outermost"
	}
	return "absent"
}

// Opportunity is one transformable site: the call C, the loop nest ℓ, and
// everything the transformation needs to know about them.
type Opportunity struct {
	Unit *ftn.Unit
	Call AlltoallCall

	// Parent is the statement list containing both ℓ and C; LIndex and
	// CallIndex are their positions within it.
	Parent    *[]ftn.Stmt
	LIndex    int
	CallIndex int

	L *ftn.DoStmt // ℓ

	Pattern Pattern

	// Direct-pattern facts.
	Nest      *dep.NestInfo
	WriteRefs []*dep.Ref // affine write refs to As inside ℓ
	SafeRefs  []*dep.Ref // the §3.3 safe references among WriteRefs

	// Indirect-pattern facts.
	CopyLoop *CopyLoop

	// Node loop analysis.
	NodeCase        NodeLoopCase
	NodeLoopLevel   int  // level in ℓ's perfect chain that traverses As's last dim
	InterchangeWith int  // inner level to interchange with (valid when legal)
	InterchangeOK   bool // interchange legality when NodeLoopOutermost
	// InterchangeBlockElems estimates the contiguous elements per message
	// the post-interchange (Fig. 4) exchange would send, excluding the
	// factor K: the product of the extents of the array dimensions before
	// the one the new tiled variable subscripts. Interchanging a legal but
	// fragmenting candidate (tiny blocks) is worse than the subset-send
	// fallback, so the driver weighs this against the tile size.
	InterchangeBlockElems int64

	// Environment facts.
	Consts   map[string]int64 // named integer constants of the unit
	Arrays   map[string]bool  // declared arrays
	ArDims   []access.Triplet // declared dims of Ar
	AsDims   []access.Triplet // declared dims of As
	RankVar  string           // variable holding the MPI rank ("" if none)
	SizeVar  string           // variable holding the communicator size
	InitIdx  int              // body index just after mpi_init (-1 if absent)
	SemiAuto bool             // true when the oracle was consulted

	Notes []string // human-readable analysis notes
}

// note appends a formatted analysis note.
func (op *Opportunity) note(format string, args ...interface{}) {
	op.Notes = append(op.Notes, fmt.Sprintf(format, args...))
}

// Options configures the analysis.
type Options struct {
	Oracle Oracle
	// NP, when > 0, overrides/provides the number of ranks for checks that
	// need it numerically (otherwise a named constant "np" is used if found).
	NP int
}

// RejectionError explains why a candidate call site is not transformable.
type RejectionError struct {
	Pos    ftn.Pos
	Reason string
}

// Error implements the error interface.
func (e *RejectionError) Error() string {
	return fmt.Sprintf("%s: not transformable: %s", e.Pos, e.Reason)
}

func reject(pos ftn.Pos, format string, args ...interface{}) *RejectionError {
	return &RejectionError{Pos: pos, Reason: fmt.Sprintf(format, args...)}
}
