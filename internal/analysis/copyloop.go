package analysis

import (
	"repro/internal/ftn"
)

// analyzeIndirect performs the §3.4 analysis: recognize the copy loop ℓcp,
// locate the procedure call that fills the temporary At, and verify that
// the copy realizes a contiguous whole-slab mapping (At element j of outer
// iteration iy lands at linear As offset (iy-iyLo)·Count + (j-atLo)), which
// is the condition under which removing ℓcp and sending At directly
// preserves the original data flow At --copy--> As --send--> Ar.
func analyzeIndirect(file *ftn.File, op *Opportunity, writes []*ftn.AssignStmt, opts Options) error {
	if len(writes) != 1 {
		return reject(op.L.Pos(), "indirect pattern needs exactly one copy assignment to %s, found %d", op.Call.As, len(writes))
	}
	w := writes[0]
	atName := rhsArray(w.RHS, op.Arrays)

	// ℓcp must be a direct child of ℓ whose body contains only scalar
	// assignments plus the copy assignment.
	cl := &CopyLoop{At: atName, LoopIndex: -1, CallIndex: -1}
	for i, s := range op.L.Body {
		if do, ok := s.(*ftn.DoStmt); ok && containsStmt(do.Body, w) {
			cl.Loop = do
			cl.LoopIndex = i
			break
		}
	}
	if cl.Loop == nil {
		return reject(w.Pos(), "copy assignment is not inside a copy loop that is a direct child of the outer loop")
	}
	for _, s := range cl.Loop.Body {
		switch s := s.(type) {
		case *ftn.AssignStmt:
			if _, ok := s.LHS.(*ftn.Ident); !ok && s != w {
				return reject(s.Pos(), "copy loop contains an extra array assignment")
			}
		case *ftn.CommentStmt:
		default:
			return reject(s.Pos(), "copy loop contains a non-assignment statement")
		}
	}

	// The RHS must be a single reference to At.
	rhs, ok := w.RHS.(*ftn.Ref)
	if !ok || rhs.Name != atName {
		return reject(w.Pos(), "copy RHS is not a plain reference to %s", atName)
	}
	if len(rhs.Args) != 1 {
		return reject(w.Pos(), "temporary %s must be one-dimensional in the copy", atName)
	}

	// The call that fills At: a direct child of ℓ preceding ℓcp.
	for i := cl.LoopIndex - 1; i >= 0; i-- {
		call, ok := op.L.Body[i].(*ftn.CallStmt)
		if !ok {
			continue
		}
		for argPos, a := range call.Args {
			if n, okn := bufferName(a); okn && n == atName {
				cl.Call = call
				cl.CallIndex = i
				cl.CallArgPos = argPos
				break
			}
		}
		if cl.Call != nil {
			break
		}
	}
	if cl.Call == nil {
		return reject(cl.Loop.Pos(), "no call filling %s precedes the copy loop", atName)
	}
	// The callee may be in-file; if not, ask the oracle whether it writes At.
	if sub := file.Subroutine(cl.Call.Name); sub == nil {
		if wr, answered := opts.Oracle.ProcedureWrites(cl.Call.Name, atName); answered {
			op.SemiAuto = true
			if !wr {
				return reject(cl.Call.Pos(), "user says %s does not write %s", cl.Call.Name, atName)
			}
		} else {
			op.note("assuming %s writes %s (source unavailable; conservative)", cl.Call.Name, atName)
		}
	}

	// Gather the numeric facts needed for mapping verification.
	st := ftn.Symbols(op.Unit)
	cl.AtDims = declTriplets(st, atName, op.Consts)
	if len(cl.AtDims) != 1 {
		return reject(w.Pos(), "temporary %s must be declared one-dimensional", atName)
	}
	if err := verifySlabMapping(op, cl, w, rhs); err != nil {
		return err
	}
	op.CopyLoop = cl
	op.NodeCase = NodeLoopOutermost // the outer ℓ loop walks As's last dim
	op.NodeLoopLevel = 0
	op.note("copy loop removed: %s slabs of %d elements map to whole %s planes", atName, cl.Count, op.Call.As)
	return nil
}

// containsStmt reports whether target appears in stmts (recursively).
func containsStmt(stmts []ftn.Stmt, target ftn.Stmt) bool {
	found := false
	ftn.Inspect(stmts, func(s ftn.Stmt) bool {
		if s == target {
			found = true
		}
		return !found
	})
	return found
}

// verifySlabMapping exhaustively checks (it is a finite, small space) that
// executing ℓcp for every outer iteration writes At's elements to
// consecutive whole slabs of As in order: linear As offset of the element
// copied from At(j) at outer value iy equals (iy-iyLo)·Count + (j-atLo),
// and that the slabs exactly tile As. This is what makes
// At -> As -> Ar equivalent to At -> Ar (§3.4).
func verifySlabMapping(op *Opportunity, cl *CopyLoop, w *ftn.AssignStmt, rhs *ftn.Ref) error {
	env := map[string]int64{}
	for k, v := range op.Consts {
		env[k] = v
	}
	// Numeric As dims.
	var lo, hi, stride []int64
	strideAcc := int64(1)
	for d, tdim := range op.AsDims {
		l, ok1 := tdim.Lo.Bind(op.Consts).Eval(nil)
		h, ok2 := tdim.Hi.Bind(op.Consts).Eval(nil)
		if !ok1 || !ok2 {
			return reject(w.Pos(), "As dimension %d is not numeric; indirect verification needs numeric bounds", d+1)
		}
		lo = append(lo, l)
		hi = append(hi, h)
		stride = append(stride, strideAcc)
		strideAcc *= h - l + 1
	}
	totalAs := strideAcc

	atLo, ok := cl.AtDims[0].Lo.Bind(op.Consts).Eval(nil)
	if !ok {
		return reject(w.Pos(), "At lower bound is not numeric")
	}

	outerLo, ok1 := EvalInt(op.L.Lo, env)
	outerHi, ok2 := EvalInt(op.L.Hi, env)
	if !ok1 || !ok2 {
		return reject(op.L.Pos(), "outer loop bounds are not numeric")
	}
	if op.L.Step != nil {
		if s, oks := EvalInt(op.L.Step, env); !oks || s != 1 {
			return reject(op.L.Pos(), "outer loop step must be 1 for the indirect transformation")
		}
	}

	count := int64(-1)
	for iy := outerLo; iy <= outerHi; iy++ {
		env[op.L.Var] = iy
		cpLo, okl := EvalInt(cl.Loop.Lo, env)
		cpHi, okh := EvalInt(cl.Loop.Hi, env)
		if !okl || !okh {
			return reject(cl.Loop.Pos(), "copy loop bounds are not numeric")
		}
		if cl.Loop.Step != nil {
			if s, oks := EvalInt(cl.Loop.Step, env); !oks || s != 1 {
				return reject(cl.Loop.Pos(), "copy loop step must be 1")
			}
		}
		n := cpHi - cpLo + 1
		if count < 0 {
			count = n
		} else if count != n {
			return reject(cl.Loop.Pos(), "copy loop trip count varies across outer iterations (%d vs %d)", count, n)
		}
		slabBase := (iy - outerLo) * count
		for ix := cpLo; ix <= cpHi; ix++ {
			env[cl.Loop.Var] = ix
			// Execute the scalar assignments of the copy loop body.
			for _, s := range cl.Loop.Body {
				a, ok := s.(*ftn.AssignStmt)
				if !ok || a == w {
					continue
				}
				id := a.LHS.(*ftn.Ident)
				v, okv := EvalInt(a.RHS, env)
				if !okv {
					return reject(a.Pos(), "cannot evaluate scalar %s in copy loop", id.Name)
				}
				env[id.Name] = v
			}
			// Destination offset.
			lhs := w.LHS.(*ftn.Ref)
			if len(lhs.Args) != len(op.AsDims) {
				return reject(w.Pos(), "copy LHS rank mismatch")
			}
			off := int64(0)
			for d, sub := range lhs.Args {
				v, okv := EvalInt(sub, env)
				if !okv {
					return reject(w.Pos(), "cannot evaluate As subscript %d", d+1)
				}
				if v < lo[d] || v > hi[d] {
					return reject(w.Pos(), "As subscript %d out of bounds (%d not in %d:%d)", d+1, v, lo[d], hi[d])
				}
				off += (v - lo[d]) * stride[d]
			}
			// Source index.
			j, okj := EvalInt(rhs.Args[0], env)
			if !okj {
				return reject(w.Pos(), "cannot evaluate At subscript")
			}
			want := slabBase + (j - atLo)
			if off != want {
				return reject(w.Pos(),
					"copy mapping is not a whole-slab mapping: at %s=%d, %s=%d the element lands at offset %d, want %d",
					op.L.Var, iy, cl.Loop.Var, ix, off, want)
			}
		}
		delete(env, cl.Loop.Var)
	}
	// The slabs must exactly tile As.
	if (outerHi-outerLo+1)*count != totalAs {
		return reject(w.Pos(), "slabs cover %d elements but %s has %d", (outerHi-outerLo+1)*count, op.Call.As, totalAs)
	}
	cl.Count = count
	return nil
}
