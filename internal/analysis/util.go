package analysis

import "repro/internal/ftn"

// EvalInt evaluates an integer-valued expression under env (which also
// serves as the named-constant table). It supports the arithmetic subset
// that appears in declarations and subscripts: + - * / ** mod min max abs.
func EvalInt(e ftn.Expr, env map[string]int64) (int64, bool) {
	switch e := e.(type) {
	case *ftn.IntLit:
		return e.Value, true
	case *ftn.Ident:
		v, ok := env[e.Name]
		return v, ok
	case *ftn.Unary:
		x, ok := EvalInt(e.X, env)
		if !ok {
			return 0, false
		}
		switch e.Op {
		case "-":
			return -x, true
		case "+":
			return x, true
		}
		return 0, false
	case *ftn.Binary:
		x, okx := EvalInt(e.X, env)
		y, oky := EvalInt(e.Y, env)
		if !okx || !oky {
			return 0, false
		}
		switch e.Op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y == 0 {
				return 0, false
			}
			return x / y, true // Fortran integer division truncates toward 0
		case "**":
			if y < 0 {
				return 0, false
			}
			r := int64(1)
			for ; y > 0; y-- {
				r *= x
			}
			return r, true
		}
		return 0, false
	case *ftn.Ref:
		args := make([]int64, len(e.Args))
		for i, a := range e.Args {
			v, ok := EvalInt(a, env)
			if !ok {
				return 0, false
			}
			args[i] = v
		}
		switch e.Name {
		case "mod":
			if len(args) == 2 && args[1] != 0 {
				return args[0] % args[1], true
			}
		case "min":
			if len(args) >= 1 {
				m := args[0]
				for _, v := range args[1:] {
					if v < m {
						m = v
					}
				}
				return m, true
			}
		case "max":
			if len(args) >= 1 {
				m := args[0]
				for _, v := range args[1:] {
					if v > m {
						m = v
					}
				}
				return m, true
			}
		case "abs":
			if len(args) == 1 {
				if args[0] < 0 {
					return -args[0], true
				}
				return args[0], true
			}
		}
		return 0, false
	}
	return 0, false
}
