package analysis

import (
	"repro/internal/dep"
	"repro/internal/ftn"
)

// classifyPattern decides direct vs. indirect (§3.2) and runs the
// pattern-specific analyses of §3.3/§3.4 plus the node-loop analysis of
// §3.5, filling op in place.
func classifyPattern(file *ftn.File, op *Opportunity, opts Options) error {
	as := op.Call.As

	// Inspect the assignments to As inside ℓ. The indirect pattern (§3.2)
	// is specifically a plain element copy "As(...) = At(ix)" from a
	// temporary filled by a procedure; an RHS that merely *uses* other
	// arrays in a computation is still the direct pattern (the write
	// region of As is what matters for pre-pushing).
	var directWrites, indirectWrites []*ftn.AssignStmt
	ftn.Inspect(op.L.Body, func(s ftn.Stmt) bool {
		a, ok := s.(*ftn.AssignStmt)
		if !ok {
			return true
		}
		lhs, ok := a.LHS.(*ftn.Ref)
		if !ok || lhs.Name != as {
			return true
		}
		if ref, isRef := a.RHS.(*ftn.Ref); isRef && op.Arrays[ref.Name] {
			indirectWrites = append(indirectWrites, a)
		} else {
			directWrites = append(directWrites, a)
		}
		return true
	})

	switch {
	case len(indirectWrites) > 0 && len(directWrites) == 0:
		op.Pattern = PatternIndirect
		return analyzeIndirect(file, op, indirectWrites, opts)
	case len(directWrites) > 0 && len(indirectWrites) == 0:
		op.Pattern = PatternDirect
		return analyzeDirect(op, opts)
	case len(directWrites) == 0 && len(indirectWrites) == 0:
		// ℓ mutates As only through a call: treat as indirect without a
		// copy loop — not transformable by the §3.4 technique.
		return reject(op.L.Pos(), "loop mutates %s only through procedure calls; no copy loop to analyze", as)
	default:
		return reject(op.L.Pos(), "mixed direct and indirect writes to %s", as)
	}
}

// rhsArray returns the name of an array referenced anywhere in e, or "".
func rhsArray(e ftn.Expr, arrays map[string]bool) string {
	found := ""
	ftn.WalkExpr(e, func(n ftn.Expr) bool {
		if r, ok := n.(*ftn.Ref); ok && arrays[r.Name] && found == "" {
			found = r.Name
		}
		return found == ""
	})
	return found
}

// analyzeDirect performs the §3.3 analysis: output-dependence safety and
// write-reference collection, then the node-loop analysis.
func analyzeDirect(op *Opportunity, opts Options) error {
	op.Nest = dep.AnalyzeNest(op.L, op.Consts, op.Arrays)
	writes := op.Nest.Writes(op.Call.As)
	if len(writes) == 0 {
		return reject(op.L.Pos(), "no writes to %s found in the loop nest", op.Call.As)
	}
	for _, w := range writes {
		if w.NonAffine {
			return reject(op.L.Pos(), "write to %s has a non-affine subscript", op.Call.As)
		}
		if len(w.Subs) != len(op.AsDims) {
			return reject(op.L.Pos(), "write to %s has rank %d, declared rank %d", op.Call.As, len(w.Subs), len(op.AsDims))
		}
	}
	op.WriteRefs = writes

	// Safe references: no output dependence leaves them (§3.3).
	for _, w := range writes {
		if dep.HasOutputDepAfter(w, writes) == dep.Infeasible {
			op.SafeRefs = append(op.SafeRefs, w)
		}
	}
	if len(op.SafeRefs) == 0 {
		return reject(op.L.Pos(), "every write to %s is overwritten later (no safe references)", op.Call.As)
	}
	op.note("%d of %d writes to %s are safe references", len(op.SafeRefs), len(op.WriteRefs), op.Call.As)

	// The loop must have no conditional writes to As (§2: "no branches in
	// the code that stores data into the array").
	if condWrite(op.L.Body, op.Call.As) {
		return reject(op.L.Pos(), "conditional write to %s inside the loop nest", op.Call.As)
	}

	return nodeLoopAnalysis(op)
}

// condWrite reports whether any write to array occurs under an IF.
func condWrite(stmts []ftn.Stmt, array string) bool {
	found := false
	var walk func(list []ftn.Stmt, under bool)
	walk = func(list []ftn.Stmt, under bool) {
		for _, s := range list {
			switch s := s.(type) {
			case *ftn.AssignStmt:
				if ref, ok := s.LHS.(*ftn.Ref); ok && ref.Name == array && under {
					found = true
				}
			case *ftn.DoStmt:
				walk(s.Body, under)
			case *ftn.IfStmt:
				walk(s.Then, true)
				walk(s.Else, true)
			}
		}
	}
	walk(stmts, false)
	return found
}

// nodeLoopAnalysis locates the node loop — the loop traversing the last
// dimension of As — relative to ℓ's tiled (outermost) loop (§3.5).
func nodeLoopAnalysis(op *Opportunity) error {
	chain := op.Nest.Loops
	if len(chain) == 0 {
		return reject(op.L.Pos(), "empty loop chain")
	}
	ref := op.SafeRefs[0]
	last := ref.Subs[len(ref.Subs)-1]
	level := -1
	for i, lp := range chain {
		if last.CoefOf(lp.Var) != 0 {
			level = i
		}
	}
	if level < 0 {
		op.NodeCase = NodeLoopAbsent
		return reject(op.L.Pos(), "last dimension of %s is not traversed by the loop nest", op.Call.As)
	}
	op.NodeLoopLevel = level
	if level > 0 {
		op.NodeCase = NodeLoopInner
		op.note("node loop %q is inner (level %d): Fig. 4 all-peers exchange per tile", chain[level].Var, level)
		return nil
	}
	op.NodeCase = NodeLoopOutermost
	// Try loop interchange (§3.5): find an inner level whose loop can be
	// swapped with the outermost.
	for j := 1; j < len(chain); j++ {
		legal, exact := dep.InterchangeLegal(op.Nest.Refs, 0, j)
		if legal && exact {
			op.InterchangeOK = true
			op.InterchangeWith = j
			op.InterchangeBlockElems = interchangeBlockElems(op, chain[j].Var)
			op.note("interchange of %q and %q is legal: node loop moves inward (block granularity %d elems × K)",
				chain[0].Var, chain[j].Var, op.InterchangeBlockElems)
			return nil
		}
	}
	op.note("node loop %q is outermost and interchange is not possible: subset sends per tile (congestion caveat)", chain[0].Var)
	return nil
}

// interchangeBlockElems estimates the contiguous run the Fig. 4 exchange
// would send per message after interchanging newTiledVar to the outermost
// position: the product of the extents of the As dimensions before the one
// newTiledVar subscripts. Unknown extents count as large (favoring
// interchange), matching the conservative direction for congestion.
func interchangeBlockElems(op *Opportunity, newTiledVar string) int64 {
	ref := op.SafeRefs[0]
	blockDim := 0
	for d, sub := range ref.Subs {
		if sub.CoefOf(newTiledVar) != 0 {
			blockDim = d
			break
		}
	}
	elems := int64(1)
	for d := 0; d < blockDim; d++ {
		ext, ok := op.AsDims[d].Extent().Bind(op.Consts).Eval(nil)
		if !ok {
			return 1 << 20 // unknown: assume large
		}
		elems *= ext
	}
	return elems
}
