package dep

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// brute checks integer feasibility of a system over a small box by
// enumeration; variables are taken from the system, bounded to [-B, B].
func bruteFeasible(s *System, bound int64) bool {
	vars := s.vars()
	assign := map[string]int64{}
	var rec func(i int) bool
	rec = func(i int) bool {
		if i == len(vars) {
			for _, c := range s.Cons {
				total := c.Const
				for _, t := range c.Terms {
					total += t.Coef * assign[t.Var]
				}
				if c.Eq && total != 0 {
					return false
				}
				if !c.Eq && total < 0 {
					return false
				}
			}
			return true
		}
		for v := -bound; v <= bound; v++ {
			assign[vars[i]] = v
			if rec(i + 1) {
				return true
			}
		}
		return false
	}
	return rec(0)
}

// randSystem builds a random small system with box bounds so the oracle
// and the solver see the same problem.
func randSystem(r *rand.Rand, nVars int, bound int64) *System {
	names := []string{"x", "y", "z"}
	s := &System{}
	// Box constraints keep everything bounded for the oracle.
	for i := 0; i < nVars; i++ {
		v := Var(names[i])
		s.AddGE(v.Add(NewAffine(bound)))             // v >= -bound
		s.AddGE(NewAffine(bound).Sub(Var(names[i]))) // v <= bound
	}
	nCons := 1 + r.Intn(3)
	for c := 0; c < nCons; c++ {
		a := NewAffine(int64(r.Intn(9) - 4))
		for i := 0; i < nVars; i++ {
			coef := int64(r.Intn(5) - 2)
			if coef != 0 {
				a.Coef[names[i]] = coef
			}
		}
		if r.Intn(3) == 0 {
			s.AddEq(a)
		} else {
			s.AddGE(a)
		}
	}
	return s
}

func TestQuickSolveMatchesBruteForce(t *testing.T) {
	r := rand.New(rand.NewSource(1991)) // the Omega test's year
	check := func() bool {
		nVars := 1 + r.Intn(3)
		const bound = 4
		s := randSystem(r, nVars, bound)
		want := bruteFeasible(s.Clone(), bound)
		got := s.Solve()
		if want && got == Infeasible {
			t.Logf("UNSOUND: brute feasible, solver infeasible: %+v", s.Cons)
			return false
		}
		if !want && got == Feasible {
			t.Logf("UNSOUND: brute infeasible, solver feasible: %+v", s.Cons)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestSolveEqualityChains(t *testing.T) {
	// x = y, y = z, z = 5, 0 <= x <= 3: infeasible (x would be 5).
	s := &System{}
	s.AddEq(Var("x").Sub(Var("y")))
	s.AddEq(Var("y").Sub(Var("z")))
	s.AddEq(Var("z").Sub(NewAffine(5)))
	s.AddGE(Var("x"))
	s.AddGE(NewAffine(3).Sub(Var("x")))
	if got := s.Solve(); got != Infeasible {
		t.Errorf("solve = %v, want infeasible", got)
	}
	// Same with x <= 7: feasible.
	s2 := &System{}
	s2.AddEq(Var("x").Sub(Var("y")))
	s2.AddEq(Var("y").Sub(Var("z")))
	s2.AddEq(Var("z").Sub(NewAffine(5)))
	s2.AddGE(Var("x"))
	s2.AddGE(NewAffine(7).Sub(Var("x")))
	if got := s2.Solve(); got != Feasible {
		t.Errorf("solve = %v, want feasible", got)
	}
}

func TestSolveEmptySystem(t *testing.T) {
	s := &System{}
	if got := s.Solve(); got != Feasible {
		t.Errorf("empty system = %v, want feasible", got)
	}
}

func TestSolveContradictoryConstants(t *testing.T) {
	s := &System{}
	s.AddGE(NewAffine(-1)) // -1 >= 0
	if got := s.Solve(); got != Infeasible {
		t.Errorf("solve = %v, want infeasible", got)
	}
	s2 := &System{}
	s2.AddEq(NewAffine(3)) // 3 == 0
	if got := s2.Solve(); got != Infeasible {
		t.Errorf("solve = %v, want infeasible", got)
	}
}

func TestSolveNonUnitEqualityGCD(t *testing.T) {
	// 4x - 6y = 1: gcd 2 does not divide 1.
	s := &System{}
	a := Var("x").Scale(4).Sub(Var("y").Scale(6)).Sub(NewAffine(1))
	s.AddEq(a)
	if got := s.Solve(); got != Infeasible {
		t.Errorf("solve = %v, want infeasible (GCD)", got)
	}
}

func TestSolveLargeCoefficientInequalities(t *testing.T) {
	// 3x >= 7, 3x <= 8: rational solution (7/3..8/3) but no integer one.
	// Real-shadow FM cannot prove infeasibility here; the answer must not
	// be Feasible (Unknown is the honest outcome).
	s := &System{}
	s.AddGE(Var("x").Scale(3).Sub(NewAffine(7)))
	s.AddGE(NewAffine(8).Sub(Var("x").Scale(3)))
	if got := s.Solve(); got == Feasible {
		t.Errorf("solve = %v; claiming a nonexistent integer point is unsound", got)
	}
}

func TestConstraintString(t *testing.T) {
	c := Constraint{Terms: []LinTerm{{Var: "x", Coef: 2}}, Const: -3, Eq: true}
	if got := c.String(); got != "2*x + -3 == 0" {
		t.Errorf("string = %q", got)
	}
}
