package dep

import "fmt"

// Direction is one component of a dependence direction vector, constraining
// how the source iteration relates to the sink iteration at one loop level.
type Direction int

// Direction vector components.
const (
	DirStar Direction = iota // unconstrained
	DirLT                    // source iteration strictly earlier
	DirEQ                    // same iteration
	DirGT                    // source iteration strictly later
)

// String renders the direction as the conventional symbol.
func (d Direction) String() string {
	switch d {
	case DirStar:
		return "*"
	case DirLT:
		return "<"
	case DirEQ:
		return "="
	case DirGT:
		return ">"
	}
	return fmt.Sprintf("Direction(%d)", int(d))
}

// Loop describes one enclosing DO loop: var, affine bounds, constant step.
type Loop struct {
	Var  string
	Lo   Affine
	Hi   Affine
	Step int64 // nonzero; analysis is exact for any constant step
}

// SameLoop reports whether two loop records denote the same loop.
func SameLoop(a, b Loop) bool {
	return a.Var == b.Var && a.Step == b.Step && a.Lo.Equal(b.Lo) && a.Hi.Equal(b.Hi)
}

// Ref is one analyzed array reference.
type Ref struct {
	Array     string
	Subs      []Affine // one affine form per subscript dimension
	Write     bool
	Loops     []Loop // enclosing loops, outermost first
	Order     int    // lexical position, for intra-iteration ordering
	NonAffine bool   // true when any subscript could not be analyzed
}

// CommonDepth returns the number of leading loops shared by r1 and r2.
func CommonDepth(r1, r2 *Ref) int {
	n := len(r1.Loops)
	if len(r2.Loops) < n {
		n = len(r2.Loops)
	}
	d := 0
	for d < n && SameLoop(r1.Loops[d], r2.Loops[d]) {
		d++
	}
	return d
}

// varName builds a solver variable name unique per (level, copy).
func varName(kind string, level, copy int) string {
	return fmt.Sprintf("%s%d#%d", kind, level, copy)
}

// addLoopConstraints adds, for one reference copy, the iteration-space
// constraints of its enclosing loops: v = lo + step·k, k ≥ 0 and the
// direction-appropriate upper bound. Shared (common-depth) loops of the two
// copies still get independent index variables; only the constraints tie
// them together.
func addLoopConstraints(sys *System, r *Ref, copy int, ok *bool) {
	for lvl, lp := range r.Loops {
		if lp.Step == 0 {
			*ok = false
			return
		}
		iv := varName("i", lvl, copy)
		kv := varName("k", lvl, copy)
		// v - lo - step·k = 0, with v and k canonical names.
		eq := lp.Lo.Rename(renameOuter(r, lvl, copy)).Scale(-1)
		eq = eq.Add(Var(iv))
		kterm := Var(kv).Scale(lp.Step)
		eq = eq.Sub(kterm)
		sys.AddEq(eq)
		// k ≥ 0.
		sys.AddGE(Var(kv))
		// Terminal bound: step>0: hi - v ≥ 0 ; step<0: v - hi ≥ 0.
		hi := lp.Hi.Rename(renameOuter(r, lvl, copy))
		if lp.Step > 0 {
			sys.AddGE(hi.Sub(Var(iv)))
		} else {
			sys.AddGE(Var(iv).Sub(hi))
		}
	}
}

// renameOuter maps loop-variable names appearing in bounds of loop lvl to
// the canonical index variables of outer levels (triangular loops).
func renameOuter(r *Ref, lvl, copy int) func(string) string {
	return func(v string) string {
		for outer := 0; outer < lvl; outer++ {
			if r.Loops[outer].Var == v {
				return varName("i", outer, copy)
			}
		}
		// Not an enclosing loop variable: keep as a shared unknown.
		return "?" + v
	}
}

// renameSubs maps a subscript's loop variables to canonical index variables.
func renameSubs(r *Ref, copy int) func(string) string {
	return func(v string) string {
		for lvl := range r.Loops {
			if r.Loops[lvl].Var == v {
				return varName("i", lvl, copy)
			}
		}
		return "?" + v
	}
}

// TestDirection decides whether a dependence from r1 (source) to r2 (sink)
// can exist under the given direction vector over their common loops.
// dirs may be shorter than the common depth; missing entries are DirStar.
func TestDirection(r1, r2 *Ref, dirs []Direction) Feasibility {
	if r1.NonAffine || r2.NonAffine {
		return Unknown
	}
	if r1.Array != r2.Array || len(r1.Subs) != len(r2.Subs) {
		return Infeasible
	}
	sys := &System{}
	ok := true
	addLoopConstraints(sys, r1, 1, &ok)
	addLoopConstraints(sys, r2, 2, &ok)
	if !ok {
		return Unknown
	}
	// Subscript equality per dimension.
	for d := range r1.Subs {
		s1 := r1.Subs[d].Rename(renameSubs(r1, 1))
		s2 := r2.Subs[d].Rename(renameSubs(r2, 2))
		sys.AddEq(s1.Sub(s2))
	}
	// Direction constraints over iteration counters of common loops.
	common := CommonDepth(r1, r2)
	for lvl := 0; lvl < common && lvl < len(dirs); lvl++ {
		k1 := Var(varName("k", lvl, 1))
		k2 := Var(varName("k", lvl, 2))
		switch dirs[lvl] {
		case DirLT:
			sys.AddGE(k2.Sub(k1).Add(NewAffine(-1))) // k2 - k1 - 1 >= 0
		case DirEQ:
			sys.AddEq(k1.Sub(k2))
		case DirGT:
			sys.AddGE(k1.Sub(k2).Add(NewAffine(-1)))
		case DirStar:
		}
	}
	return sys.Solve()
}

// Depends decides whether any instance of r1 executes before an instance of
// r2 touching the same array element (the generic dependence question; the
// caller selects flow/anti/output by the refs' Write flags).
func Depends(r1, r2 *Ref) Feasibility {
	if r1.NonAffine || r2.NonAffine {
		return Unknown
	}
	common := CommonDepth(r1, r2)
	result := Infeasible
	// Classes (=^j, <, *^rest) for j in [0, common).
	for j := 0; j < common; j++ {
		dirs := make([]Direction, common)
		for i := 0; i < j; i++ {
			dirs[i] = DirEQ
		}
		dirs[j] = DirLT
		for i := j + 1; i < common; i++ {
			dirs[i] = DirStar
		}
		switch TestDirection(r1, r2, dirs) {
		case Feasible:
			return Feasible
		case Unknown:
			result = Unknown
		}
	}
	// Same-iteration class: r1 lexically precedes r2.
	if r1.Order < r2.Order {
		dirs := make([]Direction, common)
		for i := range dirs {
			dirs[i] = DirEQ
		}
		switch TestDirection(r1, r2, dirs) {
		case Feasible:
			return Feasible
		case Unknown:
			result = Unknown
		}
	}
	return result
}

// HasOutputDepAfter reports whether some later write overwrites the element
// written by w: this is the paper's §3.3 safety question. A reference is
// safe to send once no output dependence leaves it. The w == w2 pair is
// included deliberately: a reference can overwrite itself across iterations.
func HasOutputDepAfter(w *Ref, writes []*Ref) Feasibility {
	result := Infeasible
	for _, w2 := range writes {
		if !w2.Write {
			continue
		}
		switch Depends(w, w2) {
		case Feasible:
			return Feasible
		case Unknown:
			result = Unknown
		}
	}
	return result
}

// DirectionVectors enumerates all feasible direction vectors (over common
// loops) for dependences from r1 to r2, restricted to plausible vectors
// (lexicographically positive, or all-= when r1 precedes r2 textually).
// The second result is false when any class was Unknown (then the returned
// set additionally contains those unknown vectors, conservatively).
func DirectionVectors(r1, r2 *Ref) ([][]Direction, bool) {
	common := CommonDepth(r1, r2)
	exact := true
	var out [][]Direction
	if r1.NonAffine || r2.NonAffine {
		// Conservative: every plausible vector.
		exact = false
		out = append(out, allPlausible(common, r1.Order < r2.Order)...)
		return out, exact
	}
	var rec func(prefix []Direction)
	rec = func(prefix []Direction) {
		if len(prefix) == common {
			if !plausible(prefix, r1.Order < r2.Order) {
				return
			}
			switch TestDirection(r1, r2, prefix) {
			case Feasible:
				out = append(out, append([]Direction(nil), prefix...))
			case Unknown:
				exact = false
				out = append(out, append([]Direction(nil), prefix...))
			}
			return
		}
		// Prune: test the partial vector (rest DirStar) first.
		dirs := append(append([]Direction(nil), prefix...), make([]Direction, common-len(prefix))...)
		for i := len(prefix); i < common; i++ {
			dirs[i] = DirStar
		}
		if TestDirection(r1, r2, dirs) == Infeasible {
			return
		}
		for _, d := range []Direction{DirLT, DirEQ, DirGT} {
			rec(append(prefix, d))
		}
	}
	rec(nil)
	return out, exact
}

// plausible reports whether the vector can describe a source-before-sink
// dependence: leading non-= must be <; all-= requires textual precedence.
func plausible(dirs []Direction, textOrder bool) bool {
	for _, d := range dirs {
		switch d {
		case DirLT:
			return true
		case DirGT:
			return false
		}
	}
	return textOrder
}

func allPlausible(n int, textOrder bool) [][]Direction {
	var out [][]Direction
	var rec func(prefix []Direction)
	rec = func(prefix []Direction) {
		if len(prefix) == n {
			if plausible(prefix, textOrder) {
				out = append(out, append([]Direction(nil), prefix...))
			}
			return
		}
		for _, d := range []Direction{DirLT, DirEQ, DirGT} {
			rec(append(prefix, d))
		}
	}
	rec(nil)
	return out
}

// InterchangeLegal decides whether interchanging loop levels p and q (0-based
// positions within the refs' common nest) preserves all dependences among
// refs. The second result is false when the answer relied on conservative
// (Unknown) dependence information.
func InterchangeLegal(refs []*Ref, p, q int) (bool, bool) {
	exact := true
	for _, r1 := range refs {
		for _, r2 := range refs {
			if !r1.Write && !r2.Write {
				continue // read-read pairs impose nothing
			}
			vecs, ex := DirectionVectors(r1, r2)
			if !ex {
				exact = false
			}
			for _, v := range vecs {
				if p >= len(v) || q >= len(v) {
					continue
				}
				perm := append([]Direction(nil), v...)
				perm[p], perm[q] = perm[q], perm[p]
				if !lexNonNegative(perm) {
					return false, exact
				}
			}
		}
	}
	return true, exact
}

// lexNonNegative reports whether the permuted vector still describes a
// forward (or same-iteration) dependence.
func lexNonNegative(dirs []Direction) bool {
	for _, d := range dirs {
		switch d {
		case DirLT:
			return true
		case DirGT:
			return false
		case DirStar:
			// '*' includes '>' possibilities: conservatively not legal.
			return false
		}
	}
	return true
}
