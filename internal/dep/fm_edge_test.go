package dep

import (
	"testing"

	"repro/internal/ftn"
)

// sym returns the affine form of a loop-invariant symbol.
func sym(name string) Affine {
	a := NewAffine(0)
	a.Syms = map[string]int64{name: 1}
	return a
}

// TestSolveDegenerateBounds: zero-trip and single-point iteration spaces —
// the loop-bound shapes the transformation's leftover algebra produces.
func TestSolveDegenerateBounds(t *testing.T) {
	// Empty space: 1 ≤ v ≤ 0 has no integer point.
	s := &System{}
	s.AddGE(Var("v").Sub(NewAffine(1)))
	s.AddLE(Var("v"))
	if got := s.Solve(); got != Infeasible {
		t.Errorf("1 ≤ v ≤ 0: %v, want infeasible", got)
	}

	// Single-point space: 5 ≤ v ≤ 5 is exactly one iteration.
	s = &System{}
	s.AddGE(Var("v").Sub(NewAffine(5)))
	s.AddLE(Var("v").Sub(NewAffine(5)))
	if got := s.Solve(); got != Feasible {
		t.Errorf("5 ≤ v ≤ 5: %v, want feasible", got)
	}

	// Symbolically empty space: n+1 ≤ v ≤ n is empty for every n — the
	// symbol cancels, so the solver must prove it even unbounded.
	s = &System{}
	s.AddGE(Var("v").Sub(sym("n")).Sub(NewAffine(1)))
	s.AddLE(Var("v").Sub(sym("n")))
	if got := s.Solve(); got != Infeasible {
		t.Errorf("n+1 ≤ v ≤ n: %v, want infeasible", got)
	}

	// Symbolically single-point: n ≤ v ≤ n always holds for v = n.
	s = &System{}
	s.AddGE(Var("v").Sub(sym("n")))
	s.AddLE(Var("v").Sub(sym("n")))
	if got := s.Solve(); got != Feasible {
		t.Errorf("n ≤ v ≤ n: %v, want feasible", got)
	}
}

// TestSymbolicOnlySubscripts: subscripts with no loop variable at all —
// pure symbols must stay conservative (never proven unequal without
// constraints) yet decisive when they cancel.
func TestSymbolicOnlySubscripts(t *testing.T) {
	env := &Env{LoopVars: map[string]bool{}, Consts: map[string]int64{}}
	nPlus1, ok := FromExpr(&ftn.Binary{X: &ftn.Ident{Name: "n"}, Op: "+", Y: &ftn.IntLit{Value: 1}}, env)
	if !ok || !nPlus1.HasSyms() {
		t.Fatalf("n+1 did not convert to a symbolic affine form: %v ok=%v", nPlus1, ok)
	}
	n, _ := FromExpr(&ftn.Ident{Name: "n"}, env)
	m, _ := FromExpr(&ftn.Ident{Name: "m"}, env)

	// a(n+1) vs a(n): the symbol cancels, the subscripts provably differ.
	s := &System{}
	s.AddEq(nPlus1.Sub(n))
	if got := s.Solve(); got != Infeasible {
		t.Errorf("n+1 == n: %v, want infeasible", got)
	}

	// a(n+1) vs a(m): independent symbols may collide; claiming otherwise
	// would be unsound.
	s = &System{}
	s.AddEq(nPlus1.Sub(m))
	if got := s.Solve(); got == Infeasible {
		t.Errorf("n+1 == m: %v; independent symbols can be equal", got)
	}

	// Non-affine symbolic subscripts (n*m) must be rejected at conversion,
	// not silently linearized.
	if _, ok := FromExpr(&ftn.Binary{X: &ftn.Ident{Name: "n"}, Op: "*", Y: &ftn.Ident{Name: "m"}}, env); ok {
		t.Error("n*m converted as affine")
	}
	// Division by a symbol is likewise not affine.
	if _, ok := FromExpr(&ftn.Binary{X: &ftn.Ident{Name: "n"}, Op: "/", Y: &ftn.Ident{Name: "m"}}, env); ok {
		t.Error("n/m converted as affine")
	}
}

// TestSolveCoefficientOverflowGuard: rows whose coefficients could overflow
// int64 during elimination degrade to Unknown (conservative) instead of
// deciding from wrapped arithmetic.
func TestSolveCoefficientOverflowGuard(t *testing.T) {
	big := int64(1) << 40

	// Two-sided bounds with coprime huge coefficients force a combine; the
	// guard must refuse rather than multiply 2⁴⁰-scale numbers.
	s := &System{}
	s.AddGE(Var("x").Scale(big).Sub(NewAffine(1)))
	s.AddGE(NewAffine(big + 3).Sub(Var("x").Scale(big + 1)))
	if got := s.Solve(); got != Unknown {
		t.Errorf("huge-coefficient system: %v, want unknown (overflow guard)", got)
	}

	// At the limit the solver still decides: coefLimit·x ≥ coefLimit with
	// x ≤ 0 is a unit-coefficient elimination, exact and infeasible.
	s = &System{}
	s.AddGE(Var("x").Scale(coefLimit).Sub(NewAffine(coefLimit)))
	s.AddLE(Var("x"))
	if got := s.Solve(); got != Infeasible {
		t.Errorf("coefLimit·x ≥ coefLimit ∧ x ≤ 0: %v, want infeasible", got)
	}
}

// TestSolveEmptyBoundsViaEquality: a degenerate equality chain — the whole
// space pinned to constants that contradict an inequality.
func TestSolveEmptyBoundsViaEquality(t *testing.T) {
	s := &System{}
	s.AddEq(Var("v").Sub(NewAffine(7))) // v == 7
	s.AddGE(NewAffine(6).Sub(Var("v"))) // v ≤ 6
	if got := s.Solve(); got != Infeasible {
		t.Errorf("v == 7 ∧ v ≤ 6: %v, want infeasible", got)
	}
}
