package dep

import (
	"repro/internal/ftn"
)

// NestInfo is the analyzed form of one loop nest: the loops on the path to
// the innermost body plus every array reference found anywhere inside.
type NestInfo struct {
	Loops []Loop // outermost first (the path of the first/primary chain)
	Refs  []*Ref
	// ByArray groups references by array name.
	ByArray map[string][]*Ref
}

// Writes returns the write references to the named array.
func (n *NestInfo) Writes(array string) []*Ref {
	var out []*Ref
	for _, r := range n.ByArray[array] {
		if r.Write {
			out = append(out, r)
		}
	}
	return out
}

// Reads returns the read references to the named array.
func (n *NestInfo) Reads(array string) []*Ref {
	var out []*Ref
	for _, r := range n.ByArray[array] {
		if !r.Write {
			out = append(out, r)
		}
	}
	return out
}

// scalarState tracks forward-substitutable scalar definitions while walking
// statements in order: "tx = ix + 1" lets later subscripts As(tx) be
// analyzed as As(ix+1). Assignments with non-affine right-hand sides poison
// the scalar.
type scalarState struct {
	defs   map[string]Affine
	poison map[string]bool
}

func newScalarState() *scalarState {
	return &scalarState{defs: map[string]Affine{}, poison: map[string]bool{}}
}

func (ss *scalarState) clone() *scalarState {
	c := newScalarState()
	for k, v := range ss.defs {
		c.defs[k] = v
	}
	for k, v := range ss.poison {
		c.poison[k] = v
	}
	return c
}

// invalidate removes knowledge of scalars defined in terms of loop variable
// v (used when leaving v's loop) and of v itself.
func (ss *scalarState) invalidate(v string) {
	for name, a := range ss.defs {
		if a.CoefOf(v) != 0 {
			delete(ss.defs, name)
			ss.poison[name] = true
		}
	}
}

// AnalyzeNest analyzes the loop nest rooted at do with the given constant
// environment (named parameter values). It returns loop and reference
// information for dependence queries. arrays maps a name to true when it is
// declared as an array (everything else is treated as a scalar).
func AnalyzeNest(do *ftn.DoStmt, consts map[string]int64, arrays map[string]bool) *NestInfo {
	info := &NestInfo{ByArray: map[string][]*Ref{}}
	order := 0
	ss := newScalarState()
	var walk func(stmts []ftn.Stmt, loops []Loop, ss *scalarState)

	env := func(loops []Loop) *Env {
		lv := map[string]bool{}
		for _, lp := range loops {
			lv[lp.Var] = true
		}
		return &Env{LoopVars: lv, Consts: consts}
	}

	// affineOf converts e under loops, substituting known scalars first.
	affineOf := func(e ftn.Expr, loops []Loop, ss *scalarState) (Affine, bool) {
		a, ok := FromExpr(e, env(loops))
		if !ok {
			return Affine{}, false
		}
		// Substitute scalar definitions into symbolic terms.
		for sym, coef := range a.Syms {
			if ss.poison[sym] {
				return Affine{}, false
			}
			if d, okd := ss.defs[sym]; okd {
				a = a.Add(d.Scale(coef))
				delete(a.Syms, sym)
			}
		}
		return a, true
	}

	addRef := func(r *ftn.Ref, write bool, loops []Loop, ss *scalarState) {
		ref := &Ref{
			Array: r.Name,
			Write: write,
			Loops: append([]Loop(nil), loops...),
			Order: order,
		}
		order++
		for _, sub := range r.Args {
			a, ok := affineOf(sub, loops, ss)
			if !ok {
				ref.NonAffine = true
				a = NewAffine(0)
			}
			ref.Subs = append(ref.Subs, a)
		}
		info.Refs = append(info.Refs, ref)
		info.ByArray[r.Name] = append(info.ByArray[r.Name], ref)
	}

	// collectReads walks an expression adding read refs for arrays.
	var collectReads func(e ftn.Expr, loops []Loop, ss *scalarState)
	collectReads = func(e ftn.Expr, loops []Loop, ss *scalarState) {
		ftn.WalkExpr(e, func(n ftn.Expr) bool {
			if r, ok := n.(*ftn.Ref); ok && arrays[r.Name] {
				addRef(r, false, loops, ss)
				// Subscripts may themselves reference arrays.
				for _, a := range r.Args {
					collectReads(a, loops, ss)
				}
				return false
			}
			return true
		})
	}

	walk = func(stmts []ftn.Stmt, loops []Loop, ss *scalarState) {
		for _, s := range stmts {
			switch s := s.(type) {
			case *ftn.AssignStmt:
				collectReads(s.RHS, loops, ss)
				switch lhs := s.LHS.(type) {
				case *ftn.Ref:
					if arrays[lhs.Name] {
						for _, a := range lhs.Args {
							collectReads(a, loops, ss)
						}
						addRef(lhs, true, loops, ss)
					}
				case *ftn.Ident:
					// Scalar definition: track for forward substitution.
					if a, ok := affineOf(s.RHS, loops, ss); ok {
						ss.defs[lhs.Name] = a
						delete(ss.poison, lhs.Name)
					} else {
						delete(ss.defs, lhs.Name)
						ss.poison[lhs.Name] = true
					}
				}
			case *ftn.DoStmt:
				en := env(loops)
				lo, okLo := FromExpr(s.Lo, en)
				hi, okHi := FromExpr(s.Hi, en)
				step := int64(1)
				if s.Step != nil {
					st, okSt := FromExpr(s.Step, en)
					if !okSt || !st.IsConst() || st.Const == 0 {
						step = 0 // analysis will answer Unknown
					} else {
						step = st.Const
					}
				}
				if !okLo {
					lo = NewAffine(0)
					lo.Syms["?lo:"+s.Var] = 1
				}
				if !okHi {
					hi = NewAffine(0)
					hi.Syms["?hi:"+s.Var] = 1
				}
				lp := Loop{Var: s.Var, Lo: lo, Hi: hi, Step: step}
				inner := append(append([]Loop(nil), loops...), lp)
				// The loop variable invalidates scalar defs built on it,
				// and scalars defined inside are only valid inside.
				ssIn := ss.clone()
				delete(ssIn.defs, s.Var)
				walk(s.Body, inner, ssIn)
				// After the loop: any scalar (re)defined inside is unknown.
				for name := range ssIn.defs {
					if _, had := ss.defs[name]; !had || !ssIn.defs[name].Equal(ss.defs[name]) {
						ss.poison[name] = true
						delete(ss.defs, name)
					}
				}
				for name := range ssIn.poison {
					ss.poison[name] = true
					delete(ss.defs, name)
				}
				ss.invalidate(s.Var)
				if len(loops) == 0 && len(info.Loops) == 0 {
					// Record the primary loop chain (first path).
					info.Loops = chainOf(s, consts)
				}
			case *ftn.IfStmt:
				collectReads(s.Cond, loops, ss)
				ssT := ss.clone()
				ssE := ss.clone()
				walk(s.Then, loops, ssT)
				walk(s.Else, loops, ssE)
				// Conservative merge: anything defined or poisoned in a
				// branch becomes unknown afterwards.
				for _, b := range []*scalarState{ssT, ssE} {
					for name := range b.defs {
						if _, had := ss.defs[name]; !had || !b.defs[name].Equal(ss.defs[name]) {
							ss.poison[name] = true
							delete(ss.defs, name)
						}
					}
					for name := range b.poison {
						ss.poison[name] = true
						delete(ss.defs, name)
					}
				}
			case *ftn.CallStmt:
				for _, a := range s.Args {
					collectReads(a, loops, ss)
					// An array passed to a procedure may be written: record
					// a conservative whole-array write reference.
					if r, ok := a.(*ftn.Ref); ok && arrays[r.Name] {
						w := &Ref{Array: r.Name, Write: true, Loops: append([]Loop(nil), loops...), Order: order, NonAffine: true}
						order++
						for range r.Args {
							w.Subs = append(w.Subs, NewAffine(0))
						}
						info.Refs = append(info.Refs, w)
						info.ByArray[r.Name] = append(info.ByArray[r.Name], w)
					}
					if id, ok := a.(*ftn.Ident); ok {
						if arrays[id.Name] {
							w := &Ref{Array: id.Name, Write: true, Loops: append([]Loop(nil), loops...), Order: order, NonAffine: true}
							order++
							info.Refs = append(info.Refs, w)
							info.ByArray[id.Name] = append(info.ByArray[id.Name], w)
						} else {
							// Scalar passed by reference: may be modified.
							delete(ss.defs, id.Name)
							ss.poison[id.Name] = true
						}
					}
				}
			case *ftn.PrintStmt:
				for _, a := range s.Args {
					collectReads(a, loops, ss)
				}
			}
		}
	}

	// Analyze the nest as a whole (the root DO is part of the loop stack).
	walk([]ftn.Stmt{do}, nil, ss)
	return info
}

// chainOf extracts the perfect-nest chain starting at do: the root loop and
// each singleton DO child, used for tiling decisions.
func chainOf(do *ftn.DoStmt, consts map[string]int64) []Loop {
	var loops []Loop
	cur := do
	var outer []Loop
	for {
		lv := map[string]bool{}
		for _, lp := range outer {
			lv[lp.Var] = true
		}
		en := &Env{LoopVars: lv, Consts: consts}
		lo, okLo := FromExpr(cur.Lo, en)
		hi, okHi := FromExpr(cur.Hi, en)
		if !okLo {
			lo = NewAffine(0)
			lo.Syms["?lo:"+cur.Var] = 1
		}
		if !okHi {
			hi = NewAffine(0)
			hi.Syms["?hi:"+cur.Var] = 1
		}
		step := int64(1)
		if cur.Step != nil {
			st, ok := FromExpr(cur.Step, en)
			if ok && st.IsConst() && st.Const != 0 {
				step = st.Const
			} else {
				step = 0
			}
		}
		lp := Loop{Var: cur.Var, Lo: lo, Hi: hi, Step: step}
		loops = append(loops, lp)
		outer = append(outer, lp)
		// Descend only through singleton DO bodies (perfect nesting).
		next := onlyDo(cur.Body)
		if next == nil {
			return loops
		}
		cur = next
	}
}

// onlyDo returns the single DO statement of body when body contains exactly
// one significant statement and it is a DO; comments are ignored.
func onlyDo(body []ftn.Stmt) *ftn.DoStmt {
	var found *ftn.DoStmt
	for _, s := range body {
		switch s := s.(type) {
		case *ftn.CommentStmt:
		case *ftn.DoStmt:
			if found != nil {
				return nil
			}
			found = s
		default:
			return nil
		}
	}
	return found
}
