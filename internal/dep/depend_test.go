package dep

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ftn"
)

// mkLoop builds a constant-bound unit-step loop.
func mkLoop(v string, lo, hi int64) Loop {
	return Loop{Var: v, Lo: NewAffine(lo), Hi: NewAffine(hi), Step: 1}
}

// mkRef builds a reference with the given subscripts.
func mkRef(array string, write bool, loops []Loop, order int, subs ...Affine) *Ref {
	return &Ref{Array: array, Subs: subs, Write: write, Loops: loops, Order: order}
}

func TestDependsClassicFlow(t *testing.T) {
	// do i = 1,10: A(i) = A(i-1): flow dep with direction (<).
	loops := []Loop{mkLoop("i", 1, 10)}
	w := mkRef("a", true, loops, 0, Var("i"))
	r := mkRef("a", false, loops, 1, Var("i").Sub(NewAffine(1)))
	if got := Depends(w, r); got != Feasible {
		t.Errorf("flow dep = %v, want feasible", got)
	}
	vecs, exact := DirectionVectors(w, r)
	if !exact {
		t.Error("expected exact direction vectors")
	}
	if len(vecs) != 1 || vecs[0][0] != DirLT {
		t.Errorf("vectors = %v, want [<]", vecs)
	}
}

func TestDependsNoAliasDisjoint(t *testing.T) {
	// A(2i) = ... ; ... = A(2i+1): never the same element (GCD).
	loops := []Loop{mkLoop("i", 1, 100)}
	w := mkRef("a", true, loops, 0, Var("i").Scale(2))
	r := mkRef("a", false, loops, 1, Var("i").Scale(2).Add(NewAffine(1)))
	if got := Depends(w, r); got != Infeasible {
		t.Errorf("disjoint strided = %v, want infeasible", got)
	}
}

func TestDependsSelfOutputDistinctElements(t *testing.T) {
	// do i: A(i) = ... : no two iterations write the same element.
	loops := []Loop{mkLoop("i", 1, 50)}
	w := mkRef("a", true, loops, 0, Var("i"))
	if got := HasOutputDepAfter(w, []*Ref{w}); got != Infeasible {
		t.Errorf("self output = %v, want infeasible", got)
	}
	// do i: A(1) = ... : every iteration writes element 1.
	w2 := mkRef("a", true, loops, 0, NewAffine(1))
	if got := HasOutputDepAfter(w2, []*Ref{w2}); got != Feasible {
		t.Errorf("constant subscript output = %v, want feasible", got)
	}
}

func TestDependsTwoLevels(t *testing.T) {
	// do iy = 1,10 / do ix = 1,10: As(ix) = ... overwritten across iy.
	loops := []Loop{mkLoop("iy", 1, 10), mkLoop("ix", 1, 10)}
	w := mkRef("as", true, loops, 0, Var("ix"))
	if got := HasOutputDepAfter(w, []*Ref{w}); got != Feasible {
		t.Errorf("output across outer = %v, want feasible", got)
	}
	vecs, _ := DirectionVectors(w, w)
	// Expect (<, *)-style vectors only; all must have iy-level '<'.
	for _, v := range vecs {
		if v[0] != DirLT {
			t.Errorf("vector %v should have < at outer level", v)
		}
	}
	// 2-D subscripts: As(ix, iy): distinct everywhere, no output dep.
	w2 := mkRef("as", true, loops, 1, Var("ix"), Var("iy"))
	if got := HasOutputDepAfter(w2, []*Ref{w2}); got != Infeasible {
		t.Errorf("distinct 2d = %v, want infeasible", got)
	}
}

func TestDependsTriangular(t *testing.T) {
	// do i = 1,10 / do j = i+1,10 : A(j) = A(i) — flow dep exists
	// (element j written at iteration (i,j) read later? A(i) read at (i,j),
	// A(j) written at (i,j); read of A(i2) equals write A(j1) when i2 = j1,
	// possible with i2 in (j1, ...): direction (<,*)).
	outer := mkLoop("i", 1, 10)
	inner := Loop{Var: "j", Lo: Var("i").Add(NewAffine(1)), Hi: NewAffine(10), Step: 1}
	loops := []Loop{outer, inner}
	w := mkRef("a", true, loops, 0, Var("j"))
	r := mkRef("a", false, loops, 1, Var("i"))
	if got := Depends(w, r); got != Feasible {
		t.Errorf("triangular dep = %v, want feasible", got)
	}
	// But A(i) writes vs A(i) writes at same i are same iteration only at
	// the same (i): output dep across j iterations at equal i exists for
	// subscript i (same element rewritten for each j).
	w2 := mkRef("a", true, loops, 0, Var("i"))
	if got := HasOutputDepAfter(w2, []*Ref{w2}); got != Feasible {
		t.Errorf("same-element rewrite = %v, want feasible", got)
	}
}

func TestDependsNegativeStep(t *testing.T) {
	// do i = 10, 1, -1: A(i) = A(i+1): the "earlier" iteration has larger i.
	loops := []Loop{{Var: "i", Lo: NewAffine(10), Hi: NewAffine(1), Step: -1}}
	w := mkRef("a", true, loops, 0, Var("i"))
	r := mkRef("a", false, loops, 1, Var("i").Add(NewAffine(1)))
	// Write A(i0) at iteration k0 (i0 = 10-k0); read A(i1+1) at iteration
	// k1. Same element: i0 = i1+1, i.e. i1 = i0-1 which happens at a LATER
	// iteration (smaller i). Flow dependence write->read exists.
	if got := Depends(w, r); got != Feasible {
		t.Errorf("negative-step flow = %v, want feasible", got)
	}
	// Reverse (read first): r at iteration of i, reads i+1, which was NOT
	// yet written (i+1 is written earlier in time!). Anti-dependence
	// read->write: read A(i0+1) then write A(i1) with i1 = i0+1 later:
	// i1 = i0+1 means earlier iteration for negative step => infeasible.
	if got := Depends(r, w); got != Infeasible {
		t.Errorf("negative-step anti = %v, want infeasible", got)
	}
}

func TestDependsStep2(t *testing.T) {
	// do i = 1, 9, 2 (odd i): A(i) writes odd elements; A(2j) even: disjoint.
	loops1 := []Loop{{Var: "i", Lo: NewAffine(1), Hi: NewAffine(9), Step: 2}}
	w := mkRef("a", true, loops1, 0, Var("i"))
	loops2 := []Loop{mkLoop("j", 1, 4)}
	r := mkRef("a", false, loops2, 1, Var("j").Scale(2))
	if got := Depends(w, r); got != Infeasible {
		t.Errorf("odd/even = %v, want infeasible", got)
	}
}

func TestInterchangeLegality(t *testing.T) {
	loops := []Loop{mkLoop("i", 2, 10), mkLoop("j", 2, 10)}
	// A(i,j) = A(i-1,j-1): vector (<,<): interchange legal.
	w1 := mkRef("a", true, loops, 0, Var("i"), Var("j"))
	r1 := mkRef("a", false, loops, 1, Var("i").Sub(NewAffine(1)), Var("j").Sub(NewAffine(1)))
	legal, exact := InterchangeLegal([]*Ref{w1, r1}, 0, 1)
	if !legal || !exact {
		t.Errorf("(<,<) interchange legal=%v exact=%v, want true,true", legal, exact)
	}
	// A(i,j) = A(i-1,j+1): vector (<,>): interchange illegal.
	r2 := mkRef("a", false, loops, 1, Var("i").Sub(NewAffine(1)), Var("j").Add(NewAffine(1)))
	legal2, _ := InterchangeLegal([]*Ref{w1, r2}, 0, 1)
	if legal2 {
		t.Error("(<,>) interchange should be illegal")
	}
	// Independent elements: A(i,j) only (no reads): legal.
	legal3, _ := InterchangeLegal([]*Ref{w1}, 0, 1)
	if !legal3 {
		t.Error("independent writes interchange should be legal")
	}
}

func TestNonAffineConservative(t *testing.T) {
	loops := []Loop{mkLoop("i", 1, 10)}
	w := mkRef("a", true, loops, 0, NewAffine(0))
	w.NonAffine = true
	r := mkRef("a", false, loops, 1, Var("i"))
	if got := Depends(w, r); got != Unknown {
		t.Errorf("non-affine dep = %v, want unknown", got)
	}
}

// --- Brute-force oracle property tests ---

// bruteDepends enumerates all iteration pairs and reports whether a
// source-before-sink pair touches the same element. Loops must have constant
// bounds and steps. Returns false if the space is too large.
func bruteDepends(r1, r2 *Ref) (bool, bool) {
	iters := func(r *Ref) ([]map[string]int64, bool) {
		envs := []map[string]int64{{}}
		for _, lp := range r.Loops {
			if lp.Step == 0 {
				return nil, false
			}
			var next []map[string]int64
			for _, env := range envs {
				lo, ok1 := lp.Lo.Eval(env)
				hi, ok2 := lp.Hi.Eval(env)
				if !ok1 || !ok2 {
					return nil, false
				}
				if lp.Step > 0 {
					for v := lo; v <= hi; v += lp.Step {
						e := cloneEnv(env)
						e[lp.Var] = v
						next = append(next, e)
					}
				} else {
					for v := lo; v >= hi; v += lp.Step {
						e := cloneEnv(env)
						e[lp.Var] = v
						next = append(next, e)
					}
				}
				if len(next) > 200000 {
					return nil, false
				}
			}
			envs = next
		}
		return envs, true
	}
	it1, ok1 := iters(r1)
	it2, ok2 := iters(r2)
	if !ok1 || !ok2 {
		return false, false
	}
	common := CommonDepth(r1, r2)
	elem := func(r *Ref, env map[string]int64) ([]int64, bool) {
		out := make([]int64, len(r.Subs))
		for i, s := range r.Subs {
			v, ok := s.Eval(env)
			if !ok {
				return nil, false
			}
			out[i] = v
		}
		return out, true
	}
	for idx1, e1 := range it1 {
		for idx2, e2 := range it2 {
			// Source-before-sink: compare common iteration counters
			// (enumeration order is execution order), tie-broken textually.
			before := false
			cmp := 0
			for lvl := 0; lvl < common; lvl++ {
				v := r1.Loops[lvl].Var
				// Iteration counter order equals value order for step>0 and
				// reverses for step<0.
				a, b := e1[v], e2[v]
				if r1.Loops[lvl].Step < 0 {
					a, b = -a, -b
				}
				if a != b {
					if a < b {
						cmp = -1
					} else {
						cmp = 1
					}
					break
				}
			}
			switch {
			case cmp < 0:
				before = true
			case cmp > 0:
				before = false
			default:
				before = r1.Order < r2.Order
			}
			_ = idx1
			_ = idx2
			if !before {
				continue
			}
			s1, ok1 := elem(r1, e1)
			s2, ok2 := elem(r2, e2)
			if !ok1 || !ok2 {
				return false, false
			}
			same := true
			for i := range s1 {
				if s1[i] != s2[i] {
					same = false
					break
				}
			}
			if same {
				return true, true
			}
		}
	}
	return false, true
}

func cloneEnv(env map[string]int64) map[string]int64 {
	c := make(map[string]int64, len(env)+1)
	for k, v := range env {
		c[k] = v
	}
	return c
}

// randAffineSub builds a random affine subscript over the loop variables.
func randAffineSub(r *rand.Rand, vars []string) Affine {
	a := NewAffine(int64(r.Intn(7) - 3))
	for _, v := range vars {
		c := int64(r.Intn(5) - 2)
		if c != 0 {
			a.Coef[v] = c
		}
	}
	return a
}

func TestQuickDependsMatchesOracle(t *testing.T) {
	r := rand.New(rand.NewSource(481488))
	check := func() bool {
		nLoops := 1 + r.Intn(2)
		var loops []Loop
		names := []string{"i", "j"}
		for k := 0; k < nLoops; k++ {
			lo := int64(r.Intn(4))
			hi := lo + int64(r.Intn(6))
			loops = append(loops, mkLoop(names[k], lo, hi))
		}
		vars := names[:nLoops]
		nSubs := 1 + r.Intn(2)
		var s1, s2 []Affine
		for d := 0; d < nSubs; d++ {
			s1 = append(s1, randAffineSub(r, vars))
			s2 = append(s2, randAffineSub(r, vars))
		}
		r1 := mkRef("a", true, loops, 0, s1...)
		r2 := mkRef("a", r.Intn(2) == 0, loops, 1, s2...)
		want, ok := bruteDepends(r1, r2)
		if !ok {
			return true // space too large; skip
		}
		got := Depends(r1, r2)
		if want && got == Infeasible {
			t.Logf("UNSOUND: oracle dep exists but solver says infeasible\n r1=%v subs=%v\n r2=%v subs=%v loops=%v",
				r1.Write, s1, r2.Write, s2, loops)
			return false
		}
		if !want && got == Feasible {
			t.Logf("IMPRECISE-as-WRONG: oracle no dep but solver says feasible\n r1 subs=%v\n r2 subs=%v loops=%v",
				s1, s2, loops)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 600}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickDirectionVectorsSound(t *testing.T) {
	// Every dependence found by the oracle must be covered by some reported
	// direction vector class.
	r := rand.New(rand.NewSource(2005))
	check := func() bool {
		lo1 := int64(1 + r.Intn(3))
		loops := []Loop{mkLoop("i", lo1, lo1+int64(r.Intn(5))), mkLoop("j", 1, int64(1+r.Intn(5)))}
		s1 := randAffineSub(r, []string{"i", "j"})
		s2 := randAffineSub(r, []string{"i", "j"})
		r1 := mkRef("a", true, loops, 0, s1)
		r2 := mkRef("a", true, loops, 1, s2)
		want, ok := bruteDepends(r1, r2)
		if !ok {
			return true
		}
		vecs, _ := DirectionVectors(r1, r2)
		if want && len(vecs) == 0 {
			t.Logf("oracle dep but no direction vectors: s1=%v s2=%v loops=%v", s1, s2, loops)
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// --- AnalyzeNest integration ---

func analyzeSrc(t *testing.T, src, array string) *NestInfo {
	t.Helper()
	f, err := ftn.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	u := f.Program()
	st := ftn.Symbols(u)
	arrays := map[string]bool{}
	consts := map[string]int64{}
	for _, name := range st.Names() {
		sym := st.Lookup(name)
		if sym.IsArray() {
			arrays[name] = true
		}
		if sym.Parameter {
			if lit, ok := sym.Init.(*ftn.IntLit); ok {
				consts[name] = lit.Value
			}
		}
	}
	var do *ftn.DoStmt
	ftn.Inspect(u.Body, func(s ftn.Stmt) bool {
		if d, ok := s.(*ftn.DoStmt); ok && do == nil {
			do = d
			return false
		}
		return true
	})
	if do == nil {
		t.Fatal("no loop found")
	}
	return AnalyzeNest(do, consts, arrays)
}

func TestAnalyzeNestInnerLoopSafe(t *testing.T) {
	src := `
program p
  integer, parameter :: nx = 16
  integer as(1:nx)
  integer ix
  do ix = 1, nx
    as(ix) = ix*3
  enddo
end program p
`
	info := analyzeSrc(t, src, "as")
	writes := info.Writes("as")
	if len(writes) != 1 {
		t.Fatalf("writes = %d, want 1", len(writes))
	}
	if got := HasOutputDepAfter(writes[0], writes); got != Infeasible {
		t.Errorf("inner loop write should be safe, got %v", got)
	}
	if len(info.Loops) != 1 || info.Loops[0].Var != "ix" {
		t.Errorf("loops = %+v", info.Loops)
	}
	if hi, _ := info.Loops[0].Hi.Eval(nil); hi != 16 {
		t.Errorf("hi = %d, want 16 (parameter folded)", hi)
	}
}

func TestAnalyzeNestOuterUnsafe(t *testing.T) {
	src := `
program p
  integer, parameter :: nx = 8
  integer as(1:nx)
  integer ix, iy
  do iy = 1, nx
    do ix = 1, nx
      as(ix) = ix + iy
    enddo
  enddo
end program p
`
	info := analyzeSrc(t, src, "as")
	writes := info.Writes("as")
	if len(writes) != 1 {
		t.Fatalf("writes = %d, want 1", len(writes))
	}
	if got := HasOutputDepAfter(writes[0], writes); got != Feasible {
		t.Errorf("outer nest rewrite should be unsafe, got %v", got)
	}
}

func TestAnalyzeNestScalarForwardSubstitution(t *testing.T) {
	src := `
program p
  integer as(1:100)
  integer ix, tx
  do ix = 1, 50
    tx = ix + 50
    as(tx) = ix
  enddo
end program p
`
	info := analyzeSrc(t, src, "as")
	writes := info.Writes("as")
	if len(writes) != 1 {
		t.Fatalf("writes = %d", len(writes))
	}
	w := writes[0]
	if w.NonAffine {
		t.Fatal("tx = ix + 50 should forward-substitute")
	}
	want := Var("ix").Add(NewAffine(50))
	if !w.Subs[0].Equal(want) {
		t.Errorf("subscript = %v, want %v", w.Subs[0], want)
	}
}

func TestAnalyzeNestModPoisons(t *testing.T) {
	src := `
program p
  integer as(1:100)
  integer ix, tx
  do ix = 1, 100
    tx = mod(ix, 10)
    as(tx) = ix
  enddo
end program p
`
	info := analyzeSrc(t, src, "as")
	writes := info.Writes("as")
	if len(writes) != 1 || !writes[0].NonAffine {
		t.Errorf("mod-based subscript should be non-affine: %+v", writes)
	}
}

func TestAnalyzeNestCallPoisonsArray(t *testing.T) {
	src := `
program p
  integer at(1:100)
  integer iy
  do iy = 1, 10
    call p2(iy, at)
  enddo
end program p
`
	info := analyzeSrc(t, src, "at")
	writes := info.Writes("at")
	if len(writes) != 1 {
		t.Fatalf("call should record a conservative write, got %d", len(writes))
	}
	if !writes[0].NonAffine {
		t.Error("call write should be non-affine (conservative)")
	}
}

func TestAnalyzeNestIfBranchMerge(t *testing.T) {
	src := `
program p
  integer as(1:100)
  integer ix, tx
  do ix = 1, 50
    tx = ix
    if (ix > 25) then
      tx = ix + 1
    endif
    as(tx) = ix
  enddo
end program p
`
	info := analyzeSrc(t, src, "as")
	writes := info.Writes("as")
	if len(writes) != 1 || !writes[0].NonAffine {
		t.Error("branch-dependent scalar must poison the subscript")
	}
}
