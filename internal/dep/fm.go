package dep

import (
	"fmt"
	"sort"
	"strings"
)

// Feasibility is the three-valued answer of the integer solver.
type Feasibility int

// Solver answers.
const (
	Infeasible Feasibility = iota // provably no integer solution
	Feasible                      // provably an integer solution exists
	Unknown                       // analysis could not decide (treat as feasible)
)

// String names the feasibility value.
func (f Feasibility) String() string {
	switch f {
	case Infeasible:
		return "infeasible"
	case Feasible:
		return "feasible"
	case Unknown:
		return "unknown"
	}
	return fmt.Sprintf("Feasibility(%d)", int(f))
}

// LinTerm is one variable's coefficient in a constraint row.
type LinTerm struct {
	Var  string
	Coef int64
}

// Constraint is  Σ coef·var + Const  (= 0 | ≥ 0).
type Constraint struct {
	Terms []LinTerm
	Const int64
	Eq    bool // true: equality; false: ≥ 0
}

func (c Constraint) String() string {
	var sb strings.Builder
	for i, t := range c.Terms {
		if i > 0 {
			sb.WriteString(" + ")
		}
		fmt.Fprintf(&sb, "%d*%s", t.Coef, t.Var)
	}
	if len(c.Terms) == 0 {
		sb.WriteString("0")
	}
	fmt.Fprintf(&sb, " + %d", c.Const)
	if c.Eq {
		sb.WriteString(" == 0")
	} else {
		sb.WriteString(" >= 0")
	}
	return sb.String()
}

// coefOf returns the coefficient of v in c.
func (c Constraint) coefOf(v string) int64 {
	for _, t := range c.Terms {
		if t.Var == v {
			return t.Coef
		}
	}
	return 0
}

// withoutVar returns c's terms minus variable v.
func (c Constraint) withoutVar(v string) []LinTerm {
	out := make([]LinTerm, 0, len(c.Terms))
	for _, t := range c.Terms {
		if t.Var != v {
			out = append(out, t)
		}
	}
	return out
}

// System is a conjunction of integer linear constraints.
type System struct {
	Cons []Constraint
}

// AddEq adds the equality a = 0 over the system's variables.
func (s *System) AddEq(a Affine) { s.add(a, true) }

// AddGE adds the inequality a ≥ 0.
func (s *System) AddGE(a Affine) { s.add(a, false) }

// AddLE adds a ≤ 0 (i.e. -a ≥ 0).
func (s *System) AddLE(a Affine) { s.add(a.Scale(-1), false) }

// add converts an affine form to a constraint row. Symbolic terms are kept
// as ordinary variables (they become unbounded unknowns, which keeps the
// solver conservative: it can never prove infeasibility via an unbounded
// symbol unless the symbol cancels).
func (s *System) add(a Affine, eq bool) {
	c := Constraint{Const: a.Const, Eq: eq}
	for _, v := range a.Vars() {
		c.Terms = append(c.Terms, LinTerm{Var: v, Coef: a.Coef[v]})
	}
	syms := make([]string, 0, len(a.Syms))
	for sym := range a.Syms {
		syms = append(syms, sym)
	}
	sort.Strings(syms)
	for _, sym := range syms {
		c.Terms = append(c.Terms, LinTerm{Var: "$" + sym, Coef: a.Syms[sym]})
	}
	s.Cons = append(s.Cons, c)
}

// Clone deep-copies the system.
func (s *System) Clone() *System {
	c := &System{Cons: make([]Constraint, len(s.Cons))}
	for i, con := range s.Cons {
		c.Cons[i] = Constraint{Terms: append([]LinTerm(nil), con.Terms...), Const: con.Const, Eq: con.Eq}
	}
	return c
}

// vars returns all variables mentioned, sorted.
func (s *System) vars() []string {
	set := map[string]bool{}
	for _, c := range s.Cons {
		for _, t := range c.Terms {
			if t.Coef != 0 {
				set[t.Var] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Solve decides integer feasibility of the system using equality
// normalization followed by Fourier–Motzkin elimination with the dark-shadow
// integer refinement (the same technique family as the Omega test). It is
// exact (never returns Unknown) when all eliminations are unit-coefficient
// or dark-shadow exact, which covers the affine subscripts that occur in the
// paper's domain.
func (s *System) Solve() Feasibility {
	sys := s.Clone()
	exact := true

	// Phase 1: eliminate equalities.
	for {
		progress := false
		for i := 0; i < len(sys.Cons); i++ {
			c := sys.Cons[i]
			if !c.Eq {
				continue
			}
			c = normalize(c)
			if len(c.Terms) == 0 {
				if c.Const != 0 {
					return Infeasible
				}
				sys.Cons = append(sys.Cons[:i], sys.Cons[i+1:]...)
				i--
				progress = true
				continue
			}
			// GCD test: gcd of coefficients must divide the constant.
			g := int64(0)
			for _, t := range c.Terms {
				g = gcd(g, t.Coef)
			}
			if g > 1 {
				if c.Const%g != 0 {
					return Infeasible
				}
				for j := range c.Terms {
					c.Terms[j].Coef /= g
				}
				c.Const /= g
			}
			// Substitute a unit-coefficient variable if there is one.
			idx := -1
			for j, t := range c.Terms {
				if t.Coef == 1 || t.Coef == -1 {
					idx = j
					break
				}
			}
			if idx < 0 {
				// No unit coefficient: leave the equality as a pair of
				// inequalities; mark inexact (FM may not be able to prove
				// integer feasibility).
				exact = false
				ge := Constraint{Terms: c.Terms, Const: c.Const, Eq: false}
				le := Constraint{Terms: negTerms(c.Terms), Const: -c.Const, Eq: false}
				sys.Cons[i] = ge
				sys.Cons = append(sys.Cons, le)
				progress = true
				continue
			}
			v := c.Terms[idx].Var
			coef := c.Terms[idx].Coef
			// v = -(rest + Const)/coef ; coef = ±1.
			rest := c.withoutVar(v)
			repl := replacement{terms: rest, constant: c.Const, negate: coef == 1}
			sys.Cons = append(sys.Cons[:i], sys.Cons[i+1:]...)
			substAll(sys, v, repl)
			progress = true
			i--
		}
		if !progress {
			break
		}
	}

	// Phase 2: Fourier–Motzkin elimination on inequalities.
	for {
		vars := sys.vars()
		if len(vars) == 0 {
			break
		}
		// Pick the variable with the fewest lower×upper combinations.
		best, bestCost := "", int(^uint(0)>>1)
		for _, v := range vars {
			lo, hi := 0, 0
			for _, c := range sys.Cons {
				switch k := c.coefOf(v); {
				case k > 0:
					lo++
				case k < 0:
					hi++
				}
			}
			cost := lo * hi
			if cost < bestCost {
				best, bestCost = v, cost
			}
		}
		v := best
		var lows, highs, rest []Constraint
		for _, c := range sys.Cons {
			switch k := c.coefOf(v); {
			case k > 0:
				lows = append(lows, c) // a·v ≥ L form: a·v + rest + const ≥ 0
			case k < 0:
				highs = append(highs, c)
			default:
				rest = append(rest, c)
			}
		}
		if len(lows) == 0 || len(highs) == 0 {
			// v unbounded on one side: all constraints involving v are
			// satisfiable by pushing v far enough; drop them.
			sys.Cons = rest
			continue
		}
		for _, lo := range lows {
			if maxAbsCoef(lo) > coefLimit {
				return Unknown
			}
			a := lo.coefOf(v)
			for _, hi := range highs {
				if maxAbsCoef(hi) > coefLimit {
					return Unknown
				}
				b := -hi.coefOf(v)
				// lo: a·v + Lrest ≥ 0  →  a·v ≥ -Lrest
				// hi: -b·v + Hrest ≥ 0 →  b·v ≤ Hrest
				// real shadow: b·(-Lrest) ≤ a·Hrest → a·Hrest + b·Lrest ≥ 0.
				comb := combine(lo, hi, b, a, v)
				// When a==1 or b==1 the real shadow is integer-exact; with
				// both coefficients > 1 it only bounds rational solutions,
				// so a Feasible outcome degrades to Unknown (Infeasible
				// stays sound: no rational solution means no integer one).
				if a > 1 && b > 1 {
					exact = false
				}
				comb = normalize(comb)
				if len(comb.Terms) == 0 && comb.Const < 0 {
					return Infeasible
				}
				if len(comb.Terms) > 0 || comb.Const < 0 {
					rest = append(rest, comb)
				}
			}
		}
		sys.Cons = rest
		if len(sys.Cons) > 4000 {
			// Constraint explosion guard; the dependence problems in our
			// domain never approach this.
			return Unknown
		}
	}

	// All variables eliminated: check residual constant constraints.
	for _, c := range sys.Cons {
		if c.Eq && c.Const != 0 {
			return Infeasible
		}
		if !c.Eq && c.Const < 0 {
			return Infeasible
		}
	}
	if exact {
		return Feasible
	}
	return Unknown
}

// coefLimit bounds coefficient growth during elimination. Combining two
// rows multiplies coefficients pairwise; with every input magnitude at most
// coefLimit (2³⁰) the products stay under 2⁶⁰ and their sums under 2⁶², so
// int64 arithmetic cannot overflow within one round. A row that grows past
// the limit makes the solver answer Unknown — the conservative verdict
// (treated as feasible by dependence tests) — instead of deciding from
// silently wrapped numbers.
const coefLimit = 1 << 30

// maxAbsCoef returns the largest magnitude among a row's coefficients and
// constant.
func maxAbsCoef(c Constraint) int64 {
	m := c.Const
	if m < 0 {
		m = -m
	}
	for _, t := range c.Terms {
		k := t.Coef
		if k < 0 {
			k = -k
		}
		if k > m {
			m = k
		}
	}
	return m
}

// replacement is v := ±(terms + constant) used for equality substitution.
type replacement struct {
	terms    []LinTerm
	constant int64
	negate   bool // true when v had coefficient +1: v = -(rest+const)
}

func substAll(sys *System, v string, r replacement) {
	sign := int64(1)
	if r.negate {
		sign = -1
	}
	for i := range sys.Cons {
		c := &sys.Cons[i]
		k := c.coefOf(v)
		if k == 0 {
			continue
		}
		terms := c.withoutVar(v)
		for _, t := range r.terms {
			terms = addTerm(terms, t.Var, sign*k*t.Coef)
		}
		c.Terms = terms
		c.Const += sign * k * r.constant
	}
}

func addTerm(terms []LinTerm, v string, coef int64) []LinTerm {
	if coef == 0 {
		return terms
	}
	for i := range terms {
		if terms[i].Var == v {
			terms[i].Coef += coef
			if terms[i].Coef == 0 {
				return append(terms[:i], terms[i+1:]...)
			}
			return terms
		}
	}
	return append(terms, LinTerm{Var: v, Coef: coef})
}

func negTerms(terms []LinTerm) []LinTerm {
	out := make([]LinTerm, len(terms))
	for i, t := range terms {
		out[i] = LinTerm{Var: t.Var, Coef: -t.Coef}
	}
	return out
}

// combine forms  mulLo·lo + mulHi·hi  with variable v eliminated.
func combine(lo, hi Constraint, mulLo, mulHi int64, v string) Constraint {
	var terms []LinTerm
	for _, t := range lo.Terms {
		if t.Var != v {
			terms = addTerm(terms, t.Var, mulLo*t.Coef)
		}
	}
	for _, t := range hi.Terms {
		if t.Var != v {
			terms = addTerm(terms, t.Var, mulHi*t.Coef)
		}
	}
	return Constraint{Terms: terms, Const: mulLo*lo.Const + mulHi*hi.Const}
}

// normalize divides an inequality by the gcd of its coefficients (floor on
// the constant, which is exact for integer constraints) and drops zero terms.
func normalize(c Constraint) Constraint {
	terms := make([]LinTerm, 0, len(c.Terms))
	for _, t := range c.Terms {
		if t.Coef != 0 {
			terms = append(terms, t)
		}
	}
	c.Terms = terms
	if len(terms) == 0 {
		return c
	}
	g := int64(0)
	for _, t := range terms {
		g = gcd(g, t.Coef)
	}
	if g > 1 {
		for i := range c.Terms {
			c.Terms[i].Coef /= g
		}
		if c.Eq {
			// Caller checks divisibility for equalities.
			if c.Const%g == 0 {
				c.Const /= g
			} else {
				// Leave as-is; the equality GCD test will catch it.
				for i := range c.Terms {
					c.Terms[i].Coef *= g
				}
				return c
			}
		} else {
			c.Const = floorDiv(c.Const, g)
		}
	}
	return c
}

func floorDiv(a, b int64) int64 {
	q := a / b
	if (a%b != 0) && ((a < 0) != (b < 0)) {
		q--
	}
	return q
}
