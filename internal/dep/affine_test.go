package dep

import (
	"testing"

	"repro/internal/ftn"
)

func parseExpr(t *testing.T, src string) ftn.Expr {
	t.Helper()
	f, err := ftn.Parse("program p\nx = " + src + "\nend program p\n")
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return f.Program().Body[0].(*ftn.AssignStmt).RHS
}

func TestFromExprAffine(t *testing.T) {
	env := &Env{
		LoopVars: map[string]bool{"i": true, "j": true},
		Consts:   map[string]int64{"np": 4},
	}
	cases := []struct {
		src  string
		want string
		ok   bool
	}{
		{"i", "1*i", true},
		{"i + 1", "1*i + 1", true},
		{"2*i - j + 3", "2*i + -1*j + 3", true},
		{"np*i", "4*i", true},
		{"i*np + j", "4*i + 1*j", true},
		{"(i + j)*2", "2*i + 2*j", true},
		{"i - i", "0", true},
		{"-i", "-1*i", true},
		{"n + i", "1*i + 1*n", true}, // n symbolic
		{"6*i/2", "3*i", true},       // exact division
		{"i/2", "", false},           // inexact division
		{"i*j", "", false},           // bilinear
		{"mod(i, 4)", "", false},     // intrinsic call
		{"2**3 + i", "1*i + 8", true},
		{"7/2", "3", true},
	}
	for _, c := range cases {
		a, ok := FromExpr(parseExpr(t, c.src), env)
		if ok != c.ok {
			t.Errorf("FromExpr(%q) ok = %v, want %v", c.src, ok, c.ok)
			continue
		}
		if ok && a.String() != c.want {
			t.Errorf("FromExpr(%q) = %q, want %q", c.src, a.String(), c.want)
		}
	}
}

func TestAffineArithmetic(t *testing.T) {
	a := Var("i").Scale(2).Add(NewAffine(3)) // 2i + 3
	b := Var("i").Add(Var("j"))              // i + j
	sum := a.Add(b)
	if got := sum.String(); got != "3*i + 1*j + 3" {
		t.Errorf("sum = %q", got)
	}
	diff := a.Sub(a)
	if !diff.IsConst() || diff.Const != 0 {
		t.Errorf("a - a = %v", diff)
	}
	if !a.Equal(a.Clone()) {
		t.Error("clone not equal")
	}
}

func TestAffineBindAndEval(t *testing.T) {
	a := NewAffine(1)
	a.Syms = map[string]int64{"nx": 2}
	a = a.Add(Var("i"))
	b := a.Bind(map[string]int64{"nx": 10})
	if b.HasSyms() {
		t.Errorf("bind left syms: %v", b)
	}
	if b.Const != 21 {
		t.Errorf("bind const = %d, want 21", b.Const)
	}
	v, ok := b.Eval(map[string]int64{"i": 5})
	if !ok || v != 26 {
		t.Errorf("eval = %d,%v want 26,true", v, ok)
	}
	if _, ok := a.Eval(map[string]int64{"i": 5}); ok {
		t.Error("eval with unbound symbol should fail")
	}
}

func TestAffineRename(t *testing.T) {
	a := Var("i").Add(Var("j").Scale(2))
	r := a.Rename(func(v string) string { return v + "'" })
	if r.CoefOf("i'") != 1 || r.CoefOf("j'") != 2 || r.CoefOf("i") != 0 {
		t.Errorf("rename = %v", r)
	}
}

func TestSystemSolveBasics(t *testing.T) {
	// x >= 0, x <= 5, x == 3: feasible.
	s := &System{}
	s.AddGE(Var("x"))
	s.AddGE(NewAffine(5).Sub(Var("x")))
	s.AddEq(Var("x").Sub(NewAffine(3)))
	if got := s.Solve(); got != Feasible {
		t.Errorf("solve = %v, want feasible", got)
	}
	// x >= 4, x <= 2: infeasible.
	s2 := &System{}
	s2.AddGE(Var("x").Sub(NewAffine(4)))
	s2.AddGE(NewAffine(2).Sub(Var("x")))
	if got := s2.Solve(); got != Infeasible {
		t.Errorf("solve = %v, want infeasible", got)
	}
	// 2x == 1: no integer solution (GCD test).
	s3 := &System{}
	s3.AddEq(Var("x").Scale(2).Sub(NewAffine(1)))
	if got := s3.Solve(); got != Infeasible {
		t.Errorf("solve 2x=1 = %v, want infeasible", got)
	}
	// 2x == 4 with 0 <= x <= 5: feasible.
	s4 := &System{}
	s4.AddEq(Var("x").Scale(2).Sub(NewAffine(4)))
	s4.AddGE(Var("x"))
	s4.AddGE(NewAffine(5).Sub(Var("x")))
	if got := s4.Solve(); got == Infeasible {
		t.Errorf("solve 2x=4 = %v, want not infeasible", got)
	}
}

func TestSystemTwoVariables(t *testing.T) {
	// i - j == 0, 1 <= i <= 10, 11 <= j <= 20: infeasible.
	s := &System{}
	s.AddEq(Var("i").Sub(Var("j")))
	s.AddGE(Var("i").Sub(NewAffine(1)))
	s.AddGE(NewAffine(10).Sub(Var("i")))
	s.AddGE(Var("j").Sub(NewAffine(11)))
	s.AddGE(NewAffine(20).Sub(Var("j")))
	if got := s.Solve(); got != Infeasible {
		t.Errorf("solve = %v, want infeasible", got)
	}
	// Same but j in 5..20: feasible (i = j in 5..10).
	s2 := &System{}
	s2.AddEq(Var("i").Sub(Var("j")))
	s2.AddGE(Var("i").Sub(NewAffine(1)))
	s2.AddGE(NewAffine(10).Sub(Var("i")))
	s2.AddGE(Var("j").Sub(NewAffine(5)))
	s2.AddGE(NewAffine(20).Sub(Var("j")))
	if got := s2.Solve(); got != Feasible {
		t.Errorf("solve = %v, want feasible", got)
	}
}

func TestSystemUnboundedSymbol(t *testing.T) {
	// i == n (n unknown symbol), 1 <= i <= 10: feasible (n could be 5);
	// the solver must not claim infeasibility through an unbounded symbol.
	a := Var("i")
	n := NewAffine(0)
	n.Syms = map[string]int64{"n": 1}
	s := &System{}
	s.AddEq(a.Sub(n))
	s.AddGE(Var("i").Sub(NewAffine(1)))
	s.AddGE(NewAffine(10).Sub(Var("i")))
	if got := s.Solve(); got == Infeasible {
		t.Errorf("solve = %v, want not infeasible", got)
	}
}
