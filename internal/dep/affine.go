// Package dep implements the data-dependence analysis the Compuniformer
// relies on: affine subscript extraction, the GCD and Banerjee disproof
// tests, an exact Fourier–Motzkin integer solver (the role the Omega test
// plays in the paper), dependence direction vectors, and loop-interchange
// legality.
package dep

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ftn"
)

// Affine is a linear form  Const + Σ Coef[v]·v + Σ Syms[s]·s  where v ranges
// over loop index variables and s over loop-invariant symbolic names whose
// values are unknown at analysis time.
type Affine struct {
	Const int64
	Coef  map[string]int64 // loop variable -> coefficient
	Syms  map[string]int64 // symbolic invariant -> coefficient
}

// NewAffine returns the affine form equal to the constant c.
func NewAffine(c int64) Affine {
	return Affine{Const: c, Coef: map[string]int64{}, Syms: map[string]int64{}}
}

// Var returns the affine form equal to the single loop variable v.
func Var(v string) Affine {
	a := NewAffine(0)
	a.Coef[v] = 1
	return a
}

// Clone deep-copies a.
func (a Affine) Clone() Affine {
	c := Affine{Const: a.Const, Coef: make(map[string]int64, len(a.Coef)), Syms: make(map[string]int64, len(a.Syms))}
	for k, v := range a.Coef {
		c.Coef[k] = v
	}
	for k, v := range a.Syms {
		c.Syms[k] = v
	}
	return c
}

// Add returns a + b.
func (a Affine) Add(b Affine) Affine {
	c := a.Clone()
	c.Const += b.Const
	for k, v := range b.Coef {
		c.Coef[k] += v
		if c.Coef[k] == 0 {
			delete(c.Coef, k)
		}
	}
	for k, v := range b.Syms {
		c.Syms[k] += v
		if c.Syms[k] == 0 {
			delete(c.Syms, k)
		}
	}
	return c
}

// Sub returns a - b.
func (a Affine) Sub(b Affine) Affine { return a.Add(b.Scale(-1)) }

// Scale returns k·a.
func (a Affine) Scale(k int64) Affine {
	c := NewAffine(a.Const * k)
	if k == 0 {
		return c
	}
	for n, v := range a.Coef {
		c.Coef[n] = v * k
	}
	for n, v := range a.Syms {
		c.Syms[n] = v * k
	}
	return c
}

// IsConst reports whether a has no variable or symbolic part.
func (a Affine) IsConst() bool { return len(a.Coef) == 0 && len(a.Syms) == 0 }

// ConstVal returns the constant value; valid only when IsConst.
func (a Affine) ConstVal() int64 { return a.Const }

// HasSyms reports whether any unresolved symbolic term remains.
func (a Affine) HasSyms() bool { return len(a.Syms) > 0 }

// Vars returns the loop variables with nonzero coefficients, sorted.
func (a Affine) Vars() []string {
	out := make([]string, 0, len(a.Coef))
	for v := range a.Coef {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// CoefOf returns the coefficient of loop variable v (0 if absent).
func (a Affine) CoefOf(v string) int64 { return a.Coef[v] }

// Bind substitutes known integer values for symbolic names and returns the
// (possibly still symbolic) result.
func (a Affine) Bind(values map[string]int64) Affine {
	c := a.Clone()
	for s, coef := range a.Syms {
		if v, ok := values[s]; ok {
			c.Const += coef * v
			delete(c.Syms, s)
		}
	}
	return c
}

// Rename returns a with every loop variable v replaced by rename(v).
func (a Affine) Rename(rename func(string) string) Affine {
	c := NewAffine(a.Const)
	for v, coef := range a.Coef {
		c.Coef[rename(v)] += coef
	}
	for s, coef := range a.Syms {
		c.Syms[s] = coef
	}
	return c
}

// Equal reports structural equality.
func (a Affine) Equal(b Affine) bool {
	d := a.Sub(b)
	return d.Const == 0 && len(d.Coef) == 0 && len(d.Syms) == 0
}

// String renders the form for diagnostics, with terms in sorted order.
func (a Affine) String() string {
	var parts []string
	for _, v := range a.Vars() {
		parts = append(parts, fmt.Sprintf("%d*%s", a.Coef[v], v))
	}
	syms := make([]string, 0, len(a.Syms))
	for s := range a.Syms {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		parts = append(parts, fmt.Sprintf("%d*%s", a.Syms[s], s))
	}
	if a.Const != 0 || len(parts) == 0 {
		parts = append(parts, fmt.Sprintf("%d", a.Const))
	}
	return strings.Join(parts, " + ")
}

// Eval evaluates the form under a full assignment of loop variables and
// symbols; the second result is false if any name is unbound.
func (a Affine) Eval(env map[string]int64) (int64, bool) {
	total := a.Const
	for v, coef := range a.Coef {
		val, ok := env[v]
		if !ok {
			return 0, false
		}
		total += coef * val
	}
	for s, coef := range a.Syms {
		val, ok := env[s]
		if !ok {
			return 0, false
		}
		total += coef * val
	}
	return total, true
}

// Env describes the extraction context: which names are loop index
// variables, and the known integer values of named constants.
type Env struct {
	LoopVars map[string]bool
	Consts   map[string]int64
}

// FromExpr converts a Fortran expression to affine form. The second result
// is false when the expression is not affine in the loop variables (e.g. it
// multiplies two variables, divides by a variable, or calls a function).
func FromExpr(e ftn.Expr, env *Env) (Affine, bool) {
	switch e := e.(type) {
	case *ftn.IntLit:
		return NewAffine(e.Value), true
	case *ftn.Ident:
		if v, ok := env.Consts[e.Name]; ok {
			return NewAffine(v), true
		}
		if env.LoopVars[e.Name] {
			return Var(e.Name), true
		}
		// Loop-invariant symbol.
		a := NewAffine(0)
		a.Syms = map[string]int64{e.Name: 1}
		return a, true
	case *ftn.Unary:
		if e.Op != "-" && e.Op != "+" {
			return Affine{}, false
		}
		x, ok := FromExpr(e.X, env)
		if !ok {
			return Affine{}, false
		}
		if e.Op == "-" {
			return x.Scale(-1), true
		}
		return x, true
	case *ftn.Binary:
		x, okx := FromExpr(e.X, env)
		y, oky := FromExpr(e.Y, env)
		if !okx || !oky {
			return Affine{}, false
		}
		switch e.Op {
		case "+":
			return x.Add(y), true
		case "-":
			return x.Sub(y), true
		case "*":
			if x.IsConst() {
				return y.Scale(x.Const), true
			}
			if y.IsConst() {
				return x.Scale(y.Const), true
			}
			return Affine{}, false
		case "/":
			// Only exact constant division stays affine.
			if x.IsConst() && y.IsConst() && y.Const != 0 {
				return NewAffine(x.Const / y.Const), true
			}
			if y.IsConst() && y.Const != 0 && divisibleBy(x, y.Const) {
				return scaleDiv(x, y.Const), true
			}
			return Affine{}, false
		case "**":
			if x.IsConst() && y.IsConst() && y.Const >= 0 {
				return NewAffine(ipow(x.Const, y.Const)), true
			}
			return Affine{}, false
		}
		return Affine{}, false
	}
	return Affine{}, false
}

func divisibleBy(a Affine, k int64) bool {
	if a.Const%k != 0 {
		return false
	}
	for _, v := range a.Coef {
		if v%k != 0 {
			return false
		}
	}
	for _, v := range a.Syms {
		if v%k != 0 {
			return false
		}
	}
	return true
}

func scaleDiv(a Affine, k int64) Affine {
	c := a.Clone()
	c.Const /= k
	for n := range c.Coef {
		c.Coef[n] /= k
	}
	for n := range c.Syms {
		c.Syms[n] /= k
	}
	return c
}

func ipow(base, exp int64) int64 {
	r := int64(1)
	for ; exp > 0; exp-- {
		r *= base
	}
	return r
}

func gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}
