package core_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// TestFingerprintStable: analyzing the same source twice yields the same
// fingerprint — the memo key is a pure function of the analysis outcome.
func TestFingerprintStable(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	a, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fa, fb := core.Fingerprint(a, "mpich-gm-2005"), core.Fingerprint(b, "mpich-gm-2005")
	if fa != fb {
		t.Fatalf("fingerprint unstable across re-analysis:\n%s\n%s", fa, fb)
	}
	if !strings.HasPrefix(fa, "fp1-") {
		t.Fatalf("fingerprint %q not versioned", fa)
	}
}

// TestFingerprintMachineAndNPSensitive: the machine name and the analysis
// rank count are part of the tuning problem, so each must change the key.
func TestFingerprintMachineAndNPSensitive(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	p, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	gm := core.Fingerprint(p, "mpich-gm-2005")
	if tcp := core.Fingerprint(p, "mpich-tcp-2005"); tcp == gm {
		t.Fatal("fingerprint ignores the machine")
	}
	p8, err := core.Analyze(src, core.AnalyzeOptions{NP: 8})
	if err != nil {
		t.Fatal(err)
	}
	if core.Fingerprint(p8, "mpich-gm-2005") == gm {
		t.Fatal("fingerprint ignores the analysis rank count")
	}
}

// TestFingerprintIgnoresIncidentalSource: two sources presenting the same
// analyzed shape — same sites at the same positions with the same facts —
// are the same tuning problem. A trailing comment changes the bytes but
// not the shape; the sha256 content key would split them, the fingerprint
// must not.
func TestFingerprintIgnoresIncidentalSource(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	lines := strings.SplitN(src, "\n", 2)
	tweaked := lines[0] + " ! incidental comment\n" + lines[1]
	if tweaked == src {
		t.Fatal("tweak did not change the source")
	}
	a, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Analyze(tweaked, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if core.Fingerprint(a, "mpich-gm-2005") != core.Fingerprint(b, "mpich-gm-2005") {
		t.Fatal("fingerprint depends on incidental source bytes")
	}
}

// TestFingerprintSeparatesGeometry: changing the exchange geometry changes
// the candidate tile ladder, so the fingerprint must split — otherwise the
// memo would replay a plan tuned for the wrong shape.
func TestFingerprintSeparatesGeometry(t *testing.T) {
	mk := func(nx int) string {
		return workload.DirectSource(workload.DirectParams{NX: nx, NP: 4})
	}
	a, err := core.Analyze(mk(4096), core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Analyze(mk(8192), core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if core.Fingerprint(a, "mpich-gm-2005") == core.Fingerprint(b, "mpich-gm-2005") {
		t.Fatal("fingerprint blind to exchange geometry")
	}
}

// TestFingerprintCorpusUnique: across the full 40-scenario corpus, every
// scenario's analyzed shape is distinct — no two corpus rows would alias
// in the plan memo on the same machine.
func TestFingerprintCorpusUnique(t *testing.T) {
	scens := workload.GenerateScenarios(workload.GenOptions{})
	seen := map[string]string{} // fingerprint -> scenario name
	for _, sc := range scens {
		p, err := core.Analyze(sc.Source, core.AnalyzeOptions{NP: int64(sc.NP)})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		fp := core.Fingerprint(p, "mpich-gm-2005")
		if prev, ok := seen[fp]; ok {
			t.Fatalf("corpus fingerprint collision: %s and %s", prev, sc.Name)
		}
		seen[fp] = sc.Name
	}
	if len(seen) != len(scens) {
		t.Fatalf("%d fingerprints over %d scenarios", len(seen), len(scens))
	}
}
