package core_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/ftn"
	"repro/internal/interp"
	"repro/internal/netsim"
	"repro/internal/plan"
	"repro/internal/workload"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

// TestGoldenDirect pins the Figure 2 transformation output: the golden file
// is the reviewed transformed source; any codegen change must be looked at.
func TestGoldenDirect(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	want := readTestdata(t, "figure2_after.f90")
	got, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("report:\n%s", rep)
	}
	if got != want {
		t.Errorf("golden mismatch for figure2_after.f90:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenIndirect pins the Figure 3 transformation output.
func TestGoldenIndirect(t *testing.T) {
	src := readTestdata(t, "figure3_before.f90")
	want := readTestdata(t, "figure3_after.f90")
	got, rep, err := core.Transform(src, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("report:\n%s", rep)
	}
	if got != want {
		t.Errorf("golden mismatch for figure3_after.f90:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenCommCode pins the Figure 4 generated exchange: the golden file
// holds the per-tile block as printed by cmd/paperfigs.
func TestGoldenCommCode(t *testing.T) {
	want := strings.TrimRight(readTestdata(t, "figure4_commcode.f90"), "\n")
	// The block must contain the staggered ring of the paper's Figure 4.
	for _, key := range []string{
		"cc_to = mod(cc_me + cc_j, cc_np)",
		"cc_from = mod(cc_np + cc_me - cc_j, cc_np)",
		"call mpi_isend(as(",
		"call mpi_irecv(ar(",
	} {
		if !strings.Contains(want, key) {
			t.Errorf("golden comm code missing %q", key)
		}
	}
}

// TestTransformedGoldenRunsIdentically executes the golden transformed
// sources against their originals (the §4 correctness protocol).
func TestTransformedGoldenRunsIdentically(t *testing.T) {
	cases := []struct {
		before, after string
		np            int
	}{
		{"figure2_before.f90", "figure2_after.f90", 8},
		{"figure3_before.f90", "figure3_after.f90", 4},
	}
	for _, c := range cases {
		orig, err := interp.Load(readTestdata(t, c.before))
		if err != nil {
			t.Fatalf("%s: %v", c.before, err)
		}
		pre, err := interp.Load(readTestdata(t, c.after))
		if err != nil {
			t.Fatalf("%s: %v", c.after, err)
		}
		ro, err := orig.Run(c.np, netsim.MPICHGM())
		if err != nil {
			t.Fatalf("%s: %v", c.before, err)
		}
		rt, err := pre.Run(c.np, netsim.MPICHGM())
		if err != nil {
			t.Fatalf("%s: %v", c.after, err)
		}
		if same, why := interp.SameObservable(ro, rt, "ar"); !same {
			t.Errorf("%s vs %s: %s", c.before, c.after, why)
		}
	}
}

// TestReportContents checks the report plumbing end to end.
func TestReportContents(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	_, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"1 transformed", "direct pattern", "node loop outermost", "K=4", "NP=8"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestMultipleSitesTransformed: two independent ALLTOALL sites in one
// program are both rewritten.
func TestMultipleSitesTransformed(t *testing.T) {
	src := `
program twosites
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 32
  integer, parameter :: np = 4
  integer as(1:nx), ar(1:nx)
  integer bs(1:nx), br(1:nx)
  integer i, ierr

  call mpi_init(ierr)
  do i = 1, nx
    as(i) = i*2
  enddo
  call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
  do i = 1, nx
    bs(i) = ar(i) + i
  enddo
  call mpi_alltoall(bs, nx/np, mpi_integer, br, nx/np, mpi_integer, mpi_comm_world, ierr)
  print *, ar(1), br(nx)
  call mpi_finalize(ierr)
end program twosites
`
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 2 {
		t.Fatalf("transformed %d sites, want 2:\n%s", rep.TransformedCount(), rep)
	}
	if strings.Contains(out, "call mpi_alltoall") {
		t.Error("an original call survived")
	}
	// And the rewritten program still runs identically.
	orig, err := interp.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := interp.Load(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	ro, err := orig.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := pre.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if same, why := interp.Sameprinted(ro, rt); !same {
		t.Errorf("mismatch: %s", why)
	}
}

// TestRejectionsReportedOnce: an untransformable site appears exactly once
// in the report.
func TestRejectionsReportedOnce(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer as(1:8), ar(1:8), i, ierr
  do i = 1, 8
    if (i > 4) then
      as(i) = i
    endif
  enddo
  call mpi_alltoall(as, 2, mpi_integer, ar, 2, mpi_integer, mpi_comm_world, ierr)
end program p
`
	_, rep, err := core.Transform(src, core.Options{K: 2, NP: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 0 {
		t.Fatal("conditional write should not transform")
	}
	if len(rep.Sites) != 1 {
		t.Errorf("sites = %d, want 1:\n%s", len(rep.Sites), rep)
	}
}

// TestOraclePropagation: the semi-automatic oracle flows through Options.
func TestOraclePropagation(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer as(1:8), ar(1:8), other(1:8), i, ierr
  do i = 1, 8
    other(i) = i
  enddo
  do i = 1, 8
    call extfill(as, i)
  enddo
  call mpi_alltoall(as, 2, mpi_integer, ar, 2, mpi_integer, mpi_comm_world, ierr)
end program p
`
	// The oracle says extfill writes as: ℓ is found (then rejected at the
	// pattern stage, since only a call mutates as — but the rejection
	// message proves the oracle was consulted and ℓ located).
	_, rep, err := core.Transform(src, core.Options{K: 2, NP: 4, Oracle: analysis.MapOracle{"extfill:as": true}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rep.Sites {
		if strings.Contains(s.Reason, "procedure calls") {
			found = true
		}
	}
	if !found {
		t.Errorf("report: %s", rep)
	}
}

// TestIdempotentParsePrint: transformed output must itself be parseable and
// printable to a fixpoint (the unparser produces valid subset source).
func TestIdempotentParsePrint(t *testing.T) {
	for _, name := range []string{"figure2_after.f90", "figure3_after.f90"} {
		src := readTestdata(t, name)
		f, err := ftn.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		again := ftn.Print(f)
		if again != src {
			t.Errorf("%s: print(parse(x)) != x", name)
		}
	}
}

// TestPipelineGoldenEquivalence is the redesign's conformance proof: for
// every testdata fixture, Analyze → Plan → Apply must emit byte-identical
// source to the old one-shot path — whose reviewed outputs are the
// committed *_after.f90 goldens — both via the Options shim and via a
// Default(machine) plan with the fixture's K.
func TestPipelineGoldenEquivalence(t *testing.T) {
	cases := []struct {
		before, golden string
		k              int64
	}{
		{"figure2_before.f90", "figure2_after.f90", 4},
		{"figure3_before.f90", "figure3_after.f90", 2},
	}
	for _, c := range cases {
		src := readTestdata(t, c.before)
		want := readTestdata(t, c.golden)
		prog, err := core.Analyze(src, core.AnalyzeOptions{})
		if err != nil {
			t.Fatalf("%s: analyze: %v", c.before, err)
		}

		// Via the Options shim (the legacy one-shot surface).
		got, rep, err := core.Apply(prog, core.Options{K: c.k}.Plan())
		if err != nil {
			t.Fatalf("%s: apply(shim plan): %v", c.before, err)
		}
		if rep.TransformedCount() != 1 {
			t.Fatalf("%s: shim plan did not fire:\n%s", c.before, rep)
		}
		if got != want {
			t.Errorf("%s: Apply(Options{K:%d}.Plan()) differs from golden %s", c.before, c.k, c.golden)
		}

		// Via a machine-default plan with the fixture's K: same bytes.
		pl := plan.Default(plan.MPICHGM2005())
		pl.Default.K = c.k
		got2, _, err := core.Apply(prog, pl)
		if err != nil {
			t.Fatalf("%s: apply(default plan): %v", c.before, err)
		}
		if got2 != want {
			t.Errorf("%s: Apply(plan.Default) differs from golden %s", c.before, c.golden)
		}

		// And the plan survives a JSON round trip without changing output.
		b, err := pl.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := plan.Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		got3, _, err := core.Apply(prog, back)
		if err != nil {
			t.Fatal(err)
		}
		if got3 != want {
			t.Errorf("%s: Apply(decoded plan) differs from golden %s", c.before, c.golden)
		}
	}
}

// TestAnalyzeSites: Analyze surfaces per-site facts a planner needs.
func TestAnalyzeSites(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Sites) != 1 {
		t.Fatalf("sites = %d, want 1", len(prog.Sites))
	}
	s := prog.Sites[0]
	if !s.Transformable {
		t.Fatalf("site not transformable: %s", s.Reason)
	}
	if s.PartitionSize != 8 { // nx=64, np=8
		t.Errorf("partition size %d, want 8", s.PartitionSize)
	}
	if s.TripCount != 64 {
		t.Errorf("trip count %d, want 64", s.TripCount)
	}
	if s.PerIterBytes <= 0 {
		t.Errorf("per-iteration bytes %d, want > 0", s.PerIterBytes)
	}
	if prog.Site(s.Key()) == nil {
		t.Errorf("Site(%q) did not resolve", s.Key())
	}
	if prog.Source() != src {
		t.Error("Program.Source() does not round-trip the input")
	}
}

// TestApplyMatchesTransform: applying a uniform plan at K must produce
// exactly what a fresh Transform at that K produces, for every K the
// transform accepts — the property the tuner's pipeline reuse depends on.
func TestApplyMatchesTransform(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{2, 4, 8} {
		got, grep, err := core.Apply(prog, core.Options{K: k}.Plan())
		if err != nil {
			t.Fatalf("apply K=%d: %v", k, err)
		}
		want, wrep, err := core.Transform(src, core.Options{K: k})
		if err != nil {
			t.Fatalf("transform K=%d: %v", k, err)
		}
		if got != want {
			t.Errorf("K=%d: applied source differs from Transform output", k)
		}
		if grep.TransformedCount() != wrep.TransformedCount() {
			t.Errorf("K=%d: transformed %d sites, want %d", k, grep.TransformedCount(), wrep.TransformedCount())
		}
	}
	// Memoization: an equivalent plan hits the memo, but each caller gets
	// its own defensive report copy — never the stored pointer (a shared
	// pointer would let one caller's mutation race another's read).
	_, r1, _ := core.Apply(prog, core.Options{K: 4}.Plan())
	_, r2, _ := core.Apply(prog, plan.Uniform(plan.Decision{K: 4}))
	if r1 == r2 {
		t.Error("apply memo returned the same *Report pointer to two callers")
	}
	if !reflect.DeepEqual(r1, r2) {
		t.Error("apply memo hit is not value-equal to the stored report")
	}
	// Mutating a hit must not leak into later hits.
	r1.Sites[0].Reason = "mutated by caller"
	r1.Sites[0].Result.K = -1
	r1.Sites[0].Notes = append(r1.Sites[0].Notes, "caller note")
	_, r3, _ := core.Apply(prog, plan.Uniform(plan.Decision{K: 4}))
	if !reflect.DeepEqual(r2, r3) {
		t.Error("mutating a memo hit leaked into a later hit")
	}
}

// TestApplyMemoHitsAreRaceFree: concurrent callers of a memoized plan may
// each mutate their own report copy; under -race this proves hits do not
// share mutable state.
func TestApplyMemoHitsAreRaceFree(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Uniform(plan.Decision{K: 4})
	if _, _, err := core.Apply(prog, pl); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				_, rep, err := core.Apply(prog, pl)
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				// Each caller scribbles on its copy; the race detector
				// flags any sharing with other workers' copies.
				rep.Sites[0].Reason = fmt.Sprintf("worker %d iter %d", w, i)
				rep.Sites[0].Result.Notes = append(rep.Sites[0].Result.Notes, "scribble")
				rep.Sites[0].Result.K = int64(i)
			}
		}(w)
	}
	wg.Wait()
}

// TestApplyRejectsBadPlans: an invalid plan is an error; a K the
// transformation cannot honor is reported, not fatal, and does not poison
// other plans.
func TestApplyRejectsBadPlans(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90") // psz = 8
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := core.Apply(prog, &plan.Plan{Schema: "bogus", Default: plan.Decision{K: 4}}); err == nil {
		t.Error("invalid plan accepted")
	}
	if _, _, err := core.Apply(prog, plan.Uniform(plan.Decision{K: 8, Wait: "sometimes"})); err == nil {
		t.Error("invalid wait schedule accepted")
	}
	_, rep, err := core.Apply(prog, plan.Uniform(plan.Decision{K: 3})) // does not divide psz
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 0 {
		t.Error("K=3 should not transform (does not divide psz)")
	}
	_, rep, err = core.Apply(prog, plan.Uniform(plan.Decision{K: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Errorf("K=8 should transform after a rejected K:\n%s", rep)
	}
}

// TestPlanKnobsChangeCodegen: the non-K knobs actually steer the generated
// code — per-site, through a serializable plan.
func TestPlanKnobsChangeCodegen(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, rep, err := core.Apply(prog, plan.Uniform(plan.Decision{K: 4}))
	if err != nil || rep.TransformedCount() != 1 {
		t.Fatalf("base apply failed: %v\n%s", err, rep)
	}
	if !strings.Contains(base, "staggered subset-send traversal") {
		t.Fatal("default plan should stagger this kernel")
	}

	seq, _, err := core.Apply(prog, plan.Uniform(plan.Decision{K: 4, SendOrder: plan.SendSequential}))
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(seq, "staggered subset-send traversal") {
		t.Error("send_order sequential still staggered")
	}
	if seq == base {
		t.Error("send_order knob changed nothing")
	}

	perTile, _, err := core.Apply(prog, plan.Uniform(plan.Decision{K: 4, Wait: plan.WaitPerTile}))
	if err != nil {
		t.Fatal(err)
	}
	if perTile == base {
		t.Error("wait knob changed nothing")
	}

	// A per-site decision overrides the default for that site only.
	sitePlan := plan.Uniform(plan.Decision{K: 4})
	sitePlan.Set(prog.Sites[0].Key(), plan.Decision{K: 8})
	persite, rep, err := core.Apply(prog, sitePlan)
	if err != nil || rep.TransformedCount() != 1 {
		t.Fatalf("per-site apply failed: %v", err)
	}
	want, _, err := core.Apply(prog, plan.Uniform(plan.Decision{K: 8}))
	if err != nil {
		t.Fatal(err)
	}
	if persite != want {
		t.Error("per-site decision did not apply")
	}
	if rep.Sites[0].Decision.K != 8 {
		t.Errorf("report decision K=%d, want 8", rep.Sites[0].Decision.K)
	}
}

// TestSkipAllByteIdentical: a plan that skips every site is the identity —
// Apply hands back the original source byte-for-byte (not a print∘parse
// approximation of it), reports every site as skipped, and the exec variant
// cache therefore hits on the original's hash instead of compiling a
// second artifact.
func TestSkipAllByteIdentical(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	out, rep, err := core.Apply(prog, plan.Uniform(plan.Identity()))
	if err != nil {
		t.Fatal(err)
	}
	if out != src {
		t.Error("skip-all variant is not byte-identical to the original source")
	}
	if rep.TransformedCount() != 0 {
		t.Errorf("skip-all transformed %d sites:\n%s", rep.TransformedCount(), rep)
	}
	if rep.SkippedCount() != len(prog.Sites) {
		t.Errorf("skipped %d of %d sites:\n%s", rep.SkippedCount(), len(prog.Sites), rep)
	}
	for _, sr := range rep.Sites {
		if !sr.Skipped || !sr.Decision.Skip {
			t.Errorf("site %s report not marked skipped: %+v", sr.Pos, sr)
		}
	}
	if s := rep.String(); !strings.Contains(s, "skipped by plan") {
		t.Errorf("report does not say skipped by plan:\n%s", s)
	}

	// The byte identity is what makes skip free at execution time: compiling
	// the original then the skip-all variant is one compile and one hit.
	store := exec.NewMemStore()
	if _, err := store.Get(src); err != nil {
		t.Fatal(err)
	}
	if _, err := store.Get(out); err != nil {
		t.Fatal(err)
	}
	if st := store.Stats(); st.Compiled != 1 || st.Hits != 1 {
		t.Errorf("store stats %+v, want 1 compiled + 1 hit on the original's hash", st)
	}
}

// TestMixedSkipTransformDifferential: on a multi-site program, a plan that
// skips one site and transforms the other must leave the skipped call
// untouched, rewrite the other, and still run bit-identically to the
// original (the §4 protocol, with the tree-walking interpreter as oracle).
func TestMixedSkipTransformDifferential(t *testing.T) {
	src := workload.MultiSource(workload.MultiParams{
		NX: 256, M: 16, NY: 8, SZ: 8, NP: 4,
	})
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.TransformableCount() != 2 {
		t.Fatalf("transformable sites = %d, want 2", prog.TransformableCount())
	}
	pl := plan.Uniform(plan.Decision{K: 4})
	pl.Set(prog.Sites[0].Key(), plan.Identity())
	pl.Set(prog.Sites[1].Key(), plan.Decision{K: 8}.Normalize())
	out, rep, err := core.Apply(prog, pl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 || rep.SkippedCount() != 1 {
		t.Fatalf("transformed %d, skipped %d, want 1 and 1:\n%s",
			rep.TransformedCount(), rep.SkippedCount(), rep)
	}
	// Exactly one original alltoall call survives — the skipped one.
	if n := strings.Count(out, "call mpi_alltoall"); n != 1 {
		t.Errorf("%d original alltoall calls in output, want exactly 1 (the skipped site)", n)
	}
	if out == src {
		t.Error("mixed plan changed nothing")
	}
	// Differential run against the original.
	orig, err := interp.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := interp.Load(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	ro, err := orig.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := mixed.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	if same, why := interp.SameObservable(ro, rt, "ar", "br"); !same {
		t.Errorf("mixed skip/transform rewrite changed results: %s", why)
	}
}

// TestApplyRejectsUnknownSite: a plan entry keyed to a site the program
// does not contain (a stale dump, a typo) must fail loudly instead of
// silently applying the default everywhere.
func TestApplyRejectsUnknownSite(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pl := plan.Uniform(plan.Decision{K: 4})
	pl.Set("999:1", plan.Decision{K: 8}.Normalize())
	if _, _, err := core.Apply(prog, pl); err == nil {
		t.Fatal("Apply accepted a plan referencing a nonexistent site")
	} else if !strings.Contains(err.Error(), "999:1") {
		t.Errorf("error does not name the bogus site: %v", err)
	}
	// The real site key still works.
	pl = plan.Uniform(plan.Decision{K: 4})
	pl.Set(prog.Sites[0].Key(), plan.Decision{K: 8}.Normalize())
	if _, _, err := core.Apply(prog, pl); err != nil {
		t.Fatalf("Apply rejected a valid per-site plan: %v", err)
	}
}

// TestMultiSiteDivergentApply: a multi-site program rewritten under a plan
// with a different decision per site must (a) transform every site with
// its own K, (b) keep the generated cc_* helper names unique across sites,
// and (c) still run bit-identically to the original.
func TestMultiSiteDivergentApply(t *testing.T) {
	src := workload.MultiSource(workload.MultiParams{
		NX: 256, M: 16, NY: 8, SZ: 8, NP: 4,
	})
	prog, err := core.Analyze(src, core.AnalyzeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if prog.TransformableCount() != 2 {
		t.Fatalf("transformable sites = %d, want 2", prog.TransformableCount())
	}
	wantK := map[string]int64{}
	pl := plan.Uniform(plan.Decision{K: 4})
	ks := []int64{16, 2}
	for i := range prog.Sites {
		pl.Set(prog.Sites[i].Key(), plan.Decision{K: ks[i]}.Normalize())
		wantK[prog.Sites[i].Key()] = ks[i]
	}
	out, rep, err := core.Apply(prog, pl)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 2 {
		t.Fatalf("transformed %d sites, want 2:\n%s", rep.TransformedCount(), rep)
	}
	for _, sr := range rep.Sites {
		if got := sr.Result.K; got != wantK[sr.Pos.String()] {
			t.Errorf("site %s transformed at K=%d, want %d", sr.Pos, got, wantK[sr.Pos.String()])
		}
	}
	// Fresh names must not collide across the two rewritten sites: every
	// cc_* identifier is declared exactly once.
	f, err := ftn.Parse(out)
	if err != nil {
		t.Fatalf("transformed source does not re-parse: %v", err)
	}
	declared := map[string]int{}
	for _, u := range f.Units {
		for _, d := range u.Decls {
			for _, e := range d.Entities {
				if strings.HasPrefix(e.Name, "cc_") {
					declared[e.Name]++
				}
			}
		}
	}
	if len(declared) == 0 {
		t.Fatal("no cc_* helpers declared")
	}
	for name, n := range declared {
		if n != 1 {
			t.Errorf("helper %s declared %d times", name, n)
		}
	}
	// Differential run: original vs divergent-plan rewrite.
	for _, variant := range []string{src, out} {
		if _, err := interp.Load(variant); err != nil {
			t.Fatal(err)
		}
	}
	orig, _ := interp.Load(src)
	pre, _ := interp.Load(out)
	ro, err := orig.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := pre.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	if same, why := interp.SameObservable(ro, rt, "ar", "br"); !same {
		t.Errorf("divergent-plan rewrite changed results: %s", why)
	}
}
