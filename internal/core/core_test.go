package core_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/ftn"
	"repro/internal/interp"
	"repro/internal/netsim"
)

func readTestdata(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return string(b)
}

// TestGoldenDirect pins the Figure 2 transformation output: the golden file
// is the reviewed transformed source; any codegen change must be looked at.
func TestGoldenDirect(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	want := readTestdata(t, "figure2_after.f90")
	got, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("report:\n%s", rep)
	}
	if got != want {
		t.Errorf("golden mismatch for figure2_after.f90:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenIndirect pins the Figure 3 transformation output.
func TestGoldenIndirect(t *testing.T) {
	src := readTestdata(t, "figure3_before.f90")
	want := readTestdata(t, "figure3_after.f90")
	got, rep, err := core.Transform(src, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("report:\n%s", rep)
	}
	if got != want {
		t.Errorf("golden mismatch for figure3_after.f90:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestGoldenCommCode pins the Figure 4 generated exchange: the golden file
// holds the per-tile block as printed by cmd/paperfigs.
func TestGoldenCommCode(t *testing.T) {
	want := strings.TrimRight(readTestdata(t, "figure4_commcode.f90"), "\n")
	// The block must contain the staggered ring of the paper's Figure 4.
	for _, key := range []string{
		"cc_to = mod(cc_me + cc_j, cc_np)",
		"cc_from = mod(cc_np + cc_me - cc_j, cc_np)",
		"call mpi_isend(as(",
		"call mpi_irecv(ar(",
	} {
		if !strings.Contains(want, key) {
			t.Errorf("golden comm code missing %q", key)
		}
	}
}

// TestTransformedGoldenRunsIdentically executes the golden transformed
// sources against their originals (the §4 correctness protocol).
func TestTransformedGoldenRunsIdentically(t *testing.T) {
	cases := []struct {
		before, after string
		np            int
	}{
		{"figure2_before.f90", "figure2_after.f90", 8},
		{"figure3_before.f90", "figure3_after.f90", 4},
	}
	for _, c := range cases {
		orig, err := interp.Load(readTestdata(t, c.before))
		if err != nil {
			t.Fatalf("%s: %v", c.before, err)
		}
		pre, err := interp.Load(readTestdata(t, c.after))
		if err != nil {
			t.Fatalf("%s: %v", c.after, err)
		}
		ro, err := orig.Run(c.np, netsim.MPICHGM())
		if err != nil {
			t.Fatalf("%s: %v", c.before, err)
		}
		rt, err := pre.Run(c.np, netsim.MPICHGM())
		if err != nil {
			t.Fatalf("%s: %v", c.after, err)
		}
		if same, why := interp.SameObservable(ro, rt, "ar"); !same {
			t.Errorf("%s vs %s: %s", c.before, c.after, why)
		}
	}
}

// TestReportContents checks the report plumbing end to end.
func TestReportContents(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	_, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	s := rep.String()
	for _, want := range []string{"1 transformed", "direct pattern", "node loop outermost", "K=4", "NP=8"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

// TestMultipleSitesTransformed: two independent ALLTOALL sites in one
// program are both rewritten.
func TestMultipleSitesTransformed(t *testing.T) {
	src := `
program twosites
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 32
  integer, parameter :: np = 4
  integer as(1:nx), ar(1:nx)
  integer bs(1:nx), br(1:nx)
  integer i, ierr

  call mpi_init(ierr)
  do i = 1, nx
    as(i) = i*2
  enddo
  call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
  do i = 1, nx
    bs(i) = ar(i) + i
  enddo
  call mpi_alltoall(bs, nx/np, mpi_integer, br, nx/np, mpi_integer, mpi_comm_world, ierr)
  print *, ar(1), br(nx)
  call mpi_finalize(ierr)
end program twosites
`
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 2 {
		t.Fatalf("transformed %d sites, want 2:\n%s", rep.TransformedCount(), rep)
	}
	if strings.Contains(out, "call mpi_alltoall") {
		t.Error("an original call survived")
	}
	// And the rewritten program still runs identically.
	orig, err := interp.Load(src)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := interp.Load(out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	ro, err := orig.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := pre.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if same, why := interp.Sameprinted(ro, rt); !same {
		t.Errorf("mismatch: %s", why)
	}
}

// TestRejectionsReportedOnce: an untransformable site appears exactly once
// in the report.
func TestRejectionsReportedOnce(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer as(1:8), ar(1:8), i, ierr
  do i = 1, 8
    if (i > 4) then
      as(i) = i
    endif
  enddo
  call mpi_alltoall(as, 2, mpi_integer, ar, 2, mpi_integer, mpi_comm_world, ierr)
end program p
`
	_, rep, err := core.Transform(src, core.Options{K: 2, NP: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 0 {
		t.Fatal("conditional write should not transform")
	}
	if len(rep.Sites) != 1 {
		t.Errorf("sites = %d, want 1:\n%s", len(rep.Sites), rep)
	}
}

// TestOraclePropagation: the semi-automatic oracle flows through Options.
func TestOraclePropagation(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer as(1:8), ar(1:8), other(1:8), i, ierr
  do i = 1, 8
    other(i) = i
  enddo
  do i = 1, 8
    call extfill(as, i)
  enddo
  call mpi_alltoall(as, 2, mpi_integer, ar, 2, mpi_integer, mpi_comm_world, ierr)
end program p
`
	// The oracle says extfill writes as: ℓ is found (then rejected at the
	// pattern stage, since only a call mutates as — but the rejection
	// message proves the oracle was consulted and ℓ located).
	_, rep, err := core.Transform(src, core.Options{K: 2, NP: 4, Oracle: analysis.MapOracle{"extfill:as": true}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, s := range rep.Sites {
		if strings.Contains(s.Reason, "procedure calls") {
			found = true
		}
	}
	if !found {
		t.Errorf("report: %s", rep)
	}
}

// TestIdempotentParsePrint: transformed output must itself be parseable and
// printable to a fixpoint (the unparser produces valid subset source).
func TestIdempotentParsePrint(t *testing.T) {
	for _, name := range []string{"figure2_after.f90", "figure3_after.f90"} {
		src := readTestdata(t, name)
		f, err := ftn.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		again := ftn.Print(f)
		if again != src {
			t.Errorf("%s: print(parse(x)) != x", name)
		}
	}
}

// TestRetilerMatchesTransform: retiling at K must produce exactly what a
// fresh Transform at that K produces, for every K the transform accepts —
// the property the tuner's pipeline reuse depends on.
func TestRetilerMatchesTransform(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90")
	rt, err := core.NewRetiler(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int64{2, 4, 8} {
		got, grep, err := rt.Retile(k)
		if err != nil {
			t.Fatalf("retile K=%d: %v", k, err)
		}
		want, wrep, err := core.Transform(src, core.Options{K: k})
		if err != nil {
			t.Fatalf("transform K=%d: %v", k, err)
		}
		if got != want {
			t.Errorf("K=%d: retiled source differs from Transform output", k)
		}
		if grep.TransformedCount() != wrep.TransformedCount() {
			t.Errorf("K=%d: transformed %d sites, want %d", k, grep.TransformedCount(), wrep.TransformedCount())
		}
	}
	// Memoization: the same K returns the identical report pointer.
	_, r1, _ := rt.Retile(4)
	_, r2, _ := rt.Retile(4)
	if r1 != r2 {
		t.Error("retile memo did not hit on repeated K")
	}
}

// TestRetilerRejectsBadK: a K the transformation cannot honor is reported,
// not fatal, and does not poison other Ks.
func TestRetilerRejectsBadK(t *testing.T) {
	src := readTestdata(t, "figure2_before.f90") // psz = 8
	rt, err := core.NewRetiler(src, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, rep, err := rt.Retile(3) // does not divide the partition size
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 0 {
		t.Error("K=3 should not transform (does not divide psz)")
	}
	_, rep, err = rt.Retile(8)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Errorf("K=8 should transform after a rejected K:\n%s", rep)
	}
}
