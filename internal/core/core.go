// Package core is the Compuniformer: the paper's source-to-source
// transformer that restructures MPI codes using MPI_ALLTOALL into tiled,
// pre-pushing codes that overlap communication with computation.
//
// The public API is a three-stage pipeline:
//
//	prog, _ := core.Analyze(src, core.AnalyzeOptions{})   // parse + per-site opportunities
//	pl := plan.Default(plan.MPICHGM2005())                // or a tuned / hand-edited plan
//	out, rep, _ := core.Apply(prog, pl)                   // replay the plan onto the program
//
// Analyze parses once and discovers every MPI_ALLTOALL site's facts (pattern,
// node-loop case, partition geometry, interchange legality). Apply replays a
// serializable plan.Plan — per-site Decision{K, Wait, SendOrder, Interchange}
// — onto a fresh clone of the parsed AST, memoized by the plan's canonical
// key, so a tuner can walk plan space without re-parsing. The legacy one-shot
// entry point Transform(src, Options) survives as a thin shim that builds a
// uniform plan from the flat Options.
package core

import (
	"fmt"
	"strings"
	"sync"

	"repro/internal/analysis"
	"repro/internal/ftn"
	"repro/internal/plan"
	"repro/internal/transform"
)

// Options configures a legacy one-shot Transform run. It survives only as a
// shim over the Plan/Apply pipeline: Plan() maps the flat fields onto a
// uniform plan applied to every site.
type Options struct {
	// K is the tile size (iterations per tile). The paper treats choosing
	// K as a tuning problem (§2); 0 selects plan.DefaultK.
	K int64
	// NP is the number of ranks the transformed code targets. 0 means
	// "use the program's named constant np".
	NP int64
	// Oracle answers semi-automatic questions (§3.1). nil means fully
	// automatic (conservative).
	Oracle analysis.Oracle
	// PerTileWait selects the paper's literal per-tile wait (§3.6 step 2)
	// instead of the default deferred-drain schedule; it maps onto the
	// plan knob Wait: "per-tile".
	PerTileWait bool
	// InterchangeMinBlockBytes gates the §3.5 loop interchange: a legal
	// interchange is applied only when the resulting Fig. 4 exchange sends
	// contiguous blocks of at least this many bytes (blockElems × K × 4).
	// 0 selects the default (plan.DefaultInterchangeMinBlockBytes); a
	// negative value disables interchange entirely (Interchange: "off").
	InterchangeMinBlockBytes int64
}

// DefaultOptions returns the options used when none are given.
func DefaultOptions() Options { return Options{K: plan.DefaultK} }

// Plan maps the flat options onto the uniform plan they denote.
func (o Options) Plan() *plan.Plan {
	d := plan.Decision{K: o.K}
	if d.K <= 0 {
		d.K = plan.DefaultK
	}
	if o.PerTileWait {
		d.Wait = plan.WaitPerTile
	}
	if o.InterchangeMinBlockBytes < 0 {
		d.Interchange = plan.InterchangeOff
	} else {
		d.Interchange = plan.InterchangeAuto
		d.InterchangeMinBlockBytes = o.InterchangeMinBlockBytes
	}
	p := plan.Uniform(d)
	p.NP = o.NP
	return p
}

// AnalyzeOptions configures the analysis stage.
type AnalyzeOptions struct {
	// NP is the rank count assumed during analysis; 0 means "use the
	// program's named constant np".
	NP int64
	// Oracle answers semi-automatic questions (§3.1).
	Oracle analysis.Oracle
}

// Site is one MPI_ALLTOALL site's analysis outcome: the facts a planner
// needs to choose a Decision for it. Geometry fields are harvested from a
// probe transformation at K=1 (every legal ladder contains 1) and are zero
// when the probe rejected the site.
type Site struct {
	Pos      ftn.Pos
	Pattern  analysis.Pattern
	NodeCase analysis.NodeLoopCase
	// Transformable reports whether the probe transformation fired; when
	// false, Reason carries the rejection.
	Transformable bool
	Reason        string
	// PartitionSize is As's last-dimension extent per rank — candidate tile
	// sizes for the subset-send and indirect schedules must divide it.
	PartitionSize int64
	// TripCount is the tiled loop's trip count (0 when not numeric).
	TripCount int64
	// PerIterBytes is the message payload one tiled iteration contributes
	// (0 when not numeric) — the analytic tuner's pricing unit.
	PerIterBytes int64
	// InterchangeLegal reports the §3.5 interchange's proven legality;
	// InterchangeBlockElems estimates the contiguous elements per message
	// (excluding the factor K) the interchanged exchange would send.
	InterchangeLegal      bool
	InterchangeBlockElems int64
	Notes                 []string
}

// Key returns the site's plan key ("line:col").
func (s *Site) Key() string { return s.Pos.String() }

// Program is a parsed, analyzed program ready for repeated Apply calls.
// The AST it holds is never mutated: every Apply transforms a fresh clone,
// and outcomes are memoized by plan key so a search can revisit a candidate
// for free. Safe for concurrent Apply calls.
type Program struct {
	Sites []Site

	src  string
	file *ftn.File
	opts AnalyzeOptions

	mu   sync.Mutex
	memo map[string]applied
}

type applied struct {
	src string
	rep *Report
	err error
}

// Source returns the original (untransformed) source text.
func (p *Program) Source() string { return p.src }

// Options returns the analysis options the program was analyzed under.
func (p *Program) Options() AnalyzeOptions { return p.opts }

// Site returns the analyzed site at the given plan key, or nil.
func (p *Program) Site(key string) *Site {
	for i := range p.Sites {
		if p.Sites[i].Key() == key {
			return &p.Sites[i]
		}
	}
	return nil
}

// Analyze parses src and discovers every MPI_ALLTOALL site's opportunity
// facts. The error is non-nil only for parse failures; unanalyzable sites
// are recorded in Sites with their rejection reason.
func Analyze(src string, opts AnalyzeOptions) (*Program, error) {
	file, err := ftn.Parse(src)
	if err != nil {
		return nil, err
	}
	p := &Program{src: src, file: file, opts: opts, memo: map[string]applied{}}

	// Probe: replay the most permissive uniform plan (K=1 divides every
	// partition; interchange off keeps loop order stable) on a clone and
	// harvest per-site facts from its report. The probe's generated code is
	// discarded — only the analysis outcome matters.
	probe := plan.Uniform(plan.Decision{K: 1, Interchange: plan.InterchangeOff})
	probe.NP = opts.NP
	rep, err := applyPlan(ftn.CloneFile(file), probe, opts)
	if err != nil {
		return nil, err
	}
	for _, sr := range rep.Sites {
		site := Site{
			Pos: sr.Pos, Pattern: sr.Pattern, NodeCase: sr.NodeCase,
			Transformable: sr.Transformed, Reason: sr.Reason, Notes: sr.Notes,
			InterchangeLegal:      sr.InterchangeLegal,
			InterchangeBlockElems: sr.InterchangeBlockElems,
		}
		if res := sr.Result; res != nil {
			site.PartitionSize = res.PartitionSize
			if res.TileCount > 0 {
				site.TripCount = res.TileCount*res.K + res.Leftover
			}
			if res.TileMsgElems > 0 && res.K > 0 {
				site.PerIterBytes = res.TileMsgElems * 4 / res.K
			}
		}
		p.Sites = append(p.Sites, site)
	}
	return p, nil
}

// Apply replays a plan onto the analyzed program: every transformable
// MPI_ALLTOALL site is rewritten (on a fresh AST clone) according to its
// Decision, and the rewritten source plus a report are returned.
// Untransformable sites are reported, not fatal; the error is non-nil only
// for invalid plans. Results are memoized by the plan's canonical key, so
// repeated Apply calls with equivalent plans are free.
func Apply(p *Program, pl *plan.Plan) (string, *Report, error) {
	if err := pl.Validate(); err != nil {
		return "", nil, err
	}
	// A plan entry keyed to a site the program does not contain is a stale
	// or mistyped plan (e.g. replaying a dump against edited source); apply
	// it loudly instead of silently falling back to the default everywhere.
	for _, sp := range pl.Sites {
		if p.Site(sp.Site) == nil {
			return "", nil, fmt.Errorf("plan: site %q does not exist in the program (have %s)",
				sp.Site, strings.Join(siteKeys(p), ", "))
		}
	}
	key := pl.Key()
	p.mu.Lock()
	if r, ok := p.memo[key]; ok {
		p.mu.Unlock()
		// Memo hits (and the miss below) return a defensive copy of the
		// report: the stored one must stay pristine for later callers.
		return r.src, r.rep.clone(), r.err
	}
	p.mu.Unlock()

	clone := ftn.CloneFile(p.file)
	rep, err := applyPlan(clone, pl, p.opts)
	r := applied{rep: rep, err: err}
	if err == nil {
		if rep.TransformedCount() == 0 {
			// Nothing was rewritten — a skip-all plan, or a program whose
			// sites all rejected. Emit the original bytes rather than a
			// reprint of the untouched clone: the skip-all variant is then
			// byte-identical to the input, so its source hash collapses to
			// the original's and the exec variant cache hits for free.
			r.src = p.src
		} else {
			r.src = ftn.Print(clone)
		}
	}
	p.mu.Lock()
	p.memo[key] = r
	p.mu.Unlock()
	return r.src, r.rep.clone(), r.err
}

// siteKeys lists the analyzed sites' plan keys in program order.
func siteKeys(p *Program) []string {
	keys := make([]string, len(p.Sites))
	for i := range p.Sites {
		keys[i] = p.Sites[i].Key()
	}
	return keys
}

// TransformableCount returns the number of analyzed sites the transformation
// can rewrite — the count a full per-site plan must cover.
func (p *Program) TransformableCount() int {
	n := 0
	for i := range p.Sites {
		if p.Sites[i].Transformable {
			n++
		}
	}
	return n
}

// Transform parses src, transforms every transformable MPI_ALLTOALL site,
// and returns the rewritten source plus a report — the legacy one-shot
// entry point, now a shim over Analyze + Apply with the uniform plan the
// Options denote.
func Transform(src string, opts Options) (string, *Report, error) {
	prog, err := Analyze(src, AnalyzeOptions{NP: opts.NP, Oracle: opts.Oracle})
	if err != nil {
		return "", nil, err
	}
	return Apply(prog, opts.Plan())
}

// SiteReport describes one MPI_ALLTOALL site's outcome under a plan.
type SiteReport struct {
	Pos         ftn.Pos
	Transformed bool
	// Skipped marks a site the plan declined (Decision.Skip): the site was
	// transformable but deliberately left untouched — distinct from a
	// rejection, where the transformation could not fire.
	Skipped  bool
	Pattern  analysis.Pattern
	NodeCase analysis.NodeLoopCase
	// Decision is the (normalized) plan decision applied to the site.
	Decision plan.Decision
	Result   *transform.Result
	Reason   string   // rejection reason when not transformed
	Notes    []string // analysis notes
	// Interchange facts captured at analysis time (valid for the direct
	// pattern with an outermost node loop).
	InterchangeLegal      bool
	InterchangeBlockElems int64
}

// Report summarizes a whole Apply.
type Report struct {
	Sites []SiteReport
}

// TransformedCount returns the number of sites rewritten.
func (r *Report) TransformedCount() int {
	n := 0
	for _, s := range r.Sites {
		if s.Transformed {
			n++
		}
	}
	return n
}

// SkippedCount returns the number of sites the plan declined to transform.
func (r *Report) SkippedCount() int {
	n := 0
	for _, s := range r.Sites {
		if s.Skipped {
			n++
		}
	}
	return n
}

// clone returns a defensive copy of the report: Apply memoizes reports and
// hands them to concurrent callers, so sharing the stored pointer would let
// one caller's mutation race another's read. Site slices, results, and note
// slices are all copied; nested pointers in transform.Result do not exist
// (it is a flat struct plus a Notes slice).
func (r *Report) clone() *Report {
	if r == nil {
		return nil
	}
	out := &Report{Sites: make([]SiteReport, len(r.Sites))}
	copy(out.Sites, r.Sites)
	for i := range out.Sites {
		s := &out.Sites[i]
		s.Notes = append([]string(nil), s.Notes...)
		if s.Result != nil {
			res := *s.Result
			res.Notes = append([]string(nil), res.Notes...)
			s.Result = &res
		}
	}
	return out
}

// FirstRejection returns the first rejection reason in the report, or ""
// when every site transformed. Harness code uses it to explain why a
// scenario's transformation did not fire.
func (r *Report) FirstRejection() string {
	for _, s := range r.Sites {
		if !s.Transformed {
			return s.Reason
		}
	}
	return ""
}

// AnyInterchanged reports whether any transformed site applied the §3.5
// loop interchange.
func (r *Report) AnyInterchanged() bool {
	for _, s := range r.Sites {
		if s.Transformed && s.Result != nil && s.Result.Interchanged {
			return true
		}
	}
	return false
}

// String renders a human-readable summary.
func (r *Report) String() string {
	out := fmt.Sprintf("compuniformer: %d site(s), %d transformed", len(r.Sites), r.TransformedCount())
	if n := r.SkippedCount(); n > 0 {
		out += fmt.Sprintf(", %d skipped by plan", n)
	}
	out += "\n"
	for _, s := range r.Sites {
		if s.Skipped {
			out += fmt.Sprintf("  %s: skipped by plan (%s pattern, node loop %s)\n", s.Pos, s.Pattern, s.NodeCase)
		} else if s.Transformed {
			res := s.Result
			out += fmt.Sprintf("  %s: transformed (%s pattern, node loop %s, K=%d, NP=%d, %d msgs/tile)\n",
				s.Pos, s.Pattern, s.NodeCase, res.K, res.NP, res.MessagesTile)
			if res.Interchanged {
				out += "    loop interchange applied\n"
			}
			for _, n := range res.Notes {
				out += "    " + n + "\n"
			}
		} else {
			out += fmt.Sprintf("  %s: rejected: %s\n", s.Pos, s.Reason)
		}
		for _, n := range s.Notes {
			out += "    note: " + n + "\n"
		}
	}
	return out
}

// applyPlan rewrites the AST in place according to the plan.
func applyPlan(file *ftn.File, pl *plan.Plan, opts AnalyzeOptions) (*Report, error) {
	np := pl.NP
	if np == 0 {
		np = opts.NP
	}
	aopts := analysis.Options{Oracle: opts.Oracle, NP: int(np)}
	report := &Report{}

	// Sites are transformed one at a time; each transformation removes its
	// MPI_ALLTOALL, so re-running the finder converges. Rejected sites are
	// remembered (by position) so they are reported once and skipped.
	rejected := map[ftn.Pos]bool{}
	for round := 0; round < 100; round++ {
		ops, errs := analysis.FindOpportunities(file, aopts)
		for _, e := range errs {
			if re, ok := e.(*analysis.RejectionError); ok {
				if !rejected[re.Pos] {
					rejected[re.Pos] = true
					report.Sites = append(report.Sites, SiteReport{Pos: re.Pos, Reason: re.Reason})
				}
			}
		}
		var op *analysis.Opportunity
		for _, o := range ops {
			if !rejected[o.Call.Stmt.Pos()] {
				op = o
				break
			}
		}
		if op == nil {
			break
		}
		pos := op.Call.Stmt.Pos()
		dec := pl.For(pos.String())
		legal, blockElems := op.InterchangeOK, op.InterchangeBlockElems

		if dec.Skip {
			// The plan declines this site: leave the AST untouched. The
			// position is remembered like a rejection so the finder loop
			// moves past it, but the report distinguishes "skipped by plan"
			// from "transformation cannot fire".
			rejected[pos] = true
			report.Sites = append(report.Sites, SiteReport{
				Pos: pos, Skipped: true, Pattern: op.Pattern, NodeCase: op.NodeCase,
				Reason: "skipped by plan", Decision: dec, Notes: op.Notes,
				InterchangeLegal: legal, InterchangeBlockElems: blockElems,
			})
			continue
		}

		interchanged := false
		if op.Pattern == analysis.PatternDirect &&
			op.NodeCase == analysis.NodeLoopOutermost && op.InterchangeOK &&
			interchangeWanted(dec, op) {
			if err := transform.Interchange(op); err == nil {
				interchanged = true
				// Re-analyze: loop order (and hence the node-loop case)
				// changed.
				ops2, _ := analysis.FindOpportunities(file, aopts)
				op = nil
				for _, o := range ops2 {
					if o.Call.Stmt.Pos() == pos {
						op = o
						break
					}
				}
				if op == nil {
					rejected[pos] = true
					report.Sites = append(report.Sites, SiteReport{
						Pos: pos, Reason: "site no longer analyzable after interchange",
						Decision: dec, InterchangeLegal: legal, InterchangeBlockElems: blockElems,
					})
					continue
				}
			}
		}

		if !interchanged {
			// Either interchange is illegal or the plan (gate or explicit
			// "off") chose the subset-send fallback; transform.Apply must
			// not see a pending flag.
			op.InterchangeOK = false
		}
		topts := transform.Options{
			K: dec.K, NP: np,
			PerTileWait: dec.Wait == plan.WaitPerTile,
			NoStagger:   dec.SendOrder == plan.SendSequential,
		}
		res, err := transform.Apply(op, topts)
		if err != nil {
			rejected[pos] = true
			sr := SiteReport{
				Pos: pos, Pattern: op.Pattern, NodeCase: op.NodeCase, Notes: op.Notes,
				Decision: dec, InterchangeLegal: legal, InterchangeBlockElems: blockElems,
			}
			if te, ok := err.(*transform.Error); ok {
				sr.Reason = te.Msg
			} else {
				sr.Reason = err.Error()
			}
			report.Sites = append(report.Sites, sr)
			continue
		}
		res.Interchanged = interchanged
		report.Sites = append(report.Sites, SiteReport{
			Pos: pos, Transformed: true, Pattern: op.Pattern,
			NodeCase: op.NodeCase, Result: res, Notes: op.Notes,
			Decision: dec, InterchangeLegal: legal, InterchangeBlockElems: blockElems,
		})
	}
	return report, nil
}

// interchangeWanted applies the plan's interchange knob to a legal
// interchange candidate: "on" takes it unconditionally, "off" never, "auto"
// weighs the message granularity (blockElems × K × 4 bytes) against the
// gate threshold.
func interchangeWanted(dec plan.Decision, op *analysis.Opportunity) bool {
	switch dec.Interchange {
	case plan.InterchangeOn:
		return true
	case plan.InterchangeOff:
		return false
	}
	min := dec.InterchangeMinBlockBytes
	if min == 0 {
		min = plan.DefaultInterchangeMinBlockBytes
	}
	return op.InterchangeBlockElems*dec.K*4 >= min
}
