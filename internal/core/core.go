// Package core is the Compuniformer: the paper's source-to-source
// transformer that restructures MPI codes using MPI_ALLTOALL into tiled,
// pre-pushing codes that overlap communication with computation.
//
// It ties the pipeline together: parse (ftn) → analyze (analysis, dep,
// access) → transform (transform) → unparse (ftn), and reports what it did
// and why it rejected what it rejected.
package core

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ftn"
	"repro/internal/transform"
)

// Options configures a Compuniformer run.
type Options struct {
	// K is the tile size (iterations per tile). The paper treats choosing
	// K as a tuning problem (§2); 8 is a reasonable default for the
	// simulated cluster.
	K int64
	// NP is the number of ranks the transformed code targets. 0 means
	// "use the program's named constant np".
	NP int64
	// Oracle answers semi-automatic questions (§3.1). nil means fully
	// automatic (conservative).
	Oracle analysis.Oracle
	// PerTileWait selects the paper's literal per-tile wait (§3.6 step 2)
	// instead of the default deferred-drain schedule; see
	// transform.Options.PerTileWait.
	PerTileWait bool
	// InterchangeMinBlockBytes gates the §3.5 loop interchange: a legal
	// interchange is applied only when the resulting Fig. 4 exchange sends
	// contiguous blocks of at least this many bytes (blockElems × K × 4);
	// below that, fragmentation overhead outweighs the balanced schedule
	// and the subset-send fallback is used instead. 0 selects the default
	// (2048); a negative value disables interchange entirely.
	InterchangeMinBlockBytes int64
}

// defaultInterchangeMinBlock is the granularity gate described above.
const defaultInterchangeMinBlock = 2048

// DefaultOptions returns the options used when none are given.
func DefaultOptions() Options { return Options{K: 8} }

// SiteReport describes one MPI_ALLTOALL site's outcome.
type SiteReport struct {
	Pos         ftn.Pos
	Transformed bool
	Pattern     analysis.Pattern
	NodeCase    analysis.NodeLoopCase
	Result      *transform.Result
	Reason      string   // rejection reason when not transformed
	Notes       []string // analysis notes
}

// Report summarizes a whole run.
type Report struct {
	Sites []SiteReport
}

// TransformedCount returns the number of sites rewritten.
func (r *Report) TransformedCount() int {
	n := 0
	for _, s := range r.Sites {
		if s.Transformed {
			n++
		}
	}
	return n
}

// FirstRejection returns the first rejection reason in the report, or ""
// when every site transformed. Harness code uses it to explain why a
// scenario's transformation did not fire.
func (r *Report) FirstRejection() string {
	for _, s := range r.Sites {
		if !s.Transformed {
			return s.Reason
		}
	}
	return ""
}

// AnyInterchanged reports whether any transformed site applied the §3.5
// loop interchange.
func (r *Report) AnyInterchanged() bool {
	for _, s := range r.Sites {
		if s.Transformed && s.Result != nil && s.Result.Interchanged {
			return true
		}
	}
	return false
}

// String renders a human-readable summary.
func (r *Report) String() string {
	out := fmt.Sprintf("compuniformer: %d site(s), %d transformed\n", len(r.Sites), r.TransformedCount())
	for _, s := range r.Sites {
		if s.Transformed {
			res := s.Result
			out += fmt.Sprintf("  %s: transformed (%s pattern, node loop %s, K=%d, NP=%d, %d msgs/tile)\n",
				s.Pos, s.Pattern, s.NodeCase, res.K, res.NP, res.MessagesTile)
			if res.Interchanged {
				out += "    loop interchange applied\n"
			}
			for _, n := range res.Notes {
				out += "    " + n + "\n"
			}
		} else {
			out += fmt.Sprintf("  %s: rejected: %s\n", s.Pos, s.Reason)
		}
		for _, n := range s.Notes {
			out += "    note: " + n + "\n"
		}
	}
	return out
}

// Transform parses src, transforms every transformable MPI_ALLTOALL site,
// and returns the rewritten source plus a report. Untransformable sites are
// reported, not fatal; the error is non-nil only for parse failures or
// option errors.
func Transform(src string, opts Options) (string, *Report, error) {
	file, err := ftn.Parse(src)
	if err != nil {
		return "", nil, err
	}
	report, err := TransformFile(file, opts)
	if err != nil {
		return "", report, err
	}
	return ftn.Print(file), report, nil
}

// Retiler re-applies the transformation to one source at different tile
// sizes without re-parsing it: the file is parsed once, every requested K
// transforms a fresh clone of that AST, and outcomes are memoized per K so
// a tuning search can revisit a candidate for free. The K of the Options
// passed at construction is ignored; everything else (NP, oracle, wait
// schedule, interchange gate) applies to every retile.
type Retiler struct {
	file *ftn.File
	opts Options
	memo map[int64]retiled
}

type retiled struct {
	src string
	rep *Report
	err error
}

// NewRetiler parses src once for subsequent Retile calls.
func NewRetiler(src string, opts Options) (*Retiler, error) {
	file, err := ftn.Parse(src)
	if err != nil {
		return nil, err
	}
	return &Retiler{file: file, opts: opts, memo: map[int64]retiled{}}, nil
}

// Retile transforms the parsed program at tile size k. Like Transform, a
// site that cannot be transformed at this K is reported (TransformedCount
// 0), not an error.
func (rt *Retiler) Retile(k int64) (string, *Report, error) {
	if r, ok := rt.memo[k]; ok {
		return r.src, r.rep, r.err
	}
	clone := ftn.CloneFile(rt.file)
	opts := rt.opts
	opts.K = k
	rep, err := TransformFile(clone, opts)
	r := retiled{rep: rep, err: err}
	if err == nil {
		r.src = ftn.Print(clone)
	}
	rt.memo[k] = r
	return r.src, r.rep, r.err
}

// TransformFile rewrites the AST in place.
func TransformFile(file *ftn.File, opts Options) (*Report, error) {
	if opts.K <= 0 {
		opts.K = DefaultOptions().K
	}
	aopts := analysis.Options{Oracle: opts.Oracle, NP: int(opts.NP)}
	topts := transform.Options{K: opts.K, NP: opts.NP, PerTileWait: opts.PerTileWait}
	report := &Report{}

	// Sites are transformed one at a time; each transformation removes its
	// MPI_ALLTOALL, so re-running the finder converges. Rejected sites are
	// remembered (by position) so they are reported once and skipped.
	rejected := map[ftn.Pos]bool{}
	for round := 0; round < 100; round++ {
		ops, errs := analysis.FindOpportunities(file, aopts)
		for _, e := range errs {
			if re, ok := e.(*analysis.RejectionError); ok {
				if !rejected[re.Pos] {
					rejected[re.Pos] = true
					report.Sites = append(report.Sites, SiteReport{Pos: re.Pos, Reason: re.Reason})
				}
			}
		}
		var op *analysis.Opportunity
		for _, o := range ops {
			if !rejected[o.Call.Stmt.Pos()] {
				op = o
				break
			}
		}
		if op == nil {
			break
		}
		pos := op.Call.Stmt.Pos()

		interchanged := false
		if op.Pattern == analysis.PatternDirect &&
			op.NodeCase == analysis.NodeLoopOutermost && op.InterchangeOK &&
			interchangeWorthwhile(opts, op) {
			if err := transform.Interchange(op); err == nil {
				interchanged = true
				// Re-analyze: loop order (and hence the node-loop case)
				// changed.
				ops2, _ := analysis.FindOpportunities(file, aopts)
				op = nil
				for _, o := range ops2 {
					if o.Call.Stmt.Pos() == pos {
						op = o
						break
					}
				}
				if op == nil {
					rejected[pos] = true
					report.Sites = append(report.Sites, SiteReport{
						Pos: pos, Reason: "site no longer analyzable after interchange",
					})
					continue
				}
			}
		}

		if !interchanged {
			// Either interchange is illegal or the granularity gate chose
			// the subset-send fallback; Apply must not see a pending flag.
			op.InterchangeOK = false
		}
		res, err := transform.Apply(op, topts)
		if err != nil {
			rejected[pos] = true
			sr := SiteReport{Pos: pos, Pattern: op.Pattern, NodeCase: op.NodeCase, Notes: op.Notes}
			if te, ok := err.(*transform.Error); ok {
				sr.Reason = te.Msg
			} else {
				sr.Reason = err.Error()
			}
			report.Sites = append(report.Sites, sr)
			continue
		}
		res.Interchanged = interchanged
		report.Sites = append(report.Sites, SiteReport{
			Pos: pos, Transformed: true, Pattern: op.Pattern,
			NodeCase: op.NodeCase, Result: res, Notes: op.Notes,
		})
	}
	return report, nil
}

// interchangeWorthwhile applies the message-granularity gate.
func interchangeWorthwhile(opts Options, op *analysis.Opportunity) bool {
	min := opts.InterchangeMinBlockBytes
	if min < 0 {
		return false
	}
	if min == 0 {
		min = defaultInterchangeMinBlock
	}
	return op.InterchangeBlockElems*opts.K*4 >= min
}
