package core

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"repro/internal/ftn"
)

// Fingerprint is a stable hash of the tuning problem a program presents on
// a machine: the per-site opportunity facts analysis discovered (pattern,
// geometry, interchange legality) plus the machine name and the analysis
// rank count. Two programs with the same fingerprint expose identical
// sites with identical facts to the planner, so the search space, the
// analytic seeds, and the cost model's view of every candidate coincide —
// a plan tuned for one is the tuned plan for the other. That is what makes
// the fingerprint a memo key for tuning results: repeat queries over
// shape-identical programs become O(lookup) instead of O(search).
//
// The raw source bytes are deliberately excluded — comments and formatting
// do not change the tuning problem, so the program's contribution is the
// parse-normalized statement structure (the printed AST with comment lines
// dropped). That normalization still separates programs whose compute
// bodies differ (compute-communication balance IS part of the problem,
// even when every site fact agrees) while aliasing incidental rewrites the
// sha256 content key would split. Site keys (line:col positions) ARE
// included: plans address sites by position, so a memoized plan is only
// replayable onto a program whose sites sit at the same keys.
func Fingerprint(p *Program, machine string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "fp/v1|machine=%s|np=%d|code=%s|sites=%d",
		machine, p.opts.NP, normalizedCodeHash(p.file), len(p.Sites))
	for i := range p.Sites {
		s := &p.Sites[i]
		fmt.Fprintf(&b, "|site=%s;pat=%d;case=%d;tr=%t;part=%d;trip=%d;bytes=%d;il=%t;ib=%d",
			s.Key(), s.Pattern, s.NodeCase, s.Transformable,
			s.PartitionSize, s.TripCount, s.PerIterBytes,
			s.InterchangeLegal, s.InterchangeBlockElems)
		if !s.Transformable {
			// A rejected site is dead space for the planner, but the reason
			// class distinguishes shapes (e.g. non-divisible geometry vs no
			// enclosing loop) that could otherwise alias.
			fmt.Fprintf(&b, ";rej=%s", s.Reason)
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return "fp1-" + hex.EncodeToString(sum[:])
}

// normalizedCodeHash hashes the parse-normalized statement structure:
// print the AST, drop comment and blank lines, hash the rest. Trailing
// comments never reach the AST and whole-line comments are dropped here,
// so commentary and formatting cannot split fingerprints.
func normalizedCodeHash(file *ftn.File) string {
	h := sha256.New()
	for _, line := range strings.Split(ftn.Print(file), "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "!") {
			continue
		}
		h.Write([]byte(t))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))
}
