package plan

import (
	"reflect"
	"strings"
	"testing"
)

// TestJSONRoundTrip: Encode → Decode must be the identity on a plan with a
// default and per-site overrides.
func TestJSONRoundTrip(t *testing.T) {
	p := Default(MPICHGM2005())
	p.NP = 8
	p.Set("12:3", Decision{K: 4, Wait: WaitPerTile, SendOrder: SendSequential, Interchange: InterchangeOff})
	p.Set("40:5", Decision{K: 16, Interchange: InterchangeOn}.Normalize())

	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(p, back) {
		t.Errorf("round trip changed the plan:\nbefore %+v\nafter  %+v", p, back)
	}
	if back.Key() != p.Key() {
		t.Errorf("round trip changed the key: %q vs %q", p.Key(), back.Key())
	}
}

// TestMultiSiteDivergentRoundTrip: a plan giving every site of a
// multi-site program its own decision — different K, wait, send order, and
// interchange gate per site — must survive Encode → Decode byte-exactly,
// resolve each site to its own decision, and keep distinct keys from any
// uniform collapse of it.
func TestMultiSiteDivergentRoundTrip(t *testing.T) {
	decisions := map[string]Decision{
		"21:3": Decision{K: 256}.Normalize(),
		"30:3": Decision{K: 4, Wait: WaitPerTile}.Normalize(),
		"42:3": Decision{K: 16, SendOrder: SendSequential, Interchange: InterchangeOff}.Normalize(),
	}
	p := Uniform(Decision{K: 8})
	for site, d := range decisions {
		p.Set(site, d)
	}
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(p, back) {
		t.Errorf("round trip changed the plan:\nbefore %+v\nafter  %+v", p, back)
	}
	for site, want := range decisions {
		if got := back.For(site); got != want {
			t.Errorf("site %s resolved to %+v, want %+v", site, got, want)
		}
	}
	// A site not named still falls back to the default.
	if got := back.For("99:1"); got != p.Default.Normalize() {
		t.Errorf("unnamed site resolved to %+v", got)
	}
	// Divergence is visible in the key: collapsing every site onto the
	// default must change it.
	if back.Key() == Uniform(Decision{K: 8}).Key() {
		t.Error("divergent plan keys like the uniform plan")
	}
}

// TestDefaultPlan: the Default constructor yields a valid, normalized,
// machine-stamped uniform plan.
func TestDefaultPlan(t *testing.T) {
	for _, m := range Builtin() {
		p := Default(m)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: default plan invalid: %v", m.Name, err)
		}
		if p.Machine != m.Name {
			t.Errorf("%s: plan records machine %q", m.Name, p.Machine)
		}
		d := p.For("1:1") // unnamed site falls back to the default
		if d.K != m.DefaultK() || d.Wait != WaitDeferred || d.SendOrder != SendStaggered || d.Interchange != InterchangeAuto {
			t.Errorf("%s: default decision %+v", m.Name, d)
		}
		if d.InterchangeMinBlockBytes != DefaultInterchangeMinBlockBytes {
			t.Errorf("%s: auto gate threshold %d", m.Name, d.InterchangeMinBlockBytes)
		}
	}
}

// TestValidationRejections: every way a plan can be malformed is rejected
// with a diagnostic naming the problem.
func TestValidationRejections(t *testing.T) {
	valid := func() *Plan {
		p := Default(MPICHGM2005())
		p.Set("3:7", Decision{K: 2}.Normalize())
		return p
	}
	cases := []struct {
		name   string
		break_ func(*Plan)
		want   string
	}{
		{"bad schema", func(p *Plan) { p.Schema = "repro/plan/v0" }, "schema"},
		{"negative np", func(p *Plan) { p.NP = -2 }, "np"},
		{"zero default K", func(p *Plan) { p.Default.K = 0 }, "K must be"},
		{"negative site K", func(p *Plan) { p.Sites[0].Decision.K = -4 }, "K must be"},
		{"bad wait", func(p *Plan) { p.Default.Wait = "sometimes" }, "wait"},
		{"bad send order", func(p *Plan) { p.Sites[0].Decision.SendOrder = "random" }, "send order"},
		{"bad interchange", func(p *Plan) { p.Default.Interchange = "maybe" }, "interchange"},
		{"negative gate", func(p *Plan) { p.Default.InterchangeMinBlockBytes = -1 }, "interchange_min_block_bytes"},
		{"malformed site key", func(p *Plan) { p.Sites[0].Site = "l12c3" }, "line:col"},
		{"zero site key", func(p *Plan) { p.Sites[0].Site = "0:4" }, "line:col"},
		{"duplicate site", func(p *Plan) { p.Sites = append(p.Sites, p.Sites[0]) }, "duplicate"},
	}
	for _, c := range cases {
		p := valid()
		c.break_(p)
		err := p.Validate()
		if err == nil {
			t.Errorf("%s: validated", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
		if _, err := p.Encode(); err == nil {
			t.Errorf("%s: Encode accepted an invalid plan", c.name)
		}
	}
	if _, err := Decode([]byte(`{"schema":"repro/plan/v1","default":{"k":0}}`)); err == nil {
		t.Error("Decode accepted K=0")
	}
	if _, err := Decode([]byte(`not json`)); err == nil {
		t.Error("Decode accepted garbage")
	}
}

// TestKeyDistinguishesKnobs: the memo key must separate any two plans that
// differ in a knob, and normalize spelled-out defaults onto the same key.
func TestKeyDistinguishesKnobs(t *testing.T) {
	base := Uniform(Decision{K: 8})
	seen := map[string]string{base.Key(): "base"}
	variants := map[string]*Plan{
		"k":     Uniform(Decision{K: 4}),
		"wait":  Uniform(Decision{K: 8, Wait: WaitPerTile}),
		"order": Uniform(Decision{K: 8, SendOrder: SendSequential}),
		"inter": Uniform(Decision{K: 8, Interchange: InterchangeOff}),
		"gate":  Uniform(Decision{K: 8, InterchangeMinBlockBytes: 4096}),
		"np":    {Schema: Schema, NP: 4, Default: Decision{K: 8}},
		"site":  {Schema: Schema, Default: Decision{K: 8}, Sites: []SitePlan{{Site: "2:3", Decision: Decision{K: 4}}}},
	}
	for name, p := range variants {
		k := p.Key()
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q on key %q", name, prev, k)
		}
		seen[k] = name
	}
	// Explicit defaults normalize onto the same key as zero values.
	explicit := Uniform(Decision{K: 8, Wait: WaitDeferred, SendOrder: SendStaggered,
		Interchange: InterchangeAuto, InterchangeMinBlockBytes: DefaultInterchangeMinBlockBytes})
	if explicit.Key() != base.Key() {
		t.Errorf("explicit defaults key %q differs from zero-value key %q", explicit.Key(), base.Key())
	}
}

// TestSkipRoundTripAndKey: the identity decision must survive JSON
// round-trips, collapse to a canonical form, and key distinctly from every
// transformed knob combination — skip can never alias a transformed plan.
func TestSkipRoundTripAndKey(t *testing.T) {
	p := Uniform(Decision{K: 8})
	p.Set("12:3", Identity())
	p.Set("40:5", Decision{K: 64}.Normalize())
	b, err := p.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), `"skip": true`) {
		t.Errorf("encoded plan does not spell out skip:\n%s", b)
	}
	back, err := Decode(b)
	if err != nil {
		t.Fatalf("decode: %v\n%s", err, b)
	}
	if !reflect.DeepEqual(p, back) {
		t.Errorf("round trip changed the plan:\nbefore %+v\nafter  %+v", p, back)
	}
	if got := back.For("12:3"); !got.Skip {
		t.Errorf("skipped site resolved to %+v", got)
	}
	if got := back.For("40:5"); got.Skip || got.K != 64 {
		t.Errorf("transformed site resolved to %+v", got)
	}

	// Key uniqueness: the skip-all plan keys apart from every knob
	// combination the search can express.
	skipAll := Uniform(Identity())
	skipKey := skipAll.Key()
	for _, k := range []int64{1, 2, 8, 64, 1024} {
		for _, w := range []WaitSchedule{WaitDeferred, WaitPerTile} {
			for _, so := range []SendOrder{SendStaggered, SendSequential} {
				for _, ic := range []Interchange{InterchangeAuto, InterchangeOn, InterchangeOff} {
					d := Decision{K: k, Wait: w, SendOrder: so, Interchange: ic}
					if Uniform(d).Key() == skipKey {
						t.Fatalf("skip-all key %q collides with transformed decision %+v", skipKey, d)
					}
				}
			}
		}
	}
	// A mixed plan keys apart from both the skip-all and the all-transform
	// collapse of it.
	if k := p.Key(); k == skipKey || k == Uniform(Decision{K: 8}).Key() {
		t.Errorf("mixed skip/transform plan key %q collides with a uniform collapse", k)
	}
	// Skip is canonical: whatever knobs ride along on a skipped decision,
	// the normalized form (and hence the key) is the bare identity.
	noisy := Decision{Skip: true, K: 512, Wait: WaitPerTile, SendOrder: SendSequential, Interchange: InterchangeOn}
	if noisy.Normalize() != Identity() {
		t.Errorf("skip did not collapse: %+v", noisy.Normalize())
	}
	if Uniform(noisy).Key() != skipKey {
		t.Errorf("noisy skip keys differently: %q vs %q", Uniform(noisy).Key(), skipKey)
	}
	if err := Uniform(Decision{Skip: true}).Validate(); err != nil {
		t.Errorf("bare skip decision rejected: %v", err)
	}
	if err := (Decision{Skip: true, K: -1}).Validate(); err == nil {
		t.Error("negative K accepted on a skipped decision")
	}
}

// TestMachineRegistry: the built-ins resolve by name and by historical
// alias, and include an offload-capable modern model next to the paper
// pair.
func TestMachineRegistry(t *testing.T) {
	for _, name := range []string{"mpich-tcp-2005", "mpich-gm-2005", "hpc-rdma-2019", "mpich-gm", "mpich-tcp"} {
		m, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if m.Profile.Name != m.Name {
			t.Errorf("%s: profile name %q diverges from machine name", name, m.Profile.Name)
		}
		if m.Costs.Op <= 0 || m.Profile.GapNsPerByte <= 0 {
			t.Errorf("%s: uncalibrated machine: %+v", name, m)
		}
	}
	if _, err := ByName("cray-t3e"); err == nil {
		t.Error("unknown machine resolved")
	}
	gm, _ := ByName("mpich-gm")
	if !gm.Profile.Offload {
		t.Error("mpich-gm-2005 must keep the offload capability")
	}
	modern, _ := ByName("hpc-rdma-2019")
	if !modern.Profile.Offload {
		t.Error("the modern RDMA machine must be offload-capable")
	}
	if modern.Profile.GapNsPerByte >= gm.Profile.GapNsPerByte {
		t.Error("the modern machine should have higher bandwidth than 2005 Myrinet")
	}
	if pair := PaperPair(); len(pair) != 2 || pair[0].Profile.Offload || !pair[1].Profile.Offload {
		t.Errorf("PaperPair should be (host-progress, offload): %+v", pair)
	}
}
