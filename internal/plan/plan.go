// Package plan defines the serializable overlap plan the Compuniformer's
// Analyze → Plan → Apply pipeline revolves around. The paper frames overlap
// as a sequence of decisions — tile size K (§2), wait placement (§3.6),
// interchange vs. subset-send (§3.5) — and a Plan makes that decision space
// explicit: one Decision per MPI_ALLTOALL site (plus a default for sites not
// named), JSON round-trippable so a tuner can record it, a human can edit
// it, and core.Apply can replay it onto a parsed program.
package plan

import (
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
)

// Schema identifies the plan JSON layout.
const Schema = "repro/plan/v1"

// DefaultK is the tile size used when nothing chooses one (the paper's §2
// leaves K to the user; 8 is a reasonable default for the simulated
// cluster).
const DefaultK = 8

// DefaultInterchangeMinBlockBytes is the §3.5 granularity gate: a legal
// interchange is applied only when the resulting Fig. 4 exchange sends
// contiguous blocks of at least this many bytes (blockElems × K × 4);
// below that, fragmentation overhead outweighs the balanced schedule.
const DefaultInterchangeMinBlockBytes = 2048

// WaitSchedule places the inter-tile waits (§3.6 step 2).
type WaitSchedule string

const (
	// WaitDeferred drains every request after the tiled loop — correct for
	// the direct pattern (no buffer reuse within ℓ) and avoids stalling a
	// tile's owner behind the incast. The default.
	WaitDeferred WaitSchedule = "deferred"
	// WaitPerTile is the paper's literal schedule: each tile blocks on the
	// previous tile's requests before posting its own.
	WaitPerTile WaitSchedule = "per-tile"
)

// SendOrder selects the subset-send partition traversal.
type SendOrder string

const (
	// SendStaggered uses the ring partition order per rank (me+1 first, own
	// partition last, receives pre-posted) whenever tile order independence
	// is provable — the incast fix. The default.
	SendStaggered SendOrder = "staggered"
	// SendSequential forces the paper's literal owner order 0..np-1 even
	// when reordering would be legal.
	SendSequential SendOrder = "sequential"
)

// Interchange gates the §3.5 loop interchange.
type Interchange string

const (
	// InterchangeAuto applies a legal interchange only when it passes the
	// message-granularity gate (MinBlockBytes). The default.
	InterchangeAuto Interchange = "auto"
	// InterchangeOn applies a legal interchange unconditionally.
	InterchangeOn Interchange = "on"
	// InterchangeOff never interchanges; the subset-send fallback is used.
	InterchangeOff Interchange = "off"
)

// Decision is the per-site knob vector: everything the transformation lets
// a caller (or tuner) choose about one MPI_ALLTOALL site — including the
// decision not to transform it at all.
type Decision struct {
	// Skip declines the transformation for this site: the paper's rewrite
	// is advice, not a mandate, and the identity plan is a first-class
	// member of plan space. A skipped site is left byte-for-byte untouched
	// by Apply, and every other knob is ignored (Normalize collapses a
	// skipped decision to its canonical form so the plan key cannot alias a
	// transformed decision).
	Skip bool `json:"skip,omitempty"`
	// K is the tile size (iterations of the finalized loop per tile).
	K int64 `json:"k"`
	// Wait places the inter-tile waits; empty means WaitDeferred.
	Wait WaitSchedule `json:"wait,omitempty"`
	// SendOrder picks the subset-send traversal; empty means SendStaggered.
	SendOrder SendOrder `json:"send_order,omitempty"`
	// Interchange gates the §3.5 interchange; empty means InterchangeAuto.
	Interchange Interchange `json:"interchange,omitempty"`
	// InterchangeMinBlockBytes tunes the auto gate; 0 means the default
	// (DefaultInterchangeMinBlockBytes). Ignored unless Interchange is auto.
	InterchangeMinBlockBytes int64 `json:"interchange_min_block_bytes,omitempty"`
}

// Identity returns the canonical "don't transform" decision.
func Identity() Decision { return Decision{Skip: true} }

// Normalize fills the zero knobs with their defaults and returns the result.
// A skipped decision collapses to the canonical identity: the other knobs
// are meaningless for an untransformed site, and collapsing them keeps the
// plan key unique (skip can never alias any transformed decision).
func (d Decision) Normalize() Decision {
	if d.Skip {
		return Identity()
	}
	if d.K == 0 {
		d.K = DefaultK
	}
	if d.Wait == "" {
		d.Wait = WaitDeferred
	}
	if d.SendOrder == "" {
		d.SendOrder = SendStaggered
	}
	if d.Interchange == "" {
		d.Interchange = InterchangeAuto
	}
	if d.Interchange == InterchangeAuto && d.InterchangeMinBlockBytes == 0 {
		d.InterchangeMinBlockBytes = DefaultInterchangeMinBlockBytes
	}
	return d
}

// Validate rejects a decision outside the knob space. A skipped decision is
// always valid — its other knobs are ignored (and Normalize drops them), but
// a negative K still signals a malformed plan.
func (d Decision) Validate() error {
	if d.Skip {
		if d.K < 0 {
			return fmt.Errorf("plan: tile size K must be ≥ 0 on a skipped site, got %d", d.K)
		}
		return nil
	}
	if d.K < 1 {
		return fmt.Errorf("plan: tile size K must be ≥ 1, got %d", d.K)
	}
	switch d.Wait {
	case "", WaitDeferred, WaitPerTile:
	default:
		return fmt.Errorf("plan: unknown wait schedule %q (want %q or %q)", d.Wait, WaitDeferred, WaitPerTile)
	}
	switch d.SendOrder {
	case "", SendStaggered, SendSequential:
	default:
		return fmt.Errorf("plan: unknown send order %q (want %q or %q)", d.SendOrder, SendStaggered, SendSequential)
	}
	switch d.Interchange {
	case "", InterchangeAuto, InterchangeOn, InterchangeOff:
	default:
		return fmt.Errorf("plan: unknown interchange mode %q (want %q, %q, or %q)",
			d.Interchange, InterchangeAuto, InterchangeOn, InterchangeOff)
	}
	if d.InterchangeMinBlockBytes < 0 {
		return fmt.Errorf("plan: interchange_min_block_bytes must be ≥ 0, got %d (use interchange %q to disable)",
			d.InterchangeMinBlockBytes, InterchangeOff)
	}
	return nil
}

// SitePlan binds a decision to one MPI_ALLTOALL site, identified by the
// "line:col" position of the call statement in the original source.
type SitePlan struct {
	Site     string   `json:"site"`
	Decision Decision `json:"decision"`
}

// Plan is a serializable per-site overlap plan. Sites not named fall back
// to Default, so a uniform plan is just a Default with no site entries.
type Plan struct {
	Schema string `json:"schema"`
	// Machine names the machine model the plan was built for ("" when the
	// plan is machine-agnostic). Informational: Apply does not consult it.
	Machine string `json:"machine,omitempty"`
	// NP is the rank count the plan targets; 0 means "use the program's
	// named constant np".
	NP      int64      `json:"np,omitempty"`
	Default Decision   `json:"default"`
	Sites   []SitePlan `json:"sites,omitempty"`
}

// Default returns the uniform plan for a machine model: the paper's default
// knobs (deferred waits, staggered sends, auto-gated interchange) with the
// machine's default tile size.
func Default(m Machine) *Plan {
	return &Plan{
		Schema:  Schema,
		Machine: m.Name,
		Default: Decision{K: m.DefaultK()}.Normalize(),
	}
}

// Uniform returns a machine-agnostic plan applying one decision everywhere.
func Uniform(d Decision) *Plan {
	return &Plan{Schema: Schema, Default: d.Normalize()}
}

// For returns the decision for the site at position pos ("line:col"),
// normalized, falling back to the plan default.
func (p *Plan) For(pos string) Decision {
	for _, s := range p.Sites {
		if s.Site == pos {
			return s.Decision.Normalize()
		}
	}
	return p.Default.Normalize()
}

// Set records a per-site decision, replacing any earlier entry for the site.
func (p *Plan) Set(pos string, d Decision) {
	for i := range p.Sites {
		if p.Sites[i].Site == pos {
			p.Sites[i].Decision = d
			return
		}
	}
	p.Sites = append(p.Sites, SitePlan{Site: pos, Decision: d})
}

// Validate checks the whole plan: schema, every decision, unique
// well-formed site keys.
func (p *Plan) Validate() error {
	if p.Schema != Schema {
		return fmt.Errorf("plan: schema %q, want %q", p.Schema, Schema)
	}
	if p.NP < 0 {
		return fmt.Errorf("plan: np must be ≥ 0, got %d", p.NP)
	}
	if err := p.Default.Validate(); err != nil {
		return fmt.Errorf("plan: default: %w", err)
	}
	seen := map[string]bool{}
	for _, s := range p.Sites {
		if err := validSiteKey(s.Site); err != nil {
			return err
		}
		if seen[s.Site] {
			return fmt.Errorf("plan: duplicate site %q", s.Site)
		}
		seen[s.Site] = true
		if err := s.Decision.Validate(); err != nil {
			return fmt.Errorf("plan: site %s: %w", s.Site, err)
		}
	}
	return nil
}

// validSiteKey checks the "line:col" format with positive integers.
func validSiteKey(site string) error {
	parts := strings.Split(site, ":")
	if len(parts) != 2 {
		return fmt.Errorf("plan: site key %q is not \"line:col\"", site)
	}
	for _, part := range parts {
		n, err := strconv.Atoi(part)
		if err != nil || n < 1 {
			return fmt.Errorf("plan: site key %q is not \"line:col\"", site)
		}
	}
	return nil
}

// Encode marshals the plan (pretty-printed, trailing newline) after
// validating it.
func (p *Plan) Encode() ([]byte, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Decode unmarshals and validates a plan.
func Decode(b []byte) (*Plan, error) {
	var p Plan
	if err := json.Unmarshal(b, &p); err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &p, nil
}

// Key is a canonical fingerprint of the plan's decision content (schema and
// machine name excluded), suitable for memoizing Apply results.
func (p *Plan) Key() string {
	var sb strings.Builder
	writeDecision := func(d Decision) {
		d = d.Normalize()
		if d.Skip {
			// The identity decision: no transformed decision can produce
			// this token (K is always ≥ 1 there), so skip never aliases.
			sb.WriteString("skip")
			return
		}
		fmt.Fprintf(&sb, "k=%d,w=%s,s=%s,i=%s,m=%d", d.K, d.Wait, d.SendOrder, d.Interchange, d.InterchangeMinBlockBytes)
	}
	fmt.Fprintf(&sb, "np=%d;", p.NP)
	writeDecision(p.Default)
	// Site entries in the order recorded; Set keeps one entry per site.
	for _, s := range p.Sites {
		sb.WriteString(";" + s.Site + ":")
		writeDecision(s.Decision)
	}
	return sb.String()
}
