package plan

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/interp"
	"repro/internal/netsim"
)

// Machine is a named machine model: the network profile the simulator
// charges communication against and the CPU cost model the interpreter
// charges computation against. The two used to live apart (netsim.Profile
// constants vs interp.CostModel defaults) with no way to name a coherent
// pair; a Machine is that pair, and plans record which one they were built
// for.
type Machine struct {
	Name    string           `json:"name"`
	Profile netsim.Profile   `json:"profile"`
	Costs   interp.CostModel `json:"costs"`
	// PreferredK is the machine's default tile size; 0 means DefaultK.
	PreferredK int64 `json:"preferred_k,omitempty"`
	// Notes documents the calibration source.
	Notes string `json:"notes,omitempty"`
}

// DefaultK returns the machine's default tile size.
func (m Machine) DefaultK() int64 {
	if m.PreferredK > 0 {
		return m.PreferredK
	}
	return DefaultK
}

// String names the machine.
func (m Machine) String() string { return m.Name }

// MPICHTCP2005 is the paper's host-progress stack: MPICH over TCP on
// 100 Mbit-class Ethernet, kernel-managed eager sends, no offload, paired
// with a mid-2000s node's CPU costs.
func MPICHTCP2005() Machine {
	prof := netsim.MPICHTCP()
	prof.Name = "mpich-tcp-2005"
	return Machine{
		Name:    "mpich-tcp-2005",
		Profile: prof,
		Costs:   interp.DefaultCosts(),
		Notes:   "paper-era MPICH over TCP: host-driven progress, per-byte stack copies",
	}
}

// MPICHGM2005 is the paper's offload stack: MPICH-GM on Myrinet, zero-copy
// RDMA with an autonomous NIC co-processor, same-era CPU costs.
func MPICHGM2005() Machine {
	prof := netsim.MPICHGM()
	prof.Name = "mpich-gm-2005"
	return Machine{
		Name:    "mpich-gm-2005",
		Profile: prof,
		Costs:   interp.DefaultCosts(),
		Notes:   "paper-era MPICH-GM on Myrinet: zero-copy RDMA, NIC progresses rendezvous",
	}
}

// HPCRDMA2019 is a LogGP-calibrated modern cluster: 100 Gbit RDMA-capable
// interconnect (InfiniBand EDR / RoCE class — o ≈ 0.4 µs, L ≈ 1.2 µs,
// G ≈ 0.09 ns/B per published LogGP fits of verbs-level microbenchmarks)
// and a proportionally faster node. The eager/rendezvous switch sits at the
// 16 KiB point common to MVAPICH-style stacks. Offload holds: the HCA
// progresses rendezvous transfers without the host.
func HPCRDMA2019() Machine {
	return Machine{
		Name: "hpc-rdma-2019",
		Profile: netsim.Profile{
			Name:           "hpc-rdma-2019",
			OSend:          400 * netsim.Nanosecond,
			ORecv:          400 * netsim.Nanosecond,
			CopyNsPerByte:  0, // zero copy (registered memory)
			Latency:        1200 * netsim.Nanosecond,
			GapNsPerByte:   0.09, // ~11 GB/s effective
			EagerThreshold: 16 * 1024,
			CtrlBytes:      64,
			Offload:        true,
		},
		Costs: interp.CostModel{
			Op:       1 * netsim.Nanosecond, // wider cores, but interpreted ops still cost
			Assign:   1 * netsim.Nanosecond,
			Store:    1 * netsim.Nanosecond,
			Load:     1 * netsim.Nanosecond,
			LoopIter: 1 * netsim.Nanosecond,
			CallOver: 8 * netsim.Nanosecond,
		},
		// Faster wire relative to compute favors coarser tiles.
		PreferredK: 16,
		Notes:      "LogGP-calibrated 100G RDMA cluster (EDR/RoCE class), modern node",
	}
}

// aliases maps the historical short profile names onto machine models so
// existing call sites ("mpich-gm") keep resolving.
var aliases = map[string]string{
	"mpich-tcp": "mpich-tcp-2005",
	"mpich-gm":  "mpich-gm-2005",
}

// Builtin returns the named machine models, sorted by name.
func Builtin() []Machine {
	ms := []Machine{MPICHTCP2005(), MPICHGM2005(), HPCRDMA2019()}
	sort.Slice(ms, func(i, j int) bool { return ms[i].Name < ms[j].Name })
	return ms
}

// PaperPair returns the two machine models of the paper's evaluation.
func PaperPair() []Machine {
	return []Machine{MPICHTCP2005(), MPICHGM2005()}
}

// DefaultSweep returns the default sweep set: the paper pair plus the
// modern hpc-rdma-2019 stack, promoted once its gate behavior was
// characterized corpus-wide (all 40 scenarios pass the oracle; the offload
// gates hold — the faster wire shrinks the blocked time the transformation
// can reclaim, so its overlap gains are real but thinner than Myrinet's).
func DefaultSweep() []Machine {
	return []Machine{MPICHTCP2005(), MPICHGM2005(), HPCRDMA2019()}
}

// ByName resolves a machine model by name or historical alias.
func ByName(name string) (Machine, error) {
	resolved := name
	if a, ok := aliases[strings.ToLower(name)]; ok {
		resolved = a
	}
	for _, m := range Builtin() {
		if m.Name == resolved {
			return m, nil
		}
	}
	var names []string
	for _, m := range Builtin() {
		names = append(names, m.Name)
	}
	return Machine{}, fmt.Errorf("plan: unknown machine %q (have %s)", name, strings.Join(names, ", "))
}

// FromProfile wraps a bare network profile as a machine with default-era
// CPU costs — the bridge for callers that still deal in netsim.Profile.
func FromProfile(prof netsim.Profile) Machine {
	return Machine{Name: prof.Name, Profile: prof, Costs: interp.DefaultCosts()}
}
