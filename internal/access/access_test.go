package access

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dep"
)

func aff(c int64, terms ...interface{}) dep.Affine {
	a := dep.NewAffine(c)
	for i := 0; i+1 < len(terms); i += 2 {
		a.Coef[terms[i].(string)] = int64(terms[i+1].(int))
	}
	return a
}

func tri(lo, hi int64) Triplet {
	return Triplet{Lo: dep.NewAffine(lo), Hi: dep.NewAffine(hi)}
}

func TestIntervalOf(t *testing.T) {
	b := Bounds{
		"i": tri(1, 10),
		"j": tri(0, 4),
	}
	cases := []struct {
		a      dep.Affine
		lo, hi int64
	}{
		{aff(0, "i", 1), 1, 10},
		{aff(5, "i", 1), 6, 15},
		{aff(0, "i", 2), 2, 20},
		{aff(0, "i", -1), -10, -1},
		{aff(0, "i", 1, "j", 1), 1, 14},
		{aff(3, "i", -2, "j", 3), -17 + 0, 13},
		{aff(7), 7, 7},
	}
	for _, c := range cases {
		iv, ok := IntervalOf(c.a, b)
		if !ok {
			t.Errorf("IntervalOf(%v) failed", c.a)
			continue
		}
		lo, _ := iv.Lo.Eval(nil)
		hi, _ := iv.Hi.Eval(nil)
		if lo != c.lo || hi != c.hi {
			t.Errorf("IntervalOf(%v) = [%d,%d], want [%d,%d]", c.a, lo, hi, c.lo, c.hi)
		}
	}
	// Unbound variable fails.
	if _, ok := IntervalOf(aff(0, "z", 1), b); ok {
		t.Error("unbound variable should fail")
	}
}

func TestQuickIntervalSound(t *testing.T) {
	// Property: for random affine forms and random points inside the
	// bounds, the evaluated value lies within the computed interval.
	r := rand.New(rand.NewSource(33))
	check := func() bool {
		b := Bounds{}
		vars := []string{"i", "j", "k"}
		env := map[string]int64{}
		for _, v := range vars {
			lo := int64(r.Intn(10) - 5)
			hi := lo + int64(r.Intn(8))
			b[v] = tri(lo, hi)
			env[v] = lo + int64(r.Intn(int(hi-lo+1)))
		}
		a := dep.NewAffine(int64(r.Intn(11) - 5))
		for _, v := range vars {
			a.Coef[v] = int64(r.Intn(9) - 4)
		}
		iv, ok := IntervalOf(a, b)
		if !ok {
			return false
		}
		val, _ := a.Eval(env)
		lo, _ := iv.Lo.Eval(nil)
		hi, _ := iv.Hi.Eval(nil)
		return lo <= val && val <= hi
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteRegion1D(t *testing.T) {
	// as(ix) over tile ix in [t, t+K-1].
	loops := []dep.Loop{{Var: "ix", Lo: dep.NewAffine(1), Hi: dep.NewAffine(64), Step: 1}}
	ref := &dep.Ref{Array: "as", Subs: []dep.Affine{aff(0, "ix", 1)}, Write: true, Loops: loops}
	tileLo := dep.Var("t")
	b, ok := TileBounds(loops, "ix", tileLo, 8)
	if !ok {
		t.Fatal("TileBounds failed")
	}
	reg, ok := WriteRegion(ref, b)
	if !ok {
		t.Fatal("WriteRegion failed")
	}
	if got := reg.Dims[0].Lo.String(); got != "1*t" {
		t.Errorf("lo = %q", got)
	}
	if got := reg.Dims[0].Hi.String(); got != "1*t + 7" {
		t.Errorf("hi = %q", got)
	}
}

func TestBlocksSingleAndMulti(t *testing.T) {
	consts := map[string]int64{}
	// Array a(1:10, 1:10); region (1:10, 3:5): covers dim1 fully,
	// so a single contiguous block of 10*3 = 30 elements.
	arr := []Triplet{tri(1, 10), tri(1, 10)}
	reg := Region{Dims: []Triplet{tri(1, 10), tri(3, 5)}}
	info, ok := Blocks(reg, arr, consts)
	if !ok {
		t.Fatal("Blocks failed")
	}
	if !info.Single {
		t.Errorf("want single block, got %+v", info)
	}
	if sz, _ := info.Size.Eval(nil); sz != 30 {
		t.Errorf("size = %d, want 30", sz)
	}
	if info.FullPrefix != 1 {
		t.Errorf("full prefix = %d, want 1", info.FullPrefix)
	}

	// Region (2:4, 3:5): dim1 partial: blocks of 3, one per j in 3..5.
	reg2 := Region{Dims: []Triplet{tri(2, 4), tri(3, 5)}}
	info2, ok := Blocks(reg2, arr, consts)
	if !ok {
		t.Fatal("Blocks failed")
	}
	if info2.Single {
		t.Error("partial dim1 must be multi-block")
	}
	if sz, _ := info2.Size.Eval(nil); sz != 3 {
		t.Errorf("block size = %d, want 3", sz)
	}
	if nb, _ := info2.NumBlocks.Eval(nil); nb != 3 {
		t.Errorf("num blocks = %d, want 3", nb)
	}
	if len(info2.LoopDims) != 1 || info2.LoopDims[0] != 1 {
		t.Errorf("loop dims = %v, want [1]", info2.LoopDims)
	}

	// Whole-array region: single block of 100.
	reg3 := Region{Dims: []Triplet{tri(1, 10), tri(1, 10)}}
	info3, _ := Blocks(reg3, arr, consts)
	if !info3.Single || info3.FullPrefix != 2 {
		t.Errorf("whole array: %+v", info3)
	}
	if sz, _ := info3.Size.Eval(nil); sz != 100 {
		t.Errorf("size = %d, want 100", sz)
	}
}

func TestBlocksSymbolicWithConsts(t *testing.T) {
	nx := dep.NewAffine(0)
	nx.Syms["nx"] = 1
	arr := []Triplet{{Lo: dep.NewAffine(1), Hi: nx}, tri(1, 4)}
	reg := Region{Dims: []Triplet{{Lo: dep.NewAffine(1), Hi: nx}, tri(2, 2)}}
	consts := map[string]int64{"nx": 16}
	info, ok := Blocks(reg, arr, consts)
	if !ok {
		t.Fatal("Blocks failed with symbolic extent")
	}
	if !info.Single {
		t.Errorf("single-point second dim should be single block: %+v", info)
	}
	if sz, _ := info.Size.Bind(consts).Eval(nil); sz != 16 {
		t.Errorf("size = %d, want 16", sz)
	}
}

func TestBlocksUndecidableSymbolicConservative(t *testing.T) {
	// Unknown extent: coverage is undecidable, so the dimension is treated
	// as partially covered (conservative: more, smaller blocks).
	unknown := dep.NewAffine(0)
	unknown.Syms["m"] = 1
	arr := []Triplet{{Lo: dep.NewAffine(1), Hi: unknown}}
	reg := Region{Dims: []Triplet{tri(1, 5)}}
	info, ok := Blocks(reg, arr, nil)
	if !ok {
		t.Fatal("conservative Blocks should succeed")
	}
	if info.FullPrefix != 0 {
		t.Errorf("full prefix = %d, want 0 (undecidable treated as partial)", info.FullPrefix)
	}
	if sz, _ := info.Size.Eval(nil); sz != 5 {
		t.Errorf("size = %d, want 5", sz)
	}
}

func TestLinearOffset(t *testing.T) {
	arr := []Triplet{tri(1, 10), tri(1, 10)}
	reg := Region{Dims: []Triplet{tri(1, 10), tri(3, 5)}}
	off, ok := LinearOffset(reg, arr, nil)
	if !ok {
		t.Fatal("LinearOffset failed")
	}
	if v, _ := off.Eval(nil); v != 20 {
		t.Errorf("offset = %d, want 20 (two full columns)", v)
	}
}

func TestUnionRegions(t *testing.T) {
	a := Region{Dims: []Triplet{tri(1, 5)}}
	b := Region{Dims: []Triplet{tri(4, 9)}}
	u, ok := Union(a, b, nil)
	if !ok {
		t.Fatal("Union failed")
	}
	lo, _ := u.Dims[0].Lo.Eval(nil)
	hi, _ := u.Dims[0].Hi.Eval(nil)
	if lo != 1 || hi != 9 {
		t.Errorf("union = [%d,%d], want [1,9]", lo, hi)
	}
}

func TestTileBoundsTriangular(t *testing.T) {
	// do iy (tiled) / do ix = iy, 64: ix interval uses tile's iy interval.
	loops := []dep.Loop{
		{Var: "iy", Lo: dep.NewAffine(1), Hi: dep.NewAffine(64), Step: 1},
		{Var: "ix", Lo: dep.Var("iy"), Hi: dep.NewAffine(64), Step: 1},
	}
	b, ok := TileBounds(loops, "iy", dep.Var("t"), 4)
	if !ok {
		t.Fatal("TileBounds failed")
	}
	if got := b["ix"].Lo.String(); got != "1*t" {
		t.Errorf("ix lo = %q, want 1*t", got)
	}
	if got := b["ix"].Hi.String(); got != "64" {
		t.Errorf("ix hi = %q, want 64", got)
	}
}
