// Package access implements the array access analysis of the paper's §3.3:
// partial triplets (symbolic lower/upper bounds per subscript dimension),
// the region of an array written during one tile of K iterations, and the
// size and offsets of the contiguous blocks that region occupies under
// Fortran column-major layout.
package access

import (
	"fmt"
	"strings"

	"repro/internal/dep"
)

// Triplet is the paper's partial triplet: inclusive symbolic bounds of one
// subscript dimension (stride handling is folded into the bounds; the
// coarse-grained representation assumes dense coverage in between, which is
// conservative for communication: we may send unwritten padding, never skip
// written data).
type Triplet struct {
	Lo dep.Affine
	Hi dep.Affine
}

// String renders the triplet as "lo:hi".
func (t Triplet) String() string { return t.Lo.String() + ":" + t.Hi.String() }

// Extent returns hi - lo + 1.
func (t Triplet) Extent() dep.Affine {
	return t.Hi.Sub(t.Lo).Add(dep.NewAffine(1))
}

// Equal reports structural equality of both bounds.
func (t Triplet) Equal(o Triplet) bool { return t.Lo.Equal(o.Lo) && t.Hi.Equal(o.Hi) }

// Region is a rectangular array region: one triplet per array dimension.
type Region struct {
	Dims []Triplet
}

// String renders the region as "(l1:h1, l2:h2, ...)".
func (r Region) String() string {
	parts := make([]string, len(r.Dims))
	for i, d := range r.Dims {
		parts[i] = d.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Bounds describes the iteration sub-space of one tile: an inclusive affine
// interval per loop variable. Loop variables absent from the map are
// unconstrained (an error for variables that appear in subscripts).
type Bounds map[string]Triplet

// IntervalOf evaluates the affine form a over the variable intervals in b,
// producing the (symbolic) interval the form can take. It fails when a
// references a variable with no interval.
func IntervalOf(a dep.Affine, b Bounds) (Triplet, bool) {
	lo := dep.NewAffine(a.Const)
	hi := dep.NewAffine(a.Const)
	// Symbolic invariants shift both bounds equally.
	for s, c := range a.Syms {
		sym := dep.NewAffine(0)
		sym.Syms[s] = c
		lo = lo.Add(sym)
		hi = hi.Add(sym)
	}
	for _, v := range a.Vars() {
		c := a.CoefOf(v)
		iv, ok := b[v]
		if !ok {
			return Triplet{}, false
		}
		if c >= 0 {
			lo = lo.Add(iv.Lo.Scale(c))
			hi = hi.Add(iv.Hi.Scale(c))
		} else {
			lo = lo.Add(iv.Hi.Scale(c))
			hi = hi.Add(iv.Lo.Scale(c))
		}
	}
	return Triplet{Lo: lo, Hi: hi}, true
}

// WriteRegion computes the region of ref's array written while the loop
// variables range over bounds. It fails for non-affine references.
func WriteRegion(ref *dep.Ref, bounds Bounds) (Region, bool) {
	if ref.NonAffine {
		return Region{}, false
	}
	r := Region{Dims: make([]Triplet, len(ref.Subs))}
	for d, sub := range ref.Subs {
		iv, ok := IntervalOf(sub, bounds)
		if !ok {
			return Region{}, false
		}
		r.Dims[d] = iv
	}
	return r, true
}

// Union widens r to cover o (per-dimension bound union). Bounds must be
// comparable either structurally or numerically; when incomparable, ok is
// false and the caller must treat the region as unknown.
func Union(r, o Region, consts map[string]int64) (Region, bool) {
	if len(r.Dims) != len(o.Dims) {
		return Region{}, false
	}
	out := Region{Dims: make([]Triplet, len(r.Dims))}
	for d := range r.Dims {
		lo, ok1 := minAffine(r.Dims[d].Lo, o.Dims[d].Lo, consts)
		hi, ok2 := maxAffine(r.Dims[d].Hi, o.Dims[d].Hi, consts)
		if !ok1 || !ok2 {
			return Region{}, false
		}
		out.Dims[d] = Triplet{Lo: lo, Hi: hi}
	}
	return out, true
}

// minAffine returns the smaller of two affine forms when decidable.
func minAffine(a, b dep.Affine, consts map[string]int64) (dep.Affine, bool) {
	if a.Equal(b) {
		return a, true
	}
	d := a.Bind(consts).Sub(b.Bind(consts))
	if d.IsConst() {
		if d.Const <= 0 {
			return a, true
		}
		return b, true
	}
	return dep.Affine{}, false
}

func maxAffine(a, b dep.Affine, consts map[string]int64) (dep.Affine, bool) {
	if a.Equal(b) {
		return a, true
	}
	d := a.Bind(consts).Sub(b.Bind(consts))
	if d.IsConst() {
		if d.Const >= 0 {
			return a, true
		}
		return b, true
	}
	return dep.Affine{}, false
}

// BlockInfo describes how a region decomposes into contiguous runs of
// elements under Fortran column-major layout.
type BlockInfo struct {
	// FullPrefix is the number of leading array dimensions the region
	// covers completely.
	FullPrefix int
	// BlockDim is the first not-fully-covered dimension (== FullPrefix);
	// equal to the array rank when the whole region is one block.
	BlockDim int
	// Size is the element count of one contiguous block:
	// Π extent(full dims) × extent(region at BlockDim).
	Size dep.Affine
	// LoopDims are the array dimensions (> BlockDim) the communication
	// loop nest must iterate to visit every block; empty means one block.
	LoopDims []int
	// NumBlocks is Π extent(region at LoopDims).
	NumBlocks dep.Affine
	// Single reports the optimal single-transfer case the paper highlights.
	Single bool
}

// Blocks analyzes the decomposition of region within an array declared with
// the given dimension triplets. consts resolves named constants when
// comparing symbolic bounds. It fails when full-coverage of a dimension
// cannot be decided.
func Blocks(region Region, arrDims []Triplet, consts map[string]int64) (*BlockInfo, bool) {
	if len(region.Dims) != len(arrDims) {
		return nil, false
	}
	n := len(arrDims)
	full := make([]bool, n)
	for d := 0; d < n; d++ {
		f, ok := coversFully(region.Dims[d], arrDims[d], consts)
		if !ok {
			return nil, false
		}
		full[d] = f
	}
	info := &BlockInfo{}
	// Leading fully-covered prefix.
	p := 0
	for p < n && full[p] {
		p++
	}
	info.FullPrefix = p
	info.BlockDim = p
	size := dep.NewAffine(1)
	for d := 0; d < p; d++ {
		size = mulAffine(size, arrDims[d].Extent(), consts)
	}
	if p < n {
		size = mulAffine(size, region.Dims[p].Extent(), consts)
	}
	info.Size = size
	num := dep.NewAffine(1)
	for d := p + 1; d < n; d++ {
		ext := region.Dims[d].Extent()
		one := ext.Bind(consts)
		if one.IsConst() && one.Const == 1 {
			continue // single point: no loop needed, offset is fixed
		}
		info.LoopDims = append(info.LoopDims, d)
		num = mulAffine(num, ext, consts)
	}
	info.NumBlocks = num
	nb := num.Bind(consts)
	info.Single = nb.IsConst() && nb.Const == 1
	return info, true
}

// coversFully reports whether the region dimension spans the declared
// dimension exactly (or more). When the comparison is symbolic and
// undecidable it conservatively answers "not fully covered", which yields
// smaller blocks (more messages) but never skips written data.
func coversFully(r, arr Triplet, consts map[string]int64) (bool, bool) {
	loD := r.Lo.Bind(consts).Sub(arr.Lo.Bind(consts))
	hiD := arr.Hi.Bind(consts).Sub(r.Hi.Bind(consts))
	if r.Lo.Equal(arr.Lo) {
		loD = dep.NewAffine(0)
	}
	if r.Hi.Equal(arr.Hi) {
		hiD = dep.NewAffine(0)
	}
	if !loD.IsConst() || !hiD.IsConst() {
		return false, true
	}
	return loD.Const <= 0 && hiD.Const <= 0, true
}

// mulAffine multiplies two affine forms when at least one side is constant
// after binding; otherwise it returns a symbolic product placeholder that
// still prints usefully (used only for reporting, never for codegen).
func mulAffine(a, b dep.Affine, consts map[string]int64) dep.Affine {
	ab := a.Bind(consts)
	bb := b.Bind(consts)
	if ab.IsConst() {
		return bb.Scale(ab.Const)
	}
	if bb.IsConst() {
		return ab.Scale(bb.Const)
	}
	out := dep.NewAffine(0)
	out.Syms[fmt.Sprintf("(%s)*(%s)", a, b)] = 1
	return out
}

// LinearOffset returns the 0-based column-major linear offset of the region
// origin within the array, as an affine form (element units).
func LinearOffset(region Region, arrDims []Triplet, consts map[string]int64) (dep.Affine, bool) {
	off := dep.NewAffine(0)
	stride := dep.NewAffine(1)
	for d := 0; d < len(arrDims); d++ {
		delta := region.Dims[d].Lo.Sub(arrDims[d].Lo)
		sb := stride.Bind(consts)
		if !sb.IsConst() {
			return dep.Affine{}, false
		}
		off = off.Add(delta.Scale(sb.Const))
		stride = mulAffine(stride, arrDims[d].Extent(), consts)
	}
	return off, true
}

// TileBounds builds the Bounds map for one tile of the paper's
// transformation: the tiled loop variable is restricted to
// [tileLo, tileLo+k-1] and every other loop keeps its declared range.
// Inner-loop bounds that reference the tiled variable are resolved against
// the tile interval by interval arithmetic.
func TileBounds(loops []dep.Loop, tiledVar string, tileLo dep.Affine, k int64) (Bounds, bool) {
	b := Bounds{}
	// Two passes: outer loops first so triangular bounds can resolve.
	for _, lp := range loops {
		if lp.Var == tiledVar {
			b[lp.Var] = Triplet{Lo: tileLo, Hi: tileLo.Add(dep.NewAffine(k - 1))}
			continue
		}
		loIv, ok1 := IntervalOf(lp.Lo, b)
		hiIv, ok2 := IntervalOf(lp.Hi, b)
		if !ok1 || !ok2 {
			return nil, false
		}
		if lp.Step >= 0 {
			b[lp.Var] = Triplet{Lo: loIv.Lo, Hi: hiIv.Hi}
		} else {
			b[lp.Var] = Triplet{Lo: hiIv.Lo, Hi: loIv.Hi}
		}
	}
	return b, true
}
