package workload

import (
	"strings"
	"testing"

	"repro/internal/ftn"
	"repro/internal/interp"
	"repro/internal/netsim"
)

func TestGeneratedSourcesParse(t *testing.T) {
	sources := map[string]string{
		"direct":   DirectSource(DirectParams{NX: 32, Outer: 2, NP: 4, Weight: 2}),
		"inner3d":  Inner3DSource(Inner3DParams{M: 8, NY: 8, SZ: 4, NP: 2, Weight: 1}),
		"indirect": IndirectSource(IndirectParams{N: 4, NP: 2, Weight: 1}),
	}
	for name, src := range sources {
		if _, err := ftn.Parse(src); err != nil {
			t.Errorf("%s does not parse: %v\n%s", name, err, src)
		}
	}
}

func TestGeneratedSourcesRun(t *testing.T) {
	cases := []struct {
		name string
		src  string
		np   int
	}{
		{"direct", DirectSource(DirectParams{NX: 32, Outer: 2, NP: 4, Weight: 1}), 4},
		{"inner3d", Inner3DSource(Inner3DParams{M: 8, NY: 8, SZ: 4, NP: 4, Weight: 1}), 4},
		{"indirect", IndirectSource(IndirectParams{N: 4, NP: 4, Weight: 1}), 4},
	}
	for _, c := range cases {
		p, err := interp.Load(c.src)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		res, err := p.Run(c.np, netsim.MPICHGM())
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if len(res.Output[0]) == 0 || !strings.Contains(res.Output[0][0], "checksum") {
			t.Errorf("%s: no checksum printed: %v", c.name, res.Output[0])
		}
	}
}

func TestCompareEquivalenceSmall(t *testing.T) {
	src := Inner3DSource(Inner3DParams{M: 8, NY: 8, SZ: 4, NP: 4, Weight: 1})
	cmp, err := Compare("small", src, RunOptions{NP: 4, K: 2, CheckEquivalence: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cmp.Measurements) != 4 {
		t.Fatalf("measurements = %d, want 4", len(cmp.Measurements))
	}
	norm := cmp.Normalized()
	if len(norm) != 4 {
		t.Fatalf("normalized = %v", norm)
	}
	best := 1e18
	for _, v := range norm {
		if v < best {
			best = v
		}
	}
	if best != 1.0 {
		t.Errorf("best normalized = %f, want 1.0", best)
	}
	if !strings.Contains(cmp.String(), "mpich-gm") {
		t.Errorf("table missing profile:\n%s", cmp)
	}
}

func TestCompareDetectsBrokenTransform(t *testing.T) {
	// Sanity for the checker itself: comparing two *different* programs
	// must fail equivalence. We simulate that by checking Compare's error
	// path through a kernel whose transform is rejected.
	src := `
program p
  implicit none
  include 'mpif.h'
  integer as(1:8), ar(1:8), i, ierr
  do i = 1, 8
    if (i > 2) then
      as(i) = i
    endif
  enddo
  call mpi_alltoall(as, 2, mpi_integer, ar, 2, mpi_integer, mpi_comm_world, ierr)
end program p
`
	if _, err := Compare("broken", src, RunOptions{NP: 4, K: 2}); err == nil {
		t.Fatal("expected transform-did-not-fire error")
	}
}

func TestFigure1ShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 1 run is seconds-long; skipped in -short")
	}
	cmp, err := Figure1()
	if err != nil {
		t.Fatal(err)
	}
	norm := cmp.Normalized()
	tcpO, tcpP := norm["mpich-tcp original"], norm["mpich-tcp prepush"]
	gmO, gmP := norm["mpich-gm original"], norm["mpich-gm prepush"]
	// The paper's ordering: prepush ≤ original on both stacks; the offload
	// stack is fastest overall.
	if tcpP >= tcpO {
		t.Errorf("tcp prepush (%.2f) not better than original (%.2f)", tcpP, tcpO)
	}
	if gmP >= gmO {
		t.Errorf("gm prepush (%.2f) not better than original (%.2f)", gmP, gmO)
	}
	if gmP != 1.0 {
		t.Errorf("gm prepush should be the baseline 1.0, got %.2f", gmP)
	}
	if gmO >= tcpP {
		t.Errorf("gm original (%.2f) should beat tcp prepush (%.2f)", gmO, tcpP)
	}
}
