package workload

import (
	"fmt"
	"testing"
)

// corpusOf builds a minimal fake corpus of n scenarios with stable indices.
func corpusOf(n int) []Scenario {
	out := make([]Scenario, n)
	for i := range out {
		out[i] = Scenario{Index: i, Name: fmt.Sprintf("s%d", i)}
	}
	return out
}

// TestSelectShardPartition: for corpus sizes that are NOT divisible by the
// shard count (the fleet's everyday case: 10 scenarios over 3 workers), the
// shards must still partition the corpus — every scenario in exactly one
// shard, unequal shard sizes allowed, order preserved within each shard.
func TestSelectShardPartition(t *testing.T) {
	for _, size := range []int{1, 7, 10, 40} {
		for _, n := range []int{1, 2, 3, 4, 7, 11} {
			corpus := corpusOf(size)
			seen := map[int]int{}
			for i := 0; i < n; i++ {
				shard, err := SelectShard(corpus, fmt.Sprintf("%d/%d", i, n))
				if err != nil {
					t.Fatalf("size %d shard %d/%d: %v", size, i, n, err)
				}
				prev := -1
				for _, sc := range shard {
					seen[sc.Index]++
					if sc.Index%n != i {
						t.Errorf("size %d shard %d/%d includes index %d", size, i, n, sc.Index)
					}
					if sc.Index <= prev {
						t.Errorf("size %d shard %d/%d out of order: %d after %d", size, i, n, sc.Index, prev)
					}
					prev = sc.Index
				}
				// Shard sizes of a non-divisible corpus differ by at most one.
				want := size / n
				if i < size%n {
					want++
				}
				if len(shard) != want {
					t.Errorf("size %d shard %d/%d has %d scenarios, want %d", size, i, n, len(shard), want)
				}
			}
			if len(seen) != size {
				t.Errorf("size %d over %d shards covered %d scenarios", size, n, len(seen))
			}
			for idx, cnt := range seen {
				if cnt != 1 {
					t.Errorf("size %d over %d shards saw index %d %d times", size, n, idx, cnt)
				}
			}
		}
	}
}

// TestSelectShardTruncatedPrefix: sharding a truncated corpus must select
// exactly the scenarios of the full corpus' shard that fall inside the
// prefix — the index, not the slice position, is the shard key.
func TestSelectShardTruncatedPrefix(t *testing.T) {
	full := corpusOf(40)
	prefix := full[:10]
	for i := 0; i < 3; i++ {
		spec := fmt.Sprintf("%d/3", i)
		fromPrefix, err := SelectShard(prefix, spec)
		if err != nil {
			t.Fatal(err)
		}
		fromFull, err := SelectShard(full, spec)
		if err != nil {
			t.Fatal(err)
		}
		var want []Scenario
		for _, sc := range fromFull {
			if sc.Index < 10 {
				want = append(want, sc)
			}
		}
		if len(fromPrefix) != len(want) {
			t.Fatalf("shard %s of prefix has %d scenarios, want %d", spec, len(fromPrefix), len(want))
		}
		for j := range want {
			if fromPrefix[j].Index != want[j].Index {
				t.Fatalf("shard %s of prefix: scenario %d has index %d, want %d",
					spec, j, fromPrefix[j].Index, want[j].Index)
			}
		}
	}
}

// TestSelectShardEmptyAndOverwide: a shard index at or past the corpus size
// legally selects nothing (the caller decides whether empty is an error),
// and malformed specs are rejected.
func TestSelectShardEmptyAndOverwide(t *testing.T) {
	corpus := corpusOf(2)
	shard, err := SelectShard(corpus, "2/5")
	if err != nil {
		t.Fatalf("2/5 over 2 scenarios: %v", err)
	}
	if len(shard) != 0 {
		t.Fatalf("2/5 over 2 scenarios selected %d, want 0", len(shard))
	}
	for _, spec := range []string{"", "1", "a/b", "-1/2", "2/2", "3/2", "0/0", "0/-1"} {
		if _, err := SelectShard(corpus, spec); err == nil {
			t.Errorf("spec %q accepted, want error", spec)
		}
	}
}
