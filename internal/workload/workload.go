// Package workload generates the parametric Fortran kernels the evaluation
// uses: the paper's abstract target forms (Fig. 2a direct, Fig. 3a
// indirect, and the 3-D inner-node-loop form) at tunable sizes, plus the
// experiment driver that runs original-vs-prepush comparisons across
// network profiles. It is shared by the benchmark harness, cmd/paperfigs
// and the examples so every consumer reproduces exactly the same series.
package workload

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
)

// DirectParams sizes the Fig. 2(a)-shaped kernel.
type DirectParams struct {
	NX     int // elements of As/Ar (1-D); must be divisible by NP
	Outer  int // outer iterations (each ends in an ALLTOALL)
	NP     int
	Weight int // extra arithmetic per element (compute intensity)
	// Salt deterministically perturbs the kernel's constant coefficients so
	// a corpus of scenarios exercises distinct data; 0 keeps the canonical
	// body (the golden fixtures). Negative values are folded to positive.
	Salt int64
}

// absSalt folds a salt to non-negative so coefficient arithmetic never
// renders a negative literal (which the Fortran subset cannot parse in
// multiplication position).
func absSalt(s int64) int64 {
	if s < 0 {
		return -s
	}
	return s
}

// DirectSource renders the kernel.
func DirectSource(p DirectParams) string {
	salt := absSalt(p.Salt)
	rhs := fmt.Sprintf("ix*%d + iy*%d", 3+salt%11, 7+(salt/11)%13)
	for w := 0; w < p.Weight; w++ {
		rhs = fmt.Sprintf("(%s) + mod(ix*%d + iy, 13) - mod(ix + iy*%d, 7)", rhs, w+2, w+3)
	}
	return fmt.Sprintf(`
program direct
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = %d
  integer, parameter :: np = %d
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, iy, ierr, checksum

  call mpi_init(ierr)
  checksum = 0
  do iy = 1, %d
    do ix = 1, nx
      as(ix) = %s
    enddo
    call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
    checksum = checksum + ar(1) + ar(nx)
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program direct
`, p.NX, p.NP, p.Outer, rhs)
}

// Inner3DParams sizes the inner-node-loop (Fig. 4) kernel: a 3-D array
// whose last dimension is traversed by an inner loop, so every tile feeds
// all destinations.
type Inner3DParams struct {
	M      int // contiguous leading dimension
	NY     int // tiled dimension
	SZ     int // last (partitioned) dimension; divisible by NP
	NP     int
	Weight int
	Salt   int64 // deterministic coefficient perturbation; 0 = canonical
}

// Inner3DSource renders the kernel.
func Inner3DSource(p Inner3DParams) string {
	rhs := fmt.Sprintf("me + (im*iy + inode*%d)*(im - iy)", 3+absSalt(p.Salt)%17)
	for w := 0; w < p.Weight; w++ {
		rhs = fmt.Sprintf("(%s) + mod(im*%d + iy + inode, 17)*(im - %d)", rhs, w+2, w+1)
	}
	return fmt.Sprintf(`
program inner3d
  implicit none
  include 'mpif.h'
  integer, parameter :: m = %d
  integer, parameter :: ny = %d
  integer, parameter :: sz = %d
  integer, parameter :: np = %d
  integer as(1:m, 1:ny, 1:sz)
  integer ar(1:m, 1:ny, 1:sz)
  integer im, iy, inode, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do iy = 1, ny
    do inode = 1, sz
      do im = 1, m
        as(im, iy, inode) = %s
      enddo
    enddo
  enddo
  call mpi_alltoall(as, m*ny*sz/np, mpi_integer, ar, m*ny*sz/np, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do inode = 1, sz
    do im = 1, m
      checksum = checksum + ar(im, 1, inode)*im - ar(im, ny/2, inode)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program inner3d
`, p.M, p.NY, p.SZ, p.NP, rhs)
}

// ShiftedInner3DSource renders the inner-node-loop kernel with the tiled
// loop running over a shifted window (0..ny-1) and the write subscript
// offset back (iy + 1): same semantics as Inner3DSource, but the tiled
// loop's bounds no longer coincide with the array dimension, exercising the
// affine-offset paths of the tile-region analysis. Combined with a tile
// size that does not divide ny it drives the §3.6 step-3 leftover exchange.
func ShiftedInner3DSource(p Inner3DParams) string {
	rhs := fmt.Sprintf("me + (im*(iy + 1) + inode*%d)*(im - iy - 1)", 3+absSalt(p.Salt)%17)
	for w := 0; w < p.Weight; w++ {
		rhs = fmt.Sprintf("(%s) + mod(im*%d + iy + inode, 17)*(im - %d)", rhs, w+2, w+1)
	}
	return fmt.Sprintf(`
program inner3dsh
  implicit none
  include 'mpif.h'
  integer, parameter :: m = %d
  integer, parameter :: ny = %d
  integer, parameter :: sz = %d
  integer, parameter :: np = %d
  integer as(1:m, 1:ny, 1:sz)
  integer ar(1:m, 1:ny, 1:sz)
  integer im, iy, inode, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do iy = 0, ny - 1
    do inode = 1, sz
      do im = 1, m
        as(im, iy + 1, inode) = %s
      enddo
    enddo
  enddo
  call mpi_alltoall(as, m*ny*sz/np, mpi_integer, ar, m*ny*sz/np, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do inode = 1, sz
    do im = 1, m
      checksum = checksum + ar(im, 1, inode)*im - ar(im, ny/2, inode)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program inner3dsh
`, p.M, p.NY, p.SZ, p.NP, rhs)
}

// XchgParams sizes the interchange-boundary kernel: a 3-D array whose last
// (partitioned) dimension is traversed by the OUTERMOST loop of a perfect
// nest, so the node loop sits outermost and the §3.5 interchange with the
// middle loop is legal. The plan's interchange knob is a real decision
// here: applying the interchange yields the balanced Fig. 4 exchange with
// M·K-element contiguous blocks, while declining it yields the staggered
// subset-send schedule — and which one wins depends on the machine and the
// tile size, not on the fixed granularity gate alone.
type XchgParams struct {
	M      int // contiguous leading dimension (the interchange block unit)
	NY     int // middle dimension (the loop the interchange swaps outward)
	NZ     int // last (partitioned) dimension; divisible by NP
	NP     int
	Weight int // extra arithmetic per element (compute intensity)
	Salt   int64
}

// XchgSource renders the kernel.
func XchgSource(p XchgParams) string {
	s := absSalt(p.Salt)
	rhs := fmt.Sprintf("me*3 + ix*%d + iy*%d + inode*11 + mod(ix*iy, 17)", 5+s%7, 7+(s/7)%11)
	for w := 0; w < p.Weight; w++ {
		rhs = fmt.Sprintf("(%s) + mod(ix*%d + iy, 13) - mod(iy + inode*%d, 7)", rhs, w+2, w+3)
	}
	return fmt.Sprintf(`
program xchg
  implicit none
  include 'mpif.h'
  integer, parameter :: m = %d
  integer, parameter :: ny = %d
  integer, parameter :: nz = %d
  integer, parameter :: np = %d
  integer as(1:m, 1:ny, 1:nz)
  integer ar(1:m, 1:ny, 1:nz)
  integer ix, iy, inode, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do inode = 1, nz
    do iy = 1, ny
      do ix = 1, m
        as(ix, iy, inode) = %s
      enddo
    enddo
  enddo
  call mpi_alltoall(as, m*ny*nz/np, mpi_integer, ar, m*ny*nz/np, mpi_integer, mpi_comm_world, ierr)
  checksum = ar(1, 1, 1) + ar(m, ny, nz) + ar(m/2, ny/2, nz/2)
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program xchg
`, p.M, p.NY, p.NZ, p.NP, rhs)
}

// MultiParams sizes the multi-site kernel: two or three ALLTOALL sites in
// one program unit, each with its own finalizing loop and exchange arrays.
// Phase 1 is a direct 1-D scatter (fine-grained messages, favoring coarse
// tiles); phase 2 consumes phase 1's received data in an FFT-transpose-like
// inner-node-loop nest (bulky messages, favoring finer tiles); the optional
// phase 3 is a second direct scatter fed by phase 2. The deliberately
// mismatched message sizes make the optimal tile size genuinely differ per
// site, so a per-site plan can beat any uniform one.
type MultiParams struct {
	NX     int // phase-1 direct size; divisible by NP
	M      int // phase-2 contiguous leading dimension
	NY     int // phase-2 tiled dimension
	SZ     int // phase-2 partitioned dimension; divisible by NP
	NX3    int // phase-3 direct size (0 = two sites only); divisible by NP
	NP     int
	Weight int // extra arithmetic per element (compute intensity)
	Salt   int64
}

// Sites returns the number of ALLTOALL sites the rendered kernel contains.
func (p MultiParams) Sites() int {
	if p.NX3 > 0 {
		return 3
	}
	return 2
}

// MultiSource renders the multi-site kernel.
func MultiSource(p MultiParams) string {
	s := absSalt(p.Salt)
	rhs1 := fmt.Sprintf("ix*%d + me*%d", 3+s%11, 7+(s/11)%13)
	rhs2 := fmt.Sprintf("me + im*iy + inode*%d", 3+(s/143)%17)
	for w := 0; w < p.Weight; w++ {
		rhs1 = fmt.Sprintf("(%s) + mod(ix*%d + me, 13) - mod(ix + %d, 7)", rhs1, w+2, w+3)
		rhs2 = fmt.Sprintf("(%s) + mod(im*%d + iy + inode, 17)", rhs2, w+2)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, `
program multi
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = %d
  integer, parameter :: m = %d
  integer, parameter :: ny = %d
  integer, parameter :: sz = %d
  integer, parameter :: np = %d
`, p.NX, p.M, p.NY, p.SZ, p.NP)
	if p.NX3 > 0 {
		fmt.Fprintf(&sb, "  integer, parameter :: nc = %d\n", p.NX3)
	}
	sb.WriteString(`  integer as(1:nx)
  integer ar(1:nx)
  integer bs(1:m, 1:ny, 1:sz)
  integer br(1:m, 1:ny, 1:sz)
`)
	if p.NX3 > 0 {
		sb.WriteString("  integer cs(1:nc)\n  integer cr(1:nc)\n")
	}
	fmt.Fprintf(&sb, `  integer ix, iy, im, inode, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do ix = 1, nx
    as(ix) = %s
  enddo
  call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
  checksum = ar(1) + ar(nx/2) + ar(nx)
  do iy = 1, ny
    do inode = 1, sz
      do im = 1, m
        bs(im, iy, inode) = ar(mod(im*iy + inode, nx) + 1) + %s
      enddo
    enddo
  enddo
  call mpi_alltoall(bs, m*ny*sz/np, mpi_integer, br, m*ny*sz/np, mpi_integer, mpi_comm_world, ierr)
  do inode = 1, sz
    do im = 1, m
      checksum = checksum + br(im, 1, inode)*im - br(im, ny/2, inode)
    enddo
  enddo
`, rhs1, rhs2)
	if p.NX3 > 0 {
		rhs3 := fmt.Sprintf("br(mod(ix - 1, m) + 1, mod(ix - 1, ny) + 1, mod(ix - 1, sz) + 1) + ix*%d", 5+(s/2431)%7)
		fmt.Fprintf(&sb, `  do ix = 1, nc
    cs(ix) = %s
  enddo
  call mpi_alltoall(cs, nc/np, mpi_integer, cr, nc/np, mpi_integer, mpi_comm_world, ierr)
  checksum = checksum + cr(1) + cr(nc)
`, rhs3)
	}
	sb.WriteString(`  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program multi
`)
	return sb.String()
}

// IndirectParams sizes the Fig. 3(a)-shaped kernel (the paper's §4 test
// program pattern: indirect compute-copy through a temporary).
type IndirectParams struct {
	N      int // As is N×N×N; N divisible by NP
	NP     int
	Weight int
	Salt   int64 // deterministic coefficient perturbation; 0 = canonical
}

// IndirectSource renders the kernel.
func IndirectSource(p IndirectParams) string {
	salt := absSalt(p.Salt)
	rhs := fmt.Sprintf("i*%d + iy*%d + me", 1000+salt%97, 10+(salt/97)%7)
	for w := 0; w < p.Weight; w++ {
		rhs = fmt.Sprintf("(%s) + mod(i*%d + iy, 19)*(i - iy)", rhs, w+2)
	}
	n2 := p.N * p.N
	return fmt.Sprintf(`
program indirect
  implicit none
  include 'mpif.h'
  integer, parameter :: n = %d
  integer, parameter :: np = %d
  integer as(1:n, 1:n, 1:n)
  integer ar(1:n, 1:n, 1:n)
  integer at(1:%d)
  integer iy, ix, tx, ty, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do iy = 1, n
    call p(iy, me, at)
    do ix = 1, %d
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1)/n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, %d, mpi_integer, ar, %d, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do iy = 1, n
    do ix = 1, n
      checksum = checksum + ar(ix, iy, 1)*ix + ar(iy, ix, n/2)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program indirect

subroutine p(iy, me, at)
  integer iy, me
  integer at(*)
  integer i
  do i = 1, %d
    at(i) = %s
  enddo
end subroutine p
`, p.N, p.NP, n2, n2, n2*p.N/p.NP, n2*p.N/p.NP, n2, rhs)
}

// Measurement is one (profile, variant) timing.
type Measurement struct {
	Profile  string
	Variant  string // "original" or "prepush"
	Elapsed  netsim.Time
	Compute  netsim.Time // average per-rank compute time
	Blocked  netsim.Time // average per-rank blocked (waiting) time
	Messages int64
	Bytes    int64
}

// Comparison holds the four Figure-1 series for one kernel.
type Comparison struct {
	Kernel       string
	K            int64
	NP           int
	Measurements []Measurement
}

// Normalized returns elapsed / min(elapsed) for each measurement, the
// paper's normalized execution time.
func (c *Comparison) Normalized() map[string]float64 {
	min := netsim.Time(1<<62 - 1)
	for _, m := range c.Measurements {
		if m.Elapsed < min {
			min = m.Elapsed
		}
	}
	out := map[string]float64{}
	for _, m := range c.Measurements {
		out[m.Profile+" "+m.Variant] = float64(m.Elapsed) / float64(min)
	}
	return out
}

// String renders the comparison as the Figure 1 table.
func (c *Comparison) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kernel=%s np=%d K=%d\n", c.Kernel, c.NP, c.K)
	fmt.Fprintf(&sb, "%-12s %-10s %14s %12s %12s %10s\n", "profile", "variant", "time", "compute", "blocked", "normalized")
	norm := c.Normalized()
	for _, m := range c.Measurements {
		fmt.Fprintf(&sb, "%-12s %-10s %14s %12s %12s %10.2f\n",
			m.Profile, m.Variant, m.Elapsed, m.Compute, m.Blocked, norm[m.Profile+" "+m.Variant])
	}
	return sb.String()
}

// RunOptions configures a comparison run.
type RunOptions struct {
	NP       int
	K        int64
	Profiles []netsim.Profile // defaults to MPICH-TCP and MPICH-GM
	Costs    *interp.CostModel
	// CheckEquivalence verifies the transformed run produces identical
	// observable results (printed output + Ar) under every profile.
	CheckEquivalence bool
}

// Compare transforms src and measures original vs. prepush under each
// profile, reproducing the paper's Figure 1 protocol.
func Compare(name, src string, opts RunOptions) (*Comparison, error) {
	if len(opts.Profiles) == 0 {
		opts.Profiles = []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()}
	}
	transformed, rep, err := core.Transform(src, core.Options{K: opts.K})
	if err != nil {
		return nil, fmt.Errorf("transform: %w", err)
	}
	if rep.TransformedCount() != 1 {
		return nil, fmt.Errorf("transform did not fire:\n%s", rep)
	}
	cmp := &Comparison{Kernel: name, K: opts.K, NP: opts.NP}
	for _, prof := range opts.Profiles {
		var results [2]*interp.Result
		for vi, text := range []string{src, transformed} {
			prog, err := interp.Load(text)
			if err != nil {
				return nil, fmt.Errorf("load: %w", err)
			}
			if opts.Costs != nil {
				prog.Costs = *opts.Costs
			}
			res, err := prog.Run(opts.NP, prof)
			if err != nil {
				return nil, fmt.Errorf("run %s/%s: %w", prof, variantName(vi), err)
			}
			results[vi] = res
			var comp, blocked netsim.Time
			for _, rs := range res.Stats.PerRank {
				comp += rs.Compute
				blocked += rs.Blocked
			}
			n := netsim.Time(len(res.Stats.PerRank))
			cmp.Measurements = append(cmp.Measurements, Measurement{
				Profile:  prof.Name,
				Variant:  variantName(vi),
				Elapsed:  res.Elapsed(),
				Compute:  comp / n,
				Blocked:  blocked / n,
				Messages: res.Stats.Messages,
				Bytes:    res.Stats.Bytes,
			})
		}
		if opts.CheckEquivalence {
			if same, why := interp.SameObservable(results[0], results[1], "ar"); !same {
				return nil, fmt.Errorf("equivalence violated under %s: %s", prof, why)
			}
		}
	}
	return cmp, nil
}

func variantName(i int) string {
	if i == 0 {
		return "original"
	}
	return "prepush"
}

// Figure1Params returns the canonical configuration used to regenerate the
// paper's Figure 1: a bandwidth-bound inner-node-loop kernel (512 KiB
// exchanged per outer step, 32 KiB per rank pair — rendezvous-sized on the
// GM stack) with computation of the same order as the exchange, which is
// the regime the paper's applications run in.
func Figure1Params() (Inner3DParams, RunOptions) {
	p := Inner3DParams{M: 128, NY: 64, SZ: 8, NP: 4, Weight: 1}
	costs := interp.DefaultCosts()
	// Each interpreted element models a heavier real-world kernel body
	// (the paper's applications do real floating-point work per element).
	costs.Store = 8 * netsim.Nanosecond
	opts := RunOptions{NP: 4, K: 16, Costs: &costs, CheckEquivalence: true}
	return p, opts
}

// Figure1 runs the canonical Figure 1 reproduction. As the paper's §1
// motivates ("the performance of the transformed code depends on several
// cluster and application related parameters [that] have to be recomputed…
// every time the cluster… changes"), the tile size is tuned per network
// stack: the TCP stack amortizes its higher per-message overhead with
// larger tiles, the offload stack pipelines better with smaller ones.
func Figure1() (*Comparison, error) {
	p, opts := Figure1Params()
	src := Inner3DSource(p)

	kFor := map[string]int64{"mpich-tcp": 32, "mpich-gm": 16}
	merged := &Comparison{Kernel: "inner3d(fig1)", K: 0, NP: opts.NP}
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		o := opts
		o.Profiles = []netsim.Profile{prof}
		o.K = kFor[prof.Name]
		cmp, err := Compare("inner3d(fig1)", src, o)
		if err != nil {
			return nil, err
		}
		merged.Measurements = append(merged.Measurements, cmp.Measurements...)
		if merged.K == 0 || o.K < merged.K {
			merged.K = o.K
		}
	}
	return merged, nil
}
