package workload

import "fmt"

// SelectShard keeps the scenarios whose corpus Index ≡ I (mod N) for a spec
// of the form "I/N". The selection keys on the stable corpus index — not the
// slice position — so a truncated corpus shards exactly like the full one's
// prefix, and shard artifacts merge back into corpus order deterministically.
// These are the `-shard I/N` semantics shared by evalrunner and the fleet
// dispatcher: decomposing a sweep into N shards and sweeping each exactly
// once covers every scenario exactly once, for any N ≥ 1 (shards of a corpus
// whose size is not divisible by N are simply unequal in size, and a shard
// with I ≥ the corpus size comes back empty).
func SelectShard(scenarios []Scenario, spec string) ([]Scenario, error) {
	var i, n int
	if _, err := fmt.Sscanf(spec, "%d/%d", &i, &n); err != nil || n < 1 || i < 0 || i >= n {
		return nil, fmt.Errorf("bad shard %q (want I/N with 0 ≤ I < N)", spec)
	}
	var out []Scenario
	for _, sc := range scenarios {
		if sc.Index%n == i {
			out = append(out, sc)
		}
	}
	return out, nil
}
