package workload

import (
	"fmt"

	"repro/internal/interp"
	"repro/internal/netsim"
)

// Scenario is one fully-specified differential-evaluation case: a Fortran
// kernel in the subset the Compuniformer accepts, plus the run parameters
// the harness needs to execute original and pre-push variants identically.
type Scenario struct {
	// Index is the scenario's position in its full corpus — stable across
	// shard selection, so sharded sweep artifacts merge back into corpus
	// order deterministically.
	Index  int
	Name   string // unique within a corpus, e.g. "direct/nx4096/np4/K256"
	Family string // kernel family: direct, inner3d, indirect, fft, lu, sort
	Source string // the untransformed Fortran source
	NP     int    // rank count the kernel's np parameter matches
	K      int64  // tile size handed to the Compuniformer
	Seed   int64  // salt that perturbed the kernel body (reproducibility)

	// PairBytes is the per-destination payload of the original ALLTOALL;
	// together with the profile's eager threshold it determines Regime.
	PairBytes int64
	// Regime classifies PairBytes against the 16 KiB eager threshold both
	// built-in profiles use: "eager" or "rendezvous".
	Regime string

	// Costs optionally overrides the interpreter cost model (nil = default).
	Costs *interp.CostModel

	// Arrays names the observable arrays the correctness oracle compares for
	// this scenario (besides all printed output); nil means the sweep default
	// {"ar"}. Multi-site kernels name one receive array per exchange.
	Arrays []string

	// Sites is the number of MPI_ALLTOALL sites the kernel contains (0 is
	// read as 1, the single-site default of the historical families).
	Sites int
}

// String identifies the scenario.
func (s Scenario) String() string { return s.Name }

// GenOptions parameterizes corpus generation.
type GenOptions struct {
	// Seed salts every kernel body; the same seed always yields the same
	// corpus, byte for byte. 0 produces the canonical (unsalted) corpus.
	Seed int64
	// Limit truncates the corpus to its first Limit scenarios (after the
	// round-robin interleave, so any prefix stays family-diverse). 0 means
	// the full corpus.
	Limit int
}

// regimeFor classifies a per-pair payload against the eager/rendezvous
// switch of the built-in profiles (both use the same threshold; derived,
// not duplicated, so profile retuning cannot desync the labels).
func regimeFor(pairBytes int64) string {
	if pairBytes <= netsim.MPICHGM().EagerThreshold {
		return "eager"
	}
	return "rendezvous"
}

// mix is a splitmix64 step: a tiny, dependency-free deterministic PRNG used
// only to salt kernel coefficients. Scenario identity never depends on map
// order or scheduling — only on (Seed, scenario index).
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// salt derives a small non-negative coefficient perturbation in [0, m) from
// (seed, lane). seed 0 always maps to 0 so unsalted sources stay identical
// to the historical fixtures.
func salt(seed int64, lane uint64, m int64) int64 {
	if seed == 0 || m <= 0 {
		return 0
	}
	return int64(mix(uint64(seed)*0x100000001b3+lane) % uint64(m))
}

// heavyCosts is the Figure-1 cost model: each interpreted element store
// stands in for a heavier real-world kernel body (the paper's applications
// do real floating-point work per element), which puts the corpus in the
// compute ≈ communication regime the paper evaluates.
func heavyCosts() *interp.CostModel {
	c := interp.DefaultCosts()
	c.Store = 8 * netsim.Nanosecond
	return &c
}

// GenerateScenarios produces the differential-evaluation corpus: the three
// structural shapes the paper's transformation handles (direct, inner node
// loop, indirect/copy-loop) dressed as the application kernels the paper
// names in §2 (FFT transpose, LU update, sample-sort scatter), swept over
// array sizes, rank counts, tile sizes, and eager-vs-rendezvous message
// regimes. The corpus is deterministic in opts.Seed and interleaved
// round-robin across families so any prefix is diverse.
func GenerateScenarios(opts GenOptions) []Scenario {
	var families [][]Scenario
	families = append(families,
		directScenarios(opts.Seed),
		inner3dScenarios(opts.Seed),
		indirectScenarios(opts.Seed),
		fftScenarios(opts.Seed),
		luScenarios(opts.Seed),
		sortScenarios(opts.Seed),
		raggedScenarios(opts.Seed),
		xchgScenarios(opts.Seed),
		multiScenarios(opts.Seed),
	)
	var out []Scenario
	for i := 0; ; i++ {
		added := false
		for _, f := range families {
			if i < len(f) {
				out = append(out, f[i])
				added = true
			}
		}
		if !added {
			break
		}
	}
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[:opts.Limit]
	}
	for i := range out {
		out[i].Index = i
	}
	return out
}

// directScenarios sweeps the Fig. 2(a) 1-D shape across the eager/rendezvous
// crossover and two rank counts.
func directScenarios(seed int64) []Scenario {
	type cfg struct {
		nx, np int
		k      int64
		outer  int
		weight int
	}
	cfgs := []cfg{
		{nx: 1024, np: 4, k: 256, outer: 3, weight: 3},   // eager: 1 KiB per pair
		{nx: 8192, np: 4, k: 2048, outer: 2, weight: 4},  // eager: 8 KiB per pair
		{nx: 32768, np: 4, k: 8192, outer: 2, weight: 4}, // rendezvous: 32 KiB per pair
		{nx: 8192, np: 8, k: 1024, outer: 2, weight: 4},  // eager, wider machine
		{nx: 65536, np: 8, k: 8192, outer: 1, weight: 4}, // rendezvous at np=8
	}
	var out []Scenario
	for i, c := range cfgs {
		src := DirectSource(DirectParams{
			NX: c.nx, Outer: c.outer, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+100, 1<<16),
		})
		pair := int64(c.nx / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("direct/nx%d/np%d/K%d", c.nx, c.np, c.k),
			Family: "direct", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
		})
	}
	return out
}

// inner3dScenarios sweeps the Fig. 4 inner-node-loop shape (the paper's
// measured kernel) over tile shapes and message regimes.
func inner3dScenarios(seed int64) []Scenario {
	type cfg struct {
		m, ny, sz, np int
		k             int64
		weight        int
	}
	cfgs := []cfg{
		{m: 32, ny: 16, sz: 8, np: 4, k: 8, weight: 2},   // eager tiles
		{m: 64, ny: 32, sz: 8, np: 4, k: 8, weight: 1},   // eager: 16 KiB per pair
		{m: 128, ny: 32, sz: 8, np: 4, k: 16, weight: 1}, // rendezvous: 32 KiB per pair (Fig. 1 regime)
		{m: 128, ny: 16, sz: 16, np: 8, k: 4, weight: 1}, // wider machine
		{m: 32, ny: 64, sz: 8, np: 2, k: 32, weight: 2},  // two ranks, rendezvous
		{m: 128, ny: 64, sz: 8, np: 4, k: 16, weight: 1}, // the Figure 1 configuration itself
	}
	var out []Scenario
	for i, c := range cfgs {
		src := Inner3DSource(Inner3DParams{
			M: c.m, NY: c.ny, SZ: c.sz, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+200, 1<<16),
		})
		pair := int64(c.m * c.ny * c.sz / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("inner3d/m%d/ny%d/sz%d/np%d/K%d", c.m, c.ny, c.sz, c.np, c.k),
			Family: "inner3d", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
		})
	}
	return out
}

// indirectScenarios sweeps the Fig. 3(a) copy-loop shape (compute into a
// temporary through a subroutine, copy into As, exchange).
func indirectScenarios(seed int64) []Scenario {
	type cfg struct {
		n, np  int
		k      int64
		weight int
	}
	// The tile size must divide the partition size n/np (the temporary is
	// re-buffered every K iterations of the partitioned loop).
	cfgs := []cfg{
		{n: 16, np: 4, k: 4, weight: 1}, // eager: 4 KiB per pair
		{n: 20, np: 4, k: 5, weight: 1}, // eager: 8 KiB per pair
		{n: 24, np: 4, k: 6, weight: 1}, // eager: ~14 KiB per pair
		{n: 16, np: 8, k: 2, weight: 1}, // wider machine
		{n: 32, np: 4, k: 8, weight: 1}, // rendezvous: 32 KiB per pair
	}
	var out []Scenario
	for i, c := range cfgs {
		src := IndirectSource(IndirectParams{
			N: c.n, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+300, 1<<16),
		})
		pair := int64(c.n * c.n * c.n / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("indirect/n%d/np%d/K%d", c.n, c.np, c.k),
			Family: "indirect", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
		})
	}
	return out
}

// fftScenarios dresses the inner-node-loop shape as the distributed FFT
// transpose (§2): butterfly-flavoured integer arithmetic feeding a global
// transpose.
func fftScenarios(seed int64) []Scenario {
	type cfg struct {
		m, rows, sz, np int
		k               int64
		weight          int
	}
	cfgs := []cfg{
		{m: 64, rows: 16, sz: 8, np: 4, k: 8, weight: 1}, // eager: 8 KiB per pair
		{m: 64, rows: 32, sz: 8, np: 4, k: 8},            // eager: 16 KiB per pair
		{m: 128, rows: 32, sz: 8, np: 4, k: 8},           // rendezvous: 32 KiB per pair
		{m: 64, rows: 16, sz: 16, np: 8, k: 4},           // wider machine
	}
	var out []Scenario
	for i, c := range cfgs {
		src := FFTSource(FFTParams{
			M: c.m, Rows: c.rows, SZ: c.sz, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+400, 1<<16),
		})
		pair := int64(c.m * c.rows * c.sz / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("fft/m%d/rows%d/sz%d/np%d/K%d", c.m, c.rows, c.sz, c.np, c.k),
			Family: "fft", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
		})
	}
	return out
}

// luScenarios dresses the node-loop-outermost 2-D shape as an LU trailing
// update whose block columns are redistributed by an ALLTOALL; the node loop
// being outermost exercises the §3.5 interchange / subset-send paths.
func luScenarios(seed int64) []Scenario {
	type cfg struct {
		n, np  int
		k      int64
		weight int
	}
	cfgs := []cfg{
		{n: 32, np: 4, k: 8, weight: 3},   // eager: 1 KiB per pair, subset-send
		{n: 64, np: 4, k: 16, weight: 3},  // eager: 4 KiB per pair, interchanged
		{n: 128, np: 8, k: 16, weight: 2}, // eager, wider machine, interchanged
	}
	var out []Scenario
	for i, c := range cfgs {
		src := LUSource(LUParams{
			N: c.n, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+500, 1<<16),
		})
		pair := int64(c.n * c.n / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("lu/n%d/np%d/K%d", c.n, c.np, c.k),
			Family: "lu", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
		})
	}
	return out
}

// sortScenarios dresses the direct 1-D shape as the sample-sort bucket
// scatter (§2): hash-flavoured key generation feeding the exchange.
func sortScenarios(seed int64) []Scenario {
	type cfg struct {
		nx, np int
		k      int64
		weight int
	}
	cfgs := []cfg{
		{nx: 4096, np: 4, k: 1024, weight: 4},  // eager: 4 KiB per pair
		{nx: 32768, np: 4, k: 8192, weight: 4}, // rendezvous: 32 KiB per pair
		{nx: 16384, np: 8, k: 2048, weight: 4}, // eager, wider machine
	}
	var out []Scenario
	for i, c := range cfgs {
		src := SortSource(SortParams{
			NX: c.nx, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+600, 1<<16),
		})
		pair := int64(c.nx / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("sort/nx%d/np%d/K%d", c.nx, c.np, c.k),
			Family: "sort", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
		})
	}
	return out
}

// raggedScenarios exercises the §3.6 step-3 leftover exchange end-to-end:
// the tile size does not divide the tiled-loop extent, so every execution
// ends with a partial-tile exchange. The shifted variants also move the
// tiled loop onto a 0-based window (write subscript iy + 1), covering the
// affine-offset paths of the tile-region analysis.
func raggedScenarios(seed int64) []Scenario {
	type cfg struct {
		m, ny, sz, np int
		k             int64
		weight        int
		shifted       bool
	}
	cfgs := []cfg{
		{m: 32, ny: 21, sz: 8, np: 4, k: 8, weight: 2},                 // leftover 5, eager
		{m: 64, ny: 30, sz: 8, np: 4, k: 8, weight: 1},                 // leftover 6, eager
		{m: 128, ny: 33, sz: 8, np: 4, k: 16, weight: 1},               // leftover 1, rendezvous
		{m: 32, ny: 19, sz: 8, np: 4, k: 4, weight: 2, shifted: true},  // leftover 3, shifted window
		{m: 64, ny: 26, sz: 16, np: 8, k: 8, weight: 1, shifted: true}, // leftover 2, wider machine
	}
	var out []Scenario
	for i, c := range cfgs {
		p := Inner3DParams{
			M: c.m, NY: c.ny, SZ: c.sz, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+700, 1<<16),
		}
		src := Inner3DSource(p)
		kind := "plain"
		if c.shifted {
			src = ShiftedInner3DSource(p)
			kind = "shifted"
		}
		pair := int64(c.m * c.ny * c.sz / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("ragged/%s/m%d/ny%d/sz%d/np%d/K%d", kind, c.m, c.ny, c.sz, c.np, c.k),
			Family: "ragged", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
		})
	}
	return out
}

// xchgScenarios sweeps the interchange-boundary family: node loop
// outermost with a legal §3.5 interchange, sized so the fixed granularity
// gate's verdict flips across the tile-size ladder. These are the
// scenarios where the plan's interchange knob is a real decision — the
// auto gate picks the balanced interchange at coarse tiles, but the
// staggered subset-send schedule often beats it there, so the multi-knob
// tuner can find plans a K-only search cannot express.
func xchgScenarios(seed int64) []Scenario {
	type cfg struct {
		m, ny, nz, np int
		k             int64
		weight        int
	}
	cfgs := []cfg{
		{m: 128, ny: 16, nz: 32, np: 4, k: 2, weight: 0}, // gate flips at K=4
		{m: 128, ny: 16, nz: 32, np: 4, k: 2, weight: 2}, // heavier compute, same boundary
		{m: 256, ny: 16, nz: 32, np: 4, k: 2, weight: 1}, // gate already on at the fixed K
		{m: 32, ny: 16, nz: 64, np: 4, k: 8, weight: 1},  // gate flips only at the coarsest tile
		{m: 64, ny: 8, nz: 64, np: 8, k: 4, weight: 0},   // wider machine, eager messages
	}
	var out []Scenario
	for i, c := range cfgs {
		src := XchgSource(XchgParams{
			M: c.m, NY: c.ny, NZ: c.nz, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+800, 1<<16),
		})
		pair := int64(c.m * c.ny * c.nz / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("xchg/m%d/ny%d/nz%d/np%d/w%d/K%d", c.m, c.ny, c.nz, c.np, c.weight, c.k),
			Family: "xchg", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
		})
	}
	return out
}

// multiScenarios exercises site-keyed plan divergence end-to-end: each
// kernel contains two or three ALLTOALL sites in one unit — a fine-grained
// direct scatter feeding a bulky FFT-transpose-like phase (and optionally a
// second scatter) — with message sizes mismatched so the optimal tile size
// genuinely differs per site. The uniform fixed K is legal at every site;
// the per-site tuner should find divergent plans that beat any uniform one.
func multiScenarios(seed int64) []Scenario {
	type cfg struct {
		nx, m, ny, sz, nx3, np int
		k                      int64
		weight                 int
	}
	cfgs := []cfg{
		{nx: 1024, m: 128, ny: 16, sz: 8, np: 4, k: 8},            // fine scatter + rendezvous transpose
		{nx: 4096, m: 64, ny: 32, sz: 8, np: 4, k: 16, weight: 1}, // both eager, still mismatched
		{nx: 2048, m: 32, ny: 16, sz: 16, np: 8, k: 8},            // wider machine
		{nx: 1024, m: 64, ny: 16, sz: 8, nx3: 2048, np: 4, k: 8},  // three sites
	}
	var out []Scenario
	for i, c := range cfgs {
		p := MultiParams{
			NX: c.nx, M: c.m, NY: c.ny, SZ: c.sz, NX3: c.nx3, NP: c.np, Weight: c.weight,
			Salt: salt(seed, uint64(i)+900, 1<<16),
		}
		src := MultiSource(p)
		arrays := []string{"ar", "br"}
		if p.Sites() == 3 {
			arrays = append(arrays, "cr")
		}
		// The bulky transpose dominates the exchanged volume; its per-pair
		// payload classifies the scenario's regime.
		pair := int64(c.m * c.ny * c.sz / c.np * 4)
		out = append(out, Scenario{
			Name:   fmt.Sprintf("multi/s%d/nx%d/m%d/ny%d/sz%d/np%d/K%d", p.Sites(), c.nx, c.m, c.ny, c.sz, c.np, c.k),
			Family: "multi", Source: src, NP: c.np, K: c.k, Seed: seed,
			PairBytes: pair, Regime: regimeFor(pair), Costs: heavyCosts(),
			Arrays: arrays, Sites: p.Sites(),
		})
	}
	return out
}

// FFTParams sizes the FFT-transpose kernel: local butterflies along M for
// every (row, plane), then the global transpose ALLTOALL.
type FFTParams struct {
	M      int // butterfly dimension (contiguous)
	Rows   int // tiled dimension
	SZ     int // partitioned dimension; divisible by NP
	NP     int
	Weight int // extra butterfly stages per element
	Salt   int64
}

// FFTSource renders the FFT-transpose kernel.
func FFTSource(p FFTParams) string {
	s := absSalt(p.Salt)
	c1 := 97 + s%31
	c2 := 89 + (s/31)%23
	extra := ""
	for w := 0; w < p.Weight; w++ {
		extra += fmt.Sprintf("\n        t = t + mod(t*%d + w, %d) - mod(u + %d, 11)", w+2, 19+w, w+3)
	}
	return fmt.Sprintf(`
program ffttrans
  implicit none
  include 'mpif.h'
  integer, parameter :: m = %d
  integer, parameter :: rows = %d
  integer, parameter :: sz = %d
  integer, parameter :: np = %d
  integer as(1:m, 1:rows, 1:sz)
  integer ar(1:m, 1:rows, 1:sz)
  integer im, ir, is, ierr, me, w, u, t, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do ir = 1, rows
    do is = 1, sz
      do im = 1, m
        w = mod(im*ir + is, %d)
        u = mod(im + ir*is + me, %d)
        t = w*u - mod(im + is, 7)*(w + u)%s
        as(im, ir, is) = t + mod(t, 13)
      enddo
    enddo
  enddo
  call mpi_alltoall(as, m*rows*sz/np, mpi_integer, ar, m*rows*sz/np, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do is = 1, sz
    do im = 1, m
      checksum = checksum + ar(im, 1, is)*im - ar(im, rows/2, is)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program ffttrans
`, p.M, p.Rows, p.SZ, p.NP, c1, c2, extra)
}

// LUParams sizes the LU-update kernel: an N×N block whose columns (the
// partitioned dimension) are filled by an elimination-flavoured update with
// the node loop outermost — the §3.5 interchange configuration.
type LUParams struct {
	N      int // matrix order; divisible by NP
	NP     int
	Weight int // extra update terms per element
	Salt   int64
}

// LUSource renders the LU-update kernel.
func LUSource(p LUParams) string {
	s := absSalt(p.Salt)
	c1 := 17 + s%13
	c2 := 23 + (s/13)%11
	rhs := fmt.Sprintf("(i*j - piv*%d) + mod(i*%d + j, piv)", c2, c2)
	for w := 0; w < p.Weight; w++ {
		rhs = fmt.Sprintf("(%s) + mod(i*%d + j*%d, piv + %d)", rhs, w+2, w+3, w+1)
	}
	return fmt.Sprintf(`
program luupdate
  implicit none
  include 'mpif.h'
  integer, parameter :: n = %d
  integer, parameter :: np = %d
  integer as(1:n, 1:n)
  integer ar(1:n, 1:n)
  integer i, j, ierr, me, piv, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do j = 1, n
    do i = 1, n
      piv = mod(i + j + me, %d) + 1
      as(i, j) = %s
    enddo
  enddo
  call mpi_alltoall(as, n*n/np, mpi_integer, ar, n*n/np, mpi_integer, mpi_comm_world, ierr)
  checksum = ar(1, 1) + ar(n, n) + ar(n/2, n/2)
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program luupdate
`, p.N, p.NP, c1, rhs)
}

// SortParams sizes the sample-sort scatter kernel: a 1-D bucket array filled
// with hash-flavoured keys, exchanged all-to-all.
type SortParams struct {
	NX     int // keys; divisible by NP
	NP     int
	Weight int // extra hashing rounds per key
	Salt   int64
}

// SortSource renders the sort-scatter kernel.
func SortSource(p SortParams) string {
	s := absSalt(p.Salt)
	c1 := 7919 + s%997
	c2 := 104729 + (s/997)%9973
	rhs := fmt.Sprintf("mod(ix*%d + me*%d, 1000000) - mod(ix, 37)", c1, c2)
	for w := 0; w < p.Weight; w++ {
		rhs = fmt.Sprintf("(%s) + mod(ix*%d + me, %d) - mod(ix + %d, 41)", rhs, w+5, 9973+w, w+7)
	}
	return fmt.Sprintf(`
program sortscatter
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = %d
  integer, parameter :: np = %d
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do ix = 1, nx
    as(ix) = %s
  enddo
  call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
  checksum = ar(1) + ar(nx/2) + ar(nx)
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program sortscatter
`, p.NX, p.NP, rhs)
}
