package workload_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/ftn"
	"repro/internal/workload"
)

// TestEveryCorpusScenarioTransforms: each generated kernel must parse and
// the Compuniformer must fire on every site the scenario declares — a
// scenario whose transformation silently no-ops (or drops one of its
// exchanges) would make the differential sweep vacuous. (Execution itself
// is covered by internal/harness.)
func TestEveryCorpusScenarioTransforms(t *testing.T) {
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{}) {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			want := sc.Sites
			if want == 0 {
				want = 1
			}
			out, rep, err := core.Transform(sc.Source, core.Options{K: sc.K})
			if err != nil {
				t.Fatalf("transform: %v", err)
			}
			if rep.TransformedCount() != want {
				t.Fatalf("transformed %d sites, want %d: %s", rep.TransformedCount(), want, rep.FirstRejection())
			}
			if strings.Contains(out, "call mpi_alltoall") {
				t.Error("original alltoall survived the transformation")
			}
			// The rewritten source must stay inside the parseable subset.
			if _, err := ftn.Parse(out); err != nil {
				t.Fatalf("transformed source does not re-parse: %v", err)
			}
		})
	}
}

// TestScenarioRegimeClassification pins the eager/rendezvous split against
// the profiles' 16 KiB threshold.
func TestScenarioRegimeClassification(t *testing.T) {
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{}) {
		want := "eager"
		if sc.PairBytes > 16*1024 {
			want = "rendezvous"
		}
		if sc.Regime != want {
			t.Errorf("%s: regime %s, want %s (pair %d bytes)", sc.Name, sc.Regime, want, sc.PairBytes)
		}
	}
}

// TestSaltZeroIsCanonical: the Salt parameter must leave the canonical
// kernels byte-identical at 0 — the golden fixtures depend on it.
func TestSaltZeroIsCanonical(t *testing.T) {
	a := workload.DirectSource(workload.DirectParams{NX: 64, Outer: 4, NP: 8})
	b := workload.DirectSource(workload.DirectParams{NX: 64, Outer: 4, NP: 8, Salt: 0})
	if a != b {
		t.Error("DirectSource changed at Salt=0")
	}
	if !strings.Contains(a, "ix*3 + iy*7") {
		t.Error("canonical direct body drifted")
	}
	c := workload.Inner3DSource(workload.Inner3DParams{M: 4, NY: 8, SZ: 4, NP: 2})
	if !strings.Contains(c, "inode*3)*(im - iy)") {
		t.Error("canonical inner3d body drifted")
	}
	d := workload.IndirectSource(workload.IndirectParams{N: 8, NP: 4})
	if !strings.Contains(d, "i*1000 + iy*10 + me") {
		t.Error("canonical indirect body drifted")
	}
}
