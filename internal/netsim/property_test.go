package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestQuickTransferInvariants drives random traffic through the cluster
// model and checks the invariants every delivery must satisfy:
//   - causality: delivered no earlier than post + latency + wire time,
//   - monotonicity per (src,dst) pair: FIFO delivery order,
//   - conservation: every message is delivered exactly once.
func TestQuickTransferInvariants(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	check := func() bool {
		np := 2 + r.Intn(6)
		prof := MPICHGM()
		if r.Intn(2) == 0 {
			prof = MPICHTCP()
		}
		cl := NewCluster(np, prof)
		type rec struct {
			src, dst  int
			bytes     int64
			posted    Time
			delivered Time
		}
		n := 1 + r.Intn(40)
		recs := make([]*rec, n)
		delivered := 0
		for i := 0; i < n; i++ {
			src := r.Intn(np)
			dst := r.Intn(np)
			for dst == src {
				dst = r.Intn(np)
			}
			rc := &rec{src: src, dst: dst, bytes: int64(1 + r.Intn(100000)), posted: Time(r.Intn(1000)) * Microsecond}
			recs[i] = rc
			cl.Transfer(src, dst, rc.bytes, rc.posted, func(at Time) {
				rc.delivered = at
				delivered++
			})
		}
		if _, err := cl.Eng.Run(); err != nil {
			t.Logf("run: %v", err)
			return false
		}
		if delivered != n {
			t.Logf("conservation violated: %d of %d delivered", delivered, n)
			return false
		}
		for _, rc := range recs {
			minTime := rc.posted + prof.Latency + Time(float64(rc.bytes)*prof.GapNsPerByte)
			if rc.delivered < minTime {
				t.Logf("causality violated: delivered %v < min %v", rc.delivered, minTime)
				return false
			}
		}
		// FIFO per ordered pair: posting order equals delivery order when
		// posted at increasing times.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				a, b := recs[i], recs[j]
				if a.src == b.src && a.dst == b.dst && a.posted < b.posted && a.delivered > b.delivered {
					t.Logf("FIFO violated for pair (%d,%d)", a.src, a.dst)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickEngineClockMonotone: under random compute/yield interleavings,
// every process's clock is non-decreasing and the engine terminates.
func TestQuickEngineClockMonotone(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	check := func() bool {
		e := NewEngine()
		nProcs := 1 + r.Intn(5)
		violated := false
		for i := 0; i < nProcs; i++ {
			steps := make([]Time, 1+r.Intn(8))
			for k := range steps {
				steps[k] = Time(r.Intn(500)) * Microsecond
			}
			e.Spawn(func(p *Proc) {
				last := p.Now()
				for _, d := range steps {
					p.Advance(d)
					p.Yield()
					if p.Now() < last {
						violated = true
					}
					last = p.Now()
				}
			})
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		return !violated
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestProfilesTable sanity-checks the built-in profile registry.
func TestProfilesTable(t *testing.T) {
	ps := Profiles()
	tcp, ok1 := ps["mpich-tcp"]
	gm, ok2 := ps["mpich-gm"]
	if !ok1 || !ok2 {
		t.Fatalf("profiles = %v", ps)
	}
	if tcp.Offload {
		t.Error("mpich-tcp must not be offload-capable")
	}
	if !gm.Offload {
		t.Error("mpich-gm must be offload-capable")
	}
	if gm.CopyNsPerByte != 0 {
		t.Error("mpich-gm should be zero-copy")
	}
	if tcp.GapNsPerByte <= gm.GapNsPerByte {
		t.Error("the TCP-era wire should be slower than Myrinet")
	}
	if tcp.String() != "mpich-tcp" {
		t.Errorf("profile String = %q", tcp.String())
	}
}

// TestTimeFormatting covers the engineering-unit renderer.
func TestTimeFormatting(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{500, "500ns"},
		{Microsecond + Microsecond/2, "1.500µs"},
		{3 * Millisecond, "3.000ms"},
		{2 * Second, "2.000s"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
	if s := (2 * Second).Seconds(); s != 2.0 {
		t.Errorf("Seconds = %f", s)
	}
}
