package netsim

import (
	"testing"
)

func TestEngineEventsInOrder(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func(Time) { got = append(got, 3) })
	e.At(10, func(Time) { got = append(got, 1) })
	e.At(20, func(Time) { got = append(got, 2) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("order = %v", got)
	}
}

func TestEngineTieBreakBySeq(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(10, func(Time) { got = append(got, 1) })
	e.At(10, func(Time) { got = append(got, 2) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1] != 2 {
		t.Errorf("tie order = %v", got)
	}
}

func TestProcAdvanceAndCompletion(t *testing.T) {
	e := NewEngine()
	c := e.NewCompletion()
	var wokeAt Time
	e.Spawn(func(p *Proc) {
		p.Advance(5 * Microsecond)
		p.Wait(c, "test")
		wokeAt = p.Now()
	})
	e.At(20*Microsecond, func(now Time) { c.Complete(now) })
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if wokeAt != 20*Microsecond {
		t.Errorf("woke at %v, want 20µs", wokeAt)
	}
	if end != 20*Microsecond {
		t.Errorf("end = %v", end)
	}
}

func TestProcWaitOnAlreadyDone(t *testing.T) {
	e := NewEngine()
	c := e.NewCompletion()
	e.At(1*Microsecond, func(now Time) { c.Complete(now) })
	var at Time
	e.Spawn(func(p *Proc) {
		p.Advance(50 * Microsecond)
		p.Yield() // let the event at 1µs process
		p.Wait(c, "done already")
		at = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Completion fired in the past: the proc does not travel back in time.
	if at != 50*Microsecond {
		t.Errorf("now = %v, want 50µs", at)
	}
}

func TestEngineDeadlockDetected(t *testing.T) {
	e := NewEngine()
	c := e.NewCompletion()
	e.Spawn(func(p *Proc) {
		p.Wait(c, "never completed")
	})
	if _, err := e.Run(); err == nil {
		t.Fatal("want deadlock error")
	}
}

func TestEngineRunsLowestTimeFirst(t *testing.T) {
	e := NewEngine()
	var order []int
	mk := func(id int, d Time) {
		e.Spawn(func(p *Proc) {
			p.Advance(d)
			p.Yield()
			order = append(order, id)
		})
	}
	mk(0, 30*Microsecond)
	mk(1, 10*Microsecond)
	mk(2, 20*Microsecond)
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("scheduling order = %v, want [1 2 0]", order)
	}
}

func TestEngineDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		var log []int
		for i := 0; i < 4; i++ {
			id := i
			e.Spawn(func(p *Proc) {
				for k := 0; k < 3; k++ {
					p.Advance(Time((id + 1) * 7 * int(Microsecond)))
					p.Yield()
					log = append(log, id*10+k)
				}
			})
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a := run()
	b := run()
	if len(a) != len(b) {
		t.Fatal("different lengths")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, a, b)
		}
	}
}

func TestClusterTransferSingleFlow(t *testing.T) {
	cl := NewCluster(2, MPICHGM())
	var delivered Time
	bytes := int64(100000)
	cl.Transfer(0, 1, bytes, 0, func(at Time) { delivered = at })
	// Need a dummy proc so Run has something to finish... events alone
	// suffice: Run returns when heap is empty and no procs exist.
	if _, err := cl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	want := Time(float64(bytes)*cl.Prof.GapNsPerByte) + cl.Prof.Latency
	if delivered != want {
		t.Errorf("delivered at %v, want %v (L + bytes·G)", delivered, want)
	}
}

func TestClusterIncastSerializes(t *testing.T) {
	// Two senders to one receiver: the second message is delayed by the
	// first's drain time at the receiving NIC.
	cl := NewCluster(3, MPICHGM())
	bytes := int64(1000000)
	var d1, d2 Time
	cl.Transfer(0, 2, bytes, 0, func(at Time) { d1 = at })
	cl.Transfer(1, 2, bytes, 0, func(at Time) { d2 = at })
	if _, err := cl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	wire := Time(float64(bytes) * cl.Prof.GapNsPerByte)
	if d1 != wire+cl.Prof.Latency {
		t.Errorf("first delivery %v, want %v", d1, wire+cl.Prof.Latency)
	}
	if d2 != d1+wire {
		t.Errorf("second delivery %v, want %v (serialized)", d2, d1+wire)
	}
}

func TestClusterSenderSerializes(t *testing.T) {
	// One sender, two messages to different receivers: injection is serial.
	cl := NewCluster(3, MPICHGM())
	bytes := int64(500000)
	var d1, d2 Time
	cl.Transfer(0, 1, bytes, 0, func(at Time) { d1 = at })
	cl.Transfer(0, 2, bytes, 0, func(at Time) { d2 = at })
	if _, err := cl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	wire := Time(float64(bytes) * cl.Prof.GapNsPerByte)
	if d2-d1 != wire {
		t.Errorf("second start not serialized: d1=%v d2=%v want gap %v", d1, d2, wire)
	}
}

func TestClusterLoopback(t *testing.T) {
	cl := NewCluster(2, MPICHTCP())
	var at Time = -1
	cl.Transfer(1, 1, 12345, 7*Microsecond, func(t Time) { at = t })
	if _, err := cl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 7*Microsecond {
		t.Errorf("loopback at %v, want 7µs", at)
	}
}

func TestStatsCounted(t *testing.T) {
	cl := NewCluster(2, MPICHGM())
	cl.Transfer(0, 1, 1000, 0, func(Time) {})
	cl.Transfer(0, 1, 2000, 0, func(Time) {})
	if _, err := cl.Eng.Run(); err != nil {
		t.Fatal(err)
	}
	if cl.Stat.Messages != 2 || cl.Stat.Bytes != 3000 {
		t.Errorf("stats = %+v", cl.Stat)
	}
}
