// Package netsim is the discrete-event cluster simulator the evaluation
// runs on: virtual time, cooperatively scheduled rank processes, and a
// LogGP-flavoured network cost model with two profiles — an MPICH-over-TCP
// style stack whose large-message progress requires the host CPU inside MPI
// calls, and an MPICH-GM style stack whose NIC progresses communication
// autonomously (RDMA offload). The difference between the two is exactly
// the mechanism the paper's pre-push transformation exploits.
package netsim

import (
	"container/heap"
	"fmt"
	"sort"
)

// Time is virtual time in nanoseconds.
type Time int64

// Common durations.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000
	Millisecond Time = 1000 * 1000
	Second      Time = 1000 * 1000 * 1000
)

// String renders the time in engineering units.
func (t Time) String() string {
	switch {
	case t >= Second:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	case t >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(t)/float64(Millisecond))
	case t >= Microsecond:
		return fmt.Sprintf("%.3fµs", float64(t)/float64(Microsecond))
	}
	return fmt.Sprintf("%dns", int64(t))
}

// Seconds converts to floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// event is one scheduled callback.
type event struct {
	at  Time
	seq int64
	fn  func(now Time)
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// procState is a process's scheduling state.
type procState int

const (
	procReady procState = iota
	procRunning
	procBlocked
	procDone
)

// Proc is one simulated rank: a goroutine whose virtual clock advances via
// Advance and which interacts with the network only through engine events.
type Proc struct {
	ID  int
	eng *Engine

	now    Time
	state  procState
	resume chan struct{}
	yield  chan struct{}

	// blockReason describes what the proc is waiting for (deadlock
	// diagnostics).
	blockReason string

	// Stats.
	ComputeTime Time // time spent in Advance
	BlockedTime Time // time gained while blocked (waiting)
}

// Now returns the process's local virtual time.
func (p *Proc) Now() Time { return p.now }

// Advance models local computation: the clock moves forward without
// yielding control (no other process can be affected by pure computation).
func (p *Proc) Advance(d Time) {
	if d < 0 {
		panic("netsim: negative Advance")
	}
	p.now += d
	p.ComputeTime += d
}

// Engine is the discrete-event scheduler. Exactly one process runs at a
// time; all cross-process effects are timestamped events processed in
// global time order, which makes runs deterministic.
type Engine struct {
	evq   eventHeap
	seq   int64
	procs []*Proc
	// Trace, when non-nil, receives one line per scheduling decision.
	Trace func(string)
}

// NewEngine returns an empty engine.
func NewEngine() *Engine { return &Engine{} }

// Spawn creates a process running fn. Must be called before Run.
func (e *Engine) Spawn(fn func(p *Proc)) *Proc {
	p := &Proc{
		ID:     len(e.procs),
		eng:    e,
		state:  procReady,
		resume: make(chan struct{}),
		yield:  make(chan struct{}),
	}
	e.procs = append(e.procs, p)
	go func() {
		<-p.resume
		fn(p)
		p.state = procDone
		p.yield <- struct{}{}
	}()
	return p
}

// At schedules fn at time t (which must not be in the engine's past when
// it pops; the heap keeps order regardless).
func (e *Engine) At(t Time, fn func(now Time)) {
	e.seq++
	heap.Push(&e.evq, &event{at: t, seq: e.seq, fn: fn})
}

// Run drives the simulation until every process is done. It returns the
// final virtual time (max over processes) or an error on deadlock.
func (e *Engine) Run() (Time, error) {
	heap.Init(&e.evq)
	for {
		// Earliest ready process.
		var next *Proc
		for _, p := range e.procs {
			if p.state == procReady && (next == nil || p.now < next.now ||
				(p.now == next.now && p.ID < next.ID)) {
				next = p
			}
		}
		haveEvent := len(e.evq) > 0
		switch {
		case next != nil && (!haveEvent || next.now <= e.evq[0].at):
			if e.Trace != nil {
				e.Trace(fmt.Sprintf("run p%d @%s", next.ID, next.now))
			}
			next.state = procRunning
			next.resume <- struct{}{}
			<-next.yield
		case haveEvent:
			ev := heap.Pop(&e.evq).(*event)
			if e.Trace != nil {
				e.Trace(fmt.Sprintf("event @%s", ev.at))
			}
			ev.fn(ev.at)
		default:
			// No events, no ready procs.
			done := true
			var blocked []string
			for _, p := range e.procs {
				if p.state != procDone {
					done = false
					blocked = append(blocked, fmt.Sprintf("p%d @%s: %s", p.ID, p.now, p.blockReason))
				}
			}
			if done {
				var end Time
				for _, p := range e.procs {
					if p.now > end {
						end = p.now
					}
				}
				return end, nil
			}
			sort.Strings(blocked)
			return 0, fmt.Errorf("netsim: deadlock; blocked processes: %v", blocked)
		}
	}
}

// Completion is a one-shot future: events complete it, processes wait on it.
type Completion struct {
	eng     *Engine
	done    bool
	at      Time
	waiters []*Proc
}

// NewCompletion returns an incomplete completion.
func (e *Engine) NewCompletion() *Completion { return &Completion{eng: e} }

// Done reports whether the completion fired. Note: processes may observe
// this only at MPI-layer points; the value changes only inside events.
func (c *Completion) Done() bool { return c.done }

// When returns the completion time; valid only when Done.
func (c *Completion) When() Time { return c.at }

// Complete fires the completion at time t, waking all waiters.
func (c *Completion) Complete(t Time) {
	if c.done {
		panic("netsim: double Complete")
	}
	c.done = true
	c.at = t
	for _, p := range c.waiters {
		if t > p.now {
			p.BlockedTime += t - p.now
			p.now = t
		}
		p.state = procReady
		p.blockReason = ""
	}
	c.waiters = nil
}

// Wait blocks p until the completion fires, advancing p's clock to the
// completion time if later. reason is used in deadlock diagnostics.
func (p *Proc) Wait(c *Completion, reason string) {
	if c.done {
		if c.at > p.now {
			p.BlockedTime += c.at - p.now
			p.now = c.at
		}
		return
	}
	c.waiters = append(c.waiters, p)
	p.blockReason = reason
	p.block()
}

// block yields control to the engine until the proc is made ready again.
func (p *Proc) block() {
	p.state = procBlocked
	p.yield <- struct{}{}
	<-p.resume
}

// Yield gives the engine a chance to process events up to p's current time
// without blocking p on anything; p re-enters the ready queue at its own
// time. Used sparingly (e.g. to make trace output deterministic in tests).
func (p *Proc) Yield() {
	p.state = procReady
	p.yield <- struct{}{}
	<-p.resume
}
