package netsim

import "fmt"

// Profile is the cost model of one network stack (LogGP-flavoured).
type Profile struct {
	Name string
	// Host CPU costs.
	OSend         Time    // per-message host overhead to post a send
	ORecv         Time    // per-message host overhead to complete a receive
	CopyNsPerByte float64 // host per-byte cost (eager pack, TCP stack copies)
	// Wire costs.
	Latency      Time    // L: first byte propagation
	GapNsPerByte float64 // G: serialization per byte (1/bandwidth)
	// Protocol.
	EagerThreshold int64 // bytes; above this, rendezvous
	CtrlBytes      int64 // control message size (RTS/CTS)
	// Offload: the NIC progresses rendezvous transfers autonomously.
	// When false, bulk data moves only while the owning host is inside an
	// MPI call — the mechanism that defeats overlap on non-offload stacks.
	Offload bool
}

// String names the profile.
func (p Profile) String() string { return p.Name }

// MPICHTCP models an MPICH-over-TCP style stack of the paper's era:
// kernel-managed eager sends up to the socket-buffer size, host-driven
// progress beyond it (a write() past the socket buffer blocks until the
// kernel drains it, so bulk data effectively moves only while the host
// sits in MPI), per-byte stack copy costs, no offload.
func MPICHTCP() Profile {
	return Profile{
		Name:           "mpich-tcp",
		OSend:          15 * Microsecond,
		ORecv:          15 * Microsecond,
		CopyNsPerByte:  4.0, // TCP stack copy + checksum
		Latency:        60 * Microsecond,
		GapNsPerByte:   10.0,      // ~100 MB/s effective
		EagerThreshold: 16 * 1024, // 2005-era socket buffer
		CtrlBytes:      64,
		Offload:        false,
	}
}

// MPICHGM models an MPICH-GM style stack on Myrinet: zero-copy RDMA with a
// network co-processor that progresses communication without the host.
func MPICHGM() Profile {
	return Profile{
		Name:           "mpich-gm",
		OSend:          1 * Microsecond,
		ORecv:          1 * Microsecond,
		CopyNsPerByte:  0, // zero copy
		Latency:        9 * Microsecond,
		GapNsPerByte:   4.0, // ~245 MB/s
		EagerThreshold: 16 * 1024,
		CtrlBytes:      64,
		Offload:        true,
	}
}

// WithEagerThreshold returns a copy of the profile with the eager/rendezvous
// protocol switch moved to the given byte count. Evaluation code uses it to
// force a message-size regime without resizing the workload.
func (p Profile) WithEagerThreshold(bytes int64) Profile {
	p.EagerThreshold = bytes
	return p
}

// WithOffload returns a copy of the profile with NIC autonomy forced on or
// off — the ablation knob that isolates how much of the pre-push gain needs
// hardware progress.
func (p Profile) WithOffload(offload bool) Profile {
	p.Offload = offload
	return p
}

// Profiles returns the built-in profiles by name.
func Profiles() map[string]Profile {
	return map[string]Profile{
		"mpich-tcp": MPICHTCP(),
		"mpich-gm":  MPICHGM(),
	}
}

// nicState tracks per-rank NIC occupancy for serialization/contention.
type nicState struct {
	sendFree Time // when the send side can inject the next message
	recvFree Time // when the receive side finishes draining the current one
}

// Stats aggregates network activity.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Cluster is NP ranks connected by a full-crossbar network with per-NIC
// serialization (which is what makes the all-to-all incast visible).
type Cluster struct {
	Eng  *Engine
	Prof Profile
	NP   int
	nics []nicState
	Stat Stats
}

// NewCluster builds a cluster of np ranks over a fresh engine.
func NewCluster(np int, prof Profile) *Cluster {
	return &Cluster{
		Eng:  NewEngine(),
		Prof: prof,
		NP:   np,
		nics: make([]nicState, np),
	}
}

// Transfer models moving bytes from src to dst, starting no earlier than t.
// onDelivered fires (as an event) when the last byte has been drained by
// the destination NIC. Contention model: the sender NIC injects messages
// serially (gap G per byte); the head propagates after latency L; the
// receiver NIC drains arrivals serially, so concurrent senders to one
// destination queue up (the alltoall hotspot).
func (c *Cluster) Transfer(src, dst int, bytes int64, t Time, onDelivered func(Time)) {
	if src == dst {
		// Loopback: treated as a memcpy-speed transfer without NIC usage.
		c.Eng.At(t, func(now Time) { onDelivered(now) })
		return
	}
	if src < 0 || src >= c.NP || dst < 0 || dst >= c.NP {
		panic(fmt.Sprintf("netsim: rank out of range: %d -> %d (np=%d)", src, dst, c.NP))
	}
	c.Eng.At(t, func(now Time) {
		c.Stat.Messages++
		c.Stat.Bytes += bytes
		wire := Time(float64(bytes) * c.Prof.GapNsPerByte)
		start := now
		if c.nics[src].sendFree > start {
			start = c.nics[src].sendFree
		}
		inject := start + wire
		c.nics[src].sendFree = inject
		arrHead := start + c.Prof.Latency
		c.Eng.At(arrHead, func(now2 Time) {
			at := now2
			if c.nics[dst].recvFree > at {
				at = c.nics[dst].recvFree
			}
			delivered := at + wire
			c.nics[dst].recvFree = delivered
			c.Eng.At(delivered, onDelivered)
		})
	})
}

// Ctrl models a small control message (RTS/CTS) with the same path but
// fixed CtrlBytes size.
func (c *Cluster) Ctrl(src, dst int, t Time, onDelivered func(Time)) {
	c.Transfer(src, dst, c.Prof.CtrlBytes, t, onDelivered)
}

// CopyCost returns the host CPU time to copy/pack bytes under this profile.
func (c *Cluster) CopyCost(bytes int64) Time {
	return Time(float64(bytes) * c.Prof.CopyNsPerByte)
}
