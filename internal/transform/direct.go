package transform

import (
	"fmt"

	"repro/internal/access"
	"repro/internal/analysis"
	"repro/internal/dep"
	"repro/internal/ftn"
)

// applyDirect transforms a direct-pattern site (§3.3) according to the node
// loop placement (§3.5).
func (rw *rewriter) applyDirect() error {
	op := rw.op
	pos := op.L.Pos()
	if len(op.SafeRefs) != len(op.WriteRefs) {
		return failf(pos, "%d of %d writes to %s are unsafe to pre-push", len(op.WriteRefs)-len(op.SafeRefs), len(op.WriteRefs), op.Call.As)
	}
	if len(op.ArDims) != len(op.AsDims) {
		return failf(pos, "%s and %s have different ranks", op.Call.As, op.Call.Ar)
	}
	chain := op.Nest.Loops
	if chain[0].Step != 1 {
		return failf(pos, "the tiled loop must have step 1")
	}
	// Prototype restriction: subscript coefficients in {0,1} so that tile
	// regions are dense and disjoint (no strided gaps).
	for _, w := range op.WriteRefs {
		for _, sub := range w.Subs {
			for _, v := range sub.Vars() {
				if c := sub.CoefOf(v); c != 0 && c != 1 {
					return failf(pos, "subscript coefficient %d of %s in a write to %s is unsupported", c, v, op.Call.As)
				}
			}
		}
	}
	// ℓ must finalize the whole array (§3.1): the union of everything it
	// writes must cover As.
	if err := rw.checkWholeArrayCoverage(); err != nil {
		return err
	}

	switch op.NodeCase {
	case analysis.NodeLoopInner:
		return rw.directInner()
	case analysis.NodeLoopOutermost:
		if op.InterchangeOK {
			return failf(pos, "interchange is pending; apply Interchange before the transformation")
		}
		return rw.directOutermost()
	}
	return failf(pos, "node loop not found")
}

// checkWholeArrayCoverage verifies that the union of the write regions over
// the full iteration space covers every element of As.
func (rw *rewriter) checkWholeArrayCoverage() error {
	op := rw.op
	union, err := rw.unionRegion(nil, "")
	if err != nil {
		return err
	}
	info, ok := access.Blocks(union, op.AsDims, op.Consts)
	if !ok || info.FullPrefix != len(op.AsDims) {
		return failf(op.L.Pos(), "loop nest does not finalize every element of %s (covered region %s)", op.Call.As, union)
	}
	return nil
}

// unionRegion computes the union of the write regions of all safe refs.
// When tiledVar is nonempty, that variable is restricted to
// [tileLo, tileLo+K-1]; otherwise full loop ranges are used.
func (rw *rewriter) unionRegion(tileLo *dep.Affine, tiledVar string) (access.Region, error) {
	op := rw.op
	var union access.Region
	first := true
	for _, w := range op.WriteRefs {
		var b access.Bounds
		var ok bool
		if tiledVar == "" {
			b, ok = access.TileBounds(w.Loops, "\x00none", dep.NewAffine(0), 1)
		} else {
			b, ok = access.TileBounds(w.Loops, tiledVar, *tileLo, rw.k)
		}
		if !ok {
			return access.Region{}, failf(op.L.Pos(), "cannot bound the loop nest iteration space")
		}
		reg, ok := access.WriteRegion(w, b)
		if !ok {
			return access.Region{}, failf(op.L.Pos(), "cannot compute the write region of %s", op.Call.As)
		}
		if first {
			union = reg
			first = false
			continue
		}
		u, ok := access.Union(union, reg, op.Consts)
		if !ok {
			return access.Region{}, failf(op.L.Pos(), "cannot union write regions of %s", op.Call.As)
		}
		union = u
	}
	return union, nil
}

// directOutermost handles the case where the node loop is ℓ's outermost
// (tiled) loop and interchange was not possible: each tile's block belongs
// to a single partition, so all ranks send to one owner per tile (§3.5's
// subset-send fallback, the shape of Fig. 2(b)).
func (rw *rewriter) directOutermost() error {
	op := rw.op
	pos := op.L.Pos()
	chain := op.Nest.Loops
	tiled := chain[0]
	rank := len(op.AsDims)

	lo0, ok1 := tiled.Lo.Bind(op.Consts).Eval(nil)
	hi0, ok2 := tiled.Hi.Bind(op.Consts).Eval(nil)
	if !ok1 || !ok2 {
		return failf(pos, "tiled loop bounds must be numeric in the subset-send case")
	}
	n := hi0 - lo0 + 1

	// The last subscript must be tiledVar + c with numeric c, identical
	// across writes, and the loop must traverse the last dimension exactly.
	var cOff int64
	for i, w := range op.WriteRefs {
		lastSub := w.Subs[rank-1]
		if lastSub.CoefOf(tiled.Var) != 1 || len(lastSub.Vars()) != 1 {
			return failf(pos, "last subscript of %s must be %s + const in the subset-send case", op.Call.As, tiled.Var)
		}
		c := lastSub.Bind(op.Consts)
		delete(c.Coef, tiled.Var)
		if !c.IsConst() {
			return failf(pos, "last subscript offset of %s is not numeric", op.Call.As)
		}
		if i == 0 {
			cOff = c.Const
		} else if c.Const != cOff {
			return failf(pos, "writes to %s disagree on the last subscript offset", op.Call.As)
		}
	}
	if n != rw.lastHi-rw.lastLo+1 || lo0+cOff != rw.lastLo {
		return failf(pos, "tiled loop [%d:%d] does not traverse the last dimension [%d:%d] of %s", lo0, hi0, rw.lastLo, rw.lastHi, op.Call.As)
	}
	if rw.psz%rw.k != 0 {
		return failf(pos, "tile size K=%d must divide the partition size %d so tiles do not straddle partitions", rw.k, rw.psz)
	}

	// Per-tile region: prefix dims must be fully covered.
	tileLo := dep.Var(rw.vLo)
	region, err := rw.unionRegion(&tileLo, tiled.Var)
	if err != nil {
		return err
	}
	info, ok := access.Blocks(region, op.AsDims, op.Consts)
	if !ok || info.FullPrefix < rank-1 {
		return failf(pos, "a tile does not cover the leading dimensions of %s fully (region %s)", op.Call.As, region)
	}

	// Staggered schedule (the Fig. 4 idea applied across tiles): when the
	// tiled loop's iterations are provably order-independent, each rank
	// traverses the partitions in ring order starting at me+1 — so at any
	// moment the np ranks are computing (and sending) tiles owned by np
	// distinct owners instead of all hammering the same owner, and every
	// rank ends on its own partition's self copy, leaving no communication
	// tail. The paper's literal per-tile wait keeps the original owner
	// order (its wait structure assumes it).
	if !rw.opts.PerTileWait && !rw.opts.NoStagger && ReorderSafe(op) {
		return rw.directOutermostStaggered(lo0, cOff, n)
	}

	// Generated code: the builders shared with the staggered schedule.
	g := rw.newSubsetCodegen()

	recvLoop := doLoop(rw.vJ, ftn.Int(1), ftn.Sub(ftn.Id(rw.vNp), ftn.Int(1)), append(
		[]ftn.Stmt{assign(rw.vFrom, rw.ringPeer(false))},
		rw.irecv(g.bufStart(op.Call.Ar, g.recvStart()), g.count(), ftn.Id(rw.vFrom))...,
	))

	sendOrRecv := &ftn.IfStmt{
		Cond: ftn.Bin("/=", ftn.Id(rw.vTo), ftn.Id(rw.vMe)),
		Then: rw.isend(g.bufStart(op.Call.As, ftn.Id(rw.vLo)), g.count(), ftn.Id(rw.vTo)),
		Else: []ftn.Stmt{recvLoop, comment("local copy of this rank's own partition block"), g.selfCopy()},
	}

	tiles := n / rw.k
	guardBody := []ftn.Stmt{
		comment("pre-push tile exchange (inserted by compuniformer)"),
		// Tile start as a last-dimension index.
		assign(rw.vLo, ftn.Add(ftn.Sub(ftn.Id(tiled.Var), ftn.Int(rw.k-1)), ftn.Int(cOff))),
	}
	if rw.opts.PerTileWait {
		guardBody = append(guardBody, rw.waitAllBlock())
	}
	guardBody = append(guardBody,
		incr(rw.vTile),
		assign(rw.vTo, ftn.Div(ftn.Sub(ftn.Id(rw.vLo), ftn.Int(rw.lastLo)), ftn.Int(rw.psz))),
		assign(rw.vOff, ftn.Sub(ftn.Sub(ftn.Id(rw.vLo), ftn.Int(rw.lastLo)), ftn.Mul(ftn.Id(rw.vTo), ftn.Int(rw.psz)))),
		sendOrRecv,
	)
	guard := &ftn.IfStmt{
		Cond: ftn.Bin("==", ftn.Mod(ftn.Add(ftn.Sub(ftn.Id(tiled.Var), ftn.Int(lo0)), ftn.Int(1)), ftn.Int(rw.k)), ftn.Int(0)),
		Then: guardBody,
	}
	op.L.Body = append(op.L.Body, guard)

	// Declarations and splice.
	rw.declareInts(rw.vMe, rw.vNp, rw.vIerr, rw.vNreq, rw.vTile, rw.vLo, rw.vTo, rw.vFrom, rw.vJ, rw.vOff, g.vI)
	if len(g.prefixVars) > 0 {
		rw.declareInts(g.prefixVars...)
	}
	if rw.opts.PerTileWait {
		rw.declareReqArray(rw.np)
	} else {
		// Deferred waits: requests accumulate over a whole execution of ℓ.
		rw.declareReqArray(tiles * rw.np)
	}
	post := []ftn.Stmt{
		comment("drain the last tile's communication (inserted by compuniformer)"),
		rw.waitAllBlock(),
	}
	rw.spliceAroundL(rw.preLoopSetup(), post)

	rw.res.TileCount = n / rw.k
	rw.res.Leftover = n % rw.k // always 0 under the divisibility checks
	rw.res.MessagesTile = rw.np - 1
	rw.res.TileMsgElems = rw.numericElems(op.AsDims[:rank-1]) * rw.k
	rw.res.Notes = append(rw.res.Notes, "subset-send schedule: one owner per tile (congestion caveat, §3.5)")
	return nil
}

// directOutermostStaggered emits the reordered subset-send schedule: the
// tiled loop (which traverses the last dimension, one partition owner per
// tile) is restructured so each rank visits the partitions in ring order
// starting at me+1 and finishing with its own. All receives are pre-posted
// before the loop (legal: Ar is unused inside ℓ), tagged by absolute tile
// index, so rendezvous transfers start the moment the sender's data is
// ready. Callers have already validated bounds, divisibility, and tile
// order independence.
func (rw *rewriter) directOutermostStaggered(lo0, cOff, n int64) error {
	op := rw.op
	chain := op.Nest.Loops
	tiled := chain[0]
	tpp := rw.psz / rw.k // tiles per partition

	g := rw.newSubsetCodegen()
	vPo := rw.fresh.Fresh("cc_po") // position in the ring traversal
	vTt := rw.fresh.Fresh("cc_tt") // tile within the partition
	vIt := rw.fresh.Fresh("cc_it") // first iteration of the tile

	// Restructure ℓ: the original loop body moves into an inner DO covering
	// one tile; ℓ itself becomes the ring-position loop.
	innerDo := &ftn.DoStmt{
		Var:  tiled.Var,
		Lo:   ftn.Id(vIt),
		Hi:   ftn.Add(ftn.Id(vIt), ftn.Int(rw.k-1)),
		Body: op.L.Body,
	}
	sendOrCopy := &ftn.IfStmt{
		Cond: ftn.Bin("/=", ftn.Id(rw.vTo), ftn.Id(rw.vMe)),
		Then: rw.isend(g.bufStart(op.Call.As, ftn.Id(rw.vLo)), g.count(), ftn.Id(rw.vTo)),
		Else: []ftn.Stmt{comment("local copy of this rank's own partition block"), g.selfCopy()},
	}
	tileLoop := doLoop(vTt, ftn.Int(0), ftn.Int(tpp-1), []ftn.Stmt{
		comment("staggered subset-send traversal (inserted by compuniformer)"),
		// Absolute tile index (also the message tag) and its bounds.
		assign(rw.vTile, ftn.Add(ftn.Mul(ftn.Id(rw.vTo), ftn.Int(tpp)), ftn.Id(vTt))),
		assign(vIt, ftn.Add(ftn.Int(lo0), ftn.Mul(ftn.Id(rw.vTile), ftn.Int(rw.k)))),
		assign(rw.vLo, ftn.Add(ftn.Id(vIt), ftn.Int(cOff))),
		innerDo,
		assign(rw.vOff, ftn.Mul(ftn.Id(vTt), ftn.Int(rw.k))),
		sendOrCopy,
	})
	op.L.Var = vPo
	op.L.Lo = ftn.Int(1)
	op.L.Hi = ftn.Id(rw.vNp)
	op.L.Step = nil
	op.L.Body = []ftn.Stmt{
		// Partition owner handled at this position; position np is me.
		assign(rw.vTo, ftn.Mod(ftn.Add(ftn.Id(rw.vMe), ftn.Id(vPo)), ftn.Id(rw.vNp))),
		tileLoop,
	}

	// Pre-posted receives: every tile of my partition, from every peer, into
	// the sender's block of Ar, tagged with the absolute tile index.
	preRecvs := doLoop(vTt, ftn.Int(0), ftn.Int(tpp-1), []ftn.Stmt{
		assign(rw.vTile, ftn.Add(ftn.Mul(ftn.Id(rw.vMe), ftn.Int(tpp)), ftn.Id(vTt))),
		assign(rw.vOff, ftn.Mul(ftn.Id(vTt), ftn.Int(rw.k))),
		doLoop(rw.vJ, ftn.Int(1), ftn.Sub(ftn.Id(rw.vNp), ftn.Int(1)), append(
			[]ftn.Stmt{assign(rw.vFrom, rw.ringPeer(false))},
			rw.irecv(g.bufStart(op.Call.Ar, g.recvStart()), g.count(), ftn.Id(rw.vFrom))...,
		)),
	})
	pre := append(rw.preLoopSetup(),
		comment("pre-post all receives for this rank's partition (staggered schedule)"),
		preRecvs,
	)
	post := []ftn.Stmt{
		comment("drain the last tile's communication (inserted by compuniformer)"),
		rw.waitAllBlock(),
	}

	rw.declareInts(rw.vMe, rw.vNp, rw.vIerr, rw.vNreq, rw.vTile, rw.vLo, rw.vTo, rw.vFrom, rw.vJ, rw.vOff, g.vI, vPo, vTt, vIt)
	if len(g.prefixVars) > 0 {
		rw.declareInts(g.prefixVars...)
	}
	rw.declareReqArray(2 * (rw.np - 1) * tpp)
	rw.spliceAroundL(pre, post)

	rw.res.TileCount = n / rw.k
	rw.res.Leftover = n % rw.k
	rw.res.MessagesTile = rw.np - 1
	rw.res.Staggered = true
	rw.res.TileMsgElems = rw.numericElems(op.AsDims[:len(op.AsDims)-1]) * rw.k
	rw.res.Notes = append(rw.res.Notes, "staggered subset-send schedule: ring partition order per rank, receives pre-posted (incast fix)")
	return nil
}

// subsetCodegen bundles the generated-code builders shared by the
// owner-ordered and staggered subset-send schedules, so a fix to the
// buffer-start indexing or the self-copy nest cannot diverge between them.
type subsetCodegen struct {
	rw         *rewriter
	prefixVars []string // self-copy loop variables over the prefix dims
	vI         string   // self-copy loop variable over the tile
}

// newSubsetCodegen allocates the fresh names the builders use.
func (rw *rewriter) newSubsetCodegen() *subsetCodegen {
	g := &subsetCodegen{rw: rw}
	for d := 0; d < len(rw.op.AsDims)-1; d++ {
		g.prefixVars = append(g.prefixVars, rw.fresh.Fresh(fmt.Sprintf("cc_c%d", d+1)))
	}
	g.vI = rw.fresh.Fresh("cc_i")
	return g
}

// count builds the per-message element count: prefix volume × K.
func (g *subsetCodegen) count() ftn.Expr {
	dims := g.rw.op.AsDims
	return ftn.Mul(productExpr(dims[:len(dims)-1]), ftn.Int(g.rw.k))
}

// bufStart builds the message start element: prefix dims at their array
// lower bounds, the last dimension at lastIdx.
func (g *subsetCodegen) bufStart(array string, lastIdx ftn.Expr) *ftn.Ref {
	dims := g.rw.op.AsDims
	r := ftn.Call(array)
	for d := 0; d < len(dims)-1; d++ {
		r.Args = append(r.Args, affineToExpr(dims[d].Lo))
	}
	r.Args = append(r.Args, lastIdx)
	return r
}

// recvStart builds the last-dimension index a peer's tile lands at:
// lastLo + from*psz + off (the sender's block of Ar).
func (g *subsetCodegen) recvStart() ftn.Expr {
	rw := g.rw
	return ftn.Add(rw.partitionStart(ftn.Id(rw.vFrom)), ftn.Id(rw.vOff))
}

// selfCopy builds the element-wise copy of this rank's own partition block:
// ar(..., lastLo + me*psz + off + i) = as(..., cc_lo + i).
func (g *subsetCodegen) selfCopy() ftn.Stmt {
	rw := g.rw
	op := rw.op
	rank := len(op.AsDims)
	elemRef := func(array string, lastIdx ftn.Expr) *ftn.Ref {
		r := ftn.Call(array)
		for d := 0; d < rank-1; d++ {
			r.Args = append(r.Args, ftn.Id(g.prefixVars[d]))
		}
		r.Args = append(r.Args, lastIdx)
		return r
	}
	selfDst := ftn.Add(ftn.Add(rw.partitionStart(ftn.Id(rw.vMe)), ftn.Id(rw.vOff)), ftn.Id(g.vI))
	selfSrc := ftn.Add(ftn.Id(rw.vLo), ftn.Id(g.vI))
	var copy ftn.Stmt = doLoop(g.vI, ftn.Int(0), ftn.Int(rw.k-1), []ftn.Stmt{
		assignRef(elemRef(op.Call.Ar, selfDst), elemRef(op.Call.As, selfSrc)),
	})
	for d := rank - 2; d >= 0; d-- {
		copy = doLoop(g.prefixVars[d], affineToExpr(op.AsDims[d].Lo), affineToExpr(op.AsDims[d].Hi), []ftn.Stmt{copy})
	}
	return copy
}

// numericElems returns the product of the extents of dims when all are
// numeric, else 0.
func (rw *rewriter) numericElems(dims []access.Triplet) int64 {
	elems := int64(1)
	for _, d := range dims {
		ext, ok := d.Extent().Bind(rw.op.Consts).Eval(nil)
		if !ok {
			return 0
		}
		elems *= ext
	}
	return elems
}

// directInner handles the preferred case: the node loop is inside the tiled
// loop, so every tile writes data for all destinations and the Fig. 4
// staggered all-peers exchange runs at the end of each tile.
func (rw *rewriter) directInner() error {
	op := rw.op
	pos := op.L.Pos()
	chain := op.Nest.Loops
	tiled := chain[0]
	rank := len(op.AsDims)

	tileLo := dep.Var(rw.vLo)
	region, err := rw.unionRegion(&tileLo, tiled.Var)
	if err != nil {
		return err
	}
	info, ok := access.Blocks(region, op.AsDims, op.Consts)
	if !ok {
		return failf(pos, "cannot analyze the tile block structure of %s", op.Call.As)
	}
	if info.BlockDim >= rank-1 {
		return failf(pos, "tile region %s leaves no inner node-loop structure", region)
	}
	// The last dimension must be fully covered per tile.
	full, okc := regionCoversDim(region, op.AsDims, rank-1, op.Consts)
	if !okc || !full {
		return failf(pos, "a tile does not traverse the whole last dimension of %s", op.Call.As)
	}
	// Exactly one dimension may depend on the tile window, it must be the
	// block dimension, and the tile's extent there must be exactly K.
	tiledDims := 0
	for d := range region.Dims {
		if region.Dims[d].Lo.CoefOf(rw.vLo) != 0 || region.Dims[d].Hi.CoefOf(rw.vLo) != 0 {
			tiledDims++
			if d != info.BlockDim {
				return failf(pos, "tile window leaks into dimension %d of %s", d+1, op.Call.As)
			}
		}
	}
	if tiledDims != 1 {
		return failf(pos, "tile window must affect exactly one dimension of %s, affects %d", op.Call.As, tiledDims)
	}
	if ext := region.Dims[info.BlockDim].Extent().Bind(op.Consts); !ext.IsConst() || ext.Const != rw.k {
		return failf(pos, "tile region extent %s at the block dimension is not the tile size %d", region.Dims[info.BlockDim].Extent(), rw.k)
	}

	// Block geometry: contiguous runs of prefixProduct × tileLen elements;
	// loop dims iterate the remaining dimensions, with the last dimension
	// restricted to one partition per peer.
	blockDim := info.BlockDim
	// Count the point-to-point messages per tile for reporting and for the
	// request array size: blocksPerDest = Π loop-dim extents with the last
	// dim contributing psz.
	blocksPerDest := rw.psz
	for _, d := range info.LoopDims {
		if d == rank-1 {
			continue
		}
		ext, okx := region.Dims[d].Extent().Bind(op.Consts).Eval(nil)
		if !okx {
			return failf(pos, "tile block count along dimension %d is not numeric", d+1)
		}
		blocksPerDest *= ext
	}
	// Deferred waits need the request array sized for every tile of one
	// execution; that requires a numeric trip count. Fall back to the
	// paper's per-tile wait otherwise.
	perTile := rw.opts.PerTileWait
	reqSize := 2 * (rw.np - 1) * blocksPerDest
	if !perTile {
		if trip, okt := tripOf(tiled, op.Consts); okt {
			tiles := trip/rw.k + 1 // +1 for the leftover batch
			reqSize *= tiles
		} else {
			perTile = true
		}
	}

	// Loop variables: one per array dimension (used by block loops and the
	// self copy).
	dimVars := make([]string, rank)
	for d := range dimVars {
		dimVars[d] = rw.fresh.Fresh(fmt.Sprintf("cc_b%d", d+1))
	}

	// commFor builds the whole per-tile exchange with the given tile length
	// expression (K for whole tiles, cc_rem for the leftover).
	commFor := func(tileLen ftn.Expr) []ftn.Stmt {
		blockCount := ftn.Mul(productExpr(op.AsDims[:blockDim]), ftn.CloneExpr(tileLen))

		// startRef builds the block start element for array at the current
		// block-loop indices; peer selects the partition on the last dim.
		startRef := func(array string) *ftn.Ref {
			r := ftn.Call(array)
			for d := 0; d < rank; d++ {
				switch {
				case d < blockDim:
					r.Args = append(r.Args, affineToExpr(op.AsDims[d].Lo))
				case d == blockDim:
					r.Args = append(r.Args, affineToExpr(region.Dims[d].Lo))
				case contains(info.LoopDims, d) || d == rank-1:
					r.Args = append(r.Args, ftn.Id(dimVars[d]))
				default:
					r.Args = append(r.Args, affineToExpr(region.Dims[d].Lo))
				}
			}
			return r
		}

		// blockLoops wraps body in loops over the loop dims; the last dim
		// runs over the peer's partition.
		blockLoops := func(peerVar string, body []ftn.Stmt) ftn.Stmt {
			var s ftn.Stmt
			wrapped := body
			// Innermost to outermost: last dim first.
			pStart := rw.partitionStart(ftn.Id(peerVar))
			s = doLoop(dimVars[rank-1], pStart, ftn.Add(ftn.CloneExpr(pStart), ftn.Int(rw.psz-1)), wrapped)
			for i := len(info.LoopDims) - 1; i >= 0; i-- {
				d := info.LoopDims[i]
				if d == rank-1 {
					continue
				}
				s = doLoop(dimVars[d], affineToExpr(region.Dims[d].Lo), affineToExpr(region.Dims[d].Hi), []ftn.Stmt{s})
			}
			return s
		}

		sendBlock := blockLoops(rw.vTo, rw.isend(startRef(op.Call.As), ftn.CloneExpr(blockCount), ftn.Id(rw.vTo)))
		recvBlock := blockLoops(rw.vFrom, rw.irecv(startRef(op.Call.Ar), ftn.CloneExpr(blockCount), ftn.Id(rw.vFrom)))

		peerLoop := doLoop(rw.vJ, ftn.Int(1), ftn.Sub(ftn.Id(rw.vNp), ftn.Int(1)), []ftn.Stmt{
			assign(rw.vTo, rw.ringPeer(true)),
			sendBlock,
			assign(rw.vFrom, rw.ringPeer(false)),
			recvBlock,
		})

		// Self copy: element loops over the region with the last dim
		// restricted to this rank's partition and the block dim to the tile.
		elem := func(array string) *ftn.Ref {
			r := ftn.Call(array)
			for d := 0; d < rank; d++ {
				r.Args = append(r.Args, ftn.Id(dimVars[d]))
			}
			return r
		}
		var selfCopy ftn.Stmt = assignRef(elem(op.Call.Ar), elem(op.Call.As))
		for d := rank - 1; d >= 0; d-- {
			var lo, hi ftn.Expr
			switch {
			case d == rank-1:
				p := rw.partitionStart(ftn.Id(rw.vMe))
				lo, hi = p, ftn.Add(ftn.CloneExpr(p), ftn.Int(rw.psz-1))
			case d == blockDim:
				lo = affineToExpr(region.Dims[d].Lo)
				hi = ftn.Add(ftn.Add(ftn.CloneExpr(lo), ftn.CloneExpr(tileLen)), ftn.Int(-1))
			default:
				lo, hi = affineToExpr(region.Dims[d].Lo), affineToExpr(region.Dims[d].Hi)
			}
			selfCopy = doLoop(dimVars[d], lo, hi, []ftn.Stmt{selfCopy})
		}

		out := []ftn.Stmt{}
		if perTile {
			out = append(out, rw.waitAllBlock())
		}
		out = append(out,
			incr(rw.vTile),
			peerLoop,
			comment("local copy of this rank's own partition block"),
			selfCopy,
		)
		return out
	}

	// Whole-tile guard at the end of ℓ's body.
	guard := &ftn.IfStmt{
		Cond: ftn.Bin("==",
			ftn.Mod(ftn.Add(ftn.Sub(ftn.Id(tiled.Var), affineToExpr(tiled.Lo)), ftn.Int(1)), ftn.Int(rw.k)),
			ftn.Int(0)),
		Then: append([]ftn.Stmt{
			comment("pre-push tile exchange (inserted by compuniformer)"),
			assign(rw.vLo, ftn.Sub(ftn.Id(tiled.Var), ftn.Int(rw.k-1))),
		}, commFor(ftn.Int(rw.k))...),
	}
	op.L.Body = append(op.L.Body, guard)

	// Leftover iterations (§3.6 step 3), computed at run time.
	vRem := rw.fresh.Fresh("cc_rem")
	tripExpr := ftn.Add(ftn.Sub(affineToExpr(tiled.Hi), affineToExpr(tiled.Lo)), ftn.Int(1))
	leftover := []ftn.Stmt{
		comment("exchange leftover iterations not covered by whole tiles"),
		assign(vRem, ftn.Mod(tripExpr, ftn.Int(rw.k))),
		&ftn.IfStmt{
			Cond: ftn.Bin(">", ftn.Id(vRem), ftn.Int(0)),
			Then: append([]ftn.Stmt{
				assign(rw.vLo, ftn.Add(ftn.Sub(affineToExpr(tiled.Hi), ftn.Id(vRem)), ftn.Int(1))),
			}, commFor(ftn.Id(vRem))...),
		},
	}
	post := append(leftover,
		comment("drain the last tile's communication (inserted by compuniformer)"),
		rw.waitAllBlock(),
	)

	rw.declareInts(rw.vMe, rw.vNp, rw.vIerr, rw.vNreq, rw.vTile, rw.vLo, rw.vTo, rw.vFrom, rw.vJ, vRem)
	rw.declareInts(dimVars...)
	rw.declareReqArray(reqSize)
	rw.spliceAroundL(rw.preLoopSetup(), post)

	rw.res.MessagesTile = 2 * (rw.np - 1) * blocksPerDest
	if trip, ok := tripOf(tiled, op.Consts); ok {
		rw.res.TileCount = trip / rw.k
		rw.res.Leftover = trip % rw.k
	}
	rw.res.TileMsgElems = rw.numericElems(op.AsDims[:blockDim]) * rw.k
	rw.res.Notes = append(rw.res.Notes, "all-peers staggered exchange per tile (Fig. 4)")
	return nil
}

// regionCoversDim reports whether region covers array dimension d fully.
func regionCoversDim(region access.Region, arr []access.Triplet, d int, consts map[string]int64) (bool, bool) {
	loD := region.Dims[d].Lo.Bind(consts).Sub(arr[d].Lo.Bind(consts))
	hiD := arr[d].Hi.Bind(consts).Sub(region.Dims[d].Hi.Bind(consts))
	if !loD.IsConst() || !hiD.IsConst() {
		return false, false
	}
	return loD.Const <= 0 && hiD.Const <= 0, true
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

func tripOf(lp dep.Loop, consts map[string]int64) (int64, bool) {
	lo, ok1 := lp.Lo.Bind(consts).Eval(nil)
	hi, ok2 := lp.Hi.Bind(consts).Eval(nil)
	if !ok1 || !ok2 {
		return 0, false
	}
	return hi - lo + 1, true
}
