package transform_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// TestQuickRandomKernelsEquivalent is the repository's strongest
// correctness property: for random kernel shapes, sizes, tile sizes and
// rank counts, the transformed program produces byte-identical observable
// results to the original under both network stacks. Any soundness bug in
// the dependence analysis, region analysis, code generation, runtime or
// interpreter shows up here as an output diff.
func TestQuickRandomKernelsEquivalent(t *testing.T) {
	r := rand.New(rand.NewSource(481))
	check := func() bool {
		np := []int{2, 4}[r.Intn(2)]
		var src string
		var k int64
		switch r.Intn(3) {
		case 0: // direct 1-D (Fig. 2a); K must divide psz = NX/np
			nx := np * 4 * (1 + r.Intn(4)) // psz = 4..16
			psz := nx / np
			divisors := divisorsOf(int64(psz))
			k = divisors[r.Intn(len(divisors))]
			src = workload.DirectSource(workload.DirectParams{
				NX: nx, Outer: 1 + r.Intn(3), NP: np, Weight: r.Intn(2),
			})
		case 1: // inner-node-loop 3-D; any K (leftover path exercised)
			k = int64(1 + r.Intn(10))
			src = workload.Inner3DSource(workload.Inner3DParams{
				M:  1 + r.Intn(6),
				NY: 4 + r.Intn(12),
				SZ: np * (1 + r.Intn(2)),
				NP: np, Weight: r.Intn(2),
			})
		default: // indirect (Fig. 3a); K must divide psz = N/np
			n := np * (1 + r.Intn(2)) // N = np or 2np
			psz := n / np
			divisors := divisorsOf(int64(psz))
			k = divisors[r.Intn(len(divisors))]
			src = workload.IndirectSource(workload.IndirectParams{
				N: n, NP: np, Weight: r.Intn(2),
			})
		}

		out, rep, err := core.Transform(src, core.Options{K: k})
		if err != nil {
			t.Logf("transform error (np=%d K=%d): %v\n%s", np, k, err, src)
			return false
		}
		if rep.TransformedCount() != 1 {
			t.Logf("did not transform (np=%d K=%d):\n%s\n%s", np, k, rep, src)
			return false
		}
		for _, prof := range []netsim.Profile{netsim.MPICHGM(), netsim.MPICHTCP()} {
			po, err := interp.Load(src)
			if err != nil {
				t.Logf("load orig: %v", err)
				return false
			}
			ro, err := po.Run(np, prof)
			if err != nil {
				t.Logf("run orig: %v", err)
				return false
			}
			pt, err := interp.Load(out)
			if err != nil {
				t.Logf("load pre: %v\n%s", err, out)
				return false
			}
			rt, err := pt.Run(np, prof)
			if err != nil {
				t.Logf("run pre (np=%d K=%d, %s): %v\n%s", np, k, prof, err, out)
				return false
			}
			if same, why := interp.SameObservable(ro, rt, "ar"); !same {
				t.Logf("MISMATCH np=%d K=%d %s: %s\n--- source:\n%s\n--- transformed:\n%s",
					np, k, prof, why, src, out)
				return false
			}
		}
		return true
	}
	n := 60
	if testing.Short() {
		n = 12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: n}); err != nil {
		t.Fatal(err)
	}
}

func divisorsOf(n int64) []int64 {
	var out []int64
	for d := int64(1); d <= n; d++ {
		if n%d == 0 {
			out = append(out, d)
		}
	}
	return out
}
