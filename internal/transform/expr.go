package transform

import (
	"sort"

	"repro/internal/access"
	"repro/internal/dep"
	"repro/internal/ftn"
)

// affineToExpr renders an affine form as a Fortran expression. Loop
// variables and symbolic names become identifiers.
func affineToExpr(a dep.Affine) ftn.Expr {
	var e ftn.Expr
	add := func(term ftn.Expr) {
		if e == nil {
			e = term
		} else {
			e = ftn.Add(e, term)
		}
	}
	for _, v := range a.Vars() {
		c := a.CoefOf(v)
		switch {
		case c == 1:
			add(ftn.Id(v))
		case c == -1:
			if e == nil {
				e = &ftn.Unary{Op: "-", X: ftn.Id(v)}
			} else {
				e = ftn.Sub(e, ftn.Id(v))
			}
		default:
			add(ftn.Mul(ftn.Int(c), ftn.Id(v)))
		}
	}
	syms := make([]string, 0, len(a.Syms))
	for s := range a.Syms {
		syms = append(syms, s)
	}
	sort.Strings(syms)
	for _, s := range syms {
		c := a.Syms[s]
		switch {
		case c == 1:
			add(ftn.Id(s))
		case c == -1:
			if e == nil {
				e = &ftn.Unary{Op: "-", X: ftn.Id(s)}
			} else {
				e = ftn.Sub(e, ftn.Id(s))
			}
		default:
			add(ftn.Mul(ftn.Int(c), ftn.Id(s)))
		}
	}
	if a.Const != 0 || e == nil {
		if e == nil {
			return ftn.Int(a.Const)
		}
		if a.Const > 0 {
			e = ftn.Add(e, ftn.Int(a.Const))
		} else {
			e = ftn.Sub(e, ftn.Int(-a.Const))
		}
	}
	return e
}

// extentExpr builds "(hi - lo + 1)" for a triplet, folding literals.
func extentExpr(t access.Triplet) ftn.Expr {
	return ftn.Add(ftn.Sub(affineToExpr(t.Hi), affineToExpr(t.Lo)), ftn.Int(1))
}

// productExpr multiplies the extents of the given dims.
func productExpr(dims []access.Triplet) ftn.Expr {
	var e ftn.Expr = ftn.Int(1)
	for _, d := range dims {
		e = ftn.Mul(e, extentExpr(d))
	}
	return e
}

// doLoop builds "do v = lo, hi ... enddo".
func doLoop(v string, lo, hi ftn.Expr, body []ftn.Stmt) *ftn.DoStmt {
	return &ftn.DoStmt{Var: v, Lo: lo, Hi: hi, Body: body}
}

// partitionStart returns the expression for the first last-dimension index
// of partition p (0-based rank expression): lastLo + p*psz.
func (rw *rewriter) partitionStart(p ftn.Expr) ftn.Expr {
	return ftn.Add(ftn.Int(rw.lastLo), ftn.Mul(p, ftn.Int(rw.psz)))
}

// ringPeer builds "mod(me + j, np)" (the Fig. 4 staggered destination) or
// "mod(np + me - j, np)" (the source) depending on sendSide.
func (rw *rewriter) ringPeer(sendSide bool) ftn.Expr {
	if sendSide {
		return ftn.Mod(ftn.Add(ftn.Id(rw.vMe), ftn.Id(rw.vJ)), ftn.Id(rw.vNp))
	}
	return ftn.Mod(ftn.Sub(ftn.Add(ftn.Id(rw.vNp), ftn.Id(rw.vMe)), ftn.Id(rw.vJ)), ftn.Id(rw.vNp))
}
