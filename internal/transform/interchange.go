package transform

import (
	"repro/internal/analysis"
	"repro/internal/ftn"
)

// Interchange swaps ℓ's outermost loop header with the inner loop at the
// chain level the analysis selected (§3.5: "we could use loop interchange to
// exchange the outermost loop with one of the inner loops"). Legality was
// established by dependence analysis; this routine only performs the
// mechanical swap. The caller must re-run the analysis afterwards, since
// reference loop orders change.
func Interchange(op *analysis.Opportunity) error {
	if !op.InterchangeOK {
		return failf(op.L.Pos(), "interchange was not proven legal")
	}
	inner := chainLoopAt(op.L, op.InterchangeWith)
	if inner == nil {
		return failf(op.L.Pos(), "perfect-nest chain has no level %d", op.InterchangeWith)
	}
	// Headers must not depend on each other's variables (rectangular nest);
	// triangular bounds would change meaning under interchange.
	if ftn.ExprUses(inner.Lo, op.L.Var) || ftn.ExprUses(inner.Hi, op.L.Var) ||
		ftn.ExprUses(op.L.Lo, inner.Var) || ftn.ExprUses(op.L.Hi, inner.Var) {
		return failf(op.L.Pos(), "interchange of a non-rectangular nest")
	}
	op.L.Var, inner.Var = inner.Var, op.L.Var
	op.L.Lo, inner.Lo = inner.Lo, op.L.Lo
	op.L.Hi, inner.Hi = inner.Hi, op.L.Hi
	op.L.Step, inner.Step = inner.Step, op.L.Step
	return nil
}

// chainLoopAt returns the DO statement at the given perfect-chain level
// below root (level 0 is root itself).
func chainLoopAt(root *ftn.DoStmt, level int) *ftn.DoStmt {
	cur := root
	for l := 0; l < level; l++ {
		var next *ftn.DoStmt
		count := 0
		for _, s := range cur.Body {
			switch s := s.(type) {
			case *ftn.CommentStmt:
			case *ftn.DoStmt:
				next = s
				count++
			default:
				return nil
			}
		}
		if count != 1 || next == nil {
			return nil
		}
		cur = next
	}
	return cur
}
