package transform_test

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// rejectCase runs the pipeline and asserts the single site is rejected with
// a reason containing want.
func rejectCase(t *testing.T, src string, opts core.Options, want string) {
	t.Helper()
	_, rep, err := core.Transform(src, opts)
	if err != nil {
		t.Fatalf("pipeline error: %v", err)
	}
	if rep.TransformedCount() != 0 {
		t.Fatalf("expected rejection, got transform:\n%s", rep)
	}
	joined := ""
	for _, s := range rep.Sites {
		joined += s.Reason + "\n"
	}
	if !strings.Contains(joined, want) {
		t.Errorf("reasons %q do not contain %q", joined, want)
	}
}

func TestRejectSendcountMismatch(t *testing.T) {
	// The call exchanges only half the array: pre-pushing the whole array
	// would change semantics.
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: np = 4
  integer as(1:32), ar(1:32), i, ierr
  do i = 1, 32
    as(i) = i
  enddo
  call mpi_alltoall(as, 4, mpi_integer, ar, 4, mpi_integer, mpi_comm_world, ierr)
end program p
`, core.Options{K: 4}, "does not exchange the whole array")
}

func TestRejectUnknownNP(t *testing.T) {
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer as(1:32), ar(1:32), i, ierr
  do i = 1, 32
    as(i) = i
  enddo
  call mpi_alltoall(as, 8, mpi_integer, ar, 8, mpi_integer, mpi_comm_world, ierr)
end program p
`, core.Options{K: 4}, "number of ranks unknown")
}

func TestRejectIndivisibleLastDim(t *testing.T) {
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer as(1:30), ar(1:30), i, ierr
  do i = 1, 30
    as(i) = i
  enddo
  call mpi_alltoall(as, 6, mpi_integer, ar, 6, mpi_integer, mpi_comm_world, ierr)
end program p
`, core.Options{K: 3, NP: 4}, "not divisible")
}

func TestRejectStridedSubscript(t *testing.T) {
	// as(2*i) leaves gaps; the prototype requires coefficients in {0,1}.
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: np = 4
  integer as(1:32), ar(1:32), i, ierr
  do i = 1, 16
    as(2*i) = i
  enddo
  call mpi_alltoall(as, 8, mpi_integer, ar, 8, mpi_integer, mpi_comm_world, ierr)
end program p
`, core.Options{K: 4}, "coefficient")
}

func TestRejectPartialCoverage(t *testing.T) {
	// The loop writes only half of as: it does not finalize the array.
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: np = 4
  integer as(1:32), ar(1:32), i, ierr
  do i = 1, 16
    as(i) = i
  enddo
  call mpi_alltoall(as, 8, mpi_integer, ar, 8, mpi_integer, mpi_comm_world, ierr)
end program p
`, core.Options{K: 4}, "finalize")
}

func TestRejectScalarBuffer(t *testing.T) {
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: np = 4
  integer as, ar(1:4), i, ierr
  do i = 1, 4
    as = i
  enddo
  call mpi_alltoall(as, 1, mpi_integer, ar, 1, mpi_integer, mpi_comm_world, ierr)
end program p
`, core.Options{K: 1}, "not a declared array")
}

func TestRejectWrongArgCount(t *testing.T) {
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: np = 4
  integer as(1:8), ar(1:8), i, ierr
  do i = 1, 8
    as(i) = i
  enddo
  call mpi_alltoall(as, 2, mpi_integer, ar, 2, mpi_integer, mpi_comm_world)
end program p
`, core.Options{K: 2}, "8")
}

func TestRejectIndirectExtraStatement(t *testing.T) {
	// A copy loop with a statement that is not a scalar assignment or the
	// copy itself cannot be removed safely.
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: n = 4
  integer, parameter :: np = 4
  integer as(1:n, 1:n, 1:n)
  integer ar(1:n, 1:n, 1:n)
  integer at(1:16)
  integer other(1:16)
  integer iy, ix, tx, ty, ierr

  do iy = 1, n
    call p2(iy, at)
    do ix = 1, 16
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1)/n + 1
      other(ix) = at(ix)
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, 16, mpi_integer, ar, 16, mpi_integer, mpi_comm_world, ierr)
end program p

subroutine p2(iy, at)
  integer iy
  integer at(*)
  at(1) = iy
end subroutine p2
`, core.Options{K: 1}, "extra array assignment")
}

func TestRejectIndirectNoFillCall(t *testing.T) {
	rejectCase(t, `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: n = 4
  integer, parameter :: np = 4
  integer as(1:n, 1:n, 1:n)
  integer ar(1:n, 1:n, 1:n)
  integer at(1:16)
  integer iy, ix, tx, ty, ierr

  do iy = 1, n
    do ix = 1, 16
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1)/n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, 16, mpi_integer, ar, 16, mpi_integer, mpi_comm_world, ierr)
end program p
`, core.Options{K: 1}, "no call filling")
}

func TestRejectKZero(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: np = 4
  integer as(1:32), ar(1:32), i, ierr
  do i = 1, 32
    as(i) = i
  enddo
  call mpi_alltoall(as, 8, mpi_integer, ar, 8, mpi_integer, mpi_comm_world, ierr)
end program p
`
	// K<=0 falls back to the default at the core layer; the transform
	// itself must reject it when called directly. Through core, K=0 means
	// "default", so this must succeed.
	_, rep, err := core.Transform(src, core.Options{K: 0})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("K=0 should use the default tile size:\n%s", rep)
	}
}

func TestNPOptionOverridesParameter(t *testing.T) {
	// No 'np' constant in the program; Options.NP supplies it.
	src := `
program p
  implicit none
  include 'mpif.h'
  integer as(1:32), ar(1:32), i, ierr
  do i = 1, 32
    as(i) = i*5
  enddo
  call mpi_alltoall(as, 8, mpi_integer, ar, 8, mpi_integer, mpi_comm_world, ierr)
end program p
`
	_, rep, err := core.Transform(src, core.Options{K: 4, NP: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("NP option not honored:\n%s", rep)
	}
}

func TestPerTileWaitGolden(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: np = 4
  integer as(1:32), ar(1:32), i, ierr
  do i = 1, 32
    as(i) = i
  enddo
  call mpi_alltoall(as, 8, mpi_integer, ar, 8, mpi_integer, mpi_comm_world, ierr)
end program p
`
	perTile, _, err := core.Transform(src, core.Options{K: 4, PerTileWait: true})
	if err != nil {
		t.Fatal(err)
	}
	deferred, _, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The per-tile variant waits inside the tile guard (before the sends);
	// the deferred variant's only waitall is the drain after the loop.
	if strings.Count(perTile, "call mpi_waitall") != 2 {
		t.Errorf("per-tile variant should have 2 waitall sites:\n%s", perTile)
	}
	if strings.Count(deferred, "call mpi_waitall") != 1 {
		t.Errorf("deferred variant should have 1 waitall site:\n%s", deferred)
	}
	// Request arrays: per-tile reuses np slots; the deferred (staggered)
	// schedule sizes for a whole execution: 2·(np-1)·(psz/K) = 2·3·2.
	if !strings.Contains(perTile, "cc_reqs(1:4)") {
		t.Error("per-tile request array should be np-sized")
	}
	if !strings.Contains(deferred, "cc_reqs(1:12)") {
		t.Errorf("deferred request array should be sized for all sends and receives:\n%s", deferred)
	}
	// The per-tile (paper-literal) variant keeps the owner-ordered schedule;
	// the deferred variant staggers the partition traversal by rank.
	if strings.Contains(perTile, "cc_po") {
		t.Error("per-tile variant should not use the staggered traversal")
	}
	if !strings.Contains(deferred, "cc_to = mod(cc_me + cc_po, cc_np)") {
		t.Errorf("deferred variant should use the staggered traversal:\n%s", deferred)
	}
}
