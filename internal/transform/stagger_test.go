package transform_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
)

// staggerKernel renders a 1-D subset-send kernel with the given loop body
// statements (written to as(ix) over ix = 1..32, np = 4, K = 4).
func staggerKernel(body string) string {
	return `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 32
  integer, parameter :: np = 4
  integer as(1:nx)
  integer ar(1:nx)
  integer b(1:64)
  integer ix, ierr, s, t, checksum

  call mpi_init(ierr)
  s = 5
  do ix = 1, nx
` + body + `
  enddo
  call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
  checksum = ar(1) + ar(nx/2) + ar(nx)
  print *, 'checksum', checksum, s
  call mpi_finalize(ierr)
end program p
`
}

// differentialIdentical transforms src and asserts bit-identical observable
// results against the original under both profiles.
func differentialIdentical(t *testing.T, src, transformed string) {
	t.Helper()
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		var results [2]*interp.Result
		for vi, text := range []string{src, transformed} {
			prog, err := interp.Load(text)
			if err != nil {
				t.Fatalf("load variant %d: %v", vi, err)
			}
			res, err := prog.Run(4, prof)
			if err != nil {
				t.Fatalf("run variant %d under %s: %v\n%s", vi, prof.Name, err, text)
			}
			results[vi] = res
		}
		if same, why := interp.SameObservable(results[0], results[1], "ar"); !same {
			t.Fatalf("mismatch under %s: %s\n%s", prof.Name, why, transformed)
		}
	}
}

// TestStaggeredScheduleApplied: an order-independent subset-send kernel gets
// the staggered traversal (ring partition order, pre-posted receives) and
// stays bit-identical.
func TestStaggeredScheduleApplied(t *testing.T) {
	src := staggerKernel("    as(ix) = ix*3 + 1")
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("did not transform:\n%s", rep)
	}
	if !rep.Sites[0].Result.Staggered {
		t.Fatalf("expected the staggered schedule:\n%s", rep)
	}
	for _, want := range []string{
		"cc_to = mod(cc_me + cc_po, cc_np)",
		"! pre-post all receives for this rank's partition (staggered schedule)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	differentialIdentical(t, src, out)
}

// TestStaggerFallsBackOnCarriedScalar: a scalar carried across iterations
// makes the iteration order observable; the transformation must keep the
// original owner-ordered schedule — and remain correct.
func TestStaggerFallsBackOnCarriedScalar(t *testing.T) {
	src := staggerKernel("    s = s + ix\n    as(ix) = ix*2 + s")
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("did not transform:\n%s", rep)
	}
	if rep.Sites[0].Result.Staggered {
		t.Fatal("staggered schedule applied despite a carried scalar")
	}
	if strings.Contains(out, "cc_po") {
		t.Errorf("staggered traversal leaked into the fallback:\n%s", out)
	}
	differentialIdentical(t, src, out)
}

// TestStaggerFallsBackOnCarriedArrayDep: a flow dependence carried by the
// tiled loop through another array also disables the reordering.
func TestStaggerFallsBackOnCarriedArrayDep(t *testing.T) {
	src := staggerKernel("    b(ix + 1) = ix*5\n    as(ix) = b(ix) + ix")
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("did not transform:\n%s", rep)
	}
	if rep.Sites[0].Result.Staggered {
		t.Fatal("staggered schedule applied despite a carried array dependence")
	}
	differentialIdentical(t, src, out)
}

// TestStaggerFallsBackOnPrint: PRINT inside ℓ pins the iteration order (the
// per-rank output lines would be permuted otherwise).
func TestStaggerFallsBackOnPrint(t *testing.T) {
	src := staggerKernel("    as(ix) = ix*3\n    print *, ix")
	_, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() == 1 && rep.Sites[0].Result.Staggered {
		t.Fatal("staggered schedule applied despite a PRINT in the loop")
	}
}

// postLoopKernel is staggerKernel with an extra statement between the
// ALLTOALL and the final print (a post-loop observer of tail values).
func postLoopKernel(body, after string) string {
	src := staggerKernel(body)
	return strings.Replace(src,
		"  checksum = ar(1) + ar(nx/2) + ar(nx)",
		"  checksum = ar(1) + ar(nx/2) + ar(nx)\n"+after, 1)
}

// TestStaggerFallsBackOnPostLoopVarRead: the staggered traversal leaves the
// tiled loop variable at a rank-dependent value, so a post-loop read of it
// must disable the reordering (and the fallback must stay bit-identical).
func TestStaggerFallsBackOnPostLoopVarRead(t *testing.T) {
	src := postLoopKernel("    as(ix) = ix*3 + 1", "  checksum = checksum + ix*7")
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("did not transform:\n%s", rep)
	}
	if rep.Sites[0].Result.Staggered {
		t.Fatal("staggered schedule applied despite a post-loop read of the loop variable")
	}
	differentialIdentical(t, src, out)
}

// TestStaggerFallsBackOnPostLoopScalarRead: same for a scalar the loop body
// assigns — its final value depends on the traversal order.
func TestStaggerFallsBackOnPostLoopScalarRead(t *testing.T) {
	src := postLoopKernel("    t = ix*2\n    as(ix) = t + ix", "  checksum = checksum + t")
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("did not transform:\n%s", rep)
	}
	if rep.Sites[0].Result.Staggered {
		t.Fatal("staggered schedule applied despite a post-loop read of a body scalar")
	}
	differentialIdentical(t, src, out)
}

// TestStaggerFallsBackOnCycledScalarRead: ℓ nested in an outer loop whose
// body kills a scalar BEFORE ℓ but reads it after ℓ in the same iteration —
// the kill has not re-executed at the read, so the read observes ℓ's
// rank-dependent final value and the stagger must be disabled.
func TestStaggerFallsBackOnCycledScalarRead(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 32
  integer, parameter :: np = 4
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, iy, ierr, t, checksum

  call mpi_init(ierr)
  checksum = 0
  do iy = 1, 2
    t = 0
    do ix = 1, nx
      t = ix*2
      as(ix) = t + ix + iy
    enddo
    call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
    checksum = checksum + t + ar(1)
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program p
`
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("did not transform:\n%s", rep)
	}
	if rep.Sites[0].Result.Staggered {
		t.Fatal("staggered schedule applied despite a cycled post-loop scalar read")
	}
	differentialIdentical(t, src, out)
}

// TestStaggerSurvivesLoopVarReuse: another DO reusing the tiled variable as
// its own loop variable redefines it, so the staggered schedule stays legal.
func TestStaggerSurvivesLoopVarReuse(t *testing.T) {
	src := postLoopKernel("    as(ix) = ix*3 + 1",
		"  do ix = 1, nx\n    checksum = checksum + ar(ix)\n  enddo")
	out, rep, err := core.Transform(src, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("did not transform:\n%s", rep)
	}
	if !rep.Sites[0].Result.Staggered {
		t.Fatalf("loop-variable reuse should not disable the stagger:\n%s", rep)
	}
	differentialIdentical(t, src, out)
}

// TestStaggerPreTileWaitKeepsOwnerOrder: the paper-literal per-tile wait
// mode must keep the original owner-ordered schedule.
func TestStaggerPerTileWaitKeepsOwnerOrder(t *testing.T) {
	src := staggerKernel("    as(ix) = ix*3 + 1")
	out, rep, err := core.Transform(src, core.Options{K: 4, PerTileWait: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("did not transform:\n%s", rep)
	}
	if rep.Sites[0].Result.Staggered || strings.Contains(out, "cc_po") {
		t.Error("per-tile wait mode must not stagger")
	}
	differentialIdentical(t, src, out)
}
