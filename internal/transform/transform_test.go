package transform_test

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/interp"
	"repro/internal/netsim"
)

// directOutermostSrc is the paper's Fig. 2(a) program made concrete.
const directOutermostSrc = `
program direct
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 64
  integer, parameter :: np = 8
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, iy, ierr, checksum

  call mpi_init(ierr)
  checksum = 0
  do iy = 1, 4
    do ix = 1, nx
      as(ix) = ix*3 + iy*7
    enddo
    call mpi_alltoall(as, nx/np, mpi_integer, ar, nx/np, mpi_integer, mpi_comm_world, ierr)
    do ix = 1, nx
      checksum = checksum + ar(ix)*ix
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program direct
`

// directInnerSrc has a 2-D As whose last dimension is walked by the inner
// loop: the Fig. 4 all-peers case. The iy loop writes rows.
const directInnerSrc = `
program inner
  implicit none
  include 'mpif.h'
  integer, parameter :: ny = 24
  integer, parameter :: sz = 8
  integer, parameter :: np = 4
  integer as(1:ny, 1:sz)
  integer ar(1:ny, 1:sz)
  integer iy, inode, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do iy = 1, ny
    do inode = 1, sz
      as(iy, inode) = me + iy*100 + inode*17
    enddo
  enddo
  call mpi_alltoall(as, ny*sz/np, mpi_integer, ar, ny*sz/np, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do iy = 1, ny
    do inode = 1, sz
      checksum = checksum + ar(iy, inode)*(iy + inode)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program inner
`

// interchangeSrc has the node loop outermost but interchangeable.
const interchangeSrc = `
program swap
  implicit none
  include 'mpif.h'
  integer, parameter :: n = 16
  integer, parameter :: np = 4
  integer as(1:n, 1:n)
  integer ar(1:n, 1:n)
  integer i, j, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do j = 1, n
    do i = 1, n
      as(i, j) = me*3 + i + j*10
    enddo
  enddo
  call mpi_alltoall(as, n*n/np, mpi_integer, ar, n*n/np, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do j = 1, n
    do i = 1, n
      checksum = checksum + ar(i, j)*i - ar(i, j)*j
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program swap
`

// indirectSrc is the paper's Fig. 3(a) shape (the evaluation's test
// program pattern).
const indirectSrc = `
program indirect
  implicit none
  include 'mpif.h'
  integer, parameter :: n = 8
  integer, parameter :: np = 4
  integer as(1:n, 1:n, 1:n)
  integer ar(1:n, 1:n, 1:n)
  integer at(1:64)
  integer iy, ix, tx, ty, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do iy = 1, n
    call p(iy, me, at)
    do ix = 1, 64
      tx = mod(ix - 1, n) + 1
      ty = (ix - 1)/n + 1
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, 128, mpi_integer, ar, 128, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do iy = 1, n
    do ix = 1, n
      checksum = checksum + ar(ix, iy, 2)*ix + ar(iy, ix, 7)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program indirect

subroutine p(iy, me, at)
  integer iy, me
  integer at(*)
  integer i
  do i = 1, 64
    at(i) = i*1000 + iy*10 + me
  enddo
end subroutine p
`

// transformAndCompare transforms src, runs both versions on np ranks under
// both network profiles, and requires identical outputs and final arrays.
// It returns the elapsed times (orig, prepush) under the GM profile.
func transformAndCompare(t *testing.T, src string, np int, k int64, tweak ...func(*core.Options)) (netsim.Time, netsim.Time) {
	t.Helper()
	opts := core.Options{K: k}
	for _, f := range tweak {
		f(&opts)
	}
	out, rep, err := core.Transform(src, opts)
	if err != nil {
		t.Fatalf("transform: %v", err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("transformed %d sites, want 1\n%s", rep.TransformedCount(), rep)
	}

	var gmOrig, gmPre netsim.Time
	for _, prof := range []netsim.Profile{netsim.MPICHGM(), netsim.MPICHTCP()} {
		po, err := interp.Load(src)
		if err != nil {
			t.Fatalf("load original: %v", err)
		}
		ro, err := po.Run(np, prof)
		if err != nil {
			t.Fatalf("run original (%s): %v", prof, err)
		}
		pt, err := interp.Load(out)
		if err != nil {
			t.Fatalf("load transformed: %v\n%s", err, out)
		}
		rt, err := pt.Run(np, prof)
		if err != nil {
			t.Fatalf("run transformed (%s): %v\n%s", prof, err, out)
		}
		// Equivalence is judged on the printed output and the receive
		// array: the indirect transformation makes the send array dead.
		if same, why := interp.SameObservable(ro, rt, "ar"); !same {
			t.Fatalf("output mismatch (%s): %s\n--- transformed:\n%s", prof, why, out)
		}
		if prof.Offload {
			gmOrig, gmPre = ro.Elapsed(), rt.Elapsed()
		}
	}
	return gmOrig, gmPre
}

func TestEquivalenceDirectOutermost(t *testing.T) {
	for _, k := range []int64{1, 2, 4, 8} {
		transformAndCompare(t, directOutermostSrc, 8, k)
	}
}

func TestEquivalenceDirectInner(t *testing.T) {
	// ny=24: K=5 leaves a leftover of 4 iterations; K=7 leaves 3.
	for _, k := range []int64{1, 3, 5, 7, 8, 24} {
		transformAndCompare(t, directInnerSrc, 4, k)
	}
}

func TestEquivalenceInterchange(t *testing.T) {
	// Force the interchange path (the granularity gate would otherwise
	// choose subset sends for this small array).
	for _, k := range []int64{2, 4} {
		transformAndCompare(t, interchangeSrc, 4, k, func(o *core.Options) {
			o.InterchangeMinBlockBytes = 1
		})
	}
}

func TestEquivalenceInterchangeGatedToSubsetSend(t *testing.T) {
	// Default gate: tiny blocks mean the subset-send fallback is used;
	// the result must still be equivalent.
	for _, k := range []int64{2, 4} {
		transformAndCompare(t, interchangeSrc, 4, k)
	}
}

func TestEquivalenceIndirect(t *testing.T) {
	for _, k := range []int64{1, 2} {
		transformAndCompare(t, indirectSrc, 4, k)
	}
}

// prepushPerfSrc is a compute-heavy 3-D kernel sized so that tile blocks
// are large (m×K elements contiguous) and the exchange is bandwidth-bound:
// the configuration where the paper's transformation pays off.
const prepushPerfSrc = `
program perf
  implicit none
  include 'mpif.h'
  integer, parameter :: m = 64
  integer, parameter :: ny = 48
  integer, parameter :: sz = 8
  integer, parameter :: np = 4
  integer as(1:m, 1:ny, 1:sz)
  integer ar(1:m, 1:ny, 1:sz)
  integer im, iy, inode, ierr, me, checksum

  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do iy = 1, ny
    do inode = 1, sz
      do im = 1, m
        as(im, iy, inode) = me + (im*iy + inode*3)*(im - iy) + mod(im + iy + inode, 11)*7
      enddo
    enddo
  enddo
  call mpi_alltoall(as, m*ny*sz/np, mpi_integer, ar, m*ny*sz/np, mpi_integer, mpi_comm_world, ierr)
  checksum = 0
  do inode = 1, sz
    do im = 1, m
      checksum = checksum + ar(im, 3, inode)*im - ar(im, 7, inode)
    enddo
  enddo
  print *, 'checksum', checksum
  call mpi_finalize(ierr)
end program perf
`

func TestPrepushFasterOnOffloadStack(t *testing.T) {
	// The headline claim: with an offload-capable stack, pre-pushing
	// reduces execution time once messages are rendezvous-sized and there
	// is computation to overlap. A lower eager threshold puts the tile
	// blocks (64×8×4 B = 2 KiB) on the rendezvous path without needing a
	// huge (slow-to-interpret) workload.
	out, rep, err := core.Transform(prepushPerfSrc, core.Options{K: 8})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("report: %s", rep)
	}
	prof := netsim.MPICHGM()
	prof.EagerThreshold = 1024
	po, err := interp.Load(prepushPerfSrc)
	if err != nil {
		t.Fatal(err)
	}
	ro, err := po.Run(4, prof)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := interp.Load(out)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := pt.Run(4, prof)
	if err != nil {
		t.Fatalf("%v\n%s", err, out)
	}
	if same, why := interp.SameObservable(ro, rt, "ar"); !same {
		t.Fatalf("mismatch: %s", why)
	}
	if rt.Elapsed() >= ro.Elapsed() {
		t.Errorf("prepush (%v) not faster than original (%v) on offload stack", rt.Elapsed(), ro.Elapsed())
	}
}

func TestTransformedSourceShape(t *testing.T) {
	out, _, err := core.Transform(directOutermostSrc, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"call mpi_isend(as(cc_lo), 4, mpi_integer, cc_to, cc_tile, mpi_comm_world, cc_reqs(cc_nreq), cc_ierr)",
		"call mpi_irecv(ar(1 + cc_from * 8 + cc_off)",
		"call mpi_waitall(cc_nreq, cc_reqs, mpi_statuses_ignore, cc_ierr)",
		// Staggered subset-send traversal: ring partition order per rank.
		"do cc_po = 1, cc_np",
		"cc_to = mod(cc_me + cc_po, cc_np)",
		"! original mpi_alltoall removed by compuniformer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("transformed source missing %q\n%s", want, out)
		}
	}
	if strings.Contains(out, "call mpi_alltoall") {
		t.Error("original call not removed")
	}
}

func TestFig4ShapeForInnerNodeLoop(t *testing.T) {
	out, _, err := core.Transform(directInnerSrc, core.Options{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	// The Fig. 4 staggered ring must appear.
	for _, want := range []string{
		"do cc_j = 1, cc_np - 1",
		"cc_to = mod(cc_me + cc_j, cc_np)",
		"cc_from = mod(cc_np + cc_me - cc_j, cc_np)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing Fig. 4 element %q\n%s", want, out)
		}
	}
}

func TestIndirectShape(t *testing.T) {
	out, rep, err := core.Transform(indirectSrc, core.Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 1 {
		t.Fatalf("report: %s", rep)
	}
	for _, want := range []string{
		"integer at(1:64, 1:2)", // expanded temporary
		"call p(iy, me, at(1, cc_buf))",
		"! redundant copy loop removed by compuniformer",
		"call mpi_isend(at(1, 1), 128, mpi_integer",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing indirect element %q\n%s", want, out)
		}
	}
	// The copy loop must be gone: no assignment to as remains.
	if strings.Contains(out, "as(tx, ty, iy)") {
		t.Error("copy loop still present")
	}
}

func TestRejectionKNotDividingPartition(t *testing.T) {
	_, rep, err := core.Transform(directOutermostSrc, core.Options{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TransformedCount() != 0 {
		t.Fatal("K=3 with psz=8 must be rejected for the subset-send case")
	}
	found := false
	for _, s := range rep.Sites {
		if strings.Contains(s.Reason, "divide the partition") {
			found = true
		}
	}
	if !found {
		t.Errorf("report: %s", rep)
	}
}
