package transform

import (
	"repro/internal/analysis"
	"repro/internal/dep"
	"repro/internal/ftn"
)

// Tile-order independence: the staggered subset-send schedule (see
// directOutermostStaggered) makes every rank traverse ℓ's tiles in a
// different, rank-dependent order. That is only legal when no iteration of
// the tiled loop observes state produced by another iteration:
//
//  1. no dependence among the nest's array references is carried by the
//     tiled (outermost) loop — every feasible direction vector must be "="
//     at level 0, proven exactly;
//  2. no scalar value flows between iterations of the tiled loop — every
//     scalar read inside the body is (re)defined earlier in the same
//     iteration, on every path;
//  3. nothing order-sensitive executes inside the body (PRINT output lines
//     would be reordered; CALLs and control transfers are opaque);
//  4. the tiled loop variable and every scalar the body assigns are dead
//     after ℓ — the staggered traversal leaves them at rank-dependent
//     values, so a post-loop read would break bit-identical results.
//
// All checks are conservative: an Unknown answer disables the staggered
// schedule and the original owner-ordered schedule is kept.

// ReorderSafe is the exported form of the tile-order-independence proof for
// one opportunity: the receive array must not be referenced inside the nest
// (the staggered traversal rewrites its fill order) and every check above
// must pass. The transformer gates the staggered schedule on exactly this
// predicate, so a validator calling it re-derives the same legality verdict
// from the same dependence facts.
func ReorderSafe(op *analysis.Opportunity) bool {
	if op == nil || op.Nest == nil || op.L == nil || op.Unit == nil {
		return false
	}
	if len(op.Nest.ByArray[op.Call.Ar]) != 0 {
		return false
	}
	return tileReorderSafe(op.Nest.Refs, op.Unit.Body, op.L, op.Arrays, op.Consts)
}

// tileReorderSafe runs all the checks for the opportunity's nest. unitBody
// is the whole program-unit body (the post-loop liveness scan needs it);
// consts carries the unit's named parameter values.
func tileReorderSafe(refs []*dep.Ref, unitBody []ftn.Stmt, loop *ftn.DoStmt, arrays map[string]bool, consts map[string]int64) bool {
	if !nestReorderSafe(refs) {
		return false
	}
	sc := &scalarScan{
		arrays:  arrays,
		liveIn:  map[string]bool{},
		written: map[string]bool{},
		ok:      true,
	}
	sc.block(loop.Body, map[string]bool{loop.Var: true})
	if !sc.ok {
		return false
	}
	for name := range sc.liveIn {
		if sc.written[name] {
			return false // carried scalar flow across iterations
		}
	}
	// Post-loop liveness: every name the staggered traversal perturbs.
	names := map[string]bool{loop.Var: true}
	for name := range sc.written {
		names[name] = true
	}
	return !postLoopReads(unitBody, loop, names, consts)
}

// nestReorderSafe proves no dependence is carried by the outermost loop:
// for every pair of references involving a write, all feasible direction
// vectors must have "=" at level 0, with exact dependence information.
func nestReorderSafe(refs []*dep.Ref) bool {
	for _, r1 := range refs {
		for _, r2 := range refs {
			if !r1.Write && !r2.Write {
				continue
			}
			vecs, exact := dep.DirectionVectors(r1, r2)
			if !exact {
				return false
			}
			for _, v := range vecs {
				if len(v) == 0 || v[0] != dep.DirEQ {
					return false
				}
			}
		}
	}
	return true
}

// postLoopReads reports whether any of names may be read after an execution
// of loop completes. ℓ is never inside an IF (the analysis rejects those
// sites), so its ancestors are DO bodies plus the unit body: for an ancestor
// DO body the whole list may re-execute after ℓ (the loop cycles), for the
// unit body only the statements after ℓ's top-level ancestor run. Each
// region is scanned in order with redefinition tracking — a name killed by
// an unconditional scalar assignment or by serving as another DO's loop
// variable no longer carries ℓ's value, so later reads of it are fine.
// Kills inside DOs and IF branches do not persist (zero trips, untaken
// branches), keeping the scan conservative.
func postLoopReads(unitBody []ftn.Stmt, loop *ftn.DoStmt, names map[string]bool, consts map[string]int64) bool {
	path, ok := pathTo(unitBody, loop)
	if !ok {
		return true // cannot locate ℓ: refuse to reorder
	}
	ps := &postScanner{skip: loop, consts: consts}
	for level, pe := range path {
		// The same-iteration tail — statements after ℓ's ancestor in this
		// list — runs immediately after ℓ, before anything earlier in the
		// list re-executes, so it is scanned with the full name set (a kill
		// lexically before ℓ has not happened yet at that point).
		if ps.readsAny(pe.list[pe.index+1:], cloneSet(names)) {
			return true
		}
		// Ancestor DO bodies also cycle: the next iteration re-runs the
		// whole list (including statements before ℓ) while ℓ's values are
		// still live, so scan the full list too. Level 0 is the unit body,
		// which executes once.
		if level > 0 && ps.readsAny(pe.list, cloneSet(names)) {
			return true
		}
	}
	return false
}

// pathEntry is one ancestor level on the way to ℓ: the statement list and
// the index of the statement containing (or being) ℓ.
type pathEntry struct {
	list  []ftn.Stmt
	index int
}

// pathTo finds the ancestor chain from the unit body (level 0) down to the
// list containing loop, descending only through DO bodies.
func pathTo(body []ftn.Stmt, loop *ftn.DoStmt) ([]pathEntry, bool) {
	for i, s := range body {
		if s == ftn.Stmt(loop) {
			return []pathEntry{{list: body, index: i}}, true
		}
		if do, ok := s.(*ftn.DoStmt); ok {
			if sub, found := pathTo(do.Body, loop); found {
				return append([]pathEntry{{list: body, index: i}}, sub...), true
			}
		}
	}
	return nil, false
}

// postScanner scans statement regions for reads of ℓ-perturbed names.
type postScanner struct {
	skip   *ftn.DoStmt
	consts map[string]int64
}

func readExpr(e ftn.Expr, live map[string]bool) bool {
	found := false
	ftn.WalkExpr(e, func(n ftn.Expr) bool {
		if id, ok := n.(*ftn.Ident); ok && live[id.Name] {
			found = true
		}
		return !found
	})
	return found
}

// readsAny scans a statement region in order for reads of live names,
// skipping the ℓ subtree and killing names on unconditional redefinition.
func (ps *postScanner) readsAny(list []ftn.Stmt, live map[string]bool) bool {
	for _, s := range list {
		if s == ftn.Stmt(ps.skip) {
			continue
		}
		switch s := s.(type) {
		case *ftn.AssignStmt:
			if readExpr(s.RHS, live) {
				return true
			}
			switch lhs := s.LHS.(type) {
			case *ftn.Ref:
				for _, a := range lhs.Args {
					if readExpr(a, live) {
						return true
					}
				}
			case *ftn.Ident:
				delete(live, lhs.Name) // redefined: ℓ's value no longer observable
			}
		case *ftn.DoStmt:
			if readExpr(s.Lo, live) || readExpr(s.Hi, live) || (s.Step != nil && readExpr(s.Step, live)) {
				return true
			}
			// Inside the body the DO variable always holds this loop's value.
			inner := cloneSet(live)
			delete(inner, s.Var)
			if ps.readsAny(s.Body, inner) {
				return true
			}
			// After the loop the variable only lost ℓ's value if the header
			// actually assigned it, i.e. the loop provably runs ≥ 1 trip.
			if ps.tripsAtLeastOne(s) {
				delete(live, s.Var)
			}
		case *ftn.IfStmt:
			if readExpr(s.Cond, live) {
				return true
			}
			if ps.readsAny(s.Then, cloneSet(live)) || ps.readsAny(s.Else, cloneSet(live)) {
				return true
			}
		case *ftn.CommentStmt, *ftn.ContinueStmt, *ftn.ReturnStmt, *ftn.StopStmt, *ftn.ExitStmt, *ftn.CycleStmt:
			// no scalar reads
		default:
			// CALL (arguments may read or alias), PRINT (reads): check every
			// expression conservatively.
			for _, e := range ftn.StmtExprs(s) {
				if readExpr(e, live) {
					return true
				}
			}
		}
	}
	return false
}

// tripsAtLeastOne proves a DO executes its body (and hence assigns its
// variable) at least once, with numeric bounds under the unit's constants.
func (ps *postScanner) tripsAtLeastOne(s *ftn.DoStmt) bool {
	env := &dep.Env{LoopVars: map[string]bool{}, Consts: ps.consts}
	loA, ok1 := dep.FromExpr(s.Lo, env)
	hiA, ok2 := dep.FromExpr(s.Hi, env)
	if !ok1 || !ok2 {
		return false
	}
	lo, okl := loA.Bind(ps.consts).Eval(nil)
	hi, okh := hiA.Bind(ps.consts).Eval(nil)
	if !okl || !okh {
		return false
	}
	step := int64(1)
	if s.Step != nil {
		stA, ok := dep.FromExpr(s.Step, env)
		if !ok {
			return false
		}
		st, oks := stA.Bind(ps.consts).Eval(nil)
		if !oks {
			return false
		}
		step = st
	}
	switch {
	case step > 0:
		return hi >= lo
	case step < 0:
		return hi <= lo
	}
	return false
}

// scalarScan walks ℓ's body in execution order deciding whether any scalar
// is live into an iteration (read before being unconditionally defined).
// Definitions made inside a DO body or an IF branch do not survive the
// construct (a DO may run zero trips, a branch may not be taken), which
// keeps the scan conservative without bound reasoning.
type scalarScan struct {
	arrays  map[string]bool
	liveIn  map[string]bool // scalars whose first access may be a read
	written map[string]bool // scalars assigned anywhere in the body
	ok      bool            // false once something order-sensitive is seen
}

func cloneSet(m map[string]bool) map[string]bool {
	c := make(map[string]bool, len(m))
	for k, v := range m {
		c[k] = v
	}
	return c
}

// read records every scalar read in e against the defined set.
func (sc *scalarScan) read(e ftn.Expr, defined map[string]bool) {
	ftn.WalkExpr(e, func(n ftn.Expr) bool {
		if id, isId := n.(*ftn.Ident); isId {
			if !sc.arrays[id.Name] && !defined[id.Name] {
				sc.liveIn[id.Name] = true
			}
		}
		return true
	})
}

// block scans a statement list, mutating defined for straight-line code.
func (sc *scalarScan) block(list []ftn.Stmt, defined map[string]bool) {
	for _, s := range list {
		if !sc.ok {
			return
		}
		switch s := s.(type) {
		case *ftn.AssignStmt:
			sc.read(s.RHS, defined)
			switch lhs := s.LHS.(type) {
			case *ftn.Ref:
				for _, a := range lhs.Args {
					sc.read(a, defined)
				}
				if !sc.arrays[lhs.Name] {
					sc.ok = false // statement-function-ish oddity: bail
				}
			case *ftn.Ident:
				sc.written[lhs.Name] = true
				defined[lhs.Name] = true
			}
		case *ftn.DoStmt:
			sc.read(s.Lo, defined)
			sc.read(s.Hi, defined)
			if s.Step != nil {
				sc.read(s.Step, defined)
			}
			sc.written[s.Var] = true
			inner := cloneSet(defined)
			inner[s.Var] = true
			sc.block(s.Body, inner) // definitions do not survive (zero trips)
		case *ftn.IfStmt:
			sc.read(s.Cond, defined)
			sc.block(s.Then, cloneSet(defined))
			sc.block(s.Else, cloneSet(defined))
		case *ftn.CommentStmt, *ftn.ContinueStmt:
			// no effect
		default:
			// PRINT (line order), CALL (opaque), RETURN/STOP/EXIT/CYCLE
			// (control transfer): all order-sensitive.
			sc.ok = false
		}
	}
}
