// Package transform implements the pre-push transformation of the paper's
// §3.5–§3.6: tiling the finalizing loop nest ℓ, generating the asynchronous
// communication code (Fig. 4), inserting the inter-tile waits, handling
// leftover iterations, removing the original MPI_ALLTOALL, and — for the
// indirect pattern — eliminating the redundant copy loop and expanding the
// temporary array with a buffer dimension (§3.4).
package transform

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/ftn"
)

// Options configures the transformation.
type Options struct {
	// K is the tile size: iterations of ℓ's tiled loop per tile (§2).
	K int64
	// NP is the number of ranks the transformed program will run with; it
	// must divide the extent of As's last dimension. When 0, the named
	// constant "np" of the program is used.
	NP int64
	// PerTileWait reproduces the paper's §3.6 step 2 literally: each tile
	// blocks on the previous tile's requests before posting its own. The
	// default (false) defers every wait to the post-loop drain, which is
	// correct for the direct pattern (no buffer is reused within ℓ) and
	// avoids stalling a tile's owner behind the incast — the request
	// array is sized for a whole execution of ℓ instead of one tile.
	// The indirect pattern always waits at tile start regardless (its
	// temporary buffers are reused every K iterations).
	PerTileWait bool
	// NoStagger forces the paper's literal owner-ordered subset-send
	// traversal (partitions 0..np-1) even when tile order independence is
	// provable and the staggered ring schedule would be legal. A plan's
	// send_order "sequential" knob maps here; the default (false) staggers
	// whenever the reorder proof succeeds.
	NoStagger bool
}

// Error is a transformation failure tied to a source position.
type Error struct {
	Pos ftn.Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: cannot transform: %s", e.Pos, e.Msg) }

func failf(pos ftn.Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// Result describes what the transformation did, for reporting.
type Result struct {
	Pattern       analysis.Pattern
	NodeCase      analysis.NodeLoopCase
	K             int64
	NP            int64
	PartitionSize int64 // last-dimension units per rank
	TileCount     int64 // tiles per execution of ℓ
	Leftover      int64 // iterations not covered by whole tiles
	MessagesTile  int64 // point-to-point messages posted per tile, per rank
	// TileMsgElems is the element count of one point-to-point message at
	// this K (0 when not numeric); the tuner's analytic seeding divides it
	// by K to price candidate tile sizes.
	TileMsgElems int64
	// Staggered marks the reordered subset-send schedule (ring partition
	// order per rank with pre-posted receives) — the incast fix.
	Staggered    bool
	Interchanged bool
	Notes        []string
}

// rewriter carries the state of one site's transformation.
type rewriter struct {
	op    *analysis.Opportunity
	opts  Options
	fresh *ftn.FreshNamer
	res   *Result

	np     int64
	k      int64
	lastLo int64 // numeric lower bound of As's last dimension
	lastHi int64
	psz    int64 // partition size in last-dimension units

	// Fresh variable names.
	vMe, vNp, vIerr, vNreq, vTile, vLo, vTo, vFrom, vJ, vOff, vReqs string

	typeExpr ftn.Expr // the MPI datatype argument, reused from C
	commExpr ftn.Expr // the communicator argument, reused from C
}

// Apply transforms the opportunity in place (the AST the analysis refers
// to is rewritten) and returns a result description.
func Apply(op *analysis.Opportunity, opts Options) (*Result, error) {
	if opts.K <= 0 {
		return nil, failf(op.Call.Stmt.Pos(), "tile size K must be positive, got %d", opts.K)
	}
	rw := &rewriter{
		op:    op,
		opts:  opts,
		fresh: ftn.NewFreshNamer(op.Unit),
		res:   &Result{Pattern: op.Pattern, NodeCase: op.NodeCase, K: opts.K},
		k:     opts.K,
	}
	if err := rw.resolveParameters(); err != nil {
		return nil, err
	}
	rw.allocateNames()

	var err error
	switch op.Pattern {
	case analysis.PatternDirect:
		err = rw.applyDirect()
	case analysis.PatternIndirect:
		err = rw.applyIndirect()
	default:
		err = failf(op.Call.Stmt.Pos(), "unknown pattern")
	}
	if err != nil {
		return nil, err
	}
	return rw.res, nil
}

// resolveParameters determines NP, the last-dimension bounds, and the
// partition size, and validates divisibility and the original sendcount.
func (rw *rewriter) resolveParameters() error {
	op := rw.op
	pos := op.Call.Stmt.Pos()
	rw.np = rw.opts.NP
	if rw.np == 0 {
		if v, ok := op.Consts["np"]; ok {
			rw.np = v
		}
	}
	if rw.np <= 1 {
		return failf(pos, "number of ranks unknown: pass Options.NP or declare the parameter np")
	}
	rw.res.NP = rw.np

	dims := op.AsDims
	last := dims[len(dims)-1]
	lo, ok1 := last.Lo.Bind(op.Consts).Eval(nil)
	hi, ok2 := last.Hi.Bind(op.Consts).Eval(nil)
	if !ok1 || !ok2 {
		return failf(pos, "the last dimension of %s must have numeric bounds", op.Call.As)
	}
	rw.lastLo, rw.lastHi = lo, hi
	ext := hi - lo + 1
	if ext%rw.np != 0 {
		return failf(pos, "last dimension extent %d of %s is not divisible by np=%d", ext, op.Call.As, rw.np)
	}
	rw.psz = ext / rw.np
	rw.res.PartitionSize = rw.psz

	// Validate the original sendcount against the partition volume when
	// both are numeric: a mismatched count means the original call did not
	// exchange the whole array and pre-pushing it would change semantics.
	total := int64(1)
	numeric := true
	for _, d := range dims {
		l, okl := d.Lo.Bind(op.Consts).Eval(nil)
		h, okh := d.Hi.Bind(op.Consts).Eval(nil)
		if !okl || !okh {
			numeric = false
			break
		}
		total *= h - l + 1
	}
	if numeric {
		if sc, ok := analysis.EvalInt(op.Call.SendCount, op.Consts); ok && sc*rw.np != total {
			return failf(pos, "sendcount %d × np %d ≠ %d elements of %s: the call does not exchange the whole array", sc, rw.np, total, op.Call.As)
		}
	}
	rw.typeExpr = op.Call.SendType
	rw.commExpr = op.Call.Comm
	return nil
}

// allocateNames reserves the fresh variable names shared by all cases.
func (rw *rewriter) allocateNames() {
	f := rw.fresh
	rw.vMe = f.Fresh("cc_me")
	rw.vNp = f.Fresh("cc_np")
	rw.vIerr = f.Fresh("cc_ierr")
	rw.vNreq = f.Fresh("cc_nreq")
	rw.vTile = f.Fresh("cc_tile")
	rw.vLo = f.Fresh("cc_lo")
	rw.vTo = f.Fresh("cc_to")
	rw.vFrom = f.Fresh("cc_from")
	rw.vJ = f.Fresh("cc_j")
	rw.vOff = f.Fresh("cc_off")
	rw.vReqs = f.Fresh("cc_reqs")
}

// declareInts appends an integer declaration for the named scalars.
func (rw *rewriter) declareInts(names ...string) {
	d := &ftn.Decl{Type: ftn.TypeSpec{Base: ftn.TInteger}}
	for _, n := range names {
		d.Entities = append(d.Entities, &ftn.Entity{Name: n})
	}
	rw.op.Unit.Decls = append(rw.op.Unit.Decls, d)
}

// declareReqArray appends "integer cc_reqs(1:n)".
func (rw *rewriter) declareReqArray(n int64) {
	d := &ftn.Decl{Type: ftn.TypeSpec{Base: ftn.TInteger}}
	d.Entities = append(d.Entities, &ftn.Entity{
		Name: rw.vReqs,
		Dims: []ftn.Dim{{Lo: ftn.Int(1), Hi: ftn.Int(n)}},
	})
	rw.op.Unit.Decls = append(rw.op.Unit.Decls, d)
}

// Common generated fragments.

// assign builds "name = expr".
func assign(name string, rhs ftn.Expr) ftn.Stmt {
	return &ftn.AssignStmt{LHS: ftn.Id(name), RHS: rhs}
}

// assignRef builds "ref = expr".
func assignRef(ref *ftn.Ref, rhs ftn.Expr) ftn.Stmt {
	return &ftn.AssignStmt{LHS: ref, RHS: rhs}
}

// call builds "call name(args)".
func call(name string, args ...ftn.Expr) ftn.Stmt {
	return &ftn.CallStmt{Name: name, Args: args}
}

// comment builds a preserved comment line.
func comment(text string) ftn.Stmt { return &ftn.CommentStmt{Text: "! " + text} }

// waitAllBlock builds:
//
//	if (nreq > 0) then
//	  call mpi_waitall(nreq, reqs, mpi_statuses_ignore, ierr)
//	  nreq = 0
//	endif
func (rw *rewriter) waitAllBlock() ftn.Stmt {
	return &ftn.IfStmt{
		Cond: ftn.Bin(">", ftn.Id(rw.vNreq), ftn.Int(0)),
		Then: []ftn.Stmt{
			call("mpi_waitall", ftn.Id(rw.vNreq), ftn.Id(rw.vReqs), ftn.Id("mpi_statuses_ignore"), ftn.Id(rw.vIerr)),
			assign(rw.vNreq, ftn.Int(0)),
		},
	}
}

// preLoopSetup builds the statements inserted immediately before ℓ:
// rank/size discovery, partition size, and per-execution counters.
func (rw *rewriter) preLoopSetup() []ftn.Stmt {
	return []ftn.Stmt{
		comment("pre-push setup (inserted by compuniformer)"),
		call("mpi_comm_rank", ftn.CloneExpr(rw.commExpr), ftn.Id(rw.vMe), ftn.Id(rw.vIerr)),
		call("mpi_comm_size", ftn.CloneExpr(rw.commExpr), ftn.Id(rw.vNp), ftn.Id(rw.vIerr)),
		assign(rw.vNreq, ftn.Int(0)),
		assign(rw.vTile, ftn.Int(0)),
	}
}

// incr builds "name = name + 1".
func incr(name string) ftn.Stmt {
	return assign(name, ftn.Add(ftn.Id(name), ftn.Int(1)))
}

// reqSlot returns "reqs(nreq)" (after an incr of nreq).
func (rw *rewriter) reqSlot() *ftn.Ref {
	return ftn.Call(rw.vReqs, ftn.Id(rw.vNreq))
}

// isend builds "nreq = nreq + 1; call mpi_isend(buf, count, type, to, tag, comm, reqs(nreq), ierr)".
func (rw *rewriter) isend(buf ftn.Expr, count ftn.Expr, to ftn.Expr) []ftn.Stmt {
	return []ftn.Stmt{
		incr(rw.vNreq),
		call("mpi_isend", buf, count, ftn.CloneExpr(rw.typeExpr), to,
			ftn.Id(rw.vTile), ftn.CloneExpr(rw.commExpr), rw.reqSlot(), ftn.Id(rw.vIerr)),
	}
}

// irecv builds the matching receive.
func (rw *rewriter) irecv(buf ftn.Expr, count ftn.Expr, from ftn.Expr) []ftn.Stmt {
	return []ftn.Stmt{
		incr(rw.vNreq),
		call("mpi_irecv", buf, count, ftn.CloneExpr(rw.typeExpr), from,
			ftn.Id(rw.vTile), ftn.CloneExpr(rw.commExpr), rw.reqSlot(), ftn.Id(rw.vIerr)),
	}
}

// spliceAroundL rewrites the parent statement list: inserts pre before ℓ,
// post after ℓ (and before C), and removes the original call C (§3.6 step 5).
func (rw *rewriter) spliceAroundL(pre, post []ftn.Stmt) {
	op := rw.op
	parent := *op.Parent
	var out []ftn.Stmt
	out = append(out, parent[:op.LIndex]...)
	out = append(out, pre...)
	out = append(out, parent[op.LIndex])
	out = append(out, post...)
	out = append(out, parent[op.LIndex+1:op.CallIndex]...)
	out = append(out, comment("original mpi_alltoall removed by compuniformer"))
	out = append(out, parent[op.CallIndex+1:]...)
	*op.Parent = out
}
