package transform

import (
	"repro/internal/analysis"
	"repro/internal/ftn"
)

// applyIndirect transforms an indirect-pattern site (§3.4, Fig. 3): the
// redundant copy loop ℓcp is removed, the temporary At gains a buffer
// dimension so a tile's worth of procedure results can be in flight at
// once, and the contents of At are sent directly (At → Ar replaces
// At → As → Ar).
func (rw *rewriter) applyIndirect() error {
	op := rw.op
	cl := op.CopyLoop
	pos := op.L.Pos()
	rank := len(op.AsDims)
	if len(op.ArDims) != rank {
		return failf(pos, "%s and %s have different ranks", op.Call.As, op.Call.Ar)
	}
	if op.L.Step != nil {
		return failf(pos, "the outer loop must have step 1")
	}
	lo0, ok1 := analysis.EvalInt(op.L.Lo, op.Consts)
	hi0, ok2 := analysis.EvalInt(op.L.Hi, op.Consts)
	if !ok1 || !ok2 {
		return failf(pos, "outer loop bounds must be numeric")
	}
	n := hi0 - lo0 + 1
	// Each outer iteration produces one whole slab (verified by the
	// analysis); iteration iy maps to last-dimension index lastLo+(iy-lo0).
	if n != rw.lastHi-rw.lastLo+1 {
		return failf(pos, "outer loop trip count %d does not match the last dimension extent %d", n, rw.lastHi-rw.lastLo+1)
	}
	if rw.psz%rw.k != 0 {
		return failf(pos, "tile size K=%d must divide the partition size %d", rw.k, rw.psz)
	}
	// The slab volume must equal the per-plane volume (prefix product).
	prefix := int64(1)
	for d := 0; d < rank-1; d++ {
		l, okl := op.AsDims[d].Lo.Bind(op.Consts).Eval(nil)
		h, okh := op.AsDims[d].Hi.Bind(op.Consts).Eval(nil)
		if !okl || !okh {
			return failf(pos, "dimension %d of %s is not numeric", d+1, op.Call.As)
		}
		prefix *= h - l + 1
	}
	if prefix != cl.Count {
		return failf(pos, "slab volume %d does not match the plane volume %d of %s", cl.Count, prefix, op.Call.As)
	}

	atLo, _ := cl.AtDims[0].Lo.Bind(op.Consts).Eval(nil)

	// 1. Expand At with a buffer dimension: at(lo:hi) -> at(lo:hi, 1:K).
	if err := rw.expandAt(); err != nil {
		return err
	}

	// 2. Redirect the fill call to the tile-local buffer:
	//    call p(..., at)  ->  call p(..., at(atLo, cc_buf)).
	vBuf := rw.fresh.Fresh("cc_buf")
	cl.Call.Args[cl.CallArgPos] = ftn.Call(cl.At, ftn.Int(atLo), ftn.Id(vBuf))
	bufAssign := assign(vBuf, ftn.Add(ftn.Mod(ftn.Sub(ftn.Id(op.L.Var), ftn.Int(lo0)), ftn.Int(rw.k)), ftn.Int(1)))

	// 3. Build the tile-end exchange. A tile covers K outer iterations =
	//    K consecutive planes, all owned by one rank (K divides psz).
	countExpr := ftn.Int(cl.Count * rw.k)
	vB := rw.fresh.Fresh("cc_b")
	prefixVars := make([]string, rank-1)
	for d := range prefixVars {
		prefixVars[d] = rw.fresh.Fresh("cc_c" + itoa(d+1))
	}

	// Receive start: ar(lo1, ..., lastLo + from*psz + off).
	recvRef := ftn.Call(op.Call.Ar)
	for d := 0; d < rank-1; d++ {
		recvRef.Args = append(recvRef.Args, affineToExpr(op.ArDims[d].Lo))
	}
	recvRef.Args = append(recvRef.Args, ftn.Add(rw.partitionStart(ftn.Id(rw.vFrom)), ftn.Id(rw.vOff)))

	recvLoop := doLoop(rw.vJ, ftn.Int(1), ftn.Sub(ftn.Id(rw.vNp), ftn.Int(1)), append(
		[]ftn.Stmt{assign(rw.vFrom, rw.ringPeer(false))},
		rw.irecv(recvRef, ftn.CloneExpr(countExpr), ftn.Id(rw.vFrom))...,
	))

	// Self copy: for each buffered plane b (1..K) copy at(:, b) into
	// ar(..., planeIdx) element-wise via the prefix dimension loops.
	planeIdx := ftn.Add(ftn.Add(rw.partitionStart(ftn.Id(rw.vMe)), ftn.Id(rw.vOff)), ftn.Sub(ftn.Id(vB), ftn.Int(1)))
	dstRef := ftn.Call(op.Call.Ar)
	for d := 0; d < rank-1; d++ {
		dstRef.Args = append(dstRef.Args, ftn.Id(prefixVars[d]))
	}
	dstRef.Args = append(dstRef.Args, planeIdx)
	// Linear index within the plane: (c2-lo2)*e1 + (c1-lo1) + atLo + cc_i? —
	// expressed directly: atIdx = atLo + Σ (c_d - lo_d)·stride_d.
	atIdx := ftn.Expr(ftn.Int(atLo))
	stride := int64(1)
	for d := 0; d < rank-1; d++ {
		l, _ := op.AsDims[d].Lo.Bind(op.Consts).Eval(nil)
		h, _ := op.AsDims[d].Hi.Bind(op.Consts).Eval(nil)
		term := ftn.Mul(ftn.Sub(ftn.Id(prefixVars[d]), ftn.Int(l)), ftn.Int(stride))
		atIdx = ftn.Add(atIdx, term)
		stride *= h - l + 1
	}
	var selfCopy ftn.Stmt = assignRef(dstRef, ftn.Call(cl.At, atIdx, ftn.Id(vB)))
	for d := rank - 2; d >= 0; d-- {
		selfCopy = doLoop(prefixVars[d], affineToExpr(op.AsDims[d].Lo), affineToExpr(op.AsDims[d].Hi), []ftn.Stmt{selfCopy})
	}
	selfCopy = doLoop(vB, ftn.Int(1), ftn.Int(rw.k), []ftn.Stmt{selfCopy})

	sendOrRecv := &ftn.IfStmt{
		Cond: ftn.Bin("/=", ftn.Id(rw.vTo), ftn.Id(rw.vMe)),
		Then: rw.isend(ftn.Call(cl.At, ftn.Int(atLo), ftn.Int(1)), countExpr, ftn.Id(rw.vTo)),
		Else: []ftn.Stmt{recvLoop, comment("local copy of this rank's own planes from the temporary"), selfCopy},
	}

	guard := &ftn.IfStmt{
		Cond: ftn.Bin("==", ftn.Mod(ftn.Add(ftn.Sub(ftn.Id(op.L.Var), ftn.Int(lo0)), ftn.Int(1)), ftn.Int(rw.k)), ftn.Int(0)),
		Then: []ftn.Stmt{
			comment("pre-push tile exchange of the temporary (inserted by compuniformer)"),
			// Tile's first plane index on the last dimension.
			assign(rw.vLo, ftn.Add(ftn.Sub(ftn.Id(op.L.Var), ftn.Int(lo0)), ftn.Int(rw.lastLo-rw.k+1))),
			incr(rw.vTile),
			assign(rw.vTo, ftn.Div(ftn.Sub(ftn.Id(rw.vLo), ftn.Int(rw.lastLo)), ftn.Int(rw.psz))),
			assign(rw.vOff, ftn.Sub(ftn.Sub(ftn.Id(rw.vLo), ftn.Int(rw.lastLo)), ftn.Mul(ftn.Id(rw.vTo), ftn.Int(rw.psz)))),
			sendOrRecv,
		},
	}

	// 4. Rewrite ℓ's body: buffer selection first, then the original
	//    statements with ℓcp REMOVED (§3.4), then at the tile start a wait
	//    that protects the buffered At planes still in flight, and the
	//    exchange at the tile end.
	waitAtStart := &ftn.IfStmt{
		Cond: ftn.Bin("==", ftn.Mod(ftn.Sub(ftn.Id(op.L.Var), ftn.Int(lo0)), ftn.Int(rw.k)), ftn.Int(0)),
		Then: []ftn.Stmt{rw.waitAllBlock()},
	}
	var body []ftn.Stmt
	body = append(body, comment("wait for the previous tile before refilling the temporary"), waitAtStart, bufAssign)
	for i, s := range op.L.Body {
		if i == cl.LoopIndex {
			body = append(body, comment("redundant copy loop removed by compuniformer"))
			continue
		}
		body = append(body, s)
	}
	body = append(body, guard)
	op.L.Body = body

	// Declarations and splice.
	rw.declareInts(rw.vMe, rw.vNp, rw.vIerr, rw.vNreq, rw.vTile, rw.vLo, rw.vTo, rw.vFrom, rw.vJ, rw.vOff, vBuf, vB)
	if rank > 1 {
		rw.declareInts(prefixVars...)
	}
	rw.declareReqArray(rw.np)
	post := []ftn.Stmt{
		comment("drain the last tile's communication (inserted by compuniformer)"),
		rw.waitAllBlock(),
	}
	rw.spliceAroundL(rw.preLoopSetup(), post)

	rw.res.TileCount = n / rw.k
	rw.res.Leftover = n % rw.k
	rw.res.MessagesTile = rw.np - 1
	rw.res.TileMsgElems = cl.Count * rw.k
	rw.res.Notes = append(rw.res.Notes,
		"copy loop eliminated; temporary expanded with a buffer dimension (double buffering across the tile)")
	return nil
}

// expandAt rewrites At's declaration from at(lo:hi) to at(lo:hi, 1:K).
func (rw *rewriter) expandAt() error {
	cl := rw.op.CopyLoop
	for _, d := range rw.op.Unit.Decls {
		for _, e := range d.Entities {
			if e.Name != cl.At {
				continue
			}
			dims := d.DimsOf(e)
			if len(dims) != 1 {
				return failf(rw.op.L.Pos(), "temporary %s is not one-dimensional", cl.At)
			}
			e.Dims = []ftn.Dim{
				{Lo: ftn.CloneExpr(dims[0].Lo), Hi: ftn.CloneExpr(dims[0].Hi)},
				{Lo: ftn.Int(1), Hi: ftn.Int(rw.k)},
			}
			// If dims came from a dimension attribute, detach this entity
			// into its own declaration to avoid changing siblings.
			if len(d.DimAttr) > 0 {
				return failf(rw.op.L.Pos(), "temporary %s declared via dimension attribute is unsupported", cl.At)
			}
			return nil
		}
	}
	return failf(rw.op.L.Pos(), "declaration of %s not found", cl.At)
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [8]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
