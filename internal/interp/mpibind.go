package interp

import (
	"repro/internal/ftn"
	"repro/internal/mpi"
)

// execCall dispatches CALL statements: MPI bindings first, then user
// subroutines.
func (m *machine) execCall(fr *frame, s *ftn.CallStmt) error {
	switch s.Name {
	case "mpi_init", "mpi_finalize":
		if len(s.Args) == 1 {
			return m.store(fr, s.Args[0], IntVal(0))
		}
		return nil
	case "mpi_comm_rank":
		if len(s.Args) != 3 {
			return rte(s.Pos(), "mpi_comm_rank needs 3 arguments")
		}
		if err := m.store(fr, s.Args[1], IntVal(int64(m.rank.Me()))); err != nil {
			return err
		}
		return m.store(fr, s.Args[2], IntVal(0))
	case "mpi_comm_size":
		if len(s.Args) != 3 {
			return rte(s.Pos(), "mpi_comm_size needs 3 arguments")
		}
		if err := m.store(fr, s.Args[1], IntVal(int64(m.rank.NP()))); err != nil {
			return err
		}
		return m.store(fr, s.Args[2], IntVal(0))
	case "mpi_barrier":
		m.rank.Barrier()
		if len(s.Args) == 2 {
			return m.store(fr, s.Args[1], IntVal(0))
		}
		return nil
	case "mpi_isend", "mpi_irecv":
		return m.execIsendIrecv(fr, s)
	case "mpi_send", "mpi_recv":
		return m.execBlockingSendRecv(fr, s)
	case "mpi_wait":
		return m.execWait(fr, s)
	case "mpi_waitall":
		return m.execWaitall(fr, s)
	case "mpi_alltoall":
		return m.execAlltoall(fr, s)
	case "flush":
		return nil // test helper: a no-op sink
	}
	return m.callUser(fr, s)
}

// bufferArg resolves an MPI buffer argument to (array, linear offset within
// the array's view).
func (m *machine) bufferArg(fr *frame, e ftn.Expr) (*Array, int64, error) {
	switch e := e.(type) {
	case *ftn.Ident:
		a, ok := fr.arr[e.Name]
		if !ok {
			return nil, 0, rte(e.Pos(), "MPI buffer %s is not an array", e.Name)
		}
		return a, 0, nil
	case *ftn.Ref:
		a, ok := fr.arr[e.Name]
		if !ok {
			return nil, 0, rte(e.Pos(), "MPI buffer %s is not an array", e.Name)
		}
		subs, err := m.evalSubs(fr, e.Args)
		if err != nil {
			return nil, 0, err
		}
		off, err := a.Linear(subs)
		if err != nil {
			return nil, 0, rte(e.Pos(), "%v", err)
		}
		return a, off, nil
	}
	return nil, 0, rte(e.Pos(), "bad MPI buffer argument")
}

// countTypeArgs evaluates the (count, datatype) pair, returning element
// count and element byte size.
func (m *machine) countTypeArgs(fr *frame, countE, typeE ftn.Expr) (int64, int64, error) {
	cv, err := m.evalExpr(fr, countE)
	if err != nil {
		return 0, 0, err
	}
	tv, err := m.evalExpr(fr, typeE)
	if err != nil {
		return 0, 0, err
	}
	bytes, ok := dtypeBytes(tv.AsInt())
	if !ok {
		return 0, 0, rte(typeE.Pos(), "unknown MPI datatype %d", tv.AsInt())
	}
	count := cv.AsInt()
	if count < 0 {
		return 0, 0, rte(countE.Pos(), "negative MPI count %d", count)
	}
	return count, bytes, nil
}

// addReq registers req in the handle table and returns its 1-based handle.
func (m *machine) addReq(req *mpi.Request) int64 {
	m.reqs = append(m.reqs, req)
	return int64(len(m.reqs))
}

// execIsendIrecv handles
// mpi_isend(buf, count, dtype, peer, tag, comm, request, ierr).
func (m *machine) execIsendIrecv(fr *frame, s *ftn.CallStmt) error {
	if len(s.Args) != 8 {
		return rte(s.Pos(), "%s needs 8 arguments", s.Name)
	}
	arr, off, err := m.bufferArg(fr, s.Args[0])
	if err != nil {
		return err
	}
	count, elemBytes, err := m.countTypeArgs(fr, s.Args[1], s.Args[2])
	if err != nil {
		return err
	}
	peerV, err := m.evalExpr(fr, s.Args[3])
	if err != nil {
		return err
	}
	tagV, err := m.evalExpr(fr, s.Args[4])
	if err != nil {
		return err
	}
	peer := int(peerV.AsInt())
	tag := int(tagV.AsInt())
	bytes := count * elemBytes
	var handle int64
	if s.Name == "mpi_isend" {
		req := m.rank.Isend(peer, tag, bytes, func() interface{} {
			p, cerr := arr.CopyOut(off, count)
			if cerr != nil {
				panic(cerr)
			}
			return p
		})
		handle = m.addReq(req)
	} else {
		req := m.rank.Irecv(peer, tag, bytes, func(p interface{}) {
			if cerr := arr.CopyIn(off, p); cerr != nil {
				panic(cerr)
			}
		})
		handle = m.addReq(req)
	}
	if err := m.store(fr, s.Args[6], IntVal(handle)); err != nil {
		return err
	}
	return m.store(fr, s.Args[7], IntVal(0))
}

// execBlockingSendRecv handles
// mpi_send(buf, count, dtype, peer, tag, comm, ierr) and
// mpi_recv(buf, count, dtype, peer, tag, comm, status, ierr).
func (m *machine) execBlockingSendRecv(fr *frame, s *ftn.CallStmt) error {
	want := 7
	if s.Name == "mpi_recv" {
		want = 8
	}
	if len(s.Args) != want {
		return rte(s.Pos(), "%s needs %d arguments", s.Name, want)
	}
	arr, off, err := m.bufferArg(fr, s.Args[0])
	if err != nil {
		return err
	}
	count, elemBytes, err := m.countTypeArgs(fr, s.Args[1], s.Args[2])
	if err != nil {
		return err
	}
	peerV, err := m.evalExpr(fr, s.Args[3])
	if err != nil {
		return err
	}
	tagV, err := m.evalExpr(fr, s.Args[4])
	if err != nil {
		return err
	}
	peer, tag := int(peerV.AsInt()), int(tagV.AsInt())
	bytes := count * elemBytes
	if s.Name == "mpi_send" {
		m.rank.Send(peer, tag, bytes, func() interface{} {
			p, cerr := arr.CopyOut(off, count)
			if cerr != nil {
				panic(cerr)
			}
			return p
		})
		return m.store(fr, s.Args[6], IntVal(0))
	}
	m.rank.Recv(peer, tag, bytes, func(p interface{}) {
		if cerr := arr.CopyIn(off, p); cerr != nil {
			panic(cerr)
		}
	})
	return m.store(fr, s.Args[7], IntVal(0))
}

// execWait handles mpi_wait(request, status, ierr).
func (m *machine) execWait(fr *frame, s *ftn.CallStmt) error {
	if len(s.Args) != 3 {
		return rte(s.Pos(), "mpi_wait needs 3 arguments")
	}
	hv, err := m.evalExpr(fr, s.Args[0])
	if err != nil {
		return err
	}
	if err := m.waitHandle(hv.AsInt(), s.Pos()); err != nil {
		return err
	}
	// Invalidate the handle.
	if err := m.store(fr, s.Args[0], IntVal(0)); err != nil {
		return err
	}
	return m.store(fr, s.Args[2], IntVal(0))
}

// execWaitall handles mpi_waitall(count, requests, statuses, ierr).
func (m *machine) execWaitall(fr *frame, s *ftn.CallStmt) error {
	if len(s.Args) != 4 {
		return rte(s.Pos(), "mpi_waitall needs 4 arguments")
	}
	nv, err := m.evalExpr(fr, s.Args[0])
	if err != nil {
		return err
	}
	arr, off, err := m.bufferArg(fr, s.Args[1])
	if err != nil {
		return err
	}
	n := nv.AsInt()
	for i := int64(0); i < n; i++ {
		h := arr.Store.get(arr.Offset + off + i).AsInt()
		if err := m.waitHandle(h, s.Pos()); err != nil {
			return err
		}
		arr.Store.set(arr.Offset+off+i, IntVal(0))
	}
	return m.store(fr, s.Args[3], IntVal(0))
}

func (m *machine) waitHandle(h int64, pos ftn.Pos) error {
	if h == 0 {
		return nil // null request
	}
	if h < 1 || h > int64(len(m.reqs)) {
		return rte(pos, "invalid MPI request handle %d", h)
	}
	req := m.reqs[h-1]
	if req == nil {
		return nil // already waited
	}
	m.rank.Wait(req)
	m.reqs[h-1] = nil
	return nil
}

// execAlltoall handles mpi_alltoall(sbuf, scount, stype, rbuf, rcount,
// rtype, comm, ierr) with the partition semantics of §3.5: As is divided
// into NP consecutive blocks of scount elements.
func (m *machine) execAlltoall(fr *frame, s *ftn.CallStmt) error {
	if len(s.Args) != 8 {
		return rte(s.Pos(), "mpi_alltoall needs 8 arguments")
	}
	sArr, sOff, err := m.bufferArg(fr, s.Args[0])
	if err != nil {
		return err
	}
	sCount, sBytes, err := m.countTypeArgs(fr, s.Args[1], s.Args[2])
	if err != nil {
		return err
	}
	rArr, rOff, err := m.bufferArg(fr, s.Args[3])
	if err != nil {
		return err
	}
	rCount, _, err := m.countTypeArgs(fr, s.Args[4], s.Args[5])
	if err != nil {
		return err
	}
	var cbErr error
	m.rank.Alltoall(sCount*sBytes,
		func(dst int) interface{} {
			p, cerr := sArr.CopyOut(sOff+int64(dst)*sCount, sCount)
			if cerr != nil && cbErr == nil {
				cbErr = cerr
			}
			return p
		},
		func(src int, p interface{}) {
			if cerr := rArr.CopyIn(rOff+int64(src)*rCount, p); cerr != nil && cbErr == nil {
				cbErr = cerr
			}
		})
	if cbErr != nil {
		return rte(s.Pos(), "%v", cbErr)
	}
	return m.store(fr, s.Args[7], IntVal(0))
}

// callUser invokes a user subroutine with Fortran reference semantics.
func (m *machine) callUser(fr *frame, s *ftn.CallStmt) error {
	sub := m.prog.File.Subroutine(s.Name)
	if sub == nil {
		return rte(s.Pos(), "unknown subroutine %s", s.Name)
	}
	if len(s.Args) != len(sub.Params) {
		return rte(s.Pos(), "call to %s with %d args, wants %d", s.Name, len(s.Args), len(sub.Params))
	}
	m.charge(m.costs.CallOver)
	bindScal := map[string]*Value{}
	bindArr := map[string]*Array{}
	// Copy-back temporaries for value expressions passed to scalar dummies.
	for i, arg := range s.Args {
		dummy := sub.Params[i]
		switch a := arg.(type) {
		case *ftn.Ident:
			if arr, ok := fr.arr[a.Name]; ok {
				bindArr[dummy] = arr
				continue
			}
			p, err := m.lookupScalar(fr, a.Name, a.Pos())
			if err != nil {
				return err
			}
			bindScal[dummy] = p // alias: writes are visible to the caller
		case *ftn.Ref:
			if arr, ok := fr.arr[a.Name]; ok {
				subs, err := m.evalSubs(fr, a.Args)
				if err != nil {
					return err
				}
				off, err := arr.Linear(subs)
				if err != nil {
					return err
				}
				// Sequence association: the callee's dummy views the
				// caller's storage from this element on; the callee's own
				// declaration re-shapes it in newFrame.
				view, err := View(dummy, arr, off, []DimBound{{Lo: 1, Assumed: true}})
				if err != nil {
					return rte(a.Pos(), "%v", err)
				}
				bindArr[dummy] = view
				continue
			}
			v, err := m.evalExpr(fr, arg)
			if err != nil {
				return err
			}
			tmp := v
			bindScal[dummy] = &tmp
		default:
			v, err := m.evalExpr(fr, arg)
			if err != nil {
				return err
			}
			tmp := v
			bindScal[dummy] = &tmp
		}
	}
	nfr, err := m.newFrame(sub, bindScal, bindArr)
	if err != nil {
		return err
	}
	err = m.execStmts(nfr, sub.Body)
	if err == errReturn {
		err = nil
	}
	return err
}
