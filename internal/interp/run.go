package interp

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/ftn"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// Program is a loaded, runnable program.
type Program struct {
	File  *ftn.File
	Costs CostModel
}

// Load parses src into a runnable program with default costs.
func Load(src string) (*Program, error) {
	f, err := ftn.Parse(src)
	if err != nil {
		return nil, err
	}
	return LoadFile(f)
}

// LoadFile wraps an already-parsed file.
func LoadFile(f *ftn.File) (*Program, error) {
	if f.Program() == nil {
		return nil, fmt.Errorf("interp: no program unit")
	}
	return &Program{File: f, Costs: DefaultCosts()}, nil
}

// Result is the outcome of one simulated run.
type Result struct {
	Stats  *mpi.RunStats
	Output [][]string               // per-rank PRINT lines
	Arrays []map[string]interface{} // per-rank final arrays ([]int64 / []float64)
	Errors []error                  // per-rank runtime errors (nil entries when clean)
}

// Elapsed returns the virtual completion time.
func (r *Result) Elapsed() netsim.Time { return r.Stats.End }

// AvgRankTimes returns the average per-rank compute and blocked (waiting)
// times — the split the paper's Figure 1 discussion is about: pre-pushing
// converts blocked time into overlapped compute.
func (r *Result) AvgRankTimes() (compute, blocked netsim.Time) {
	if r.Stats == nil || len(r.Stats.PerRank) == 0 {
		return 0, 0
	}
	for _, rs := range r.Stats.PerRank {
		compute += rs.Compute
		blocked += rs.Blocked
	}
	n := netsim.Time(len(r.Stats.PerRank))
	return compute / n, blocked / n
}

// OutputLines flattens per-rank output with rank prefixes, sorted by rank
// (deterministic across schedulers).
func (r *Result) OutputLines() []string {
	var out []string
	for rank, lines := range r.Output {
		for _, l := range lines {
			out = append(out, fmt.Sprintf("[%d] %s", rank, l))
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Run executes the program on np simulated ranks over the profile.
func (p *Program) Run(np int, prof netsim.Profile) (*Result, error) {
	res := &Result{
		Output: make([][]string, np),
		Arrays: make([]map[string]interface{}, np),
		Errors: make([]error, np),
	}
	var mu sync.Mutex
	stats, err := mpi.Run(np, prof, func(r *mpi.Rank) {
		m := &machine{prog: p, rank: r, costs: p.Costs}
		runErr := m.runMain()
		mu.Lock()
		res.Output[r.Me()] = m.out
		res.Errors[r.Me()] = runErr
		if m.main != nil {
			snap := map[string]interface{}{}
			for name, a := range m.main.arr {
				snap[name] = a.Snapshot()
			}
			res.Arrays[r.Me()] = snap
		}
		mu.Unlock()
	})
	if err != nil {
		// A rank error that ended a rank early usually surfaces as a
		// deadlock; attach the per-rank errors for diagnosis.
		for i, re := range res.Errors {
			if re != nil {
				return res, fmt.Errorf("%v (rank %d: %v)", err, i, re)
			}
		}
		return res, err
	}
	res.Stats = stats
	for i, re := range res.Errors {
		if re != nil {
			return res, fmt.Errorf("rank %d: %v", i, re)
		}
	}
	return res, nil
}

// runMain executes the main program unit on this machine's rank.
func (m *machine) runMain() (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("interp panic: %v", r)
		}
	}()
	unit := m.prog.File.Program()
	fr, err := m.newFrame(unit, nil, nil)
	if err != nil {
		return err
	}
	m.main = fr
	err = m.execStmts(fr, unit.Body)
	if err == errStop || err == errReturn {
		err = nil
	}
	return err
}

// SameOutput reports whether two results printed identical lines and hold
// identical final arrays on every rank; used by the §4-style correctness
// evaluation (transformed output must be identical to the original).
func SameOutput(a, b *Result) (bool, string) {
	if same, why := Sameprinted(a, b); !same {
		return false, why
	}
	for r := range a.Arrays {
		for name, av := range a.Arrays[r] {
			bv, ok := b.Arrays[r][name]
			if !ok {
				continue // arrays added by the transformation (cc_reqs…)
			}
			if diff := diffData(av, bv); diff != "" {
				return false, fmt.Sprintf("rank %d array %s: %s", r, name, diff)
			}
		}
	}
	return true, ""
}

// SameObservable compares printed output plus only the named arrays. The
// indirect transformation (§3.4) makes the send array dead — it is never
// written again — so equivalence there is judged on the program's output
// and its receive array.
func SameObservable(a, b *Result, arrays ...string) (bool, string) {
	if same, why := SameprintedAndArrays(a, b, arrays); !same {
		return false, why
	}
	return true, ""
}

// Sameprinted compares only the printed output of two results.
func Sameprinted(a, b *Result) (bool, string) {
	if len(a.Output) != len(b.Output) {
		return false, "different rank counts"
	}
	for r := range a.Output {
		if len(a.Output[r]) != len(b.Output[r]) {
			return false, fmt.Sprintf("rank %d: %d vs %d output lines", r, len(a.Output[r]), len(b.Output[r]))
		}
		for i := range a.Output[r] {
			if a.Output[r][i] != b.Output[r][i] {
				return false, fmt.Sprintf("rank %d line %d: %q vs %q", r, i, a.Output[r][i], b.Output[r][i])
			}
		}
	}
	return true, ""
}

// SameprintedAndArrays compares output plus the named arrays on each rank.
func SameprintedAndArrays(a, b *Result, arrays []string) (bool, string) {
	if same, why := Sameprinted(a, b); !same {
		return false, why
	}
	for r := range a.Arrays {
		for _, name := range arrays {
			av, okA := a.Arrays[r][name]
			bv, okB := b.Arrays[r][name]
			if !okA || !okB {
				return false, fmt.Sprintf("rank %d: array %s missing", r, name)
			}
			if diff := diffData(av, bv); diff != "" {
				return false, fmt.Sprintf("rank %d array %s: %s", r, name, diff)
			}
		}
	}
	return true, ""
}

func diffData(a, b interface{}) string {
	switch av := a.(type) {
	case []int64:
		bv, ok := b.([]int64)
		if !ok {
			return "kind mismatch"
		}
		if len(av) != len(bv) {
			return fmt.Sprintf("len %d vs %d", len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				return fmt.Sprintf("element %d: %d vs %d", i, av[i], bv[i])
			}
		}
	case []float64:
		bv, ok := b.([]float64)
		if !ok {
			return "kind mismatch"
		}
		if len(av) != len(bv) {
			return fmt.Sprintf("len %d vs %d", len(av), len(bv))
		}
		for i := range av {
			if av[i] != bv[i] {
				return fmt.Sprintf("element %d: %g vs %g", i, av[i], bv[i])
			}
		}
	}
	return ""
}
