package interp

import (
	"fmt"
	"math"

	"repro/internal/ftn"
)

// evalExpr evaluates an expression in fr.
func (m *machine) evalExpr(fr *frame, e ftn.Expr) (Value, error) {
	switch e := e.(type) {
	case *ftn.IntLit:
		return IntVal(e.Value), nil
	case *ftn.RealLit:
		return RealVal(e.Value), nil
	case *ftn.StrLit:
		return StrVal(e.Value), nil
	case *ftn.BoolLit:
		return BoolVal(e.Value), nil
	case *ftn.Ident:
		return m.evalIdent(fr, e)
	case *ftn.Unary:
		x, err := m.evalExpr(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		m.charge(m.costs.Op)
		switch e.Op {
		case "-":
			if x.Kind == KInt {
				return IntVal(-x.I), nil
			}
			return RealVal(-x.AsReal()), nil
		case "+":
			return x, nil
		case ".not.":
			if x.Kind != KBool {
				return Value{}, rte(e.Pos(), ".not. of non-logical")
			}
			return BoolVal(!x.B), nil
		}
		return Value{}, rte(e.Pos(), "bad unary operator %q", e.Op)
	case *ftn.Binary:
		return m.evalBinary(fr, e)
	case *ftn.Ref:
		return m.evalRef(fr, e)
	}
	return Value{}, rte(e.Pos(), "unsupported expression %T", e)
}

func (m *machine) evalIdent(fr *frame, e *ftn.Ident) (Value, error) {
	if v, ok := fr.consts[e.Name]; ok {
		return v, nil
	}
	if v, ok := fr.scal[e.Name]; ok {
		return *v, nil
	}
	if v, ok := mpiConsts[e.Name]; ok {
		return IntVal(v), nil
	}
	if a, ok := fr.arr[e.Name]; ok {
		// Bare array name in an expression context is not a value; callers
		// that accept whole arrays (MPI buffers, procedure args) intercept
		// before evaluating. Reaching here is an error.
		_ = a
		return Value{}, rte(e.Pos(), "whole-array reference %s in scalar context", e.Name)
	}
	if fr.implicitNone {
		return Value{}, rte(e.Pos(), "undeclared name %s", e.Name)
	}
	// Implicit typing: reading an undefined variable yields its zero.
	p, err := m.lookupScalar(fr, e.Name, e.Pos())
	if err != nil {
		return Value{}, err
	}
	return *p, nil
}

func (m *machine) evalBinary(fr *frame, e *ftn.Binary) (Value, error) {
	// Short-circuit logical operators (Fortran does not guarantee
	// evaluation order, so short-circuiting is a valid strategy).
	if e.Op == ".and." || e.Op == ".or." {
		x, err := m.evalExpr(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if x.Kind != KBool {
			return Value{}, rte(e.Pos(), "%s of non-logical", e.Op)
		}
		m.charge(m.costs.Op)
		if e.Op == ".and." && !x.B {
			return BoolVal(false), nil
		}
		if e.Op == ".or." && x.B {
			return BoolVal(true), nil
		}
		y, err := m.evalExpr(fr, e.Y)
		if err != nil {
			return Value{}, err
		}
		if y.Kind != KBool {
			return Value{}, rte(e.Pos(), "%s of non-logical", e.Op)
		}
		return y, nil
	}
	x, err := m.evalExpr(fr, e.X)
	if err != nil {
		return Value{}, err
	}
	y, err := m.evalExpr(fr, e.Y)
	if err != nil {
		return Value{}, err
	}
	m.charge(m.costs.Op)
	switch e.Op {
	case "+", "-", "*", "/", "**":
		v, err2 := numericBinop(e.Op, x, y)
		if err2 != nil {
			return Value{}, rte(e.Pos(), "%v", err2)
		}
		return v, nil
	default:
		v, err2 := compare(e.Op, x, y)
		if err2 != nil {
			return Value{}, rte(e.Pos(), "%v", err2)
		}
		return v, nil
	}
}

// evalRef evaluates name(args): array element load or intrinsic call.
func (m *machine) evalRef(fr *frame, e *ftn.Ref) (Value, error) {
	if a, ok := fr.arr[e.Name]; ok {
		subs, err := m.evalSubs(fr, e.Args)
		if err != nil {
			return Value{}, err
		}
		m.charge(m.costs.Load)
		v, err := a.Get(subs)
		if err != nil {
			return Value{}, rte(e.Pos(), "%v", err)
		}
		return v, nil
	}
	return m.evalIntrinsic(fr, e)
}

// evalIntrinsic dispatches the supported intrinsic functions.
func (m *machine) evalIntrinsic(fr *frame, e *ftn.Ref) (Value, error) {
	args := make([]Value, len(e.Args))
	for i, a := range e.Args {
		v, err := m.evalExpr(fr, a)
		if err != nil {
			return Value{}, err
		}
		args[i] = v
	}
	m.charge(m.costs.Op)
	if e.Name == "mpi_wtime" {
		return RealVal(m.rank.Now().Seconds()), nil
	}
	v, err := EvalIntrinsic(e.Name, args)
	if err != nil {
		return Value{}, rte(e.Pos(), "%v", err)
	}
	return v, nil
}

// IsIntrinsic reports whether name is a supported intrinsic function
// (mpi_wtime included). Compiled engines use it to classify references at
// compile time the way evalRef classifies them at run time.
func IsIntrinsic(name string) bool {
	switch name {
	case "mod", "min", "max", "abs", "int", "real", "dble", "float", "nint",
		"sqrt", "exp", "log", "sin", "cos", "iand", "ior", "ieor", "ishft",
		"mpi_wtime":
		return true
	}
	return false
}

// EvalIntrinsic applies the named intrinsic to already-evaluated arguments.
// It is the single definition of intrinsic semantics, shared by the
// tree-walking interpreter and the compiled engine. mpi_wtime is excluded
// (it reads the rank clock, which lives with the caller).
func EvalIntrinsic(name string, args []Value) (Value, error) {
	bad := func() (Value, error) {
		return Value{}, fmt.Errorf("bad arguments to intrinsic %s", name)
	}
	switch name {
	case "mod":
		if len(args) != 2 {
			return bad()
		}
		if args[0].Kind == KInt && args[1].Kind == KInt {
			if args[1].I == 0 {
				return Value{}, fmt.Errorf("mod by zero")
			}
			return IntVal(args[0].I % args[1].I), nil
		}
		return RealVal(math.Mod(args[0].AsReal(), args[1].AsReal())), nil
	case "min":
		if len(args) < 1 {
			return bad()
		}
		out := args[0]
		for _, a := range args[1:] {
			if a.Kind == KInt && out.Kind == KInt {
				if a.I < out.I {
					out = a
				}
			} else if a.AsReal() < out.AsReal() {
				out = a
			}
		}
		return out, nil
	case "max":
		if len(args) < 1 {
			return bad()
		}
		out := args[0]
		for _, a := range args[1:] {
			if a.Kind == KInt && out.Kind == KInt {
				if a.I > out.I {
					out = a
				}
			} else if a.AsReal() > out.AsReal() {
				out = a
			}
		}
		return out, nil
	case "abs":
		if len(args) != 1 {
			return bad()
		}
		if args[0].Kind == KInt {
			if args[0].I < 0 {
				return IntVal(-args[0].I), nil
			}
			return args[0], nil
		}
		return RealVal(math.Abs(args[0].AsReal())), nil
	case "int":
		if len(args) != 1 {
			return bad()
		}
		return IntVal(args[0].AsInt()), nil
	case "real", "dble", "float":
		if len(args) != 1 {
			return bad()
		}
		return RealVal(args[0].AsReal()), nil
	case "nint":
		if len(args) != 1 {
			return bad()
		}
		return IntVal(int64(math.Round(args[0].AsReal()))), nil
	case "sqrt":
		if len(args) != 1 {
			return bad()
		}
		return RealVal(math.Sqrt(args[0].AsReal())), nil
	case "exp":
		if len(args) != 1 {
			return bad()
		}
		return RealVal(math.Exp(args[0].AsReal())), nil
	case "log":
		if len(args) != 1 {
			return bad()
		}
		return RealVal(math.Log(args[0].AsReal())), nil
	case "sin":
		if len(args) != 1 {
			return bad()
		}
		return RealVal(math.Sin(args[0].AsReal())), nil
	case "cos":
		if len(args) != 1 {
			return bad()
		}
		return RealVal(math.Cos(args[0].AsReal())), nil
	case "iand":
		if len(args) != 2 {
			return bad()
		}
		return IntVal(args[0].AsInt() & args[1].AsInt()), nil
	case "ior":
		if len(args) != 2 {
			return bad()
		}
		return IntVal(args[0].AsInt() | args[1].AsInt()), nil
	case "ieor":
		if len(args) != 2 {
			return bad()
		}
		return IntVal(args[0].AsInt() ^ args[1].AsInt()), nil
	case "ishft":
		if len(args) != 2 {
			return bad()
		}
		sh := args[1].AsInt()
		if sh >= 0 {
			return IntVal(args[0].AsInt() << uint(sh)), nil
		}
		return IntVal(args[0].AsInt() >> uint(-sh)), nil
	}
	return Value{}, fmt.Errorf("unknown array or intrinsic %q", name)
}
