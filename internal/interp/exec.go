package interp

import (
	"errors"
	"fmt"

	"repro/internal/ftn"
	"repro/internal/mpi"
	"repro/internal/netsim"
)

// CostModel maps interpreted operations to virtual CPU time. The defaults
// approximate a mid-2000s cluster node (a few hundred MFLOP/s with loop
// overheads), which is the right scale for the paper's era.
type CostModel struct {
	Op       netsim.Time // per arithmetic/relational/logical operation
	Assign   netsim.Time // per scalar assignment
	Store    netsim.Time // per array element store
	Load     netsim.Time // per array element load
	LoopIter netsim.Time // per loop iteration overhead
	CallOver netsim.Time // per procedure call overhead
}

// DefaultCosts returns the standard cost model.
func DefaultCosts() CostModel {
	return CostModel{
		Op:       2 * netsim.Nanosecond,
		Assign:   1 * netsim.Nanosecond,
		Store:    4 * netsim.Nanosecond,
		Load:     2 * netsim.Nanosecond,
		LoopIter: 2 * netsim.Nanosecond,
		CallOver: 20 * netsim.Nanosecond,
	}
}

// Control-flow sentinels.
var (
	errReturn = errors.New("return")
	errStop   = errors.New("stop")
	errExit   = errors.New("exit")
	errCycle  = errors.New("cycle")
)

// runtimeError wraps an error with a source position.
type runtimeError struct {
	Pos ftn.Pos
	Err error
}

// Error implements the error interface.
func (e *runtimeError) Error() string { return fmt.Sprintf("%s: %v", e.Pos, e.Err) }

func rte(pos ftn.Pos, format string, args ...interface{}) error {
	return &runtimeError{Pos: pos, Err: fmt.Errorf(format, args...)}
}

// frame is one procedure activation.
type frame struct {
	unit         *ftn.Unit
	scal         map[string]*Value
	arr          map[string]*Array
	consts       map[string]Value
	implicitNone bool
}

// machine executes one rank's program.
type machine struct {
	prog  *Program
	rank  *mpi.Rank
	costs CostModel
	out   []string
	reqs  []*mpi.Request
	main  *frame
	err   error
}

func (m *machine) charge(t netsim.Time) { m.rank.Compute(t) }

// predefined MPI named constants.
var mpiConsts = map[string]int64{
	"mpi_comm_world":       91,
	"mpi_integer":          1,
	"mpi_real":             2,
	"mpi_double_precision": 3,
	"mpi_statuses_ignore":  -909,
	"mpi_status_ignore":    -909,
	"mpi_status_size":      4,
	"mpi_success":          0,
}

// dtypeBytes maps an MPI datatype constant to its Fortran element size.
func dtypeBytes(v int64) (int64, bool) {
	switch v {
	case 1, 2:
		return 4, true
	case 3:
		return 8, true
	}
	return 0, false
}

// MPIConstant resolves a predefined MPI named constant (exported so the
// compiled engine binds against the same table).
func MPIConstant(name string) (int64, bool) {
	v, ok := mpiConsts[name]
	return v, ok
}

// DTypeBytes is the exported datatype-size table.
func DTypeBytes(v int64) (int64, bool) { return dtypeBytes(v) }

// KindOf maps a declared base type to its runtime kind (exported for the
// compiled engine's declaration lowering).
func KindOf(b ftn.BaseType) Kind { return kindOf(b) }

// ZeroOf returns the zero value of a kind (exported).
func ZeroOf(k Kind) Value { return zeroOf(k) }

// CoerceDecl converts an initializer to the declared base type (exported).
func CoerceDecl(b ftn.BaseType, v Value) Value { return coerceDecl(b, v) }

// CoerceStore converts v to the kind of the existing slot value (exported;
// the compiled engine's scalar stores go through the same conversion).
func CoerceStore(old, v Value) Value { return coerceStore(old, v) }

// newFrame builds and initializes an activation for unit. For subroutines,
// bindScal/bindArr carry the dummy-argument bindings established by the
// caller (scalar aliases and array views).
func (m *machine) newFrame(unit *ftn.Unit, bindScal map[string]*Value, bindArr map[string]*Array) (*frame, error) {
	fr := &frame{
		unit:         unit,
		scal:         map[string]*Value{},
		arr:          map[string]*Array{},
		consts:       map[string]Value{},
		implicitNone: unit.ImplicitNone,
	}
	for n, v := range bindScal {
		fr.scal[n] = v
	}
	// Pass 1: named constants (may reference each other in order).
	for _, d := range unit.Decls {
		if !d.Parameter {
			continue
		}
		for _, e := range d.Entities {
			if e.Init == nil {
				continue
			}
			v, err := m.evalExpr(fr, e.Init)
			if err != nil {
				return nil, err
			}
			fr.consts[e.Name] = coerceDecl(d.Type.Base, v)
		}
	}
	// Pass 2: variables and arrays.
	for _, d := range unit.Decls {
		if d.Parameter {
			continue
		}
		kind := kindOf(d.Type.Base)
		for _, e := range d.Entities {
			dims := d.DimsOf(e)
			if len(dims) == 0 {
				// Scalar: keep an existing binding (dummy), else allocate.
				if _, ok := fr.scal[e.Name]; ok {
					continue
				}
				v := zeroOf(kind)
				if e.Init != nil {
					iv, err := m.evalExpr(fr, e.Init)
					if err != nil {
						return nil, err
					}
					v = coerceDecl(d.Type.Base, iv)
				}
				fr.scal[e.Name] = &v
				continue
			}
			// Array: evaluate bounds in this frame.
			bounds, err := m.evalDims(fr, dims)
			if err != nil {
				return nil, err
			}
			if backing, ok := bindArr[e.Name]; ok {
				view, err := View(e.Name, backing, 0, bounds)
				if err != nil {
					return nil, rte(d.Pos(), "%v", err)
				}
				fr.arr[e.Name] = view
				continue
			}
			a, err := NewArray(e.Name, kind, bounds)
			if err != nil {
				return nil, rte(d.Pos(), "%v", err)
			}
			fr.arr[e.Name] = a
		}
	}
	// Dummy arrays without a matching declaration are used as declared by
	// the caller (rare; treat the caller's view as-is).
	for n, a := range bindArr {
		if _, ok := fr.arr[n]; !ok {
			fr.arr[n] = a
		}
	}
	return fr, nil
}

func kindOf(b ftn.BaseType) Kind {
	switch b {
	case ftn.TReal, ftn.TDouble:
		return KReal
	case ftn.TLogical:
		return KBool
	case ftn.TCharacter:
		return KStr
	}
	return KInt
}

func zeroOf(k Kind) Value {
	switch k {
	case KReal:
		return RealVal(0)
	case KBool:
		return BoolVal(false)
	case KStr:
		return StrVal("")
	}
	return IntVal(0)
}

func coerceDecl(b ftn.BaseType, v Value) Value {
	switch kindOf(b) {
	case KReal:
		return RealVal(v.AsReal())
	case KInt:
		return IntVal(v.AsInt())
	}
	return v
}

func (m *machine) evalDims(fr *frame, dims []ftn.Dim) ([]DimBound, error) {
	out := make([]DimBound, len(dims))
	for i, d := range dims {
		lo := int64(1)
		if d.Lo != nil {
			v, err := m.evalExpr(fr, d.Lo)
			if err != nil {
				return nil, err
			}
			lo = v.AsInt()
		}
		if d.Hi == nil {
			out[i] = DimBound{Lo: lo, Assumed: true}
			continue
		}
		hi, err := m.evalExpr(fr, d.Hi)
		if err != nil {
			return nil, err
		}
		out[i] = DimBound{Lo: lo, Hi: hi.AsInt()}
	}
	return out, nil
}

// lookupScalar finds or (under implicit typing) creates a scalar.
func (m *machine) lookupScalar(fr *frame, name string, pos ftn.Pos) (*Value, error) {
	if v, ok := fr.scal[name]; ok {
		return v, nil
	}
	if _, ok := fr.consts[name]; ok {
		return nil, rte(pos, "cannot assign to named constant %s", name)
	}
	if fr.implicitNone {
		return nil, rte(pos, "undeclared variable %s under implicit none", name)
	}
	var v Value
	if name[0] >= 'i' && name[0] <= 'n' {
		v = IntVal(0)
	} else {
		v = RealVal(0)
	}
	fr.scal[name] = &v
	return &v, nil
}

// execStmts runs a statement list.
func (m *machine) execStmts(fr *frame, stmts []ftn.Stmt) error {
	for _, s := range stmts {
		if err := m.execStmt(fr, s); err != nil {
			return err
		}
	}
	return nil
}

func (m *machine) execStmt(fr *frame, s ftn.Stmt) error {
	switch s := s.(type) {
	case *ftn.CommentStmt, *ftn.ContinueStmt:
		return nil
	case *ftn.AssignStmt:
		return m.execAssign(fr, s)
	case *ftn.DoStmt:
		return m.execDo(fr, s)
	case *ftn.IfStmt:
		cond, err := m.evalExpr(fr, s.Cond)
		if err != nil {
			return err
		}
		m.charge(m.costs.Op)
		if cond.Kind != KBool {
			return rte(s.Pos(), "IF condition is not logical")
		}
		if cond.B {
			return m.execStmts(fr, s.Then)
		}
		return m.execStmts(fr, s.Else)
	case *ftn.CallStmt:
		return m.execCall(fr, s)
	case *ftn.PrintStmt:
		vals := make([]Value, len(s.Args))
		for i, a := range s.Args {
			v, err := m.evalExpr(fr, a)
			if err != nil {
				return err
			}
			vals[i] = v
		}
		m.out = append(m.out, formatPrintLine(vals))
		return nil
	case *ftn.ReturnStmt:
		return errReturn
	case *ftn.StopStmt:
		return errStop
	case *ftn.ExitStmt:
		return errExit
	case *ftn.CycleStmt:
		return errCycle
	}
	return rte(s.Pos(), "unsupported statement %T", s)
}

func (m *machine) execAssign(fr *frame, s *ftn.AssignStmt) error {
	v, err := m.evalExpr(fr, s.RHS)
	if err != nil {
		return err
	}
	return m.store(fr, s.LHS, v)
}

// store writes v to an assignable designator.
func (m *machine) store(fr *frame, lhs ftn.Expr, v Value) error {
	switch lhs := lhs.(type) {
	case *ftn.Ident:
		p, err := m.lookupScalar(fr, lhs.Name, lhs.Pos())
		if err != nil {
			return err
		}
		m.charge(m.costs.Assign)
		*p = coerceStore(*p, v)
		return nil
	case *ftn.Ref:
		a, ok := fr.arr[lhs.Name]
		if !ok {
			return rte(lhs.Pos(), "assignment to %s, which is not an array", lhs.Name)
		}
		subs, err := m.evalSubs(fr, lhs.Args)
		if err != nil {
			return err
		}
		m.charge(m.costs.Store)
		if err := a.Set(subs, v); err != nil {
			return rte(lhs.Pos(), "%v", err)
		}
		return nil
	}
	return rte(lhs.Pos(), "bad assignment target %T", lhs)
}

// coerceStore converts v to the kind of the existing slot value.
func coerceStore(old, v Value) Value {
	switch old.Kind {
	case KInt:
		return IntVal(v.AsInt())
	case KReal:
		return RealVal(v.AsReal())
	case KBool:
		if v.Kind == KBool {
			return v
		}
		return BoolVal(v.AsInt() != 0)
	case KStr:
		if v.Kind == KStr {
			return v
		}
	}
	return v
}

func (m *machine) evalSubs(fr *frame, args []ftn.Expr) ([]int64, error) {
	subs := make([]int64, len(args))
	for i, a := range args {
		v, err := m.evalExpr(fr, a)
		if err != nil {
			return nil, err
		}
		subs[i] = v.AsInt()
	}
	return subs, nil
}

func (m *machine) execDo(fr *frame, s *ftn.DoStmt) error {
	loVal, err := m.evalExpr(fr, s.Lo)
	if err != nil {
		return err
	}
	hiVal, err := m.evalExpr(fr, s.Hi)
	if err != nil {
		return err
	}
	step := int64(1)
	if s.Step != nil {
		sv, err := m.evalExpr(fr, s.Step)
		if err != nil {
			return err
		}
		step = sv.AsInt()
		if step == 0 {
			return rte(s.Pos(), "DO step is zero")
		}
	}
	lo, hi := loVal.AsInt(), hiVal.AsInt()
	// Fortran trip count, computed once.
	trips := (hi - lo + step) / step
	if trips < 0 {
		trips = 0
	}
	vp, err := m.lookupScalar(fr, s.Var, s.Pos())
	if err != nil {
		return err
	}
	v := lo
	for t := int64(0); t < trips; t++ {
		*vp = IntVal(v)
		m.charge(m.costs.LoopIter)
		err := m.execStmts(fr, s.Body)
		switch err {
		case nil, errCycle:
		case errExit:
			// EXIT leaves the DO variable at its current iteration value.
			return nil
		default:
			return err
		}
		v += step
	}
	*vp = IntVal(v)
	return nil
}
