package interp

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

func run(t *testing.T, src string, np int) *Result {
	t.Helper()
	p, err := Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res, err := p.Run(np, netsim.MPICHGM())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestSerialBasics(t *testing.T) {
	src := `
program p
  implicit none
  integer i, s
  s = 0
  do i = 1, 10
    s = s + i
  enddo
  print *, 'sum =', s
end program p
`
	res := run(t, src, 1)
	if len(res.Output[0]) != 1 || res.Output[0][0] != "sum = 55" {
		t.Errorf("output = %v", res.Output[0])
	}
}

func TestArraysAndBounds(t *testing.T) {
	src := `
program p
  implicit none
  integer a(0:4, 1:3)
  integer i, j, s
  do j = 1, 3
    do i = 0, 4
      a(i, j) = i + 10*j
    enddo
  enddo
  s = a(0,1) + a(4,3)
  print *, s
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "44" {
		t.Errorf("output = %v", res.Output[0])
	}
	arr := res.Arrays[0]["a"].([]int64)
	if len(arr) != 15 {
		t.Fatalf("array size = %d", len(arr))
	}
	// Column-major: a(0,1) first, a(4,3) last.
	if arr[0] != 10 || arr[14] != 34 {
		t.Errorf("array = %v", arr)
	}
}

func TestOutOfBoundsCaught(t *testing.T) {
	src := `
program p
  implicit none
  integer a(1:5), i
  i = 9
  a(i) = 1
end program p
`
	p, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Run(1, netsim.MPICHGM()); err == nil || !strings.Contains(err.Error(), "out of bounds") {
		t.Errorf("err = %v, want out of bounds", err)
	}
}

func TestControlFlow(t *testing.T) {
	src := `
program p
  implicit none
  integer i, hits
  hits = 0
  do i = 1, 100
    if (i == 3) cycle
    if (i > 5) exit
    hits = hits + 1
  enddo
  print *, hits, i
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "4 6" {
		t.Errorf("output = %v", res.Output[0])
	}
}

func TestDoStepAndTripSemantics(t *testing.T) {
	src := `
program p
  implicit none
  integer i, n
  n = 0
  do i = 10, 1, -2
    n = n + 1
  enddo
  print *, n, i
  do i = 5, 4
    n = n + 100
  enddo
  print *, n, i
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "5 0" {
		t.Errorf("negative step: %v", res.Output[0])
	}
	// Zero-trip loop leaves i at lo (lo + 0*step).
	if res.Output[0][1] != "5 5" {
		t.Errorf("zero trip: %v", res.Output[0])
	}
}

func TestRealArithmeticAndIntrinsics(t *testing.T) {
	src := `
program p
  implicit none
  real x
  integer i
  x = sqrt(16.0) + abs(-2.0)
  i = mod(17, 5) + max(3, 7) + min(2, 8)
  print *, x
  print *, i
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "6" {
		t.Errorf("x = %v", res.Output[0][0])
	}
	if res.Output[0][1] != "11" {
		t.Errorf("i = %v", res.Output[0][1])
	}
}

func TestSubroutineReferenceSemantics(t *testing.T) {
	src := `
program p
  implicit none
  integer x, a(1:5)
  x = 1
  call bump(x)
  print *, x
  call fill(a, 5)
  print *, a(1), a(5)
end program p

subroutine bump(v)
  integer v
  v = v + 41
end subroutine bump

subroutine fill(arr, n)
  integer n
  integer arr(n)
  integer i
  do i = 1, n
    arr(i) = i*i
  enddo
end subroutine fill
`
	res := run(t, src, 1)
	if res.Output[0][0] != "42" {
		t.Errorf("scalar byref: %v", res.Output[0])
	}
	if res.Output[0][1] != "1 25" {
		t.Errorf("array byref: %v", res.Output[0])
	}
}

func TestSequenceAssociation(t *testing.T) {
	// Passing a(3) gives the callee a view from element 3 on; a 2-D array
	// element works the same way (the Compuniformer's expanded-At calls
	// rely on this).
	src := `
program p
  implicit none
  integer a(1:10), b(1:4, 1:3)
  integer i
  do i = 1, 10
    a(i) = 0
  enddo
  call put3(a(4))
  print *, a(4), a(5), a(6)
  call put3(b(1, 2))
  print *, b(1,2), b(2,2), b(3,2), b(1,1)
end program p

subroutine put3(v)
  integer v(*)
  v(1) = 7
  v(2) = 8
  v(3) = 9
end subroutine put3
`
	res := run(t, src, 1)
	if res.Output[0][0] != "7 8 9" {
		t.Errorf("1-D seq assoc: %v", res.Output[0])
	}
	if res.Output[0][1] != "7 8 9 0" {
		t.Errorf("2-D seq assoc: %v", res.Output[0])
	}
}

func TestImplicitTyping(t *testing.T) {
	src := `
program p
  i = 3
  x = 1.5
  print *, i, x
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "3 1.5" {
		t.Errorf("implicit typing: %v", res.Output[0])
	}
}

func TestMPIRankSizeBarrier(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer me, np, ierr
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  call mpi_comm_size(mpi_comm_world, np, ierr)
  call mpi_barrier(mpi_comm_world, ierr)
  print *, 'rank', me, 'of', np
  call mpi_finalize(ierr)
end program p
`
	res := run(t, src, 4)
	for r := 0; r < 4; r++ {
		want := "rank " + string(rune('0'+r)) + " of 4"
		if res.Output[r][0] != want {
			t.Errorf("rank %d: %q want %q", r, res.Output[r][0], want)
		}
	}
}

func TestMPISendRecvProgram(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer me, np, ierr
  integer buf(1:4)
  integer i
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  call mpi_comm_size(mpi_comm_world, np, ierr)
  if (me == 0) then
    do i = 1, 4
      buf(i) = i*11
    enddo
    call mpi_send(buf, 4, mpi_integer, 1, 5, mpi_comm_world, ierr)
  else
    call mpi_recv(buf, 4, mpi_integer, 0, 5, mpi_comm_world, mpi_status_ignore, ierr)
    print *, buf(1), buf(4)
  endif
  call mpi_finalize(ierr)
end program p
`
	res := run(t, src, 2)
	if res.Output[1][0] != "11 44" {
		t.Errorf("recv output: %v", res.Output[1])
	}
}

func TestMPIIsendIrecvWait(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer me, np, ierr, req1, req2
  integer sb(1:8), rb(1:8)
  integer i, peer
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  call mpi_comm_size(mpi_comm_world, np, ierr)
  do i = 1, 8
    sb(i) = me*100 + i
  enddo
  peer = 1 - me
  call mpi_irecv(rb, 8, mpi_integer, peer, 0, mpi_comm_world, req1, ierr)
  call mpi_isend(sb, 8, mpi_integer, peer, 0, mpi_comm_world, req2, ierr)
  call mpi_wait(req1, mpi_status_ignore, ierr)
  call mpi_wait(req2, mpi_status_ignore, ierr)
  print *, rb(1), rb(8)
  call mpi_finalize(ierr)
end program p
`
	res := run(t, src, 2)
	// Rank 0's peer is 1 (values 1*100+i); rank 1's peer is 0 (values i).
	if res.Output[0][0] != "101 108" || res.Output[1][0] != "1 8" {
		t.Errorf("outputs: %v / %v", res.Output[0], res.Output[1])
	}
}

func TestMPIAlltoallProgram(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer, parameter :: np = 4
  integer me, nprocs, ierr
  integer as(1:8), ar(1:8)
  integer i
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  call mpi_comm_size(mpi_comm_world, nprocs, ierr)
  do i = 1, 8
    as(i) = me*1000 + i
  enddo
  call mpi_alltoall(as, 2, mpi_integer, ar, 2, mpi_integer, mpi_comm_world, ierr)
  print *, ar(1), ar(2), ar(7), ar(8)
  call mpi_finalize(ierr)
end program p
`
	res := run(t, src, 4)
	// Rank r receives from src s elements as(2s.me+1..): ar(2s+1) = s*1000 + 2r+1.
	for r := 0; r < 4; r++ {
		want := []int64{int64(0*1000 + 2*r + 1), int64(0*1000 + 2*r + 2), int64(3*1000 + 2*r + 1), int64(3*1000 + 2*r + 2)}
		wantStr := ""
		for i, w := range want {
			if i > 0 {
				wantStr += " "
			}
			wantStr += itoa64(w)
		}
		if res.Output[r][0] != wantStr {
			t.Errorf("rank %d: %q want %q", r, res.Output[r][0], wantStr)
		}
	}
}

func itoa64(v int64) string {
	if v == 0 {
		return "0"
	}
	neg := v < 0
	if neg {
		v = -v
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

func TestMPIWtime(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  real t0
  integer i, s, ierr
  call mpi_init(ierr)
  t0 = mpi_wtime()
  s = 0
  do i = 1, 1000
    s = s + i
  enddo
  if (mpi_wtime() >= t0) then
    print *, 'time advanced'
  endif
  call mpi_finalize(ierr)
end program p
`
	res := run(t, src, 1)
	if len(res.Output[0]) != 1 {
		t.Errorf("wtime output: %v", res.Output[0])
	}
}

func TestDeterministicRuns(t *testing.T) {
	src := `
program p
  implicit none
  include 'mpif.h'
  integer me, np, ierr
  integer as(1:16), ar(1:16)
  integer i, iy
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do iy = 1, 3
    do i = 1, 16
      as(i) = me + i*iy
    enddo
    call mpi_alltoall(as, 4, mpi_integer, ar, 4, mpi_integer, mpi_comm_world, ierr)
  enddo
  print *, ar(1), ar(16)
  call mpi_finalize(ierr)
end program p
`
	p, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := p.Run(4, netsim.MPICHTCP())
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Load(src)
	r2, err := p2.Run(4, netsim.MPICHTCP())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Elapsed() != r2.Elapsed() {
		t.Errorf("nondeterministic elapsed: %v vs %v", r1.Elapsed(), r2.Elapsed())
	}
	if same, why := SameOutput(r1, r2); !same {
		t.Errorf("nondeterministic output: %s", why)
	}
}
