package interp

import "fmt"

// storage is the backing memory of a Fortran array (column-major).
type storage struct {
	kind  Kind
	ints  []int64
	reals []float64
}

func newStorage(kind Kind, n int64) *storage {
	s := &storage{kind: kind}
	switch kind {
	case KInt, KBool:
		s.ints = make([]int64, n)
	default:
		s.reals = make([]float64, n)
	}
	return s
}

func (s *storage) len() int64 {
	if s.ints != nil {
		return int64(len(s.ints))
	}
	return int64(len(s.reals))
}

func (s *storage) get(i int64) Value {
	if s.kind == KReal {
		return RealVal(s.reals[i])
	}
	if s.kind == KBool {
		return BoolVal(s.ints[i] != 0)
	}
	return IntVal(s.ints[i])
}

func (s *storage) set(i int64, v Value) {
	switch s.kind {
	case KReal:
		s.reals[i] = v.AsReal()
	case KBool:
		if v.B {
			s.ints[i] = 1
		} else {
			s.ints[i] = 0
		}
	default:
		s.ints[i] = v.AsInt()
	}
}

// DimBound is one dimension's inclusive bounds; Assumed marks a '*' upper
// bound (dummy arrays sized by the caller).
type DimBound struct {
	Lo, Hi  int64
	Assumed bool
}

// Extent returns the dimension's element count.
func (d DimBound) Extent() int64 { return d.Hi - d.Lo + 1 }

// Array is a (possibly aliased) view of column-major storage: dummy
// arguments share the caller's backing with an element offset (Fortran
// sequence association).
type Array struct {
	Name    string
	Store   *storage
	Offset  int64 // linear element offset into Store
	Dims    []DimBound
	strides []int64
}

// NewArray allocates a fresh array.
func NewArray(name string, kind Kind, dims []DimBound) (*Array, error) {
	n := int64(1)
	for _, d := range dims {
		if d.Assumed {
			return nil, fmt.Errorf("array %s: assumed size in allocation", name)
		}
		if d.Extent() < 0 {
			return nil, fmt.Errorf("array %s: negative extent %d:%d", name, d.Lo, d.Hi)
		}
		n *= d.Extent()
	}
	a := &Array{Name: name, Store: newStorage(kind, n), Dims: dims}
	a.computeStrides()
	return a, nil
}

// View builds a dummy-argument view of backing storage starting at offset,
// with the dummy's declared dims; an assumed-size final dimension absorbs
// the remaining elements.
func View(name string, backing *Array, offset int64, dims []DimBound) (*Array, error) {
	abs := backing.Offset + offset
	if abs < 0 || abs > backing.Store.len() {
		return nil, fmt.Errorf("array %s: view offset %d out of range", name, abs)
	}
	a := &Array{Name: name, Store: backing.Store, Offset: abs, Dims: dims}
	// Resolve an assumed-size last dimension against the remaining length.
	if n := len(dims); n > 0 && dims[n-1].Assumed {
		inner := int64(1)
		for _, d := range dims[:n-1] {
			inner *= d.Extent()
		}
		remain := backing.Store.len() - abs
		if inner <= 0 {
			inner = 1
		}
		a.Dims = append([]DimBound(nil), dims...)
		a.Dims[n-1] = DimBound{Lo: dims[n-1].Lo, Hi: dims[n-1].Lo + remain/inner - 1}
	}
	a.computeStrides()
	return a, nil
}

func (a *Array) computeStrides() {
	a.strides = make([]int64, len(a.Dims))
	s := int64(1)
	for d := 0; d < len(a.Dims); d++ {
		a.strides[d] = s
		s *= a.Dims[d].Extent()
	}
}

// Size returns the number of elements the view covers.
func (a *Array) Size() int64 {
	n := int64(1)
	for _, d := range a.Dims {
		n *= d.Extent()
	}
	return n
}

// Linear converts subscripts to a 0-based linear offset within the view.
func (a *Array) Linear(subs []int64) (int64, error) {
	if len(subs) != len(a.Dims) {
		// Sequence-association escape: a single subscript into a
		// multi-dimensional array addresses it linearly (F77 idiom used by
		// MPI buffer arguments).
		if len(subs) == 1 {
			i := subs[0] - a.Dims[0].Lo
			if i < 0 || a.Offset+i >= a.Store.len() {
				return 0, fmt.Errorf("array %s: linear subscript %d out of range", a.Name, subs[0])
			}
			return i, nil
		}
		return 0, fmt.Errorf("array %s: rank %d reference to rank-%d array", a.Name, len(subs), len(a.Dims))
	}
	var off int64
	for d, s := range subs {
		if s < a.Dims[d].Lo || s > a.Dims[d].Hi {
			return 0, fmt.Errorf("array %s: subscript %d of dimension %d out of bounds %d:%d",
				a.Name, s, d+1, a.Dims[d].Lo, a.Dims[d].Hi)
		}
		off += (s - a.Dims[d].Lo) * a.strides[d]
	}
	return off, nil
}

// Get reads the element at the given subscripts.
func (a *Array) Get(subs []int64) (Value, error) {
	off, err := a.Linear(subs)
	if err != nil {
		return Value{}, err
	}
	return a.Store.get(a.Offset + off), nil
}

// Set writes the element at the given subscripts.
func (a *Array) Set(subs []int64, v Value) error {
	off, err := a.Linear(subs)
	if err != nil {
		return err
	}
	a.Store.set(a.Offset+off, v)
	return nil
}

// CopyOut snapshots count elements starting at linear offset off (0-based
// within the view) — the payload of a send.
func (a *Array) CopyOut(off, count int64) (interface{}, error) {
	start := a.Offset + off
	if start < 0 || start+count > a.Store.len() {
		return nil, fmt.Errorf("array %s: send window [%d,%d) out of range", a.Name, off, off+count)
	}
	if a.Store.kind == KReal {
		out := make([]float64, count)
		copy(out, a.Store.reals[start:start+count])
		return out, nil
	}
	out := make([]int64, count)
	copy(out, a.Store.ints[start:start+count])
	return out, nil
}

// CopyIn stores a received payload at linear offset off within the view.
func (a *Array) CopyIn(off int64, payload interface{}) error {
	start := a.Offset + off
	switch p := payload.(type) {
	case []int64:
		if start+int64(len(p)) > a.Store.len() {
			return fmt.Errorf("array %s: recv window out of range", a.Name)
		}
		if a.Store.kind == KReal {
			for i, v := range p {
				a.Store.reals[start+int64(i)] = float64(v)
			}
			return nil
		}
		copy(a.Store.ints[start:], p)
	case []float64:
		if start+int64(len(p)) > a.Store.len() {
			return fmt.Errorf("array %s: recv window out of range", a.Name)
		}
		if a.Store.kind == KReal {
			copy(a.Store.reals[start:], p)
			return nil
		}
		for i, v := range p {
			a.Store.ints[start+int64(i)] = int64(v)
		}
	case nil:
		return fmt.Errorf("array %s: nil payload", a.Name)
	default:
		return fmt.Errorf("array %s: unsupported payload %T", a.Name, payload)
	}
	return nil
}

// Idx1 computes the linear offset of a single-subscript reference without
// a subscript slice: the rank-1 access, or the F77 sequence-association
// escape into a multi-dimensional array. Bounds rules and error wording
// match Linear exactly; the compiled engine uses these fixed-rank forms on
// its hot path.
func (a *Array) Idx1(s int64) (int64, error) {
	if len(a.Dims) != 1 {
		i := s - a.Dims[0].Lo
		if i < 0 || a.Offset+i >= a.Store.len() {
			return 0, fmt.Errorf("array %s: linear subscript %d out of range", a.Name, s)
		}
		return i, nil
	}
	if s < a.Dims[0].Lo || s > a.Dims[0].Hi {
		return 0, fmt.Errorf("array %s: subscript %d of dimension 1 out of bounds %d:%d",
			a.Name, s, a.Dims[0].Lo, a.Dims[0].Hi)
	}
	return (s - a.Dims[0].Lo) * a.strides[0], nil
}

// Idx2 computes the linear offset of a rank-2 reference (see Idx1).
func (a *Array) Idx2(s1, s2 int64) (int64, error) {
	if len(a.Dims) != 2 {
		return 0, fmt.Errorf("array %s: rank 2 reference to rank-%d array", a.Name, len(a.Dims))
	}
	if s1 < a.Dims[0].Lo || s1 > a.Dims[0].Hi {
		return 0, fmt.Errorf("array %s: subscript %d of dimension 1 out of bounds %d:%d",
			a.Name, s1, a.Dims[0].Lo, a.Dims[0].Hi)
	}
	if s2 < a.Dims[1].Lo || s2 > a.Dims[1].Hi {
		return 0, fmt.Errorf("array %s: subscript %d of dimension 2 out of bounds %d:%d",
			a.Name, s2, a.Dims[1].Lo, a.Dims[1].Hi)
	}
	return (s1-a.Dims[0].Lo)*a.strides[0] + (s2-a.Dims[1].Lo)*a.strides[1], nil
}

// Idx3 computes the linear offset of a rank-3 reference (see Idx1).
func (a *Array) Idx3(s1, s2, s3 int64) (int64, error) {
	if len(a.Dims) != 3 {
		return 0, fmt.Errorf("array %s: rank 3 reference to rank-%d array", a.Name, len(a.Dims))
	}
	if s1 < a.Dims[0].Lo || s1 > a.Dims[0].Hi {
		return 0, fmt.Errorf("array %s: subscript %d of dimension 1 out of bounds %d:%d",
			a.Name, s1, a.Dims[0].Lo, a.Dims[0].Hi)
	}
	if s2 < a.Dims[1].Lo || s2 > a.Dims[1].Hi {
		return 0, fmt.Errorf("array %s: subscript %d of dimension 2 out of bounds %d:%d",
			a.Name, s2, a.Dims[1].Lo, a.Dims[1].Hi)
	}
	if s3 < a.Dims[2].Lo || s3 > a.Dims[2].Hi {
		return 0, fmt.Errorf("array %s: subscript %d of dimension 3 out of bounds %d:%d",
			a.Name, s3, a.Dims[2].Lo, a.Dims[2].Hi)
	}
	return (s1-a.Dims[0].Lo)*a.strides[0] + (s2-a.Dims[1].Lo)*a.strides[1] +
		(s3-a.Dims[2].Lo)*a.strides[2], nil
}

// RawGet reads the element at linear offset off (0-based within the view)
// without bounds-adjusting subscripts — the raw access MPI_WAITALL uses to
// walk a request-handle array. Exported for the compiled engine.
func (a *Array) RawGet(off int64) Value { return a.Store.get(a.Offset + off) }

// RawSet writes the element at linear offset off within the view (see
// RawGet).
func (a *Array) RawSet(off int64, v Value) { a.Store.set(a.Offset+off, v) }

// Kind returns the element kind of the backing storage.
func (a *Array) Kind() Kind { return a.Store.kind }

// Snapshot copies the whole view's contents as []Value-free raw data for
// equivalence checks.
func (a *Array) Snapshot() interface{} {
	n := a.Size()
	if a.Store.kind == KReal {
		out := make([]float64, n)
		copy(out, a.Store.reals[a.Offset:a.Offset+n])
		return out
	}
	out := make([]int64, n)
	copy(out, a.Store.ints[a.Offset:a.Offset+n])
	return out
}
