// Package interp executes programs in the ftn subset on simulated MPI
// ranks: every rank runs the same program against the netsim virtual
// cluster, computation advances virtual time through a configurable cost
// model, and the MPI_* calls bind to the mpi runtime. It is the evaluation
// harness of the reproduction: original and transformed programs run under
// identical conditions and their outputs and final array states can be
// compared exactly.
package interp

import (
	"fmt"
	"math"
	"strings"
)

// Kind is a runtime value kind.
type Kind int

// Value kinds.
const (
	KInt Kind = iota
	KReal
	KBool
	KStr
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KInt:
		return "integer"
	case KReal:
		return "real"
	case KBool:
		return "logical"
	case KStr:
		return "character"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is a compact tagged scalar.
type Value struct {
	Kind Kind
	I    int64
	R    float64
	B    bool
	S    string
}

// IntVal builds an integer value.
func IntVal(i int64) Value { return Value{Kind: KInt, I: i} }

// RealVal builds a real value.
func RealVal(r float64) Value { return Value{Kind: KReal, R: r} }

// BoolVal builds a logical value.
func BoolVal(b bool) Value { return Value{Kind: KBool, B: b} }

// StrVal builds a character value.
func StrVal(s string) Value { return Value{Kind: KStr, S: s} }

// AsReal converts to float64 (integer widens).
func (v Value) AsReal() float64 {
	if v.Kind == KInt {
		return float64(v.I)
	}
	return v.R
}

// AsInt converts to int64 (real truncates toward zero, as Fortran INT does).
func (v Value) AsInt() int64 {
	if v.Kind == KReal {
		return int64(v.R)
	}
	return v.I
}

// Format renders the value the way our PRINT statement does.
func (v Value) Format() string {
	switch v.Kind {
	case KInt:
		return fmt.Sprintf("%d", v.I)
	case KReal:
		return trimFloat(v.R)
	case KBool:
		if v.B {
			return "T"
		}
		return "F"
	case KStr:
		return v.S
	}
	return "?"
}

func trimFloat(f float64) string {
	s := fmt.Sprintf("%.6g", f)
	return s
}

// numericBinop applies an arithmetic operator with Fortran promotion rules.
func numericBinop(op string, a, b Value) (Value, error) {
	if a.Kind == KInt && b.Kind == KInt {
		switch op {
		case "+":
			return IntVal(a.I + b.I), nil
		case "-":
			return IntVal(a.I - b.I), nil
		case "*":
			return IntVal(a.I * b.I), nil
		case "/":
			if b.I == 0 {
				return Value{}, fmt.Errorf("integer division by zero")
			}
			return IntVal(a.I / b.I), nil
		case "**":
			if b.I < 0 {
				return IntVal(0), nil // Fortran integer pow with negative exp
			}
			r := int64(1)
			base := a.I
			for e := b.I; e > 0; e-- {
				r *= base
			}
			return IntVal(r), nil
		}
		return Value{}, fmt.Errorf("bad integer operator %q", op)
	}
	x, y := a.AsReal(), b.AsReal()
	switch op {
	case "+":
		return RealVal(x + y), nil
	case "-":
		return RealVal(x - y), nil
	case "*":
		return RealVal(x * y), nil
	case "/":
		return RealVal(x / y), nil
	case "**":
		return RealVal(powFloat(x, y)), nil
	}
	return Value{}, fmt.Errorf("bad real operator %q", op)
}

func powFloat(x, y float64) float64 { return math.Pow(x, y) }

// compare applies a relational operator.
func compare(op string, a, b Value) (Value, error) {
	if a.Kind == KStr && b.Kind == KStr {
		switch op {
		case "==":
			return BoolVal(a.S == b.S), nil
		case "/=":
			return BoolVal(a.S != b.S), nil
		case "<":
			return BoolVal(a.S < b.S), nil
		case "<=":
			return BoolVal(a.S <= b.S), nil
		case ">":
			return BoolVal(a.S > b.S), nil
		case ">=":
			return BoolVal(a.S >= b.S), nil
		}
	}
	if a.Kind == KInt && b.Kind == KInt {
		switch op {
		case "==":
			return BoolVal(a.I == b.I), nil
		case "/=":
			return BoolVal(a.I != b.I), nil
		case "<":
			return BoolVal(a.I < b.I), nil
		case "<=":
			return BoolVal(a.I <= b.I), nil
		case ">":
			return BoolVal(a.I > b.I), nil
		case ">=":
			return BoolVal(a.I >= b.I), nil
		}
	}
	x, y := a.AsReal(), b.AsReal()
	switch op {
	case "==":
		return BoolVal(x == y), nil
	case "/=":
		return BoolVal(x != y), nil
	case "<":
		return BoolVal(x < y), nil
	case "<=":
		return BoolVal(x <= y), nil
	case ">":
		return BoolVal(x > y), nil
	case ">=":
		return BoolVal(x >= y), nil
	}
	return Value{}, fmt.Errorf("bad comparison %q", op)
}

// formatPrintLine renders PRINT arguments like a Fortran list-directed
// write (single spaces between items).
func formatPrintLine(vals []Value) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = v.Format()
	}
	return strings.Join(parts, " ")
}

// FormatPrintLine is the exported PRINT formatter, shared with the compiled
// engine so both produce byte-identical output lines.
func FormatPrintLine(vals []Value) string { return formatPrintLine(vals) }

// NumericBinop applies an arithmetic operator with Fortran promotion rules
// (the exported form the compiled engine lowers Binary nodes onto).
func NumericBinop(op string, a, b Value) (Value, error) { return numericBinop(op, a, b) }

// Compare applies a relational operator (exported for the compiled engine).
func Compare(op string, a, b Value) (Value, error) { return compare(op, a, b) }
