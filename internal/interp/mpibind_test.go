package interp

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

// runOn loads src and runs it on np ranks under prof.
func runOn(t *testing.T, src string, np int, prof netsim.Profile) *Result {
	t.Helper()
	p, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(np, prof)
	if err != nil {
		t.Fatalf("run under %s: %v", prof, err)
	}
	return res
}

// pingPong exchanges an 8-element message between two ranks with
// isend/irecv/wait and prints what arrived.
const pingPong = `
program pp
  implicit none
  include 'mpif.h'
  integer me, ierr, req1, req2
  integer sb(1:8), rb(1:8)
  integer i, peer
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do i = 1, 8
    sb(i) = me*100 + i*3
  enddo
  peer = 1 - me
  call mpi_irecv(rb, 8, mpi_integer, peer, 0, mpi_comm_world, req1, ierr)
  call mpi_isend(sb, 8, mpi_integer, peer, 0, mpi_comm_world, req2, ierr)
  call mpi_wait(req1, mpi_status_ignore, ierr)
  call mpi_wait(req2, mpi_status_ignore, ierr)
  print *, rb(1), rb(8)
  call mpi_finalize(ierr)
end program pp
`

// TestSendRecvBothRegimesBothProfiles runs the same exchange in the eager
// regime (default 16 KiB threshold, 32-byte payload) and the rendezvous
// regime (threshold forced below the payload) under both network stacks:
// delivered data must be identical everywhere, only timing may differ.
func TestSendRecvBothRegimesBothProfiles(t *testing.T) {
	base := map[string]netsim.Profile{
		"tcp": netsim.MPICHTCP(),
		"gm":  netsim.MPICHGM(),
	}
	for name, prof := range base {
		for _, regime := range []string{"eager", "rendezvous"} {
			p := prof
			if regime == "rendezvous" {
				p = p.WithEagerThreshold(16) // 32-byte payload goes rendezvous
			}
			t.Run(name+"/"+regime, func(t *testing.T) {
				res := runOn(t, pingPong, 2, p)
				if got := res.Output[0][0]; got != "103 124" {
					t.Errorf("rank 0 received %q, want %q", got, "103 124")
				}
				if got := res.Output[1][0]; got != "3 24" {
					t.Errorf("rank 1 received %q, want %q", got, "3 24")
				}
				if res.Elapsed() <= 0 {
					t.Error("nonpositive elapsed time")
				}
			})
		}
	}
}

// overwriteAfterIsend posts a send, then overwrites the send buffer before
// waiting. The runtime snapshots eager payloads at post time but rendezvous
// payloads when the transfer actually starts — so the receiver observes the
// protocol difference, exactly as on hardware.
const overwriteAfterIsend = `
program ow
  implicit none
  include 'mpif.h'
  integer me, ierr, req
  integer sb(1:4), rb(1:4)
  integer i
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  if (me == 0) then
    do i = 1, 4
      sb(i) = 7
    enddo
    call mpi_isend(sb, 4, mpi_integer, 1, 0, mpi_comm_world, req, ierr)
    do i = 1, 4
      sb(i) = 9
    enddo
    call mpi_wait(req, mpi_status_ignore, ierr)
  else
    call mpi_recv(rb, 4, mpi_integer, 0, 0, mpi_comm_world, mpi_status_ignore, ierr)
    print *, rb(1), rb(4)
  endif
  call mpi_finalize(ierr)
end program ow
`

// TestEagerSnapshotsAtPostTime: in the eager regime the buffer is reusable
// immediately after the isend returns — the receiver gets the original
// values even though the sender overwrote the buffer before waiting.
func TestEagerSnapshotsAtPostTime(t *testing.T) {
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		res := runOn(t, overwriteAfterIsend, 2, prof)
		if got := res.Output[1][0]; got != "7 7" {
			t.Errorf("%s: receiver saw %q, want pre-overwrite %q", prof, got, "7 7")
		}
	}
}

// TestRendezvousReadsBufferAtTransferStart: with the threshold forced below
// the payload, the same program delivers the overwritten values — the
// rendezvous protocol reads the buffer only when the transfer starts, so
// overwriting an in-flight buffer produces wrong answers in simulation just
// as it would on hardware.
func TestRendezvousReadsBufferAtTransferStart(t *testing.T) {
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		res := runOn(t, overwriteAfterIsend, 2, prof.WithEagerThreshold(4))
		if got := res.Output[1][0]; got != "9 9" {
			t.Errorf("%s: receiver saw %q, want post-overwrite %q", prof, got, "9 9")
		}
	}
}

// TestRendezvousSlowerThanEagerOnTCP: on the host-progress stack the
// rendezvous handshake (RTS/CTS round trip) must cost wall time relative to
// the eager path for the same payload.
func TestRendezvousSlowerThanEagerOnTCP(t *testing.T) {
	prof := netsim.MPICHTCP()
	eager := runOn(t, pingPong, 2, prof).Elapsed()
	rdv := runOn(t, pingPong, 2, prof.WithEagerThreshold(16)).Elapsed()
	if rdv <= eager {
		t.Errorf("rendezvous (%s) should be slower than eager (%s) for a tiny payload", rdv, eager)
	}
}

// crossRecv is the classic head-to-head deadlock: both ranks issue a
// blocking receive first, so no send can ever be posted.
const crossRecv = `
program dl
  implicit none
  include 'mpif.h'
  integer me, ierr, peer
  integer sb(1:4), rb(1:4)
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  peer = 1 - me
  call mpi_recv(rb, 4, mpi_integer, peer, 0, mpi_comm_world, mpi_status_ignore, ierr)
  call mpi_send(sb, 4, mpi_integer, peer, 0, mpi_comm_world, ierr)
  call mpi_finalize(ierr)
end program dl
`

// TestDeadlockDetected: the engine must detect the cycle and report the
// blocked processes instead of hanging, under both profiles and regimes.
func TestDeadlockDetected(t *testing.T) {
	for _, prof := range []netsim.Profile{
		netsim.MPICHTCP(),
		netsim.MPICHGM(),
		netsim.MPICHGM().WithEagerThreshold(4),
	} {
		p, err := Load(crossRecv)
		if err != nil {
			t.Fatal(err)
		}
		_, err = p.Run(2, prof)
		if err == nil {
			t.Fatalf("%s: want deadlock error, got none", prof)
		}
		if !strings.Contains(err.Error(), "deadlock") {
			t.Errorf("%s: error %q does not mention deadlock", prof, err)
		}
	}
}

// TestWaitallReleasesRequests: mpi_waitall must complete every request in
// its handle array and zero the handles (a second waitall is a no-op on
// null requests).
func TestWaitallReleasesRequests(t *testing.T) {
	src := `
program wa
  implicit none
  include 'mpif.h'
  integer me, ierr, peer
  integer sb(1:4), rb(1:4)
  integer reqs(1:2)
  integer i
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  peer = 1 - me
  do i = 1, 4
    sb(i) = me*10 + i
  enddo
  call mpi_irecv(rb, 4, mpi_integer, peer, 0, mpi_comm_world, reqs(1), ierr)
  call mpi_isend(sb, 4, mpi_integer, peer, 0, mpi_comm_world, reqs(2), ierr)
  call mpi_waitall(2, reqs, mpi_statuses_ignore, ierr)
  call mpi_waitall(2, reqs, mpi_statuses_ignore, ierr)
  print *, rb(1), rb(4), reqs(1), reqs(2)
  call mpi_finalize(ierr)
end program wa
`
	for _, prof := range []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()} {
		res := runOn(t, src, 2, prof)
		if got := res.Output[0][0]; got != "11 14 0 0" {
			t.Errorf("%s rank 0: %q, want %q", prof, got, "11 14 0 0")
		}
		if got := res.Output[1][0]; got != "1 4 0 0" {
			t.Errorf("%s rank 1: %q, want %q", prof, got, "1 4 0 0")
		}
	}
}
