package interp

import (
	"strings"
	"testing"

	"repro/internal/netsim"
)

func expectError(t *testing.T, src string, np int, want string) {
	t.Helper()
	p, err := Load(src)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	_, err = p.Run(np, netsim.MPICHGM())
	if err == nil || !strings.Contains(err.Error(), want) {
		t.Errorf("err = %v, want containing %q", err, want)
	}
}

func TestErrUnknownSubroutine(t *testing.T) {
	expectError(t, `
program p
  call nosuch(1)
end program p
`, 1, "unknown subroutine")
}

func TestErrDivisionByZero(t *testing.T) {
	expectError(t, `
program p
  integer a, b
  b = 0
  a = 7/b
end program p
`, 1, "division by zero")
}

func TestErrModByZero(t *testing.T) {
	expectError(t, `
program p
  integer a
  a = mod(7, a - a)
end program p
`, 1, "mod by zero")
}

func TestErrImplicitNoneUndeclared(t *testing.T) {
	expectError(t, `
program p
  implicit none
  x = 1
end program p
`, 1, "implicit none")
}

func TestErrWrongArgCount(t *testing.T) {
	expectError(t, `
program p
  integer x
  call two(x)
end program p

subroutine two(a, b)
  integer a, b
  a = b
end subroutine two
`, 1, "wants 2")
}

func TestErrRankMismatch(t *testing.T) {
	expectError(t, `
program p
  integer a(1:4, 1:4)
  integer x
  x = a(1, 2, 3)
end program p
`, 1, "rank")
}

func TestErrAssignToParameter(t *testing.T) {
	expectError(t, `
program p
  integer, parameter :: n = 4
  n = 5
end program p
`, 1, "named constant")
}

func TestLogicalArraysAndOps(t *testing.T) {
	src := `
program p
  implicit none
  logical flags(1:4)
  logical a, b
  integer i, count
  do i = 1, 4
    flags(i) = mod(i, 2) == 0
  enddo
  count = 0
  do i = 1, 4
    if (flags(i)) then
      count = count + 1
    endif
  enddo
  a = .true.
  b = a .and. .not. (count == 99)
  print *, count, b
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "2 T" {
		t.Errorf("output = %v", res.Output[0])
	}
}

func TestCharacterVariables(t *testing.T) {
	src := `
program p
  implicit none
  character(len=8) name
  name = 'prepush'
  if (name == 'prepush') then
    print *, 'hello', name
  endif
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "hello prepush" {
		t.Errorf("output = %v", res.Output[0])
	}
}

func TestNestedSubroutineCalls(t *testing.T) {
	src := `
program p
  implicit none
  integer a(1:6), total
  call fill2(a, 6)
  total = a(1) + a(6)
  print *, total
end program p

subroutine fill2(v, n)
  integer n
  integer v(n)
  integer i
  do i = 1, n
    call setone(v(i), i)
  enddo
end subroutine fill2

subroutine setone(slot, val)
  integer slot(*)
  integer val
  slot(1) = val*val
end subroutine setone
`
	res := run(t, src, 1)
	if res.Output[0][0] != "37" {
		t.Errorf("output = %v", res.Output[0])
	}
}

func TestRealKernelMixedArithmetic(t *testing.T) {
	src := `
program p
  implicit none
  real x(1:8)
  integer i
  real total
  do i = 1, 8
    x(i) = real(i)/2.0 + 0.25
  enddo
  total = 0.0
  do i = 1, 8
    total = total + x(i)
  enddo
  print *, total
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "20" {
		t.Errorf("output = %v", res.Output[0])
	}
}

func TestDoubleDeclaredArrays(t *testing.T) {
	src := `
program p
  implicit none
  double precision d(1:3)
  integer i
  do i = 1, 3
    d(i) = i*1.5
  enddo
  print *, d(3)
end program p
`
	res := run(t, src, 1)
	if res.Output[0][0] != "4.5" {
		t.Errorf("output = %v", res.Output[0])
	}
}

func TestMultiRankVirtualTimeConsistency(t *testing.T) {
	// Ranks doing different amounts of compute must still synchronize at
	// the barrier; finish times reflect the slowest rank.
	src := `
program p
  implicit none
  include 'mpif.h'
  integer me, np, ierr, i, s
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  s = 0
  do i = 1, (me + 1)*1000
    s = s + i
  enddo
  call mpi_barrier(mpi_comm_world, ierr)
  call mpi_finalize(ierr)
end program p
`
	p, err := Load(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := p.Run(4, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PerRank[0].Compute >= res.Stats.PerRank[3].Compute {
		t.Errorf("rank 0 compute %v should be < rank 3 compute %v",
			res.Stats.PerRank[0].Compute, res.Stats.PerRank[3].Compute)
	}
	// All finish within one barrier of each other.
	for i := 1; i < 4; i++ {
		if res.Stats.PerRank[i].Finish < res.Stats.PerRank[0].Compute {
			t.Errorf("rank %d finished before rank 0's compute", i)
		}
	}
}

func TestWaitallHandlesZeroAndDuplicates(t *testing.T) {
	// Zeroed request slots are null requests; waiting twice is a no-op.
	src := `
program p
  implicit none
  include 'mpif.h'
  integer me, np, ierr
  integer reqs(1:4)
  integer sb(1:2), rb(1:2)
  integer i
  call mpi_init(ierr)
  call mpi_comm_rank(mpi_comm_world, me, ierr)
  do i = 1, 4
    reqs(i) = 0
  enddo
  sb(1) = me + 10
  sb(2) = me + 20
  if (me == 0) then
    call mpi_isend(sb, 2, mpi_integer, 1, 3, mpi_comm_world, reqs(1), ierr)
  else
    call mpi_irecv(rb, 2, mpi_integer, 0, 3, mpi_comm_world, reqs(2), ierr)
  endif
  call mpi_waitall(4, reqs, mpi_statuses_ignore, ierr)
  call mpi_waitall(4, reqs, mpi_statuses_ignore, ierr)
  if (me == 1) then
    print *, rb(1), rb(2)
  endif
  call mpi_finalize(ierr)
end program p
`
	res := run(t, src, 2)
	if res.Output[1][0] != "10 20" {
		t.Errorf("output = %v", res.Output[1])
	}
}

func TestCostModelScalesElapsed(t *testing.T) {
	src := `
program p
  implicit none
  integer a(1:1000), i
  do i = 1, 1000
    a(i) = i
  enddo
end program p
`
	p1, _ := Load(src)
	r1, err := p1.Run(1, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	p2, _ := Load(src)
	p2.Costs.Store = 100 * netsim.Nanosecond
	r2, err := p2.Run(1, netsim.MPICHGM())
	if err != nil {
		t.Fatal(err)
	}
	if r2.Elapsed() <= r1.Elapsed() {
		t.Errorf("heavier store cost should slow the run: %v vs %v", r2.Elapsed(), r1.Elapsed())
	}
}

func TestSnapshotKinds(t *testing.T) {
	src := `
program p
  implicit none
  integer ia(1:2)
  real ra(1:2)
  ia(1) = 7
  ra(2) = 2.5
end program p
`
	res := run(t, src, 1)
	ia, ok := res.Arrays[0]["ia"].([]int64)
	if !ok || ia[0] != 7 {
		t.Errorf("ia = %#v", res.Arrays[0]["ia"])
	}
	ra, ok := res.Arrays[0]["ra"].([]float64)
	if !ok || ra[1] != 2.5 {
		t.Errorf("ra = %#v", res.Arrays[0]["ra"])
	}
}
