package ftn

// CloneExpr returns a deep copy of e.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch e := e.(type) {
	case *Ident:
		c := *e
		return &c
	case *IntLit:
		c := *e
		return &c
	case *RealLit:
		c := *e
		return &c
	case *StrLit:
		c := *e
		return &c
	case *BoolLit:
		c := *e
		return &c
	case *Ref:
		c := &Ref{Name: e.Name, XPos: e.XPos}
		for _, a := range e.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *Unary:
		return &Unary{Op: e.Op, X: CloneExpr(e.X), XPos: e.XPos}
	case *Binary:
		return &Binary{Op: e.Op, X: CloneExpr(e.X), Y: CloneExpr(e.Y), XPos: e.XPos}
	}
	return e
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch s := s.(type) {
	case *AssignStmt:
		return &AssignStmt{LHS: CloneExpr(s.LHS), RHS: CloneExpr(s.RHS), XPos: s.XPos}
	case *DoStmt:
		return &DoStmt{
			Var: s.Var, Lo: CloneExpr(s.Lo), Hi: CloneExpr(s.Hi), Step: CloneExpr(s.Step),
			Body: CloneStmts(s.Body), XPos: s.XPos,
		}
	case *IfStmt:
		return &IfStmt{Cond: CloneExpr(s.Cond), Then: CloneStmts(s.Then), Else: CloneStmts(s.Else), XPos: s.XPos}
	case *CallStmt:
		c := &CallStmt{Name: s.Name, XPos: s.XPos}
		for _, a := range s.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *PrintStmt:
		c := &PrintStmt{XPos: s.XPos}
		for _, a := range s.Args {
			c.Args = append(c.Args, CloneExpr(a))
		}
		return c
	case *ReturnStmt:
		c := *s
		return &c
	case *StopStmt:
		c := *s
		return &c
	case *ContinueStmt:
		c := *s
		return &c
	case *ExitStmt:
		c := *s
		return &c
	case *CycleStmt:
		c := *s
		return &c
	case *CommentStmt:
		c := *s
		return &c
	}
	return s
}

// CloneStmts deep-copies a statement list.
func CloneStmts(list []Stmt) []Stmt {
	if list == nil {
		return nil
	}
	out := make([]Stmt, len(list))
	for i, s := range list {
		out[i] = CloneStmt(s)
	}
	return out
}

// CloneDecl returns a deep copy of d.
func CloneDecl(d *Decl) *Decl {
	c := &Decl{Type: d.Type, Parameter: d.Parameter, Intent: d.Intent, XPos: d.XPos}
	c.Type.Len = CloneExpr(d.Type.Len)
	for _, dm := range d.DimAttr {
		c.DimAttr = append(c.DimAttr, Dim{Lo: CloneExpr(dm.Lo), Hi: CloneExpr(dm.Hi)})
	}
	for _, e := range d.Entities {
		ne := &Entity{Name: e.Name, Init: CloneExpr(e.Init)}
		for _, dm := range e.Dims {
			ne.Dims = append(ne.Dims, Dim{Lo: CloneExpr(dm.Lo), Hi: CloneExpr(dm.Hi)})
		}
		c.Entities = append(c.Entities, ne)
	}
	return c
}

// CloneUnit returns a deep copy of u.
func CloneUnit(u *Unit) *Unit {
	c := &Unit{
		Kind: u.Kind, Name: u.Name, ImplicitNone: u.ImplicitNone, XPos: u.XPos,
	}
	c.Params = append([]string(nil), u.Params...)
	c.Includes = append([]string(nil), u.Includes...)
	for _, d := range u.Decls {
		c.Decls = append(c.Decls, CloneDecl(d))
	}
	c.Body = CloneStmts(u.Body)
	if u.Result != nil {
		r := *u.Result
		r.Len = CloneExpr(u.Result.Len)
		c.Result = &r
	}
	return c
}

// CloneFile returns a deep copy of f.
func CloneFile(f *File) *File {
	c := &File{}
	for _, u := range f.Units {
		c.Units = append(c.Units, CloneUnit(u))
	}
	return c
}
