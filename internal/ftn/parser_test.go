package ftn

import (
	"strings"
	"testing"
)

// figure2a is the paper's abstract target code (Fig. 2a), adapted to
// concrete MPI syntax.
const figure2a = `
program target
  implicit none
  include 'mpif.h'
  integer, parameter :: nx = 64
  integer as(1:nx)
  integer ar(1:nx)
  integer ix, iy, ierr

  do iy = 1, nx
    do ix = 1, nx
      as(ix) = ix + iy
    enddo
    call mpi_alltoall(as, 8, mpi_integer, ar, 8, mpi_integer, mpi_comm_world, ierr)
  enddo
end program target
`

func TestParseFigure2a(t *testing.T) {
	f, err := Parse(figure2a)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u := f.Program()
	if u == nil {
		t.Fatal("no program unit")
	}
	if u.Name != "target" {
		t.Errorf("program name = %q", u.Name)
	}
	if !u.ImplicitNone {
		t.Error("implicit none not recorded")
	}
	if len(u.Includes) != 1 || u.Includes[0] != "mpif.h" {
		t.Errorf("includes = %v", u.Includes)
	}
	st := Symbols(u)
	if !st.IsArray("as") || !st.IsArray("ar") {
		t.Error("as/ar should be arrays")
	}
	if !st.IsParameter("nx") {
		t.Error("nx should be a parameter")
	}
	if st.IsArray("ix") {
		t.Error("ix should be scalar")
	}
	// Body: one outer do containing inner do + call.
	if len(u.Body) != 1 {
		t.Fatalf("body has %d stmts, want 1", len(u.Body))
	}
	outer, ok := u.Body[0].(*DoStmt)
	if !ok {
		t.Fatalf("body[0] is %T, want *DoStmt", u.Body[0])
	}
	if outer.Var != "iy" {
		t.Errorf("outer loop var = %q", outer.Var)
	}
	if len(outer.Body) != 2 {
		t.Fatalf("outer body has %d stmts, want 2", len(outer.Body))
	}
	inner, ok := outer.Body[0].(*DoStmt)
	if !ok || inner.Var != "ix" {
		t.Fatalf("inner loop wrong: %#v", outer.Body[0])
	}
	call, ok := outer.Body[1].(*CallStmt)
	if !ok || call.Name != "mpi_alltoall" {
		t.Fatalf("call wrong: %#v", outer.Body[1])
	}
	if len(call.Args) != 8 {
		t.Errorf("alltoall has %d args, want 8", len(call.Args))
	}
}

func TestParseSubroutine(t *testing.T) {
	src := `
subroutine p(n, at)
  integer n
  integer at(*)
  integer i
  do i = 1, n
    at(i) = i*i
  enddo
  return
end subroutine p
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u := f.Subroutine("p")
	if u == nil {
		t.Fatal("subroutine p not found")
	}
	if len(u.Params) != 2 || u.Params[0] != "n" || u.Params[1] != "at" {
		t.Errorf("params = %v", u.Params)
	}
	st := Symbols(u)
	sym := st.Lookup("at")
	if sym == nil || !sym.IsArray() || !sym.IsParam {
		t.Errorf("at symbol = %+v", sym)
	}
	if sym.Dims[0].Lo != nil || sym.Dims[0].Hi != nil {
		t.Errorf("assumed-size dims = %+v", sym.Dims)
	}
}

func TestParseIfElseChain(t *testing.T) {
	src := `
program p
  integer x, y
  if (x > 0) then
    y = 1
  else if (x < 0) then
    y = -1
  else
    y = 0
  endif
end program p
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u := f.Program()
	s, ok := u.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("not an if: %T", u.Body[0])
	}
	if len(s.Then) != 1 || len(s.Else) != 1 {
		t.Fatalf("then/else sizes: %d/%d", len(s.Then), len(s.Else))
	}
	nested, ok := s.Else[0].(*IfStmt)
	if !ok {
		t.Fatalf("else-if not nested: %T", s.Else[0])
	}
	if len(nested.Else) != 1 {
		t.Fatalf("final else missing")
	}
}

func TestParseOneLineIf(t *testing.T) {
	src := `
program p
  integer i, k
  do i = 1, 10
    if (mod(i, k) == 0) call flush(i)
  enddo
end program p
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	do := f.Program().Body[0].(*DoStmt)
	ifs, ok := do.Body[0].(*IfStmt)
	if !ok {
		t.Fatalf("not if: %T", do.Body[0])
	}
	if _, ok := ifs.Then[0].(*CallStmt); !ok {
		t.Fatalf("one-line if body: %T", ifs.Then[0])
	}
	if len(ifs.Else) != 0 {
		t.Error("one-line if has else")
	}
}

func TestParseDeclForms(t *testing.T) {
	src := `
program p
  integer, parameter :: np = 8
  integer, dimension(1:10, 1:10) :: a, b
  real x
  real*8 d
  double precision e
  logical flag
  character(len=16) name
  integer c(0:np-1)
  integer nx
  parameter (nx = 64)
end program p
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	st := Symbols(f.Program())
	if s := st.Lookup("np"); s == nil || !s.Parameter || s.Init == nil {
		t.Errorf("np = %+v", s)
	}
	if s := st.Lookup("a"); s == nil || s.Rank() != 2 {
		t.Errorf("a = %+v", s)
	}
	if s := st.Lookup("b"); s == nil || s.Rank() != 2 {
		t.Errorf("b = %+v", s)
	}
	if s := st.Lookup("d"); s == nil || s.Type.Base != TDouble {
		t.Errorf("d = %+v", s)
	}
	if s := st.Lookup("e"); s == nil || s.Type.Base != TDouble {
		t.Errorf("e = %+v", s)
	}
	if s := st.Lookup("flag"); s == nil || s.Type.Base != TLogical {
		t.Errorf("flag = %+v", s)
	}
	if s := st.Lookup("name"); s == nil || s.Type.Base != TCharacter {
		t.Errorf("name = %+v", s)
	}
	if s := st.Lookup("c"); s == nil || s.Rank() != 1 || s.Dims[0].Lo == nil {
		t.Errorf("c = %+v", s)
	}
	if s := st.Lookup("nx"); s == nil || !s.Parameter || s.Init == nil {
		t.Errorf("nx (F77 parameter) = %+v", s)
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	cases := []struct{ src, want string }{
		{"a + b*c", "a + b * c"},
		{"(a + b)*c", "(a + b) * c"},
		{"a - b - c", "a - b - c"},
		{"a - (b - c)", "a - (b - c)"},
		{"-a**2", "-a**2"},
		{"a**b**c", "a**b**c"},
		{"a .and. b .or. c", "a .and. b .or. c"},
		{"a .and. (b .or. c)", "a .and. (b .or. c)"},
		{"x <= y + 1", "x <= y + 1"},
		{"mod(i, k) == 0", "mod(i, k) == 0"},
		{"ix % 10", "mod(ix, 10)"},
		{".not. (a .or. b)", ".not. (a .or. b)"},
		{"a(i, j+1) * 2", "a(i, j + 1) * 2"},
		{"1.eq.n", "1 == n"},
	}
	for _, c := range cases {
		src := "program p\nx = " + c.src + "\nend program p\n"
		f, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		got := ExprString(f.Program().Body[0].(*AssignStmt).RHS)
		if got != c.want {
			t.Errorf("expr %q printed as %q, want %q", c.src, got, c.want)
		}
	}
}

func TestParseKeywordNamedVariables(t *testing.T) {
	// Fortran has no reserved words: "if", "do", "end" can be variables.
	src := `
program p
  integer if, do, end
  if = 1
  do = if + 1
  end = do + 1
end program p
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n := len(f.Program().Body); n != 3 {
		t.Fatalf("body has %d stmts, want 3", n)
	}
}

func TestParsePrintAndWrite(t *testing.T) {
	src := `
program p
  integer i
  print *, 'value', i, i + 1
  write(*,*) 'w', i
  print *
end program p
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := f.Program().Body
	p0 := body[0].(*PrintStmt)
	if len(p0.Args) != 3 {
		t.Errorf("print args = %d, want 3", len(p0.Args))
	}
	p1 := body[1].(*PrintStmt)
	if len(p1.Args) != 2 {
		t.Errorf("write args = %d, want 2", len(p1.Args))
	}
	p2 := body[2].(*PrintStmt)
	if len(p2.Args) != 0 {
		t.Errorf("bare print args = %d, want 0", len(p2.Args))
	}
}

func TestParseCommentsPreserved(t *testing.T) {
	src := `
program p
  integer i
  ! leading comment
  i = 1
end program p
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := f.Program().Body
	if len(body) != 2 {
		t.Fatalf("body = %d stmts, want 2 (comment+assign)", len(body))
	}
	c, ok := body[0].(*CommentStmt)
	if !ok || !strings.Contains(c.Text, "leading comment") {
		t.Errorf("comment stmt = %#v", body[0])
	}
}

func TestParseDoWithStep(t *testing.T) {
	src := "program p\ninteger i, s\ndo i = 10, 1, -1\ns = s + i\nenddo\nend program p\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	do := f.Program().Body[0].(*DoStmt)
	if do.Step == nil {
		t.Fatal("step missing")
	}
	u, ok := do.Step.(*Unary)
	if !ok || u.Op != "-" {
		t.Errorf("step = %#v", do.Step)
	}
}

func TestParseMultipleUnits(t *testing.T) {
	src := `
program main
  integer x
  call helper(x)
end program main

subroutine helper(x)
  integer x
  x = 42
end subroutine helper
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(f.Units) != 2 {
		t.Fatalf("units = %d, want 2", len(f.Units))
	}
	if f.Subroutine("helper") == nil {
		t.Error("helper not found")
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"program p\ndo i = 1\nenddo\nend program p\n",   // missing hi bound comma
		"program p\nif (x then\nendif\nend program p\n", // bad cond
		"program p\nx = \nend program p\n",              // missing rhs
		"program p\n",                                   // missing end
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseSemicolonSeparator(t *testing.T) {
	src := "program p\ninteger a, b\na = 1; b = 2\nend program p\n"
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if n := len(f.Program().Body); n != 2 {
		t.Fatalf("body = %d stmts, want 2", n)
	}
}

func TestParseExitCycleStopReturn(t *testing.T) {
	src := `
program p
  integer i
  do i = 1, 10
    if (i == 5) exit
    if (i == 2) cycle
    continue
  enddo
  stop
end program p
`
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	do := f.Program().Body[0].(*DoStmt)
	if _, ok := do.Body[0].(*IfStmt).Then[0].(*ExitStmt); !ok {
		t.Error("exit not parsed")
	}
	if _, ok := do.Body[1].(*IfStmt).Then[0].(*CycleStmt); !ok {
		t.Error("cycle not parsed")
	}
	if _, ok := do.Body[2].(*ContinueStmt); !ok {
		t.Error("continue not parsed")
	}
	if _, ok := f.Program().Body[1].(*StopStmt); !ok {
		t.Error("stop not parsed")
	}
}
