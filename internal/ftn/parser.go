package ftn

import (
	"strconv"
	"strings"
)

// Parser builds the AST from a token stream.
type Parser struct {
	toks []Token
	pos  int
	errs []*Error
}

// Parse parses a complete source file.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	f := p.parseFile()
	if len(p.errs) > 0 {
		return f, p.errs[0]
	}
	return f, nil
}

// MustParse parses src and panics on error; intended for tests and for
// parsing generated code known to be valid.
func MustParse(src string) *File {
	f, err := Parse(src)
	if err != nil {
		panic("ftn.MustParse: " + err.Error())
	}
	return f
}

func (p *Parser) errorf(pos Pos, format string, args ...interface{}) {
	if len(p.errs) < 50 {
		p.errs = append(p.errs, errf(pos, format, args...))
	}
}

func (p *Parser) cur() Token { return p.toks[p.pos] }

func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) accept(k TokKind) bool {
	if p.cur().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expect(k TokKind) Token {
	t := p.cur()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
		return t
	}
	return p.next()
}

// atKeyword reports whether the current token is the identifier kw.
func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == IDENT && t.Text == kw
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.next()
		return true
	}
	return false
}

func (p *Parser) expectKeyword(kw string) {
	if !p.acceptKeyword(kw) {
		p.errorf(p.cur().Pos, "expected %q, found %s", kw, p.cur())
		p.skipToNewline()
	}
}

func (p *Parser) skipToNewline() {
	for p.cur().Kind != NEWLINE && p.cur().Kind != EOF {
		p.next()
	}
}

func (p *Parser) endOfStmt() {
	switch p.cur().Kind {
	case NEWLINE, SEMICOLON:
		p.next()
	case EOF:
	default:
		p.errorf(p.cur().Pos, "expected end of statement, found %s", p.cur())
		p.skipToNewline()
	}
}

func (p *Parser) skipNewlines() {
	for p.cur().Kind == NEWLINE || p.cur().Kind == SEMICOLON {
		p.next()
	}
}

// parseFile parses all program units in the file.
func (p *Parser) parseFile() *File {
	f := &File{}
	p.skipNewlines()
	for p.cur().Kind != EOF {
		// Skip file-level comments between units.
		if p.cur().Kind == COMMENT {
			p.next()
			p.skipNewlines()
			continue
		}
		u := p.parseUnit()
		if u == nil {
			break
		}
		f.Units = append(f.Units, u)
		p.skipNewlines()
	}
	return f
}

// parseUnit parses one program/subroutine/function unit.
func (p *Parser) parseUnit() *Unit {
	t := p.cur()
	if t.Kind != IDENT {
		p.errorf(t.Pos, "expected program unit, found %s", t)
		p.next()
		return nil
	}
	switch t.Text {
	case "program":
		p.next()
		name := p.expect(IDENT).Text
		p.endOfStmt()
		u := &Unit{Kind: ProgramUnit, Name: name, XPos: t.Pos}
		p.parseUnitBody(u)
		return u
	case "subroutine":
		p.next()
		name := p.expect(IDENT).Text
		u := &Unit{Kind: SubroutineUnit, Name: name, XPos: t.Pos}
		if p.accept(LPAREN) {
			for !p.accept(RPAREN) {
				u.Params = append(u.Params, p.expect(IDENT).Text)
				if !p.accept(COMMA) {
					p.expect(RPAREN)
					break
				}
			}
		}
		p.endOfStmt()
		p.parseUnitBody(u)
		return u
	default:
		p.errorf(t.Pos, "expected 'program' or 'subroutine', found %q", t.Text)
		p.skipToNewline()
		p.next()
		return nil
	}
}

// parseUnitBody parses declarations then executable statements up to END.
func (p *Parser) parseUnitBody(u *Unit) {
	inSpec := true
	// Comments seen in the spec part are buffered: if they immediately
	// precede the first executable statement they belong to the body;
	// if another declaration follows they are dropped.
	var pendingComments []Stmt
	for {
		p.skipNewlines()
		t := p.cur()
		if t.Kind == EOF {
			p.errorf(t.Pos, "missing 'end' for %s %s", u.Kind, u.Name)
			return
		}
		if t.Kind == COMMENT {
			p.next()
			c := &CommentStmt{Text: t.Text, XPos: t.Pos}
			if inSpec {
				pendingComments = append(pendingComments, c)
			} else {
				u.Body = append(u.Body, c)
			}
			continue
		}
		if t.Kind == IDENT && t.Text == "end" && !p.isAssignment() {
			p.next()
			// Optional "program|subroutine [name]".
			if p.atKeyword(u.Kind.String()) {
				p.next()
				if p.cur().Kind == IDENT {
					p.next()
				}
			}
			p.endOfStmt()
			return
		}
		if inSpec && p.atSpecStatement() {
			pendingComments = nil
			p.parseSpecStatement(u)
			continue
		}
		if inSpec {
			inSpec = false
			u.Body = append(u.Body, pendingComments...)
			pendingComments = nil
		}
		s := p.parseStatement()
		if s != nil {
			u.Body = append(u.Body, s)
		}
	}
}

// atSpecStatement reports whether the current statement is declarative.
func (p *Parser) atSpecStatement() bool {
	t := p.cur()
	if t.Kind != IDENT {
		return false
	}
	switch t.Text {
	case "integer", "real", "double", "logical", "character", "implicit", "include", "parameter":
		// A spec keyword followed by '=' is actually an assignment to a
		// variable that shares the keyword's name ("real = 3" is legal
		// Fortran); rule it out.
		return p.peek().Kind != ASSIGN && p.peek().Kind != LPAREN ||
			t.Text == "parameter" || t.Text == "character"
	}
	return false
}

// isAssignment reports whether the statement starting at the current token
// is an assignment ("name = ..." or "name(...) = ...").
func (p *Parser) isAssignment() bool {
	if p.cur().Kind != IDENT {
		return false
	}
	if p.peek().Kind == ASSIGN {
		return true
	}
	if p.peek().Kind != LPAREN {
		return false
	}
	// Scan past the balanced parens and check for '='.
	depth := 0
	for i := p.pos + 1; i < len(p.toks); i++ {
		switch p.toks[i].Kind {
		case LPAREN:
			depth++
		case RPAREN:
			depth--
			if depth == 0 {
				return i+1 < len(p.toks) && p.toks[i+1].Kind == ASSIGN
			}
		case NEWLINE, EOF:
			return false
		}
	}
	return false
}

// parseSpecStatement parses one declaration-part statement into u.
func (p *Parser) parseSpecStatement(u *Unit) {
	t := p.cur()
	switch t.Text {
	case "implicit":
		p.next()
		p.expectKeyword("none")
		u.ImplicitNone = true
		p.endOfStmt()
	case "include":
		p.next()
		path := p.expect(STRLIT).Text
		u.Includes = append(u.Includes, path)
		p.endOfStmt()
	case "parameter":
		// F77 style: parameter (name = expr, ...)
		p.next()
		p.expect(LPAREN)
		for {
			name := p.expect(IDENT).Text
			p.expect(ASSIGN)
			val := p.parseExpr()
			p.patchParameter(u, name, val, t.Pos)
			if !p.accept(COMMA) {
				break
			}
		}
		p.expect(RPAREN)
		p.endOfStmt()
	default:
		d := p.parseDecl()
		if d != nil {
			u.Decls = append(u.Decls, d)
		}
	}
}

// patchParameter marks an already-declared entity as a named constant.
func (p *Parser) patchParameter(u *Unit, name string, val Expr, pos Pos) {
	for _, d := range u.Decls {
		for _, e := range d.Entities {
			if e.Name == name {
				e.Init = val
				d.Parameter = true
				return
			}
		}
	}
	// Implicitly typed named constant: synthesize an integer decl.
	u.Decls = append(u.Decls, &Decl{
		Type:      TypeSpec{Base: TInteger},
		Parameter: true,
		Entities:  []*Entity{{Name: name, Init: val}},
		XPos:      pos,
	})
}

// parseDecl parses a type declaration statement.
func (p *Parser) parseDecl() *Decl {
	t := p.cur()
	d := &Decl{XPos: t.Pos}
	switch t.Text {
	case "integer":
		p.next()
		d.Type = TypeSpec{Base: TInteger}
	case "real":
		p.next()
		d.Type = TypeSpec{Base: TReal}
		// Accept "real*8".
		if p.cur().Kind == STAR && p.peek().Kind == INTLIT {
			p.next()
			p.next()
			d.Type.Base = TDouble
		}
	case "double":
		p.next()
		p.expectKeyword("precision")
		d.Type = TypeSpec{Base: TDouble}
	case "logical":
		p.next()
		d.Type = TypeSpec{Base: TLogical}
	case "character":
		p.next()
		d.Type = TypeSpec{Base: TCharacter}
		if p.accept(LPAREN) {
			if p.acceptKeyword("len") {
				p.expect(ASSIGN)
			}
			d.Type.Len = p.parseExpr()
			p.expect(RPAREN)
		} else if p.accept(STAR) {
			lit := p.expect(INTLIT)
			n, _ := strconv.ParseInt(lit.Text, 10, 64)
			d.Type.Len = &IntLit{Value: n, XPos: lit.Pos}
		}
	default:
		p.errorf(t.Pos, "expected type specifier, found %q", t.Text)
		p.skipToNewline()
		return nil
	}

	// Attributes: , parameter , dimension(...) , intent(...)
	for p.cur().Kind == COMMA {
		p.next()
		a := p.expect(IDENT)
		switch a.Text {
		case "parameter":
			d.Parameter = true
		case "dimension":
			p.expect(LPAREN)
			d.DimAttr = p.parseDims()
			p.expect(RPAREN)
		case "intent":
			p.expect(LPAREN)
			io := p.expect(IDENT).Text
			if io == "in" && p.atKeyword("out") {
				p.next()
				io = "inout"
			}
			d.Intent = io
			p.expect(RPAREN)
		default:
			p.errorf(a.Pos, "unknown declaration attribute %q", a.Text)
		}
	}
	p.accept(DCOLON)

	// Entities.
	for {
		name := p.expect(IDENT).Text
		e := &Entity{Name: name}
		if p.accept(LPAREN) {
			e.Dims = p.parseDims()
			p.expect(RPAREN)
		}
		if p.accept(ASSIGN) {
			e.Init = p.parseExpr()
		}
		d.Entities = append(d.Entities, e)
		if !p.accept(COMMA) {
			break
		}
	}
	p.endOfStmt()
	return d
}

// parseDims parses a comma-separated dimension list "lo:hi, n, *".
func (p *Parser) parseDims() []Dim {
	var dims []Dim
	for {
		var dm Dim
		if p.cur().Kind == STAR {
			p.next()
			// Assumed-size: both bounds nil with Hi marked by nil; Lo=1.
			dims = append(dims, Dim{})
			if !p.accept(COMMA) {
				return dims
			}
			continue
		}
		first := p.parseExpr()
		if p.accept(COLON) {
			dm.Lo = first
			if p.cur().Kind == STAR {
				p.next()
				dm.Hi = nil // assumed size with explicit lower bound
			} else {
				dm.Hi = p.parseExpr()
			}
		} else {
			dm.Hi = first // "n" means 1:n
		}
		dims = append(dims, dm)
		if !p.accept(COMMA) {
			return dims
		}
	}
}

// parseStatement parses one executable statement (which may be a construct).
func (p *Parser) parseStatement() Stmt {
	t := p.cur()
	if t.Kind == COMMENT {
		p.next()
		return &CommentStmt{Text: t.Text, XPos: t.Pos}
	}
	if t.Kind != IDENT {
		p.errorf(t.Pos, "expected statement, found %s", t)
		p.skipToNewline()
		p.next()
		return nil
	}
	// Keywords can also be variable names; assignment wins.
	if p.isAssignment() {
		return p.parseAssign()
	}
	switch t.Text {
	case "do":
		return p.parseDo()
	case "if":
		return p.parseIf()
	case "call":
		return p.parseCall()
	case "print":
		return p.parsePrint()
	case "write":
		return p.parseWrite()
	case "return":
		p.next()
		p.endOfStmt()
		return &ReturnStmt{XPos: t.Pos}
	case "stop":
		p.next()
		if p.cur().Kind == STRLIT || p.cur().Kind == INTLIT {
			p.next() // stop code, ignored
		}
		p.endOfStmt()
		return &StopStmt{XPos: t.Pos}
	case "continue":
		p.next()
		p.endOfStmt()
		return &ContinueStmt{XPos: t.Pos}
	case "exit":
		p.next()
		p.endOfStmt()
		return &ExitStmt{XPos: t.Pos}
	case "cycle":
		p.next()
		p.endOfStmt()
		return &CycleStmt{XPos: t.Pos}
	}
	p.errorf(t.Pos, "unexpected statement keyword %q", t.Text)
	p.skipToNewline()
	p.next()
	return nil
}

func (p *Parser) parseAssign() Stmt {
	t := p.cur()
	lhs := p.parseDesignator()
	p.expect(ASSIGN)
	rhs := p.parseExpr()
	p.endOfStmt()
	return &AssignStmt{LHS: lhs, RHS: rhs, XPos: t.Pos}
}

// parseDesignator parses "name" or "name(args)" as an assignment target.
func (p *Parser) parseDesignator() Expr {
	t := p.expect(IDENT)
	if p.accept(LPAREN) {
		r := &Ref{Name: t.Text, XPos: t.Pos}
		for !p.accept(RPAREN) {
			r.Args = append(r.Args, p.parseExpr())
			if !p.accept(COMMA) {
				p.expect(RPAREN)
				break
			}
		}
		return r
	}
	return &Ident{Name: t.Text, XPos: t.Pos}
}

func (p *Parser) parseDo() Stmt {
	t := p.next() // 'do'
	v := p.expect(IDENT).Text
	p.expect(ASSIGN)
	lo := p.parseExpr()
	p.expect(COMMA)
	hi := p.parseExpr()
	var step Expr
	if p.accept(COMMA) {
		step = p.parseExpr()
	}
	p.endOfStmt()
	body := p.parseBlock(func() bool { return p.atEndDo() })
	p.consumeEndDo()
	return &DoStmt{Var: v, Lo: lo, Hi: hi, Step: step, Body: body, XPos: t.Pos}
}

func (p *Parser) atEndDo() bool {
	if p.atKeyword("enddo") {
		return true
	}
	return p.atKeyword("end") && p.peek().Kind == IDENT && p.peek().Text == "do"
}

func (p *Parser) consumeEndDo() {
	if p.acceptKeyword("enddo") {
		p.endOfStmt()
		return
	}
	p.expectKeyword("end")
	p.expectKeyword("do")
	p.endOfStmt()
}

func (p *Parser) parseIf() Stmt {
	t := p.next() // 'if'
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	if !p.acceptKeyword("then") {
		// One-line IF: "if (cond) stmt".
		inner := p.parseStatement()
		s := &IfStmt{Cond: cond, XPos: t.Pos}
		if inner != nil {
			s.Then = []Stmt{inner}
		}
		return s
	}
	p.endOfStmt()
	s := &IfStmt{Cond: cond, XPos: t.Pos}
	s.Then = p.parseBlock(func() bool { return p.atIfBranch() })
	p.parseIfTail(s)
	return s
}

// atIfBranch reports whether the current statement starts an else/elseif/endif.
func (p *Parser) atIfBranch() bool {
	if p.atKeyword("else") || p.atKeyword("elseif") || p.atKeyword("endif") {
		return true
	}
	return p.atKeyword("end") && p.peek().Kind == IDENT && p.peek().Text == "if"
}

// parseIfTail parses the else/elseif/endif following a then-block.
func (p *Parser) parseIfTail(s *IfStmt) {
	switch {
	case p.acceptKeyword("endif"):
		p.endOfStmt()
	case p.atKeyword("end"):
		p.next()
		p.expectKeyword("if")
		p.endOfStmt()
	case p.acceptKeyword("elseif"):
		p.parseElseIf(s)
	case p.acceptKeyword("else"):
		if p.acceptKeyword("if") {
			p.parseElseIf(s)
			return
		}
		p.endOfStmt()
		s.Else = p.parseBlock(func() bool { return p.atIfBranch() })
		switch {
		case p.acceptKeyword("endif"):
			p.endOfStmt()
		case p.atKeyword("end"):
			p.next()
			p.expectKeyword("if")
			p.endOfStmt()
		default:
			p.errorf(p.cur().Pos, "expected 'end if' after else block")
		}
	default:
		p.errorf(p.cur().Pos, "expected else/end if, found %s", p.cur())
	}
}

// parseElseIf parses "(cond) then <block> ..." after an elseif keyword and
// nests it as a single IfStmt in s.Else.
func (p *Parser) parseElseIf(s *IfStmt) {
	t := p.cur()
	p.expect(LPAREN)
	cond := p.parseExpr()
	p.expect(RPAREN)
	p.expectKeyword("then")
	p.endOfStmt()
	nested := &IfStmt{Cond: cond, XPos: t.Pos}
	nested.Then = p.parseBlock(func() bool { return p.atIfBranch() })
	p.parseIfTail(nested)
	s.Else = []Stmt{nested}
}

// parseBlock parses statements until stop() is true or 'end'/'EOF'.
func (p *Parser) parseBlock(stop func() bool) []Stmt {
	var body []Stmt
	for {
		p.skipNewlines()
		if p.cur().Kind == EOF {
			p.errorf(p.cur().Pos, "unexpected end of file in block")
			return body
		}
		if stop() && !p.isAssignment() {
			return body
		}
		// Bare 'end' (unit end) also stops block parsing to avoid runaway.
		if p.atKeyword("end") && !p.isAssignment() {
			return body
		}
		s := p.parseStatement()
		if s != nil {
			body = append(body, s)
		}
	}
}

func (p *Parser) parseCall() Stmt {
	t := p.next() // 'call'
	name := p.expect(IDENT).Text
	s := &CallStmt{Name: name, XPos: t.Pos}
	if p.accept(LPAREN) {
		for !p.accept(RPAREN) {
			s.Args = append(s.Args, p.parseExpr())
			if !p.accept(COMMA) {
				p.expect(RPAREN)
				break
			}
		}
	}
	p.endOfStmt()
	return s
}

func (p *Parser) parsePrint() Stmt {
	t := p.next() // 'print'
	p.expect(STAR)
	s := &PrintStmt{XPos: t.Pos}
	for p.accept(COMMA) {
		s.Args = append(s.Args, p.parseExpr())
	}
	p.endOfStmt()
	return s
}

func (p *Parser) parseWrite() Stmt {
	t := p.next() // 'write'
	p.expect(LPAREN)
	p.expect(STAR)
	p.expect(COMMA)
	p.expect(STAR)
	p.expect(RPAREN)
	s := &PrintStmt{XPos: t.Pos}
	for p.cur().Kind != NEWLINE && p.cur().Kind != EOF && p.cur().Kind != SEMICOLON {
		s.Args = append(s.Args, p.parseExpr())
		if !p.accept(COMMA) {
			break
		}
	}
	p.endOfStmt()
	return s
}

// Expression parsing: precedence climbing.

func (p *Parser) parseExpr() Expr { return p.parseOr() }

func (p *Parser) parseOr() Expr {
	x := p.parseAnd()
	for p.cur().Kind == OR {
		t := p.next()
		y := p.parseAnd()
		x = &Binary{Op: ".or.", X: x, Y: y, XPos: t.Pos}
	}
	return x
}

func (p *Parser) parseAnd() Expr {
	x := p.parseNot()
	for p.cur().Kind == AND {
		t := p.next()
		y := p.parseNot()
		x = &Binary{Op: ".and.", X: x, Y: y, XPos: t.Pos}
	}
	return x
}

func (p *Parser) parseNot() Expr {
	if p.cur().Kind == NOT {
		t := p.next()
		x := p.parseNot()
		return &Unary{Op: ".not.", X: x, XPos: t.Pos}
	}
	return p.parseRel()
}

var relOps = map[TokKind]string{EQ: "==", NE: "/=", LT: "<", LE: "<=", GT: ">", GE: ">="}

func (p *Parser) parseRel() Expr {
	x := p.parseAdd()
	if op, ok := relOps[p.cur().Kind]; ok {
		t := p.next()
		y := p.parseAdd()
		return &Binary{Op: op, X: x, Y: y, XPos: t.Pos}
	}
	return x
}

func (p *Parser) parseAdd() Expr {
	var x Expr
	// Leading sign.
	switch p.cur().Kind {
	case MINUS:
		t := p.next()
		x = &Unary{Op: "-", X: p.parseMul(), XPos: t.Pos}
	case PLUS:
		p.next()
		x = p.parseMul()
	default:
		x = p.parseMul()
	}
	for {
		switch p.cur().Kind {
		case PLUS:
			t := p.next()
			x = &Binary{Op: "+", X: x, Y: p.parseMul(), XPos: t.Pos}
		case MINUS:
			t := p.next()
			x = &Binary{Op: "-", X: x, Y: p.parseMul(), XPos: t.Pos}
		default:
			return x
		}
	}
}

func (p *Parser) parseMul() Expr {
	x := p.parsePow()
	for {
		switch p.cur().Kind {
		case STAR:
			t := p.next()
			x = &Binary{Op: "*", X: x, Y: p.parsePow(), XPos: t.Pos}
		case SLASH:
			t := p.next()
			x = &Binary{Op: "/", X: x, Y: p.parsePow(), XPos: t.Pos}
		case PERCENT:
			// Accept the Fig. 3 pseudo-code "a % b" as mod(a, b).
			t := p.next()
			x = &Ref{Name: "mod", Args: []Expr{x, p.parsePow()}, XPos: t.Pos}
		default:
			return x
		}
	}
}

func (p *Parser) parsePow() Expr {
	x := p.parsePrimary()
	if p.cur().Kind == POW {
		t := p.next()
		// Right-associative; unary minus binds tighter on the right operand.
		var y Expr
		if p.cur().Kind == MINUS {
			mt := p.next()
			y = &Unary{Op: "-", X: p.parsePow(), XPos: mt.Pos}
		} else {
			y = p.parsePow()
		}
		return &Binary{Op: "**", X: x, Y: y, XPos: t.Pos}
	}
	return x
}

func (p *Parser) parsePrimary() Expr {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "bad integer literal %q", t.Text)
		}
		return &IntLit{Value: v, XPos: t.Pos}
	case REALLIT:
		p.next()
		v, err := strconv.ParseFloat(strings.TrimSuffix(t.Text, "."), 64)
		if err != nil {
			p.errorf(t.Pos, "bad real literal %q", t.Text)
		}
		return &RealLit{Value: v, Text: t.Text, XPos: t.Pos}
	case STRLIT:
		p.next()
		return &StrLit{Value: t.Text, XPos: t.Pos}
	case TRUE:
		p.next()
		return &BoolLit{Value: true, XPos: t.Pos}
	case FALSE:
		p.next()
		return &BoolLit{Value: false, XPos: t.Pos}
	case IDENT:
		p.next()
		if p.accept(LPAREN) {
			r := &Ref{Name: t.Text, XPos: t.Pos}
			for !p.accept(RPAREN) {
				r.Args = append(r.Args, p.parseExpr())
				if !p.accept(COMMA) {
					p.expect(RPAREN)
					break
				}
			}
			return r
		}
		return &Ident{Name: t.Text, XPos: t.Pos}
	case LPAREN:
		p.next()
		x := p.parseExpr()
		p.expect(RPAREN)
		return x
	}
	p.errorf(t.Pos, "expected expression, found %s", t)
	p.next()
	return &IntLit{Value: 0, XPos: t.Pos}
}
