package ftn

import (
	"reflect"
	"strings"
	"testing"
)

const walkFixture = `
program walks
  implicit none
  integer a(1:4)
  integer i, s
  s = 1
  do i = 1, 4
    a(i) = i*2
    if (a(i) > 4) then
      s = s + a(i)
    else
      s = s - 1
    endif
  enddo
  print *, s
end program walks
`

// stmtLabel names a statement kind for order assertions.
func stmtLabel(s Stmt) string {
	switch s := s.(type) {
	case *AssignStmt:
		return "assign"
	case *DoStmt:
		return "do(" + s.Var + ")"
	case *IfStmt:
		return "if"
	case *PrintStmt:
		return "print"
	case *CallStmt:
		return "call(" + s.Name + ")"
	}
	return "other"
}

// TestInspectSourceOrder pins the traversal order: statements appear in
// source order, compound bodies immediately after their header (then-branch
// before else-branch).
func TestInspectSourceOrder(t *testing.T) {
	f, err := Parse(walkFixture)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	Inspect(f.Program().Body, func(s Stmt) bool {
		got = append(got, stmtLabel(s))
		return true
	})
	want := []string{"assign", "do(i)", "assign", "if", "assign", "assign", "print"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("traversal order %v, want %v", got, want)
	}
}

// TestInspectPruning: returning false on a compound statement must skip its
// body but continue with its siblings.
func TestInspectPruning(t *testing.T) {
	f, err := Parse(walkFixture)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	Inspect(f.Program().Body, func(s Stmt) bool {
		got = append(got, stmtLabel(s))
		_, isDo := s.(*DoStmt)
		return !isDo
	})
	want := []string{"assign", "do(i)", "print"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("pruned traversal %v, want %v", got, want)
	}
}

// TestWalkExprTopDown: parents are visited before children, left subtree
// before right, and returning false prunes the subtree.
func TestWalkExprTopDown(t *testing.T) {
	// (a(i) + 3) * -b
	e := Bin("*",
		Bin("+", &Ref{Name: "a", Args: []Expr{&Ident{Name: "i"}}}, Int(3)),
		&Unary{Op: "-", X: &Ident{Name: "b"}},
	)
	var order []string
	WalkExpr(e, func(x Expr) bool {
		switch x := x.(type) {
		case *Binary:
			order = append(order, x.Op)
		case *Unary:
			order = append(order, "u"+x.Op)
		case *Ref:
			order = append(order, x.Name+"(")
		case *Ident:
			order = append(order, x.Name)
		case *IntLit:
			order = append(order, "3")
		}
		return true
	})
	want := []string{"*", "+", "a(", "i", "3", "u-", "b"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("walk order %v, want %v", order, want)
	}

	order = nil
	WalkExpr(e, func(x Expr) bool {
		switch x := x.(type) {
		case *Binary:
			order = append(order, x.Op)
		case *Ref:
			order = append(order, x.Name+"(")
		case *Unary:
			order = append(order, "u"+x.Op)
		default:
			order = append(order, "leaf")
		}
		// Prune below the Ref.
		_, isRef := x.(*Ref)
		return !isRef
	})
	want = []string{"*", "+", "a(", "leaf", "u-", "leaf"}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("pruned walk order %v, want %v", order, want)
	}
}

// TestInspectExprsCoversControlExprs: loop bounds and if conditions must be
// walked, not just assignment operands.
func TestInspectExprsCoversControlExprs(t *testing.T) {
	f, err := Parse(walkFixture)
	if err != nil {
		t.Fatal(err)
	}
	idents := map[string]bool{}
	InspectExprs(f.Program().Body, func(e Expr) bool {
		switch e := e.(type) {
		case *Ident:
			idents[e.Name] = true
		case *Ref:
			idents[e.Name] = true
		}
		return true
	})
	for _, want := range []string{"a", "i", "s"} {
		if !idents[want] {
			t.Errorf("identifier %s not reached (got %v)", want, idents)
		}
	}
}

// TestMapExprBottomUp: fn must receive nodes whose children were already
// mapped, and the input expression must be left untouched.
func TestMapExprBottomUp(t *testing.T) {
	e := Bin("+", &Ident{Name: "x"}, Bin("*", &Ident{Name: "x"}, Int(2)))
	mapped := MapExpr(e, func(n Expr) Expr {
		if id, ok := n.(*Ident); ok && id.Name == "x" {
			return Int(5)
		}
		return n
	})
	if Expr2String(e) != "x + x * 2" {
		t.Errorf("MapExpr mutated its input: %s", Expr2String(e))
	}
	if got := Expr2String(mapped); got != "5 + 5 * 2" {
		t.Errorf("mapped = %s, want 5 + 5 * 2", got)
	}
}

// TestSubstituteExprClones: each substitution site must get its own clone
// of the replacement, not a shared pointer.
func TestSubstituteExprClones(t *testing.T) {
	e := Bin("+", &Ident{Name: "k"}, &Ident{Name: "k"})
	repl := &Ident{Name: "r"}
	out := SubstituteExpr(e, "k", repl)
	b := out.(*Binary)
	if b.X == b.Y {
		t.Fatal("both substitution sites share one node")
	}
	if b.X == Expr(repl) || b.Y == Expr(repl) {
		t.Fatal("substitution inserted the replacement itself, not a clone")
	}
	b.X.(*Ident).Name = "mut"
	if repl.Name != "r" || b.Y.(*Ident).Name != "r" {
		t.Error("substitution sites are aliased")
	}
}

// TestExprUsesAndIdentsIn covers the query helpers on a mixed expression.
func TestExprUsesAndIdentsIn(t *testing.T) {
	e := Bin("+", &Ref{Name: "arr", Args: []Expr{&Ident{Name: "i"}}}, &Ident{Name: "n"})
	if !ExprUses(e, "i") || !ExprUses(e, "n") {
		t.Error("ExprUses missed a present identifier")
	}
	if ExprUses(e, "arr2") {
		t.Error("ExprUses found an absent identifier")
	}
	ids := IdentsIn(e)
	for _, want := range []string{"arr", "i", "n"} {
		if !ids[want] {
			t.Errorf("IdentsIn missed %s: %v", want, ids)
		}
	}
	if len(ids) != 3 {
		t.Errorf("IdentsIn returned extras: %v", ids)
	}
}

// Expr2String renders an expression via a throwaway assignment so the test
// doesn't depend on printer internals.
func Expr2String(e Expr) string {
	f := &File{Units: []*Unit{{
		Kind: ProgramUnit, Name: "p",
		Body: []Stmt{&AssignStmt{LHS: &Ident{Name: "t"}, RHS: e}},
	}}}
	out := Print(f)
	for _, line := range strings.Split(out, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "t = ") {
			return strings.TrimPrefix(line, "t = ")
		}
	}
	return out
}
