package ftn

// Inspect traverses the statement list in source order, calling fn for every
// statement. If fn returns false for a compound statement, its body is not
// traversed.
func Inspect(stmts []Stmt, fn func(Stmt) bool) {
	for _, s := range stmts {
		if !fn(s) {
			continue
		}
		switch s := s.(type) {
		case *DoStmt:
			Inspect(s.Body, fn)
		case *IfStmt:
			Inspect(s.Then, fn)
			Inspect(s.Else, fn)
		}
	}
}

// InspectExprs traverses every expression appearing in the statement list
// (including loop bounds and conditions), calling fn on each expression node
// top-down. If fn returns false, the expression's children are skipped.
func InspectExprs(stmts []Stmt, fn func(Expr) bool) {
	Inspect(stmts, func(s Stmt) bool {
		for _, e := range StmtExprs(s) {
			WalkExpr(e, fn)
		}
		return true
	})
}

// StmtExprs returns the top-level expressions directly referenced by s
// (not those of nested statements).
func StmtExprs(s Stmt) []Expr {
	switch s := s.(type) {
	case *AssignStmt:
		return []Expr{s.LHS, s.RHS}
	case *DoStmt:
		out := []Expr{s.Lo, s.Hi}
		if s.Step != nil {
			out = append(out, s.Step)
		}
		return out
	case *IfStmt:
		return []Expr{s.Cond}
	case *CallStmt:
		return s.Args
	case *PrintStmt:
		return s.Args
	}
	return nil
}

// WalkExpr traverses e top-down; if fn returns false, children are skipped.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch e := e.(type) {
	case *Ref:
		for _, a := range e.Args {
			WalkExpr(a, fn)
		}
	case *Unary:
		WalkExpr(e.X, fn)
	case *Binary:
		WalkExpr(e.X, fn)
		WalkExpr(e.Y, fn)
	}
}

// MapExpr rebuilds e bottom-up, replacing each node with fn's result.
// fn receives a node whose children have already been mapped.
func MapExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Ref:
		n := &Ref{Name: x.Name, XPos: x.XPos}
		for _, a := range x.Args {
			n.Args = append(n.Args, MapExpr(a, fn))
		}
		return fn(n)
	case *Unary:
		return fn(&Unary{Op: x.Op, X: MapExpr(x.X, fn), XPos: x.XPos})
	case *Binary:
		return fn(&Binary{Op: x.Op, X: MapExpr(x.X, fn), Y: MapExpr(x.Y, fn), XPos: x.XPos})
	default:
		return fn(CloneExpr(e))
	}
}

// SubstituteExpr returns e with every occurrence of identifier name replaced
// by a clone of repl.
func SubstituteExpr(e Expr, name string, repl Expr) Expr {
	return MapExpr(e, func(n Expr) Expr {
		if id, ok := n.(*Ident); ok && id.Name == name {
			return CloneExpr(repl)
		}
		return n
	})
}

// ExprUses reports whether identifier name occurs anywhere in e.
func ExprUses(e Expr, name string) bool {
	found := false
	WalkExpr(e, func(n Expr) bool {
		if id, ok := n.(*Ident); ok && id.Name == name {
			found = true
		}
		return !found
	})
	return found
}

// IdentsIn returns the set of identifier names appearing in e, including Ref
// names (which may be arrays or intrinsic functions).
func IdentsIn(e Expr) map[string]bool {
	out := make(map[string]bool)
	WalkExpr(e, func(n Expr) bool {
		switch n := n.(type) {
		case *Ident:
			out[n.Name] = true
		case *Ref:
			out[n.Name] = true
		}
		return true
	})
	return out
}

// EqualExpr reports structural equality of expressions (ignoring positions).
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	switch x := a.(type) {
	case *Ident:
		y, ok := b.(*Ident)
		return ok && x.Name == y.Name
	case *IntLit:
		y, ok := b.(*IntLit)
		return ok && x.Value == y.Value
	case *RealLit:
		y, ok := b.(*RealLit)
		return ok && x.Value == y.Value
	case *StrLit:
		y, ok := b.(*StrLit)
		return ok && x.Value == y.Value
	case *BoolLit:
		y, ok := b.(*BoolLit)
		return ok && x.Value == y.Value
	case *Ref:
		y, ok := b.(*Ref)
		if !ok || x.Name != y.Name || len(x.Args) != len(y.Args) {
			return false
		}
		for i := range x.Args {
			if !EqualExpr(x.Args[i], y.Args[i]) {
				return false
			}
		}
		return true
	case *Unary:
		y, ok := b.(*Unary)
		return ok && x.Op == y.Op && EqualExpr(x.X, y.X)
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && EqualExpr(x.X, y.X) && EqualExpr(x.Y, y.Y)
	}
	return false
}
