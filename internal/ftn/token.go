// Package ftn implements a front end for the Fortran 90 subset that the
// Compuniformer transformation operates on: free-form source, program and
// subroutine units, declarations with array bounds, DO nests, IF statements,
// assignments, CALL statements (including MPI calls), and PRINT.
//
// The package plays the role of the Nestor framework in the paper: it
// provides a parser, a transformable representation, and an unparser, so the
// transformation stays decoupled from any particular compiler.
package ftn

import "fmt"

// Pos is a position in a source file (1-based line and column).
type Pos struct {
	Line int
	Col  int
}

// String renders the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// IsValid reports whether the position has been set.
func (p Pos) IsValid() bool { return p.Line > 0 }

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds. Fortran has no reserved words, so keywords are lexed as IDENT
// and recognized contextually by the parser.
const (
	EOF TokKind = iota
	NEWLINE
	IDENT
	INTLIT
	REALLIT
	STRLIT

	LPAREN // (
	RPAREN // )
	COMMA  // ,
	COLON  // :
	DCOLON // ::
	ASSIGN // =
	PLUS   // +
	MINUS  // -
	STAR   // *
	SLASH  // /
	POW    // **
	CONCAT // //

	EQ // == or .eq.
	NE // /= or .ne.
	LT // < or .lt.
	LE // <= or .le.
	GT // > or .gt.
	GE // >= or .ge.

	AND // .and.
	OR  // .or.
	NOT // .not.

	TRUE  // .true.
	FALSE // .false.

	PERCENT   // %  (accepted so the Fig. 3 pseudo-code "ix % 10" parses as mod)
	SEMICOLON // ;
	COMMENT   // whole-line '!' comment (preserved through transformation)
)

var tokNames = map[TokKind]string{
	EOF: "EOF", NEWLINE: "newline", IDENT: "identifier", INTLIT: "integer literal",
	REALLIT: "real literal", STRLIT: "string literal",
	LPAREN: "(", RPAREN: ")", COMMA: ",", COLON: ":", DCOLON: "::", ASSIGN: "=",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/", POW: "**", CONCAT: "//",
	EQ: "==", NE: "/=", LT: "<", LE: "<=", GT: ">", GE: ">=",
	AND: ".and.", OR: ".or.", NOT: ".not.", TRUE: ".true.", FALSE: ".false.",
	PERCENT: "%", SEMICOLON: ";", COMMENT: "comment",
}

// String returns a human-readable name for the token kind.
func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokKind
	Text string // canonical text: identifiers lower-cased, literals verbatim
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INTLIT, REALLIT, STRLIT:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}

// Error is a front-end diagnostic carrying a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
