package ftn

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// reparse parses, prints, and reparses, returning both printed forms.
func reparse(t *testing.T, src string) (string, string) {
	t.Helper()
	f1, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	out1 := Print(f1)
	f2, err := Parse(out1)
	if err != nil {
		t.Fatalf("reparse of printed output failed: %v\n--- printed:\n%s", err, out1)
	}
	return out1, Print(f2)
}

func TestPrintRoundtripFixpoint(t *testing.T) {
	// print(parse(print(parse(src)))) == print(parse(src)).
	sources := []string{
		figure2a,
		`
program indirect
  integer as(1:10, 1:10, 1:10)
  integer at(1:100)
  integer ar(1:10, 1:10, 1:10)
  integer iy, ix, tx, ty, ierr

  do iy = 1, 10
    call p(iy, at)
    do ix = 1, 100
      tx = mod(ix, 10)
      ty = ix/10
      as(tx, ty, iy) = at(ix)
    enddo
  enddo
  call mpi_alltoall(as, 100, mpi_integer, ar, 100, mpi_integer, mpi_comm_world, ierr)
end program indirect

subroutine p(iy, at)
  integer iy
  integer at(*)
  integer i
  do i = 1, 100
    at(i) = i + iy
  enddo
end subroutine p
`,
		`
program control
  integer i, j, x
  logical ok
  do i = 1, 10, 2
    do j = i, 10
      if (i*j > 20 .and. .not. ok) then
        x = x + 1
      else if (i == j) then
        x = x - 1
      else
        x = 0
      endif
    enddo
    if (x > 100) exit
  enddo
  print *, 'x =', x
end program control
`,
	}
	for i, src := range sources {
		out1, out2 := reparse(t, src)
		if out1 != out2 {
			t.Errorf("source %d: print not a fixpoint\n--- first:\n%s\n--- second:\n%s", i, out1, out2)
		}
	}
}

func TestPrintFigure2aShape(t *testing.T) {
	f := MustParse(figure2a)
	out := Print(f)
	for _, want := range []string{
		"program target",
		"implicit none",
		"include 'mpif.h'",
		"integer, parameter :: nx = 64",
		"do iy = 1, nx",
		"do ix = 1, nx",
		"as(ix) = ix + iy",
		"call mpi_alltoall(as, 8, mpi_integer, ar, 8, mpi_integer, mpi_comm_world, ierr)",
		"end program target",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("printed output missing %q:\n%s", want, out)
		}
	}
}

// Random expression generator for the parse∘print property test.

func randExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		switch r.Intn(3) {
		case 0:
			return &IntLit{Value: int64(r.Intn(100))}
		case 1:
			names := []string{"a", "b", "c", "nx", "i", "j"}
			return &Ident{Name: names[r.Intn(len(names))]}
		default:
			arrs := []string{"as", "ar", "w"}
			n := 1 + r.Intn(2)
			ref := &Ref{Name: arrs[r.Intn(len(arrs))]}
			for k := 0; k < n; k++ {
				ref.Args = append(ref.Args, randExpr(r, depth-1))
			}
			return ref
		}
	}
	ops := []string{"+", "-", "*", "/", "**", "==", "/=", "<", "<=", ">", ">=", ".and.", ".or."}
	op := ops[r.Intn(len(ops))]
	// Keep types plausible: logical ops over comparisons, arithmetic over
	// arithmetic. For the roundtrip property, shape is all that matters.
	switch op {
	case ".and.", ".or.":
		x := &Binary{Op: "<", X: randArith(r, depth-1), Y: randArith(r, depth-1)}
		y := &Binary{Op: ">", X: randArith(r, depth-1), Y: randArith(r, depth-1)}
		return &Binary{Op: op, X: x, Y: y}
	case "==", "/=", "<", "<=", ">", ">=":
		return &Binary{Op: op, X: randArith(r, depth-1), Y: randArith(r, depth-1)}
	default:
		return &Binary{Op: op, X: randArith(r, depth-1), Y: randArith(r, depth-1)}
	}
}

func randArith(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		if r.Intn(2) == 0 {
			return &IntLit{Value: int64(r.Intn(50))}
		}
		return &Ident{Name: []string{"a", "b", "i", "j"}[r.Intn(4)]}
	}
	if r.Intn(8) == 0 {
		return &Unary{Op: "-", X: randArith(r, depth-1)}
	}
	ops := []string{"+", "-", "*", "/", "**"}
	return &Binary{Op: ops[r.Intn(len(ops))], X: randArith(r, depth-1), Y: randArith(r, depth-1)}
}

func TestQuickExprPrintParseRoundtrip(t *testing.T) {
	// Property: parsing a printed expression yields a structurally equal AST.
	r := rand.New(rand.NewSource(20060610))
	check := func() bool {
		e := randExpr(r, 4)
		src := "program p\nx = " + ExprString(e) + "\nend program p\n"
		f, err := Parse(src)
		if err != nil {
			t.Logf("parse failed for %q: %v", ExprString(e), err)
			return false
		}
		got := f.Program().Body[0].(*AssignStmt).RHS
		if !EqualExpr(e, got) {
			t.Logf("roundtrip mismatch:\n  want %s\n  got  %s", ExprString(e), ExprString(got))
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(check, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestQuickClonedEqual(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	check := func() bool {
		e := randExpr(r, 4)
		c := CloneExpr(e)
		return EqualExpr(e, c)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := MustParse(figure2a)
	c := CloneFile(f)
	// Mutate the clone; original must be unaffected.
	c.Units[0].Body[0].(*DoStmt).Var = "zz"
	if f.Units[0].Body[0].(*DoStmt).Var != "iy" {
		t.Error("clone shares DoStmt with original")
	}
	c.Units[0].Decls[0].Entities[0].Name = "mutated"
	if f.Units[0].Decls[0].Entities[0].Name == "mutated" {
		t.Error("clone shares Decl with original")
	}
}

func TestFreshNamer(t *testing.T) {
	f := MustParse(figure2a)
	fn := NewFreshNamer(f.Program())
	// "ix" is taken; "cc_j" is not.
	if got := fn.Fresh("ix"); got == "ix" {
		t.Errorf("Fresh(ix) = %q, want a renamed variant", got)
	}
	if got := fn.Fresh("cc_j"); got != "cc_j" {
		t.Errorf("Fresh(cc_j) = %q, want cc_j", got)
	}
	// Asking again must not reuse.
	if got := fn.Fresh("cc_j"); got == "cc_j" {
		t.Error("Fresh(cc_j) reused a taken name")
	}
}

func TestSubstituteExpr(t *testing.T) {
	f := MustParse("program p\nx = a + b*a\nend program p\n")
	rhs := f.Program().Body[0].(*AssignStmt).RHS
	out := SubstituteExpr(rhs, "a", Int(7))
	if got := ExprString(out); got != "7 + b * 7" {
		t.Errorf("substitute = %q", got)
	}
	// Original untouched.
	if got := ExprString(rhs); got != "a + b * a" {
		t.Errorf("original mutated: %q", got)
	}
}

func TestPrintStmtsIndent(t *testing.T) {
	f := MustParse("program p\ninteger i\ni = 1\nend program p\n")
	out := PrintStmts(f.Program().Body, 2)
	if !strings.HasPrefix(out, "    i = 1") {
		t.Errorf("indent wrong: %q", out)
	}
}
