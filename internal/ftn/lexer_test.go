package ftn

import (
	"strings"
	"testing"
)

func kindsOf(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestLexBasicTokens(t *testing.T) {
	toks, err := Lex("x = a + b*2 - c/3 ** 2")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokKind{IDENT, ASSIGN, IDENT, PLUS, IDENT, STAR, INTLIT, MINUS, IDENT, SLASH, INTLIT, POW, INTLIT, EOF}
	got := kindsOf(toks)
	if len(got) != len(want) {
		t.Fatalf("token count = %d, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexIdentifiersLowercased(t *testing.T) {
	toks, err := Lex("MPI_AllToAll NX")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Text != "mpi_alltoall" {
		t.Errorf("ident text = %q, want mpi_alltoall", toks[0].Text)
	}
	if toks[1].Text != "nx" {
		t.Errorf("ident text = %q, want nx", toks[1].Text)
	}
}

func TestLexDotOperators(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
	}{
		{".and.", AND}, {".or.", OR}, {".not.", NOT},
		{".eq.", EQ}, {".ne.", NE}, {".lt.", LT},
		{".le.", LE}, {".gt.", GT}, {".ge.", GE},
		{".true.", TRUE}, {".false.", FALSE},
		{".AND.", AND}, {".True.", TRUE},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.src, err)
		}
		if toks[0].Kind != c.kind {
			t.Errorf("Lex(%q) = %s, want %s", c.src, toks[0].Kind, c.kind)
		}
	}
}

func TestLexF77RelationalBetweenNumbers(t *testing.T) {
	toks, err := Lex("1.eq.2")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokKind{INTLIT, EQ, INTLIT, EOF}
	got := kindsOf(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Lex(1.eq.2) = %v, want %v", got, want)
		}
	}
}

func TestLexNumbers(t *testing.T) {
	cases := []struct {
		src  string
		kind TokKind
		text string
	}{
		{"42", INTLIT, "42"},
		{"3.5", REALLIT, "3.5"},
		{"1.", REALLIT, "1."},
		{".5", REALLIT, ".5"},
		{"1e3", REALLIT, "1e3"},
		{"2.5e-2", REALLIT, "2.5e-2"},
		{"1d0", REALLIT, "1e0"},
	}
	for _, c := range cases {
		toks, err := Lex(c.src)
		if err != nil {
			t.Fatalf("Lex(%q): %v", c.src, err)
		}
		if toks[0].Kind != c.kind || toks[0].Text != c.text {
			t.Errorf("Lex(%q) = %s %q, want %s %q", c.src, toks[0].Kind, toks[0].Text, c.kind, c.text)
		}
	}
}

func TestLexStrings(t *testing.T) {
	toks, err := Lex("'it''s' \"double\"")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Kind != STRLIT || toks[0].Text != "it's" {
		t.Errorf("tok0 = %v, want STRLIT it's", toks[0])
	}
	if toks[1].Kind != STRLIT || toks[1].Text != "double" {
		t.Errorf("tok1 = %v, want STRLIT double", toks[1])
	}
}

func TestLexContinuation(t *testing.T) {
	src := "call foo(a, &\n  b, c)"
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	for _, tok := range toks {
		if tok.Kind == NEWLINE {
			t.Fatalf("continuation produced NEWLINE: %v", toks)
		}
	}
	// The optional leading '&' on the continued line is consumed too.
	src2 := "call foo(a, &\n  & b, c)"
	toks2, err := Lex(src2)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if len(toks2) != len(toks) {
		t.Errorf("leading-& form differs: %v vs %v", toks2, toks)
	}
}

func TestLexCommentWholeLineEmitted(t *testing.T) {
	src := "x = 1\n! whole line comment\ny = 2 ! trailing comment\n"
	toks, err := Lex(src)
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	nComments := 0
	for _, tok := range toks {
		if tok.Kind == COMMENT {
			nComments++
			if !strings.HasPrefix(tok.Text, "!") {
				t.Errorf("comment text = %q, want leading '!'", tok.Text)
			}
		}
	}
	if nComments != 1 {
		t.Errorf("comment tokens = %d, want 1 (trailing comments dropped)", nComments)
	}
}

func TestLexNewlinesCollapsed(t *testing.T) {
	toks, err := Lex("\n\n\nx = 1\n\n\ny = 2\n\n")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	for i := 1; i < len(toks); i++ {
		if toks[i].Kind == NEWLINE && toks[i-1].Kind == NEWLINE {
			t.Fatalf("consecutive NEWLINE tokens at %d: %v", i, toks)
		}
	}
	if toks[0].Kind == NEWLINE {
		t.Fatalf("leading NEWLINE not dropped: %v", toks)
	}
}

func TestLexOperatorsComposite(t *testing.T) {
	toks, err := Lex(":: == /= <= >= ** // < > =")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	want := []TokKind{DCOLON, EQ, NE, LE, GE, POW, CONCAT, LT, GT, ASSIGN, EOF}
	got := kindsOf(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("tok[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks, err := Lex("a = 1\n  b = 2")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("a at %v, want 1:1", toks[0].Pos)
	}
	// Find 'b'.
	for _, tok := range toks {
		if tok.Kind == IDENT && tok.Text == "b" {
			if tok.Pos.Line != 2 || tok.Pos.Col != 3 {
				t.Errorf("b at %v, want 2:3", tok.Pos)
			}
			return
		}
	}
	t.Fatal("token b not found")
}

func TestLexErrorUnterminatedString(t *testing.T) {
	_, err := Lex("s = 'oops\n")
	if err == nil {
		t.Fatal("want error for unterminated string")
	}
}

func TestLexErrorBadDotOp(t *testing.T) {
	_, err := Lex("x .nope. y")
	if err == nil {
		t.Fatal("want error for unknown dot operator")
	}
}

func TestLexPercent(t *testing.T) {
	toks, err := Lex("ix % 10")
	if err != nil {
		t.Fatalf("Lex: %v", err)
	}
	if toks[1].Kind != PERCENT {
		t.Errorf("tok1 = %v, want %%", toks[1])
	}
}
