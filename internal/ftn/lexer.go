package ftn

import (
	"strings"
	"unicode"
)

// Lexer converts free-form Fortran source into a token stream. It lower-cases
// identifiers (Fortran is case-insensitive), strips '!' comments, joins '&'
// continuation lines, and turns line breaks into NEWLINE tokens (the
// statement separator, as is ';').
type Lexer struct {
	src     string
	pos     int // byte offset
	line    int
	col     int
	toks    []Token
	errors  []*Error
	pending *Token // a COMMENT token produced inside blank-skipping
	// comments records '!' comment text keyed by the line it appeared on,
	// so the parser can preserve whole-line comments through a transform.
	comments map[int]string
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1, comments: make(map[int]string)}
}

// Lex tokenizes the whole input. It returns the token slice (always
// terminated by EOF) and the first error encountered, if any.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	toks := lx.Run()
	if len(lx.errors) > 0 {
		return toks, lx.errors[0]
	}
	return toks, nil
}

// Run tokenizes the whole input and returns the tokens.
func (lx *Lexer) Run() []Token {
	for {
		t := lx.next()
		lx.toks = append(lx.toks, t)
		if t.Kind == EOF {
			break
		}
	}
	return lx.collapseNewlines(lx.toks)
}

// Comments returns whole-line comment text keyed by source line.
func (lx *Lexer) Comments() map[int]string { return lx.comments }

// Errors returns all diagnostics produced while lexing.
func (lx *Lexer) Errors() []*Error { return lx.errors }

// collapseNewlines merges runs of NEWLINE tokens and drops leading ones.
func (lx *Lexer) collapseNewlines(in []Token) []Token {
	out := in[:0]
	for _, t := range in {
		if t.Kind == NEWLINE {
			if len(out) == 0 || out[len(out)-1].Kind == NEWLINE {
				continue
			}
		}
		out = append(out, t)
	}
	return out
}

func (lx *Lexer) errorf(pos Pos, format string, args ...interface{}) {
	lx.errors = append(lx.errors, errf(pos, format, args...))
}

func (lx *Lexer) at() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) peekByte() byte {
	if lx.pos >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos]
}

func (lx *Lexer) peekByteAt(off int) byte {
	if lx.pos+off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.pos+off]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.pos]
	lx.pos++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

// skipBlanksAndComments consumes spaces, tabs, '!' comments and '&'
// continuations. It returns true when it consumed a line break that should
// yield a NEWLINE token (i.e., not a continuation).
func (lx *Lexer) skipBlanksAndComments() bool {
	for lx.pos < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r':
			lx.advance()
		case c == '!':
			start := lx.pos
			startCol := lx.col
			startPos := lx.at()
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
			text := strings.TrimRight(lx.src[start:lx.pos], " \t\r")
			// Only whole-line comments (nothing but blanks before '!')
			// are preserved as COMMENT tokens; trailing comments are dropped.
			if lx.lineBlankBefore(startCol) {
				lx.comments[startPos.Line] = text
				lx.pending = &Token{Kind: COMMENT, Text: text, Pos: startPos}
				return false
			}
		case c == '&':
			// Continuation: consume '&', optional blanks/comment, then the
			// newline, and keep going on the next line without emitting
			// NEWLINE. A leading '&' on the continued line is consumed too.
			lx.advance()
			for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
				b := lx.peekByte()
				if b == ' ' || b == '\t' || b == '\r' {
					lx.advance()
					continue
				}
				if b == '!' {
					for lx.pos < len(lx.src) && lx.peekByte() != '\n' {
						lx.advance()
					}
					break
				}
				lx.errorf(lx.at(), "unexpected %q after continuation '&'", string(b))
				lx.advance()
			}
			if lx.pos < len(lx.src) {
				lx.advance() // the newline
			}
			// Skip blanks at start of continued line and an optional '&'.
			for lx.pos < len(lx.src) {
				b := lx.peekByte()
				if b == ' ' || b == '\t' || b == '\r' {
					lx.advance()
				} else {
					break
				}
			}
			if lx.peekByte() == '&' {
				lx.advance()
			}
		case c == '\n':
			lx.advance()
			return true
		default:
			return false
		}
	}
	return false
}

// lineBlankBefore reports whether everything before column col on the
// current line is whitespace.
func (lx *Lexer) lineBlankBefore(col int) bool {
	// Walk backwards from lx.pos over the current line.
	i := lx.pos - (lx.col - 1)
	end := i + col - 1
	if i < 0 || end > len(lx.src) {
		return false
	}
	for ; i < end; i++ {
		if lx.src[i] != ' ' && lx.src[i] != '\t' {
			return false
		}
	}
	return true
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// next scans and returns the next token.
func (lx *Lexer) next() Token {
	if lx.skipBlanksAndComments() {
		return Token{Kind: NEWLINE, Pos: lx.at()}
	}
	if lx.pending != nil {
		t := *lx.pending
		lx.pending = nil
		return t
	}
	pos := lx.at()
	if lx.pos >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}
	}
	c := lx.peekByte()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(pos)
	case isDigit(c):
		return lx.lexNumber(pos)
	case c == '.':
		// Either a dot-operator (.and.) or a real literal (.5).
		if isDigit(lx.peekByteAt(1)) {
			return lx.lexNumber(pos)
		}
		return lx.lexDotWord(pos)
	case c == '\'' || c == '"':
		return lx.lexString(pos, c)
	}
	lx.advance()
	mk := func(k TokKind, text string) Token { return Token{Kind: k, Text: text, Pos: pos} }
	switch c {
	case '(':
		return mk(LPAREN, "(")
	case ')':
		return mk(RPAREN, ")")
	case ',':
		return mk(COMMA, ",")
	case ';':
		return mk(SEMICOLON, ";")
	case '%':
		return mk(PERCENT, "%")
	case ':':
		if lx.peekByte() == ':' {
			lx.advance()
			return mk(DCOLON, "::")
		}
		return mk(COLON, ":")
	case '=':
		if lx.peekByte() == '=' {
			lx.advance()
			return mk(EQ, "==")
		}
		return mk(ASSIGN, "=")
	case '+':
		return mk(PLUS, "+")
	case '-':
		return mk(MINUS, "-")
	case '*':
		if lx.peekByte() == '*' {
			lx.advance()
			return mk(POW, "**")
		}
		return mk(STAR, "*")
	case '/':
		if lx.peekByte() == '=' {
			lx.advance()
			return mk(NE, "/=")
		}
		if lx.peekByte() == '/' {
			lx.advance()
			return mk(CONCAT, "//")
		}
		return mk(SLASH, "/")
	case '<':
		if lx.peekByte() == '=' {
			lx.advance()
			return mk(LE, "<=")
		}
		return mk(LT, "<")
	case '>':
		if lx.peekByte() == '=' {
			lx.advance()
			return mk(GE, ">=")
		}
		return mk(GT, ">")
	}
	lx.errorf(pos, "unexpected character %q", string(c))
	return lx.next()
}

func (lx *Lexer) lexIdent(pos Pos) Token {
	start := lx.pos
	for lx.pos < len(lx.src) && isIdentPart(lx.peekByte()) {
		lx.advance()
	}
	text := strings.ToLower(lx.src[start:lx.pos])
	return Token{Kind: IDENT, Text: text, Pos: pos}
}

func (lx *Lexer) lexNumber(pos Pos) Token {
	start := lx.pos
	isReal := false
	for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
		lx.advance()
	}
	if lx.peekByte() == '.' {
		// Careful: "1." followed by a dot-op like "1..and." cannot occur in
		// our subset, but "1.eq.2" can in F77 style. Treat '.' + letter +
		// eventual '.' as a dot operator only for known operator words.
		if !lx.dotOpFollows(lx.pos) {
			isReal = true
			lx.advance()
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		}
	}
	if b := lx.peekByte(); b == 'e' || b == 'E' || b == 'd' || b == 'D' {
		// Exponent part; require a digit (with optional sign) after.
		save, saveLine, saveCol := lx.pos, lx.line, lx.col
		lx.advance()
		if b2 := lx.peekByte(); b2 == '+' || b2 == '-' {
			lx.advance()
		}
		if isDigit(lx.peekByte()) {
			isReal = true
			for lx.pos < len(lx.src) && isDigit(lx.peekByte()) {
				lx.advance()
			}
		} else {
			lx.pos, lx.line, lx.col = save, saveLine, saveCol
		}
	}
	text := strings.ToLower(lx.src[start:lx.pos])
	if isReal {
		text = strings.Replace(text, "d", "e", 1)
		return Token{Kind: REALLIT, Text: text, Pos: pos}
	}
	return Token{Kind: INTLIT, Text: text, Pos: pos}
}

// dotOpFollows reports whether the text at offset i spells a dot operator
// such as ".eq." or ".and.".
func (lx *Lexer) dotOpFollows(i int) bool {
	if i >= len(lx.src) || lx.src[i] != '.' {
		return false
	}
	j := i + 1
	for j < len(lx.src) && unicode.IsLetter(rune(lx.src[j])) {
		j++
	}
	if j >= len(lx.src) || lx.src[j] != '.' {
		return false
	}
	word := strings.ToLower(lx.src[i+1 : j])
	_, ok := dotOps[word]
	return ok
}

var dotOps = map[string]TokKind{
	"and": AND, "or": OR, "not": NOT,
	"eq": EQ, "ne": NE, "lt": LT, "le": LE, "gt": GT, "ge": GE,
	"true": TRUE, "false": FALSE,
}

func (lx *Lexer) lexDotWord(pos Pos) Token {
	lx.advance() // '.'
	start := lx.pos
	for lx.pos < len(lx.src) && unicode.IsLetter(rune(lx.peekByte())) {
		lx.advance()
	}
	word := strings.ToLower(lx.src[start:lx.pos])
	if lx.peekByte() != '.' {
		lx.errorf(pos, "malformed dot operator .%s", word)
		return lx.next()
	}
	lx.advance() // trailing '.'
	kind, ok := dotOps[word]
	if !ok {
		lx.errorf(pos, "unknown dot operator .%s.", word)
		return lx.next()
	}
	return Token{Kind: kind, Text: "." + word + ".", Pos: pos}
}

func (lx *Lexer) lexString(pos Pos, quote byte) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.pos >= len(lx.src) || lx.peekByte() == '\n' {
			lx.errorf(pos, "unterminated string literal")
			break
		}
		c := lx.advance()
		if c == quote {
			if lx.peekByte() == quote { // doubled quote escape
				lx.advance()
				sb.WriteByte(quote)
				continue
			}
			break
		}
		sb.WriteByte(c)
	}
	return Token{Kind: STRLIT, Text: sb.String(), Pos: pos}
}
