package ftn

// Symbol describes one declared name within a unit.
type Symbol struct {
	Name      string
	Type      TypeSpec
	Dims      []Dim // nil for scalars
	Parameter bool
	Init      Expr // parameter value, nil otherwise
	Intent    string
	IsParam   bool // dummy argument of the unit
	Decl      *Decl
	Entity    *Entity
}

// IsArray reports whether the symbol has array dimensions.
func (s *Symbol) IsArray() bool { return len(s.Dims) > 0 }

// Rank returns the number of array dimensions (0 for scalars).
func (s *Symbol) Rank() int { return len(s.Dims) }

// SymbolTable maps lower-case names to symbols for one unit.
type SymbolTable struct {
	unit *Unit
	syms map[string]*Symbol
}

// Symbols builds the symbol table for unit u.
func Symbols(u *Unit) *SymbolTable {
	st := &SymbolTable{unit: u, syms: make(map[string]*Symbol)}
	dummy := make(map[string]bool, len(u.Params))
	for _, p := range u.Params {
		dummy[p] = true
	}
	for _, d := range u.Decls {
		for _, e := range d.Entities {
			st.syms[e.Name] = &Symbol{
				Name:      e.Name,
				Type:      d.Type,
				Dims:      d.DimsOf(e),
				Parameter: d.Parameter,
				Init:      e.Init,
				Intent:    d.Intent,
				IsParam:   dummy[e.Name],
				Decl:      d,
				Entity:    e,
			}
		}
	}
	return st
}

// Lookup returns the symbol for name, or nil.
func (st *SymbolTable) Lookup(name string) *Symbol { return st.syms[name] }

// IsArray reports whether name is declared as an array in this unit.
func (st *SymbolTable) IsArray(name string) bool {
	s := st.syms[name]
	return s != nil && s.IsArray()
}

// IsParameter reports whether name is a named constant.
func (st *SymbolTable) IsParameter(name string) bool {
	s := st.syms[name]
	return s != nil && s.Parameter
}

// Names returns all declared names (unordered).
func (st *SymbolTable) Names() []string {
	out := make([]string, 0, len(st.syms))
	for n := range st.syms {
		out = append(out, n)
	}
	return out
}

// FreshNamer generates identifiers that do not collide with any name
// declared in a unit (nor with names it has already handed out). The
// transformation uses it for the variables it introduces.
type FreshNamer struct {
	taken map[string]bool
}

// NewFreshNamer seeds the namer with every name visible in u.
func NewFreshNamer(u *Unit) *FreshNamer {
	fn := &FreshNamer{taken: make(map[string]bool)}
	for _, p := range u.Params {
		fn.taken[p] = true
	}
	for _, d := range u.Decls {
		for _, e := range d.Entities {
			fn.taken[e.Name] = true
		}
	}
	// Also avoid names used without declaration (implicit typing).
	Inspect(u.Body, func(s Stmt) bool {
		for _, e := range StmtExprs(s) {
			for n := range IdentsIn(e) {
				fn.taken[n] = true
			}
		}
		if do, ok := s.(*DoStmt); ok {
			fn.taken[do.Var] = true
		}
		return true
	})
	return fn
}

// Fresh returns base if free, else base2, base3, ...; the result is
// reserved so subsequent calls cannot return it again.
func (fn *FreshNamer) Fresh(base string) string {
	if !fn.taken[base] {
		fn.taken[base] = true
		return base
	}
	for i := 2; ; i++ {
		name := base + itoa(i)
		if !fn.taken[name] {
			fn.taken[name] = true
			return name
		}
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var buf [20]byte
	n := len(buf)
	for i > 0 {
		n--
		buf[n] = byte('0' + i%10)
		i /= 10
	}
	return string(buf[n:])
}
