package ftn

import "fmt"

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() Pos
}

// File is a parsed source file containing one or more program units.
type File struct {
	Units []*Unit
}

// Pos returns the position of the first unit.
func (f *File) Pos() Pos {
	if len(f.Units) > 0 {
		return f.Units[0].Pos()
	}
	return Pos{}
}

// Program returns the main program unit, or nil if the file has none.
func (f *File) Program() *Unit {
	for _, u := range f.Units {
		if u.Kind == ProgramUnit {
			return u
		}
	}
	return nil
}

// Subroutine returns the subroutine named name (lower case), or nil.
func (f *File) Subroutine(name string) *Unit {
	for _, u := range f.Units {
		if u.Kind == SubroutineUnit && u.Name == name {
			return u
		}
	}
	return nil
}

// UnitKind distinguishes program units.
type UnitKind int

// Program unit kinds.
const (
	ProgramUnit UnitKind = iota
	SubroutineUnit
	FunctionUnit
)

// String names the unit kind as it appears in source.
func (k UnitKind) String() string {
	switch k {
	case ProgramUnit:
		return "program"
	case SubroutineUnit:
		return "subroutine"
	case FunctionUnit:
		return "function"
	}
	return fmt.Sprintf("UnitKind(%d)", int(k))
}

// Unit is a program, subroutine, or function unit.
type Unit struct {
	Kind         UnitKind
	Name         string
	Params       []string
	ImplicitNone bool
	Includes     []string // include 'path' lines, preserved verbatim
	Decls        []*Decl
	Body         []Stmt
	Result       *TypeSpec // function result type, nil otherwise
	XPos         Pos
}

// Pos returns the unit's source position.
func (u *Unit) Pos() Pos { return u.XPos }

// BaseType enumerates the scalar base types of the subset.
type BaseType int

// Base types.
const (
	TInteger BaseType = iota
	TReal
	TDouble
	TLogical
	TCharacter
)

// String names the base type as it appears in source.
func (t BaseType) String() string {
	switch t {
	case TInteger:
		return "integer"
	case TReal:
		return "real"
	case TDouble:
		return "double precision"
	case TLogical:
		return "logical"
	case TCharacter:
		return "character"
	}
	return fmt.Sprintf("BaseType(%d)", int(t))
}

// TypeSpec is a type specifier, e.g. "integer" or "character(len=32)".
type TypeSpec struct {
	Base BaseType
	Len  Expr // character length, nil otherwise
}

// Dim is one array dimension with inclusive bounds; Lo == nil means 1.
type Dim struct {
	Lo Expr
	Hi Expr
}

// Entity is one declared name within a declaration statement.
type Entity struct {
	Name string
	Dims []Dim // nil for scalars (unless Decl.DimAttr applies)
	Init Expr  // parameter initializer, nil otherwise
}

// Decl is a type declaration statement, possibly declaring several entities.
type Decl struct {
	Type      TypeSpec
	Parameter bool
	Intent    string // "", "in", "out", "inout"
	DimAttr   []Dim  // dimension(...) attribute applied to all entities
	Entities  []*Entity
	XPos      Pos
}

// Pos returns the declaration's source position.
func (d *Decl) Pos() Pos { return d.XPos }

// DimsOf returns the effective dimensions of entity e under this decl.
func (d *Decl) DimsOf(e *Entity) []Dim {
	if len(e.Dims) > 0 {
		return e.Dims
	}
	return d.DimAttr
}

// Stmt is the interface implemented by all statement nodes.
type Stmt interface {
	Node
	stmtNode()
}

// AssignStmt is "lhs = rhs"; LHS is an *Ident or *Ref.
type AssignStmt struct {
	LHS  Expr
	RHS  Expr
	XPos Pos
}

// DoStmt is a counted DO loop with inclusive bounds and optional step.
type DoStmt struct {
	Var  string
	Lo   Expr
	Hi   Expr
	Step Expr // nil means 1
	Body []Stmt
	XPos Pos
}

// IfStmt is a block IF; ELSE IF chains are nested as a single IfStmt in Else.
type IfStmt struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
	XPos Pos
}

// CallStmt is "call name(args)".
type CallStmt struct {
	Name string
	Args []Expr
	XPos Pos
}

// PrintStmt is "print *, args" (or "write(*,*) args").
type PrintStmt struct {
	Args []Expr
	XPos Pos
}

// ReturnStmt is "return".
type ReturnStmt struct{ XPos Pos }

// StopStmt is "stop".
type StopStmt struct{ XPos Pos }

// ContinueStmt is "continue" (a no-op).
type ContinueStmt struct{ XPos Pos }

// ExitStmt is "exit" (break innermost loop).
type ExitStmt struct{ XPos Pos }

// CycleStmt is "cycle" (continue innermost loop).
type CycleStmt struct{ XPos Pos }

// CommentStmt preserves a whole-line '!' comment through transformation.
type CommentStmt struct {
	Text string // includes the leading '!'
	XPos Pos
}

// Pos implementations.
func (s *AssignStmt) Pos() Pos   { return s.XPos }
func (s *DoStmt) Pos() Pos       { return s.XPos }
func (s *IfStmt) Pos() Pos       { return s.XPos }
func (s *CallStmt) Pos() Pos     { return s.XPos }
func (s *PrintStmt) Pos() Pos    { return s.XPos }
func (s *ReturnStmt) Pos() Pos   { return s.XPos }
func (s *StopStmt) Pos() Pos     { return s.XPos }
func (s *ContinueStmt) Pos() Pos { return s.XPos }
func (s *ExitStmt) Pos() Pos     { return s.XPos }
func (s *CycleStmt) Pos() Pos    { return s.XPos }
func (s *CommentStmt) Pos() Pos  { return s.XPos }

func (*AssignStmt) stmtNode()   {}
func (*DoStmt) stmtNode()       {}
func (*IfStmt) stmtNode()       {}
func (*CallStmt) stmtNode()     {}
func (*PrintStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*StopStmt) stmtNode()     {}
func (*ContinueStmt) stmtNode() {}
func (*ExitStmt) stmtNode()     {}
func (*CycleStmt) stmtNode()    {}
func (*CommentStmt) stmtNode()  {}

// Expr is the interface implemented by all expression nodes.
type Expr interface {
	Node
	exprNode()
}

// Ident is a bare name (variable or named constant).
type Ident struct {
	Name string
	XPos Pos
}

// IntLit is an integer literal.
type IntLit struct {
	Value int64
	XPos  Pos
}

// RealLit is a real literal; Text preserves the source spelling.
type RealLit struct {
	Value float64
	Text  string
	XPos  Pos
}

// StrLit is a character literal.
type StrLit struct {
	Value string
	XPos  Pos
}

// BoolLit is .true. or .false..
type BoolLit struct {
	Value bool
	XPos  Pos
}

// Ref is "name(args)": an array element reference or a function call; which
// one is resolved against declarations (see Unit symbol helpers).
type Ref struct {
	Name string
	Args []Expr
	XPos Pos
}

// Unary is a unary operation; Op is "-", "+", or ".not.".
type Unary struct {
	Op   string
	X    Expr
	XPos Pos
}

// Binary is a binary operation; Op is one of
// "+", "-", "*", "/", "**", "==", "/=", "<", "<=", ">", ">=", ".and.", ".or.".
type Binary struct {
	Op   string
	X    Expr
	Y    Expr
	XPos Pos
}

// Pos implementations.
func (e *Ident) Pos() Pos   { return e.XPos }
func (e *IntLit) Pos() Pos  { return e.XPos }
func (e *RealLit) Pos() Pos { return e.XPos }
func (e *StrLit) Pos() Pos  { return e.XPos }
func (e *BoolLit) Pos() Pos { return e.XPos }
func (e *Ref) Pos() Pos     { return e.XPos }
func (e *Unary) Pos() Pos   { return e.XPos }
func (e *Binary) Pos() Pos  { return e.XPos }

func (*Ident) exprNode()   {}
func (*IntLit) exprNode()  {}
func (*RealLit) exprNode() {}
func (*StrLit) exprNode()  {}
func (*BoolLit) exprNode() {}
func (*Ref) exprNode()     {}
func (*Unary) exprNode()   {}
func (*Binary) exprNode()  {}

// Convenience constructors used heavily by the transformation code.

// Id returns an identifier expression.
func Id(name string) *Ident { return &Ident{Name: name} }

// Int returns an integer literal expression.
func Int(v int64) *IntLit { return &IntLit{Value: v} }

// Call returns a Ref expression (function call or array reference).
func Call(name string, args ...Expr) *Ref { return &Ref{Name: name, Args: args} }

// Bin returns a binary expression.
func Bin(op string, x, y Expr) *Binary { return &Binary{Op: op, X: x, Y: y} }

// Add returns x + y, folding integer literals and the (e - c) + c pattern
// the tiling code generator produces.
func Add(x, y Expr) Expr {
	if xi, ok := x.(*IntLit); ok {
		if yi, ok := y.(*IntLit); ok {
			return Int(xi.Value + yi.Value)
		}
		if xi.Value == 0 {
			return y
		}
	}
	if yi, ok := y.(*IntLit); ok {
		if yi.Value == 0 {
			return x
		}
		if xb, ok := x.(*Binary); ok && xb.Op == "-" {
			if ci, ok := xb.Y.(*IntLit); ok {
				if ci.Value == yi.Value {
					return xb.X
				}
				return Add(xb.X, Int(yi.Value-ci.Value))
			}
		}
		if xb, ok := x.(*Binary); ok && xb.Op == "+" {
			if ci, ok := xb.Y.(*IntLit); ok {
				return Add(xb.X, Int(ci.Value+yi.Value))
			}
		}
	}
	return Bin("+", x, y)
}

// Sub returns x - y, folding integer literals.
func Sub(x, y Expr) Expr {
	if xi, ok := x.(*IntLit); ok {
		if yi, ok := y.(*IntLit); ok {
			return Int(xi.Value - yi.Value)
		}
	}
	if yi, ok := y.(*IntLit); ok && yi.Value == 0 {
		return x
	}
	return Bin("-", x, y)
}

// Mul returns x * y, folding integer literals and identities.
func Mul(x, y Expr) Expr {
	if xi, ok := x.(*IntLit); ok {
		if yi, ok := y.(*IntLit); ok {
			return Int(xi.Value * yi.Value)
		}
		if xi.Value == 1 {
			return y
		}
		if xi.Value == 0 {
			return Int(0)
		}
	}
	if yi, ok := y.(*IntLit); ok {
		if yi.Value == 1 {
			return x
		}
		if yi.Value == 0 {
			return Int(0)
		}
	}
	return Bin("*", x, y)
}

// Div returns x / y (integer division in integer context), folding literals.
func Div(x, y Expr) Expr {
	if yi, ok := y.(*IntLit); ok && yi.Value == 1 {
		return x
	}
	if xi, ok := x.(*IntLit); ok {
		if yi, ok := y.(*IntLit); ok && yi.Value != 0 {
			return Int(xi.Value / yi.Value)
		}
	}
	return Bin("/", x, y)
}

// Mod returns mod(x, y).
func Mod(x, y Expr) Expr { return Call("mod", x, y) }
