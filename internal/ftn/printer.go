package ftn

import (
	"fmt"
	"strings"
)

// Print renders a File back to Fortran source in a canonical style:
// lower-case keywords, two-space indentation, minimal parentheses.
func Print(f *File) string {
	var pr printer
	for i, u := range f.Units {
		if i > 0 {
			pr.nl()
		}
		pr.unit(u)
	}
	return pr.sb.String()
}

// PrintUnit renders a single program unit.
func PrintUnit(u *Unit) string {
	var pr printer
	pr.unit(u)
	return pr.sb.String()
}

// PrintStmts renders a statement list at the given indent level; used by
// golden tests and by cmd/paperfigs to show generated code fragments.
func PrintStmts(stmts []Stmt, indent int) string {
	pr := printer{indent: indent}
	pr.stmts(stmts)
	return pr.sb.String()
}

// ExprString renders a single expression.
func ExprString(e Expr) string {
	var pr printer
	return pr.expr(e, 0)
}

type printer struct {
	sb     strings.Builder
	indent int
}

func (p *printer) line(format string, args ...interface{}) {
	p.sb.WriteString(strings.Repeat("  ", p.indent))
	fmt.Fprintf(&p.sb, format, args...)
	p.sb.WriteByte('\n')
}

func (p *printer) nl() { p.sb.WriteByte('\n') }

func (p *printer) unit(u *Unit) {
	switch u.Kind {
	case ProgramUnit:
		p.line("program %s", u.Name)
	case SubroutineUnit:
		if len(u.Params) > 0 {
			p.line("subroutine %s(%s)", u.Name, strings.Join(u.Params, ", "))
		} else {
			p.line("subroutine %s", u.Name)
		}
	case FunctionUnit:
		p.line("function %s(%s)", u.Name, strings.Join(u.Params, ", "))
	}
	p.indent++
	if u.ImplicitNone {
		p.line("implicit none")
	}
	for _, inc := range u.Includes {
		p.line("include '%s'", inc)
	}
	for _, d := range u.Decls {
		p.decl(d)
	}
	if len(u.Decls) > 0 || u.ImplicitNone || len(u.Includes) > 0 {
		p.nl()
	}
	p.stmts(u.Body)
	p.indent--
	switch u.Kind {
	case ProgramUnit:
		p.line("end program %s", u.Name)
	case SubroutineUnit:
		p.line("end subroutine %s", u.Name)
	case FunctionUnit:
		p.line("end function %s", u.Name)
	}
}

func (p *printer) decl(d *Decl) {
	var sb strings.Builder
	sb.WriteString(p.typeSpec(d.Type))
	attrs := false
	if d.Parameter {
		sb.WriteString(", parameter")
		attrs = true
	}
	if len(d.DimAttr) > 0 {
		sb.WriteString(", dimension(")
		sb.WriteString(p.dims(d.DimAttr))
		sb.WriteString(")")
		attrs = true
	}
	if d.Intent != "" {
		fmt.Fprintf(&sb, ", intent(%s)", d.Intent)
		attrs = true
	}
	if attrs {
		sb.WriteString(" :: ")
	} else {
		sb.WriteString(" ")
	}
	for i, e := range d.Entities {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(e.Name)
		if len(e.Dims) > 0 {
			sb.WriteString("(")
			sb.WriteString(p.dims(e.Dims))
			sb.WriteString(")")
		}
		if e.Init != nil {
			sb.WriteString(" = ")
			sb.WriteString(p.expr(e.Init, 0))
		}
	}
	p.line("%s", sb.String())
}

func (p *printer) typeSpec(t TypeSpec) string {
	switch t.Base {
	case TCharacter:
		if t.Len != nil {
			return fmt.Sprintf("character(len=%s)", p.expr(t.Len, 0))
		}
		return "character"
	default:
		return t.Base.String()
	}
}

func (p *printer) dims(dims []Dim) string {
	parts := make([]string, len(dims))
	for i, d := range dims {
		switch {
		case d.Lo == nil && d.Hi == nil:
			parts[i] = "*"
		case d.Lo == nil:
			parts[i] = p.expr(d.Hi, 0)
		case d.Hi == nil:
			parts[i] = p.expr(d.Lo, 0) + ":*"
		default:
			parts[i] = p.expr(d.Lo, 0) + ":" + p.expr(d.Hi, 0)
		}
	}
	return strings.Join(parts, ", ")
}

func (p *printer) stmts(list []Stmt) {
	for _, s := range list {
		p.stmt(s)
	}
}

func (p *printer) stmt(s Stmt) {
	switch s := s.(type) {
	case *AssignStmt:
		p.line("%s = %s", p.expr(s.LHS, 0), p.expr(s.RHS, 0))
	case *DoStmt:
		if s.Step != nil {
			p.line("do %s = %s, %s, %s", s.Var, p.expr(s.Lo, 0), p.expr(s.Hi, 0), p.expr(s.Step, 0))
		} else {
			p.line("do %s = %s, %s", s.Var, p.expr(s.Lo, 0), p.expr(s.Hi, 0))
		}
		p.indent++
		p.stmts(s.Body)
		p.indent--
		p.line("enddo")
	case *IfStmt:
		p.ifChain(s, "if")
		p.line("endif")
	case *CallStmt:
		if len(s.Args) == 0 {
			p.line("call %s()", s.Name)
		} else {
			p.line("call %s(%s)", s.Name, p.exprList(s.Args))
		}
	case *PrintStmt:
		if len(s.Args) == 0 {
			p.line("print *")
		} else {
			p.line("print *, %s", p.exprList(s.Args))
		}
	case *ReturnStmt:
		p.line("return")
	case *StopStmt:
		p.line("stop")
	case *ContinueStmt:
		p.line("continue")
	case *ExitStmt:
		p.line("exit")
	case *CycleStmt:
		p.line("cycle")
	case *CommentStmt:
		p.line("%s", s.Text)
	default:
		p.line("! <unknown statement %T>", s)
	}
}

// ifChain prints an IF construct header and branches, flattening else-if
// chains; the caller prints the final "endif".
func (p *printer) ifChain(s *IfStmt, kw string) {
	p.line("%s (%s) then", kw, p.expr(s.Cond, 0))
	p.indent++
	p.stmts(s.Then)
	p.indent--
	if len(s.Else) == 1 {
		if nested, ok := s.Else[0].(*IfStmt); ok {
			p.ifChain(nested, "else if")
			return
		}
	}
	if len(s.Else) > 0 {
		p.line("else")
		p.indent++
		p.stmts(s.Else)
		p.indent--
	}
}

func (p *printer) exprList(list []Expr) string {
	parts := make([]string, len(list))
	for i, e := range list {
		parts[i] = p.expr(e, 0)
	}
	return strings.Join(parts, ", ")
}

// Operator precedence for minimal parenthesization. Higher binds tighter.
func opPrec(op string) int {
	switch op {
	case ".or.":
		return 1
	case ".and.":
		return 2
	case ".not.":
		return 3
	case "==", "/=", "<", "<=", ">", ">=":
		return 4
	case "+", "-", "u-": // unary sign has the same precedence as binary +/-
		return 5
	case "*", "/":
		return 6
	case "**":
		return 8
	}
	return 9
}

// expr prints e; parent is the precedence of the enclosing operator; the
// result is parenthesized when needed to preserve structure.
func (p *printer) expr(e Expr, parent int) string {
	switch e := e.(type) {
	case *Ident:
		return e.Name
	case *IntLit:
		return fmt.Sprintf("%d", e.Value)
	case *RealLit:
		if e.Text != "" {
			return e.Text
		}
		s := fmt.Sprintf("%g", e.Value)
		if !strings.ContainsAny(s, ".e") {
			s += ".0"
		}
		return s
	case *StrLit:
		return "'" + strings.ReplaceAll(e.Value, "'", "''") + "'"
	case *BoolLit:
		if e.Value {
			return ".true."
		}
		return ".false."
	case *Ref:
		return e.Name + "(" + p.exprList(e.Args) + ")"
	case *Unary:
		prec := opPrec("u-")
		if e.Op == ".not." {
			prec = opPrec(".not.")
		}
		// The operand must bind at least as tightly as the sign itself
		// ("-(a + b)" needs parens; "-a * b" does not).
		inner := p.expr(e.X, prec+1)
		// A signed operand directly under a sign ("- -x") is illegal.
		if e.Op != ".not." && len(inner) > 0 && (inner[0] == '-' || inner[0] == '+') {
			inner = "(" + inner + ")"
		}
		s := e.Op + inner
		if e.Op == ".not." {
			s = e.Op + " " + inner
		}
		if prec < parent {
			return "(" + s + ")"
		}
		return s
	case *Binary:
		prec := opPrec(e.Op)
		// Binary operators are left-associative except '**': parenthesize
		// an equal-precedence right operand so tree shape survives a
		// print/parse roundtrip; mirror-image for the right-associative '**'.
		lprec, rprec := prec, prec+1
		if e.Op == "**" {
			lprec, rprec = prec+1, prec
		}
		lhs := p.expr(e.X, lprec)
		rhs := p.expr(e.Y, rprec)
		// Fortran forbids two consecutive operators ("a - -b"); wrap a
		// signed right operand in parentheses.
		if len(rhs) > 0 && (rhs[0] == '-' || rhs[0] == '+') {
			rhs = "(" + rhs + ")"
		}
		var s string
		switch e.Op {
		case "**":
			s = lhs + e.Op + rhs
		default:
			s = lhs + " " + e.Op + " " + rhs
		}
		if prec < parent {
			return "(" + s + ")"
		}
		return s
	}
	return fmt.Sprintf("<?expr %T>", e)
}
