package ftn

import (
	"testing"
)

// cloneFixture is a program exercising every statement and expression kind
// the cloner handles.
const cloneFixture = `
program clones
  implicit none
  include 'mpif.h'
  integer, parameter :: n = 8
  integer a(1:n, 1:n)
  integer i, j, s
  real x

  s = 0
  x = 1.5
  do i = 1, n
    do j = 1, n, 2
      a(i, j) = -(i*3 + j) + mod(i, 2)
    enddo
    if (i > n/2) then
      s = s + a(i, 1)
    else
      s = s - 1
      cycle
    endif
    if (s > 100) then
      exit
    endif
  enddo
  print *, 'sum', s
  call helper(a, s)
  stop
end program clones

subroutine helper(a, s)
  integer a(*)
  integer s
  s = s + a(1)
  return
end subroutine helper
`

func parseFixture(t *testing.T) *File {
	t.Helper()
	f, err := Parse(cloneFixture)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestCloneFileIndependence: mutating every node of the clone must leave
// the original untouched (print-equal to its own fresh parse).
func TestCloneFileIndependence(t *testing.T) {
	orig := parseFixture(t)
	before := Print(orig)

	clone := CloneFile(orig)
	if Print(clone) != before {
		t.Fatal("clone does not print identically to the original")
	}

	// Mutate the clone aggressively: rename every identifier and ref, and
	// rewrite every literal.
	for _, u := range clone.Units {
		u.Name = "mut_" + u.Name
		for _, d := range u.Decls {
			for _, e := range d.Entities {
				e.Name = "mut_" + e.Name
			}
		}
		mutateStmts(u.Body)
	}

	if after := Print(orig); after != before {
		t.Errorf("mutating the clone changed the original:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
}

func mutateStmts(stmts []Stmt) {
	Inspect(stmts, func(s Stmt) bool {
		for _, e := range StmtExprs(s) {
			WalkExpr(e, func(x Expr) bool {
				switch x := x.(type) {
				case *Ident:
					x.Name = "zz_" + x.Name
				case *Ref:
					x.Name = "zz_" + x.Name
				case *IntLit:
					x.Value += 1000
				case *RealLit:
					x.Value += 1000
				}
				return true
			})
		}
		if d, ok := s.(*DoStmt); ok {
			d.Var = "zz_" + d.Var
		}
		if c, ok := s.(*CallStmt); ok {
			c.Name = "zz_" + c.Name
		}
		return true
	})
}

// TestCloneStmtSharedNothing: a cloned statement must share no Expr or Stmt
// pointers with its source (pointer-level aliasing check, catching shallow
// copies that happen to print identically).
func TestCloneStmtSharedNothing(t *testing.T) {
	f := parseFixture(t)
	unit := f.Program()
	seen := map[Expr]bool{}
	Inspect(unit.Body, func(s Stmt) bool {
		for _, e := range StmtExprs(s) {
			WalkExpr(e, func(x Expr) bool {
				seen[x] = true
				return true
			})
		}
		return true
	})
	clone := CloneStmts(unit.Body)
	Inspect(clone, func(s Stmt) bool {
		for _, e := range StmtExprs(s) {
			WalkExpr(e, func(x Expr) bool {
				if seen[x] {
					t.Fatalf("clone shares expression node %T with original", x)
				}
				return true
			})
		}
		return true
	})
}

// TestCloneExprEquality: clones are structurally equal but not identical.
func TestCloneExprEquality(t *testing.T) {
	e := &Binary{
		Op: "+",
		X:  &Ref{Name: "a", Args: []Expr{&Ident{Name: "i"}}},
		Y:  &Unary{Op: "-", X: &IntLit{Value: 3}},
	}
	c := CloneExpr(e)
	if !EqualExpr(e, c) {
		t.Fatal("clone not structurally equal")
	}
	cb := c.(*Binary)
	cb.X.(*Ref).Args[0].(*Ident).Name = "j"
	if EqualExpr(e, c) {
		t.Fatal("mutating clone affected structural equality — nodes are shared")
	}
	if e.X.(*Ref).Args[0].(*Ident).Name != "i" {
		t.Fatal("original mutated through clone")
	}
}

// TestCloneDeclDeep: dimension bound expressions must be deep-copied.
func TestCloneDeclDeep(t *testing.T) {
	d := &Decl{
		Type: TypeSpec{Base: TInteger},
		Entities: []*Entity{{
			Name: "a",
			Dims: []Dim{{Lo: Int(1), Hi: &Ident{Name: "n"}}},
		}},
	}
	c := CloneDecl(d)
	c.Entities[0].Dims[0].Hi.(*Ident).Name = "m"
	if d.Entities[0].Dims[0].Hi.(*Ident).Name != "n" {
		t.Error("CloneDecl shares dimension expressions")
	}
	c.Entities[0].Name = "b"
	if d.Entities[0].Name != "a" {
		t.Error("CloneDecl shares entities")
	}
}
