package tune

import (
	"strings"
	"testing"

	"repro/internal/exec"
	"repro/internal/plan"
	"repro/internal/workload"
)

// memoTestInput is a small single-site kernel plus machines, cheap enough
// to tune twice in a unit test.
func memoTestInput() Input {
	return Input{
		Source: workload.DirectSource(workload.DirectParams{NX: 4096, NP: 4}),
		NP:     4,
		FixedK: 256,
		Machines: []plan.Machine{
			plan.MPICHGM2005(),
			plan.MPICHTCP2005(),
		},
	}
}

// TestMemoShortCircuitsRepeatQueries: the second Tune over the same
// (shape, machine) pair must be served from the memo — same plan, no
// additional measured runs against the variant store.
func TestMemoShortCircuitsRepeatQueries(t *testing.T) {
	in := memoTestInput()
	memo := NewMemo()
	store := exec.NewMemStore()
	opts := Options{Memo: memo, Store: store}

	first, err := Tune(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	compiledAfterFirst := store.Stats().Compiled
	if compiledAfterFirst == 0 {
		t.Fatal("first tune measured nothing through the store")
	}
	for _, ch := range first {
		if ch.MemoHit {
			t.Fatalf("%s: fresh search marked as memo hit", ch.Machine)
		}
	}
	st := memo.Stats()
	if st.Hits != 0 || st.Misses != int64(len(in.Machines)) || st.Entries != int64(len(in.Machines)) {
		t.Fatalf("memo stats after first tune = %+v", st)
	}

	second, err := Tune(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := store.Stats().Compiled; got != compiledAfterFirst {
		t.Fatalf("repeat query compiled %d new variants, want 0", got-compiledAfterFirst)
	}
	if st := memo.Stats(); st.Hits != int64(len(in.Machines)) {
		t.Fatalf("memo stats after repeat tune = %+v", st)
	}
	for i, ch := range second {
		if !ch.MemoHit {
			t.Fatalf("%s: repeat query not served from memo", ch.Machine)
		}
		if ch.Plan.Key() != first[i].Plan.Key() {
			t.Fatalf("%s: memoized plan differs from the tuned plan", ch.Machine)
		}
		if ch.Speedup != first[i].Speedup || ch.Evaluations != first[i].Evaluations {
			t.Fatalf("%s: memoized measurements differ: %+v vs %+v", ch.Machine, ch, first[i])
		}
	}
}

// TestMemoAliasesShapeIdenticalSources: a source differing only in a
// trailing comment presents the identical tuning problem, so the memo must
// serve it without a second search — the whole point of fingerprint keys
// over content keys.
func TestMemoAliasesShapeIdenticalSources(t *testing.T) {
	in := memoTestInput()
	in.Machines = in.Machines[:1]
	memo := NewMemo()
	opts := Options{Memo: memo, Store: exec.NewMemStore()}
	if _, err := Tune(in, opts); err != nil {
		t.Fatal(err)
	}

	tweaked := in
	lines := strings.SplitN(in.Source, "\n", 2)
	tweaked.Source = lines[0] + " ! incidental\n" + lines[1]
	got, err := Tune(tweaked, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !got[0].MemoHit {
		t.Fatal("shape-identical source missed the memo")
	}
}

// TestMemoSplitsOnSearchParameters: a different budget, fixed K, or knob
// restriction would run a different search, so none of them may alias.
func TestMemoSplitsOnSearchParameters(t *testing.T) {
	base := MemoKey("fp1-x", Input{NP: 4, FixedK: 256}, 14, false, []string{"ar"})
	variants := []string{
		MemoKey("fp1-x", Input{NP: 8, FixedK: 256}, 14, false, []string{"ar"}),
		MemoKey("fp1-x", Input{NP: 4, FixedK: 128}, 14, false, []string{"ar"}),
		MemoKey("fp1-x", Input{NP: 4, FixedK: 256}, 20, false, []string{"ar"}),
		MemoKey("fp1-x", Input{NP: 4, FixedK: 256}, 14, true, []string{"ar"}),
		MemoKey("fp1-x", Input{NP: 4, FixedK: 256}, 14, false, []string{"ar", "br"}),
		MemoKey("fp1-y", Input{NP: 4, FixedK: 256}, 14, false, []string{"ar"}),
	}
	for i, v := range variants {
		if v == base {
			t.Errorf("variant %d aliases the base memo key: %s", i, v)
		}
	}
	// Array order is not a search parameter.
	if MemoKey("fp1-x", Input{NP: 4}, 14, false, []string{"br", "ar"}) !=
		MemoKey("fp1-x", Input{NP: 4}, 14, false, []string{"ar", "br"}) {
		t.Error("memo key depends on array order")
	}
}

// TestMemoHandsOutDeepCopies: mutating a looked-up choice (as harness rows
// do when they annotate plans) must not corrupt the memo.
func TestMemoHandsOutDeepCopies(t *testing.T) {
	memo := NewMemo()
	ch := Choice{
		Machine: "m",
		Plan:    &plan.Plan{Schema: plan.Schema, Sites: []plan.SitePlan{{Site: "1:1", Decision: plan.Decision{K: 8}}}},
		Sites:   []SiteChoice{{Site: "1:1", SeedKs: []int64{2, 4}}},
		Candidates: []Candidate{
			{Decisions: []plan.Decision{{K: 8}}},
		},
	}
	memo.Store("k", ch)

	got, ok := memo.Lookup("k")
	if !ok {
		t.Fatal("stored choice not found")
	}
	got.Plan.Sites[0].Decision.K = 999
	got.Sites[0].SeedKs[0] = 999
	got.Candidates[0].Decisions[0].K = 999

	again, _ := memo.Lookup("k")
	if again.Plan.Sites[0].Decision.K != 8 ||
		again.Sites[0].SeedKs[0] != 2 ||
		again.Candidates[0].Decisions[0].K != 8 {
		t.Fatal("memo entry mutated through a looked-up copy")
	}
	// The stored entry must also be insulated from the caller's original.
	ch.Plan.Sites[0].Decision.K = 777
	final, _ := memo.Lookup("k")
	if final.Plan.Sites[0].Decision.K != 8 {
		t.Fatal("memo entry aliases the caller's plan")
	}
}
