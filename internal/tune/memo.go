package tune

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/plan"
)

// Memo caches tuning outcomes by analysis fingerprint: a (program-shape,
// machine) pair that has been tuned once returns its Choice without
// re-running the search. The underlying assumption is the fingerprint's —
// two programs with the same fingerprint present the same tuning problem
// (same sites, same facts, same normalized compute structure, same
// machine), so the search would retrace the same candidates to the same
// winner. This is what turns repeat plan queries from O(sweep) into
// O(lookup) for a long-lived service.
//
// The memo stores deep copies and hands out deep copies: callers mutate
// their Choice (harness rows annotate it) without corrupting the cache.
// Safe for concurrent use.
type Memo struct {
	mu      sync.Mutex
	entries map[string]Choice
	stats   MemoStats
}

// MemoStats counts memo traffic.
type MemoStats struct {
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
	Entries int64 `json:"entries"`
}

// NewMemo returns an empty plan memo.
func NewMemo() *Memo {
	return &Memo{entries: map[string]Choice{}}
}

// Lookup returns the memoized choice for the key, deep-copied, and whether
// one exists.
func (m *Memo) Lookup(key string) (Choice, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	ch, ok := m.entries[key]
	if ok {
		m.stats.Hits++
		return cloneChoice(ch), true
	}
	m.stats.Misses++
	return Choice{}, false
}

// Store memoizes a tuning outcome under the key (deep-copied; the last
// store wins on a racing duplicate — both raced the same search on the
// same problem, so the outcomes agree).
func (m *Memo) Store(key string, ch Choice) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.entries[key] = cloneChoice(ch)
	m.stats.Entries = int64(len(m.entries))
}

// Stats snapshots the memo counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stats
}

// MemoKey builds the memo key for a tuning query: the analysis fingerprint
// (which already covers the machine and the program shape) extended with
// every search parameter that steers the outcome — rank count, fixed-K
// baseline, measurement budget, knob restriction, and the oracle's
// observable arrays. Two queries agreeing on all of it would run the
// identical deterministic search.
func MemoKey(fingerprint string, in Input, maxMeasured int, kOnly bool, arrays []string) string {
	sorted := append([]string(nil), arrays...)
	sort.Strings(sorted)
	return fmt.Sprintf("%s|np=%d|fixedk=%d|maxm=%d|konly=%t|arrays=%s",
		fingerprint, in.NP, in.FixedK, maxMeasured, kOnly, strings.Join(sorted, ","))
}

// cloneChoice deep-copies a Choice: the plan, the per-site choices (and
// their seed slices), and every candidate's decision vector.
func cloneChoice(ch Choice) Choice {
	out := ch
	if ch.Plan != nil {
		p := *ch.Plan
		p.Sites = append([]plan.SitePlan(nil), ch.Plan.Sites...)
		out.Plan = &p
	}
	out.Sites = make([]SiteChoice, len(ch.Sites))
	for i, sc := range ch.Sites {
		out.Sites[i] = sc
		out.Sites[i].SeedKs = append([]int64(nil), sc.SeedKs...)
	}
	out.Candidates = make([]Candidate, len(ch.Candidates))
	for i, c := range ch.Candidates {
		out.Candidates[i] = c
		out.Candidates[i].Decisions = append([]plan.Decision(nil), c.Decisions...)
	}
	return out
}
