package tune

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/interp"
	"repro/internal/plan"
	"repro/internal/workload"
)

// machines returns the paper pair, with the scenario's cost override
// applied the way the harness does.
func machines(sc workload.Scenario) []plan.Machine {
	ms := plan.PaperPair()
	if sc.Costs != nil {
		for i := range ms {
			ms[i].Costs = *sc.Costs
		}
	}
	return ms
}

// TestDeterministicChoices: the search is a pure function of its input —
// running it twice must produce byte-identical choices (the property the
// harness's determinism-across-parallelism test builds on).
func TestDeterministicChoices(t *testing.T) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 2})[1]
	in := Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: machines(sc)}
	a, err := Tune(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(in, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same input produced different choices:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSameSeedSameChosenPlan: regenerating the corpus from the same seed
// and tuning again must land on the same chosen plan per machine.
func TestSameSeedSameChosenPlan(t *testing.T) {
	pick := func() map[string]plan.Decision {
		sc := workload.GenerateScenarios(workload.GenOptions{Seed: 7, Limit: 4})[3]
		choices, err := Tune(
			Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: machines(sc)},
			Options{},
		)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]plan.Decision{}
		for _, c := range choices {
			out[c.Machine] = c.Chosen
		}
		return out
	}
	if a, b := pick(), pick(); !reflect.DeepEqual(a, b) {
		t.Errorf("seed 7 chose %v then %v", a, b)
	}
}

// TestTunedNeverLosesToFixed: the fixed-K default decision is always in
// the candidate set, so the tuned speedup is bounded below by the fixed-K
// speedup, and every choice is backed by an oracle-identical run.
func TestTunedNeverLosesToFixed(t *testing.T) {
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{Limit: 5}) {
		choices, err := Tune(
			Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: machines(sc)},
			Options{},
		)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		for _, c := range choices {
			if c.Speedup < c.FixedSpeedup {
				t.Errorf("%s/%s: tuned %.3f worse than fixed %.3f",
					sc.Name, c.Machine, c.Speedup, c.FixedSpeedup)
			}
			if c.Evaluations < 1 {
				t.Errorf("%s/%s: no measured candidates", sc.Name, c.Machine)
			}
			if c.SearchSimNs <= 0 {
				t.Errorf("%s/%s: no recorded search cost", sc.Name, c.Machine)
			}
			var chosenVec []plan.Decision
			for _, sc := range c.Sites {
				chosenVec = append(chosenVec, sc.Decision)
			}
			found := false
			for _, cand := range c.Candidates {
				if reflect.DeepEqual(cand.Decisions, chosenVec) {
					found = true
					if !cand.Identical {
						t.Errorf("%s/%s: chosen plan %+v failed the oracle", sc.Name, c.Machine, cand.Decisions)
					}
				}
			}
			if !found {
				t.Errorf("%s/%s: chosen plan %+v not among candidates", sc.Name, c.Machine, chosenVec)
			}
		}
	}
}

// TestIdentityCandidateNeverLoses: the skip-every-site identity plan seeds
// every search, so the tuned speedup is bounded below by exactly 1.0 — the
// tuner can decline to transform, and on machines where every transform
// loses (the hpc-rdma-2019 class) it must choose the identity plan.
func TestIdentityCandidateNeverLoses(t *testing.T) {
	modern, err := plan.ByName("hpc-rdma-2019")
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{Limit: 4}) {
		ms := append(machines(sc), modern)
		choices, err := Tune(
			Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: ms},
			Options{},
		)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		for _, c := range choices {
			if c.Speedup < 1.0 {
				t.Errorf("%s/%s: tuned speedup %.4f below 1.0 — identity candidate lost",
					sc.Name, c.Machine, c.Speedup)
			}
			// The identity vector is always among the measured candidates,
			// at speedup exactly 1.0, oracle-identical by construction.
			found := false
			for _, cand := range c.Candidates {
				allSkip := len(cand.Decisions) > 0
				for _, d := range cand.Decisions {
					if !d.Skip {
						allSkip = false
					}
				}
				if allSkip {
					found = true
					if cand.Speedup != 1.0 || !cand.Identical {
						t.Errorf("%s/%s: identity candidate %+v, want speedup exactly 1.0 and identical",
							sc.Name, c.Machine, cand)
					}
				}
			}
			if !found {
				t.Errorf("%s/%s: identity candidate missing from the measured set",
					sc.Name, c.Machine)
			}
			// When the tuner keeps the original, it says so coherently: the
			// chosen decision is the canonical skip for every site.
			if c.Chosen.Skip {
				for _, s := range c.Sites {
					if !s.Decision.Skip {
						t.Errorf("%s/%s: headline skip but site %s decision %+v",
							sc.Name, c.Machine, s.Site, s.Decision)
					}
				}
				if c.Speedup != 1.0 {
					t.Errorf("%s/%s: identity plan chosen at speedup %.4f, want exactly 1.0",
						sc.Name, c.Machine, c.Speedup)
				}
			}
		}
	}
}

// TestMultiKnobNeverLosesToKOnly: the K stage of the multi-knob search is
// identical to the K-only search and the knob stage only ever adopts
// strictly better plans, so pointwise the multi-knob tuned speedup is
// bounded below by the K-only tuned speedup.
func TestMultiKnobNeverLosesToKOnly(t *testing.T) {
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{Limit: 6}) {
		in := Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: machines(sc)}
		multi, err := Tune(in, Options{})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		konly, err := Tune(in, Options{KOnly: true})
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		for i := range multi {
			if multi[i].Speedup+1e-12 < konly[i].Speedup {
				t.Errorf("%s/%s: multi-knob %.4f below K-only %.4f",
					sc.Name, multi[i].Machine, multi[i].Speedup, konly[i].Speedup)
			}
			// The identity plan (skip) is part of every search — including
			// the K-only ablation, where it is the baseline candidate, not a
			// knob flip. A non-skip K-only choice must keep the default knobs.
			if d := konly[i].Chosen; !d.Skip &&
				(d.Wait != plan.WaitDeferred || d.SendOrder != plan.SendStaggered || d.Interchange != plan.InterchangeAuto) {
				t.Errorf("%s/%s: K-only search flipped a non-K knob: %+v", sc.Name, konly[i].Machine, d)
			}
		}
	}
}

// TestMeasurementBudget: MaxMeasured caps the simulated pre-push runs.
func TestMeasurementBudget(t *testing.T) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 1})[0]
	choices, err := Tune(
		Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: machines(sc)[1:]},
		Options{MaxMeasured: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := choices[0].Evaluations; got > 2 {
		t.Errorf("evaluations = %d, want ≤ 2", got)
	}
}

func TestTuneRejectsBrokenSource(t *testing.T) {
	_, err := Tune(Input{Source: "not fortran", NP: 4, FixedK: 4, Machines: plan.PaperPair()}, Options{})
	if err == nil {
		t.Fatal("expected an error for unparseable source")
	}
}

// TestSharedVariantsAcrossMachines: the same candidate plan is generated
// once and reused for every machine (the Apply memo replaces the old
// Retiler), so evaluations stay per-machine but codegen does not repeat.
func TestSharedVariantsAcrossMachines(t *testing.T) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 2})[1]
	choices, err := Tune(
		Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: machines(sc)},
		Options{},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(choices) != 2 {
		t.Fatalf("choices = %d, want 2", len(choices))
	}
	for _, c := range choices {
		if c.OriginalNs <= 0 {
			t.Errorf("%s: no original measurement", c.Machine)
		}
	}
	if choices[0].Machine == choices[1].Machine {
		t.Error("machine names collide")
	}
}

func TestSeedKsUsesMachineCosts(t *testing.T) {
	geo := &geom{psz: 64, trip: 256, perIterBytes: 1024}
	ladder := divisors(64)
	slow := plan.MPICHTCP2005()
	fast := plan.MPICHGM2005()
	a := seedKs(slow, geo, 8, ladder)
	b := seedKs(fast, geo, 8, ladder)
	if len(a) == 0 || len(b) == 0 {
		t.Fatal("no seeds proposed")
	}
	if reflect.DeepEqual(a, b) {
		t.Error("different machines proposed identical seeds — the model is not consulted")
	}
	// Sanity: a machine with a different CPU cost model shifts the
	// compute-balance rung.
	tweaked := fast
	tweaked.Costs = interp.CostModel{Op: 100, Assign: 100, Store: 400, Load: 200, LoopIter: 200, CallOver: 2000}
	c := seedKs(tweaked, geo, 8, ladder)
	if reflect.DeepEqual(b, c) {
		t.Error("changing the CPU cost model did not move any seed")
	}
}

func TestDivisors(t *testing.T) {
	got := divisors(12)
	want := []int64{1, 2, 3, 4, 6, 12}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("divisors(12) = %v, want %v", got, want)
	}
	if d := divisors(0); len(d) != 0 {
		t.Errorf("divisors(0) = %v, want empty", d)
	}
}

func TestSnapToLadder(t *testing.T) {
	ladder := []int64{1, 2, 4, 8, 16}
	cases := []struct{ k, lo, hi int64 }{
		{3, 2, 4},
		{4, 4, 4},
		{100, 16, 16},
		{1, 1, 1},
	}
	for _, c := range cases {
		lo, hi := snapToLadder(ladder, c.k)
		if lo != c.lo || hi != c.hi {
			t.Errorf("snap(%d) = (%d, %d), want (%d, %d)", c.k, lo, hi, c.lo, c.hi)
		}
	}
}

// TestPerSiteDivergenceBeatsUniform: on the multi-site family the
// coordinate-descent stage must find a plan giving each ALLTOALL site its
// own decision that strictly beats the best uniform plan the first stage
// found — the end-to-end payoff of site-keyed plans.
func TestPerSiteDivergenceBeatsUniform(t *testing.T) {
	var sc workload.Scenario
	for _, cand := range workload.GenerateScenarios(workload.GenOptions{}) {
		if cand.Family == "multi" {
			sc = cand
			break
		}
	}
	if sc.Name == "" {
		t.Fatal("no multi scenario in the corpus")
	}
	choices, err := Tune(
		Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: machines(sc)},
		Options{Arrays: sc.Arrays},
	)
	if err != nil {
		t.Fatal(err)
	}
	divergentWins := 0
	for _, c := range choices {
		if len(c.Sites) != sc.Sites {
			t.Fatalf("%s: %d site choices, want %d", c.Machine, len(c.Sites), sc.Sites)
		}
		for _, s := range c.Sites {
			if len(s.SeedKs) == 0 {
				t.Errorf("%s: site %s has no analytic seeds", c.Machine, s.Site)
			}
		}
		if c.UniformSpeedup <= 0 {
			t.Errorf("%s: no uniform baseline recorded", c.Machine)
		}
		if c.Speedup+1e-12 < c.UniformSpeedup {
			t.Errorf("%s: tuned %.4f below the best uniform plan %.4f — the descent lost ground",
				c.Machine, c.Speedup, c.UniformSpeedup)
		}
		if c.Divergent {
			same := true
			for _, s := range c.Sites[1:] {
				if s.Decision != c.Sites[0].Decision {
					same = false
				}
			}
			if same {
				t.Errorf("%s: flagged divergent but all sites share %+v", c.Machine, c.Sites[0].Decision)
			}
			if c.Speedup > c.UniformSpeedup {
				divergentWins++
			}
		}
		// The chosen plan must replay, not just describe: Apply with it on a
		// fresh analysis and re-simulate — the makespan must reproduce the
		// tuned measurement exactly (virtual time is deterministic).
		if err := c.Plan.Validate(); err != nil {
			t.Errorf("%s: chosen plan invalid: %v", c.Machine, err)
			continue
		}
		prog, err := core.Analyze(sc.Source, core.AnalyzeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		src, rep, err := core.Apply(prog, c.Plan)
		if err != nil {
			t.Fatalf("%s: chosen plan does not replay: %v", c.Machine, err)
		}
		if rep.TransformedCount() != sc.Sites {
			t.Fatalf("%s: replayed plan transformed %d sites, want %d", c.Machine, rep.TransformedCount(), sc.Sites)
		}
		var m *plan.Machine
		for _, cand := range machines(sc) {
			if cand.Name == c.Machine {
				cand := cand
				m = &cand
			}
		}
		if m == nil {
			t.Fatalf("machine %s not found", c.Machine)
		}
		res, err := simulate(src, sc.NP, *m, exec.Runner{Engine: exec.Default})
		if err != nil {
			t.Fatalf("%s: replayed plan does not run: %v", c.Machine, err)
		}
		if got := int64(res.Elapsed()); got != c.PrepushNs {
			t.Errorf("%s: replayed plan took %d ns, tuned measurement was %d ns", c.Machine, got, c.PrepushNs)
		}
	}
	if divergentWins == 0 {
		t.Error("no machine's divergent plan strictly beat the best uniform plan on the first multi scenario")
	}
}

// TestTieredChecking: with a check engine named, every adopted plan (and
// the original baseline) is differentially re-run on that engine; the
// choices themselves must be exactly what the unchecked search picks, and
// each choice must record its oracle runs. The sweep engine itself as
// check engine is a no-op: no check runner, no counted runs.
func TestTieredChecking(t *testing.T) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 3})[2]
	in := Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Machines: machines(sc)}
	plain, err := Tune(in, Options{Engine: exec.EngineBytecode})
	if err != nil {
		t.Fatal(err)
	}
	checked, err := Tune(in, Options{Engine: exec.EngineBytecode, CheckEngine: exec.EngineWalk})
	if err != nil {
		t.Fatal(err)
	}
	if len(checked) != len(plain) {
		t.Fatalf("checked search produced %d choices, unchecked %d", len(checked), len(plain))
	}
	for i := range checked {
		if checked[i].TieredChecks == 0 {
			t.Errorf("machine %q: no oracle check runs recorded", checked[i].Machine)
		}
		c, p := checked[i], plain[i]
		c.TieredChecks, p.TieredChecks = 0, 0
		if !reflect.DeepEqual(c, p) {
			t.Errorf("machine %q: tiered checking changed the choice:\n%+v\nvs\n%+v",
				checked[i].Machine, c, p)
		}
	}
	noop, err := Tune(in, Options{Engine: exec.EngineBytecode, CheckEngine: exec.EngineBytecode})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range noop {
		if c.TieredChecks != 0 {
			t.Errorf("machine %q: self-check counted %d runs, want 0", c.Machine, c.TieredChecks)
		}
	}
}
