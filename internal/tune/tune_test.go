package tune

import (
	"reflect"
	"testing"

	"repro/internal/netsim"
	"repro/internal/workload"
)

func profiles() []netsim.Profile {
	return []netsim.Profile{netsim.MPICHTCP(), netsim.MPICHGM()}
}

// TestDeterministicChoices: the search is a pure function of its input —
// running it twice must produce byte-identical choices (the property the
// harness's determinism-across-parallelism test builds on).
func TestDeterministicChoices(t *testing.T) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 2})[1]
	in := Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Profiles: profiles()}
	opts := Options{Costs: sc.Costs}
	a, err := Tune(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Tune(in, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same input produced different choices:\n%+v\nvs\n%+v", a, b)
	}
}

// TestSameSeedSameChosenK: regenerating the corpus from the same seed and
// tuning again must land on the same chosen K per profile.
func TestSameSeedSameChosenK(t *testing.T) {
	pick := func() map[string]int64 {
		sc := workload.GenerateScenarios(workload.GenOptions{Seed: 7, Limit: 4})[3]
		choices, err := Tune(
			Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Profiles: profiles()},
			Options{Costs: sc.Costs},
		)
		if err != nil {
			t.Fatal(err)
		}
		out := map[string]int64{}
		for _, c := range choices {
			out[c.Profile] = c.ChosenK
		}
		return out
	}
	if a, b := pick(), pick(); !reflect.DeepEqual(a, b) {
		t.Errorf("seed 7 chose %v then %v", a, b)
	}
}

// TestTunedNeverLosesToFixed: the fixed K is always in the candidate set,
// so the tuned speedup is bounded below by the fixed-K speedup, and every
// choice is backed by an oracle-identical run.
func TestTunedNeverLosesToFixed(t *testing.T) {
	for _, sc := range workload.GenerateScenarios(workload.GenOptions{Limit: 5}) {
		choices, err := Tune(
			Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Profiles: profiles()},
			Options{Costs: sc.Costs},
		)
		if err != nil {
			t.Fatalf("%s: %v", sc.Name, err)
		}
		for _, c := range choices {
			if c.Speedup < c.FixedSpeedup {
				t.Errorf("%s/%s: tuned %.3f worse than fixed %.3f",
					sc.Name, c.Profile, c.Speedup, c.FixedSpeedup)
			}
			if c.Evaluations < 1 {
				t.Errorf("%s/%s: no measured candidates", sc.Name, c.Profile)
			}
			if c.SearchSimNs <= 0 {
				t.Errorf("%s/%s: no recorded search cost", sc.Name, c.Profile)
			}
			found := false
			for _, cand := range c.Candidates {
				if cand.K == c.ChosenK {
					found = true
					if !cand.Identical {
						t.Errorf("%s/%s: chosen K=%d failed the oracle", sc.Name, c.Profile, cand.K)
					}
				}
			}
			if !found {
				t.Errorf("%s/%s: chosen K=%d not among candidates", sc.Name, c.Profile, c.ChosenK)
			}
		}
	}
}

// TestMeasurementBudget: MaxMeasured caps the simulated pre-push runs.
func TestMeasurementBudget(t *testing.T) {
	sc := workload.GenerateScenarios(workload.GenOptions{Limit: 1})[0]
	choices, err := Tune(
		Input{Source: sc.Source, NP: sc.NP, FixedK: sc.K, Profiles: profiles()[1:]},
		Options{Costs: sc.Costs, MaxMeasured: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	if got := choices[0].Evaluations; got > 2 {
		t.Errorf("evaluations = %d, want ≤ 2", got)
	}
}

func TestTuneRejectsBrokenSource(t *testing.T) {
	_, err := Tune(Input{Source: "not fortran", NP: 4, FixedK: 4, Profiles: profiles()}, Options{})
	if err == nil {
		t.Fatal("expected an error for unparseable source")
	}
}

func TestDivisors(t *testing.T) {
	got := divisors(12)
	want := []int64{1, 2, 3, 4, 6, 12}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("divisors(12) = %v, want %v", got, want)
	}
	if d := divisors(0); len(d) != 0 {
		t.Errorf("divisors(0) = %v, want empty", d)
	}
}

func TestSnapToLadder(t *testing.T) {
	ladder := []int64{1, 2, 4, 8, 16}
	cases := []struct{ k, lo, hi int64 }{
		{3, 2, 4},
		{4, 4, 4},
		{100, 16, 16},
		{1, 1, 1},
	}
	for _, c := range cases {
		lo, hi := snapToLadder(ladder, c.k)
		if lo != c.lo || hi != c.hi {
			t.Errorf("snap(%d) = (%d, %d), want (%d, %d)", c.k, lo, hi, c.lo, c.hi)
		}
	}
}
